/// \file bench_util.h
/// Shared plumbing for the paper-reproduction benches: a `cli::Parser`-based
/// command-line harness (suite selection, `--threads`, `--report`), timing,
/// and row formatting.
///
/// Every bench goes through `Harness`, so the flag surface is uniform and
/// strict: unknown flags are rejected with a diagnostic instead of being
/// silently ignored, `--threads <n>` selects the worker count for pin
/// access panels and wave-parallel routing, and `--report <out.json>` saves the
/// merged obs collector as a `cpr.report.v1` file (the same schema cpr_route
/// emits). Bench-specific flags are registered on `parser()` before
/// `parse()`.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "gen/generator.h"
#include "obs/report.h"
#include "tools/cli.h"

namespace cpr::bench {

using Clock = std::chrono::steady_clock;

inline double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

inline void hr(char c = '-') {
  for (int i = 0; i < 110; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Uniform bench command line. Construction registers the shared flags;
/// benches add their own through `parser()` and then call `parse()`:
///
///   bench::Harness h("bench_fig6", "LR vs ILP scalability");
///   h.parser().option("--max-pins", "n", "stop after this many pins", &max);
///   if (const int rc = h.parse(argc, argv); rc >= 0) return rc;
///
/// `parse` returns -1 to continue, 0 when `--help` was printed, and 2 on a
/// bad command line — ready to be returned from main() as-is.
class Harness {
 public:
  Harness(std::string program, std::string summary)
      : parser_(std::move(program), std::move(summary)) {
    parser_.option("--designs", "a,b,...",
                   "comma-separated suite subset (default: all six designs)",
                   &designs_);
    parser_.option("--threads", "n",
                   "worker threads for pin-access panels and wave-parallel "
                   "routing (0 = hardware concurrency)",
                   &threads_);
    parser_.option("--report", "out.json",
                   "save the merged obs report as cpr.report.v1 JSON",
                   &reportPath_);
  }

  /// The underlying strict parser, for bench-specific flags.
  [[nodiscard]] cli::Parser& parser() { return parser_; }

  [[nodiscard]] int parse(int argc, char** argv) {
    if (!parser_.parse(argc, argv)) return 2;
    if (parser_.helpRequested()) {
      parser_.printUsage();
      return 0;
    }
    return -1;
  }

  /// Designs to run: the whole paper suite unless `--designs` narrowed it.
  [[nodiscard]] std::vector<gen::SuiteSpec> suite() const {
    if (designs_.empty()) return gen::paperSuite();
    std::vector<gen::SuiteSpec> out;
    std::size_t pos = 0;
    while (pos < designs_.size()) {
      const std::size_t comma = designs_.find(',', pos);
      const std::string name = designs_.substr(
          pos, comma == std::string::npos ? designs_.npos : comma - pos);
      out.push_back(gen::suiteSpec(name));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return out;
  }

  /// Value of `--threads` (0 = let the optimizer pick).
  [[nodiscard]] int threads() const { return threads_; }

  /// Saves `stats` when the command line carried `--report <path>`.
  void maybeWriteReport(const obs::Collector& stats) const {
    if (reportPath_.empty()) return;
    obs::saveReportJson(stats, reportPath_);
    std::printf("wrote run report to %s\n", reportPath_.c_str());
  }

 private:
  cli::Parser parser_;
  std::string designs_;
  std::string reportPath_;
  int threads_ = 0;
};

}  // namespace cpr::bench
