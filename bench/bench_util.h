/// \file bench_util.h
/// Shared plumbing for the paper-reproduction benches: suite selection from
/// the command line, timing, and row formatting.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "gen/generator.h"

namespace cpr::bench {

using Clock = std::chrono::steady_clock;

inline double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Designs to run: every suite entry by default; argv[1] may carry a
/// comma-separated subset (e.g. "ecc,div") to shorten a run.
inline std::vector<gen::SuiteSpec> selectedSuite(int argc, char** argv) {
  if (argc < 2) return gen::paperSuite();
  std::vector<gen::SuiteSpec> out;
  std::string arg = argv[1];
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string name =
        arg.substr(pos, comma == std::string::npos ? arg.npos : comma - pos);
    out.push_back(gen::suiteSpec(name));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

inline void hr(char c = '-') {
  for (int i = 0; i < 110; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace cpr::bench
