/// \file bench_util.h
/// Shared plumbing for the paper-reproduction benches: suite selection from
/// the command line, timing, row formatting, and run-report emission.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "gen/generator.h"
#include "obs/report.h"

namespace cpr::bench {

using Clock = std::chrono::steady_clock;

inline double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Designs to run: every suite entry by default; argv[1] may carry a
/// comma-separated subset (e.g. "ecc,div") to shorten a run.
inline std::vector<gen::SuiteSpec> selectedSuite(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') return gen::paperSuite();
  std::vector<gen::SuiteSpec> out;
  std::string arg = argv[1];
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string name =
        arg.substr(pos, comma == std::string::npos ? arg.npos : comma - pos);
    out.push_back(gen::suiteSpec(name));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

inline void hr(char c = '-') {
  for (int i = 0; i < 110; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Value of a `--report out.json` flag anywhere on the command line, or "".
inline std::string reportPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string_view(argv[i]) == "--report") return argv[i + 1];
  return {};
}

/// Saves `stats` as a `cpr.report.v1` JSON file (the same schema cpr_route
/// emits) when the command line carried `--report <path>`.
inline void maybeWriteReport(int argc, char** argv,
                             const obs::Collector& stats) {
  const std::string path = reportPath(argc, argv);
  if (path.empty()) return;
  obs::saveReportJson(stats, path);
  std::printf("wrote run report to %s\n", path.c_str());
}

}  // namespace cpr::bench
