/// \file bench_ablation_profit.cpp
/// Ablation: the paper sets f(I) = sqrt(l) "because the square root function
/// generates more balanced solutions while maximizing the interval length,
/// compared to a linear function" (Section 3.3). This bench quantifies that:
/// for both profit models it reports the assigned-span distribution (mean,
/// min, coefficient of variation) and the downstream routing quality.
///
/// Usage: bench_ablation_profit [--designs ecc,...] [--threads n]
///        [--report out.json]
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "eval/metrics.h"
#include "route/cpr.h"

namespace {

struct SpanStats {
  double mean = 0.0;
  double cv = 0.0;  ///< coefficient of variation (stddev / mean)
  long assigned = 0;
};

SpanStats spanStats(const cpr::core::PinAccessPlan& plan) {
  SpanStats s;
  double sum = 0.0;
  double sq = 0.0;
  for (const cpr::core::PinRoute& r : plan.routes) {
    if (!r.valid()) continue;
    const double span = r.span.span();
    sum += span;
    sq += span * span;
    ++s.assigned;
  }
  if (s.assigned == 0) return s;
  s.mean = sum / s.assigned;
  const double var = sq / s.assigned - s.mean * s.mean;
  s.cv = s.mean > 0 ? std::sqrt(std::max(0.0, var)) / s.mean : 0.0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpr;
  bench::Harness h("bench_ablation_profit",
                   "ablation: sqrt vs linear interval profit");
  if (const int rc = h.parse(argc, argv); rc >= 0) return rc;
  const auto suite = h.suite();
  obs::Collector report;
  report.note("bench", "ablation_profit");

  std::printf("Ablation: sqrt vs linear interval profit (Section 3.3)\n");
  std::printf("%-5s %-7s | %9s %7s | %7s %8s %9s\n", "Ckt", "profit",
              "meanSpan", "spanCV", "Rout.%", "Via#", "WL");
  bench::hr();

  for (const gen::SuiteSpec& spec : suite) {
    const db::Design d = gen::makeSuiteDesign(spec);
    for (const auto model : {core::ProfitModel::SqrtSpan,
                             core::ProfitModel::LinearSpan}) {
      route::CprOptions opts;
      opts.pinAccess.threads = h.threads();
      opts.pinAccess.profitModel = model;
      const route::CprResult r = route::routeCpr(d, opts);
      report.merge(r.plan.stats);
      const eval::Metrics m = eval::summarize(d, r.routing);
      const SpanStats s = spanStats(r.plan);
      std::printf("%-5s %-7s | %9.2f %7.3f | %7.2f %8ld %9ld\n",
                  spec.name.c_str(),
                  model == core::ProfitModel::SqrtSpan ? "sqrt" : "linear",
                  s.mean, s.cv, m.routability, m.vias, m.wirelength);
      std::fflush(stdout);
    }
  }
  std::printf("(sqrt should show a lower span coefficient of variation — "
              "more balanced intervals — at comparable routing quality)\n");
  h.maybeWriteReport(report);
  return 0;
}
