/// \file bench_ablation_alpha.cpp
/// Ablation: the subgradient step-size exponent alpha in t_k = L_m / k^alpha
/// (the paper uses 0.95). Sweeps alpha and reports LR convergence behaviour
/// — iterations, remaining pre-repair violations, and objective — over the
/// panels of one design.
///
/// Usage: bench_ablation_alpha [--design name] [--report out.json]
///        (default design: ecc)
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/conflict.h"
#include "core/interval_gen.h"
#include "core/solver.h"
#include "db/panel.h"
#include "obs/names.h"

int main(int argc, char** argv) {
  using namespace cpr;
  std::string name = "ecc";
  bench::Harness h("bench_ablation_alpha",
                   "ablation: subgradient step exponent alpha");
  h.parser().option("--design", "name", "suite design to sweep (default ecc)",
                    &name);
  if (const int rc = h.parse(argc, argv); rc >= 0) return rc;
  obs::Collector report;
  report.note("bench", "ablation_alpha");
  const db::Design d = gen::makeSuiteDesign(gen::suiteSpec(name));
  const std::vector<db::Panel> panels = db::extractPanels(d);
  core::GenOptions g;
  g.maxExtent = 32;

  std::printf("Ablation: subgradient step exponent alpha on %s "
              "(paper: 0.95)\n", name.c_str());
  std::printf("%6s | %9s %12s %12s %10s\n", "alpha", "cpu(s)", "iterations",
              "preRepairVio", "objective");
  bench::hr();

  for (const double alpha : {0.5, 0.7, 0.85, 0.95, 1.0, 1.5}) {
    core::LrOptions lr;
    lr.alpha = alpha;
    lr.stallLimit = 0;  // run each panel to UB or convergence
    const core::LrSolver solver{lr};
    long iters = 0;
    long vio = 0;
    double obj = 0.0;
    const auto t0 = bench::Clock::now();
    for (const db::Panel& panel : panels) {
      if (panel.pins.empty()) continue;
      core::Problem prob = core::buildProblem(d, panel, g);
      core::detectConflicts(prob);
      obs::Collector stats;
      const core::Assignment a =
          solver.solve(core::PanelKernel::compile(std::move(prob)), nullptr,
                       &stats);
      iters += stats.counter(obs::names::kLrIterations);
      // Pre-repair violations: best_violations of the last lr.iter sample
      // (columns are src, iter, violations, best_violations, ...).
      if (auto it = stats.series().find("lr.iter");
          it != stats.series().end() && !it->second.rows.empty())
        vio += static_cast<long>(it->second.rows.back()[3]);
      obj += a.objective;
      report.merge(stats);
    }
    std::printf("%6.2f | %9.3f %12ld %12ld %10.1f\n", alpha,
                bench::seconds(t0, bench::Clock::now()), iters, vio, obj);
    std::fflush(stdout);
  }
  h.maybeWriteReport(report);
  return 0;
}
