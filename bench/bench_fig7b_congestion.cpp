/// \file bench_fig7b_congestion.cpp
/// Reproduces Fig. 7(b): the number of congested routing grids before the
/// rip-up & reroute stage, with and without concurrent pin access
/// optimization (paper: 5-10x reduction).
///
/// Usage: bench_fig7b_congestion [ecc,...] [--report out.json]
#include <cstdio>

#include "bench_util.h"
#include "route/cpr.h"

int main(int argc, char** argv) {
  using namespace cpr;
  const auto suite = bench::selectedSuite(argc, argv);
  obs::Collector report;
  report.note("bench", "fig7b_congestion");

  std::printf("Fig. 7(b): congested routing grids before rip-up & reroute\n");
  std::printf("%-5s | %16s %16s | %9s\n", "Ckt", "w/ pin access opt",
              "w/o pin access opt", "reduction");
  bench::hr();

  for (const gen::SuiteSpec& spec : suite) {
    const db::Design d = gen::makeSuiteDesign(spec);
    const route::CprResult with = route::routeCpr(d);
    const route::RoutingResult without = route::routeNegotiated(d, nullptr);
    std::printf("%-5s | %16ld %16ld | %8.2fx\n", spec.name.c_str(),
                with.routing.congestedGridsBeforeRrr(),
                without.congestedGridsBeforeRrr(),
                static_cast<double>(without.congestedGridsBeforeRrr()) /
                    static_cast<double>(std::max<long>(
                        1, with.routing.congestedGridsBeforeRrr())));
    report.merge(with.plan.stats);
    report.merge(with.routing.stats);
    report.merge(without.stats);
    std::fflush(stdout);
  }
  std::printf("(paper reports a 5-10x reduction)\n");
  bench::maybeWriteReport(argc, argv, report);
  return 0;
}
