/// \file bench_fig7b_congestion.cpp
/// Reproduces Fig. 7(b): the number of congested routing grids before the
/// rip-up & reroute stage, with and without concurrent pin access
/// optimization (paper: 5-10x reduction).
///
/// Usage: bench_fig7b_congestion [--designs ecc,...] [--threads n]
///        [--report out.json]
#include <cstdio>

#include "bench_util.h"
#include "route/cpr.h"

int main(int argc, char** argv) {
  using namespace cpr;
  bench::Harness h("bench_fig7b_congestion",
                   "Fig. 7(b): congested grids before rip-up & reroute, "
                   "with vs without pin access optimization");
  if (const int rc = h.parse(argc, argv); rc >= 0) return rc;
  const auto suite = h.suite();
  obs::Collector report;
  report.note("bench", "fig7b_congestion");

  std::printf("Fig. 7(b): congested routing grids before rip-up & reroute\n");
  std::printf("%-5s | %16s %16s | %9s\n", "Ckt", "w/ pin access opt",
              "w/o pin access opt", "reduction");
  bench::hr();

  for (const gen::SuiteSpec& spec : suite) {
    const db::Design d = gen::makeSuiteDesign(spec);
    route::CprOptions opts;
    opts.pinAccess.threads = h.threads();
    const route::CprResult with = route::routeCpr(d, opts);
    const route::RoutingResult without = route::routeNegotiated(d, nullptr);
    std::printf("%-5s | %16ld %16ld | %8.2fx\n", spec.name.c_str(),
                with.routing.congestedGridsBeforeRrr(),
                without.congestedGridsBeforeRrr(),
                static_cast<double>(without.congestedGridsBeforeRrr()) /
                    static_cast<double>(std::max<long>(
                        1, with.routing.congestedGridsBeforeRrr())));
    report.merge(with.plan.stats);
    report.merge(with.routing.stats);
    report.merge(without.stats);
    std::fflush(stdout);
  }
  std::printf("(paper reports a 5-10x reduction)\n");
  h.maybeWriteReport(report);
  return 0;
}
