/// \file bench_fig7a_lr_over_ilp.cpp
/// Reproduces Fig. 7(a): routing solution quality with LR-based vs
/// ILP-based pin access optimization — the LR/ILP ratio of Rout., Via# and
/// WL per design (paper: Rout and WL ratios ~1.0, Via# ~+5% for LR).
///
/// The ILP plan solves each panel with the exact branch & bound under a
/// per-panel wall-clock budget (its incumbent dominates the LR solution
/// whenever it proves optimality; budget exhaustion falls back to the
/// incumbent, which never hurts the comparison's direction).
///
/// Usage: bench_fig7a_lr_over_ilp [--designs ecc,...] [--per-panel sec]
///        [--threads n] [--report out.json]
#include <cstdio>

#include "bench_util.h"
#include "eval/metrics.h"
#include "route/cpr.h"

int main(int argc, char** argv) {
  using namespace cpr;
  double perPanel = 0.3;
  bench::Harness h("bench_fig7a_lr_over_ilp",
                   "Fig. 7(a): routing quality of LR-based over ILP-based "
                   "pin access optimization");
  h.parser().option("--per-panel", "sec", "exact-solver wall-clock budget "
                    "per panel (default 0.3)", &perPanel);
  if (const int rc = h.parse(argc, argv); rc >= 0) return rc;
  const auto suite = h.suite();
  obs::Collector report;
  report.note("bench", "fig7a_lr_over_ilp");

  std::printf("Fig. 7(a): LR-based over ILP-based pin access optimization "
              "(routing quality ratios; ILP budget %.2fs/panel)\n", perPanel);
  std::printf("%-5s | %9s %9s %9s | %12s %12s\n", "Ckt", "Rout.", "Via#",
              "WL", "LR obj", "ILP obj");
  bench::hr();

  for (const gen::SuiteSpec& spec : suite) {
    const db::Design d = gen::makeSuiteDesign(spec);

    route::CprOptions lrOpts;  // defaults: LR
    lrOpts.pinAccess.threads = h.threads();
    const route::CprResult lr = route::routeCpr(d, lrOpts);
    const eval::Metrics mLr = eval::summarize(d, lr.routing);

    route::CprOptions ilpOpts;
    ilpOpts.pinAccess.threads = h.threads();
    ilpOpts.pinAccess.solve.method = core::Method::Exact;
    ilpOpts.pinAccess.panelBudgetSeconds = perPanel;
    const route::CprResult ilp = route::routeCpr(d, ilpOpts);
    const eval::Metrics mIlp = eval::summarize(d, ilp.routing);

    std::printf("%-5s | %9.4f %9.4f %9.4f | %12.1f %12.1f%s\n",
                spec.name.c_str(), mLr.routability / mIlp.routability,
                static_cast<double>(mLr.vias) / mIlp.vias,
                static_cast<double>(mLr.wirelength) / mIlp.wirelength,
                lr.plan.objective, ilp.plan.objective,
                ilp.plan.allProvedOptimal() ? " (proven)" : " (budget)");
    report.merge(lr.plan.stats);
    report.merge(ilp.plan.stats);
    std::fflush(stdout);
  }
  std::printf("(paper: Rout and WL ratios ~1.0 across designs; LR Via# about "
              "5%% above ILP)\n");
  h.maybeWriteReport(report);
  return 0;
}
