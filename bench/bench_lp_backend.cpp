/// \file bench_lp_backend.cpp
/// LP engine micro-bench for the `ilp::LpBackend` seam: times the generic
/// branch & bound over the paper's Formula-(1) panel models under the three
/// configurations the seam exposes — the dense two-phase reference engine,
/// the revised simplex solved cold at every node, and the revised simplex
/// warm-started from each parent basis (the default). The headline number
/// is the warm/cold pivot ratio: warm starting must cut total simplex
/// iterations roughly in half or better on these instances.
///
/// Two instance families:
///   1. Formula-(1) models from suite panels (pairwise conflict encoding).
///      Their relaxations solve integrally — interval conflict graphs are
///      perfect — so B&B stops at the root; this section compares the raw
///      engines cold.
///   2. Conflict knapsacks with even weights and an odd capacity, whose
///      relaxation is fractional at every node: deep search trees where the
///      parent-basis warm start pays off. The headline warm/cold ratio is
///      measured here.
///
/// Usage: bench_lp_backend [--max-pins n] [--cap sec] [--report out.json]
#include <cstdio>
#include <span>

#include "bench_util.h"
#include "core/conflict.h"
#include "core/ilp_builder.h"
#include "core/interval_gen.h"
#include "db/panel.h"
#include "ilp/branch_and_bound.h"
#include "obs/names.h"

namespace {

struct EngineRun {
  cpr::ilp::IlpResult res;
  double sec = 0.0;
};

EngineRun runEngine(const cpr::ilp::Model& m, const char* backend,
                    bool warm, double cap) {
  cpr::ilp::IlpOptions opts;
  opts.lp.backend = backend;
  opts.lp.warmStart = warm;
  opts.deadline = cpr::support::Deadline::after(cap);
  const auto t0 = cpr::bench::Clock::now();
  EngineRun out;
  out.res = cpr::ilp::solveBinaryIlp(m, opts);
  out.sec = cpr::bench::seconds(t0, cpr::bench::Clock::now());
  return out;
}

/// Even weights against an odd capacity: every node relaxation lands at a
/// half-integral vertex, so the tree dives until enough variables are fixed.
/// Sparse conflict rows keep the instances from being pure knapsacks.
cpr::ilp::Model conflictKnapsack(int n) {
  using namespace cpr::ilp;
  Model m;
  for (int v = 0; v < n; ++v) m.addBinary(1.0 + 0.01 * v);
  std::vector<Term> knap;
  for (Index v = 0; v < n; ++v) knap.push_back({v, 2.0});
  m.addConstraint(std::move(knap), Sense::LessEqual,
                  static_cast<double>(n) - 1.0);
  for (Index v = 0; v + 3 < n; v += 3)
    m.addConstraint({{v, 1.0}, {static_cast<Index>(v + 3), 1.0}},
                    Sense::LessEqual, 1.0);
  return m;
}

void printRow(long size, int rows, const EngineRun& dense,
              const EngineRun& cold, const EngineRun& warm) {
  using cpr::ilp::IlpStatus;
  const double ratio = cold.res.lpPivots > 0
      ? static_cast<double>(warm.res.lpPivots) /
            static_cast<double>(cold.res.lpPivots)
      : 1.0;
  std::printf(
      "%5ld %6d | %6ld | %9ld %7.3f%s | %9ld %7.3f%s | %9ld %7.3f%s | "
      "%5.2f\n",
      size, rows, warm.res.nodesExplored, dense.res.lpPivots, dense.sec,
      dense.res.status == IlpStatus::Optimal ? " " : "+",
      cold.res.lpPivots, cold.sec,
      cold.res.status == IlpStatus::Optimal ? " " : "+",
      warm.res.lpPivots, warm.sec,
      warm.res.status == IlpStatus::Optimal ? " " : "+", ratio);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpr;
  long maxPinsArg = 60;
  double cap = 10.0;
  bench::Harness h("bench_lp_backend",
                   "LP engines over B&B: dense vs revised, cold vs warm");
  h.parser().option("--max-pins", "n", "stop once the instance reaches this "
                    "many pins (default 60)", &maxPinsArg);
  h.parser().option("--cap", "sec", "wall-clock cap per engine per instance "
                    "(default 10)", &cap);
  if (const int rc = h.parse(argc, argv); rc >= 0) return rc;
  const std::size_t maxPins = static_cast<std::size_t>(maxPinsArg);

  // Same instance family as bench_ablation_constraints: small-competition
  // panels whose Formula-(1) models the generic B&B solves to optimality.
  gen::GenOptions go;
  go.seed = 3;
  go.width = 220;
  go.numRows = 8;
  go.pinDensity = 0.16;
  go.maxNetSpan = 24;
  go.maxNetRowSpread = 0;
  const db::Design d = gen::generate(go);
  const std::vector<db::Panel> panels = db::extractPanels(d);
  core::GenOptions g;
  g.maxExtent = 10;

  obs::Collector report;
  report.note("bench", "lp_backend");

  std::printf("LP engines over generic branch & bound (cap %.0fs/run)\n",
              cap);
  std::printf("%5s %6s | %6s | %9s %8s | %9s %8s | %9s %8s | %6s\n",
              "pins", "rows", "nodes", "densePiv", "dense s", "coldPiv",
              "cold s", "warmPiv", "warm s", "w/c");
  bench::hr();

  for (std::size_t count = 1; count <= panels.size(); ++count) {
    core::Problem prob = core::buildProblem(
        d, std::span<const db::Panel>(panels.data(), count), g);
    core::detectConflicts(prob);
    if (prob.pins.size() > maxPins) break;
    if (prob.pins.empty()) continue;

    const core::IlpBuild build = core::buildIlpModel(prob, true);
    const EngineRun dense = runEngine(build.model, "dense", false, cap);
    const EngineRun cold = runEngine(build.model, "revised", false, cap);
    const EngineRun warm = runEngine(build.model, "revised", true, cap);

    printRow(static_cast<long>(prob.pins.size()),
             build.model.numConstraints(), dense, cold, warm);
    report.add(obs::names::kIlpPivots, warm.res.lpPivots);
    report.add(obs::names::kIlpWarmSolves, warm.res.lpWarmSolves);
    report.add(obs::names::kIlpColdSolves, warm.res.lpColdSolves);
  }

  std::printf("\nConflict knapsacks (fractional at every node; size = "
              "variables)\n");
  std::printf("%5s %6s | %6s | %9s %8s | %9s %8s | %9s %8s | %6s\n",
              "size", "rows", "nodes", "densePiv", "dense s", "coldPiv",
              "cold s", "warmPiv", "warm s", "w/c");
  bench::hr();

  long totalCold = 0;
  long totalWarm = 0;
  for (int n = 10; n <= 22; n += 4) {
    const ilp::Model m = conflictKnapsack(n);
    const EngineRun dense = runEngine(m, "dense", false, cap);
    const EngineRun cold = runEngine(m, "revised", false, cap);
    const EngineRun warm = runEngine(m, "revised", true, cap);
    totalCold += cold.res.lpPivots;
    totalWarm += warm.res.lpPivots;

    printRow(n, m.numConstraints(), dense, cold, warm);
    report.add(obs::names::kIlpPivots, warm.res.lpPivots);
    report.add(obs::names::kIlpWarmSolves, warm.res.lpWarmSolves);
    report.add(obs::names::kIlpColdSolves, warm.res.lpColdSolves);
  }
  bench::hr();
  const double overall = totalCold > 0
      ? static_cast<double>(totalWarm) / static_cast<double>(totalCold)
      : 1.0;
  std::printf("knapsack revised pivots: cold %ld, warm %ld (warm/cold "
              "%.2f)\n", totalCold, totalWarm, overall);
  std::printf("('+' marks runs cut off by the cap)\n");
  h.maybeWriteReport(report);
  return 0;
}
