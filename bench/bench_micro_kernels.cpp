/// \file bench_micro_kernels.cpp
/// google-benchmark micro benchmarks of the library's hot kernels: pin
/// access interval generation, conflict-set detection, one LR solve, the
/// maze search, and DEF round-trip I/O.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/conflict.h"
#include "core/interval_gen.h"
#include "core/solver.h"
#include "db/panel.h"
#include "gen/generator.h"
#include "lefdef/def_io.h"
#include "route/engine.h"

namespace {

using namespace cpr;

db::Design benchDesign() {
  gen::GenOptions o;
  o.seed = 21;
  o.width = 400;
  o.numRows = 8;
  o.pinDensity = 0.2;
  o.minPinTracks = 2;
  o.maxPinTracks = 4;
  o.maxNetSpan = 60;
  o.m3Pitch = 3;
  o.blockagesPerRow = 6;
  return gen::generate(o);
}

void BM_IntervalGeneration(benchmark::State& state) {
  const db::Design d = benchDesign();
  const db::Panel panel = db::extractPanel(d, 3);
  core::GenOptions g;
  g.maxExtent = 32;
  for (auto _ : state) {
    core::Problem p = core::buildProblem(d, panel, g);
    benchmark::DoNotOptimize(p.intervals.size());
  }
}
BENCHMARK(BM_IntervalGeneration);

void BM_ConflictDetection(benchmark::State& state) {
  const db::Design d = benchDesign();
  core::GenOptions g;
  g.maxExtent = 32;
  const core::Problem base = core::buildProblem(d, db::extractPanel(d, 3), g);
  for (auto _ : state) {
    core::Problem p = base;
    core::detectConflicts(p);
    benchmark::DoNotOptimize(p.conflicts.size());
  }
}
BENCHMARK(BM_ConflictDetection);

void BM_LrSolvePanel(benchmark::State& state) {
  const db::Design d = benchDesign();
  core::GenOptions g;
  g.maxExtent = 32;
  core::Problem p = core::buildProblem(d, db::extractPanel(d, 3), g);
  core::detectConflicts(p);
  const core::LrSolver solver;
  for (auto _ : state) {
    const core::Assignment a = solver.solve(p);
    benchmark::DoNotOptimize(a.objective);
  }
}
BENCHMARK(BM_LrSolvePanel);

void BM_MazeRouteNet(benchmark::State& state) {
  const db::Design d = benchDesign();
  route::RouteEngine engine(d, nullptr, 12);
  const auto net = static_cast<db::Index>(d.nets().size() / 2);
  for (auto _ : state) {
    const bool ok = engine.routeNet(net, {});
    benchmark::DoNotOptimize(ok);
    engine.ripNet(net);
  }
}
BENCHMARK(BM_MazeRouteNet);

void BM_DefRoundTrip(benchmark::State& state) {
  const db::Design d = benchDesign();
  for (auto _ : state) {
    std::stringstream ss;
    lefdef::writeDef(d, ss);
    const db::Design back = lefdef::readDef(ss);
    benchmark::DoNotOptimize(back.pins().size());
  }
}
BENCHMARK(BM_DefRoundTrip);

}  // namespace

BENCHMARK_MAIN();
