/// \file bench_micro_kernels.cpp
/// google-benchmark micro benchmarks of the library's hot kernels: pin
/// access interval generation, conflict-set detection, CSR kernel
/// compilation, one LR solve and one exact solve over a compiled kernel
/// (arena-reused, the optimizer's steady-state configuration), the maze
/// search, and DEF round-trip I/O.
///
/// Usage mirrors the other benches: `--report out.json` writes the standard
/// google-benchmark JSON (mapped onto --benchmark_out); every native
/// --benchmark_* flag still works, anything else is rejected.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/conflict.h"
#include "core/interval_gen.h"
#include "core/solver.h"
#include "db/panel.h"
#include "gen/generator.h"
#include "lefdef/def_io.h"
#include "route/engine.h"

namespace {

using namespace cpr;

db::Design benchDesign() {
  gen::GenOptions o;
  o.seed = 21;
  o.width = 400;
  o.numRows = 8;
  o.pinDensity = 0.2;
  o.minPinTracks = 2;
  o.maxPinTracks = 4;
  o.maxNetSpan = 60;
  o.m3Pitch = 3;
  o.blockagesPerRow = 6;
  return gen::generate(o);
}

core::Problem benchProblem(const db::Design& d) {
  core::GenOptions g;
  g.maxExtent = 32;
  core::Problem p = core::buildProblem(d, db::extractPanel(d, 3), g);
  core::detectConflicts(p);
  return p;
}

void BM_IntervalGeneration(benchmark::State& state) {
  const db::Design d = benchDesign();
  const db::Panel panel = db::extractPanel(d, 3);
  core::GenOptions g;
  g.maxExtent = 32;
  for (auto _ : state) {
    core::Problem p = core::buildProblem(d, panel, g);
    benchmark::DoNotOptimize(p.intervals.size());
  }
}
BENCHMARK(BM_IntervalGeneration);

void BM_ConflictDetection(benchmark::State& state) {
  const db::Design d = benchDesign();
  core::GenOptions g;
  g.maxExtent = 32;
  const core::Problem base = core::buildProblem(d, db::extractPanel(d, 3), g);
  for (auto _ : state) {
    core::Problem p = base;
    core::detectConflicts(p);
    benchmark::DoNotOptimize(p.conflicts.size());
  }
}
BENCHMARK(BM_ConflictDetection);

void BM_PanelCompile(benchmark::State& state) {
  const db::Design d = benchDesign();
  const core::Problem base = benchProblem(d);
  for (auto _ : state) {
    const core::PanelKernel k = core::PanelKernel::compile(core::Problem(base));
    benchmark::DoNotOptimize(k.footprintBytes());
  }
}
BENCHMARK(BM_PanelCompile);

void BM_LrSolvePanel(benchmark::State& state) {
  const db::Design d = benchDesign();
  const core::PanelKernel k = core::PanelKernel::compile(benchProblem(d));
  const core::LrSolver solver;
  core::PanelScratch scratch;  // reused, as in the optimizer's worker loop
  for (auto _ : state) {
    const core::Assignment a = solver.solve(k, &scratch);
    benchmark::DoNotOptimize(a.objective);
  }
}
BENCHMARK(BM_LrSolvePanel);

void BM_ExactSolvePanel(benchmark::State& state) {
  // A panel the branch & bound finishes in milliseconds (a few thousand
  // nodes), so the per-node cost dominates the measurement.
  gen::GenOptions o;
  o.seed = 4;
  o.width = 120;
  o.numRows = 4;
  o.pinDensity = 0.2;
  o.maxNetSpan = 40;
  const db::Design d = gen::generate(o);
  core::Problem p = core::buildProblem(d, db::extractPanel(d, 0), {});
  core::detectConflicts(p);
  const core::PanelKernel k = core::PanelKernel::compile(std::move(p));
  const core::ExactSolver solver;
  core::PanelScratch scratch;
  long nodes = 0;
  for (auto _ : state) {
    core::ExactStats stats;
    const core::Assignment a =
        core::solveExact(k, {}, &stats, nullptr, &scratch.exact);
    benchmark::DoNotOptimize(a.objective);
    nodes += stats.nodes;
  }
  state.counters["nodes_per_s"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExactSolvePanel);

void BM_MazeRouteNet(benchmark::State& state) {
  const db::Design d = benchDesign();
  route::RouteEngine engine(d, nullptr, 12);
  const auto net = static_cast<db::Index>(d.nets().size() / 2);
  for (auto _ : state) {
    const bool ok = engine.routeNet(net, {});
    benchmark::DoNotOptimize(ok);
    engine.ripNet(net);
  }
}
BENCHMARK(BM_MazeRouteNet);

void BM_DefRoundTrip(benchmark::State& state) {
  const db::Design d = benchDesign();
  for (auto _ : state) {
    std::stringstream ss;
    lefdef::writeDef(d, ss);
    const db::Design back = lefdef::readDef(ss);
    benchmark::DoNotOptimize(back.pins().size());
  }
}
BENCHMARK(BM_DefRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  // Map the benches' uniform `--report <path>` onto google-benchmark's
  // --benchmark_out before handing over; unrecognized flags still error.
  std::vector<char*> args;
  args.push_back(argv[0]);
  std::string outFlag;
  std::string fmtFlag = "--benchmark_out_format=json";
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--report" && i + 1 < argc) {
      outFlag = std::string("--benchmark_out=") + argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!outFlag.empty()) {
    args.push_back(outFlag.data());
    args.push_back(fmtFlag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
