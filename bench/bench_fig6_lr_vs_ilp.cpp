/// \file bench_fig6_lr_vs_ilp.cpp
/// Reproduces Fig. 6: LR vs ILP on concurrent pin access instances of
/// growing pin count — (a) runtime scalability, (b) objective value.
///
/// Instances are synthesized designs of increasing size (single rows first,
/// then multi-row dies), spanning a handful of pins up to the paper's
/// ~6000-pin x-axis. The exact branch & bound plays the commercial ILP
/// solver's role: it proves optimality on small instances in milliseconds,
/// blows up super-linearly, and runs into its wall-clock cap beyond that —
/// the same truncated curve the paper shows (their ILP is cut off around
/// 10^4 s). LR stays near-linear and lands within a few percent of the ILP
/// objective throughout.
///
/// Usage: bench_fig6_lr_vs_ilp [--max-pins n] [--ilp-cap sec] [--report out.json]
#include <cstdio>

#include "bench_util.h"
#include "core/conflict.h"
#include "core/interval_gen.h"
#include "core/solver.h"
#include "db/panel.h"

namespace {

/// A growing family of pin access instances: `scale` roughly doubles the
/// pin count each step.
cpr::db::Design instance(int scale) {
  cpr::gen::GenOptions o;
  o.seed = 7;
  o.minPinTracks = 2;
  o.maxPinTracks = 4;
  o.maxNetSpan = 40;
  o.pinDensity = 0.18;
  if (scale < 6) {  // single row, growing width
    o.width = 30 << scale;
    o.numRows = 1;
    o.maxNetRowSpread = 0;
  } else {  // multi-row dies
    o.width = 960;
    o.numRows = 1 << (scale - 5);
    o.maxNetRowSpread = 1;
  }
  return cpr::gen::generate(o);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpr;
  long maxPins = 3000;
  double ilpCap = 20.0;
  bench::Harness h("bench_fig6_lr_vs_ilp",
                   "Fig. 6: LR vs ILP runtime and objective over pin count");
  h.parser().option("--max-pins", "n", "stop once an instance reaches this "
                    "many pins (default 3000)", &maxPins);
  h.parser().option("--ilp-cap", "sec", "exact-solver wall-clock cap per "
                    "instance (default 20)", &ilpCap);
  if (const int rc = h.parse(argc, argv); rc >= 0) return rc;
  obs::Collector report;
  report.note("bench", "fig6_lr_vs_ilp");

  std::printf("Fig. 6: LR vs ILP for different numbers of pins "
              "(ILP wall-clock cap %.0fs per instance)\n", ilpCap);
  std::printf("%6s %9s %9s | %10s %12s | %10s %10s %7s %8s\n", "pins",
              "intervals", "conflicts", "LR cpu(s)", "ILP cpu(s)", "LR obj",
              "ILP obj", "LR/ILP", "ILP");
  bench::hr();

  for (int scale = 0;; ++scale) {
    const db::Design d = instance(scale);
    core::GenOptions g;
    g.maxExtent = 24;
    core::Problem prob =
        core::buildProblem(d, std::vector<db::Panel>(db::extractPanels(d)), g);
    core::detectConflicts(prob);
    const long pins = static_cast<long>(prob.pins.size());
    if (pins == 0) continue;

    const core::PanelKernel kernel =
        core::PanelKernel::compile(std::move(prob));

    const core::LrSolver lrSolver{{}};
    auto t0 = bench::Clock::now();
    const core::Assignment lr = lrSolver.solve(kernel, nullptr, &report);
    const double lrSec = bench::seconds(t0, bench::Clock::now());

    core::ExactOptions eo;
    eo.deadline = support::Deadline::after(ilpCap);
    const core::ExactSolver exactSolver{eo};
    t0 = bench::Clock::now();
    const core::Assignment ilp = exactSolver.solve(kernel, nullptr, &report);
    const double ilpSec = bench::seconds(t0, bench::Clock::now());

    std::printf("%6ld %9zu %9zu | %10.3f %11.3f%s | %10.1f %10.1f %7.4f %8s\n",
                pins, kernel.numIntervals(), kernel.numConflicts(), lrSec,
                ilpSec, ilp.provedOptimal ? " " : "+", lr.objective,
                ilp.objective, lr.objective / ilp.objective,
                ilp.provedOptimal ? "proven" : "capped");
    std::fflush(stdout);
    if (pins >= maxPins) break;
  }
  std::printf("('+' marks instances where the ILP search hit its wall-clock "
              "cap; its objective is then the best incumbent — the paper's "
              "ILP curve is likewise truncated, at ~1e4 s)\n");
  h.maybeWriteReport(report);
  return 0;
}
