/// \file bench_table2_routers.cpp
/// Reproduces Table 2: solution quality of the three routing approaches on
/// the six-design suite — sequential pin access planning [12], routing
/// without pin access optimization [21], and CPR.
///
/// Usage: bench_table2_routers [--designs ecc,efc,...] [--threads n]
///        [--thread-sweep 1,2,4,8] [--report out.json]
///        (default: all six designs)
///
/// `--thread-sweep` appends a routing-only scaling table: pin access runs
/// once per design, then the negotiation router reruns at each listed thread
/// count. Rows land in the `route.sweep` series of the report (columns:
/// design index, threads, RRR span seconds, total route seconds, digest),
/// which is where CI reads the speedup curve from. The digest column is an
/// FNV-1a hash of every net's outcome and must be identical down the sweep —
/// thread count is a pure throughput knob.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eval/metrics.h"
#include "obs/names.h"
#include "route/cpr.h"
#include "route/sequential_router.h"
#include "support/alloc_hook.h"

namespace {

struct Row {
  cpr::eval::Metrics seq, nopao, cpr_;
};

/// Seconds spent in the named span, summed over occurrences.
double spanSeconds(const cpr::obs::Collector& stats, std::string_view name) {
  double total = 0.0;
  for (const cpr::obs::Span& s : stats.spans()) {
    if (s.name == name)
      total += std::chrono::duration<double>(s.dur).count();
  }
  return total;
}

std::vector<int> parseCounts(const std::string& arg) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string tok =
        arg.substr(pos, comma == std::string::npos ? arg.npos : comma - pos);
    out.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

void printRow(const cpr::gen::SuiteSpec& spec, const cpr::db::Design& d,
              const Row& r) {
  std::printf("%-5s %6zu %7s", spec.name.c_str(), d.nets().size(),
              (std::to_string(static_cast<int>(spec.widthUm)) + "x" +
               std::to_string(static_cast<int>(spec.heightUm)))
                  .c_str());
  for (const cpr::eval::Metrics* m : {&r.seq, &r.nopao, &r.cpr_}) {
    std::printf(" | %6.2f %7ld %8ld %8.2f", m->routability, m->vias,
                m->wirelength, m->seconds);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpr;
  bench::Harness h("bench_table2_routers",
                   "Table 2: routing quality of sequential planning, "
                   "no-pin-access routing, and CPR");
  std::string sweepArg;
  h.parser().option("--thread-sweep", "1,2,4,8",
                    "rerun the CPR routing stage at each thread count and "
                    "report the route.sweep scaling series",
                    &sweepArg);
  if (const int rc = h.parse(argc, argv); rc >= 0) return rc;
  const auto suite = h.suite();
  obs::Collector report;
  report.note("bench", "table2_routers");

  // Arm the hot-path allocation gate for the whole run (the counting
  // operator new is linked into every bench). Any allocation inside a
  // support::alloc::HotRegion — today the maze A* loop — lands in the
  // `pao.alloc.hot_path_allocs` counter below; CI asserts it stays 0.
  support::alloc::resetHotRegionAllocs();
  support::alloc::arm(true);

  std::printf("Table 2: comparisons on solution qualities of different "
              "routing approaches\n");
  std::printf("%-5s %6s %7s | %-32s | %-32s | %-32s\n", "Ckt", "Net#",
              "Size", "Sequential pin access planning [12]",
              "Routing w/o pin access opt [21]", "CPR");
  std::printf("%-5s %6s %7s", "", "", "");
  for (int k = 0; k < 3; ++k)
    std::printf(" | %6s %7s %8s %8s", "Rout%", "Via#", "WL", "cpu(s)");
  std::printf("\n");
  bench::hr();

  Row sum{};
  int designs = 0;
  for (const gen::SuiteSpec& spec : suite) {
    const db::Design d = gen::makeSuiteDesign(spec);

    route::SequentialOptions so;
    const eval::Metrics mSeq = eval::summarize(d, route::routeSequential(d, so));

    const eval::Metrics mNoPao =
        eval::summarize(d, route::routeNegotiated(d, nullptr));

    route::CprOptions copts;
    copts.pinAccess.threads = h.threads();
    copts.routing.threads = h.threads();
    const route::CprResult c = route::routeCpr(d, copts);
    const eval::Metrics mCpr =
        eval::summarize(d, c.routing, c.pinAccessSeconds);
    report.merge(c.plan.stats);

    printRow(spec, d, Row{mSeq, mNoPao, mCpr});
    auto acc = [](eval::Metrics& a, const eval::Metrics& b) {
      a.routability += b.routability;
      a.vias += b.vias;
      a.wirelength += b.wirelength;
      a.seconds += b.seconds;
    };
    acc(sum.seq, mSeq);
    acc(sum.nopao, mNoPao);
    acc(sum.cpr_, mCpr);
    ++designs;
  }
  bench::hr();
  if (designs > 0) {
    std::printf("%-5s %6s %7s", "Avg.", "", "");
    for (const eval::Metrics* m : {&sum.seq, &sum.nopao, &sum.cpr_}) {
      std::printf(" | %6.2f %7ld %8ld %8.2f", m->routability / designs,
                  m->vias / designs, m->wirelength / designs,
                  m->seconds / designs);
    }
    std::printf("\n%-5s %6s %7s", "Ratio", "", "");
    for (const eval::Metrics* m : {&sum.seq, &sum.nopao, &sum.cpr_}) {
      std::printf(" | %6.3f %7.3f %8.3f %8.2f",
                  m->routability / sum.cpr_.routability,
                  static_cast<double>(m->vias) / sum.cpr_.vias,
                  static_cast<double>(m->wirelength) / sum.cpr_.wirelength,
                  m->seconds / sum.cpr_.seconds);
    }
    std::printf("\n");
    std::printf("\nPaper ratios (vs CPR): [12] Rout 0.985 Via 1.238 WL 1.160 "
                "cpu 12.69 | [21] Rout 0.962 Via 1.108 WL 0.998 cpu 3.26\n");
  }
  if (!sweepArg.empty()) {
    const std::vector<int> counts = parseCounts(sweepArg);
    std::printf("\nRouting scaling sweep (CPR scheme, pin access planned "
                "once per design)\n");
    std::printf("%-5s %8s %10s %10s %7s  %s\n", "Ckt", "threads", "rrr(s)",
                "route(s)", "x1/xN", "digest");
    bench::hr();
    int designIdx = 0;
    for (const gen::SuiteSpec& spec : suite) {
      const db::Design d = gen::makeSuiteDesign(spec);
      route::CprOptions copts;
      copts.pinAccess.threads = h.threads();
      const core::PinAccessPlan plan =
          core::optimizePinAccess(d, copts.pinAccess);
      double base = 0.0;
      for (int n : counts) {
        route::NegotiationOptions ropts = copts.routing;
        ropts.threads = n;
        const route::RoutingResult r = route::routeNegotiated(d, &plan, ropts);
        const double rrr = spanSeconds(r.stats, obs::names::kRouteRrrSpan);
        if (n == counts.front()) base = r.seconds;
        const std::uint64_t digest = resultDigest(r);
        std::printf("%-5s %8d %10.3f %10.3f %7.2f  %016llx\n",
                    spec.name.c_str(), n, rrr, r.seconds,
                    r.seconds > 0.0 ? base / r.seconds : 0.0,
                    static_cast<unsigned long long>(digest));
        report.row(obs::names::kRouteSweepSeries,
                   {"design", "threads", "rrr_seconds", "route_seconds",
                    "digest"},
                   {static_cast<double>(designIdx), static_cast<double>(n),
                    rrr, r.seconds, static_cast<double>(digest >> 12)});
      }
      ++designIdx;
    }
    bench::hr();
  }
  support::alloc::arm(false);
  const long hotAllocs = support::alloc::hotRegionAllocs();
  report.add(obs::names::kPaoHotPathAllocs, hotAllocs);
  std::printf("\nhot-path allocations (armed gate, all runs): %ld\n",
              hotAllocs);
  h.maybeWriteReport(report);
  return hotAllocs == 0 ? 0 : 3;
}
