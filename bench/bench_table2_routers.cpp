/// \file bench_table2_routers.cpp
/// Reproduces Table 2: solution quality of the three routing approaches on
/// the six-design suite — sequential pin access planning [12], routing
/// without pin access optimization [21], and CPR.
///
/// Usage: bench_table2_routers [--designs ecc,efc,...] [--threads n]
///        [--report out.json]   (default: all six designs)
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "eval/metrics.h"
#include "route/cpr.h"
#include "route/sequential_router.h"

namespace {

struct Row {
  cpr::eval::Metrics seq, nopao, cpr_;
};

void printRow(const cpr::gen::SuiteSpec& spec, const cpr::db::Design& d,
              const Row& r) {
  std::printf("%-5s %6zu %7s", spec.name.c_str(), d.nets().size(),
              (std::to_string(static_cast<int>(spec.widthUm)) + "x" +
               std::to_string(static_cast<int>(spec.heightUm)))
                  .c_str());
  for (const cpr::eval::Metrics* m : {&r.seq, &r.nopao, &r.cpr_}) {
    std::printf(" | %6.2f %7ld %8ld %8.2f", m->routability, m->vias,
                m->wirelength, m->seconds);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpr;
  bench::Harness h("bench_table2_routers",
                   "Table 2: routing quality of sequential planning, "
                   "no-pin-access routing, and CPR");
  if (const int rc = h.parse(argc, argv); rc >= 0) return rc;
  const auto suite = h.suite();
  obs::Collector report;
  report.note("bench", "table2_routers");

  std::printf("Table 2: comparisons on solution qualities of different "
              "routing approaches\n");
  std::printf("%-5s %6s %7s | %-32s | %-32s | %-32s\n", "Ckt", "Net#",
              "Size", "Sequential pin access planning [12]",
              "Routing w/o pin access opt [21]", "CPR");
  std::printf("%-5s %6s %7s", "", "", "");
  for (int k = 0; k < 3; ++k)
    std::printf(" | %6s %7s %8s %8s", "Rout%", "Via#", "WL", "cpu(s)");
  std::printf("\n");
  bench::hr();

  Row sum{};
  int designs = 0;
  for (const gen::SuiteSpec& spec : suite) {
    const db::Design d = gen::makeSuiteDesign(spec);

    route::SequentialOptions so;
    const eval::Metrics mSeq = eval::summarize(d, route::routeSequential(d, so));

    const eval::Metrics mNoPao =
        eval::summarize(d, route::routeNegotiated(d, nullptr));

    route::CprOptions copts;
    copts.pinAccess.threads = h.threads();
    const route::CprResult c = route::routeCpr(d, copts);
    const eval::Metrics mCpr =
        eval::summarize(d, c.routing, c.pinAccessSeconds);
    report.merge(c.plan.stats);

    printRow(spec, d, Row{mSeq, mNoPao, mCpr});
    auto acc = [](eval::Metrics& a, const eval::Metrics& b) {
      a.routability += b.routability;
      a.vias += b.vias;
      a.wirelength += b.wirelength;
      a.seconds += b.seconds;
    };
    acc(sum.seq, mSeq);
    acc(sum.nopao, mNoPao);
    acc(sum.cpr_, mCpr);
    ++designs;
  }
  bench::hr();
  if (designs > 0) {
    std::printf("%-5s %6s %7s", "Avg.", "", "");
    for (const eval::Metrics* m : {&sum.seq, &sum.nopao, &sum.cpr_}) {
      std::printf(" | %6.2f %7ld %8ld %8.2f", m->routability / designs,
                  m->vias / designs, m->wirelength / designs,
                  m->seconds / designs);
    }
    std::printf("\n%-5s %6s %7s", "Ratio", "", "");
    for (const eval::Metrics* m : {&sum.seq, &sum.nopao, &sum.cpr_}) {
      std::printf(" | %6.3f %7.3f %8.3f %8.2f",
                  m->routability / sum.cpr_.routability,
                  static_cast<double>(m->vias) / sum.cpr_.vias,
                  static_cast<double>(m->wirelength) / sum.cpr_.wirelength,
                  m->seconds / sum.cpr_.seconds);
    }
    std::printf("\n");
    std::printf("\nPaper ratios (vs CPR): [12] Rout 0.985 Via 1.238 WL 1.160 "
                "cpu 12.69 | [21] Rout 0.962 Via 1.108 WL 0.998 cpu 3.26\n");
  }
  h.maybeWriteReport(report);
  return 0;
}
