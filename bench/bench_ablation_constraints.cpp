/// \file bench_ablation_constraints.cpp
/// Ablation: conflict-set (clique) constraints vs the naive pairwise
/// encoding. The paper's Section 3.3 argues the pairwise form is quadratic
/// in the interval count while the linear conflict-set form keeps the ILP
/// tractable; this bench counts rows and times the generic LP-based branch &
/// bound on both encodings over growing instances.
///
/// Usage: bench_ablation_constraints [--max-pins n] [--cap sec]
#include <cstdio>
#include <span>

#include "bench_util.h"
#include "core/conflict.h"
#include "core/ilp_builder.h"
#include "core/interval_gen.h"
#include "db/panel.h"
#include "ilp/branch_and_bound.h"

int main(int argc, char** argv) {
  using namespace cpr;
  long maxPinsArg = 60;
  double cap = 10.0;
  bench::Harness h("bench_ablation_constraints",
                   "ablation: clique vs pairwise conflict rows");
  h.parser().option("--max-pins", "n", "stop once the instance reaches this "
                    "many pins (default 60)", &maxPinsArg);
  h.parser().option("--cap", "sec", "LP branch & bound wall-clock cap "
                    "(default 10)", &cap);
  if (const int rc = h.parse(argc, argv); rc >= 0) return rc;
  const std::size_t maxPins = static_cast<std::size_t>(maxPinsArg);

  // Small, low-competition instances keep the generic LP B&B in range.
  gen::GenOptions go;
  go.seed = 3;
  go.width = 220;
  go.numRows = 8;
  go.pinDensity = 0.08;
  go.maxNetSpan = 24;
  go.maxNetRowSpread = 0;
  const db::Design d = gen::generate(go);
  const std::vector<db::Panel> panels = db::extractPanels(d);
  core::GenOptions g;
  g.maxExtent = 10;

  std::printf("Ablation: clique vs pairwise conflict constraints "
              "(generic LP branch & bound, cap %.0fs)\n", cap);
  std::printf("%5s %9s | %10s %10s | %12s %12s\n", "pins", "intervals",
              "cliqueRows", "pairRows", "clique cpu", "pair cpu");
  bench::hr();

  for (std::size_t count = 1; count <= panels.size(); ++count) {
    core::Problem prob = core::buildProblem(
        d, std::span<const db::Panel>(panels.data(), count), g);
    core::detectConflicts(prob);
    if (prob.pins.size() > maxPins) break;
    if (prob.pins.empty()) continue;

    const core::IlpBuild clique = core::buildIlpModel(prob, false);
    const core::IlpBuild pair = core::buildIlpModel(prob, true);

    ilp::IlpOptions opts;
    opts.lp.implicitUnitBounds = true;

    auto t0 = bench::Clock::now();
    opts.deadline = support::Deadline::after(cap);
    const ilp::IlpResult a = ilp::solveBinaryIlp(clique.model, opts);
    const double cliqueSec = bench::seconds(t0, bench::Clock::now());
    t0 = bench::Clock::now();
    opts.deadline = support::Deadline::after(cap);
    const ilp::IlpResult b = ilp::solveBinaryIlp(pair.model, opts);
    const double pairSec = bench::seconds(t0, bench::Clock::now());

    std::printf("%5zu %9zu | %10d %10d | %10.3f%s %10.3f%s\n",
                prob.pins.size(), prob.intervals.size(),
                clique.model.numConstraints(), pair.model.numConstraints(),
                cliqueSec, a.status == ilp::IlpStatus::Optimal ? " " : "+",
                pairSec, b.status == ilp::IlpStatus::Optimal ? " " : "+");
    std::fflush(stdout);
  }
  std::printf("('+' marks runs cut off by the cap)\n");
  return 0;
}
