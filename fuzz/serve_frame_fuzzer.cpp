/// \file serve_frame_fuzzer.cpp
/// libFuzzer target for the routing-service wire codec.
///
/// The codec is the daemon's trust boundary (serve/protocol.h): for ANY
/// byte sequence, `decodeRequest` and `decodeReply` must return either a
/// structured frame or an Invalid frame with a diagnostic — never crash,
/// hang, recurse on attacker-controlled depth, or leak an exception.
///
/// Frames that decode as valid are additionally pushed through an
/// encode/decode round trip. One decode may quantize a value (the seed
/// travels as a JSON number), so the check is for a fixed point: after one
/// stabilizing pass, re-encoding must reproduce the frame byte for byte.
///
/// Build with -DCPR_BUILD_FUZZERS=ON (clang only); see fuzz/CMakeLists.txt.
/// The regression corpus lives in tests/corpus/serve.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.h"

namespace {

void checkRequestRoundTrip(const cpr::serve::RouteRequest& route) {
  using cpr::serve::Request;
  const std::string f1 = cpr::serve::encodeRouteRequest(route);
  const Request r2 = cpr::serve::decodeRequest(f1);
  if (r2.kind != Request::Kind::Route) __builtin_trap();
  const std::string f2 = cpr::serve::encodeRouteRequest(r2.route);
  const Request r3 = cpr::serve::decodeRequest(f2);
  if (r3.kind != Request::Kind::Route) __builtin_trap();
  if (cpr::serve::encodeRouteRequest(r3.route) != f2) __builtin_trap();
}

void checkResultRoundTrip(const cpr::serve::JobResult& result) {
  using cpr::serve::Reply;
  const std::string f1 = cpr::serve::encodeResult(result);
  const Reply r2 = cpr::serve::decodeReply(f1);
  if (r2.kind != Reply::Kind::Result) __builtin_trap();
  const std::string f2 = cpr::serve::encodeResult(r2.result);
  const Reply r3 = cpr::serve::decodeReply(f2);
  if (r3.kind != Reply::Kind::Result) __builtin_trap();
  if (cpr::serve::encodeResult(r3.result) != f2) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);

  const cpr::serve::Request req = cpr::serve::decodeRequest(line);
  if (req.kind == cpr::serve::Request::Kind::Route)
    checkRequestRoundTrip(req.route);
  if (req.kind == cpr::serve::Request::Kind::Invalid && req.error.empty())
    __builtin_trap();  // an Invalid frame must carry its diagnostic

  const cpr::serve::Reply reply = cpr::serve::decodeReply(line);
  if (reply.kind == cpr::serve::Reply::Kind::Result)
    checkResultRoundTrip(reply.result);
  return 0;
}
