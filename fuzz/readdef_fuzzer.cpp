/// \file readdef_fuzzer.cpp
/// libFuzzer target for the DEF-subset reader.
///
/// Contract under test: for ANY byte sequence, `readDef` either returns a
/// design or throws `DefParseError` — it must never crash, hang, read out
/// of bounds, or leak any other exception type. `validate()` is invoked on
/// accepted designs so semantic checks get fuzzed too, and accepted designs
/// are additionally round-tripped through the writer (write -> re-read must
/// succeed: the writer may not emit text the reader rejects).
///
/// Build with -DCPR_BUILD_FUZZERS=ON (clang only); see fuzz/CMakeLists.txt.
/// The regression corpus lives in tests/corpus/def.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "lefdef/def_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const cpr::db::Design d = cpr::lefdef::readDef(is);
    (void)d.validate();
    std::stringstream round;
    cpr::lefdef::writeDef(d, round);
    (void)cpr::lefdef::readDef(round);
  } catch (const cpr::lefdef::DefParseError&) {
    // Expected outcome for malformed input.
  }
  return 0;
}
