# Empty compiler generated dependencies file for cpr_gen.
# This may be replaced when dependencies are built.
