file(REMOVE_RECURSE
  "libcpr_gen.a"
)
