file(REMOVE_RECURSE
  "CMakeFiles/cpr_gen.dir/generator.cpp.o"
  "CMakeFiles/cpr_gen.dir/generator.cpp.o.d"
  "libcpr_gen.a"
  "libcpr_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
