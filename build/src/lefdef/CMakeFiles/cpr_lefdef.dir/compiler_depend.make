# Empty compiler generated dependencies file for cpr_lefdef.
# This may be replaced when dependencies are built.
