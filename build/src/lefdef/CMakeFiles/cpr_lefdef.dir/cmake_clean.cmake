file(REMOVE_RECURSE
  "CMakeFiles/cpr_lefdef.dir/def_io.cpp.o"
  "CMakeFiles/cpr_lefdef.dir/def_io.cpp.o.d"
  "libcpr_lefdef.a"
  "libcpr_lefdef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_lefdef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
