
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lefdef/def_io.cpp" "src/lefdef/CMakeFiles/cpr_lefdef.dir/def_io.cpp.o" "gcc" "src/lefdef/CMakeFiles/cpr_lefdef.dir/def_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/cpr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/cpr_route.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/cpr_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/cpr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
