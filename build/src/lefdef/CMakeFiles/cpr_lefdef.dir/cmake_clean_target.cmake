file(REMOVE_RECURSE
  "libcpr_lefdef.a"
)
