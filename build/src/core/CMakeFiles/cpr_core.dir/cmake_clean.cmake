file(REMOVE_RECURSE
  "CMakeFiles/cpr_core.dir/conflict.cpp.o"
  "CMakeFiles/cpr_core.dir/conflict.cpp.o.d"
  "CMakeFiles/cpr_core.dir/exact_solver.cpp.o"
  "CMakeFiles/cpr_core.dir/exact_solver.cpp.o.d"
  "CMakeFiles/cpr_core.dir/ilp_builder.cpp.o"
  "CMakeFiles/cpr_core.dir/ilp_builder.cpp.o.d"
  "CMakeFiles/cpr_core.dir/interval_gen.cpp.o"
  "CMakeFiles/cpr_core.dir/interval_gen.cpp.o.d"
  "CMakeFiles/cpr_core.dir/lr_solver.cpp.o"
  "CMakeFiles/cpr_core.dir/lr_solver.cpp.o.d"
  "CMakeFiles/cpr_core.dir/optimizer.cpp.o"
  "CMakeFiles/cpr_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/cpr_core.dir/problem.cpp.o"
  "CMakeFiles/cpr_core.dir/problem.cpp.o.d"
  "libcpr_core.a"
  "libcpr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
