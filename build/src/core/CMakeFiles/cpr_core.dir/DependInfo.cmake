
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/conflict.cpp" "src/core/CMakeFiles/cpr_core.dir/conflict.cpp.o" "gcc" "src/core/CMakeFiles/cpr_core.dir/conflict.cpp.o.d"
  "/root/repo/src/core/exact_solver.cpp" "src/core/CMakeFiles/cpr_core.dir/exact_solver.cpp.o" "gcc" "src/core/CMakeFiles/cpr_core.dir/exact_solver.cpp.o.d"
  "/root/repo/src/core/ilp_builder.cpp" "src/core/CMakeFiles/cpr_core.dir/ilp_builder.cpp.o" "gcc" "src/core/CMakeFiles/cpr_core.dir/ilp_builder.cpp.o.d"
  "/root/repo/src/core/interval_gen.cpp" "src/core/CMakeFiles/cpr_core.dir/interval_gen.cpp.o" "gcc" "src/core/CMakeFiles/cpr_core.dir/interval_gen.cpp.o.d"
  "/root/repo/src/core/lr_solver.cpp" "src/core/CMakeFiles/cpr_core.dir/lr_solver.cpp.o" "gcc" "src/core/CMakeFiles/cpr_core.dir/lr_solver.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/cpr_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/cpr_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/cpr_core.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/cpr_core.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/cpr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/cpr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/cpr_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
