# Empty compiler generated dependencies file for cpr_db.
# This may be replaced when dependencies are built.
