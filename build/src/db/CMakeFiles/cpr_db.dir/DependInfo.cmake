
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/design.cpp" "src/db/CMakeFiles/cpr_db.dir/design.cpp.o" "gcc" "src/db/CMakeFiles/cpr_db.dir/design.cpp.o.d"
  "/root/repo/src/db/panel.cpp" "src/db/CMakeFiles/cpr_db.dir/panel.cpp.o" "gcc" "src/db/CMakeFiles/cpr_db.dir/panel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/cpr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
