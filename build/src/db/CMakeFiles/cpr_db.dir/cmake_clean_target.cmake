file(REMOVE_RECURSE
  "libcpr_db.a"
)
