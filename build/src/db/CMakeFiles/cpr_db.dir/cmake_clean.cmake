file(REMOVE_RECURSE
  "CMakeFiles/cpr_db.dir/design.cpp.o"
  "CMakeFiles/cpr_db.dir/design.cpp.o.d"
  "CMakeFiles/cpr_db.dir/panel.cpp.o"
  "CMakeFiles/cpr_db.dir/panel.cpp.o.d"
  "libcpr_db.a"
  "libcpr_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
