# Empty compiler generated dependencies file for cpr_viz.
# This may be replaced when dependencies are built.
