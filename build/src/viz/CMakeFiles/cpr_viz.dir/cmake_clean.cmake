file(REMOVE_RECURSE
  "CMakeFiles/cpr_viz.dir/ascii.cpp.o"
  "CMakeFiles/cpr_viz.dir/ascii.cpp.o.d"
  "CMakeFiles/cpr_viz.dir/svg.cpp.o"
  "CMakeFiles/cpr_viz.dir/svg.cpp.o.d"
  "libcpr_viz.a"
  "libcpr_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
