file(REMOVE_RECURSE
  "libcpr_viz.a"
)
