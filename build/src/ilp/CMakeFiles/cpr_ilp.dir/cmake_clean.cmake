file(REMOVE_RECURSE
  "CMakeFiles/cpr_ilp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/cpr_ilp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/cpr_ilp.dir/model.cpp.o"
  "CMakeFiles/cpr_ilp.dir/model.cpp.o.d"
  "CMakeFiles/cpr_ilp.dir/simplex.cpp.o"
  "CMakeFiles/cpr_ilp.dir/simplex.cpp.o.d"
  "libcpr_ilp.a"
  "libcpr_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
