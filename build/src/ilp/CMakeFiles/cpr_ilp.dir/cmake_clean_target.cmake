file(REMOVE_RECURSE
  "libcpr_ilp.a"
)
