# Empty dependencies file for cpr_ilp.
# This may be replaced when dependencies are built.
