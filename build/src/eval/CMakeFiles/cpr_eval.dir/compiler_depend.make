# Empty compiler generated dependencies file for cpr_eval.
# This may be replaced when dependencies are built.
