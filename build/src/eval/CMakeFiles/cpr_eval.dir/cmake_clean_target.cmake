file(REMOVE_RECURSE
  "libcpr_eval.a"
)
