file(REMOVE_RECURSE
  "CMakeFiles/cpr_eval.dir/metrics.cpp.o"
  "CMakeFiles/cpr_eval.dir/metrics.cpp.o.d"
  "libcpr_eval.a"
  "libcpr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
