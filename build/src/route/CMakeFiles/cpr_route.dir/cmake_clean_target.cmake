file(REMOVE_RECURSE
  "libcpr_route.a"
)
