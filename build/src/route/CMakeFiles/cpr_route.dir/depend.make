# Empty dependencies file for cpr_route.
# This may be replaced when dependencies are built.
