
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/cpr.cpp" "src/route/CMakeFiles/cpr_route.dir/cpr.cpp.o" "gcc" "src/route/CMakeFiles/cpr_route.dir/cpr.cpp.o.d"
  "/root/repo/src/route/drc.cpp" "src/route/CMakeFiles/cpr_route.dir/drc.cpp.o" "gcc" "src/route/CMakeFiles/cpr_route.dir/drc.cpp.o.d"
  "/root/repo/src/route/engine.cpp" "src/route/CMakeFiles/cpr_route.dir/engine.cpp.o" "gcc" "src/route/CMakeFiles/cpr_route.dir/engine.cpp.o.d"
  "/root/repo/src/route/grid.cpp" "src/route/CMakeFiles/cpr_route.dir/grid.cpp.o" "gcc" "src/route/CMakeFiles/cpr_route.dir/grid.cpp.o.d"
  "/root/repo/src/route/maze.cpp" "src/route/CMakeFiles/cpr_route.dir/maze.cpp.o" "gcc" "src/route/CMakeFiles/cpr_route.dir/maze.cpp.o.d"
  "/root/repo/src/route/negotiation_router.cpp" "src/route/CMakeFiles/cpr_route.dir/negotiation_router.cpp.o" "gcc" "src/route/CMakeFiles/cpr_route.dir/negotiation_router.cpp.o.d"
  "/root/repo/src/route/sequential_router.cpp" "src/route/CMakeFiles/cpr_route.dir/sequential_router.cpp.o" "gcc" "src/route/CMakeFiles/cpr_route.dir/sequential_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/cpr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/cpr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/cpr_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
