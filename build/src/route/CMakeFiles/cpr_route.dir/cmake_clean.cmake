file(REMOVE_RECURSE
  "CMakeFiles/cpr_route.dir/cpr.cpp.o"
  "CMakeFiles/cpr_route.dir/cpr.cpp.o.d"
  "CMakeFiles/cpr_route.dir/drc.cpp.o"
  "CMakeFiles/cpr_route.dir/drc.cpp.o.d"
  "CMakeFiles/cpr_route.dir/engine.cpp.o"
  "CMakeFiles/cpr_route.dir/engine.cpp.o.d"
  "CMakeFiles/cpr_route.dir/grid.cpp.o"
  "CMakeFiles/cpr_route.dir/grid.cpp.o.d"
  "CMakeFiles/cpr_route.dir/maze.cpp.o"
  "CMakeFiles/cpr_route.dir/maze.cpp.o.d"
  "CMakeFiles/cpr_route.dir/negotiation_router.cpp.o"
  "CMakeFiles/cpr_route.dir/negotiation_router.cpp.o.d"
  "CMakeFiles/cpr_route.dir/sequential_router.cpp.o"
  "CMakeFiles/cpr_route.dir/sequential_router.cpp.o.d"
  "libcpr_route.a"
  "libcpr_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
