file(REMOVE_RECURSE
  "libcpr_geom.a"
)
