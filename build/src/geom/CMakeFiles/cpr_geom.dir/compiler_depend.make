# Empty compiler generated dependencies file for cpr_geom.
# This may be replaced when dependencies are built.
