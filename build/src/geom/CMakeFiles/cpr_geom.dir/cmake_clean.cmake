file(REMOVE_RECURSE
  "CMakeFiles/cpr_geom.dir/interval_set.cpp.o"
  "CMakeFiles/cpr_geom.dir/interval_set.cpp.o.d"
  "libcpr_geom.a"
  "libcpr_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
