# Empty dependencies file for bench_fig7b_congestion.
# This may be replaced when dependencies are built.
