file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_routers.dir/bench_table2_routers.cpp.o"
  "CMakeFiles/bench_table2_routers.dir/bench_table2_routers.cpp.o.d"
  "bench_table2_routers"
  "bench_table2_routers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_routers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
