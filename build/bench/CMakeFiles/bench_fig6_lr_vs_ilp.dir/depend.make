# Empty dependencies file for bench_fig6_lr_vs_ilp.
# This may be replaced when dependencies are built.
