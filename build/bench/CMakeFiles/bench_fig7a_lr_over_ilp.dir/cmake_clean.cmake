file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_lr_over_ilp.dir/bench_fig7a_lr_over_ilp.cpp.o"
  "CMakeFiles/bench_fig7a_lr_over_ilp.dir/bench_fig7a_lr_over_ilp.cpp.o.d"
  "bench_fig7a_lr_over_ilp"
  "bench_fig7a_lr_over_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_lr_over_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
