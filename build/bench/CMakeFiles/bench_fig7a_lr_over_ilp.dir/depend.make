# Empty dependencies file for bench_fig7a_lr_over_ilp.
# This may be replaced when dependencies are built.
