file(REMOVE_RECURSE
  "CMakeFiles/def_workflow.dir/def_workflow.cpp.o"
  "CMakeFiles/def_workflow.dir/def_workflow.cpp.o.d"
  "def_workflow"
  "def_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/def_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
