# Empty compiler generated dependencies file for def_workflow.
# This may be replaced when dependencies are built.
