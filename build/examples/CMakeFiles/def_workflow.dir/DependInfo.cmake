
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/def_workflow.cpp" "examples/CMakeFiles/def_workflow.dir/def_workflow.cpp.o" "gcc" "examples/CMakeFiles/def_workflow.dir/def_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/cpr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/cpr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/cpr_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/cpr_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/cpr_route.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/cpr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/lefdef/CMakeFiles/cpr_lefdef.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
