file(REMOVE_RECURSE
  "CMakeFiles/full_chip_route.dir/full_chip_route.cpp.o"
  "CMakeFiles/full_chip_route.dir/full_chip_route.cpp.o.d"
  "full_chip_route"
  "full_chip_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_chip_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
