# Empty compiler generated dependencies file for full_chip_route.
# This may be replaced when dependencies are built.
