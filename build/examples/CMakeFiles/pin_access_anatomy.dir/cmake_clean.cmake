file(REMOVE_RECURSE
  "CMakeFiles/pin_access_anatomy.dir/pin_access_anatomy.cpp.o"
  "CMakeFiles/pin_access_anatomy.dir/pin_access_anatomy.cpp.o.d"
  "pin_access_anatomy"
  "pin_access_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pin_access_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
