# Empty dependencies file for pin_access_anatomy.
# This may be replaced when dependencies are built.
