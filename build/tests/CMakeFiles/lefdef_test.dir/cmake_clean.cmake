file(REMOVE_RECURSE
  "CMakeFiles/lefdef_test.dir/lefdef_test.cpp.o"
  "CMakeFiles/lefdef_test.dir/lefdef_test.cpp.o.d"
  "lefdef_test"
  "lefdef_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lefdef_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
