# Empty dependencies file for core_interval_gen_test.
# This may be replaced when dependencies are built.
