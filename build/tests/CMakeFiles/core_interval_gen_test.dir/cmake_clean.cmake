file(REMOVE_RECURSE
  "CMakeFiles/core_interval_gen_test.dir/core_interval_gen_test.cpp.o"
  "CMakeFiles/core_interval_gen_test.dir/core_interval_gen_test.cpp.o.d"
  "core_interval_gen_test"
  "core_interval_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_interval_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
