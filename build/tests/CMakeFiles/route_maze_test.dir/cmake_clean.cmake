file(REMOVE_RECURSE
  "CMakeFiles/route_maze_test.dir/route_maze_test.cpp.o"
  "CMakeFiles/route_maze_test.dir/route_maze_test.cpp.o.d"
  "route_maze_test"
  "route_maze_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_maze_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
