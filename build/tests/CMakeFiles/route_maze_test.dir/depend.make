# Empty dependencies file for route_maze_test.
# This may be replaced when dependencies are built.
