# Empty dependencies file for core_reexpand_test.
# This may be replaced when dependencies are built.
