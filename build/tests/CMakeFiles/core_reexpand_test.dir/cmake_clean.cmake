file(REMOVE_RECURSE
  "CMakeFiles/core_reexpand_test.dir/core_reexpand_test.cpp.o"
  "CMakeFiles/core_reexpand_test.dir/core_reexpand_test.cpp.o.d"
  "core_reexpand_test"
  "core_reexpand_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reexpand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
