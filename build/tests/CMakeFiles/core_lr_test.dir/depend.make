# Empty dependencies file for core_lr_test.
# This may be replaced when dependencies are built.
