file(REMOVE_RECURSE
  "CMakeFiles/core_lr_test.dir/core_lr_test.cpp.o"
  "CMakeFiles/core_lr_test.dir/core_lr_test.cpp.o.d"
  "core_lr_test"
  "core_lr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
