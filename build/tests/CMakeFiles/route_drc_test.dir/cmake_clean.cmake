file(REMOVE_RECURSE
  "CMakeFiles/route_drc_test.dir/route_drc_test.cpp.o"
  "CMakeFiles/route_drc_test.dir/route_drc_test.cpp.o.d"
  "route_drc_test"
  "route_drc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_drc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
