# Empty dependencies file for route_drc_test.
# This may be replaced when dependencies are built.
