# Empty dependencies file for route_engine_test.
# This may be replaced when dependencies are built.
