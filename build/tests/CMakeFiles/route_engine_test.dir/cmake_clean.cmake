file(REMOVE_RECURSE
  "CMakeFiles/route_engine_test.dir/route_engine_test.cpp.o"
  "CMakeFiles/route_engine_test.dir/route_engine_test.cpp.o.d"
  "route_engine_test"
  "route_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
