# Empty compiler generated dependencies file for route_integration_test.
# This may be replaced when dependencies are built.
