file(REMOVE_RECURSE
  "CMakeFiles/route_integration_test.dir/route_integration_test.cpp.o"
  "CMakeFiles/route_integration_test.dir/route_integration_test.cpp.o.d"
  "route_integration_test"
  "route_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
