# Empty compiler generated dependencies file for route_grid_test.
# This may be replaced when dependencies are built.
