file(REMOVE_RECURSE
  "CMakeFiles/route_grid_test.dir/route_grid_test.cpp.o"
  "CMakeFiles/route_grid_test.dir/route_grid_test.cpp.o.d"
  "route_grid_test"
  "route_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
