# Empty dependencies file for ilp_edge_test.
# This may be replaced when dependencies are built.
