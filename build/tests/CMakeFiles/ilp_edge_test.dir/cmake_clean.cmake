file(REMOVE_RECURSE
  "CMakeFiles/ilp_edge_test.dir/ilp_edge_test.cpp.o"
  "CMakeFiles/ilp_edge_test.dir/ilp_edge_test.cpp.o.d"
  "ilp_edge_test"
  "ilp_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
