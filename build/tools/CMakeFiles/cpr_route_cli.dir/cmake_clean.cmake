file(REMOVE_RECURSE
  "CMakeFiles/cpr_route_cli.dir/cpr_route.cpp.o"
  "CMakeFiles/cpr_route_cli.dir/cpr_route.cpp.o.d"
  "cpr_route"
  "cpr_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_route_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
