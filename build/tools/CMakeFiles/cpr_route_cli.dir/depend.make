# Empty dependencies file for cpr_route_cli.
# This may be replaced when dependencies are built.
