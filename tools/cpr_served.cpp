/// \file cpr_served.cpp
/// The routing daemon: a long-lived `serve::Server` on a local socket.
///
///   cpr_served --socket /tmp/cpr.sock
///   cpr_served --socket /tmp/cpr.sock --workers 4 --lane-capacity 16
///   cpr_served --socket /tmp/cpr.sock --default-budget 5 --max-retries 1
///
/// The daemon runs until SIGINT/SIGTERM or a client `shutdown` request
/// (always honoured here; embedded test servers opt in separately). On the
/// way out it drains the queue to Cancelled terminals, finishes in-flight
/// jobs, and optionally writes its lifetime counters as a cpr.report.v1
/// JSON file (--stats-report).
///
/// Exit codes follow the shared cli::exitCodeFor table; the daemon itself
/// only uses 0 (clean shutdown), 2 (usage), and 5 (could not bind).
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <thread>

#include "cli.h"
#include "obs/names.h"
#include "obs/report.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace cpr;
  serve::ServerOptions opts;
  opts.allowRemoteShutdown = true;
  std::string statsReportPath;
  long laneCapacity = static_cast<long>(opts.laneCapacity);

  cli::Parser parser("cpr_served", "long-lived routing service daemon");
  parser.option("--socket", "path", "AF_UNIX socket path to listen on",
                &opts.socketPath);
  parser.option("--workers", "n", "job worker threads (default 2)",
                &opts.workers);
  parser.option("--lane-capacity", "n",
                "admission bound per priority lane (default 8); a full lane "
                "rejects jobs with status cancelled instead of queueing",
                &laneCapacity);
  parser.option("--default-budget", "seconds",
                "budget for jobs that do not request one (default 10)",
                &opts.defaultBudgetSeconds);
  parser.option("--max-job-seconds", "seconds",
                "server-wide watchdog: no job runs longer than this "
                "(default 60)",
                &opts.maxJobSeconds);
  parser.option("--max-retries", "n",
                "extra attempts after a timed-out first run (default 1)",
                &opts.maxRetries);
  parser.option("--job-threads", "n",
                "threads each job's pipeline may use (default 1)",
                &opts.jobThreads);
  parser.option("--seed", "n", "retry-jitter noise seed", &opts.seed);
  parser.option("--stats-report", "path",
                "write lifetime counters as cpr.report.v1 JSON on shutdown",
                &statsReportPath);
  parser.epilog(
      "exit codes: 0 clean shutdown, 2 usage error, 5 cannot bind socket.\n"
      "Job outcomes are per-frame, not process-wide; see cpr_client for the\n"
      "full status table (including 6 = cancelled by admission control).\n");
  if (!parser.parse(argc, argv)) return 2;
  if (parser.helpRequested() || opts.socketPath.empty()) {
    parser.printUsage(parser.helpRequested() ? stdout : stderr);
    return parser.helpRequested() ? 0 : 2;
  }
  opts.laneCapacity = static_cast<std::size_t>(std::max(1L, laneCapacity));

  // Block the termination signals before any thread exists so every thread
  // inherits the mask; a dedicated sigwait thread turns them into a
  // graceful shutdown request instead of killing a worker mid-route.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  serve::Server server(opts);
  if (const support::Status st = server.start(); !st.isOk()) {
    std::fprintf(stderr, "cpr_served: %s\n", st.toString().c_str());
    return cli::exitCodeFor(st.code());
  }
  std::printf("cpr_served: listening on %s (%d workers, lane capacity %zu)\n",
              opts.socketPath.c_str(), std::max(1, opts.workers),
              opts.laneCapacity);
  std::fflush(stdout);

  // The signal thread only *requests* shutdown; main owns the teardown and
  // the server's lifetime. (A detached thread calling stop() itself would
  // race main's stop()/destructor over the server's members.)
  std::thread sigThread([&server, sigs]() mutable {
    int sig = 0;
    sigwait(&sigs, &sig);
    server.requestShutdown();
  });

  server.waitForShutdownRequest();
  server.stop();
  // Counters are final only after stop(): the queue drain records its
  // Cancelled terminals on the way down.
  const obs::Collector stats = server.statsSnapshot();
  // Client-requested shutdown never delivers a signal: send ourselves a
  // process-directed SIGTERM (every thread blocks it, so it stays pending
  // until sigwait fetches it) to unblock the signal thread, then join it.
  ::kill(::getpid(), SIGTERM);
  sigThread.join();

  if (!statsReportPath.empty()) {
    obs::saveReportJson(stats, statsReportPath);
    std::printf("cpr_served: wrote %s\n", statsReportPath.c_str());
  }
  std::printf("cpr_served: served %ld job(s), rejected %ld, retried %ld\n",
              stats.counter(obs::names::kServeJobsCompleted) +
                  stats.counter(obs::names::kServeJobsFailed),
              stats.counter(obs::names::kServeJobsRejected),
              stats.counter(obs::names::kServeJobsRetried));
  return 0;
}
