/// \file cpr_client.cpp
/// Command-line client for the cpr_served routing daemon.
///
///   cpr_client --socket /tmp/cpr.sock --design ecc
///   cpr_client --socket /tmp/cpr.sock --def my.def --priority interactive
///   cpr_client --socket /tmp/cpr.sock --design alu --budget 2 --id myjob
///   cpr_client --socket /tmp/cpr.sock --ping
///   cpr_client --socket /tmp/cpr.sock --stats
///   cpr_client --socket /tmp/cpr.sock --shutdown
///
/// A --def file is read locally and shipped inline in the request frame —
/// the daemon never touches the client's filesystem. Progress frames
/// (accepted / started / retrying) stream to stderr as they arrive; the
/// terminal frame prints as a result table on stdout and selects the exit
/// code via the shared cli::exitCodeFor table.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli.h"
#include "serve/client.h"
#include "support/status.h"

namespace {

constexpr char kExitCodeHelp[] =
    "exit codes (cli::exitCodeFor):\n"
    "  0  job completed (status ok)\n"
    "  2  usage error\n"
    "  3  bad input: the daemon could not parse or validate the design\n"
    "  4  completed degraded, or a budget fired and the incumbent was kept\n"
    "  5  internal/transport error (daemon unreachable, job failed)\n"
    "  6  cancelled: admission control rejected the job (queue full) or\n"
    "     the daemon shut down before it ran\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace cpr;
  std::string socketPath;
  std::string defPath;
  std::string priority = "batch";
  bool ping = false;
  bool stats = false;
  bool shutdown = false;
  bool quiet = false;
  serve::RouteRequest req;
  req.id = "job1";

  cli::Parser parser("cpr_client", "client for the cpr_served daemon");
  parser.option("--socket", "path", "daemon AF_UNIX socket", &socketPath);
  parser.option("--design", "ecc|efc|ctl|alu|div|top",
                "synthesize a suite benchmark on the daemon", &req.design);
  parser.option("--def", "path",
                "ship this DEF-subset file inline for routing", &defPath);
  parser.option("--id", "name", "job id echoed in every reply (default job1)",
                &req.id);
  parser.option("--scheme", "cpr|nopao|seq", "routing scheme (default cpr)",
                &req.scheme);
  parser.option("--pin-access", "lr|ilp|generic",
                "pin access optimizer for the cpr scheme", &req.pinAccess);
  parser.option("--priority", "interactive|batch",
                "admission lane (default batch)", &priority);
  parser.option("--budget", "seconds",
                "job wall-clock budget (0 = daemon default)",
                &req.budgetSeconds);
  parser.option("--seed", "n", "generator seed for --design jobs", &req.seed);
  parser.flag("--ping", "liveness check: send ping, expect pong", &ping);
  parser.flag("--stats", "print the daemon's lifetime counters", &stats);
  parser.flag("--shutdown", "ask the daemon to shut down gracefully",
              &shutdown);
  parser.flag("--quiet", "suppress progress frames on stderr", &quiet);
  parser.epilog(kExitCodeHelp);
  if (!parser.parse(argc, argv)) return 2;
  const bool wantRoute = !ping && !stats && !shutdown;
  if (parser.helpRequested() || socketPath.empty() ||
      (wantRoute && req.design.empty() == defPath.empty())) {
    parser.printUsage(parser.helpRequested() ? stdout : stderr);
    return parser.helpRequested() ? 0 : 2;
  }
  if (priority == "interactive") {
    req.priority = serve::Priority::Interactive;
  } else if (priority != "batch") {
    std::fprintf(stderr, "unknown --priority %s\n", priority.c_str());
    return 2;
  }

  serve::Client client;
  if (const support::Status st = client.connect(socketPath); !st.isOk()) {
    std::fprintf(stderr, "cpr_client: %s\n", st.toString().c_str());
    return cli::exitCodeFor(st.code());
  }

  if (ping || stats || shutdown) {
    const std::string frame = ping      ? serve::encodePing()
                              : stats   ? serve::encodeStatsRequest()
                                        : serve::encodeShutdownRequest();
    if (!client.sendLine(frame)) {
      std::fprintf(stderr, "cpr_client: connection lost\n");
      return 5;
    }
    if (shutdown) {
      // No ack frame is defined: the daemon drains and closes; EOF is the
      // confirmation.
      std::string line;
      while (client.readLine(line)) {
      }
      std::printf("daemon shut down\n");
      return 0;
    }
    std::string line;
    if (!client.readLine(line)) {
      std::fprintf(stderr, "cpr_client: connection closed before reply\n");
      return 5;
    }
    const serve::Reply rep = serve::decodeReply(line);
    if (ping && rep.kind == serve::Reply::Kind::Pong) {
      std::printf("pong\n");
      return 0;
    }
    if (stats && rep.kind == serve::Reply::Kind::Stats) {
      std::printf("%s\n", rep.countersRaw.c_str());
      return 0;
    }
    std::fprintf(stderr, "cpr_client: unexpected reply: %s\n", line.c_str());
    return 5;
  }

  if (!defPath.empty()) {
    std::ifstream is(defPath);
    if (!is) {
      std::fprintf(stderr, "cpr_client: cannot read %s\n", defPath.c_str());
      return 3;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    req.defText = buf.str();
  }

  if (!client.sendLine(serve::encodeRouteRequest(req))) {
    std::fprintf(stderr, "cpr_client: connection lost sending the job\n");
    return 5;
  }
  serve::JobResult r;
  bool terminal = false;
  std::string line;
  while (!terminal && client.readLine(line)) {
    serve::Reply rep = serve::decodeReply(line);
    if (rep.kind == serve::Reply::Kind::Result && rep.id == req.id) {
      r = std::move(rep.result);
      terminal = true;
    } else if (!quiet) {
      std::fprintf(stderr, "[%s] %s%s%s\n", rep.id.c_str(), rep.event.c_str(),
                   rep.detail.empty() ? "" : ": ", rep.detail.c_str());
    }
  }
  if (!terminal) {
    std::fprintf(stderr,
                 "cpr_client: connection closed before the terminal frame\n");
    return 5;
  }
  std::printf("%-10s %-10s %8s %8s %8s %8s %9s  %s\n", "id", "status",
              "Rout%", "Via#", "WL", "cpu(s)", "attempts", "digest");
  std::printf("%-10s %-10s %8.2f %8ld %8ld %8.2f %9d  %s\n", r.id.c_str(),
              r.status.c_str(), r.routability, r.vias, r.wirelength,
              r.seconds, r.attempts, r.digest.c_str());
  if (!r.detail.empty()) std::printf("detail: %s\n", r.detail.c_str());
  return cli::exitCodeFor(support::statusCodeFromName(r.status));
}
