/// \file cli.h
/// Minimal reusable command-line option table for the repo's tools.
///
/// A tool declares its options once (name, value placeholder, help text,
/// destination) and gets parsing, `--help` output, and error reporting from
/// one place. Parsing is strict: unknown flags, missing values, and
/// unparsable numbers are errors — a typo never silently routes the wrong
/// design.
///
///   cli::Parser p("cpr_route", "concurrent pin access routing");
///   p.option("--design", "name", "suite benchmark to synthesize", &design);
///   p.option("--seed", "n", "generator seed", &seed);
///   p.flag("--verbose", "chatty progress output", &verbose);
///   if (!p.parse(argc, argv)) return 2;
///   if (p.helpRequested()) { p.printUsage(); return 0; }
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace cpr::cli {

/// Canonical mapping from a pipeline `Status` to a tool exit code, shared
/// by cpr_route, cpr_served, and cpr_client so scripts can branch on one
/// table:
///
///   0  Ok          success
///   2  —           usage error (reserved for the option parser)
///   3  Infeasible  bad input: DEF parse failure, validation failure
///   4  Degraded /  completed with quality sacrificed, or a budget fired
///      TimedOut    and the best incumbent was kept
///   5  Failed      internal error; result unusable
///   6  Cancelled   never ran: admission control rejected it, load was
///                  shed, or shutdown drained it from the queue
[[nodiscard]] inline int exitCodeFor(support::StatusCode code) {
  switch (code) {
    case support::StatusCode::Ok: return 0;
    case support::StatusCode::Infeasible: return 3;
    case support::StatusCode::Degraded:
    case support::StatusCode::TimedOut: return 4;
    case support::StatusCode::Failed: return 5;
    case support::StatusCode::Cancelled: return 6;
  }
  return 5;  // unreachable; new codes must be added to the table
}

class Parser {
 public:
  Parser(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  /// Boolean flag: present on the command line -> `*out = true`.
  void flag(std::string name, std::string help, bool* out) {
    opts_.push_back({std::move(name), "", std::move(help),
                     [out](const std::string&) {
                       *out = true;
                       return true;
                     }});
  }

  /// String-valued option; consumes the next argv entry.
  void option(std::string name, std::string valueName, std::string help,
              std::string* out) {
    opts_.push_back({std::move(name), std::move(valueName), std::move(help),
                     [out](const std::string& v) {
                       *out = v;
                       return true;
                     }});
  }

  void option(std::string name, std::string valueName, std::string help,
              int* out) {
    addNumeric(std::move(name), std::move(valueName), std::move(help),
               [out](long long v) { *out = static_cast<int>(v); });
  }

  void option(std::string name, std::string valueName, std::string help,
              long* out) {
    addNumeric(std::move(name), std::move(valueName), std::move(help),
               [out](long long v) { *out = static_cast<long>(v); });
  }

  void option(std::string name, std::string valueName, std::string help,
              std::uint64_t* out) {
    addNumeric(std::move(name), std::move(valueName), std::move(help),
               [out](long long v) { *out = static_cast<std::uint64_t>(v); });
  }

  void option(std::string name, std::string valueName, std::string help,
              double* out) {
    opts_.push_back({std::move(name), std::move(valueName), std::move(help),
                     [out](const std::string& v) {
                       char* end = nullptr;
                       const double parsed = std::strtod(v.c_str(), &end);
                       if (end == v.c_str() || *end != '\0') return false;
                       *out = parsed;
                       return true;
                     }});
  }

  /// Fully custom option; `apply` returns false to reject the value.
  void option(std::string name, std::string valueName, std::string help,
              std::function<bool(const std::string&)> apply) {
    opts_.push_back({std::move(name), std::move(valueName), std::move(help),
                     std::move(apply)});
  }

  /// Parses the whole command line. Returns false after printing a
  /// diagnostic when it hits an unknown flag, a missing value, or a value
  /// the option rejects. `--help` / `-h` stops parsing successfully and
  /// sets helpRequested().
  [[nodiscard]] bool parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        help_ = true;
        return true;
      }
      const Option* opt = find(arg);
      if (!opt) {
        std::fprintf(stderr, "%s: unknown flag '%s' (try --help)\n",
                     program_.c_str(), argv[i]);
        return false;
      }
      std::string value;
      if (!opt->valueName.empty()) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: missing <%s> after %s\n", program_.c_str(),
                       opt->valueName.c_str(), opt->name.c_str());
          return false;
        }
        value = argv[++i];
      }
      if (!opt->apply(value)) {
        std::fprintf(stderr, "%s: bad value '%s' for %s\n", program_.c_str(),
                     value.c_str(), opt->name.c_str());
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool helpRequested() const { return help_; }

  /// Free-form text printed after the option table (exit codes, examples).
  void epilog(std::string text) { epilog_ = std::move(text); }

  void printUsage(std::FILE* out = stdout) const {
    std::fprintf(out, "%s — %s\n", program_.c_str(), summary_.c_str());
    for (const Option& o : opts_) {
      std::string left = o.name;
      if (!o.valueName.empty()) left += " <" + o.valueName + ">";
      std::fprintf(out, "  %-34s %s\n", left.c_str(), o.help.c_str());
    }
    if (!epilog_.empty()) std::fprintf(out, "\n%s", epilog_.c_str());
  }

 private:
  struct Option {
    std::string name;
    std::string valueName;  ///< empty for boolean flags
    std::string help;
    std::function<bool(const std::string&)> apply;
  };

  void addNumeric(std::string name, std::string valueName, std::string help,
                  std::function<void(long long)> store) {
    opts_.push_back({std::move(name), std::move(valueName), std::move(help),
                     [store = std::move(store)](const std::string& v) {
                       char* end = nullptr;
                       const long long parsed =
                           std::strtoll(v.c_str(), &end, 10);
                       if (end == v.c_str() || *end != '\0') return false;
                       store(parsed);
                       return true;
                     }});
  }

  [[nodiscard]] const Option* find(std::string_view name) const {
    for (const Option& o : opts_)
      if (o.name == name) return &o;
    return nullptr;
  }

  std::string program_;
  std::string summary_;
  std::string epilog_;
  std::vector<Option> opts_;
  bool help_ = false;
};

}  // namespace cpr::cli
