/// \file cpr_route.cpp
/// Command-line front end: load or synthesize a design, route it with any of
/// the three schemes, and export reports, traces, SVG pictures, and routed
/// DEF.
///
///   cpr_route --design ecc                       # synthesize a suite design
///   cpr_route --def my.def                       # or load a DEF subset
///   cpr_route --design ecc --scheme nopao        # cpr | nopao | seq
///   cpr_route --design ecc --pin-access ilp      # lr | ilp | generic
///   cpr_route --design ecc --pin-access generic --lp-backend dense
///   cpr_route --design ecc --threads 4 --report run.json --trace run.trace.json
///   cpr_route --design ecc --svg out.svg --routed-def out.def --seed 9
///   cpr_route --def big.def --time-limit 30 --panel-budget 0.5
///
/// Exit codes (see --help): 0 success, 2 usage error, 3 bad input (DEF parse
/// or design validation failure), 4 completed but degraded (some panels fell
/// down the degradation ladder), 5 internal error.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "cli.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "lefdef/def_io.h"
#include "route/def_export.h"
#include "obs/names.h"
#include "obs/report.h"
#include "route/cpr.h"
#include "route/sequential_router.h"
#include "support/deadline.h"
#include "viz/svg.h"

namespace {

struct Args {
  std::string design;
  std::string defPath;
  std::string scheme = "cpr";
  std::string pinAccess = "lr";
  std::string lpBackend;  ///< empty = ilp::LpOptions default
  std::string svgPath;
  std::string routedDefPath;
  std::string reportPath;
  std::string tracePath;
  std::uint64_t seed = 7;
  int threads = 0;         ///< 0 = hardware concurrency
  double timeLimit = 0.0;  ///< run wall-clock budget, seconds (0 = none)
  double panelBudget = 0.0;  ///< per-panel solve budget, seconds (0 = none)
  bool digest = false;       ///< print the result digest line
};

constexpr char kExitCodeHelp[] =
    "exit codes:\n"
    "  0  success\n"
    "  2  usage error (unknown flag, bad value, no design)\n"
    "  3  bad input: DEF parse error (line number on stderr) or the design\n"
    "     failed validation\n"
    "  4  completed, but degraded: some panels lost their primary solver\n"
    "     (see the pao.panel.failed / pao.panel.degraded counters)\n"
    "  5  internal error, or an output file could not be written\n"
    "  6  (reserved: cancelled — used by cpr_client/cpr_served for jobs\n"
    "     rejected by admission control; cpr_route itself never cancels)\n"
    "The table is cli::exitCodeFor, shared with cpr_served and cpr_client.\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace cpr;
  Args args;
  cli::Parser parser("cpr_route", "concurrent pin access routing");
  parser.option("--design", "ecc|efc|ctl|alu|div|top",
                "synthesize a suite benchmark", &args.design);
  parser.option("--def", "path", "load a DEF-subset design instead",
                &args.defPath);
  parser.option("--scheme", "cpr|nopao|seq", "routing scheme (default cpr)",
                &args.scheme);
  parser.option("--pin-access", "lr|ilp|generic",
                "pin access optimizer for the cpr scheme: lr (Algorithm 2), "
                "ilp (exact branch & bound, the paper's ILP), generic "
                "(Formula (1) through the generic 0/1 ILP; slow)",
                &args.pinAccess);
  parser.option("--lp-backend", "revised|dense",
                "LP engine for --pin-access generic: revised (sparse revised "
                "simplex with warm-started branch & bound, the default) or "
                "dense (two-phase tableau reference)",
                &args.lpBackend);
  parser.option("--threads", "n",
                "worker threads for pin access panels and wave-parallel "
                "routing (default: hardware; results are thread-count "
                "invariant)",
                &args.threads);
  parser.option("--report", "path", "write a cpr.report.v1 JSON run report",
                &args.reportPath);
  parser.option("--trace", "path",
                "write a Chrome trace_event file (chrome://tracing)",
                &args.tracePath);
  parser.option("--svg", "path", "write an SVG of the result", &args.svgPath);
  parser.option("--routed-def", "path", "write routed DEF",
                &args.routedDefPath);
  parser.option("--seed", "n", "generator seed (default 7)", &args.seed);
  parser.option("--time-limit", "seconds",
                "run wall-clock budget; when it fires, pin access panels "
                "degrade gracefully and routing loops stop early (0 = none)",
                &args.timeLimit);
  parser.option("--panel-budget", "seconds",
                "per-panel pin access solve budget (0 = none)",
                &args.panelBudget);
  parser.flag("--digest",
              "print the FNV-1a result digest (route::resultDigest) — the "
              "same value cpr_served reports, for cross-checking service "
              "results against a direct run",
              &args.digest);
  parser.epilog(kExitCodeHelp);
  if (!parser.parse(argc, argv)) return 2;
  if (parser.helpRequested() ||
      (args.design.empty() && args.defPath.empty())) {
    parser.printUsage(parser.helpRequested() ? stdout : stderr);
    return parser.helpRequested() ? 0 : 2;
  }

  int exitCode = 0;
  try {
    const support::Deadline runDeadline =
        args.timeLimit > 0.0 ? support::Deadline::after(args.timeLimit)
                             : support::Deadline{};
    const gen::SuiteSpec* spec = nullptr;
    if (args.defPath.empty()) {
      try {
        spec = &gen::suiteSpec(args.design);
      } catch (const std::invalid_argument&) {
        std::fprintf(stderr,
                     "unknown --design %s (want ecc|efc|ctl|alu|div|top)\n",
                     args.design.c_str());
        return 2;
      }
    }
    const db::Design d = spec ? gen::makeSuiteDesign(*spec, args.seed)
                              : lefdef::loadDef(args.defPath);
    if (const std::string report = d.validate(); !report.empty()) {
      std::fprintf(stderr, "design fails validation:\n%s", report.c_str());
      return 3;
    }
    std::printf("design %s: %zu nets, %zu pins, %d x %d grid\n",
                d.name().c_str(), d.nets().size(), d.pins().size(), d.width(),
                d.gridHeight());

    // Root collector for --report / --trace: plan and routing stats merge
    // into it, plus the run's own metadata.
    obs::Collector run;
    run.note("cli.design", d.name());
    run.note("cli.scheme", args.scheme);
    run.gauge("cli.seed", static_cast<double>(args.seed));

    const bool wantGeometry =
        !args.svgPath.empty() || !args.routedDefPath.empty();
    route::RoutingResult result;
    core::PinAccessPlan plan;
    double extraSeconds = 0.0;
    if (args.scheme == "seq") {
      route::SequentialOptions opts;
      opts.keepGeometry = wantGeometry;
      opts.deadline = runDeadline;
      result = route::routeSequential(d, opts);
    } else if (args.scheme == "nopao") {
      route::NegotiationOptions opts;
      opts.keepGeometry = wantGeometry;
      opts.deadline = runDeadline;
      opts.threads = args.threads;
      result = route::routeNegotiated(d, nullptr, opts);
    } else if (args.scheme == "cpr") {
      route::CprOptions opts;
      opts.routing.keepGeometry = wantGeometry;
      opts.routing.deadline = runDeadline;
      opts.routing.threads = args.threads;
      opts.pinAccess.threads = args.threads;
      opts.pinAccess.deadline = runDeadline;
      opts.pinAccess.panelBudgetSeconds = args.panelBudget;
      if (args.pinAccess == "ilp") {
        opts.pinAccess.solve.method = core::Method::Exact;
        if (args.panelBudget <= 0.0)
          opts.pinAccess.panelBudgetSeconds = 1.0;  // per panel
      } else if (args.pinAccess == "generic") {
        opts.pinAccess.solve.method = core::Method::Ilp;
      } else if (args.pinAccess != "lr") {
        std::fprintf(stderr, "unknown --pin-access %s\n",
                     args.pinAccess.c_str());
        return 2;
      }
      if (!args.lpBackend.empty()) {
        const auto& known = ilp::lpBackendNames();
        if (std::find(known.begin(), known.end(), args.lpBackend) ==
            known.end()) {
          std::fprintf(stderr, "unknown --lp-backend %s (want revised|dense)\n",
                       args.lpBackend.c_str());
          return 2;
        }
        opts.pinAccess.solve.ilp.lp.backend = args.lpBackend;
        run.note("cli.lp_backend", args.lpBackend);
      }
      run.note("cli.pin_access", args.pinAccess);
      route::CprResult r = route::routeCpr(d, opts);
      result = std::move(r.routing);
      plan = std::move(r.plan);
      extraSeconds = r.pinAccessSeconds;
      run.merge(plan.stats);
      const long faulted =
          plan.stats.counter(obs::names::kPaoPanelFailed) +
          plan.stats.counter(obs::names::kPaoPanelDegraded) +
          plan.stats.counter(obs::names::kPaoFallbacks);
      if (faulted > 0) {
        std::fprintf(stderr,
                     "warning: %ld panel(s) degraded below the primary "
                     "solver (failed=%ld degraded=%ld fallbacks=%ld)\n",
                     faulted,
                     plan.stats.counter(obs::names::kPaoPanelFailed),
                     plan.stats.counter(obs::names::kPaoPanelDegraded),
                     plan.stats.counter(obs::names::kPaoFallbacks));
        exitCode = 4;  // completed, but degraded
      }
    } else {
      std::fprintf(stderr, "unknown --scheme %s\n", args.scheme.c_str());
      return 2;
    }
    run.merge(result.stats);

    const eval::Metrics m = eval::summarize(d, result, extraSeconds);
    std::printf("%s\n", eval::tableHeader().c_str());
    std::printf("%s\n", eval::tableRow(args.scheme, m).c_str());
    std::printf("congested grids before RRR: %ld, DRC violations at signoff: "
                "%ld\n",
                m.congestedGridsBeforeRrr, m.drcViolations);
    if (args.digest) {
      std::printf("route digest: %016llx\n",
                  static_cast<unsigned long long>(
                      route::resultDigest(result)));
    }

    if (!args.reportPath.empty()) {
      obs::saveReportJson(run, args.reportPath);
      std::printf("wrote %s\n", args.reportPath.c_str());
    }
    if (!args.tracePath.empty()) {
      obs::saveChromeTrace(run, args.tracePath);
      std::printf("wrote %s\n", args.tracePath.c_str());
    }
    if (!args.svgPath.empty()) {
      viz::SvgOptions svg;
      svg.labelPins = d.pins().size() <= 400;
      viz::saveSvg(d, args.scheme == "cpr" ? &plan : nullptr,
                   result.geometry.empty() ? nullptr : &result.geometry,
                   args.svgPath, svg);
      std::printf("wrote %s\n", args.svgPath.c_str());
    }
    if (!args.routedDefPath.empty()) {
      std::ofstream os(args.routedDefPath);
      if (!os) throw std::runtime_error("cannot write " + args.routedDefPath);
      route::writeRoutedDef(d, result.geometry, os);
      std::printf("wrote %s\n", args.routedDefPath.c_str());
    }
  } catch (const lefdef::DefParseError& e) {
    // e.what() already carries "DEF parse error at line N: ...".
    std::fprintf(stderr, "error: %s: %s\n", args.defPath.c_str(), e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 5;
  }
  return exitCode;
}
