/// \file cpr_route.cpp
/// Command-line front end: load or synthesize a design, route it with any of
/// the three schemes, and export reports, SVG pictures, and routed DEF.
///
///   cpr_route --design ecc                       # synthesize a suite design
///   cpr_route --def my.def                       # or load a DEF subset
///   cpr_route --design ecc --scheme nopao        # cpr | nopao | seq
///   cpr_route --design ecc --pin-access ilp      # lr | ilp (cpr scheme)
///   cpr_route --design ecc --svg out.svg --routed-def out.def --seed 9
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "eval/metrics.h"
#include "gen/generator.h"
#include "lefdef/def_io.h"
#include "route/cpr.h"
#include "route/sequential_router.h"
#include "viz/svg.h"

namespace {

struct Args {
  std::string design;
  std::string defPath;
  std::string scheme = "cpr";
  std::string pinAccess = "lr";
  std::string svgPath;
  std::string routedDefPath;
  std::uint64_t seed = 7;
  bool help = false;
};

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      a.help = true;
    } else if (flag == "--design") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.design = v;
    } else if (flag == "--def") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.defPath = v;
    } else if (flag == "--scheme") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.scheme = v;
    } else if (flag == "--pin-access") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.pinAccess = v;
    } else if (flag == "--svg") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.svgPath = v;
    } else if (flag == "--routed-def") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.routedDefPath = v;
    } else if (flag == "--seed") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      return std::nullopt;
    }
  }
  return a;
}

void usage() {
  std::puts(
      "cpr_route — concurrent pin access routing\n"
      "  --design <ecc|efc|ctl|alu|div|top>  synthesize a suite benchmark\n"
      "  --def <path>                        load a DEF-subset design instead\n"
      "  --scheme <cpr|nopao|seq>            routing scheme (default cpr)\n"
      "  --pin-access <lr|ilp>               optimizer for the cpr scheme\n"
      "  --svg <path>                        write an SVG of the result\n"
      "  --routed-def <path>                 write routed DEF\n"
      "  --seed <n>                          generator seed (default 7)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cpr;
  const std::optional<Args> args = parse(argc, argv);
  if (!args) return 2;
  if (args->help || (args->design.empty() && args->defPath.empty())) {
    usage();
    return args->help ? 0 : 2;
  }

  try {
    const db::Design d = !args->defPath.empty()
                             ? lefdef::loadDef(args->defPath)
                             : gen::makeSuiteDesign(
                                   gen::suiteSpec(args->design), args->seed);
    if (const std::string report = d.validate(); !report.empty()) {
      std::fprintf(stderr, "design fails validation:\n%s", report.c_str());
      return 1;
    }
    std::printf("design %s: %zu nets, %zu pins, %d x %d grid\n",
                d.name().c_str(), d.nets().size(), d.pins().size(), d.width(),
                d.gridHeight());

    const bool wantGeometry =
        !args->svgPath.empty() || !args->routedDefPath.empty();
    route::RoutingResult result;
    core::PinAccessPlan plan;
    double extraSeconds = 0.0;
    if (args->scheme == "seq") {
      route::SequentialOptions opts;
      opts.keepGeometry = wantGeometry;
      result = route::routeSequential(d, opts);
    } else if (args->scheme == "nopao") {
      route::NegotiationOptions opts;
      opts.keepGeometry = wantGeometry;
      result = route::routeNegotiated(d, nullptr, opts);
    } else if (args->scheme == "cpr") {
      route::CprOptions opts;
      opts.routing.keepGeometry = wantGeometry;
      if (args->pinAccess == "ilp") {
        opts.pinAccess.method = core::Method::Exact;
        opts.pinAccess.exact.timeLimitSeconds = 1.0;  // per panel
      } else if (args->pinAccess != "lr") {
        std::fprintf(stderr, "unknown --pin-access %s\n",
                     args->pinAccess.c_str());
        return 2;
      }
      route::CprResult r = route::routeCpr(d, opts);
      result = std::move(r.routing);
      plan = std::move(r.plan);
      extraSeconds = r.pinAccessSeconds;
    } else {
      std::fprintf(stderr, "unknown --scheme %s\n", args->scheme.c_str());
      return 2;
    }

    const eval::Metrics m = eval::summarize(d, result, extraSeconds);
    std::printf("%s\n", eval::tableHeader().c_str());
    std::printf("%s\n", eval::tableRow(args->scheme, m).c_str());
    std::printf("congested grids before RRR: %ld, DRC violations at signoff: "
                "%ld\n",
                m.congestedGridsBeforeRrr, m.drcViolations);

    if (!args->svgPath.empty()) {
      viz::SvgOptions svg;
      svg.labelPins = d.pins().size() <= 400;
      viz::saveSvg(d, args->scheme == "cpr" ? &plan : nullptr,
                   result.geometry.empty() ? nullptr : &result.geometry,
                   args->svgPath, svg);
      std::printf("wrote %s\n", args->svgPath.c_str());
    }
    if (!args->routedDefPath.empty()) {
      std::ofstream os(args->routedDefPath);
      if (!os) throw std::runtime_error("cannot write " + args->routedDefPath);
      lefdef::writeRoutedDef(d, result.geometry, os);
      std::printf("wrote %s\n", args->routedDefPath.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
