#include <algorithm>
#include <array>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

namespace cpr::lint {

namespace {

namespace fs = std::filesystem;

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool isHeaderPath(std::string_view rel) {
  return endsWith(rel, ".h") || endsWith(rel, ".hpp");
}

/// Files implementing the `Solver::trySolve` panel boundary and its
/// degradation-ladder rungs: the no-throw hot-path set of THROW-BOUNDARY.
bool isTrySolveBoundary(std::string_view rel) {
  if (rel.find("panel_kernel") != std::string_view::npos) return true;
  constexpr std::array<std::string_view, 8> kFiles = {
      "src/core/solver.cpp",       "src/core/solver.h",
      "src/core/optimizer.cpp",    "src/core/optimizer.h",
      "src/core/lr_solver.cpp",    "src/core/lr_solver.h",
      "src/core/exact_solver.cpp", "src/core/exact_solver.h",
  };
  return std::find(kFiles.begin(), kFiles.end(), rel) != kFiles.end();
}

/// Solver-loop directories where argless wall-clock polling is banned
/// (measurement code in obs/, route result timing, and benches keep their
/// steady-clock reads; solver code must poll a composable Deadline).
bool isSolverScope(std::string_view rel) {
  return startsWith(rel, "src/core/") || startsWith(rel, "src/ilp/");
}

/// Canonical metric-name shape with one of the reserved first segments:
/// `pao|route|drc|ilp` followed by >= 1 dot-separated [a-z0-9_] segments.
bool isReservedMetricName(std::string_view text) {
  const std::size_t dot = text.find('.');
  if (dot == std::string_view::npos) return false;
  const std::string_view head = text.substr(0, dot);
  if (head != "pao" && head != "route" && head != "drc" && head != "ilp")
    return false;
  std::string_view rest = text.substr(dot + 1);
  if (rest.empty()) return false;
  std::size_t segLen = 0;
  for (const char c : rest) {
    if (c == '.') {
      if (segLen == 0) return false;
      segLen = 0;
      continue;
    }
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
    ++segLen;
  }
  return segLen > 0;
}

struct FileLint {
  const std::string& rel;
  const std::vector<Token>& toks;
  std::vector<Diagnostic> raw;

  void report(std::string_view rule, int line, std::string message) {
    raw.push_back(Diagnostic{std::string(rule), rel, line, std::move(message)});
  }

  [[nodiscard]] bool tokIs(std::size_t i, std::string_view text) const {
    return i < toks.size() && toks[i].text == text;
  }

  void obsLiteral() {
    if (rel == "src/obs/names.h") return;  // the one legal home of literals
    for (const Token& t : toks) {
      if (t.kind != TokKind::String) continue;
      if (!isReservedMetricName(t.text)) continue;
      report("OBS-LITERAL", t.line,
             "inline metric-name literal \"" + t.text +
                 "\"; use the obs::names::k* constant (add it to "
                 "src/obs/names.h and its kAll registry)");
    }
  }

  void deadlineRaw() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier) continue;
      if (t.text == "timeLimitSeconds") {
        report("DEADLINE-RAW", t.line,
               "raw wall-clock budget double; thread a support::Deadline "
               "through the options instead");
        continue;
      }
      if (t.text == "now" && isSolverScope(rel) && i >= 2 &&
          tokIs(i - 1, ":") && tokIs(i - 2, ":") && tokIs(i + 1, "(") &&
          tokIs(i + 2, ")")) {
        report("DEADLINE-RAW", t.line,
               "argless clock polling inside solver code; poll a composable "
               "support::Deadline (expired()/remaining()) instead");
      }
    }
  }

  void throwBoundary() {
    if (!isTrySolveBoundary(rel)) return;
    for (const Token& t : toks) {
      if (t.kind != TokKind::Identifier) continue;
      if (t.text == "throw" || t.text == "abort") {
        report("THROW-BOUNDARY", t.line,
               "'" + t.text +
                   "' inside the non-throwing trySolve panel boundary; fail "
                   "through support/contracts.h or return a support::Status");
      }
    }
  }

  void bannedFn() {
    constexpr std::array<std::string_view, 10> kBanned = {
        "rand",  "srand",    "strtok", "atoi", "atol",
        "atof",  "sprintf",  "vsprintf", "gets", "endl",
    };
    for (const Token& t : toks) {
      if (t.kind != TokKind::Identifier) continue;
      if (std::find(kBanned.begin(), kBanned.end(), t.text) == kBanned.end())
        continue;
      const std::string why =
          t.text == "endl"
              ? "flushes the stream every call; write '\\n'"
              : t.text == "rand" || t.text == "srand"
                    ? "non-deterministic across libcs; use <random> engines"
                    : "unbounded/locale-dependent C function; use the "
                      "checked C++ alternative";
      report("BANNED-FN", t.line, "banned function '" + t.text + "': " + why);
    }
  }

  void headerHygiene() {
    if (!isHeaderPath(rel)) return;
    bool pragmaOnce = false;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (tokIs(i, "#") && tokIs(i + 1, "pragma") && tokIs(i + 2, "once"))
        pragmaOnce = true;
      if (toks[i].kind == TokKind::Identifier && toks[i].text == "using" &&
          tokIs(i + 1, "namespace")) {
        report("HEADER-HYGIENE", toks[i].line,
               "'using namespace' in a header leaks into every includer; "
               "qualify names instead");
      }
    }
    if (!pragmaOnce)
      report("HEADER-HYGIENE", 1, "header is missing '#pragma once'");
  }

  void contractCoverage() {
    if (rel.find("panel_kernel") == std::string::npos) return;
    // Lines holding a contract macro; a raw access within the window below
    // one of these counts as guarded.
    std::vector<int> contractLines;
    for (const Token& t : toks) {
      if (t.kind == TokKind::Identifier &&
          (t.text == "CPR_CHECK" || t.text == "CPR_DCHECK" ||
           t.text == "CPR_UNREACHABLE"))
        contractLines.push_back(t.line);
    }
    constexpr int kWindow = 8;
    auto guarded = [&](int line) {
      return std::any_of(contractLines.begin(), contractLines.end(),
                         [&](int c) { return c <= line && line - c <= kWindow; });
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      int hit = 0;
      if (t.kind == TokKind::Identifier && t.text == "reinterpret_cast")
        hit = t.line;
      if (t.kind == TokKind::Punct && t.text == "." && tokIs(i + 1, "data") &&
          tokIs(i + 2, "(") && tokIs(i + 3, ")") && tokIs(i + 4, "+"))
        hit = t.line;
      if (hit != 0 && !guarded(hit)) {
        report("CONTRACT-COVERAGE", hit,
               "raw CSR pointer access without a CPR_DCHECK/CPR_CHECK bounds "
               "contract in the preceding " +
                   std::to_string(kWindow) + " lines");
      }
    }
  }
};

}  // namespace

const std::vector<RuleInfo>& ruleTable() {
  static const std::vector<RuleInfo> kTable = {
      {"ALLOW-UNUSED",
       "a 'cpr-lint: allow(...)' directive that suppresses nothing"},
      {"BANNED-FN",
       "rand/srand/strtok/atoi/atol/atof/sprintf/vsprintf/gets/std::endl"},
      {"CONTRACT-COVERAGE",
       "raw CSR pointer access in panel_kernel.* must sit under a contract"},
      {"DEADLINE-RAW",
       "timeLimitSeconds doubles anywhere; argless ::now() polling in "
       "src/core|src/ilp"},
      {"HEADER-HYGIENE",
       "headers need #pragma once and must not 'using namespace'"},
      {"OBS-LITERAL",
       "inline \"pao|route|drc|ilp.*\" metric literals outside obs/names.h"},
      {"THROW-BOUNDARY",
       "throw/abort in panel_kernel.* or trySolve-boundary files"},
  };
  return kTable;
}

std::vector<Diagnostic> lintSource(const std::string& relPath,
                                   std::string_view source) {
  LexResult lx = lex(source);
  FileLint fl{relPath, lx.tokens, {}};
  fl.obsLiteral();
  fl.deadlineRaw();
  fl.throwBoundary();
  fl.bannedFn();
  fl.headerHygiene();
  fl.contractCoverage();

  // Per-line suppression: an allow directive covers its own line and the
  // line directly below it, for the named rules only.
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : fl.raw) {
    bool suppressed = false;
    for (Allow& a : lx.allows) {
      if (a.line != d.line && a.line + 1 != d.line) continue;
      if (std::find(a.rules.begin(), a.rules.end(), d.rule) == a.rules.end())
        continue;
      a.used = true;
      suppressed = true;
    }
    if (!suppressed) kept.push_back(std::move(d));
  }
  for (const Allow& a : lx.allows) {
    if (a.used) continue;
    kept.push_back(Diagnostic{
        "ALLOW-UNUSED", relPath, a.line,
        "suppression matches no diagnostic on this or the next line; "
        "remove it"});
  }
  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return kept;
}

std::vector<Diagnostic> lintTree(const fs::path& rootDir,
                                 const std::vector<std::string>& subdirs,
                                 std::vector<std::string>* scannedFiles) {
  auto skipDir = [](const std::string& name) {
    return startsWith(name, "build") || startsWith(name, ".") ||
           name == "corpus" || name == "lint_corpus" || name == "results";
  };
  auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
           ext == ".cxx";
  };
  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path base = rootDir / sub;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      if (lintable(base)) files.push_back(base);
      continue;
    }
    if (!fs::is_directory(base, ec)) continue;
    fs::recursive_directory_iterator it(base, ec), end;
    while (!ec && it != end) {
      if (it->is_directory() && skipDir(it->path().filename().string())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path());
      }
      it.increment(ec);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Diagnostic> out;
  for (const fs::path& f : files) {
    std::error_code ec;
    const fs::path relp = fs::relative(f, rootDir, ec);
    const std::string rel = (ec ? f : relp).generic_string();
    if (scannedFiles) scannedFiles->push_back(rel);
    std::ifstream is(f, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string source = buf.str();
    std::vector<Diagnostic> diags = lintSource(rel, source);
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }
  return out;
}

}  // namespace cpr::lint
