#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/arch.h"
#include "lint/concurrency.h"
#include "lint/hotpath.h"
#include "lint/ir.h"
#include "lint/lexer.h"
#include "lint/lint.h"

namespace cpr::lint {

namespace {

namespace fs = std::filesystem;

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool isHeaderPath(std::string_view rel) {
  return endsWith(rel, ".h") || endsWith(rel, ".hpp");
}

/// Files implementing the `Solver::trySolve` panel boundary and its
/// degradation-ladder rungs: the no-throw hot-path set of THROW-BOUNDARY.
bool isTrySolveBoundary(std::string_view rel) {
  if (rel.find("panel_kernel") != std::string_view::npos) return true;
  constexpr std::array<std::string_view, 8> kFiles = {
      "src/core/solver.cpp",       "src/core/solver.h",
      "src/core/optimizer.cpp",    "src/core/optimizer.h",
      "src/core/lr_solver.cpp",    "src/core/lr_solver.h",
      "src/core/exact_solver.cpp", "src/core/exact_solver.h",
  };
  return std::find(kFiles.begin(), kFiles.end(), rel) != kFiles.end();
}

/// Files swept onto the strong index types of src/core/ids.h
/// (PinIdx/CandIdx/ConflictIdx/TrackIdx): the INDEX-CAST scope. ids.h
/// itself is deliberately outside the scope — it is where the one sanctioned
/// raw conversion (`idx()`) lives.
bool isStrongIndexScope(std::string_view rel) {
  constexpr std::array<std::string_view, 7> kStems = {
      "src/core/panel_kernel", "src/core/lr_solver",
      "src/core/exact_solver", "src/core/ilp_builder",
      "src/core/solver",       "src/core/optimizer",
      "src/core/interval_gen",
  };
  for (const std::string_view stem : kStems) {
    if (rel == std::string(stem) + ".h" || rel == std::string(stem) + ".cpp")
      return true;
  }
  return false;
}

/// Solver-loop directories where argless wall-clock polling is banned
/// (measurement code in obs/, route result timing, and benches keep their
/// steady-clock reads; solver code must poll a composable Deadline).
bool isSolverScope(std::string_view rel) {
  return startsWith(rel, "src/core/") || startsWith(rel, "src/ilp/");
}

/// Canonical metric-name shape with one of the reserved first segments:
/// `pao|route|drc|ilp|serve` followed by >= 1 dot-separated [a-z0-9_]
/// segments.
bool isReservedMetricName(std::string_view text) {
  const std::size_t dot = text.find('.');
  if (dot == std::string_view::npos) return false;
  const std::string_view head = text.substr(0, dot);
  if (head != "pao" && head != "route" && head != "drc" && head != "ilp" &&
      head != "serve")
    return false;
  std::string_view rest = text.substr(dot + 1);
  if (rest.empty()) return false;
  std::size_t segLen = 0;
  for (const char c : rest) {
    if (c == '.') {
      if (segLen == 0) return false;
      segLen = 0;
      continue;
    }
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
    ++segLen;
  }
  return segLen > 0;
}

struct FileLint {
  const std::string& rel;
  const std::vector<Token>& toks;
  std::vector<Diagnostic> raw;

  void report(std::string_view rule, int line, std::string message) {
    raw.push_back(Diagnostic{std::string(rule), rel, line, std::move(message)});
  }

  [[nodiscard]] bool tokIs(std::size_t i, std::string_view text) const {
    return i < toks.size() && toks[i].text == text;
  }

  void obsLiteral() {
    if (rel == "src/obs/names.h") return;  // the one legal home of literals
    for (const Token& t : toks) {
      if (t.kind != TokKind::String) continue;
      if (!isReservedMetricName(t.text)) continue;
      report("OBS-LITERAL", t.line,
             "inline metric-name literal \"" + t.text +
                 "\"; use the obs::names::k* constant (add it to "
                 "src/obs/names.h and its kAll registry)");
    }
  }

  void deadlineRaw() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier) continue;
      if (t.text == "timeLimitSeconds") {
        report("DEADLINE-RAW", t.line,
               "raw wall-clock budget double; thread a support::Deadline "
               "through the options instead");
        continue;
      }
      if (t.text == "now" && isSolverScope(rel) && i >= 2 &&
          tokIs(i - 1, ":") && tokIs(i - 2, ":") && tokIs(i + 1, "(") &&
          tokIs(i + 2, ")")) {
        report("DEADLINE-RAW", t.line,
               "argless clock polling inside solver code; poll a composable "
               "support::Deadline (expired()/remaining()) instead");
      }
    }
  }

  void throwBoundary() {
    if (!isTrySolveBoundary(rel)) return;
    for (const Token& t : toks) {
      if (t.kind != TokKind::Identifier) continue;
      if (t.text == "throw" || t.text == "abort") {
        report("THROW-BOUNDARY", t.line,
               "'" + t.text +
                   "' inside the non-throwing trySolve panel boundary; fail "
                   "through support/contracts.h or return a support::Status");
      }
    }
  }

  void bannedFn() {
    constexpr std::array<std::string_view, 10> kBanned = {
        "rand",  "srand",    "strtok", "atoi", "atol",
        "atof",  "sprintf",  "vsprintf", "gets", "endl",
    };
    for (const Token& t : toks) {
      if (t.kind != TokKind::Identifier) continue;
      if (std::find(kBanned.begin(), kBanned.end(), t.text) == kBanned.end())
        continue;
      const std::string why =
          t.text == "endl"
              ? "flushes the stream every call; write '\\n'"
              : t.text == "rand" || t.text == "srand"
                    ? "non-deterministic across libcs; use <random> engines"
                    : "unbounded/locale-dependent C function; use the "
                      "checked C++ alternative";
      report("BANNED-FN", t.line, "banned function '" + t.text + "': " + why);
    }
  }

  void headerHygiene() {
    if (!isHeaderPath(rel)) return;
    bool pragmaOnce = false;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (tokIs(i, "#") && tokIs(i + 1, "pragma") && tokIs(i + 2, "once"))
        pragmaOnce = true;
      if (toks[i].kind == TokKind::Identifier && toks[i].text == "using" &&
          tokIs(i + 1, "namespace")) {
        report("HEADER-HYGIENE", toks[i].line,
               "'using namespace' in a header leaks into every includer; "
               "qualify names instead");
      }
    }
    if (!pragmaOnce)
      report("HEADER-HYGIENE", 1, "header is missing '#pragma once'");
  }

  /// INDEX-CAST: in the strong-index kernel/solver files, the spelled-out
  /// `static_cast<std::size_t>` (or `static_cast<size_t>`) is how index
  /// confusion crept in before src/core/ids.h existed — every subscript
  /// conversion must go through a typed `.idx()`. Functional
  /// `std::size_t(x)` casts stay legal for true size (non-index) math.
  void indexCast() {
    if (!isStrongIndexScope(rel)) return;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Identifier ||
          toks[i].text != "static_cast" || !tokIs(i + 1, "<"))
        continue;
      std::size_t j = i + 2;
      if (tokIs(j, "std") && tokIs(j + 1, ":") && tokIs(j + 2, ":")) j += 3;
      if (tokIs(j, "size_t") && tokIs(j + 1, ">")) {
        report("INDEX-CAST", toks[i].line,
               "raw static_cast to size_t in strong-index code; subscript "
               "through PinIdx/CandIdx/ConflictIdx/TrackIdx::idx() "
               "(src/core/ids.h), or use a functional std::size_t(...) cast "
               "at a genuine size boundary");
      }
    }
  }

  /// DETERMINISM: iterating an unordered container visits elements in a
  /// hash-seed-dependent order, so a loop body that emits metrics or output
  /// makes runs non-reproducible — the repo's reports and route digests are
  /// compared bit-for-bit. Detection: range-for whose range expression
  /// names an unordered container (by declared variable name or inline
  /// type), with a body that reaches an obs call (`obs::`, `.add(`,
  /// `.note(`) or stream/print output (`<<`, printf/fprintf, cout/cerr).
  void determinism() {
    constexpr std::array<std::string_view, 4> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    auto isUnorderedType = [&](std::size_t i) {
      return toks[i].kind == TokKind::Identifier &&
             std::find(kUnordered.begin(), kUnordered.end(), toks[i].text) !=
                 kUnordered.end();
    };
    // Pass 1: names declared with an unordered type anywhere in the file.
    std::set<std::string> unorderedNames;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!isUnorderedType(i) || !tokIs(i + 1, "<")) continue;
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (tokIs(j, "<")) ++depth;
        if (tokIs(j, ">") && --depth == 0) break;
      }
      for (++j; j < toks.size(); ++j) {
        if (tokIs(j, "&") || tokIs(j, "*")) continue;
        if (toks[j].kind == TokKind::Identifier)
          unorderedNames.insert(toks[j].text);
        break;
      }
    }
    // Pass 2: range-for loops over an unordered range, sink scan of the
    // brace-matched (or single-statement) body.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Identifier || toks[i].text != "for" ||
          !tokIs(i + 1, "(") )
        continue;
      int depth = 0;
      std::size_t close = i + 1;
      std::size_t colon = 0;
      for (; close < toks.size(); ++close) {
        if (tokIs(close, "(")) ++depth;
        if (tokIs(close, ")") && --depth == 0) break;
        if (depth == 1 && tokIs(close, ":") && !tokIs(close - 1, ":") &&
            !tokIs(close + 1, ":") && colon == 0)
          colon = close;
      }
      if (colon == 0 || close >= toks.size()) continue;  // not a range-for
      bool unordered = false;
      for (std::size_t k = colon + 1; k < close; ++k) {
        if (isUnorderedType(k) ||
            (toks[k].kind == TokKind::Identifier &&
             unorderedNames.count(toks[k].text)))
          unordered = true;
      }
      if (!unordered) continue;
      std::size_t bodyBegin = close + 1;
      std::size_t bodyEnd;
      if (tokIs(bodyBegin, "{")) {
        bodyEnd = matchBrace(toks, bodyBegin);
        ++bodyBegin;
      } else {
        bodyEnd = bodyBegin;
        while (bodyEnd < toks.size() && !tokIs(bodyEnd, ";")) ++bodyEnd;
      }
      for (std::size_t k = bodyBegin; k < bodyEnd && k < toks.size(); ++k) {
        const Token& t = toks[k];
        const bool obsCall =
            t.kind == TokKind::Identifier &&
            (t.text == "obs" ||
             ((t.text == "add" || t.text == "note") && k > 0 &&
              (tokIs(k - 1, ".") || tokIs(k - 1, ">")) && tokIs(k + 1, "(")));
        const bool printCall =
            t.kind == TokKind::Identifier &&
            (t.text == "printf" || t.text == "fprintf" ||
             t.text == "cout" || t.text == "cerr");
        const bool streamOp = tokIs(k, "<") && tokIs(k + 1, "<");
        if (obsCall || printCall || streamOp) {
          report("DETERMINISM", toks[i].line,
                 "loop iterates an unordered container and emits "
                 "metrics/output; iteration order depends on the hash seed "
                 "— iterate a sorted copy or switch to an ordered "
                 "container");
          break;
        }
      }
    }
  }

  void contractCoverage() {
    if (rel.find("panel_kernel") == std::string::npos) return;
    // Lines holding a contract macro; a raw access within the window below
    // one of these counts as guarded.
    std::vector<int> contractLines;
    for (const Token& t : toks) {
      if (t.kind == TokKind::Identifier &&
          (t.text == "CPR_CHECK" || t.text == "CPR_DCHECK" ||
           t.text == "CPR_UNREACHABLE"))
        contractLines.push_back(t.line);
    }
    constexpr int kWindow = 8;
    auto guarded = [&](int line) {
      return std::any_of(contractLines.begin(), contractLines.end(),
                         [&](int c) { return c <= line && line - c <= kWindow; });
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      int hit = 0;
      if (t.kind == TokKind::Identifier && t.text == "reinterpret_cast")
        hit = t.line;
      if (t.kind == TokKind::Punct && t.text == "." && tokIs(i + 1, "data") &&
          tokIs(i + 2, "(") && tokIs(i + 3, ")") && tokIs(i + 4, "+"))
        hit = t.line;
      if (hit != 0 && !guarded(hit)) {
        report("CONTRACT-COVERAGE", hit,
               "raw CSR pointer access without a CPR_DCHECK/CPR_CHECK bounds "
               "contract in the preceding " +
                   std::to_string(kWindow) + " lines");
      }
    }
  }
};

}  // namespace

const std::vector<RuleInfo>& ruleTable() {
  static const std::vector<RuleInfo> kTable = {
      {"ALLOW-UNUSED",
       "a 'cpr-lint: allow(...)' directive that suppresses nothing"},
      {"BANNED-FN",
       "rand/srand/strtok/atoi/atol/atof/sprintf/vsprintf/gets/std::endl"},
      {"CONTRACT-COVERAGE",
       "raw CSR pointer access in panel_kernel.* must sit under a contract"},
      {"DEAD-HEADER",
       "src/ header that no scanned file includes (architecture pass)"},
      {"DEADLINE-RAW",
       "timeLimitSeconds doubles anywhere; argless ::now() polling in "
       "src/core|src/ilp"},
      {"DETERMINISM",
       "range-for over an unordered container whose body emits "
       "metrics/output"},
      {"GUARDED-BY",
       "CPR_GUARDED_BY field touched outside a region holding its mutex"},
      {"HEADER-HYGIENE",
       "headers need #pragma once and must not 'using namespace'"},
      {"HOT-ALLOC",
       "heap allocation (new, tools/lint/allocating.txt call, or "
       "unreserved container growth) reachable from CPR_HOT code or inside "
       "a CPR_NOALLOC body; not allow-suppressible"},
      {"HOT-BLOCKING",
       "blocking call (tools/lint/blocking.txt) reachable from CPR_HOT "
       "code; not allow-suppressible"},
      {"HOT-THROW",
       "throw reachable from CPR_HOT code outside a same-body try/catch; "
       "not allow-suppressible"},
      {"INDEX-CAST",
       "static_cast<std::size_t> in strong-index kernel/solver files; use "
       "ids.h idx()"},
      {"LAYER-CYCLE",
       "cycle in the src/ include graph (architecture pass)"},
      {"LAYER-FORBIDDEN",
       "module reaches a header banned by a 'forbid:' line in "
       "tools/lint/layers.txt, directly or transitively"},
      {"LAYER-VIOLATION",
       "include edge pointing up the layer manifest tools/lint/layers.txt"},
      {"LOCK-BLOCKING-CALL",
       "blocking call (tools/lint/blocking.txt) while holding a lock not "
       "annotated CPR_MAY_BLOCK; not allow-suppressible"},
      {"LOCK-ORDER",
       "cycle in the whole-tree lock acquisition graph; not "
       "allow-suppressible"},
      {"OBS-LITERAL",
       "inline \"pao|route|drc|ilp|serve.*\" metric literals outside "
       "obs/names.h"},
      {"STATUS-DISCARD",
       "call to a Status/Outcome-returning function used as a bare "
       "expression statement"},
      {"THREAD-LIFECYCLE",
       "std::thread neither joined/detached/moved; thread field without "
       "CPR_THREAD_REAPER"},
      {"THROW-BOUNDARY",
       "throw/abort in panel_kernel.* or trySolve-boundary files"},
  };
  return kTable;
}

std::vector<Diagnostic> lintSource(const std::string& relPath,
                                   std::string_view source) {
  return lintFiles({SourceFile{relPath, std::string(source)}});
}

std::vector<Diagnostic> lintFiles(const std::vector<SourceFile>& files,
                                  const LayerManifest* manifest,
                                  const BlockingManifest* blocking,
                                  const AllocManifest* allocating,
                                  LintStats* stats) {
  // Lex and build the declaration IR once per file; every pass below
  // (file rules, concurrency, architecture) works off these.
  std::vector<LexResult> lexed;
  std::vector<FileIr> irs;
  lexed.reserve(files.size());
  irs.reserve(files.size());
  for (const SourceFile& f : files) {
    lexed.push_back(lex(f.source));
    irs.push_back(buildIr(lexed.back().tokens));
  }

  std::vector<Diagnostic> out;
  for (std::size_t i = 0; i < files.size(); ++i) {
    FileLint fl{files[i].relPath, lexed[i].tokens, {}};
    fl.obsLiteral();
    fl.deadlineRaw();
    fl.throwBoundary();
    fl.bannedFn();
    fl.headerHygiene();
    fl.contractCoverage();
    fl.indexCast();
    fl.determinism();
    out.insert(out.end(), std::make_move_iterator(fl.raw.begin()),
               std::make_move_iterator(fl.raw.end()));
  }

  // Concurrency and hot-path passes over the whole set: annotations are
  // global (a header's CPR_REQUIRES / CPR_HOT applies to the definition in
  // its .cpp), and the lock-order and call graphs only mean anything
  // tree-wide.
  {
    std::vector<ConcFile> conc;
    conc.reserve(files.size());
    for (std::size_t i = 0; i < files.size(); ++i)
      conc.push_back(ConcFile{files[i].relPath, &lexed[i].tokens, &irs[i]});
    std::vector<Diagnostic> cd = checkConcurrency(
        conc, blocking ? *blocking : builtinBlockingManifest());
    out.insert(out.end(), std::make_move_iterator(cd.begin()),
               std::make_move_iterator(cd.end()));
    HotPathStats hotStats;
    std::vector<Diagnostic> hd = checkHotPaths(
        conc, blocking ? *blocking : builtinBlockingManifest(),
        allocating ? *allocating : builtinAllocManifest(), &hotStats);
    out.insert(out.end(), std::make_move_iterator(hd.begin()),
               std::make_move_iterator(hd.end()));
    if (stats) stats->callGraphEdges = hotStats.callGraphEdges;
  }

  if (manifest) {
    std::vector<ArchFile> arch;
    arch.reserve(files.size());
    for (std::size_t i = 0; i < files.size(); ++i)
      arch.push_back(ArchFile{files[i].relPath, irs[i].includes});
    std::vector<Diagnostic> graph = checkArchitecture(arch, *manifest);
    out.insert(out.end(), std::make_move_iterator(graph.begin()),
               std::make_move_iterator(graph.end()));
  }

  // Per-line suppression: an allow directive covers its own line and the
  // line directly below it, for the named rules only. The architecture
  // rules and the deadlock-shaped concurrency rules bypass allows by
  // design (see lint.h): their escape hatches are manifest and annotation
  // changes, visible at the declaration, never a per-line pragma.
  auto allowBypassing = [](const std::string& rule) {
    return rule == "LAYER-VIOLATION" || rule == "LAYER-FORBIDDEN" ||
           rule == "LAYER-CYCLE" || rule == "DEAD-HEADER" ||
           rule == "LOCK-ORDER" || rule == "LOCK-BLOCKING-CALL" ||
           rule == "HOT-ALLOC" || rule == "HOT-THROW" ||
           rule == "HOT-BLOCKING";
  };
  std::map<std::string, std::size_t> order;
  for (std::size_t i = 0; i < files.size(); ++i)
    order.emplace(files[i].relPath, i);
  std::vector<Diagnostic> kept;
  kept.reserve(out.size());
  for (Diagnostic& d : out) {
    bool suppressed = false;
    const auto idx = order.find(d.file);
    if (!allowBypassing(d.rule) && idx != order.end()) {
      for (Allow& a : lexed[idx->second].allows) {
        if (a.line != d.line && a.line + 1 != d.line) continue;
        if (std::find(a.rules.begin(), a.rules.end(), d.rule) ==
            a.rules.end())
          continue;
        a.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(d));
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const Allow& a : lexed[i].allows) {
      if (a.used) continue;
      kept.push_back(Diagnostic{
          "ALLOW-UNUSED", files[i].relPath, a.line,
          "suppression matches no diagnostic on this or the next line; "
          "remove it"});
    }
  }

  // Per-file grouping (input order) with line-then-rule order inside each
  // file; diagnostics on unknown files (none expected) sort last.
  std::stable_sort(kept.begin(), kept.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     const auto ia = order.find(a.file);
                     const auto ib = order.find(b.file);
                     const std::size_t fa =
                         ia != order.end() ? ia->second : order.size();
                     const std::size_t fb =
                         ib != order.end() ? ib->second : order.size();
                     if (fa != fb) return fa < fb;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return kept;
}

std::vector<Diagnostic> lintTree(const fs::path& rootDir,
                                 const std::vector<std::string>& subdirs,
                                 std::vector<std::string>* scannedFiles,
                                 const LayerManifest* manifest,
                                 const BlockingManifest* blocking,
                                 const AllocManifest* allocating,
                                 LintStats* stats) {
  auto skipDir = [](const std::string& name) {
    return startsWith(name, "build") || startsWith(name, ".") ||
           name == "corpus" || name == "lint_corpus" || name == "results";
  };
  auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
           ext == ".cxx";
  };
  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path base = rootDir / sub;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      if (lintable(base)) files.push_back(base);
      continue;
    }
    if (!fs::is_directory(base, ec)) continue;
    fs::recursive_directory_iterator it(base, ec), end;
    while (!ec && it != end) {
      if (it->is_directory() && skipDir(it->path().filename().string())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path());
      }
      it.increment(ec);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& f : files) {
    std::error_code ec;
    const fs::path relp = fs::relative(f, rootDir, ec);
    const std::string rel = (ec ? f : relp).generic_string();
    if (scannedFiles) scannedFiles->push_back(rel);
    std::ifstream is(f, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    sources.push_back(SourceFile{rel, buf.str()});
  }
  return lintFiles(sources, manifest, blocking, allocating, stats);
}

StripAllowResult stripAllowDirectives(std::string_view source,
                                      const std::vector<int>& lines) {
  const std::set<int> targets(lines.begin(), lines.end());
  const bool finalNewline = !source.empty() && source.back() == '\n';
  std::vector<std::string> text;
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= source.size(); ++i) {
      if (i == source.size() || source[i] == '\n') {
        if (i == source.size() && start == i) break;
        text.emplace_back(source.substr(start, i - start));
        start = i + 1;
      }
    }
  }

  StripAllowResult result;
  std::vector<bool> drop(text.size(), false);
  for (const int lineNo : targets) {
    if (lineNo < 1 || lineNo > static_cast<int>(text.size())) continue;
    std::string& ln = text[lineNo - 1];
    const std::size_t marker = ln.find("cpr-lint:");
    if (marker == std::string::npos) continue;
    // The directive lives inside a comment; remove exactly that comment.
    const std::size_t lineCmt = ln.rfind("//", marker);
    const std::size_t blockCmt = ln.rfind("/*", marker);
    if (lineCmt != std::string::npos &&
        (blockCmt == std::string::npos || blockCmt < lineCmt)) {
      ln.erase(lineCmt);
    } else if (blockCmt != std::string::npos) {
      const std::size_t close = ln.find("*/", marker);
      if (close == std::string::npos) continue;  // malformed; leave it
      ln.erase(blockCmt, close + 2 - blockCmt);
    } else {
      continue;
    }
    while (!ln.empty() && (ln.back() == ' ' || ln.back() == '\t'))
      ln.pop_back();
    if (ln.find_first_not_of(" \t") == std::string::npos)
      drop[lineNo - 1] = true;
    ++result.removed;
  }

  for (std::size_t i = 0; i < text.size(); ++i) {
    if (drop[i]) continue;
    result.source += text[i];
    if (i + 1 < text.size() || finalNewline) result.source += '\n';
  }
  return result;
}

}  // namespace cpr::lint
