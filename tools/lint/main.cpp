/// \file main.cpp
/// cpr_lint CLI: lints the project trees and exits non-zero on any
/// diagnostic. Run as a ctest target (repo_lint) and as the CI lint job.
///
///   cpr_lint [--root DIR] [--list-rules] [PATH...]
///
/// PATHs are files or directories relative to --root (default: the current
/// directory); with no PATH the standard project trees src tools tests
/// bench are scanned. Exit codes: 0 clean, 1 diagnostics found, 2 usage.
#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--list-rules] [PATH...]\n"
               "  --root DIR    repo root the PATHs are relative to\n"
               "  --list-rules  print the rule table and exit\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(argv[0]);
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const cpr::lint::RuleInfo& r : cpr::lint::ruleTable())
        std::printf("%-18s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "tests", "bench"};

  std::vector<std::string> scanned;
  const std::vector<cpr::lint::Diagnostic> diags =
      cpr::lint::lintTree(root, paths, &scanned);
  for (const cpr::lint::Diagnostic& d : diags)
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  std::fprintf(stderr, "cpr_lint: %zu file(s) scanned, %zu diagnostic(s)\n",
               scanned.size(), diags.size());
  return diags.empty() ? 0 : 1;
}
