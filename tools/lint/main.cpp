/// \file main.cpp
/// cpr_lint CLI: lints the project trees and exits non-zero on any
/// diagnostic. Run as a ctest target (repo_lint) and as the CI lint job.
///
///   cpr_lint [--root DIR] [--layers FILE] [--blocking FILE]
///            [--allocating FILE] [--sarif FILE] [--report FILE]
///            [--fix-stale-allows] [--list-rules] [PATH...]
///
/// PATHs are files or directories relative to --root (default: the current
/// directory); with no PATH the standard project trees src tools tests
/// bench are scanned. The architecture-graph pass runs whenever the layer
/// manifest is readable (default: <root>/tools/lint/layers.txt; override
/// with --layers). The LOCK-BLOCKING-CALL / HOT-BLOCKING manifest defaults
/// to <root>/tools/lint/blocking.txt, and the HOT-ALLOC manifest to
/// <root>/tools/lint/allocating.txt, each falling back to the compiled-in
/// list when the file is absent; an explicit --blocking / --allocating
/// that cannot be parsed is a hard error. `--sarif` writes the diagnostics
/// as a SARIF 2.1.0 log for code-scanning upload; `--report` writes the
/// run's own counters (lint.files / lint.diagnostics /
/// lint.callgraph.edges and the lint.run span) as a `cpr.report.v1` JSON.
/// `--fix-stale-allows` rewrites the scanned files in place, deleting
/// every allow directive flagged ALLOW-UNUSED, and drops those findings
/// from the output. Exit codes: 0 clean, 1 diagnostics found, 2 usage or
/// bad manifest.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/arch.h"
#include "lint/concurrency.h"
#include "lint/hotpath.h"
#include "lint/lint.h"
#include "obs/collector.h"
#include "obs/names.h"
#include "obs/report.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--root DIR] [--layers FILE] [--blocking FILE]\n"
      "       [--allocating FILE] [--sarif FILE] [--report FILE]\n"
      "       [--fix-stale-allows] [--list-rules] [PATH...]\n"
      "  --root DIR        repo root the PATHs are relative to\n"
      "  --layers FILE     layer manifest for the architecture pass\n"
      "                    (default: <root>/tools/lint/layers.txt)\n"
      "  --blocking FILE   blocking-call manifest for LOCK-BLOCKING-CALL\n"
      "                    and HOT-BLOCKING\n"
      "                    (default: <root>/tools/lint/blocking.txt,\n"
      "                    else the compiled-in list)\n"
      "  --allocating FILE allocation manifest for HOT-ALLOC\n"
      "                    (default: <root>/tools/lint/allocating.txt,\n"
      "                    else the compiled-in list)\n"
      "  --sarif FILE      write diagnostics as SARIF 2.1.0\n"
      "  --report FILE     write run counters as cpr.report.v1 JSON\n"
      "  --fix-stale-allows  delete ALLOW-UNUSED directives in place\n"
      "  --list-rules      print the rule table and exit\n",
      argv0);
  return 2;
}

/// Minimal SARIF 2.1.0 log: one run, the rule table as the driver's rules,
/// one result per diagnostic. Paths are emitted repo-relative with a
/// SRCROOT base so code-scanning UIs anchor them to the checkout.
void writeSarif(std::ostream& os,
                const std::vector<cpr::lint::Diagnostic>& diags) {
  const auto esc = [](std::string_view s) { return cpr::obs::jsonEscape(s); };
  os << "{\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\n"
     << "      \"name\": \"cpr_lint\",\n"
     << "      \"rules\": [";
  bool first = true;
  for (const cpr::lint::RuleInfo& r : cpr::lint::ruleTable()) {
    os << (first ? "\n" : ",\n") << "        {\"id\": \"" << esc(r.id)
       << "\", \"shortDescription\": {\"text\": \"" << esc(r.summary)
       << "\"}}";
    first = false;
  }
  os << "\n      ]\n    }},\n"
     << "    \"originalUriBaseIds\": {\"SRCROOT\": {\"uri\": "
        "\"file:///\"}},\n"
     << "    \"results\": [";
  first = true;
  for (const cpr::lint::Diagnostic& d : diags) {
    os << (first ? "\n" : ",\n") << "      {\"ruleId\": \"" << esc(d.rule)
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << esc(d.message) << "\"}, \"locations\": [{\"physicalLocation\": "
       << "{\"artifactLocation\": {\"uri\": \"" << esc(d.file)
       << "\", \"uriBaseId\": \"SRCROOT\"}, \"region\": {\"startLine\": "
       << d.line << "}}}]}";
    first = false;
  }
  os << "\n    ]\n  }]\n}\n";
}

bool saveSarif(const std::string& path,
               const std::vector<cpr::lint::Diagnostic>& diags) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  writeSarif(os, diags);
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layersPath;
  std::string blockingPath;
  std::string allocatingPath;
  std::string sarifPath;
  std::string reportPath;
  bool fixStaleAllows = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto flagValue = [&](std::string& dest) {
      if (i + 1 >= argc) return false;
      dest = argv[++i];
      return true;
    };
    if (arg == "--root") {
      if (!flagValue(root)) return usage(argv[0]);
    } else if (arg == "--layers") {
      if (!flagValue(layersPath)) return usage(argv[0]);
    } else if (arg == "--blocking") {
      if (!flagValue(blockingPath)) return usage(argv[0]);
    } else if (arg == "--allocating") {
      if (!flagValue(allocatingPath)) return usage(argv[0]);
    } else if (arg == "--fix-stale-allows") {
      fixStaleAllows = true;
    } else if (arg == "--sarif") {
      if (!flagValue(sarifPath)) return usage(argv[0]);
    } else if (arg == "--report") {
      if (!flagValue(reportPath)) return usage(argv[0]);
    } else if (arg == "--list-rules") {
      for (const cpr::lint::RuleInfo& r : cpr::lint::ruleTable())
        std::printf("%-18s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "tests", "bench"};

  // The architecture pass is on by default when the in-repo manifest
  // exists; an explicit --layers that cannot be parsed is a hard error.
  cpr::lint::LayerManifest manifest;
  const cpr::lint::LayerManifest* manifestPtr = nullptr;
  const bool layersExplicit = !layersPath.empty();
  if (!layersExplicit)
    layersPath = (std::filesystem::path(root) / "tools/lint/layers.txt")
                     .generic_string();
  std::string manifestError;
  if (cpr::lint::loadLayerManifest(layersPath, manifest, manifestError)) {
    manifestPtr = &manifest;
  } else if (layersExplicit) {
    std::fprintf(stderr, "cpr_lint: %s\n", manifestError.c_str());
    return 2;
  }

  // Same policy for the blocking manifest, with the compiled-in list as
  // the fallback when the in-repo file is absent.
  cpr::lint::BlockingManifest blocking = cpr::lint::builtinBlockingManifest();
  const bool blockingExplicit = !blockingPath.empty();
  if (!blockingExplicit)
    blockingPath = (std::filesystem::path(root) / "tools/lint/blocking.txt")
                       .generic_string();
  std::string blockingError;
  if (!cpr::lint::loadBlockingManifest(blockingPath, blocking,
                                       blockingError)) {
    if (blockingExplicit ||
        std::filesystem::exists(std::filesystem::path(blockingPath))) {
      std::fprintf(stderr, "cpr_lint: %s\n", blockingError.c_str());
      return 2;
    }
    blocking = cpr::lint::builtinBlockingManifest();
  }

  // Same policy again for the allocation manifest.
  cpr::lint::AllocManifest allocating = cpr::lint::builtinAllocManifest();
  const bool allocatingExplicit = !allocatingPath.empty();
  if (!allocatingExplicit)
    allocatingPath =
        (std::filesystem::path(root) / "tools/lint/allocating.txt")
            .generic_string();
  std::string allocatingError;
  if (!cpr::lint::loadAllocManifest(allocatingPath, allocating,
                                    allocatingError)) {
    if (allocatingExplicit ||
        std::filesystem::exists(std::filesystem::path(allocatingPath))) {
      std::fprintf(stderr, "cpr_lint: %s\n", allocatingError.c_str());
      return 2;
    }
    allocating = cpr::lint::builtinAllocManifest();
  }

  cpr::obs::Collector collector;
  std::vector<std::string> scanned;
  std::vector<cpr::lint::Diagnostic> diags;
  cpr::lint::LintStats stats;
  {
    const cpr::obs::ScopedTimer timer(&collector,
                                      cpr::obs::names::kLintRunSpan);
    diags = cpr::lint::lintTree(root, paths, &scanned, manifestPtr,
                                &blocking, &allocating, &stats);
  }

  if (fixStaleAllows) {
    // Rewrite each offending file once, then drop the fixed findings so
    // the run reports (and exits on) only what remains.
    std::map<std::string, std::vector<int>> stale;
    for (const cpr::lint::Diagnostic& d : diags)
      if (d.rule == "ALLOW-UNUSED") stale[d.file].push_back(d.line);
    int removed = 0;
    for (const auto& [rel, lines] : stale) {
      const std::filesystem::path p = std::filesystem::path(root) / rel;
      std::ifstream is(p, std::ios::binary);
      if (!is) {
        std::fprintf(stderr, "cpr_lint: cannot reread %s\n", rel.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << is.rdbuf();
      is.close();
      const cpr::lint::StripAllowResult fixed =
          cpr::lint::stripAllowDirectives(buf.str(), lines);
      std::ofstream os(p, std::ios::binary | std::ios::trunc);
      if (!os || !(os << fixed.source)) {
        std::fprintf(stderr, "cpr_lint: cannot rewrite %s\n", rel.c_str());
        return 2;
      }
      removed += fixed.removed;
    }
    if (!stale.empty()) {
      std::fprintf(stderr,
                   "cpr_lint: removed %d stale allow directive(s) in %zu "
                   "file(s)\n",
                   removed, stale.size());
      diags.erase(std::remove_if(diags.begin(), diags.end(),
                                 [](const cpr::lint::Diagnostic& d) {
                                   return d.rule == "ALLOW-UNUSED";
                                 }),
                  diags.end());
    }
  }
  collector.add(cpr::obs::names::kLintFiles,
                static_cast<long>(scanned.size()));
  collector.add(cpr::obs::names::kLintDiagnostics,
                static_cast<long>(diags.size()));
  collector.add(cpr::obs::names::kLintCallgraphEdges, stats.callGraphEdges);

  for (const cpr::lint::Diagnostic& d : diags)
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  std::fprintf(stderr,
               "cpr_lint: %zu file(s) scanned, %zu diagnostic(s)%s\n",
               scanned.size(), diags.size(),
               manifestPtr ? "" : " (no layer manifest; arch pass skipped)");

  if (!sarifPath.empty() && !saveSarif(sarifPath, diags)) {
    std::fprintf(stderr, "cpr_lint: cannot write SARIF to %s\n",
                 sarifPath.c_str());
    return 2;
  }
  if (!reportPath.empty()) {
    try {
      cpr::obs::saveReportJson(collector, reportPath);
    } catch (const std::runtime_error& e) {
      std::fprintf(stderr, "cpr_lint: %s\n", e.what());
      return 2;
    }
  }
  return diags.empty() ? 0 : 1;
}
