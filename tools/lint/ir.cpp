#include "lint/ir.h"

#include <array>
#include <algorithm>
#include <map>

namespace cpr::lint {

namespace {

bool isPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::Punct && t.text == text;
}

bool isIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::Identifier && t.text == text;
}

/// Matching-delimiter scan for any open/close punct pair.
std::size_t matchPair(const std::vector<Token>& toks, std::size_t open,
                      std::string_view o, std::string_view c) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (isPunct(toks[i], o)) ++depth;
    if (isPunct(toks[i], c) && --depth == 0) return i;
  }
  return toks.size();
}

/// Recursive-descent builder. Descends into namespace and class bodies
/// (declaration scope continues there) and steps over function and enum
/// bodies (only their extent matters to the IR).
class IrBuilder {
 public:
  explicit IrBuilder(const std::vector<Token>& toks) : toks_(toks) {}

  FileIr run() {
    scan(0, toks_.size());
    return std::move(ir_);
  }

 private:
  [[nodiscard]] bool at(std::size_t i, std::string_view text) const {
    return i < toks_.size() && toks_[i].text == text;
  }

  /// Consumes `#include <...>` / `#include "..."` starting at the `#`.
  /// Returns the index just past the directive.
  std::size_t include(std::size_t i) {
    const int line = toks_[i].line;
    std::size_t j = i + 2;  // past '#' 'include'
    if (j >= toks_.size()) return j;
    if (toks_[j].kind == TokKind::String) {
      ir_.includes.push_back(IncludeDecl{toks_[j].text, false, line});
      return j + 1;
    }
    if (isPunct(toks_[j], "<")) {
      // Re-join the header-name tokens: `<core/ids.h>` lexes as several
      // identifier/punct tokens. The directive cannot span lines.
      std::string path;
      ++j;
      while (j < toks_.size() && toks_[j].line == line &&
             !isPunct(toks_[j], ">")) {
        path += toks_[j].text;
        ++j;
      }
      if (j < toks_.size() && isPunct(toks_[j], ">")) ++j;
      ir_.includes.push_back(IncludeDecl{std::move(path), true, line});
    }
    return j;
  }

  /// `namespace [a::b] {` — records the decl; the body stays in declaration
  /// scope, so the caller keeps scanning right after the `{`.
  std::size_t namespaceDecl(std::size_t i) {
    const int line = toks_[i].line;
    std::string name;
    std::size_t j = i + 1;
    while (j < toks_.size() &&
           (toks_[j].kind == TokKind::Identifier || isPunct(toks_[j], ":"))) {
      name += toks_[j].text;
      ++j;
    }
    if (j >= toks_.size() || !isPunct(toks_[j], "{")) return i + 1;
    const std::size_t close = matchBrace(toks_, j);
    ir_.namespaces.push_back(NamespaceDecl{
        std::move(name), line, toks_[j].line,
        close < toks_.size() ? toks_[close].line : 0});
    return j + 1;  // descend: namespace bodies hold declarations
  }

  /// `class|struct [attrs] Name [: bases] { ... }` — records the decl and
  /// descends into the body (members are declarations). Forward
  /// declarations (`class X;`) and elaborated uses produce no decl.
  std::size_t classDecl(std::size_t i) {
    std::size_t j = i + 1;
    // Skip attributes / alignas / export-macro identifiers up to the name:
    // the name is the last identifier before `{`, `;`, or `:` (base clause).
    std::string name;
    int nameLine = toks_[i].line;
    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (isPunct(t, "[") || isPunct(t, "(")) {
        j = matchPair(toks_, j, t.text, t.text == "[" ? "]" : ")") + 1;
        continue;
      }
      if (t.kind == TokKind::Identifier) {
        if (t.text != "final") {
          // A `::` continues a qualified name (`struct Server::Connection`);
          // otherwise each identifier replaces the candidate, so attribute
          // macros before the real name do not stick.
          if (name.size() >= 2 && name.compare(name.size() - 2, 2, "::") == 0)
            name += t.text;
          else
            name = t.text;
          nameLine = t.line;
        }
        ++j;
        continue;
      }
      if (isPunct(t, ":") && j + 1 < toks_.size() &&
          isPunct(toks_[j + 1], ":") && !name.empty()) {
        name += "::";
        j += 2;
        continue;
      }
      break;
    }
    // Base clause: skip to the `{` (template args inside base lists have no
    // top-level braces before the class body).
    if (j < toks_.size() && isPunct(toks_[j], ":")) {
      while (j < toks_.size() && !isPunct(toks_[j], "{") &&
             !isPunct(toks_[j], ";"))
        ++j;
    }
    if (j >= toks_.size() || !isPunct(toks_[j], "{") || name.empty())
      return i + 1;  // forward decl, elaborated type, or anonymous
    const std::size_t close = matchBrace(toks_, j);
    ir_.decls.push_back(EntityDecl{
        DeclKind::Class, std::move(name), nameLine, toks_[j].line,
        close < toks_.size() ? toks_[close].line : 0, j, close});
    return j + 1;  // descend: members are declarations
  }

  /// `enum [class|struct] Name ... { ... }` — records the decl and steps
  /// over the body (enumerators are not declarations the IR tracks).
  std::size_t enumDecl(std::size_t i) {
    std::size_t j = i + 1;
    if (j < toks_.size() &&
        (isIdent(toks_[j], "class") || isIdent(toks_[j], "struct")))
      ++j;
    std::string name;
    int nameLine = toks_[i].line;
    if (j < toks_.size() && toks_[j].kind == TokKind::Identifier) {
      name = toks_[j].text;
      nameLine = toks_[j].line;
      ++j;
    }
    while (j < toks_.size() && !isPunct(toks_[j], "{") &&
           !isPunct(toks_[j], ";"))
      ++j;
    if (j >= toks_.size() || !isPunct(toks_[j], "{")) return i + 1;
    const std::size_t close = matchBrace(toks_, j);
    if (!name.empty()) {
      ir_.decls.push_back(EntityDecl{
          DeclKind::Enum, std::move(name), nameLine, toks_[j].line,
          close < toks_.size() ? toks_[close].line : 0, j, close});
    }
    return close + 1;  // step over: no declarations inside
  }

  /// Tries to read a function *definition* whose name is the identifier at
  /// `i` (immediately followed by `(`): matches the parameter parens, then
  /// skips trailer tokens (cv/ref qualifiers, noexcept(...), trailing return
  /// types, constructor init lists) up to the body `{`. Anything ending in
  /// `;` or `=` is a plain declaration / variable and produces no decl.
  /// Returns the index to resume at, or `i` when this is not a definition.
  std::size_t functionDecl(std::size_t i) {
    static constexpr std::array<std::string_view, 10> kNotAName = {
        "if",     "for",    "while",    "switch",        "catch",
        "return", "sizeof", "decltype", "static_assert", "noexcept",
    };
    if (std::find(kNotAName.begin(), kNotAName.end(), toks_[i].text) !=
        kNotAName.end())
      return i;
    const std::size_t close = matchPair(toks_, i + 1, "(", ")");
    if (close >= toks_.size()) return i;
    std::size_t j = close + 1;
    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (isPunct(t, "{")) {
        const std::size_t end = matchBrace(toks_, j);
        ir_.decls.push_back(EntityDecl{
            DeclKind::Function, toks_[i].text, toks_[i].line, t.line,
            end < toks_.size() ? toks_[end].line : 0, j, end, i});
        return end + 1;  // step over the body
      }
      if (isPunct(t, ";") || isPunct(t, "=") || isPunct(t, "}")) return i;
      if (isPunct(t, "(")) {  // noexcept(...), init-list member parens
        j = matchPair(toks_, j, "(", ")") + 1;
        continue;
      }
      ++j;
    }
    return i;
  }

  void scan(std::size_t begin, std::size_t end) {
    std::size_t i = begin;
    while (i < end && i < toks_.size()) {
      const Token& t = toks_[i];
      if (isPunct(t, "#") && at(i + 1, "include")) {
        i = include(i);
        continue;
      }
      if (isIdent(t, "namespace")) {
        i = namespaceDecl(i);
        continue;
      }
      if (isIdent(t, "class") || isIdent(t, "struct")) {
        i = classDecl(i);
        continue;
      }
      if (isIdent(t, "enum")) {
        i = enumDecl(i);
        continue;
      }
      if (t.kind == TokKind::Identifier && at(i + 1, "(")) {
        const std::size_t next = functionDecl(i);
        if (next != i) {
          i = next;
          continue;
        }
      }
      ++i;
    }
  }

  const std::vector<Token>& toks_;
  FileIr ir_;
};

}  // namespace

std::size_t matchBrace(const std::vector<Token>& toks, std::size_t open) {
  return matchPair(toks, open, "{", "}");
}

FileIr buildIr(const std::vector<Token>& toks) { return IrBuilder(toks).run(); }

namespace {

/// The RAII guard class names the region tracker understands. shared_lock
/// is tracked like an exclusive hold: for the lint's purposes (blocking
/// calls, lock order) a reader hold participates exactly like a writer one.
bool isGuardClass(std::string_view text) {
  return text == "lock_guard" || text == "unique_lock" ||
         text == "scoped_lock" || text == "shared_lock";
}

/// Joins the tokens of one mutex argument ("conn -> writeMu" ->
/// "conn->writeMu"). Returns an empty string for tag arguments
/// (std::defer_lock and friends) so callers can skip them; `deferred` is
/// set when the tag was specifically std::defer_lock.
std::string joinMutexArg(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end, bool* deferred) {
  std::string expr;
  std::string last;
  for (std::size_t i = begin; i < end; ++i) {
    expr += toks[i].text;
    if (toks[i].kind == TokKind::Identifier) last = toks[i].text;
  }
  if (last == "defer_lock") {
    *deferred = true;
    return {};
  }
  if (last == "adopt_lock" || last == "try_to_lock") return {};
  return expr;
}

}  // namespace

std::vector<LockRegion> findLockRegions(const std::vector<Token>& toks,
                                        std::size_t bodyBegin,
                                        std::size_t bodyEnd) {
  std::vector<LockRegion> out;
  if (bodyBegin >= toks.size() || bodyEnd > toks.size() ||
      bodyBegin >= bodyEnd)
    return out;

  // One declared RAII guard variable. `scopeEnd` is the token index of the
  // `}` closing the scope it was declared in; reopened regions (unlock then
  // lock) end there too.
  struct GuardVar {
    std::vector<std::string> mutexes;
    std::size_t scopeEnd = 0;
    std::vector<std::size_t> open;  ///< indices into `out` of open regions
  };
  std::map<std::string, GuardVar> guards;
  std::vector<std::size_t> manualOpen;  ///< indices into `out`, raii=false
  std::vector<std::size_t> braceStack{bodyBegin};
  int nextGroup = 0;

  auto is = [&](std::size_t i, std::string_view text) {
    return i < bodyEnd && toks[i].text == text;
  };
  /// Receiver expression of a `.`/`->` method call whose name token is at
  /// `name`: walks back over identifier / `::` / `.` / `->` / `this`
  /// tokens. Returns empty when the name is not member-accessed.
  auto receiverOf = [&](std::size_t name) {
    std::size_t i = name;
    if (i >= 2 && toks[i - 1].text == "." &&
        toks[i - 1].kind == TokKind::Punct) {
      i -= 1;
    } else if (i >= 3 && toks[i - 1].text == ">" && toks[i - 2].text == "-") {
      i -= 2;
    } else {
      return std::string();
    }
    const std::size_t accessor = i;
    while (i > bodyBegin) {
      const Token& p = toks[i - 1];
      if (p.kind == TokKind::Identifier) {
        --i;
        continue;
      }
      if (p.text == "." || p.text == ":") {
        --i;
        continue;
      }
      if (p.text == ">" && i >= 2 && toks[i - 2].text == "-") {
        i -= 2;
        continue;
      }
      break;
    }
    // The expression must start with an identifier (or `this`), and must
    // not be a chained call result like `f().lock()` — those start after
    // a `)` which the walk above stopped at.
    if (i >= accessor || toks[i].kind != TokKind::Identifier)
      return std::string();
    std::string expr;
    for (std::size_t k = i; k < accessor; ++k) expr += toks[k].text;
    return expr;
  };

  for (std::size_t i = bodyBegin + 1; i < bodyEnd; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::Punct) {
      if (t.text == "{") braceStack.push_back(i);
      if (t.text == "}" && braceStack.size() > 1) braceStack.pop_back();
      continue;
    }
    if (t.kind != TokKind::Identifier) continue;

    // RAII guard declaration: std::lock_guard<...> name(mu[, mu2...]);
    if (isGuardClass(t.text) && i > bodyBegin && is(i - 1, ":")) {
      std::size_t j = i + 1;
      if (is(j, "<")) {  // skip template arguments
        int depth = 0;
        for (; j < bodyEnd; ++j) {
          if (is(j, "<")) ++depth;
          if (is(j, ">") && --depth == 0) break;
        }
        ++j;
      }
      if (j >= bodyEnd || toks[j].kind != TokKind::Identifier) continue;
      const std::string var = toks[j].text;
      const std::string open = is(j + 1, "(") ? "(" : is(j + 1, "{") ? "{" : "";
      if (open.empty()) continue;  // e.g. `std::unique_lock<std::mutex> v;`
      const std::string close = open == "(" ? ")" : "}";
      std::size_t k = j + 1;
      int depth = 0;
      bool deferred = false;
      std::vector<std::string> mutexes;
      std::size_t argBegin = j + 2;
      for (; k < bodyEnd; ++k) {
        if (is(k, open)) ++depth;
        if (is(k, close) && --depth == 0) break;
        if (depth == 1 && is(k, ",")) {
          std::string expr = joinMutexArg(toks, argBegin, k, &deferred);
          if (!expr.empty()) mutexes.push_back(std::move(expr));
          argBegin = k + 1;
        }
      }
      if (k >= bodyEnd) continue;
      std::string expr = joinMutexArg(toks, argBegin, k, &deferred);
      if (!expr.empty()) mutexes.push_back(std::move(expr));
      GuardVar gv;
      gv.mutexes = mutexes;
      gv.scopeEnd = matchBrace(toks, braceStack.back());
      if (gv.scopeEnd > bodyEnd) gv.scopeEnd = bodyEnd;
      if (!deferred) {
        const int group = nextGroup++;
        for (const std::string& mu : mutexes) {
          gv.open.push_back(out.size());
          out.push_back(LockRegion{mu, toks[j].line, k + 1, gv.scopeEnd,
                                   group, true});
        }
      }
      guards[var] = std::move(gv);
      i = k;
      continue;
    }

    // `.lock()` / `.unlock()` — on a guard variable (close/reopen its
    // regions) or on a mutex expression directly (manual pairing).
    if ((t.text == "lock" || t.text == "unlock") && is(i + 1, "(")) {
      const std::string recv = receiverOf(i);
      if (recv.empty()) continue;
      const auto git = guards.find(recv);
      if (git != guards.end()) {
        GuardVar& gv = git->second;
        if (t.text == "unlock") {
          for (const std::size_t r : gv.open) out[r].tokEnd = i;
          gv.open.clear();
        } else if (gv.open.empty()) {
          const int group = nextGroup++;
          for (const std::string& mu : gv.mutexes) {
            gv.open.push_back(out.size());
            out.push_back(
                LockRegion{mu, t.line, i + 3, gv.scopeEnd, group, true});
          }
        }
        continue;
      }
      if (t.text == "lock") {
        manualOpen.push_back(out.size());
        out.push_back(
            LockRegion{recv, t.line, i + 3, bodyEnd, nextGroup++, false});
      } else {
        for (std::size_t r = manualOpen.size(); r-- > 0;) {
          if (out[manualOpen[r]].mutexExpr != recv) continue;
          out[manualOpen[r]].tokEnd = i;
          manualOpen.erase(manualOpen.begin() +
                           static_cast<std::ptrdiff_t>(r));
          break;
        }
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const LockRegion& a, const LockRegion& b) {
              return a.tokBegin != b.tokBegin ? a.tokBegin < b.tokBegin
                                              : a.tokEnd < b.tokEnd;
            });
  return out;
}

}  // namespace cpr::lint
