#include "lint/ir.h"

#include <array>
#include <algorithm>

namespace cpr::lint {

namespace {

bool isPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::Punct && t.text == text;
}

bool isIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::Identifier && t.text == text;
}

/// Matching-delimiter scan for any open/close punct pair.
std::size_t matchPair(const std::vector<Token>& toks, std::size_t open,
                      std::string_view o, std::string_view c) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (isPunct(toks[i], o)) ++depth;
    if (isPunct(toks[i], c) && --depth == 0) return i;
  }
  return toks.size();
}

/// Recursive-descent builder. Descends into namespace and class bodies
/// (declaration scope continues there) and steps over function and enum
/// bodies (only their extent matters to the IR).
class IrBuilder {
 public:
  explicit IrBuilder(const std::vector<Token>& toks) : toks_(toks) {}

  FileIr run() {
    scan(0, toks_.size());
    return std::move(ir_);
  }

 private:
  [[nodiscard]] bool at(std::size_t i, std::string_view text) const {
    return i < toks_.size() && toks_[i].text == text;
  }

  /// Consumes `#include <...>` / `#include "..."` starting at the `#`.
  /// Returns the index just past the directive.
  std::size_t include(std::size_t i) {
    const int line = toks_[i].line;
    std::size_t j = i + 2;  // past '#' 'include'
    if (j >= toks_.size()) return j;
    if (toks_[j].kind == TokKind::String) {
      ir_.includes.push_back(IncludeDecl{toks_[j].text, false, line});
      return j + 1;
    }
    if (isPunct(toks_[j], "<")) {
      // Re-join the header-name tokens: `<core/ids.h>` lexes as several
      // identifier/punct tokens. The directive cannot span lines.
      std::string path;
      ++j;
      while (j < toks_.size() && toks_[j].line == line &&
             !isPunct(toks_[j], ">")) {
        path += toks_[j].text;
        ++j;
      }
      if (j < toks_.size() && isPunct(toks_[j], ">")) ++j;
      ir_.includes.push_back(IncludeDecl{std::move(path), true, line});
    }
    return j;
  }

  /// `namespace [a::b] {` — records the decl; the body stays in declaration
  /// scope, so the caller keeps scanning right after the `{`.
  std::size_t namespaceDecl(std::size_t i) {
    const int line = toks_[i].line;
    std::string name;
    std::size_t j = i + 1;
    while (j < toks_.size() &&
           (toks_[j].kind == TokKind::Identifier || isPunct(toks_[j], ":"))) {
      name += toks_[j].text;
      ++j;
    }
    if (j >= toks_.size() || !isPunct(toks_[j], "{")) return i + 1;
    const std::size_t close = matchBrace(toks_, j);
    ir_.namespaces.push_back(NamespaceDecl{
        std::move(name), line, toks_[j].line,
        close < toks_.size() ? toks_[close].line : 0});
    return j + 1;  // descend: namespace bodies hold declarations
  }

  /// `class|struct [attrs] Name [: bases] { ... }` — records the decl and
  /// descends into the body (members are declarations). Forward
  /// declarations (`class X;`) and elaborated uses produce no decl.
  std::size_t classDecl(std::size_t i) {
    std::size_t j = i + 1;
    // Skip attributes / alignas / export-macro identifiers up to the name:
    // the name is the last identifier before `{`, `;`, or `:` (base clause).
    std::string name;
    int nameLine = toks_[i].line;
    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (isPunct(t, "[") || isPunct(t, "(")) {
        j = matchPair(toks_, j, t.text, t.text == "[" ? "]" : ")") + 1;
        continue;
      }
      if (t.kind == TokKind::Identifier) {
        if (t.text != "final") {
          name = t.text;
          nameLine = t.line;
        }
        ++j;
        continue;
      }
      break;
    }
    // Base clause: skip to the `{` (template args inside base lists have no
    // top-level braces before the class body).
    if (j < toks_.size() && isPunct(toks_[j], ":")) {
      while (j < toks_.size() && !isPunct(toks_[j], "{") &&
             !isPunct(toks_[j], ";"))
        ++j;
    }
    if (j >= toks_.size() || !isPunct(toks_[j], "{") || name.empty())
      return i + 1;  // forward decl, elaborated type, or anonymous
    const std::size_t close = matchBrace(toks_, j);
    ir_.decls.push_back(EntityDecl{
        DeclKind::Class, std::move(name), nameLine, toks_[j].line,
        close < toks_.size() ? toks_[close].line : 0, j, close});
    return j + 1;  // descend: members are declarations
  }

  /// `enum [class|struct] Name ... { ... }` — records the decl and steps
  /// over the body (enumerators are not declarations the IR tracks).
  std::size_t enumDecl(std::size_t i) {
    std::size_t j = i + 1;
    if (j < toks_.size() &&
        (isIdent(toks_[j], "class") || isIdent(toks_[j], "struct")))
      ++j;
    std::string name;
    int nameLine = toks_[i].line;
    if (j < toks_.size() && toks_[j].kind == TokKind::Identifier) {
      name = toks_[j].text;
      nameLine = toks_[j].line;
      ++j;
    }
    while (j < toks_.size() && !isPunct(toks_[j], "{") &&
           !isPunct(toks_[j], ";"))
      ++j;
    if (j >= toks_.size() || !isPunct(toks_[j], "{")) return i + 1;
    const std::size_t close = matchBrace(toks_, j);
    if (!name.empty()) {
      ir_.decls.push_back(EntityDecl{
          DeclKind::Enum, std::move(name), nameLine, toks_[j].line,
          close < toks_.size() ? toks_[close].line : 0, j, close});
    }
    return close + 1;  // step over: no declarations inside
  }

  /// Tries to read a function *definition* whose name is the identifier at
  /// `i` (immediately followed by `(`): matches the parameter parens, then
  /// skips trailer tokens (cv/ref qualifiers, noexcept(...), trailing return
  /// types, constructor init lists) up to the body `{`. Anything ending in
  /// `;` or `=` is a plain declaration / variable and produces no decl.
  /// Returns the index to resume at, or `i` when this is not a definition.
  std::size_t functionDecl(std::size_t i) {
    static constexpr std::array<std::string_view, 10> kNotAName = {
        "if",     "for",    "while",    "switch",        "catch",
        "return", "sizeof", "decltype", "static_assert", "noexcept",
    };
    if (std::find(kNotAName.begin(), kNotAName.end(), toks_[i].text) !=
        kNotAName.end())
      return i;
    const std::size_t close = matchPair(toks_, i + 1, "(", ")");
    if (close >= toks_.size()) return i;
    std::size_t j = close + 1;
    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (isPunct(t, "{")) {
        const std::size_t end = matchBrace(toks_, j);
        ir_.decls.push_back(EntityDecl{
            DeclKind::Function, toks_[i].text, toks_[i].line, t.line,
            end < toks_.size() ? toks_[end].line : 0, j, end});
        return end + 1;  // step over the body
      }
      if (isPunct(t, ";") || isPunct(t, "=") || isPunct(t, "}")) return i;
      if (isPunct(t, "(")) {  // noexcept(...), init-list member parens
        j = matchPair(toks_, j, "(", ")") + 1;
        continue;
      }
      ++j;
    }
    return i;
  }

  void scan(std::size_t begin, std::size_t end) {
    std::size_t i = begin;
    while (i < end && i < toks_.size()) {
      const Token& t = toks_[i];
      if (isPunct(t, "#") && at(i + 1, "include")) {
        i = include(i);
        continue;
      }
      if (isIdent(t, "namespace")) {
        i = namespaceDecl(i);
        continue;
      }
      if (isIdent(t, "class") || isIdent(t, "struct")) {
        i = classDecl(i);
        continue;
      }
      if (isIdent(t, "enum")) {
        i = enumDecl(i);
        continue;
      }
      if (t.kind == TokKind::Identifier && at(i + 1, "(")) {
        const std::size_t next = functionDecl(i);
        if (next != i) {
          i = next;
          continue;
        }
      }
      ++i;
    }
  }

  const std::vector<Token>& toks_;
  FileIr ir_;
};

}  // namespace

std::size_t matchBrace(const std::vector<Token>& toks, std::size_t open) {
  return matchPair(toks, open, "{", "}");
}

FileIr buildIr(const std::vector<Token>& toks) { return IrBuilder(toks).run(); }

}  // namespace cpr::lint
