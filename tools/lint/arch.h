/// \file arch.h
/// Architecture-graph analysis for cpr_lint: the whole-tree pass that turns
/// per-file `#include` declarations (lint/ir.h) into layer diagnostics.
///
/// The layer manifest (tools/lint/layers.txt) names the modules under src/
/// bottom-up; an include edge may only point sideways (same line of the
/// manifest) or downwards. `everywhere` modules (support, obs) are
/// importable from any layer but must themselves stay leaves. Three rules
/// come out of the graph:
///
///   LAYER-VIOLATION  an include edge pointing at a higher layer, a module
///                    missing from the manifest, or an everywhere module
///                    reaching into the layered stack
///   LAYER-FORBIDDEN  a module reaching a header its `forbid:` manifest line
///                    bans, directly or through any include chain (used to
///                    keep engine headers private behind an interface seam)
///   LAYER-CYCLE      a cycle in the file-level include graph
///   DEAD-HEADER      a header under src/ that no scanned file includes
///
/// Architecture diagnostics are deliberately NOT suppressible with the
/// per-line allow directives: a layering exception is a manifest change,
/// made visible in layers.txt, never a per-line pragma.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/ir.h"
#include "lint/lint.h"

namespace cpr::lint {

/// Parsed form of tools/lint/layers.txt. Grammar (one entry per line,
/// '#' comments, blank lines ignored):
///
///   everywhere: support obs      # importable by all layers; must be leaves
///   geom                         # level 0 (bottom)
///   db
///   gen lefdef ilp               # same-level modules may include each other
///   core
///   route eval viz               # top
///   forbid: core ilp/simplex.h   # module must not reach this header at all
///
/// A `forbid:` line names one module and one include path (as spelled in
/// `#include` directives): no file of that module may include the header,
/// directly or transitively. Layer direction alone cannot express this —
/// `core` may include `ilp`, but only through the `lp_backend.h` seam, never
/// a concrete engine header.
struct LayerManifest {
  static constexpr int kEverywhere = -1;
  static constexpr int kUnknown = -2;

  struct Forbid {
    std::string module;   ///< manifest module the ban applies to
    std::string include;  ///< include path, e.g. "ilp/simplex.h"
  };

  std::vector<std::string> everywhere;
  std::vector<std::vector<std::string>> levels;  ///< bottom-up
  std::vector<Forbid> forbids;

  /// Level index of `module` (0 = bottom), kEverywhere for everywhere
  /// modules, kUnknown for modules the manifest does not name.
  [[nodiscard]] int levelOf(std::string_view module) const;
};

/// Parses manifest text. On failure returns false and describes the problem
/// in `error`.
[[nodiscard]] bool parseLayerManifest(std::string_view text,
                                      LayerManifest& out, std::string& error);

/// Reads and parses a manifest file; false on I/O or parse failure.
[[nodiscard]] bool loadLayerManifest(const std::string& path,
                                     LayerManifest& out, std::string& error);

/// One scanned file as the architecture pass sees it.
struct ArchFile {
  std::string relPath;  ///< repo-relative, forward slashes
  std::vector<IncludeDecl> includes;
};

/// Runs the three graph rules over the whole file set. Only files under
/// src/ form graph nodes; files elsewhere (tools, tests, bench) still count
/// as includers for DEAD-HEADER. Diagnostics come back sorted by file,
/// line, then rule.
[[nodiscard]] std::vector<Diagnostic> checkArchitecture(
    const std::vector<ArchFile>& files, const LayerManifest& manifest);

}  // namespace cpr::lint
