/// \file lint.h
/// cpr_lint rule engine: project-invariant checks over lexed C++ sources.
///
/// Each rule has a stable ID, fires file:line diagnostics, and can be
/// silenced per line with an `allow(RULE-ID)` comment directive (prefixed
/// by the `cpr-lint:` marker) on the offending line or the line directly
/// above it. There is no blanket (file- or
/// tree-level) suppression on purpose: the repo is expected to lint clean,
/// and every exception must be visible at the exact line it excuses. The
/// rule table lives in DESIGN.md ("Static analysis & contracts").
///
/// Scoping is path-based: `relPath` must be the repo-relative path with
/// forward slashes (e.g. "src/core/panel_kernel.cpp"); several rules only
/// apply under src/core, to panel_kernel translation units, or to headers.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace cpr::lint {

struct LayerManifest;  // arch.h

struct Diagnostic {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// Stable rule registry, in severity-agnostic alphabetical order.
[[nodiscard]] const std::vector<RuleInfo>& ruleTable();

/// Lints one translation unit. Diagnostics come back sorted by line then
/// rule ID; suppressed findings are dropped and stale `allow(...)`
/// directives surface as ALLOW-UNUSED.
[[nodiscard]] std::vector<Diagnostic> lintSource(const std::string& relPath,
                                                 std::string_view source);

/// One in-memory file for lintFiles: the repo-relative path (forward
/// slashes) plus its full source text.
struct SourceFile {
  std::string relPath;
  std::string source;
};

/// Lints a whole file set: per-file rules on every file, then — when a
/// `manifest` is supplied — the architecture-graph pass (LAYER-VIOLATION /
/// LAYER-FORBIDDEN / LAYER-CYCLE / DEAD-HEADER, see arch.h) over the
/// include graph of the
/// set. Architecture diagnostics ignore allow directives by design.
/// Diagnostics come back grouped per file in input order (architecture
/// findings merged in), sorted by line then rule within a file.
[[nodiscard]] std::vector<Diagnostic> lintFiles(
    const std::vector<SourceFile>& files,
    const LayerManifest* manifest = nullptr);

/// Walks `subdirs` under `rootDir`, lints every C++ source file
/// (.h/.hpp/.cpp/.cc/.cxx), and concatenates the per-file diagnostics in
/// path-sorted order. Directories named build*, corpus, lint_corpus, or
/// starting with '.' are skipped. When `scannedFiles` is non-null it
/// receives the repo-relative path of every file visited. When `manifest`
/// is non-null the architecture-graph pass runs over the whole walked set.
[[nodiscard]] std::vector<Diagnostic> lintTree(
    const std::filesystem::path& rootDir, const std::vector<std::string>& subdirs,
    std::vector<std::string>* scannedFiles = nullptr,
    const LayerManifest* manifest = nullptr);

}  // namespace cpr::lint
