/// \file lint.h
/// cpr_lint rule engine: project-invariant checks over lexed C++ sources.
///
/// Each rule has a stable ID, fires file:line diagnostics, and can be
/// silenced per line with an `allow(RULE-ID)` comment directive (prefixed
/// by the `cpr-lint:` marker) on the offending line or the line directly
/// above it. There is no blanket (file- or
/// tree-level) suppression on purpose: the repo is expected to lint clean,
/// and every exception must be visible at the exact line it excuses. The
/// rule table lives in DESIGN.md ("Static analysis & contracts").
///
/// Some rules ignore allow directives entirely: the architecture-graph
/// rules (LAYER-*/DEAD-HEADER, see arch.h) and the deadlock-shaped
/// concurrency rules LOCK-ORDER / LOCK-BLOCKING-CALL (concurrency.h) —
/// their sanctioned escape hatches are manifest/annotation changes, not
/// per-line pragmas.
///
/// Scoping is path-based: `relPath` must be the repo-relative path with
/// forward slashes (e.g. "src/core/panel_kernel.cpp"); several rules only
/// apply under src/core, to panel_kernel translation units, or to headers.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace cpr::lint {

struct LayerManifest;     // arch.h
struct BlockingManifest;  // concurrency.h
struct AllocManifest;     // hotpath.h

struct Diagnostic {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// Stable rule registry, in severity-agnostic alphabetical order.
[[nodiscard]] const std::vector<RuleInfo>& ruleTable();

/// Lints one translation unit (a single-file lintFiles call, so per-file
/// rules and the concurrency pass run; the architecture pass needs the
/// whole set and does not). Diagnostics come back sorted by line then
/// rule ID; suppressed findings are dropped and stale `allow(...)`
/// directives surface as ALLOW-UNUSED.
[[nodiscard]] std::vector<Diagnostic> lintSource(const std::string& relPath,
                                                 std::string_view source);

/// One in-memory file for lintFiles: the repo-relative path (forward
/// slashes) plus its full source text.
struct SourceFile {
  std::string relPath;
  std::string source;
};

/// Aggregate numbers lintFiles/lintTree expose for the machine-readable
/// report (`--report` emits them as obs counters).
struct LintStats {
  long callGraphEdges = 0;  ///< hot-path pass: unique resolved call edges
};

/// Lints a whole file set: per-file rules on every file, the concurrency
/// pass (GUARDED-BY / LOCK-BLOCKING-CALL / LOCK-ORDER / THREAD-LIFECYCLE,
/// see concurrency.h) and the hot-path call-graph pass (HOT-ALLOC /
/// HOT-THROW / HOT-BLOCKING / STATUS-DISCARD, see hotpath.h) over the
/// whole set, then — when a `manifest` is supplied — the
/// architecture-graph pass (LAYER-VIOLATION / LAYER-FORBIDDEN /
/// LAYER-CYCLE / DEAD-HEADER, see arch.h) over the include graph of the
/// set. `blocking` names the blocking-call manifest for
/// LOCK-BLOCKING-CALL and HOT-BLOCKING; null uses
/// builtinBlockingManifest(). `allocating` names the allocation manifest
/// for HOT-ALLOC; null uses builtinAllocManifest(). Architecture
/// diagnostics, LOCK-ORDER / LOCK-BLOCKING-CALL, and the HOT-* rules
/// ignore allow directives by design. Diagnostics come back grouped per
/// file in input order, sorted by line then rule within a file. `stats`,
/// when non-null, receives pass aggregates (call-graph edge count).
[[nodiscard]] std::vector<Diagnostic> lintFiles(
    const std::vector<SourceFile>& files,
    const LayerManifest* manifest = nullptr,
    const BlockingManifest* blocking = nullptr,
    const AllocManifest* allocating = nullptr, LintStats* stats = nullptr);

/// Walks `subdirs` under `rootDir`, lints every C++ source file
/// (.h/.hpp/.cpp/.cc/.cxx), and concatenates the per-file diagnostics in
/// path-sorted order. Directories named build*, corpus, lint_corpus, or
/// starting with '.' are skipped. When `scannedFiles` is non-null it
/// receives the repo-relative path of every file visited. When `manifest`
/// is non-null the architecture-graph pass runs over the whole walked set.
/// `blocking`, `allocating`, and `stats` are forwarded to lintFiles.
[[nodiscard]] std::vector<Diagnostic> lintTree(
    const std::filesystem::path& rootDir, const std::vector<std::string>& subdirs,
    std::vector<std::string>* scannedFiles = nullptr,
    const LayerManifest* manifest = nullptr,
    const BlockingManifest* blocking = nullptr,
    const AllocManifest* allocating = nullptr, LintStats* stats = nullptr);

/// Result of removing stale allow directives from one source text.
struct StripAllowResult {
  std::string source;  ///< rewritten text
  int removed = 0;     ///< directives actually removed
};

/// Removes the `cpr-lint:` comment directive from each 1-based line in
/// `lines` (the lines of ALLOW-UNUSED findings). Only the comment carrying
/// the marker is removed; code sharing the line survives, and a line left
/// whitespace-only is dropped entirely. Backs `cpr_lint --fix-stale-allows`.
[[nodiscard]] StripAllowResult stripAllowDirectives(
    std::string_view source, const std::vector<int>& lines);

}  // namespace cpr::lint
