/// \file hotpath.h
/// Hot-path analysis for cpr_lint: the whole-tree call-graph pass that
/// turns the annotation vocabulary of src/support/hot_annotations.h into
/// four rules:
///
///   HOT-ALLOC       heap allocation — `new`, a call from the allocation
///                   manifest (tools/lint/allocating.txt), or container
///                   growth whose receiver was never `reserve()`d earlier
///                   in the same body — inside a CPR_HOT function or
///                   anything transitively reachable from one through
///                   intra-project call edges; also checked standalone in
///                   every CPR_NOALLOC body. Diagnostics carry the full
///                   call chain from the annotated root.
///   HOT-THROW       a `throw` statement reachable from hot code that is
///                   not inside a try/catch of the same function body (the
///                   containment idiom `Solver::trySolve` uses at the
///                   panel boundary). Contract macros are invisible here
///                   by construction: CPR_CHECK's throw lives behind the
///                   macro name, and its NDEBUG semantics are the
///                   documented escape (DESIGN.md §16).
///   HOT-BLOCKING    a call from the blocking manifest (blocking.txt, the
///                   same one LOCK-BLOCKING-CALL uses) reachable from hot
///                   code — thread-pool drains, socket I/O, and sleeps
///                   belong in the drivers *around* the hot kernels, never
///                   inside them.
///   STATUS-DISCARD  a call to a function returning `Status` or
///                   `Outcome<T>` used as a bare expression statement, in
///                   any function (hot or not). Backs up the
///                   [[nodiscard]] sweep at the token level, where it also
///                   fires for discards the compiler forgives.
///
/// Like LOCK-ORDER, the HOT-* rules are NOT suppressible with per-line
/// allow directives: the escape hatches are the annotations themselves
/// (CPR_COLD_OK excludes a function from the closure, CPR_NOALLOC stops
/// the descent at a checked boundary), visible in the signature and in
/// review. STATUS-DISCARD accepts allows like the per-file rules.
///
/// Call edges are resolved structurally, mirroring the concurrency pass:
/// a receiver-qualified call (`x.f()` / `x->f()`) binds to the unique
/// class defining `f`; `Cls::f()` binds by qualifier (falling back to a
/// free function when `Cls` is really a namespace); a bare call binds to
/// the caller's own class first, then to a free function. Overloads share
/// a graph node — the pass checks the union of their bodies, which never
/// misses a diagnostic.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/concurrency.h"
#include "lint/ir.h"
#include "lint/lint.h"

namespace cpr::lint {

/// Parsed form of tools/lint/allocating.txt. `always` names calls that
/// heap-allocate unconditionally (malloc, make_unique, to_string, ...);
/// `growth` names container-growth calls (push_back, insert, resize, ...)
/// that are exempt when the same receiver was `reserve()`d earlier in the
/// same function body. Grammar: one or more identifiers per line, a
/// `grow:` line prefix marks growth entries, '#' comments, blanks ignored.
struct AllocManifest {
  std::vector<std::string> always;
  std::vector<std::string> growth;
};

/// The compiled-in default manifest, used when no allocating.txt is given;
/// mirrors the file shipped in tools/lint/.
[[nodiscard]] const AllocManifest& builtinAllocManifest();

/// Parses manifest text. On failure returns false and describes the
/// problem in `error`.
[[nodiscard]] bool parseAllocManifest(std::string_view text,
                                      AllocManifest& out, std::string& error);

/// Reads and parses a manifest file; false on I/O or parse failure.
[[nodiscard]] bool loadAllocManifest(const std::string& path,
                                     AllocManifest& out, std::string& error);

/// Aggregate numbers the pass exposes for the lint report
/// (`lint.callgraph.edges`).
struct HotPathStats {
  long callGraphEdges = 0;  ///< unique resolved (caller, callee) pairs
};

/// Runs the four hot-path rules over the whole file set (the same borrowed
/// token/IR views the concurrency pass uses). Annotations and function
/// definitions are collected globally first, the call graph is built, then
/// every hot closure and CPR_NOALLOC body is checked. Diagnostics come
/// back sorted by file, line, then rule.
[[nodiscard]] std::vector<Diagnostic> checkHotPaths(
    const std::vector<ConcFile>& files, const BlockingManifest& blocking,
    const AllocManifest& allocating, HotPathStats* stats = nullptr);

}  // namespace cpr::lint
