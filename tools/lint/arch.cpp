#include "lint/arch.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace cpr::lint {

namespace {

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Module of a src file: the path segment after "src/" ("" when the file is
/// not under src/ or sits directly in it).
std::string moduleOf(std::string_view relPath) {
  if (!startsWith(relPath, "src/")) return {};
  const std::string_view rest = relPath.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(rest.substr(0, slash));
}

/// The include graph restricted to files under src/, with the edge lines
/// needed for diagnostics. Node ids index `files`.
struct Graph {
  struct Edge {
    std::size_t to;
    int line;
    std::string spelling;  ///< the include path as written
  };
  std::vector<std::vector<Edge>> adj;
  std::map<std::string, std::size_t> byPath;  ///< "src/..." -> node
};

Graph buildGraph(const std::vector<ArchFile>& files) {
  Graph g;
  g.adj.resize(files.size());
  for (std::size_t i = 0; i < files.size(); ++i)
    if (startsWith(files[i].relPath, "src/")) g.byPath[files[i].relPath] = i;
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const IncludeDecl& inc : files[i].includes) {
      const auto it = g.byPath.find("src/" + inc.path);
      if (it == g.byPath.end()) continue;  // system / non-src include
      g.adj[i].push_back(Graph::Edge{it->second, inc.line, inc.path});
    }
  }
  return g;
}

std::string levelName(int level) {
  if (level == LayerManifest::kEverywhere) return "everywhere";
  return "level " + std::to_string(level);
}

/// Cycle detection: iterative DFS with a recursion stack; each distinct
/// cycle is reported once, anchored at its lexicographically-smallest file.
void findCycles(const std::vector<ArchFile>& files, const Graph& g,
                std::vector<Diagnostic>& out) {
  enum class Color { White, Gray, Black };
  std::vector<Color> color(files.size(), Color::White);
  std::vector<std::size_t> stack;
  std::set<std::string> reported;

  // Depth-first over explicit frames so deep include chains cannot overflow
  // the call stack.
  struct Frame {
    std::size_t node;
    std::size_t nextEdge = 0;
  };
  for (std::size_t root = 0; root < files.size(); ++root) {
    if (color[root] != Color::White) continue;
    std::vector<Frame> frames{{root, 0}};
    color[root] = Color::Gray;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.nextEdge < g.adj[f.node].size()) {
        const Graph::Edge& e = g.adj[f.node][f.nextEdge++];
        if (color[e.to] == Color::White) {
          color[e.to] = Color::Gray;
          stack.push_back(e.to);
          frames.push_back(Frame{e.to, 0});
        } else if (color[e.to] == Color::Gray) {
          // Back edge: the cycle is the stack suffix from e.to onward.
          const auto at =
              std::find(stack.begin(), stack.end(), e.to) - stack.begin();
          std::vector<std::size_t> cycle(stack.begin() + at, stack.end());
          // Rotate so the smallest path leads; dedupe on the rotated chain.
          const auto smallest = std::min_element(
              cycle.begin(), cycle.end(), [&](std::size_t a, std::size_t b) {
                return files[a].relPath < files[b].relPath;
              });
          std::rotate(cycle.begin(), smallest, cycle.end());
          std::string chain;
          for (const std::size_t n : cycle) chain += files[n].relPath + " -> ";
          chain += files[cycle.front()].relPath;
          if (reported.insert(chain).second) {
            // Anchor at the lead file's edge into the cycle.
            int line = 1;
            const std::size_t next = cycle[1 % cycle.size()];
            for (const Graph::Edge& le : g.adj[cycle.front()])
              if (le.to == next) line = le.line;
            out.push_back(Diagnostic{
                "LAYER-CYCLE", files[cycle.front()].relPath, line,
                "include cycle: " + chain +
                    "; break the cycle with a forward declaration or by "
                    "moving the shared type down a layer"});
          }
        }
      } else {
        color[f.node] = Color::Black;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

}  // namespace

int LayerManifest::levelOf(std::string_view module) const {
  for (const std::string& m : everywhere)
    if (m == module) return kEverywhere;
  for (std::size_t l = 0; l < levels.size(); ++l)
    for (const std::string& m : levels[l])
      if (m == module) return static_cast<int>(l);
  return kUnknown;
}

bool parseLayerManifest(std::string_view text, LayerManifest& out,
                        std::string& error) {
  out = LayerManifest{};
  std::set<std::string> seen;
  std::istringstream is{std::string(text)};
  std::string line;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string word;
    std::vector<std::string>* dest = nullptr;
    while (words >> word) {
      if (!dest) {
        if (word == "forbid:") {
          LayerManifest::Forbid f;
          std::string extra;
          if (!(words >> f.module >> f.include) || (words >> extra)) {
            error = "layers.txt:" + std::to_string(lineNo) +
                    ": 'forbid:' wants exactly '<module> <include-path>'";
            return false;
          }
          out.forbids.push_back(std::move(f));
          break;
        }
        if (word == "everywhere:") {
          if (!out.everywhere.empty()) {
            error = "layers.txt:" + std::to_string(lineNo) +
                    ": duplicate 'everywhere:' line";
            return false;
          }
          dest = &out.everywhere;
          continue;
        }
        out.levels.emplace_back();
        dest = &out.levels.back();
      }
      if (!seen.insert(word).second) {
        error = "layers.txt:" + std::to_string(lineNo) +
                ": module '" + word + "' named twice";
        return false;
      }
      dest->push_back(word);
    }
  }
  if (out.levels.empty()) {
    error = "layers.txt names no layers";
    return false;
  }
  for (const LayerManifest::Forbid& f : out.forbids) {
    if (out.levelOf(f.module) == LayerManifest::kUnknown) {
      error = "layers.txt: 'forbid: " + f.module + " " + f.include +
              "' names a module no layer line declares";
      return false;
    }
  }
  return true;
}

bool loadLayerManifest(const std::string& path, LayerManifest& out,
                       std::string& error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    error = "cannot read layer manifest: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parseLayerManifest(buf.str(), out, error);
}

std::vector<Diagnostic> checkArchitecture(const std::vector<ArchFile>& files,
                                          const LayerManifest& manifest) {
  std::vector<Diagnostic> out;
  const Graph g = buildGraph(files);

  // LAYER-VIOLATION: per-module placement, then per-edge direction.
  std::set<std::string> flaggedUnknown;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string& rel = files[i].relPath;
    const std::string mod = moduleOf(rel);
    if (mod.empty() && startsWith(rel, "src/")) continue;  // src/ top level
    if (!startsWith(rel, "src/")) continue;
    const int level = manifest.levelOf(mod);
    if (level == LayerManifest::kUnknown) {
      if (flaggedUnknown.insert(mod).second) {
        out.push_back(Diagnostic{
            "LAYER-VIOLATION", rel, 1,
            "module 'src/" + mod +
                "' is not named in the architecture manifest "
                "(tools/lint/layers.txt); add it to a layer line"});
      }
      continue;
    }
    for (const Graph::Edge& e : g.adj[i]) {
      const std::string toMod = moduleOf(files[e.to].relPath);
      if (toMod == mod) continue;  // intra-module
      const int toLevel = manifest.levelOf(toMod);
      if (toLevel == LayerManifest::kEverywhere) continue;
      const std::string chain =
          "; chain: " + rel + " -> " + files[e.to].relPath;
      if (level == LayerManifest::kEverywhere) {
        out.push_back(Diagnostic{
            "LAYER-VIOLATION", rel, e.line,
            "module 'src/" + mod +
                "' is importable everywhere and must itself depend only on "
                "everywhere modules, but includes \"" +
                e.spelling + "\" from layered module 'src/" + toMod + "'" +
                chain});
        continue;
      }
      if (toLevel == LayerManifest::kUnknown) continue;  // flagged above
      if (toLevel > level) {
        out.push_back(Diagnostic{
            "LAYER-VIOLATION", rel, e.line,
            "include of \"" + e.spelling + "\" pulls 'src/" + toMod + "' (" +
                levelName(toLevel) + ") into 'src/" + mod + "' (" +
                levelName(level) +
                "); layers may only include sideways or down" + chain});
      }
    }
  }

  // LAYER-FORBIDDEN: `forbid:` manifest lines. Direct includes are reported
  // at the offending line; otherwise a breadth-first walk of the src include
  // graph catches the header arriving through any chain of intermediaries
  // (the failure mode that re-opens an interface seam unnoticed).
  for (const LayerManifest::Forbid& f : manifest.forbids) {
    const std::string targetRel = "src/" + f.include;
    const auto targetIt = g.byPath.find(targetRel);
    for (std::size_t i = 0; i < files.size(); ++i) {
      const std::string& rel = files[i].relPath;
      if (moduleOf(rel) != f.module || rel == targetRel) continue;
      bool direct = false;
      for (const IncludeDecl& inc : files[i].includes) {
        if (inc.path != f.include) continue;
        direct = true;
        out.push_back(Diagnostic{
            "LAYER-FORBIDDEN", rel, inc.line,
            "include of \"" + f.include + "\" is forbidden for module 'src/" +
                f.module +
                "' by tools/lint/layers.txt; depend on the interface seam "
                "instead of the concrete header"});
      }
      if (direct || targetIt == g.byPath.end()) continue;
      const std::size_t target = targetIt->second;
      constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
      std::vector<std::size_t> parent(files.size(), kUnvisited);
      std::vector<std::size_t> queue{i};
      parent[i] = i;
      bool reached = false;
      for (std::size_t qi = 0; qi < queue.size() && !reached; ++qi) {
        for (const Graph::Edge& e : g.adj[queue[qi]]) {
          if (parent[e.to] != kUnvisited) continue;
          parent[e.to] = queue[qi];
          if (e.to == target) {
            reached = true;
            break;
          }
          queue.push_back(e.to);
        }
      }
      if (!reached) continue;
      std::vector<std::size_t> path;
      for (std::size_t n = target; n != i; n = parent[n]) path.push_back(n);
      path.push_back(i);
      std::reverse(path.begin(), path.end());
      int line = 1;
      for (const Graph::Edge& e : g.adj[i])
        if (e.to == path[1]) line = e.line;
      std::string chain;
      for (const std::size_t n : path) {
        if (!chain.empty()) chain += " -> ";
        chain += files[n].relPath;
      }
      out.push_back(Diagnostic{
          "LAYER-FORBIDDEN", rel, line,
          "transitively pulls \"" + f.include + "\", forbidden for module "
              "'src/" + f.module +
              "' by tools/lint/layers.txt; chain: " + chain});
    }
  }

  findCycles(files, g, out);

  // DEAD-HEADER: src headers nothing includes. Every scanned file counts as
  // a potential includer, so tools/tests/bench keep src headers alive.
  std::set<std::size_t> included;
  for (const std::vector<Graph::Edge>& edges : g.adj)
    for (const Graph::Edge& e : edges) included.insert(e.to);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string& rel = files[i].relPath;
    if (!startsWith(rel, "src/")) continue;
    if (!endsWith(rel, ".h") && !endsWith(rel, ".hpp")) continue;
    if (included.count(i)) continue;
    out.push_back(Diagnostic{
        "DEAD-HEADER", rel, 1,
        "header is included by no scanned file; delete it or include it "
        "from the code that is meant to use it"});
  }

  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return out;
}

}  // namespace cpr::lint
