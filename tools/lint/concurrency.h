/// \file concurrency.h
/// Concurrency analysis for cpr_lint: the whole-tree pass that turns the
/// annotation vocabulary of src/support/thread_annotations.h plus the
/// statement-level lock regions of lint/ir.h into four rules:
///
///   GUARDED-BY          a field annotated CPR_GUARDED_BY(mu) is read or
///                       written outside a region holding `mu` (and outside
///                       a function annotated CPR_REQUIRES(mu))
///   LOCK-BLOCKING-CALL  a call from the blocking manifest
///                       (tools/lint/blocking.txt; builtin defaults cover
///                       socket I/O, sleeps, join/drain) happens while a
///                       lock region is open — unless every held mutex is
///                       annotated CPR_MAY_BLOCK (a lock that exists to
///                       serialize I/O, like a per-connection write lock)
///   LOCK-ORDER          the whole-tree lock acquisition graph (nested
///                       regions plus calls into CPR_EXCLUDES/CPR_ACQUIRE
///                       functions while holding a lock) contains a cycle;
///                       a self-loop means calling a function that acquires
///                       a mutex the caller already holds
///   THREAD-LIFECYCLE    a local std::thread that can reach end of scope
///                       neither joined, detached, nor moved away; a bare
///                       std::thread temporary; or a thread-owning field
///                       without a CPR_THREAD_REAPER annotation
///
/// Like the architecture pass, LOCK-ORDER and LOCK-BLOCKING-CALL are NOT
/// suppressible with per-line allow directives: a deadlock-order exception
/// is an annotation change (CPR_MAY_BLOCK on the serializing mutex), made
/// visible at the mutex declaration, never a per-line pragma. GUARDED-BY
/// and THREAD-LIFECYCLE accept allows like the per-file rules.
///
/// Mutex identity across the tree is resolved structurally: a bare name in
/// a member function binds to the enclosing class's mutex field; a
/// `x.y` / `x->y` spelling binds to the unique class declaring a mutex
/// field `y`. That keeps one graph node per mutex *field* no matter which
/// object expression a call site spells.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/ir.h"
#include "lint/lint.h"

namespace cpr::lint {

/// Parsed form of tools/lint/blocking.txt: identifiers that name calls
/// which can block the calling thread (syscalls and project wrappers).
/// Grammar: one or more identifiers per line, '#' comments, blanks ignored.
struct BlockingManifest {
  std::vector<std::string> idents;
};

/// The compiled-in default manifest, used when no blocking.txt is given:
/// socket I/O (send/recv/accept/connect/poll/select), sleeps
/// (sleep/usleep/nanosleep/sleep_for/sleep_until), thread join, and the
/// project's own blocking seams (drain, parallelFor, sendToConn,
/// sendLocked, pop).
[[nodiscard]] const BlockingManifest& builtinBlockingManifest();

/// Parses manifest text. On failure returns false and describes the
/// problem in `error`.
[[nodiscard]] bool parseBlockingManifest(std::string_view text,
                                         BlockingManifest& out,
                                         std::string& error);

/// Reads and parses a manifest file; false on I/O or parse failure.
[[nodiscard]] bool loadBlockingManifest(const std::string& path,
                                        BlockingManifest& out,
                                        std::string& error);

/// One scanned file as the concurrency pass sees it: the token stream and
/// the declaration IR built from it (both borrowed, not owned).
struct ConcFile {
  std::string relPath;  ///< repo-relative, forward slashes
  const std::vector<Token>* toks = nullptr;
  const FileIr* ir = nullptr;
};

/// Runs the four concurrency rules over the whole file set. Annotations
/// are collected globally first (a header's CPR_REQUIRES applies to the
/// out-of-line definition in its .cpp), then every function body is
/// checked and the lock graph is searched for cycles. Diagnostics come
/// back sorted by file, line, then rule.
[[nodiscard]] std::vector<Diagnostic> checkConcurrency(
    const std::vector<ConcFile>& files, const BlockingManifest& blocking);

}  // namespace cpr::lint
