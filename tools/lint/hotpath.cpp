#include "lint/hotpath.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace cpr::lint {

namespace {

bool isPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::Punct && t.text == text;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Last `::`-separated segment of a (possibly qualified) name.
std::string_view lastSegment(std::string_view name) {
  const std::size_t pos = name.rfind("::");
  return pos == std::string_view::npos ? name : name.substr(pos + 2);
}

/// Innermost class declaration whose body contains token index `i`.
const EntityDecl* enclosingClass(const FileIr& ir, std::size_t i) {
  const EntityDecl* best = nullptr;
  for (const EntityDecl& d : ir.decls) {
    if (d.kind != DeclKind::Class) continue;
    if (d.tokBegin < i && i < d.tokEnd &&
        (!best || d.tokBegin > best->tokBegin))
      best = &d;
  }
  return best;
}

/// Finds the function name a declarator-trailer annotation at token `m`
/// belongs to: walks back over cv/noexcept/override trailers, other CPR_*
/// macros (with their argument parens), and the parameter list, to the
/// identifier before the `(`. Returns toks.size() when no name is found.
std::size_t annotatedFunctionName(const std::vector<Token>& toks,
                                  std::size_t m) {
  std::size_t j = m;
  while (j > 0) {
    const Token& t = toks[j - 1];
    if (t.kind == TokKind::Identifier) {
      if (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
          t.text == "final" || startsWith(t.text, "CPR_")) {
        --j;
        continue;
      }
      return toks.size();  // e.g. macro after a field, not a function
    }
    if (isPunct(t, ")")) {
      int depth = 0;
      std::size_t k = j - 1;
      for (;; --k) {
        if (isPunct(toks[k], ")")) ++depth;
        if (isPunct(toks[k], "(") && --depth == 0) break;
        if (k == 0) return toks.size();
      }
      if (k == 0) return toks.size();
      const Token& before = toks[k - 1];
      if (before.kind != TokKind::Identifier) return toks.size();
      if (before.text == "noexcept" || startsWith(before.text, "CPR_")) {
        j = k - 1;
        continue;
      }
      return k - 1;
    }
    return toks.size();
  }
  return toks.size();
}

/// Class a function belongs to: the innermost class containing its body,
/// else the `Cls::` qualifier before the name (out-of-line definitions).
/// Returns "" for free functions.
std::string memberClassOf(const FileIr& ir, const std::vector<Token>& toks,
                          const EntityDecl& fn) {
  if (const EntityDecl* cls = enclosingClass(ir, fn.tokBegin))
    return std::string(lastSegment(cls->name));
  std::size_t j = fn.nameTok;
  if (j >= 1 && isPunct(toks[j - 1], "~")) --j;  // destructor
  if (j >= 3 && isPunct(toks[j - 1], ":") && isPunct(toks[j - 2], ":") &&
      toks[j - 3].kind == TokKind::Identifier)
    return toks[j - 3].text;
  return {};
}

/// Graph node identity: (class name or "" for free functions, name).
/// Overloads deliberately share a node — the pass checks the union of
/// their bodies, which can only over-approximate, never miss.
using FnKey = std::pair<std::string, std::string>;

std::string displayName(const FnKey& k) {
  return k.first.empty() ? k.second : k.first + "::" + k.second;
}

/// One function definition (a body in some file).
struct FnDef {
  const ConcFile* file = nullptr;
  const EntityDecl* decl = nullptr;
  std::string cls;
};

enum class HotAnn { Hot, NoAlloc, ColdOk };

struct Registry {
  std::map<FnKey, std::vector<FnDef>> defs;
  /// name -> classes (excluding "") with a definition of that name.
  std::map<std::string, std::set<std::string>> ownersOf;
  std::set<FnKey> hot, noalloc, coldok;
  /// Functions whose definition returns Status or Outcome<T> by value.
  std::set<FnKey> statusReturners;
  /// Resolved call edges and their first recorded site (for stats and the
  /// closure walk; sites make the chain diagnostics concrete).
  std::map<FnKey, std::set<FnKey>> adj;
};

/// Keywords that look like calls at the token level.
bool isCallKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",     "while",    "switch",        "catch",
      "return",   "sizeof",  "alignof",  "alignas",       "decltype",
      "noexcept", "new",     "delete",   "throw",         "static_assert",
      "assert",   "defined", "operator", "co_await",      "co_return",
      "typeid",   "requires"};
  return kKeywords.count(s) > 0 || startsWith(s, "CPR_");
}

/// Walks back from the name token of a call at `i` over its postfix chain
/// (`a.b[k]->c()` style receivers and `Ns::Cls::` qualifiers). Returns the
/// index of the chain's first token. `spelling` gets the normalized
/// receiver spelling — identifiers joined by their separators with
/// subscript groups dropped (`xs[i].push_back` normalizes to "xs") and a
/// leading `this->` stripped — or "" when the receiver contains a call or
/// other non-addressable element (then no reserve can match it).
std::size_t chainBegin(const std::vector<Token>& toks, std::size_t lo,
                       std::size_t i, std::string* spelling) {
  std::vector<std::string> parts;  // receiver elements, innermost first
  bool opaque = false;
  std::size_t j = i;  // first token of the element walked so far
  while (j > lo) {
    const Token& p = toks[j - 1];
    std::string sep;
    std::size_t e = 0;  // one past the previous element's last token
    if (isPunct(p, ".")) {
      sep = ".";
      e = j - 1;
    } else if (isPunct(p, ">") && j >= 2 && isPunct(toks[j - 2], "-")) {
      sep = "->";
      e = j - 2;
    } else if (isPunct(p, ":") && j >= 2 && isPunct(toks[j - 2], ":")) {
      sep = "::";
      e = j - 2;
    } else {
      break;
    }
    if (e == lo) break;
    // The previous element ends at e-1: an identifier, a subscript group
    // (dropped from the spelling), or a parenthesized group (opaque).
    std::size_t k = e - 1;
    while (k > lo && (isPunct(toks[k], "]") || isPunct(toks[k], ")"))) {
      const bool bracket = isPunct(toks[k], "]");
      const char* openCh = bracket ? "[" : "(";
      const char* closeCh = bracket ? "]" : ")";
      int depth = 0;
      for (;; --k) {
        if (isPunct(toks[k], closeCh)) ++depth;
        if (isPunct(toks[k], openCh) && --depth == 0) break;
        if (k == lo) return j;  // unbalanced; stop where we are
      }
      if (!bracket) opaque = true;  // call/paren result: not reservable
      if (k == lo) return j;
      --k;
    }
    if (toks[k].kind != TokKind::Identifier) break;
    parts.push_back(toks[k].text + sep);
    j = k;
  }
  if (spelling) {
    spelling->clear();
    if (!opaque) {
      if (!parts.empty() && parts.back() == "this->") parts.pop_back();
      for (auto it = parts.rbegin(); it != parts.rend(); ++it) *spelling += *it;
      // Drop the trailing separator that joined the receiver to the call.
      if (!spelling->empty()) {
        const std::size_t cut = spelling->find_last_not_of(":->.");
        spelling->resize(cut == std::string::npos ? 0 : cut + 1);
      }
    }
  }
  return j;
}

/// Resolves a call site to a defined function's key. `recvQualified` is a
/// `.`/`->` call on a non-this receiver; `scopeCls` is the qualifier of a
/// `Q::name(` spelling (may really be a namespace). Returns false when the
/// call does not resolve to exactly one intra-project definition.
bool resolveCall(const Registry& reg, const std::string& callerCls,
                 const std::string& name, bool recvQualified,
                 const std::string& scopeCls, FnKey* out) {
  if (!scopeCls.empty()) {
    if (reg.defs.count(FnKey{scopeCls, name})) {
      *out = FnKey{scopeCls, name};
      return true;
    }
    // `Q::` may be a namespace qualifier on a free function (obs::add).
    if (reg.defs.count(FnKey{"", name})) {
      *out = FnKey{"", name};
      return true;
    }
    return false;
  }
  if (recvQualified) {
    const auto it = reg.ownersOf.find(name);
    if (it == reg.ownersOf.end() || it->second.size() != 1) return false;
    *out = FnKey{*it->second.begin(), name};
    return true;
  }
  if (!callerCls.empty() && reg.defs.count(FnKey{callerCls, name})) {
    *out = FnKey{callerCls, name};
    return true;
  }
  if (reg.defs.count(FnKey{"", name})) {
    *out = FnKey{"", name};
    return true;
  }
  return false;
}

/// Phase 1 (per file): function definitions, hot annotations, and
/// Status/Outcome return types.
void collectFile(const ConcFile& f, Registry& reg) {
  const std::vector<Token>& toks = *f.toks;
  const FileIr& ir = *f.ir;

  for (const EntityDecl& fn : ir.decls) {
    if (fn.kind != DeclKind::Function) continue;
    if (fn.tokEnd >= toks.size()) continue;  // unbalanced body
    const std::string cls = memberClassOf(ir, toks, fn);
    const FnKey key{cls, fn.name};
    reg.defs[key].push_back(FnDef{&f, &fn, cls});
    if (!cls.empty()) reg.ownersOf[fn.name].insert(cls);

    // Status/Outcome returners: read the return type's last token before
    // the (possibly qualified) name. Constructors, destructors, and
    // operators have no return type to read.
    if (cls == fn.name || startsWith(fn.name, "~") || fn.name == "operator")
      continue;
    std::size_t j = fn.nameTok;
    while (j >= 3 && isPunct(toks[j - 1], ":") && isPunct(toks[j - 2], ":") &&
           toks[j - 3].kind == TokKind::Identifier)
      j -= 3;
    if (j == 0) continue;
    const Token& ret = toks[j - 1];
    if (ret.kind == TokKind::Identifier && ret.text == "Status") {
      reg.statusReturners.insert(key);
    } else if (isPunct(ret, ">")) {
      int depth = 0;
      std::size_t k = j - 1;
      for (;; --k) {
        if (isPunct(toks[k], ">")) ++depth;
        if (isPunct(toks[k], "<") && --depth == 0) break;
        if (k == 0) break;
      }
      if (k >= 1 && toks[k - 1].kind == TokKind::Identifier &&
          toks[k - 1].text == "Outcome")
        reg.statusReturners.insert(key);
    }
  }

  // Hot annotations anywhere in the file — in-class declarations, header
  // prototypes, or out-of-line definitions; all spellings attach to the
  // same (class, name) node.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    HotAnn ann;
    if (t.text == "CPR_HOT")
      ann = HotAnn::Hot;
    else if (t.text == "CPR_NOALLOC")
      ann = HotAnn::NoAlloc;
    else if (t.text == "CPR_COLD_OK")
      ann = HotAnn::ColdOk;
    else
      continue;
    const std::size_t nameTok = annotatedFunctionName(toks, i);
    if (nameTok >= toks.size()) continue;
    std::string cls;
    if (const EntityDecl* c = enclosingClass(ir, nameTok))
      cls = std::string(lastSegment(c->name));
    if (cls.empty() && nameTok >= 3 && isPunct(toks[nameTok - 1], ":") &&
        isPunct(toks[nameTok - 2], ":") &&
        toks[nameTok - 3].kind == TokKind::Identifier)
      cls = toks[nameTok - 3].text;
    const FnKey key{cls, toks[nameTok].text};
    switch (ann) {
      case HotAnn::Hot:
        reg.hot.insert(key);
        break;
      case HotAnn::NoAlloc:
        reg.noalloc.insert(key);
        break;
      case HotAnn::ColdOk:
        reg.coldok.insert(key);
        break;
    }
  }
}

/// Phase 2 (per file): resolve call edges out of every function body.
void collectEdges(const ConcFile& f, Registry& reg) {
  const std::vector<Token>& toks = *f.toks;
  const FileIr& ir = *f.ir;
  for (const EntityDecl& fn : ir.decls) {
    if (fn.kind != DeclKind::Function) continue;
    if (fn.tokEnd >= toks.size()) continue;
    const std::string cls = memberClassOf(ir, toks, fn);
    const FnKey caller{cls, fn.name};
    for (std::size_t i = fn.tokBegin + 1; i < fn.tokEnd; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier || isCallKeyword(t.text)) continue;
      if (i + 1 >= fn.tokEnd || !isPunct(toks[i + 1], "(")) continue;
      const bool dotAccess =
          (i >= 1 && isPunct(toks[i - 1], ".")) ||
          (i >= 2 && isPunct(toks[i - 1], ">") && isPunct(toks[i - 2], "-"));
      const bool thisAccess =
          i >= 3 && isPunct(toks[i - 1], ">") && isPunct(toks[i - 2], "-") &&
          toks[i - 3].text == "this";
      std::string scopeCls;
      if (i >= 3 && isPunct(toks[i - 1], ":") && isPunct(toks[i - 2], ":") &&
          toks[i - 3].kind == TokKind::Identifier)
        scopeCls = toks[i - 3].text;
      FnKey callee;
      if (!resolveCall(reg, cls, t.text, dotAccess && !thisAccess, scopeCls,
                       &callee))
        continue;
      if (callee == caller) continue;  // recursion adds nothing to check
      reg.adj[caller].insert(callee);
    }
  }
}

/// One body-level finding before chain decoration.
struct BodyFinding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string what;
};

/// Scans one function body for direct HOT-ALLOC / HOT-THROW / HOT-BLOCKING
/// evidence. `allocOnly` restricts to HOT-ALLOC (CPR_NOALLOC standalone
/// checks).
void scanBody(const FnDef& def, const std::set<std::string>& alwaysAlloc,
              const std::set<std::string>& growth,
              const std::set<std::string>& blocking, bool allocOnly,
              std::vector<BodyFinding>& out) {
  const std::vector<Token>& toks = *def.file->toks;
  const EntityDecl& fn = *def.decl;

  // try-block extents for throw containment.
  std::vector<std::pair<std::size_t, std::size_t>> tries;
  if (!allocOnly) {
    for (std::size_t i = fn.tokBegin + 1; i < fn.tokEnd; ++i) {
      if (toks[i].kind != TokKind::Identifier || toks[i].text != "try")
        continue;
      if (i + 1 < fn.tokEnd && isPunct(toks[i + 1], "{")) {
        const std::size_t close = matchBrace(toks, i + 1);
        if (close < toks.size()) tries.emplace_back(i + 1, close);
      }
    }
  }

  // Receivers reserved in this body: normalized spelling -> first token
  // index of the reserve call (growth after that index is exempt).
  std::map<std::string, std::size_t> reservedAt;
  for (std::size_t i = fn.tokBegin + 1; i < fn.tokEnd; ++i) {
    if (toks[i].kind != TokKind::Identifier || toks[i].text != "reserve")
      continue;
    if (i + 1 >= fn.tokEnd || !isPunct(toks[i + 1], "(")) continue;
    std::string recv;
    chainBegin(toks, fn.tokBegin, i, &recv);
    if (!recv.empty() && !reservedAt.count(recv)) reservedAt[recv] = i;
  }

  for (std::size_t i = fn.tokBegin + 1; i < fn.tokEnd; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;

    if (t.text == "new") {
      out.push_back(BodyFinding{"HOT-ALLOC", def.file->relPath, t.line,
                                "'new' heap-allocates"});
      continue;
    }
    if (!allocOnly && t.text == "throw") {
      bool contained = false;
      for (const auto& [open, close] : tries)
        if (open < i && i < close) contained = true;
      if (!contained)
        out.push_back(BodyFinding{
            "HOT-THROW", def.file->relPath, t.line,
            "'throw' escapes (no containing try/catch in this body)"});
      continue;
    }
    const bool calls = i + 1 < fn.tokEnd && isPunct(toks[i + 1], "(");
    if (!calls) continue;
    if (alwaysAlloc.count(t.text)) {
      out.push_back(BodyFinding{"HOT-ALLOC", def.file->relPath, t.line,
                                "allocating call '" + t.text + "'"});
      continue;
    }
    if (growth.count(t.text)) {
      std::string recv;
      chainBegin(toks, fn.tokBegin, i, &recv);
      const auto it = recv.empty() ? reservedAt.end() : reservedAt.find(recv);
      if (it == reservedAt.end() || it->second > i) {
        out.push_back(BodyFinding{
            "HOT-ALLOC", def.file->relPath, t.line,
            "container growth '" + t.text + "' on '" +
                (recv.empty() ? std::string("<expr>") : recv) +
                "' with no prior " +
                (recv.empty() ? std::string("reserve()") : recv + ".reserve()") +
                " in this body"});
      }
      continue;
    }
    if (!allocOnly && blocking.count(t.text)) {
      out.push_back(BodyFinding{"HOT-BLOCKING", def.file->relPath, t.line,
                                "blocking call '" + t.text + "'"});
    }
  }
}

/// STATUS-DISCARD over every function body of one file.
void checkStatusDiscard(const ConcFile& f, const Registry& reg,
                        std::vector<Diagnostic>& out) {
  const std::vector<Token>& toks = *f.toks;
  const FileIr& ir = *f.ir;
  for (const EntityDecl& fn : ir.decls) {
    if (fn.kind != DeclKind::Function) continue;
    if (fn.tokEnd >= toks.size()) continue;
    const std::string cls = memberClassOf(ir, toks, fn);
    for (std::size_t i = fn.tokBegin + 1; i < fn.tokEnd; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier || isCallKeyword(t.text)) continue;
      if (i + 1 >= fn.tokEnd || !isPunct(toks[i + 1], "(")) continue;

      // Resolve against the returner registry with the same precedence as
      // call edges; a name any class defines as non-Status stays silent.
      const bool dotAccess =
          (i >= 1 && isPunct(toks[i - 1], ".")) ||
          (i >= 2 && isPunct(toks[i - 1], ">") && isPunct(toks[i - 2], "-"));
      const bool thisAccess =
          i >= 3 && isPunct(toks[i - 1], ">") && isPunct(toks[i - 2], "-") &&
          toks[i - 3].text == "this";
      std::string scopeCls;
      if (i >= 3 && isPunct(toks[i - 1], ":") && isPunct(toks[i - 2], ":") &&
          toks[i - 3].kind == TokKind::Identifier)
        scopeCls = toks[i - 3].text;
      FnKey callee;
      if (!resolveCall(reg, cls, t.text, dotAccess && !thisAccess, scopeCls,
                       &callee))
        continue;
      if (!reg.statusReturners.count(callee)) continue;

      // Expression-statement test: the full postfix chain starts right
      // after a statement boundary and the call's `)` is followed by `;`.
      const std::size_t begin = chainBegin(toks, fn.tokBegin, i, nullptr);
      bool atStart = false;
      if (begin == fn.tokBegin + 1) {
        atStart = true;
      } else {
        const Token& prev = toks[begin - 1];
        if (isPunct(prev, ";") || isPunct(prev, "{") || isPunct(prev, "}")) {
          atStart = true;
        } else if (prev.kind == TokKind::Identifier &&
                   (prev.text == "else" || prev.text == "do")) {
          atStart = true;
        } else if (isPunct(prev, ")")) {
          // `if (...) call();` — but `(void)call()` is an explicit discard.
          const bool voidCast = begin >= 3 &&
                                toks[begin - 2].text == "void" &&
                                isPunct(toks[begin - 3], "(");
          atStart = !voidCast;
        }
      }
      if (!atStart) continue;
      int depth = 0;
      std::size_t close = i + 1;
      for (; close < fn.tokEnd; ++close) {
        if (isPunct(toks[close], "(")) ++depth;
        if (isPunct(toks[close], ")") && --depth == 0) break;
      }
      if (close + 1 >= toks.size() || !isPunct(toks[close + 1], ";")) continue;
      out.push_back(Diagnostic{
          "STATUS-DISCARD", f.relPath, t.line,
          "result of '" + displayName(callee) +
              "' (returns Status/Outcome) is discarded; check it, or make "
              "the discard explicit with (void) and a comment saying why "
              "failure is ignorable here"});
    }
  }
}

}  // namespace

const AllocManifest& builtinAllocManifest() {
  static const AllocManifest kBuiltin = {
      // always-allocating calls
      {"malloc", "calloc", "realloc", "strdup", "strndup", "aligned_alloc",
       "posix_memalign", "make_unique", "make_shared",
       "make_shared_for_overwrite", "to_string"},
      // container growth, exempt after <receiver>.reserve(...)
      {"push_back", "emplace_back", "push_front", "emplace_front", "insert",
       "emplace", "emplace_hint", "resize"},
  };
  return kBuiltin;
}

bool parseAllocManifest(std::string_view text, AllocManifest& out,
                        std::string& error) {
  out = AllocManifest{};
  std::set<std::string> seen;
  std::istringstream is{std::string(text)};
  std::string line;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string word;
    bool grow = false;
    bool first = true;
    while (words >> word) {
      if (first && word == "grow:") {
        grow = true;
        first = false;
        continue;
      }
      first = false;
      for (const char c : word) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok) {
          error = "allocating.txt:" + std::to_string(lineNo) + ": '" + word +
                  "' is not an identifier (a growth line starts `grow: `)";
          return false;
        }
      }
      if (!seen.insert(word).second) {
        error = "allocating.txt:" + std::to_string(lineNo) + ": '" + word +
                "' named twice";
        return false;
      }
      (grow ? out.growth : out.always).push_back(word);
    }
  }
  if (out.always.empty() && out.growth.empty()) {
    error = "allocating.txt names no identifiers";
    return false;
  }
  return true;
}

bool loadAllocManifest(const std::string& path, AllocManifest& out,
                       std::string& error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    error = "cannot read allocation manifest: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parseAllocManifest(buf.str(), out, error);
}

std::vector<Diagnostic> checkHotPaths(const std::vector<ConcFile>& files,
                                      const BlockingManifest& blocking,
                                      const AllocManifest& allocating,
                                      HotPathStats* stats) {
  Registry reg;
  for (const ConcFile& f : files) collectFile(f, reg);
  for (const ConcFile& f : files) collectEdges(f, reg);
  if (stats) {
    long edges = 0;
    for (const auto& [from, tos] : reg.adj)
      edges += static_cast<long>(tos.size());
    stats->callGraphEdges = edges;
  }

  const std::set<std::string> alwaysAlloc(allocating.always.begin(),
                                          allocating.always.end());
  const std::set<std::string> growth(allocating.growth.begin(),
                                     allocating.growth.end());
  const std::set<std::string> blockingSet(blocking.idents.begin(),
                                          blocking.idents.end());

  // Hot closure: BFS from every CPR_HOT root (sorted, so the chain a
  // shared callee is reported under is deterministic). CPR_COLD_OK nodes
  // are excluded entirely; CPR_NOALLOC nodes stop the descent — they are
  // checked standalone below.
  std::map<FnKey, FnKey> parent;
  std::set<FnKey> closure;
  for (const FnKey& root : reg.hot) {
    if (reg.coldok.count(root) || closure.count(root)) continue;
    closure.insert(root);
    parent[root] = root;
    std::deque<FnKey> q{root};
    while (!q.empty()) {
      const FnKey u = q.front();
      q.pop_front();
      const auto it = reg.adj.find(u);
      if (it == reg.adj.end()) continue;
      for (const FnKey& v : it->second) {
        if (closure.count(v) || reg.coldok.count(v) || reg.noalloc.count(v))
          continue;
        closure.insert(v);
        parent[v] = u;
        q.push_back(v);
      }
    }
  }

  std::vector<Diagnostic> out;
  auto chainFor = [&](const FnKey& node) {
    std::vector<std::string> names{displayName(node)};
    FnKey cur = node;
    while (parent.at(cur) != cur) {
      cur = parent.at(cur);
      names.push_back(displayName(cur));
    }
    std::string chain;
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
      if (!chain.empty()) chain += " -> ";
      chain += *it;
    }
    return chain;
  };

  for (const FnKey& node : closure) {
    const auto defsIt = reg.defs.find(node);
    if (defsIt == reg.defs.end()) continue;  // annotated but header-only decl
    std::vector<BodyFinding> findings;
    for (const FnDef& def : defsIt->second)
      scanBody(def, alwaysAlloc, growth, blockingSet, /*allocOnly=*/false,
               findings);
    const std::string chain = chainFor(node);
    for (const BodyFinding& bf : findings) {
      std::string hint;
      if (bf.rule == "HOT-ALLOC")
        hint = "; hoist the buffer into a scratch arena (reserve in bind, "
               "assign to reset) or annotate a sanctioned cold path "
               "CPR_COLD_OK";
      else if (bf.rule == "HOT-THROW")
        hint = "; contain it behind a trySolve-style try/catch boundary or "
               "annotate CPR_COLD_OK";
      else
        hint = "; pool drains, socket I/O, and sleeps belong in the driver "
               "around the kernel, not inside it";
      out.push_back(Diagnostic{bf.rule, bf.file, bf.line,
                               bf.what + " in hot code (call chain: " + chain +
                                   ")" + hint});
    }
  }

  // CPR_NOALLOC standalone: the body's own allocation contract, checked
  // even when no hot root reaches it.
  for (const FnKey& node : reg.noalloc) {
    if (reg.coldok.count(node)) continue;
    const auto defsIt = reg.defs.find(node);
    if (defsIt == reg.defs.end()) continue;
    std::vector<BodyFinding> findings;
    for (const FnDef& def : defsIt->second)
      scanBody(def, alwaysAlloc, growth, blockingSet, /*allocOnly=*/true,
               findings);
    for (const BodyFinding& bf : findings)
      out.push_back(Diagnostic{
          bf.rule, bf.file, bf.line,
          bf.what + " in CPR_NOALLOC function '" + displayName(node) +
              "'; reserve the receiver in this body, hoist into a scratch "
              "arena, or drop the annotation"});
  }

  for (const ConcFile& f : files) checkStatusDiscard(f, reg, out);

  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return out;
}

}  // namespace cpr::lint
