#include "lint/lexer.h"

#include <cctype>

namespace cpr::lint {

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool isIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when `ident` is one of the raw-string prefixes, so that an
/// immediately following quote starts `R"delim(...)delim"` syntax.
bool isRawPrefix(std::string_view ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

/// Parses a suppression directive (the `cpr-lint:` marker with an
/// allow-list) out of a comment body, if present. `line` is the line the
/// comment *starts* on; the directive anchors at the marker's own line, so
/// a multi-line block comment whose last line carries the marker behaves
/// exactly like a `//` directive in the same position (`//`-vs-`/* */`
/// parity).
bool parseAllow(std::string_view comment, int line, Allow& out) {
  const std::string_view key = "cpr-lint:";
  const std::size_t at = comment.find(key);
  if (at == std::string_view::npos) return false;
  for (const char c : comment.substr(0, at))
    if (c == '\n') ++line;
  std::size_t i = at + key.size();
  while (i < comment.size() && comment[i] == ' ') ++i;
  const std::string_view word = "allow(";
  if (comment.substr(i, word.size()) != word) return false;
  i += word.size();
  const std::size_t close = comment.find(')', i);
  if (close == std::string_view::npos) return false;
  out.line = line;
  out.rules.clear();
  std::string cur;
  for (std::size_t p = i; p <= close; ++p) {
    const char c = p < close ? comment[p] : ',';
    if (c == ',' ) {
      if (!cur.empty()) out.rules.push_back(cur);
      cur.clear();
    } else if (c != ' ') {
      cur.push_back(c);
    }
  }
  return !out.rules.empty();
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) step();
    return std::move(result_);
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void emit(TokKind kind, std::string text, int line) {
    result_.tokens.push_back(Token{kind, std::move(text), line});
  }

  /// Consumes a quoted literal after the opening quote, honouring escapes.
  std::string quoted(char quote) {
    std::string content;
    while (pos_ < src_.size()) {
      const char c = advance();
      if (c == '\\' && pos_ < src_.size()) {
        content.push_back(c);
        content.push_back(advance());
        continue;
      }
      if (c == quote) break;
      content.push_back(c);
    }
    return content;
  }

  void rawString(int line) {
    // R"delim( ... )delim"  — no escapes inside.
    std::string delim;
    while (pos_ < src_.size() && peek() != '(') delim.push_back(advance());
    if (pos_ < src_.size()) advance();  // '('
    const std::string closer = ")" + delim + "\"";
    std::string content;
    while (pos_ < src_.size()) {
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        for (std::size_t i = 0; i < closer.size(); ++i) advance();
        break;
      }
      content.push_back(advance());
    }
    emit(TokKind::String, std::move(content), line);
  }

  void lineComment(int line) {
    std::string body;
    while (pos_ < src_.size() && peek() != '\n') body.push_back(advance());
    Allow allow;
    if (parseAllow(body, line, allow)) result_.allows.push_back(allow);
  }

  void blockComment(int line) {
    std::string body;
    while (pos_ < src_.size()) {
      if (peek() == '*' && peek(1) == '/') {
        advance();
        advance();
        break;
      }
      body.push_back(advance());
    }
    Allow allow;
    if (parseAllow(body, line, allow)) result_.allows.push_back(allow);
  }

  void number(int line) {
    // pp-number: digits, letters, dots, digit separators, exponent signs.
    std::string text;
    while (pos_ < src_.size()) {
      const char c = peek();
      if (isIdentCont(c) || c == '.' || c == '\'') {
        text.push_back(advance());
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (peek() == '+' || peek() == '-'))
          text.push_back(advance());
      } else {
        break;
      }
    }
    emit(TokKind::Number, std::move(text), line);
  }

  void step() {
    const char c = peek();
    const int line = line_;
    if (c == '\\' && peek(1) == '\n') {  // line continuation
      advance();
      advance();
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      return;
    }
    if (c == '/' && peek(1) == '/') {
      advance();
      advance();
      lineComment(line);
      return;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      blockComment(line);
      return;
    }
    if (c == '"') {
      advance();
      emit(TokKind::String, quoted('"'), line);
      return;
    }
    if (c == '\'') {
      advance();
      emit(TokKind::CharLit, quoted('\''), line);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      number(line);
      return;
    }
    if (isIdentStart(c)) {
      std::string ident;
      while (pos_ < src_.size() && isIdentCont(peek()))
        ident.push_back(advance());
      if (peek() == '"' && isRawPrefix(ident)) {
        advance();  // opening quote
        rawString(line);
        return;
      }
      emit(TokKind::Identifier, std::move(ident), line);
      return;
    }
    emit(TokKind::Punct, std::string(1, advance()), line);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  LexResult result_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace cpr::lint
