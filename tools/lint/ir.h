/// \file ir.h
/// Declaration-level IR for cpr_lint (tools/lint), built by recursive
/// descent over the token stream of lexer.h.
///
/// The IR deliberately stops at the declaration level: rules that need more
/// than tokens (architecture-graph analysis over `#include` edges, loop-body
/// reachability for DETERMINISM) need to know *where declarations are* —
/// which file a header edge points at, which token range is a function body
/// — but never need expression semantics. Parsing that little keeps the
/// linter dependency-free and immune to the template/macro constructs that
/// break full parsers, while still being structurally honest: body extents
/// come from real brace matching, not regex heuristics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace cpr::lint {

/// One `#include` directive. `path` is the spelling between the delimiters
/// (tokens are re-joined for angled includes, so `<core/ids.h>` yields
/// "core/ids.h").
struct IncludeDecl {
  std::string path;
  bool angled = false;  ///< `<...>` form (false: quoted `"..."` form)
  int line = 0;
};

/// One `namespace N { ... }` (possibly qualified `a::b`; empty name for an
/// anonymous namespace). `bodyBegin/bodyEnd` are the lines of the braces.
struct NamespaceDecl {
  std::string name;
  int line = 0;
  int bodyBegin = 0;
  int bodyEnd = 0;
};

enum class DeclKind {
  Function,  ///< free or member function *definition* (has a body)
  Class,     ///< class/struct with a body
  Enum,      ///< enum / enum class with a body
};

/// A named declaration with a brace-matched body extent. `tokBegin/tokEnd`
/// index the `{` / matching `}` in the token stream handed to buildIr, so
/// rules can scan exactly the body's tokens. A class defined with a
/// qualified name (`struct Server::Connection { ... }`) keeps the
/// qualification in `name`.
struct EntityDecl {
  DeclKind kind = DeclKind::Function;
  std::string name;
  int line = 0;       ///< line of the name token
  int bodyBegin = 0;  ///< line of the opening brace
  int bodyEnd = 0;    ///< line of the matching closing brace
  std::size_t tokBegin = 0;
  std::size_t tokEnd = 0;
  /// Token index of the name (functions only; 0 otherwise) — lets passes
  /// inspect the qualifier tokens before an out-of-line definition's name.
  std::size_t nameTok = 0;
};

struct FileIr {
  std::vector<IncludeDecl> includes;
  std::vector<NamespaceDecl> namespaces;
  std::vector<EntityDecl> decls;
};

/// Index of the `}` matching the `{` at `open` (which must be a `{` Punct),
/// or `toks.size()` when the stream ends unbalanced.
[[nodiscard]] std::size_t matchBrace(const std::vector<Token>& toks,
                                     std::size_t open);

/// Builds the declaration-level IR for one translation unit's tokens.
[[nodiscard]] FileIr buildIr(const std::vector<Token>& toks);

/// One span of a function body during which a mutex is held. Produced by
/// `findLockRegions` for the concurrency rules (tools/lint/concurrency.h).
///
/// `mutexExpr` is the mutex argument as spelled at the acquisition site
/// ("mu_", "conn->writeMu", "this->mu_" — resolution to a declaring class
/// is the concurrency pass's job, not the IR's). `tokBegin/tokEnd` bound
/// the covered tokens half-open: a token at index i is inside the region
/// when tokBegin <= i < tokEnd.
struct LockRegion {
  std::string mutexExpr;
  int line = 0;           ///< line of the acquisition
  std::size_t tokBegin = 0;
  std::size_t tokEnd = 0;
  /// Acquisition group: regions sharing a group were acquired atomically
  /// by one `std::scoped_lock`, so no lock-order edge exists between them.
  int group = 0;
  bool raii = true;  ///< false for manual `mu.lock()` / `mu.unlock()` pairs
};

/// Statement-level lock-region tracking over one function body, whose
/// braces sit at token indices `bodyBegin` / `bodyEnd` (an EntityDecl's
/// tokBegin/tokEnd). Understands:
///
///   - RAII guards: `std::lock_guard` / `std::unique_lock` /
///     `std::scoped_lock` / `std::shared_lock` declarations — the region
///     runs from the declaration to the end of its enclosing scope;
///   - `std::defer_lock` (no region until a later `.lock()`), plus
///     `.unlock()` / `.lock()` on the guard variable closing and reopening
///     the region mid-scope;
///   - manual `expr.lock()` / `expr.unlock()` pairs on anything that is
///     not a known guard variable; an unmatched manual lock runs to the
///     end of the body.
///
/// Condition-variable waits are deliberately ignored: the tokens inside a
/// `cv.wait(lock, pred)` call execute holding the lock, which is exactly
/// what the returned spans say.
[[nodiscard]] std::vector<LockRegion> findLockRegions(
    const std::vector<Token>& toks, std::size_t bodyBegin,
    std::size_t bodyEnd);

}  // namespace cpr::lint
