#include "lint/concurrency.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace cpr::lint {

namespace {

bool isPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::Punct && t.text == text;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Last `::`-separated segment of a (possibly qualified) name.
std::string_view lastSegment(std::string_view name) {
  const std::size_t pos = name.rfind("::");
  return pos == std::string_view::npos ? name : name.substr(pos + 2);
}

bool isMutexType(std::string_view text) {
  return text == "mutex" || text == "shared_mutex" ||
         text == "recursive_mutex" || text == "timed_mutex" ||
         text == "recursive_timed_mutex" || text == "shared_timed_mutex";
}

/// Function-level annotation macros the pass associates with a function
/// name (CPR_NO_THREAD_SAFETY_ANALYSIS is clang-only and carries no lint
/// meaning; it is skipped while walking declarator trailers).
enum class FnAnnKind { Requires, Acquire, Release, Excludes };

struct FnAnnotation {
  std::string className;  ///< "" for free functions
  std::string name;
  FnAnnKind kind;
  std::vector<std::string> mutexes;  ///< resolved "Class::field" names
};

struct GuardedField {
  std::string guard;  ///< resolved "Class::field" mutex name
};

/// Everything the pass knows about one class (identity: the unqualified
/// class name — `struct Server::Connection` registers as "Connection").
struct ClassInfo {
  std::set<std::string> mutexFields;
  /// Annotated fields of this class: field name -> guard mutex (resolved).
  std::map<std::string, GuardedField> guarded;
};

struct LockEdge {
  std::string file;
  int line = 0;
};

/// Global analysis state shared by both phases.
struct Registry {
  std::map<std::string, ClassInfo> classes;
  /// mutex field name -> classes declaring a mutex field of that name.
  std::map<std::string, std::set<std::string>> mutexFieldOwners;
  /// Qualified mutexes annotated CPR_MAY_BLOCK.
  std::set<std::string> mayBlock;
  std::vector<FnAnnotation> fnAnnotations;
  /// Acquisition-order graph: (from, to) -> first site that created it.
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
};

/// Resolves a mutex expression as spelled at an acquisition/annotation
/// site into a tree-wide identity. `className` is the enclosing class of
/// the site ("" outside member context).
std::string resolveMutex(const Registry& reg, std::string_view expr,
                         const std::string& className) {
  std::string_view e = expr;
  if (startsWith(e, "this->")) e = e.substr(6);
  const std::size_t dot = e.find_last_of(".>");
  if (dot != std::string_view::npos) {
    const std::string_view field = e.substr(dot + 1);
    const auto it = reg.mutexFieldOwners.find(std::string(field));
    if (it != reg.mutexFieldOwners.end() && it->second.size() == 1)
      return *it->second.begin() + "::" + std::string(field);
    return std::string(field);
  }
  const std::string bare(e);
  if (!className.empty()) {
    const auto cls = reg.classes.find(className);
    if (cls != reg.classes.end() && cls->second.mutexFields.count(bare))
      return className + "::" + bare;
  }
  const auto it = reg.mutexFieldOwners.find(bare);
  if (it != reg.mutexFieldOwners.end() && it->second.size() == 1)
    return *it->second.begin() + "::" + bare;
  return bare;
}

/// Token ranges of declarations nested inside a class body, used to scan
/// only the class's *direct* tokens (fields, annotations) — a local
/// `std::mutex` in an inline member function is not a field.
std::vector<std::pair<std::size_t, std::size_t>> nestedRanges(
    const FileIr& ir, const EntityDecl& cls) {
  std::vector<std::pair<std::size_t, std::size_t>> holes;
  for (const EntityDecl& d : ir.decls) {
    if (&d == &cls) continue;
    if (d.tokBegin > cls.tokBegin && d.tokEnd < cls.tokEnd)
      holes.emplace_back(d.tokBegin, d.tokEnd);
  }
  std::sort(holes.begin(), holes.end());
  return holes;
}

/// Innermost class declaration whose body contains token index `i`.
const EntityDecl* enclosingClass(const FileIr& ir, std::size_t i) {
  const EntityDecl* best = nullptr;
  for (const EntityDecl& d : ir.decls) {
    if (d.kind != DeclKind::Class) continue;
    if (d.tokBegin < i && i < d.tokEnd &&
        (!best || d.tokBegin > best->tokBegin))
      best = &d;
  }
  return best;
}

/// Joins the argument tokens of an annotation macro whose `(` sits at
/// `open`; returns one expression per comma-separated argument and the
/// index of the closing `)` (toks.size() when unbalanced).
std::vector<std::string> macroArgs(const std::vector<Token>& toks,
                                   std::size_t open, std::size_t* closeOut) {
  std::vector<std::string> args;
  std::string cur;
  int depth = 0;
  std::size_t i = open;
  for (; i < toks.size(); ++i) {
    if (isPunct(toks[i], "(")) {
      if (++depth == 1) continue;
    }
    if (isPunct(toks[i], ")") && --depth == 0) break;
    if (depth == 1 && isPunct(toks[i], ",")) {
      if (!cur.empty()) args.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    if (depth >= 1) cur += toks[i].text;
  }
  if (!cur.empty()) args.push_back(std::move(cur));
  *closeOut = i;
  return args;
}

/// Finds the function name a declarator-trailer annotation at token `m`
/// belongs to: walks back over cv/noexcept/override trailers, other CPR_*
/// macros (with their argument parens), and the parameter list, to the
/// identifier before the `(`. Returns toks.size() when no name is found.
std::size_t annotatedFunctionName(const std::vector<Token>& toks,
                                  std::size_t m) {
  std::size_t j = m;
  while (j > 0) {
    const Token& t = toks[j - 1];
    if (t.kind == TokKind::Identifier) {
      if (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
          t.text == "final" || startsWith(t.text, "CPR_")) {
        --j;
        continue;
      }
      return toks.size();  // e.g. macro after a field, not a function
    }
    if (isPunct(t, ")")) {
      int depth = 0;
      std::size_t k = j - 1;
      for (;; --k) {
        if (isPunct(toks[k], ")")) ++depth;
        if (isPunct(toks[k], "(") && --depth == 0) break;
        if (k == 0) return toks.size();
      }
      if (k == 0) return toks.size();
      const Token& before = toks[k - 1];
      if (before.kind != TokKind::Identifier) return toks.size();
      if (before.text == "noexcept" || startsWith(before.text, "CPR_")) {
        j = k - 1;
        continue;
      }
      return k - 1;
    }
    return toks.size();
  }
  return toks.size();
}

/// Class a function belongs to: the innermost class containing its body,
/// else the `Cls::` qualifier before the name (out-of-line definitions).
/// Returns "" for free functions.
std::string memberClassOf(const FileIr& ir, const std::vector<Token>& toks,
                          const EntityDecl& fn) {
  if (const EntityDecl* cls = enclosingClass(ir, fn.tokBegin))
    return std::string(lastSegment(cls->name));
  std::size_t j = fn.nameTok;
  if (j >= 1 && isPunct(toks[j - 1], "~")) --j;  // destructor
  if (j >= 3 && isPunct(toks[j - 1], ":") && isPunct(toks[j - 2], ":") &&
      toks[j - 3].kind == TokKind::Identifier)
    return toks[j - 3].text;
  return {};
}

struct FnKey {
  std::string className;
  std::string name;
};

/// Annotations applying to a function, matched by (class, name); an
/// annotation recorded on the in-class declaration applies to the
/// out-of-line definition.
std::vector<const FnAnnotation*> annotationsFor(const Registry& reg,
                                                const FnKey& key) {
  std::vector<const FnAnnotation*> out;
  for (const FnAnnotation& a : reg.fnAnnotations)
    if (a.name == key.name && a.className == key.className) out.push_back(&a);
  return out;
}

/// Annotations matching a *call site*: `recvQualified` is true when the
/// call was spelled through `.`/`->` (receiver object unknown, so any
/// single class declaring the method matches); a bare call matches the
/// caller's own class first, then a unique free function.
std::vector<const FnAnnotation*> annotationsForCall(
    const Registry& reg, const std::string& callerClass,
    const std::string& name, bool recvQualified) {
  std::vector<const FnAnnotation*> matches;
  for (const FnAnnotation& a : reg.fnAnnotations)
    if (a.name == name) matches.push_back(&a);
  if (matches.empty()) return {};
  if (recvQualified) {
    std::set<std::string> owners;
    for (const FnAnnotation* a : matches) owners.insert(a->className);
    return owners.size() == 1 ? matches
                              : std::vector<const FnAnnotation*>{};
  }
  std::vector<const FnAnnotation*> own;
  for (const FnAnnotation* a : matches)
    if (a->className == callerClass) own.push_back(a);
  if (!own.empty()) return own;
  std::vector<const FnAnnotation*> free;
  for (const FnAnnotation* a : matches)
    if (a->className.empty()) free.push_back(a);
  return free;
}

/// Phase 1 (per file): class field registry, may-block marks, annotation
/// records, and the THREAD-LIFECYCLE field diagnostics.
void collectFile(const ConcFile& f, Registry& reg,
                 std::vector<Diagnostic>& out) {
  const std::vector<Token>& toks = *f.toks;
  const FileIr& ir = *f.ir;

  for (const EntityDecl& cls : ir.decls) {
    if (cls.kind != DeclKind::Class) continue;
    const std::string name(lastSegment(cls.name));
    ClassInfo& info = reg.classes[name];
    const auto holes = nestedRanges(ir, cls);
    std::size_t hole = 0;
    int parenDepth = 0;
    for (std::size_t i = cls.tokBegin + 1; i < cls.tokEnd; ++i) {
      while (hole < holes.size() && holes[hole].second < i) ++hole;
      if (hole < holes.size() && i >= holes[hole].first) {
        i = holes[hole].second;  // skip the nested body; loop ++ passes `}`
        ++hole;
        continue;
      }
      const Token& t = toks[i];
      if (isPunct(t, "(")) ++parenDepth;
      if (isPunct(t, ")")) --parenDepth;
      if (t.kind != TokKind::Identifier || parenDepth > 0) continue;

      // Mutex fields: `[mutable] std::mutex a[, b];` with optional
      // CPR_MAY_BLOCK marker anywhere in the declaration.
      if (isMutexType(t.text) && i > 0 && isPunct(toks[i - 1], ":")) {
        std::vector<std::string> fields;
        bool mayBlock = false;
        std::size_t j = i + 1;
        for (; j < cls.tokEnd && !isPunct(toks[j], ";"); ++j) {
          if (toks[j].kind != TokKind::Identifier) continue;
          if (toks[j].text == "CPR_MAY_BLOCK") {
            mayBlock = true;
            continue;
          }
          if (!startsWith(toks[j].text, "CPR_"))
            fields.push_back(toks[j].text);
        }
        for (const std::string& fieldName : fields) {
          info.mutexFields.insert(fieldName);
          reg.mutexFieldOwners[fieldName].insert(name);
          if (mayBlock) reg.mayBlock.insert(name + "::" + fieldName);
        }
        i = j;
        continue;
      }

      // Thread-owning fields: any declaration mentioning std::thread at
      // paren depth 0 must carry CPR_THREAD_REAPER.
      if (t.text == "thread" && i > 0 && isPunct(toks[i - 1], ":")) {
        std::size_t j = i + 1;
        bool reaper = false;
        std::string fieldName;
        for (; j < cls.tokEnd && !isPunct(toks[j], ";"); ++j) {
          if (toks[j].kind != TokKind::Identifier) continue;
          if (toks[j].text == "CPR_THREAD_REAPER")
            reaper = true;
          else if (!startsWith(toks[j].text, "CPR_") &&
                   toks[j].text != "thread")
            fieldName = toks[j].text;
        }
        if (!reaper) {
          out.push_back(Diagnostic{
              "THREAD-LIFECYCLE", f.relPath, t.line,
              "thread-owning field '" + name + "::" +
                  (fieldName.empty() ? std::string("<unnamed>") : fieldName) +
                  "' has no CPR_THREAD_REAPER annotation; annotate the "
                  "field and document who joins the threads parked on it"});
        }
        i = j;
        continue;
      }

      // Guarded fields: `Type field CPR_GUARDED_BY(mu) [= init];`.
      if (t.text == "CPR_GUARDED_BY" && i + 1 < cls.tokEnd &&
          isPunct(toks[i + 1], "(")) {
        std::size_t close = 0;
        const std::vector<std::string> args = macroArgs(toks, i + 1, &close);
        std::size_t nameTok = i - 1;
        if (isPunct(toks[nameTok], "]")) {  // array field: name before [..]
          int depth = 0;
          for (;; --nameTok) {
            if (isPunct(toks[nameTok], "]")) ++depth;
            if (isPunct(toks[nameTok], "[") && --depth == 0) break;
            if (nameTok == 0) break;
          }
          if (nameTok > 0) --nameTok;
        }
        if (!args.empty() && toks[nameTok].kind == TokKind::Identifier) {
          info.guarded[toks[nameTok].text] =
              GuardedField{std::string(args[0])};  // resolved in phase 2
        }
        i = close;
        continue;
      }
    }
  }

  // Function annotations (REQUIRES/ACQUIRE/RELEASE/EXCLUDES) anywhere in
  // the file: on in-class declarations, out-of-line definitions, or free
  // functions. Raw argument expressions are resolved in phase 2.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    FnAnnKind kind;
    if (t.text == "CPR_REQUIRES")
      kind = FnAnnKind::Requires;
    else if (t.text == "CPR_ACQUIRE")
      kind = FnAnnKind::Acquire;
    else if (t.text == "CPR_RELEASE")
      kind = FnAnnKind::Release;
    else if (t.text == "CPR_EXCLUDES")
      kind = FnAnnKind::Excludes;
    else
      continue;
    if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "(")) continue;
    std::size_t close = 0;
    std::vector<std::string> args = macroArgs(toks, i + 1, &close);
    const std::size_t nameTok = annotatedFunctionName(toks, i);
    if (nameTok >= toks.size() || args.empty()) {
      i = close;
      continue;
    }
    std::string className;
    if (const EntityDecl* cls = enclosingClass(ir, nameTok))
      className = std::string(lastSegment(cls->name));
    if (className.empty() && nameTok >= 3 && isPunct(toks[nameTok - 1], ":") &&
        isPunct(toks[nameTok - 2], ":") &&
        toks[nameTok - 3].kind == TokKind::Identifier)
      className = toks[nameTok - 3].text;
    FnAnnotation ann;
    ann.className = std::move(className);
    ann.name = toks[nameTok].text;
    ann.kind = kind;
    ann.mutexes = std::move(args);  // raw; resolved in phase 2
    reg.fnAnnotations.push_back(std::move(ann));
    i = close;
  }
}

/// Phase 2: resolve every recorded raw mutex expression against the
/// complete class registry.
void resolveRegistry(Registry& reg) {
  for (auto& [className, info] : reg.classes)
    for (auto& [field, guarded] : info.guarded)
      guarded.guard = resolveMutex(reg, guarded.guard, className);
  for (FnAnnotation& ann : reg.fnAnnotations)
    for (std::string& mu : ann.mutexes)
      mu = resolveMutex(reg, mu, ann.className);
}

/// One held span with its tree-wide mutex identity.
struct HeldRegion {
  std::string mutex;
  int line = 0;
  std::size_t tokBegin = 0;
  std::size_t tokEnd = 0;
  int group = 0;
};

/// Phase 3: per-function-body checks for one file.
void checkFile(const ConcFile& f, Registry& reg,
               const std::set<std::string>& blocking,
               std::vector<Diagnostic>& out) {
  const std::vector<Token>& toks = *f.toks;
  const FileIr& ir = *f.ir;

  for (const EntityDecl& fn : ir.decls) {
    if (fn.kind != DeclKind::Function) continue;
    if (fn.tokEnd >= toks.size()) continue;  // unbalanced body
    const std::string cls = memberClassOf(ir, toks, fn);
    const bool ctorOrDtor = !cls.empty() && fn.name == cls;

    std::vector<HeldRegion> held;
    int pseudoGroup = -1;
    for (const LockRegion& r : findLockRegions(toks, fn.tokBegin, fn.tokEnd))
      held.push_back(HeldRegion{resolveMutex(reg, r.mutexExpr, cls), r.line,
                                r.tokBegin, r.tokEnd, r.group});
    // REQUIRES/ACQUIRE/RELEASE give the whole body a held span: the caller
    // supplied the lock (or the function holds it for part of the body —
    // the conservative whole-body span never *adds* diagnostics).
    for (const FnAnnotation* a :
         annotationsFor(reg, FnKey{cls, fn.name})) {
      if (a->kind == FnAnnKind::Excludes) continue;
      for (const std::string& mu : a->mutexes)
        held.push_back(HeldRegion{mu, fn.bodyBegin, fn.tokBegin + 1,
                                  fn.tokEnd, pseudoGroup--});
    }

    auto heldAt = [&](std::size_t i) {
      std::vector<const HeldRegion*> open;
      for (const HeldRegion& r : held)
        if (r.tokBegin <= i && i < r.tokEnd) open.push_back(&r);
      return open;
    };

    // LOCK-ORDER: nested acquisitions within this body.
    for (const HeldRegion& b : held) {
      if (b.group < 0) continue;  // pseudo-regions never *acquire* here
      for (const HeldRegion& a : held) {
        if (a.group == b.group || a.mutex == b.mutex) continue;
        if (a.tokBegin < b.tokBegin && b.tokBegin < a.tokEnd)
          reg.edges.emplace(std::make_pair(a.mutex, b.mutex),
                            LockEdge{f.relPath, b.line});
      }
    }

    // Token walk: guarded-field accesses, blocking calls, annotated-call
    // lock-order edges, and local thread lifecycles.
    std::vector<std::string> localThreads;
    for (std::size_t i = fn.tokBegin + 1; i < fn.tokEnd; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Identifier) continue;
      const bool dotAccess =
          (i >= 1 && isPunct(toks[i - 1], ".")) ||
          (i >= 2 && isPunct(toks[i - 1], ">") && isPunct(toks[i - 2], "-"));
      const bool thisAccess =
          i >= 3 && isPunct(toks[i - 1], ">") && isPunct(toks[i - 2], "-") &&
          toks[i - 3].kind == TokKind::Identifier &&
          toks[i - 3].text == "this";
      const bool scopeQualified = i >= 1 && isPunct(toks[i - 1], ":");
      const bool calls = i + 1 < fn.tokEnd && isPunct(toks[i + 1], "(");

      // GUARDED-BY.
      if (!ctorOrDtor) {
        const ClassInfo* owner = nullptr;
        std::string ownerName;
        if ((!dotAccess || thisAccess) && !scopeQualified && !cls.empty()) {
          const auto it = reg.classes.find(cls);
          if (it != reg.classes.end() && it->second.guarded.count(t.text)) {
            owner = &it->second;
            ownerName = cls;
          }
        } else if (dotAccess && !thisAccess) {
          // Object-qualified: unique declaring class wins.
          const ClassInfo* only = nullptr;
          std::string onlyName;
          int n = 0;
          for (const auto& [cname, info] : reg.classes) {
            if (!info.guarded.count(t.text)) continue;
            ++n;
            only = &info;
            onlyName = cname;
          }
          if (n == 1) {
            owner = only;
            ownerName = onlyName;
          }
        }
        if (owner) {
          const std::string& guard = owner->guarded.at(t.text).guard;
          bool ok = false;
          for (const HeldRegion* r : heldAt(i))
            if (r->mutex == guard) ok = true;
          if (!ok) {
            out.push_back(Diagnostic{
                "GUARDED-BY", f.relPath, t.line,
                "field '" + ownerName + "::" + t.text + "' is guarded by '" +
                    guard +
                    "' but is touched without holding it; take the lock or "
                    "annotate the function CPR_REQUIRES(" +
                    std::string(lastSegment(guard)) + ")"});
          }
        }
      }

      if (!calls) {
        // Local thread lifecycle bookkeeping: uses of a tracked name.
        continue;
      }

      // LOCK-BLOCKING-CALL.
      if (blocking.count(t.text)) {
        const HeldRegion* offender = nullptr;
        for (const HeldRegion* r : heldAt(i)) {
          if (reg.mayBlock.count(r->mutex)) continue;
          if (!offender || r->tokBegin < offender->tokBegin) offender = r;
        }
        if (offender) {
          out.push_back(Diagnostic{
              "LOCK-BLOCKING-CALL", f.relPath, t.line,
              "blocking call '" + t.text + "' while holding '" +
                  offender->mutex + "' (locked at line " +
                  std::to_string(offender->line) +
                  "); move the call outside the critical section — a "
                  "stalled peer here stalls every thread behind this lock"});
        }
      }

      // Lock-order edges from calls into annotated functions.
      if (!scopeQualified) {
        const auto open = heldAt(i);
        if (!open.empty()) {
          for (const FnAnnotation* a :
               annotationsForCall(reg, cls, t.text, dotAccess)) {
            if (a->kind == FnAnnKind::Requires ||
                a->kind == FnAnnKind::Release)
              continue;
            for (const std::string& mu : a->mutexes)
              for (const HeldRegion* r : open)
                reg.edges.emplace(std::make_pair(r->mutex, mu),
                                  LockEdge{f.relPath, t.line});
          }
        }
      }
    }

    // THREAD-LIFECYCLE: local std::thread declarations and temporaries.
    for (std::size_t i = fn.tokBegin + 1; i < fn.tokEnd; ++i) {
      if (toks[i].kind != TokKind::Identifier || toks[i].text != "thread" ||
          i == 0 || !isPunct(toks[i - 1], ":"))
        continue;
      const std::size_t after = i + 1;
      if (after >= fn.tokEnd) break;
      if (toks[after].kind == TokKind::Identifier) {
        const std::string& var = toks[after].text;
        if (startsWith(var, "CPR_")) continue;
        bool handled = false;
        for (std::size_t j = after + 1; j + 1 < fn.tokEnd && !handled; ++j) {
          if (toks[j].kind != TokKind::Identifier) continue;
          if (toks[j].text == var) {
            // var.join() / var.detach() / var.swap(...)
            if (isPunct(toks[j + 1], ".") && j + 2 < fn.tokEnd &&
                (toks[j + 2].text == "join" || toks[j + 2].text == "detach" ||
                 toks[j + 2].text == "swap"))
              handled = true;
            continue;
          }
          // std::move(var) / std::swap(a, var)
          if ((toks[j].text == "move" || toks[j].text == "swap") &&
              isPunct(toks[j + 1], "(")) {
            for (std::size_t k = j + 2;
                 k < fn.tokEnd && !isPunct(toks[k], ")"); ++k)
              if (toks[k].kind == TokKind::Identifier && toks[k].text == var)
                handled = true;
          }
        }
        if (!handled) {
          out.push_back(Diagnostic{
              "THREAD-LIFECYCLE", f.relPath, toks[after].line,
              "local std::thread '" + var +
                  "' can reach end of scope without join()/detach(); join "
                  "it, or move it onto a CPR_THREAD_REAPER field whose "
                  "owner joins it"});
        }
      } else if (isPunct(toks[after], "(") &&
                 (i < 4 || isPunct(toks[i - 4], ";") ||
                  isPunct(toks[i - 4], "{") || isPunct(toks[i - 4], "}"))) {
        // i-4 is the token before the `std` of `std::thread`: only a
        // statement-start position means the temporary is discarded.
        // `std::thread(...)` as a bare statement: joinable temporary dies
        // at the semicolon (std::terminate), or worse, was meant to be
        // kept. Arguments / member-init uses have `,`/`(`/`=` before.
        std::size_t close = after;
        int depth = 0;
        for (; close < fn.tokEnd; ++close) {
          if (isPunct(toks[close], "(")) ++depth;
          if (isPunct(toks[close], ")") && --depth == 0) break;
        }
        if (close + 1 < fn.tokEnd && isPunct(toks[close + 1], ";")) {
          out.push_back(Diagnostic{
              "THREAD-LIFECYCLE", f.relPath, toks[i].line,
              "temporary std::thread is destroyed at the end of the "
              "statement while joinable (std::terminate); name it and "
              "join it"});
        }
      }
    }
  }
}

/// Phase 4: cycle detection over the acquisition-order graph — iterative
/// DFS with a recursion stack, each distinct cycle reported once anchored
/// at its lexicographically-smallest mutex (mirrors LAYER-CYCLE).
void findLockCycles(const Registry& reg, std::vector<Diagnostic>& out) {
  std::vector<std::string> nodes;
  std::map<std::string, std::size_t> byName;
  auto nodeId = [&](const std::string& n) {
    const auto it = byName.find(n);
    if (it != byName.end()) return it->second;
    byName.emplace(n, nodes.size());
    nodes.push_back(n);
    return nodes.size() - 1;
  };
  std::vector<std::vector<std::size_t>> adj;
  for (const auto& [edge, site] : reg.edges) {
    const std::size_t from = nodeId(edge.first);
    const std::size_t to = nodeId(edge.second);
    if (adj.size() < nodes.size()) adj.resize(nodes.size());
    adj[from].push_back(to);
  }
  adj.resize(nodes.size());

  enum class Color { White, Gray, Black };
  std::vector<Color> color(nodes.size(), Color::White);
  std::vector<std::size_t> stack;
  std::set<std::string> reported;
  struct Frame {
    std::size_t node;
    std::size_t nextEdge = 0;
  };
  for (std::size_t root = 0; root < nodes.size(); ++root) {
    if (color[root] != Color::White) continue;
    std::vector<Frame> frames{{root, 0}};
    color[root] = Color::Gray;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.nextEdge < adj[fr.node].size()) {
        const std::size_t to = adj[fr.node][fr.nextEdge++];
        if (color[to] == Color::White) {
          color[to] = Color::Gray;
          stack.push_back(to);
          frames.push_back(Frame{to, 0});
        } else if (color[to] == Color::Gray) {
          const auto at =
              std::find(stack.begin(), stack.end(), to) - stack.begin();
          std::vector<std::size_t> cycle(
              stack.begin() + at, stack.end());
          const auto smallest = std::min_element(
              cycle.begin(), cycle.end(), [&](std::size_t a, std::size_t b) {
                return nodes[a] < nodes[b];
              });
          std::rotate(cycle.begin(), smallest, cycle.end());
          std::string chain;
          for (const std::size_t n : cycle) chain += nodes[n] + " -> ";
          chain += nodes[cycle.front()];
          if (reported.insert(chain).second) {
            const std::string& lead = nodes[cycle.front()];
            const std::string& next = nodes[cycle[1 % cycle.size()]];
            const auto site = reg.edges.find(std::make_pair(lead, next));
            const std::string file =
                site != reg.edges.end() ? site->second.file : "";
            const int line = site != reg.edges.end() ? site->second.line : 1;
            const bool self = cycle.size() == 1;
            out.push_back(Diagnostic{
                "LOCK-ORDER", file, line,
                self ? "'" + lead +
                           "' is re-acquired (via an annotated call) while "
                           "already held — a non-recursive mutex "
                           "self-deadlocks here"
                     : "lock-order cycle: " + chain +
                           "; two threads taking these locks in opposite "
                           "orders deadlock — pick one global order and "
                           "restructure the inner acquisition"});
          }
        }
      } else {
        color[fr.node] = Color::Black;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

}  // namespace

const BlockingManifest& builtinBlockingManifest() {
  static const BlockingManifest kBuiltin = {{
      // socket / fd I/O
      "send", "sendto", "sendmsg", "recv", "recvfrom", "recvmsg", "accept",
      "connect", "poll", "select", "epoll_wait",
      // sleeps
      "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until",
      // joins and the project's own blocking seams
      "join", "drain", "parallelFor", "sendToConn", "sendLocked", "pop",
  }};
  return kBuiltin;
}

bool parseBlockingManifest(std::string_view text, BlockingManifest& out,
                           std::string& error) {
  out = BlockingManifest{};
  std::set<std::string> seen;
  std::istringstream is{std::string(text)};
  std::string line;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string word;
    while (words >> word) {
      for (const char c : word) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok) {
          error = "blocking.txt:" + std::to_string(lineNo) + ": '" + word +
                  "' is not an identifier";
          return false;
        }
      }
      if (!seen.insert(word).second) {
        error = "blocking.txt:" + std::to_string(lineNo) + ": '" + word +
                "' named twice";
        return false;
      }
      out.idents.push_back(word);
    }
  }
  if (out.idents.empty()) {
    error = "blocking.txt names no identifiers";
    return false;
  }
  return true;
}

bool loadBlockingManifest(const std::string& path, BlockingManifest& out,
                          std::string& error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    error = "cannot read blocking manifest: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parseBlockingManifest(buf.str(), out, error);
}

std::vector<Diagnostic> checkConcurrency(const std::vector<ConcFile>& files,
                                         const BlockingManifest& blocking) {
  Registry reg;
  std::vector<Diagnostic> out;
  for (const ConcFile& f : files) collectFile(f, reg, out);
  resolveRegistry(reg);
  const std::set<std::string> blockingSet(blocking.idents.begin(),
                                          blocking.idents.end());
  for (const ConcFile& f : files) checkFile(f, reg, blockingSet, out);
  findLockCycles(reg, out);
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return out;
}

}  // namespace cpr::lint
