/// \file lexer.h
/// Token-level C++ lexer for cpr_lint (tools/lint).
///
/// Deliberately not a parser: the project invariants the linter enforces
/// (metric-name literals, clock polling, throw statements, banned
/// identifiers, header directives) are all visible at the token level, and a
/// token lexer is immune to the macro/template constructs that break
/// regex-over-raw-text linters. The lexer's one hard job is to classify
/// comments and string/character literals correctly — including raw strings,
/// escapes, and line continuations — so rules never fire on commented-out
/// code or on words inside unrelated strings.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cpr::lint {

enum class TokKind {
  Identifier,  ///< identifiers and keywords (no keyword table needed)
  Number,      ///< pp-number: 123, 0x1f, 1e-12, 1'000'000
  String,      ///< string literal; `text` is the content between the quotes
  CharLit,     ///< character literal; `text` is the content between quotes
  Punct,       ///< one punctuation character
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  ///< 1-based line of the token's first character
};

/// One suppression directive: a comment holding the `cpr-lint:` marker
/// followed by `allow(RULE-A, RULE-B)`. A directive applies to
/// diagnostics on its own line and on the line directly below,
/// so it can share the offending line or sit immediately above it. There is
/// deliberately no file-level (blanket) form.
struct Allow {
  int line = 0;
  std::vector<std::string> rules;
  bool used = false;  ///< set by the engine when it suppresses a diagnostic
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Allow> allows;
};

/// Lexes a whole translation unit. Never fails: unterminated literals and
/// comments are closed at end of input (the rules still see every token
/// produced before the breakage).
[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace cpr::lint
