#include "route/result.h"

namespace cpr::route {

std::uint64_t resultDigest(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFFU;
      h *= 1099511628211ULL;
    }
  };
  for (const NetResult& nr : r.nets) {
    mix(static_cast<std::uint64_t>(nr.routed) |
        (static_cast<std::uint64_t>(nr.clean) << 1));
    mix(static_cast<std::uint64_t>(nr.wirelength));
    mix(static_cast<std::uint64_t>(nr.vias));
  }
  return h;
}

}  // namespace cpr::route
