/// \file cpr.h
/// CPR — the Concurrent Pin access Router (paper Section 4).
///
/// Flow: concurrent pin access optimization on the M2 layer (LR by default,
/// exact ILP optionally) produces one conflict-free interval per pin; the
/// intervals enter the negotiation-congestion router as partial routes,
/// with other nets' pins and intervals treated as blockages; line-end
/// extension and DRC signoff follow.
#pragma once

#include "core/optimizer.h"
#include "db/design.h"
#include "route/negotiation_router.h"

namespace cpr::route {

struct CprOptions {
  CprOptions() {
    // Footnote 1: cap pin access intervals with an estimated M2 routing box
    // instead of the full net bounding box — fewer candidates, same quality.
    pinAccess.gen.maxExtent = 32;
    // Panels that stall early are repaired by greedy conflict removal anyway.
    pinAccess.solve.lr.stallLimit = 12;
  }

  core::OptimizerOptions pinAccess;  ///< Method::Lr (paper default) or Exact
  NegotiationOptions routing;
};

struct CprResult {
  core::PinAccessPlan plan;
  RoutingResult routing;
  double pinAccessSeconds = 0.0;
  /// Total runtime: pin access optimization + routing (the paper's "cpu"
  /// column includes both, Section 5.2).
  [[nodiscard]] double totalSeconds() const {
    return pinAccessSeconds + routing.seconds;
  }
};

[[nodiscard]] CprResult routeCpr(const db::Design& design,
                                 const CprOptions& opts = {});

}  // namespace cpr::route
