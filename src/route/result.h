/// \file result.h
/// Routing outcome structures shared by all three routers.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/interval.h"
#include "geom/types.h"
#include "obs/collector.h"
#include "obs/names.h"

namespace cpr::route {

using geom::Coord;
using geom::Index;

/// Outcome for one net.
struct NetResult {
  bool routed = false;  ///< all pins connected
  bool clean = false;   ///< routed and free of design-rule violations
  long wirelength = 0;  ///< grid edges of committed metal (M2+M3)
  int vias = 0;         ///< V1 + V2 vias
};

/// One straight metal segment of a routed net (unidirectional: M2 segments
/// run along a track, M3 segments along a column).
struct RouteSegment {
  bool m3 = false;      ///< false: M2 (horizontal), true: M3 (vertical)
  Coord lane = 0;       ///< track (M2) or column (M3)
  geom::Interval span;  ///< column range (M2) or track range (M3)
};

/// Full geometry of one routed net, for visualization, export, and external
/// rule checking. Filled only when a driver is asked to keep geometry.
struct NetGeometry {
  std::vector<RouteSegment> segments;
  /// (x, y, level) vias; level 1 = V1 (pin hookup), 2 = V2 (M2-M3).
  struct Via {
    Coord x = 0;
    Coord y = 0;
    std::uint8_t level = 2;
  };
  std::vector<Via> vias;
};

/// Whole-design routing outcome. The paper's Table 2 metrics (Rout., Via#,
/// WL) are computed from this by `eval::summarize`; nets that routed but
/// violate design rules count as unrouted ("we treat those nets introducing
/// violations as unrouted nets", Section 5.2).
struct RoutingResult {
  std::vector<NetResult> nets;
  /// Per-net committed geometry; empty unless the driver ran with
  /// `keepGeometry` (indexing matches `nets` when present).
  std::vector<NetGeometry> geometry;
  double seconds = 0.0;  ///< wall-clock routing time
  /// Run instrumentation: `route.*` / `drc.*` counters, stage timers, and
  /// the per-iteration `rrr.iter` negotiation series.
  obs::Collector stats;

  // Thin accessors over the canonical counters (kept for call sites that
  // predate the obs subsystem).
  /// Grid nodes occupied by more than one net after the independent routing
  /// stage — the paper's Fig. 7(b) metric.
  [[nodiscard]] long congestedGridsBeforeRrr() const {
    return stats.counter(obs::names::kRouteCongestedPreRrr);
  }
  /// Negotiation rip-up & reroute rounds used (routing passes for the
  /// sequential driver).
  [[nodiscard]] int rrrIterations() const {
    return static_cast<int>(stats.counter(obs::names::kRouteRrrIterations));
  }
  /// Total rule violations found at signoff.
  [[nodiscard]] long drcViolations() const {
    return stats.counter(obs::names::kDrcViolations);
  }
};

/// FNV-1a over every net's routed/clean/wirelength/via outcome: the cheap
/// determinism witness shared by the thread-sweep bench, the routing
/// service, and the chaos tests. Two results digest equal iff every net
/// reached the same outcome — geometry need not be kept.
[[nodiscard]] std::uint64_t resultDigest(const RoutingResult& r);

}  // namespace cpr::route
