/// \file negotiation_router.h
/// Negotiation-congestion routing (PathFinder [22] style, as in [21]).
///
/// Two-stage scheme (paper Section 5.2): an *independent routing stage*
/// routes every net ignoring sharing (the congested-grid count after this
/// stage is the Fig. 7(b) metric), then *rip-up & reroute* iterations add
/// history cost on congested grids and reroute the offending nets with a
/// growing present-sharing penalty until no grid is shared. Design rule
/// violations are mitigated by the forbidden via grid cost during search and
/// by dedicated DRC repair passes; nets still dirty at signoff are counted
/// unrouted.
///
/// With a `PinAccessPlan` this is the paper's CPR (intervals become partial
/// routes and other nets' intervals become blockages); with `plan == nullptr`
/// it is the "routing w/o pin access optimization" baseline [21].
///
/// Every net loop (independent stage, each RRR iteration, each DRC repair
/// pass) runs through a wave scheduler: nets whose influence boxes are
/// disjoint search concurrently against the immutable grid, then commit
/// serially in net-index order (see wave_scheduler.h and DESIGN.md §13).
/// The wave order is part of the algorithm, not of the execution: route
/// results are bit-identical for every `threads` value.
#pragma once

#include <algorithm>

#include "core/optimizer.h"
#include "db/design.h"
#include "route/drc.h"
#include "route/maze.h"
#include "route/result.h"
#include "support/deadline.h"

namespace cpr::route {

struct NegotiationOptions {
  Coord windowMargin = 12;
  int maxRrrIterations = 20;
  /// Stop rip-up & reroute early when the congested-grid count has not
  /// improved materially for this many iterations (0 = always run to the
  /// cap). See `RrrStallDetector` for what counts as material.
  int congestionStallIters = 4;
  int drcRepairPasses = 2;
  MazeCosts costs;               ///< base costs; `present` is driven per stage
  float presentFactor = 3.0F;    ///< present penalty = factor * iteration
  float historyIncrement = 1.0F;
  DrcRules drc;
  /// Worker threads for the wave-parallel net searches (0 = one per
  /// hardware thread, 1 = sequential). Pure throughput knob: the wave
  /// partition and commit order never depend on it, so route digests are
  /// identical for every value.
  int threads = 0;
  /// Fill RoutingResult::geometry with each routed net's segments and vias
  /// (visualization / export); costs memory on big designs, off by default.
  bool keepGeometry = false;
  /// Wall-clock budget (unset = none). Checked between waves of the
  /// independent routing stage, between rip-up & reroute iterations, and
  /// between DRC repair passes — signoff always runs, so an expired
  /// deadline still yields a complete, consistently reported result
  /// (`route.timeout` counts the stages cut short). Never checked mid-net,
  /// so nets are never half-routed.
  support::Deadline deadline;
};

/// Decides when rip-up & reroute has stopped making *material* progress.
///
/// Material means the congested-grid count dropped at least 2% (min 1)
/// below the baseline, and the baseline only ever moves on material
/// improvement. Moving it on every observation — the pre-fix behaviour —
/// silently tightened the baseline on sub-2% declines, so a negotiation
/// steadily improving at ~1% per iteration measured each step against the
/// previous one, never looked material, and was cut off mid-progress.
/// Against a fixed baseline those steps accumulate: a genuine 1%/iteration
/// decline re-arms the detector every couple of iterations, while a truly
/// slow drip (sub-0.5%/iteration at the default window of 4) still exhausts
/// the stall budget and exits.
class RrrStallDetector {
 public:
  /// `initialCongestion` seeds the baseline (the pre-RRR congested count);
  /// `stallIters` is the budget of consecutive non-material iterations
  /// (0 disables the detector: `shouldStop` is always false).
  RrrStallDetector(long initialCongestion, int stallIters)
      : baseline_(initialCongestion), stallIters_(stallIters) {}

  /// Feeds one iteration's congested-grid count. True when the stall budget
  /// is exhausted and the loop should exit.
  [[nodiscard]] bool shouldStop(long congestion) {
    if (congestion < baseline_ - std::max<long>(1, baseline_ / 50)) {
      baseline_ = congestion;
      stall_ = 0;
      return false;
    }
    return stallIters_ > 0 && ++stall_ >= stallIters_;
  }

  /// Last material congestion level (test hook).
  [[nodiscard]] long baseline() const { return baseline_; }

 private:
  long baseline_;
  int stallIters_;
  int stall_ = 0;
};

[[nodiscard]] RoutingResult routeNegotiated(const db::Design& design,
                                            const core::PinAccessPlan* plan,
                                            const NegotiationOptions& opts = {});

}  // namespace cpr::route
