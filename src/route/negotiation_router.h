/// \file negotiation_router.h
/// Negotiation-congestion routing (PathFinder [22] style, as in [21]).
///
/// Two-stage scheme (paper Section 5.2): an *independent routing stage*
/// routes every net ignoring sharing (the congested-grid count after this
/// stage is the Fig. 7(b) metric), then *rip-up & reroute* iterations add
/// history cost on congested grids and reroute the offending nets with a
/// growing present-sharing penalty until no grid is shared. Design rule
/// violations are mitigated by the forbidden via grid cost during search and
/// by dedicated DRC repair passes; nets still dirty at signoff are counted
/// unrouted.
///
/// With a `PinAccessPlan` this is the paper's CPR (intervals become partial
/// routes and other nets' intervals become blockages); with `plan == nullptr`
/// it is the "routing w/o pin access optimization" baseline [21].
#pragma once

#include "core/optimizer.h"
#include "db/design.h"
#include "route/drc.h"
#include "route/maze.h"
#include "route/result.h"
#include "support/deadline.h"

namespace cpr::route {

struct NegotiationOptions {
  Coord windowMargin = 12;
  int maxRrrIterations = 20;
  /// Stop rip-up & reroute early when the congested-grid count has not
  /// improved for this many iterations (0 = always run to the cap).
  int congestionStallIters = 4;
  int drcRepairPasses = 2;
  MazeCosts costs;               ///< base costs; `present` is driven per stage
  float presentFactor = 3.0F;    ///< present penalty = factor * iteration
  float historyIncrement = 1.0F;
  DrcRules drc;
  /// Fill RoutingResult::geometry with each routed net's segments and vias
  /// (visualization / export); costs memory on big designs, off by default.
  bool keepGeometry = false;
  /// Wall-clock budget (unset = none). Checked between rip-up & reroute
  /// iterations and between DRC repair passes — the independent routing
  /// stage and signoff always run, so an expired deadline still yields a
  /// complete, consistently reported result (`route.timeout` counts the
  /// loops cut short). Never checked mid-net, so nets are never half-routed.
  support::Deadline deadline;
};

[[nodiscard]] RoutingResult routeNegotiated(const db::Design& design,
                                            const core::PinAccessPlan* plan,
                                            const NegotiationOptions& opts = {});

}  // namespace cpr::route
