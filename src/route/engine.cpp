#include "route/engine.h"

#include <algorithm>
#include <cassert>

#include "obs/names.h"
#include "support/contracts.h"

namespace cpr::route {

RouteEngine::RouteEngine(const db::Design& design,
                         const core::PinAccessPlan* plan, Coord windowMargin,
                         Coord lineEndExtension, obs::Collector* obs)
    : design_(design),
      grid_(design, plan),
      obs_(obs),
      maze_(grid_, obs),
      margin_(windowMargin),
      lineEndExtension_(lineEndExtension) {
  infos_.resize(design.nets().size());
  states_.resize(design.nets().size());
  scratch_.bind(grid_.numNodes());
  for (std::size_t n = 0; n < design.nets().size(); ++n)
    buildNetInfo(static_cast<Index>(n), plan);
}

void RouteEngine::buildNetInfo(Index net, const core::PinAccessPlan* plan) {
  NetInfo& info = infos_[static_cast<std::size_t>(net)];
  geom::Rect window;
  bool first = true;

  for (Index pinId : design_.net(net).pins) {
    const db::Pin& pin = design_.pin(pinId);
    PinAccess acc;

    const core::PinRoute* route =
        plan && plan->routes[static_cast<std::size_t>(pinId)].valid()
            ? &plan->routes[static_cast<std::size_t>(pinId)]
            : nullptr;
    if (route) {
      // Find or create the interval record (pins may share one interval).
      int rec = -1;
      for (std::size_t r = 0; r < info.recs.size(); ++r) {
        if (info.recs[r].track == route->track &&
            info.recs[r].span == route->span) {
          rec = static_cast<int>(r);
          break;
        }
      }
      if (rec < 0) {
        rec = static_cast<int>(info.recs.size());
        info.recs.push_back(IntervalRec{route->track, route->span,
                                        pin.shape.x});
      } else {
        info.recs[static_cast<std::size_t>(rec)].needed =
            geom::hull(info.recs[static_cast<std::size_t>(rec)].needed,
                       pin.shape.x);
      }
      acc.rec = rec;
      acc.targets.reserve(static_cast<std::size_t>(route->span.span()));
      for (Coord x = route->span.lo; x <= route->span.hi; ++x)
        acc.targets.push_back(grid_.id(Node{RLayer::M2, x, route->track}));
      // V1 drops at the pin's center column on the interval track.
      const Coord mid = (pin.shape.x.lo + pin.shape.x.hi) / 2;
      acc.via = ViaSite{mid, route->track, 1};
      window.expand(geom::Rect{route->span, geom::Interval::point(route->track)});
    } else {
      for (Coord t = pin.shape.y.lo; t <= pin.shape.y.hi; ++t) {
        for (Coord x = pin.shape.x.lo; x <= pin.shape.x.hi; ++x)
          acc.targets.push_back(grid_.id(Node{RLayer::M2, x, t}));
      }
      acc.via = ViaSite{0, 0, 1};  // filled at landing time
      window.expand(pin.shape);
    }
    if (first) {
      first = false;
    }
    info.access.push_back(std::move(acc));
  }
  info.window = window;
}

int RouteEngine::recOf(const NetInfo& info, int nodeId) const {
  const Node n = grid_.node(nodeId);
  if (n.layer != RLayer::M2) return -1;
  for (std::size_t r = 0; r < info.recs.size(); ++r) {
    if (info.recs[r].track == n.y && info.recs[r].span.contains(n.x))
      return static_cast<int>(r);
  }
  return -1;
}

void RouteEngine::ripNet(Index net) {
  NetState& st = states_[static_cast<std::size_t>(net)];
  if (st.routed) obs::add(obs_, obs::names::kRouteRipups);
  for (int id : st.nodes) grid_.removeOcc(id);
  for (const ViaSite& v : st.vias) grid_.removeVia(v.x, v.y, net);
  st.nodes.clear();
  st.vias.clear();
  st.routed = false;
  st.wirelength = 0;
}

NetPlan RouteEngine::searchNet(Index net, const MazeCosts& costs,
                               Coord extraMargin, MazeScratch& scratch) const {
  NetPlan plan;
  const NetInfo& info = infos_[static_cast<std::size_t>(net)];
  if (info.access.empty()) return plan;
  scratch.bind(grid_.numNodes());
  plan.recUsedXs.reserve(info.recs.size());
  plan.recUsedXs.resize(info.recs.size());  // default Interval = empty extent

  const Coord m = margin_ + extraMargin;
  geom::Rect window{
      geom::Interval{std::max<Coord>(0, info.window.x.lo - m),
                     std::min<Coord>(grid_.width() - 1, info.window.x.hi + m)},
      geom::Interval{std::max<Coord>(0, info.window.y.lo - m),
                     std::min<Coord>(grid_.height() - 1, info.window.y.hi + m)}};

  // Connect pins left-to-right starting from pin 0's access component.
  std::vector<std::size_t> order(info.access.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Index pa = design_.net(net).pins[a];
    const Index pb = design_.net(net).pins[b];
    return design_.pin(pa).shape.x.lo < design_.pin(pb).shape.x.lo;
  });

  // Plan-assembly vectors get their expected sizes up front: one V1 per pin
  // (+1 for the first pin's projection V1), one path per connection, and the
  // seed targets for the tree. Landed paths can still grow vias/tree past
  // these — that growth is plan assembly between searches, outside the
  // armed hot region, not the A* inner loop.
  std::size_t seedCap = 0;
  for (const PinAccess& a : info.access) seedCap += a.targets.size();
  plan.vias.reserve(info.access.size() + 1);
  plan.paths.reserve(info.access.size());
  const long treeEpoch = ++scratch.treeEpoch;
  std::vector<int>& tree = scratch.tree;
  tree.clear();
  tree.reserve(seedCap);  // warm no-op once the largest net has been seen
  auto addTree = [&](int id) {
    if (scratch.treeStamp[static_cast<std::size_t>(id)] != treeEpoch) {
      scratch.treeStamp[static_cast<std::size_t>(id)] = treeEpoch;
      tree.push_back(id);
    }
  };
  auto noteIntervalUse = [&](int nodeId) {
    const int rec = recOf(info, nodeId);
    if (rec >= 0) {
      geom::Interval& used = plan.recUsedXs[static_cast<std::size_t>(rec)];
      used = geom::hull(used,
                        geom::Interval::point(grid_.node(nodeId).x));
    }
  };

  // Projection-pin V1 sites are discovered at landing time; searches must
  // not write them back into the (shared, const) net info, so they live in
  // a local shadow of the access list.
  std::vector<ViaSite> accVia(info.access.size());
  for (std::size_t k = 0; k < info.access.size(); ++k)
    accVia[k] = info.access[k].via;

  // Seed with the first pin.
  {
    const PinAccess& acc0 = info.access[order[0]];
    for (int id : acc0.targets) addTree(id);
    if (acc0.rec >= 0) plan.vias.push_back(accVia[order[0]]);
    // Projection pins get their V1 at the first path's source (or, for
    // single-pin nets, at the first target).
  }

  for (std::size_t k = 1; k < order.size(); ++k) {
    const PinAccess& acc = info.access[order[k]];
    std::optional<std::vector<int>> path =
        maze_.findPath(tree, acc.targets, window, net, costs, scratch);
    if (!path) return plan;  // not found; caller may retry with a larger margin
    // Record V2 vias along the path and interval usage at both ends.
    for (std::size_t i = 0; i + 1 < path->size(); ++i) {
      const Node a = grid_.node((*path)[i]);
      const Node b = grid_.node((*path)[i + 1]);
      if (a.layer != b.layer)
        plan.vias.push_back(ViaSite{a.x, a.y, 2});
    }
    noteIntervalUse(path->front());
    noteIntervalUse(path->back());
    if (acc.rec >= 0) {
      plan.vias.push_back(accVia[order[k]]);
      for (int id : acc.targets) addTree(id);
    } else {
      const Node landing = grid_.node(path->back());
      accVia[order[k]] = ViaSite{landing.x, landing.y, 1};
      plan.vias.push_back(accVia[order[k]]);
    }
    // First pin's projection V1: source end of the first path.
    if (k == 1 && info.access[order[0]].rec < 0) {
      const Node src = grid_.node(path->front());
      accVia[order[0]] = ViaSite{src.x, src.y, 1};
      plan.vias.push_back(accVia[order[0]]);
    }
    for (int id : *path) addTree(id);
    plan.paths.push_back(std::move(*path));
  }

  if (order.size() == 1) {
    // Single-pin net: drop one via on the first access node.
    const PinAccess& acc0 = info.access[order[0]];
    if (acc0.rec < 0) {
      const Node n0 = grid_.node(acc0.targets.front());
      accVia[order[0]] = ViaSite{n0.x, n0.y, 1};
      plan.vias.push_back(accVia[order[0]]);
      plan.paths.push_back({acc0.targets.front()});
    }
  }

  plan.found = true;
  return plan;
}

void RouteEngine::commitPlan(Index net, const NetPlan& plan) {
  CPR_DCHECK(plan.found);
  const NetInfo& info = infos_[static_cast<std::size_t>(net)];
  NetState& st = states_[static_cast<std::size_t>(net)];
  CPR_DCHECK(!st.routed);

  std::vector<int> committed;
  for (const auto& path : plan.paths)
    committed.insert(committed.end(), path.begin(), path.end());
  // Interval metal, trimmed to used extent but always covering its pins
  // (unused tails are not manufactured; Section 5's WL stays comparable).
  for (std::size_t r = 0; r < info.recs.size(); ++r) {
    const IntervalRec& rec = info.recs[r];
    geom::Interval trimmed = geom::hull(rec.needed, plan.recUsedXs[r]);
    trimmed = geom::intersect(trimmed, rec.span);
    for (Coord x = trimmed.lo; x <= trimmed.hi; ++x)
      committed.push_back(grid_.id(Node{RLayer::M2, x, rec.track}));
  }
  std::sort(committed.begin(), committed.end());
  committed.erase(std::unique(committed.begin(), committed.end()),
                  committed.end());

  // Line-end extensions (Section 4): every maximal run gets one extra cell
  // at each end, committed as metal so the negotiation itself keeps
  // diff-net line ends a cut-mask-friendly distance apart.
  if (lineEndExtension_ > 0) {
    const int plane = grid_.planeSize();
    const Coord w = grid_.width();
    std::vector<int> extension;
    auto tryExtend = [&](Coord x, Coord y, RLayer layer) {
      if (!grid_.inside(x, y)) return;
      const int id = grid_.id(Node{layer, x, y});
      if (!grid_.blocked(id)) extension.push_back(id);
    };
    for (std::size_t i = 0; i < committed.size(); ++i) {
      const int a = committed[i];
      const Node n = grid_.node(a);
      if (a < plane) {  // M2 run ends: previous/next column missing
        const bool hasPrev = i > 0 && committed[i - 1] == a - 1 &&
                             (a % plane) / w == ((a - 1) % plane) / w;
        const bool hasNext = i + 1 < committed.size() &&
                             committed[i + 1] == a + 1 &&
                             (a % plane) / w == ((a + 1) % plane) / w;
        for (Coord e = 1; e <= lineEndExtension_; ++e) {
          if (!hasPrev) tryExtend(n.x - e, n.y, RLayer::M2);
          if (!hasNext) tryExtend(n.x + e, n.y, RLayer::M2);
        }
      } else {  // M3 run ends: previous/next track missing
        const bool hasPrev =
            std::binary_search(committed.begin(), committed.end(), a - w);
        const bool hasNext =
            std::binary_search(committed.begin(), committed.end(), a + w);
        for (Coord e = 1; e <= lineEndExtension_; ++e) {
          if (!hasPrev) tryExtend(n.x, n.y - e, RLayer::M3);
          if (!hasNext) tryExtend(n.x, n.y + e, RLayer::M3);
        }
      }
    }
    committed.insert(committed.end(), extension.begin(), extension.end());
    std::sort(committed.begin(), committed.end());
    committed.erase(std::unique(committed.begin(), committed.end()),
                    committed.end());
  }

  for (int id : committed) grid_.addOcc(id);
  for (const ViaSite& v : plan.vias) grid_.addVia(v.x, v.y, net);

  // Wirelength: same-layer adjacent committed pairs. Ids pack x
  // consecutively, so M2 adjacency is id+1 (same y) and M3 adjacency id+W.
  long wl = 0;
  const int plane = grid_.planeSize();
  for (std::size_t i = 0; i + 1 < committed.size(); ++i) {
    const int a = committed[i];
    for (std::size_t j = i + 1; j < committed.size(); ++j) {
      const int b = committed[j];
      if (b - a > grid_.width()) break;
      const bool sameLayer = (a < plane) == (b < plane);
      if (!sameLayer) continue;
      if (a < plane) {  // M2: +1 within the same row
        if (b == a + 1 && (a % plane) / grid_.width() == (b % plane) / grid_.width())
          ++wl;
      } else {  // M3: +W
        if (b == a + grid_.width()) ++wl;
      }
    }
  }

  st.nodes = std::move(committed);
  st.vias = plan.vias;
  st.wirelength = wl;
  st.routed = true;
}

void RouteEngine::flushSearchStats(MazeScratch& scratch) {
  obs::add(obs_, obs::names::kRouteSearches, scratch.searches);
  obs::add(obs_, obs::names::kRoutePops, scratch.pops);
  scratch.searches = 0;
  scratch.pops = 0;
}

bool RouteEngine::routeNet(Index net, const MazeCosts& costs,
                           Coord extraMargin) {
  ripNet(net);
  NetPlan plan = searchNet(net, costs, extraMargin, scratch_);
  flushSearchStats(scratch_);
  if (!plan.found) return false;
  commitPlan(net, plan);
  return true;
}

std::optional<std::vector<int>> RouteEngine::probePath(Index net,
                                                       float present) {
  const NetInfo& info = infos_[static_cast<std::size_t>(net)];
  if (info.access.size() < 2) return std::nullopt;
  MazeCosts costs;
  costs.present = present;
  costs.hardBlockOccupied = false;
  const Coord m = margin_ * 2;
  geom::Rect window{
      geom::Interval{std::max<Coord>(0, info.window.x.lo - m),
                     std::min<Coord>(grid_.width() - 1, info.window.x.hi + m)},
      geom::Interval{std::max<Coord>(0, info.window.y.lo - m),
                     std::min<Coord>(grid_.height() - 1, info.window.y.hi + m)}};
  return maze_.findPath(info.access[0].targets, info.access[1].targets, window,
                        net, costs);
}

NetGeometry RouteEngine::geometryOf(Index net) const {
  NetGeometry out;
  const NetState& st = states_[static_cast<std::size_t>(net)];
  if (!st.routed) return out;
  const int plane = grid_.planeSize();
  const Coord w = grid_.width();
  // Committed nodes are sorted by id: M2 first (row-major: runs are
  // consecutive ids), then M3 (runs differ by `w`). Extract maximal runs.
  std::size_t k = 0;
  while (k < st.nodes.size() && st.nodes[k] < plane) {  // M2
    std::size_t e = k;
    const Node start = grid_.node(st.nodes[k]);
    while (e + 1 < st.nodes.size() && st.nodes[e + 1] == st.nodes[e] + 1 &&
           grid_.node(st.nodes[e + 1]).y == start.y) {
      ++e;
    }
    const Node last = grid_.node(st.nodes[e]);
    out.segments.push_back(
        RouteSegment{false, start.y, geom::Interval{start.x, last.x}});
    k = e + 1;
  }
  // M3: group by column.
  std::vector<int> m3(st.nodes.begin() + static_cast<std::ptrdiff_t>(k),
                      st.nodes.end());
  std::sort(m3.begin(), m3.end(), [&](int a, int b) {
    const Node na = grid_.node(a);
    const Node nb = grid_.node(b);
    return na.x != nb.x ? na.x < nb.x : na.y < nb.y;
  });
  for (std::size_t i = 0; i < m3.size();) {
    const Node start = grid_.node(m3[i]);
    std::size_t e = i;
    while (e + 1 < m3.size()) {
      const Node next = grid_.node(m3[e + 1]);
      if (next.x != start.x || next.y != grid_.node(m3[e]).y + 1) break;
      ++e;
    }
    out.segments.push_back(RouteSegment{
        true, start.x, geom::Interval{start.y, grid_.node(m3[e]).y}});
    i = e + 1;
  }
  (void)w;
  out.vias.reserve(st.vias.size());
  for (const ViaSite& v : st.vias)
    out.vias.push_back(NetGeometry::Via{v.x, v.y, v.level});
  return out;
}

std::vector<std::vector<int>> RouteEngine::allNodes() const {
  std::vector<std::vector<int>> out(states_.size());
  for (std::size_t n = 0; n < states_.size(); ++n) {
    if (states_[n].routed) out[n] = states_[n].nodes;
  }
  return out;
}

std::vector<std::vector<ViaSite>> RouteEngine::allVias() const {
  std::vector<std::vector<ViaSite>> out(states_.size());
  for (std::size_t n = 0; n < states_.size(); ++n) {
    if (states_[n].routed) out[n] = states_[n].vias;
  }
  return out;
}

}  // namespace cpr::route
