#include "route/wave_scheduler.h"

#include <algorithm>

namespace cpr::route {

WaveScheduler::WaveScheduler(geom::Coord width, geom::Coord height,
                             geom::Coord tile)
    : tile_(std::max<geom::Coord>(1, tile)) {
  tilesX_ = static_cast<int>((std::max<geom::Coord>(1, width) + tile_ - 1) /
                             tile_);
  tilesY_ = static_cast<int>((std::max<geom::Coord>(1, height) + tile_ - 1) /
                             tile_);
  claimed_.assign(static_cast<std::size_t>(tilesX_) *
                      static_cast<std::size_t>(tilesY_),
                  -1);
}

bool WaveScheduler::tryClaim(const geom::Rect& box, long wave) {
  const auto clampTile = [](long t, int hi) {
    return static_cast<int>(std::clamp<long>(t, 0, hi - 1));
  };
  const int x0 = clampTile(box.x.lo / tile_, tilesX_);
  const int x1 = clampTile(box.x.hi / tile_, tilesX_);
  const int y0 = clampTile(box.y.lo / tile_, tilesY_);
  const int y1 = clampTile(box.y.hi / tile_, tilesY_);
  for (int ty = y0; ty <= y1; ++ty) {
    for (int tx = x0; tx <= x1; ++tx) {
      if (claimed_[static_cast<std::size_t>(ty) *
                       static_cast<std::size_t>(tilesX_) +
                   static_cast<std::size_t>(tx)] == wave)
        return false;
    }
  }
  for (int ty = y0; ty <= y1; ++ty) {
    for (int tx = x0; tx <= x1; ++tx) {
      claimed_[static_cast<std::size_t>(ty) *
                   static_cast<std::size_t>(tilesX_) +
               static_cast<std::size_t>(tx)] = wave;
    }
  }
  return true;
}

std::vector<std::vector<geom::Index>> WaveScheduler::partition(
    const std::vector<geom::Index>& nets,
    const std::vector<geom::Rect>& boxes) {
  conflicts_ = 0;
  // Every pass admits at least one net (a fresh wave id never collides), so
  // the wave count — and with it the result vector — is bounded by the net
  // count; per-wave members are bounded by what is still pending.
  std::vector<std::vector<geom::Index>> waves;
  waves.reserve(nets.size());
  // Pending nets carry their position in the caller's box array.
  std::vector<std::size_t> pending(nets.size());
  for (std::size_t k = 0; k < nets.size(); ++k) pending[k] = k;

  std::vector<std::size_t> deferred;
  deferred.reserve(nets.size());
  while (!pending.empty()) {
    const long wave = waveId_++;
    std::vector<geom::Index> members;
    members.reserve(pending.size());
    deferred.clear();
    for (std::size_t k : pending) {
      // A degenerate (empty) box never blocks anyone; route it anywhere.
      if (boxes[k].empty() || tryClaim(boxes[k], wave)) {
        members.push_back(nets[k]);
      } else {
        ++conflicts_;
        deferred.push_back(k);
      }
    }
    waves.push_back(std::move(members));
    pending.swap(deferred);
  }
  return waves;
}

}  // namespace cpr::route
