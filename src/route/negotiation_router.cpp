#include "route/negotiation_router.h"

#include <chrono>
#include <cstddef>
#include <vector>

#include "obs/names.h"
#include "route/engine.h"
#include "route/wave_scheduler.h"
#include "support/thread_pool.h"

namespace cpr::route {

namespace {
using Clock = std::chrono::steady_clock;

/// Routes every net loop of the negotiation through disjoint waves: rip the
/// wave, search its nets concurrently against the then-immutable grid,
/// commit the found plans serially in wave order, and retry the misses
/// sequentially with a widened window once all waves have landed (a widened
/// window escapes the disjointness boxes, so those retries cannot ride in a
/// wave). The wave partition and every commit order depend only on the net
/// list — never on the thread count — so results are bit-identical from
/// `threads = 1` to `threads = N`.
class BatchRouter {
 public:
  BatchRouter(RouteEngine& engine, support::ThreadPool& pool,
              obs::Collector* obs)
      : engine_(engine),
        pool_(pool),
        obs_(obs),
        scheduler_(engine.grid().width(), engine.grid().height()),
        // Influence halo around a net's window: the search window margin,
        // plus the line-end extension a commit writes beyond its runs, plus
        // one grid each for the adjacency and forbidden-via lookups that a
        // search reads around the window.
        halo_(engine.windowMargin() + engine.lineEndExtension() + 2),
        scratches_(std::size_t(pool.size())) {}

  /// Rips and reroutes `nets` under `costs`. Stops launching waves once
  /// `deadline` expires (counting `route.timeout` once); already-searched
  /// waves still commit, so no net is ever left half-routed.
  void route(const std::vector<Index>& nets, const MazeCosts& costs,
             const support::Deadline& deadline) {
    if (nets.empty()) return;
    std::vector<geom::Rect> boxes(nets.size());
    for (std::size_t k = 0; k < nets.size(); ++k) {
      geom::Rect box = engine_.windowOf(nets[k]);
      if (!box.empty()) {
        box.x = geom::Interval{box.x.lo - halo_, box.x.hi + halo_};
        box.y = geom::Interval{box.y.lo - halo_, box.y.hi + halo_};
      }
      boxes[k] = box;
    }
    const auto waves = scheduler_.partition(nets, boxes);
    obs::add(obs_, obs::names::kRouteBatches, static_cast<long>(waves.size()));
    obs::add(obs_, obs::names::kRouteBatchConflicts, scheduler_.conflicts());

    std::vector<Index> misses;
    bool cut = false;
    for (const auto& wave : waves) {
      if (deadline.expired()) {
        cut = true;
        break;
      }
      if (wave.size() > 1)
        obs::add(obs_, obs::names::kRouteParallelNets,
                 static_cast<long>(wave.size()));
      for (Index net : wave) engine_.ripNet(net);
      std::vector<NetPlan> plans(wave.size());
      pool_.parallelFor(wave.size(), [&](int worker, std::size_t k) {
        plans[k] = engine_.searchNet(wave[k], costs, /*extraMargin=*/0,
                                     scratches_[std::size_t(worker)]);
      });
      for (MazeScratch& s : scratches_) engine_.flushSearchStats(s);
      for (std::size_t k = 0; k < wave.size(); ++k) {
        if (plans[k].found)
          engine_.commitPlan(wave[k], plans[k]);
        else
          misses.push_back(wave[k]);
      }
    }
    if (!cut) {
      for (Index net : misses) {
        if (deadline.expired()) {
          cut = true;
          break;
        }
        obs::add(obs_, obs::names::kRouteRetries);
        engine_.routeNet(net, costs, /*extraMargin=*/24);
      }
    }
    if (cut) obs::add(obs_, obs::names::kRouteTimeout);
  }

 private:
  RouteEngine& engine_;
  support::ThreadPool& pool_;
  obs::Collector* obs_;
  WaveScheduler scheduler_;
  Coord halo_;
  std::vector<MazeScratch> scratches_;  ///< one search arena per worker
};

}  // namespace

RoutingResult routeNegotiated(const db::Design& design,
                              const core::PinAccessPlan* plan,
                              const NegotiationOptions& opts) {
  const auto t0 = Clock::now();
  RoutingResult result;
  obs::Collector* obs = &result.stats;
  RouteEngine engine(design, plan, opts.windowMargin,
                     opts.drc.lineEndExtension, obs);
  // Extensions are committed as metal by the engine; signoff checks the
  // committed geometry directly.
  DrcRules signoff = opts.drc;
  signoff.lineEndExtension = 0;
  RoutingGrid& grid = engine.grid();
  const auto numNets = static_cast<Index>(design.nets().size());

  result.nets.resize(static_cast<std::size_t>(numNets));

  support::ThreadPool pool(
      std::min(support::ThreadPool::clampThreads(opts.threads),
               std::max(1, static_cast<int>(numNets))));
  BatchRouter batch(engine, pool, obs);

  std::vector<Index> todo;
  todo.reserve(static_cast<std::size_t>(numNets));

  // ---- independent routing stage ----
  MazeCosts costs = opts.costs;
  costs.present = 0.0F;
  costs.hardBlockOccupied = false;
  {
    obs::ScopedTimer t(obs, obs::names::kRouteIndependentSpan);
    for (Index n = 0; n < numNets; ++n) todo.push_back(n);
    batch.route(todo, costs, opts.deadline);
  }
  obs->add(obs::names::kRouteCongestedPreRrr, grid.congestedNodeCount());

  // ---- rip-up & reroute ----
  RrrStallDetector stall(grid.congestedNodeCount(),
                         opts.congestionStallIters);
  {
    obs::ScopedTimer t(obs, obs::names::kRouteRrrSpan);
    for (int iter = 1; iter <= opts.maxRrrIterations; ++iter) {
      if (opts.deadline.expired()) {
        obs::add(obs, obs::names::kRouteTimeout);
        break;
      }
      const long congestion = grid.congestedNodeCount();
      if (congestion == 0) break;
      if (stall.shouldStop(congestion))
        break;  // negotiation has stopped making material progress
      obs->add(obs::names::kRouteRrrIterations);
      obs->row("rrr.iter", {"iter", "congested"},
               {static_cast<double>(iter), static_cast<double>(congestion)});
      // History accrues on currently congested nodes.
      for (int id = 0; id < grid.numNodes(); ++id) {
        if (grid.occupancy(id) > 1) grid.addHistory(id, opts.historyIncrement);
      }
      costs.present = opts.presentFactor * static_cast<float>(iter);
      costs.adjacency = 0.5F * costs.present;
      // Snapshot this iteration's reroute set — unrouted nets plus nets
      // sharing a grid — then rip & reroute it as one batch. (The legacy
      // sequential loop re-tested sharing net by net as earlier reroutes
      // landed; the snapshot is the wave-order equivalent and is what the
      // determinism policy pins.)
      todo.clear();
      for (Index n = 0; n < numNets; ++n) {
        if (!engine.state(n).routed) {
          todo.push_back(n);  // keep retrying failed nets
          continue;
        }
        for (int id : engine.state(n).nodes) {
          if (grid.occupancy(id) > 1) {
            todo.push_back(n);
            break;
          }
        }
      }
      batch.route(todo, costs, opts.deadline);
    }
  }

  // Unresolved sharing: greedily drop nets until no grid is shared (the
  // survivor on each contested grid keeps its route).
  for (Index n = 0; n < numNets; ++n) {
    if (!engine.state(n).routed) continue;
    bool shares = false;
    for (int id : engine.state(n).nodes) {
      if (grid.occupancy(id) > 1) {
        shares = true;
        break;
      }
    }
    if (shares) {
      engine.ripNet(n);
      obs->add(obs::names::kRouteDroppedSharing);
    }
  }

  // ---- DRC repair ----
  costs.present = opts.presentFactor * static_cast<float>(opts.maxRrrIterations);
  costs.adjacency = 0.5F * costs.present;
  {
    obs::ScopedTimer t(obs, obs::names::kRouteDrcRepairSpan);
    for (int pass = 0; pass < opts.drcRepairPasses; ++pass) {
      if (opts.deadline.expired()) {
        obs::add(obs, obs::names::kRouteTimeout);
        break;
      }
      const auto nodes = engine.allNodes();
      const auto vias = engine.allVias();
      const DrcReport report = checkDesignRules(
          DrcInput{nodes, vias, grid.width(), grid.height()}, signoff);
      todo.clear();
      for (Index n = 0; n < numNets; ++n) {
        if (report.dirty[static_cast<std::size_t>(n)]) todo.push_back(n);
      }
      if (todo.empty()) break;
      batch.route(todo, costs, opts.deadline);
      // Rerouting may reintroduce sharing; drop offenders once more.
      for (Index n = 0; n < numNets; ++n) {
        if (!engine.state(n).routed) continue;
        for (int id : engine.state(n).nodes) {
          if (grid.occupancy(id) > 1) {
            engine.ripNet(n);
            obs->add(obs::names::kRouteDroppedSharing);
            break;
          }
        }
      }
    }
  }

  // ---- signoff ----
  {
    // Scoped so the span closes before `result` can be returned (a timer
    // must never outlive the collector it points into).
    obs::ScopedTimer t(obs, obs::names::kRouteSignoffSpan);
    const auto nodes = engine.allNodes();
    const auto vias = engine.allVias();
    const DrcReport report = checkDesignRules(
        DrcInput{nodes, vias, grid.width(), grid.height()}, signoff, obs);
    for (Index n = 0; n < numNets; ++n) {
      NetResult& nr = result.nets[static_cast<std::size_t>(n)];
      const RouteEngine::NetState& st = engine.state(n);
      nr.routed = st.routed;
      nr.clean = st.routed && !report.dirty[static_cast<std::size_t>(n)];
      nr.wirelength = st.wirelength;
      nr.vias = static_cast<int>(st.vias.size());
    }
    if (opts.keepGeometry) {
      result.geometry.resize(static_cast<std::size_t>(numNets));
      for (Index n = 0; n < numNets; ++n)
        result.geometry[static_cast<std::size_t>(n)] = engine.geometryOf(n);
    }
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

}  // namespace cpr::route
