#include "route/negotiation_router.h"

#include <chrono>

#include "obs/names.h"
#include "route/engine.h"

namespace cpr::route {

namespace {
using Clock = std::chrono::steady_clock;

/// Routes one net, retrying once with a widened window.
bool routeWithRetry(RouteEngine& engine, Index net, const MazeCosts& costs,
                    obs::Collector* obs) {
  if (engine.routeNet(net, costs)) return true;
  obs::add(obs, obs::names::kRouteRetries);
  return engine.routeNet(net, costs, /*extraMargin=*/24);
}

}  // namespace

RoutingResult routeNegotiated(const db::Design& design,
                              const core::PinAccessPlan* plan,
                              const NegotiationOptions& opts) {
  const auto t0 = Clock::now();
  RoutingResult result;
  obs::Collector* obs = &result.stats;
  RouteEngine engine(design, plan, opts.windowMargin,
                     opts.drc.lineEndExtension, obs);
  // Extensions are committed as metal by the engine; signoff checks the
  // committed geometry directly.
  DrcRules signoff = opts.drc;
  signoff.lineEndExtension = 0;
  RoutingGrid& grid = engine.grid();
  const auto numNets = static_cast<Index>(design.nets().size());

  result.nets.resize(static_cast<std::size_t>(numNets));

  // ---- independent routing stage ----
  MazeCosts costs = opts.costs;
  costs.present = 0.0F;
  costs.hardBlockOccupied = false;
  {
    obs::ScopedTimer t(obs, obs::names::kRouteIndependentSpan);
    for (Index n = 0; n < numNets; ++n) routeWithRetry(engine, n, costs, obs);
  }
  obs->add(obs::names::kRouteCongestedPreRrr, grid.congestedNodeCount());

  // ---- rip-up & reroute ----
  long bestCongestion = grid.congestedNodeCount();
  int congestionStall = 0;
  {
    obs::ScopedTimer t(obs, obs::names::kRouteRrrSpan);
    for (int iter = 1; iter <= opts.maxRrrIterations; ++iter) {
      if (opts.deadline.expired()) {
        obs::add(obs, obs::names::kRouteTimeout);
        break;
      }
      const long congestion = grid.congestedNodeCount();
      if (congestion == 0) break;
      // Progress must be material (2%): a long tail of structurally shared
      // grids otherwise keeps the loop alive for no benefit.
      if (congestion <
          bestCongestion - std::max<long>(1, bestCongestion / 50)) {
        bestCongestion = congestion;
        congestionStall = 0;
      } else if (opts.congestionStallIters > 0 &&
                 ++congestionStall >= opts.congestionStallIters) {
        break;  // negotiation has stopped making progress
      }
      bestCongestion = std::min(bestCongestion, congestion);
      obs->add(obs::names::kRouteRrrIterations);
      obs->row("rrr.iter", {"iter", "congested"},
               {static_cast<double>(iter), static_cast<double>(congestion)});
      // History accrues on currently congested nodes.
      for (int id = 0; id < grid.numNodes(); ++id) {
        if (grid.occupancy(id) > 1) grid.addHistory(id, opts.historyIncrement);
      }
      costs.present = opts.presentFactor * static_cast<float>(iter);
      costs.adjacency = 0.5F * costs.present;
      for (Index n = 0; n < numNets; ++n) {
        if (!engine.state(n).routed) {
          routeWithRetry(engine, n, costs, obs);  // keep retrying failed nets
          continue;
        }
        bool shares = false;
        for (int id : engine.state(n).nodes) {
          if (grid.occupancy(id) > 1) {
            shares = true;
            break;
          }
        }
        if (shares) routeWithRetry(engine, n, costs, obs);
      }
    }
  }

  // Unresolved sharing: greedily drop nets until no grid is shared (the
  // survivor on each contested grid keeps its route).
  for (Index n = 0; n < numNets; ++n) {
    if (!engine.state(n).routed) continue;
    bool shares = false;
    for (int id : engine.state(n).nodes) {
      if (grid.occupancy(id) > 1) {
        shares = true;
        break;
      }
    }
    if (shares) {
      engine.ripNet(n);
      obs->add(obs::names::kRouteDroppedSharing);
    }
  }

  // ---- DRC repair ----
  costs.present = opts.presentFactor * static_cast<float>(opts.maxRrrIterations);
  costs.adjacency = 0.5F * costs.present;
  {
    obs::ScopedTimer t(obs, obs::names::kRouteDrcRepairSpan);
    for (int pass = 0; pass < opts.drcRepairPasses; ++pass) {
      if (opts.deadline.expired()) {
        obs::add(obs, obs::names::kRouteTimeout);
        break;
      }
      const auto nodes = engine.allNodes();
      const auto vias = engine.allVias();
      const DrcReport report = checkDesignRules(
          DrcInput{nodes, vias, grid.width(), grid.height()}, signoff);
      bool any = false;
      for (Index n = 0; n < numNets; ++n) {
        if (!report.dirty[static_cast<std::size_t>(n)]) continue;
        any = true;
        routeWithRetry(engine, n, costs, obs);
      }
      if (!any) break;
      // Rerouting may reintroduce sharing; drop offenders once more.
      for (Index n = 0; n < numNets; ++n) {
        if (!engine.state(n).routed) continue;
        for (int id : engine.state(n).nodes) {
          if (grid.occupancy(id) > 1) {
            engine.ripNet(n);
            obs->add(obs::names::kRouteDroppedSharing);
            break;
          }
        }
      }
    }
  }

  // ---- signoff ----
  {
    // Scoped so the span closes before `result` can be returned (a timer
    // must never outlive the collector it points into).
    obs::ScopedTimer t(obs, obs::names::kRouteSignoffSpan);
    const auto nodes = engine.allNodes();
    const auto vias = engine.allVias();
    const DrcReport report = checkDesignRules(
        DrcInput{nodes, vias, grid.width(), grid.height()}, signoff, obs);
    for (Index n = 0; n < numNets; ++n) {
      NetResult& nr = result.nets[static_cast<std::size_t>(n)];
      const RouteEngine::NetState& st = engine.state(n);
      nr.routed = st.routed;
      nr.clean = st.routed && !report.dirty[static_cast<std::size_t>(n)];
      nr.wirelength = st.wirelength;
      nr.vias = static_cast<int>(st.vias.size());
    }
    if (opts.keepGeometry) {
      result.geometry.resize(static_cast<std::size_t>(numNets));
      for (Index n = 0; n < numNets; ++n)
        result.geometry[static_cast<std::size_t>(n)] = engine.geometryOf(n);
    }
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

}  // namespace cpr::route
