/// \file wave_scheduler.h
/// Deterministic partitioning of a net list into parallel-safe waves.
///
/// The negotiation router searches many nets concurrently against one
/// immutable grid, then commits serially. A wave is a set of nets whose
/// *influence boxes* — the search window plus every halo a search reads or
/// a commit writes (adjacency and forbidden-via lookups reach one grid out,
/// line-end extensions are committed beyond the run) — are pairwise
/// disjoint. Within a wave, no net's search can observe another wave-mate's
/// rip or commit, so routing a wave in parallel produces bit-identical
/// results to routing it sequentially in wave order, for any thread count.
///
/// Partitioning is multi-pass greedy over the input order: each pass scans
/// the still-unassigned nets, admitting every net whose box does not touch
/// a box already admitted to the pass's wave. Overlap is tested against a
/// coarse tile bitmap (conservative: two boxes sharing a tile are treated
/// as overlapping, which only ever defers a net — never unsafely co-routes
/// it). The result depends only on the input order and the boxes, never on
/// thread scheduling.
#pragma once

#include <vector>

#include "geom/rect.h"
#include "geom/types.h"
#include "support/hot_annotations.h"

namespace cpr::route {

class WaveScheduler {
 public:
  /// Tiles the `width` x `height` grid for the overlap bitmap. `tile` trades
  /// partition sharpness against bitmap size; the default suits row heights
  /// of a few tracks.
  WaveScheduler(geom::Coord width, geom::Coord height, geom::Coord tile = 16);

  /// Splits `nets` into waves of pairwise-disjoint influence boxes.
  /// `boxes[k]` is net `nets[k]`'s influence box (already expanded by the
  /// caller's halo). Input order is preserved inside each wave, and the
  /// concatenation of all waves is a permutation of `nets`.
  [[nodiscard]] std::vector<std::vector<geom::Index>> partition(
      const std::vector<geom::Index>& nets,
      const std::vector<geom::Rect>& boxes) CPR_HOT;

  /// Deferrals during the last `partition` call: the number of times a net
  /// had to wait for a later wave because its box touched the current wave.
  [[nodiscard]] long conflicts() const { return conflicts_; }

 private:
  [[nodiscard]] bool tryClaim(const geom::Rect& box, long wave) CPR_HOT;

  geom::Coord tile_;
  int tilesX_ = 0;
  int tilesY_ = 0;
  std::vector<long> claimed_;  ///< wave id per tile (epoch-style, no clears)
  long waveId_ = 0;
  long conflicts_ = 0;
};

}  // namespace cpr::route
