#include "route/maze.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/names.h"

namespace cpr::route {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();
}

MazeRouter::MazeRouter(RoutingGrid& grid, obs::Collector* obs)
    : grid_(grid), obs_(obs) {
  const std::size_t n = static_cast<std::size_t>(grid_.numNodes());
  dist_.assign(n, kInf);
  parent_.assign(n, -1);
  stamp_.assign(n, -1);
  targetStamp_.assign(n, -1);
}

float MazeRouter::nodeCost(int id, Index net, const MazeCosts& c) const {
  if (grid_.blocked(id)) return kInf;
  const Node n = grid_.node(id);
  if (n.layer == RLayer::M2) {
    const int m2 = id;  // M2 ids occupy the first plane
    const Index pinNet = grid_.pinNetAt(m2);
    if (pinNet != geom::kInvalidIndex && pinNet != net) return kInf;
    const Index ivNet = grid_.intervalNetAt(m2);
    if (ivNet != geom::kInvalidIndex && ivNet != net) return kInf;
  }
  const int occ = grid_.occupancy(id);
  if (c.hardBlockOccupied && occ > 0) return kInf;
  float cost = c.metal + c.present * static_cast<float>(occ) + grid_.history(id);
  if (c.adjacency > 0.0F) {
    // Same-lane neighbors: previous/next column on M2, previous/next track
    // on M3 (parallel wires on adjacent lanes are fine in unidirectional
    // routing; only same-lane proximity threatens the cut mask).
    const auto occAt = [&](Coord x, Coord y) {
      return grid_.inside(x, y) ? grid_.occupancy(grid_.id(Node{n.layer, x, y}))
                                : 0;
    };
    const int near = n.layer == RLayer::M2
                         ? occAt(n.x - 1, n.y) + occAt(n.x + 1, n.y)
                         : occAt(n.x, n.y - 1) + occAt(n.x, n.y + 1);
    cost += c.adjacency * static_cast<float>(near);
  }
  return cost;
}

std::optional<std::vector<int>> MazeRouter::findPath(
    const std::vector<int>& sources, const std::vector<int>& targets,
    const geom::Rect& window, Index net, const MazeCosts& costs) {
  if (sources.empty() || targets.empty()) return std::nullopt;
  ++epoch_;
  obs::add(obs_, obs::names::kRouteSearches);
  long pops = 0;  // reported once per search to keep the hot loop branchless

  // Target bbox for the admissible A* heuristic (min edge cost = metal).
  geom::Rect tbox;
  bool first = true;
  for (int t : targets) {
    targetStamp_[static_cast<std::size_t>(t)] = epoch_;
    const Node n = grid_.node(t);
    if (first) {
      tbox = geom::Rect::point({n.x, n.y});
      first = false;
    } else {
      tbox.expand(geom::Point{n.x, n.y});
    }
  }
  auto heuristic = [&](const Node& n) {
    const Coord dx = n.x < tbox.x.lo ? tbox.x.lo - n.x
                     : n.x > tbox.x.hi ? n.x - tbox.x.hi
                                       : 0;
    const Coord dy = n.y < tbox.y.lo ? tbox.y.lo - n.y
                     : n.y > tbox.y.hi ? n.y - tbox.y.hi
                                       : 0;
    return costs.metal * static_cast<float>(dx + dy);
  };

  using QEntry = std::pair<float, int>;  // (f = g + h, node)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> open;

  auto relax = [&](int id, float g, int from) {
    std::size_t i = static_cast<std::size_t>(id);
    if (stamp_[i] == epoch_ && dist_[i] <= g) return;
    stamp_[i] = epoch_;
    dist_[i] = g;
    parent_[i] = from;
    open.push({g + heuristic(grid_.node(id)), id});
  };

  for (int s : sources) relax(s, 0.0F, -1);

  while (!open.empty()) {
    const auto [f, u] = open.top();
    open.pop();
    ++pops;
    const std::size_t ui = static_cast<std::size_t>(u);
    if (stamp_[ui] != epoch_ || f > dist_[ui] + heuristic(grid_.node(u)) + 1e-5F)
      continue;  // stale entry
    if (targetStamp_[ui] == epoch_) {
      std::vector<int> path;
      for (int v = u; v != -1; v = parent_[static_cast<std::size_t>(v)])
        path.push_back(v);
      std::reverse(path.begin(), path.end());
      obs::add(obs_, obs::names::kRoutePops, pops);
      return path;
    }
    const Node n = grid_.node(u);
    const float g = dist_[ui];

    auto tryMove = [&](Coord x, Coord y, RLayer layer, bool viaMove) {
      if (!grid_.inside(x, y) || !window.contains(geom::Point{x, y})) return;
      const int vid = grid_.id(Node{layer, x, y});
      float step = nodeCost(vid, net, costs);
      if (step == kInf) return;
      if (viaMove) {
        step += costs.via;
        if (grid_.viaForbidden(x, y, net)) step += costs.forbiddenVia;
      }
      relax(vid, g + step, u);
    };

    if (n.layer == RLayer::M2) {
      tryMove(n.x - 1, n.y, RLayer::M2, false);
      tryMove(n.x + 1, n.y, RLayer::M2, false);
      tryMove(n.x, n.y, RLayer::M3, true);  // V2 up
    } else {
      tryMove(n.x, n.y - 1, RLayer::M3, false);
      tryMove(n.x, n.y + 1, RLayer::M3, false);
      tryMove(n.x, n.y, RLayer::M2, true);  // V2 down
    }
  }
  obs::add(obs_, obs::names::kRoutePops, pops);
  return std::nullopt;
}

}  // namespace cpr::route
