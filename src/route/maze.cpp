#include "route/maze.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "obs/names.h"
#include "support/alloc_hook.h"

namespace cpr::route {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();
}

void MazeScratch::bind(int numNodes) {
  const std::size_t n = static_cast<std::size_t>(numNodes);
  if (dist.size() == n) return;
  dist.assign(n, kInf);
  parent.assign(n, -1);
  stamp.assign(n, -1);
  targetStamp.assign(n, -1);
  epoch = 0;
  treeStamp.assign(n, -1);
  treeEpoch = 0;
}

std::size_t MazeScratch::footprintBytes() const {
  return dist.size() * sizeof(float) + parent.size() * sizeof(int) +
         (stamp.size() + targetStamp.size() + treeStamp.size()) * sizeof(long) +
         tree.capacity() * sizeof(int) +
         heap.capacity() * sizeof(std::pair<float, int>);
}

MazeRouter::MazeRouter(const RoutingGrid& grid, obs::Collector* obs)
    : grid_(grid), obs_(obs) {
  own_.bind(grid_.numNodes());
}

float MazeRouter::nodeCost(int id, Index net, const MazeCosts& c) const {
  if (grid_.blocked(id)) return kInf;
  const Node n = grid_.node(id);
  if (n.layer == RLayer::M2) {
    const int m2 = id;  // M2 ids occupy the first plane
    const Index pinNet = grid_.pinNetAt(m2);
    if (pinNet != geom::kInvalidIndex && pinNet != net) return kInf;
    const Index ivNet = grid_.intervalNetAt(m2);
    if (ivNet != geom::kInvalidIndex && ivNet != net) return kInf;
  }
  const int occ = grid_.occupancy(id);
  if (c.hardBlockOccupied && occ > 0) return kInf;
  float cost = c.metal + c.present * static_cast<float>(occ) + grid_.history(id);
  if (c.adjacency > 0.0F) {
    // Same-lane neighbors: previous/next column on M2, previous/next track
    // on M3 (parallel wires on adjacent lanes are fine in unidirectional
    // routing; only same-lane proximity threatens the cut mask).
    const auto occAt = [&](Coord x, Coord y) {
      return grid_.inside(x, y) ? grid_.occupancy(grid_.id(Node{n.layer, x, y}))
                                : 0;
    };
    const int near = n.layer == RLayer::M2
                         ? occAt(n.x - 1, n.y) + occAt(n.x + 1, n.y)
                         : occAt(n.x, n.y - 1) + occAt(n.x, n.y + 1);
    cost += c.adjacency * static_cast<float>(near);
  }
  return cost;
}

std::optional<std::vector<int>> MazeRouter::findPath(
    const std::vector<int>& sources, const std::vector<int>& targets,
    const geom::Rect& window, Index net, const MazeCosts& costs,
    MazeScratch& scratch) const {
  if (sources.empty() || targets.empty()) return std::nullopt;
  scratch.bind(grid_.numNodes());
  const long epoch = ++scratch.epoch;
  ++scratch.searches;
  long pops = 0;  // tallied once per search to keep the hot loop branchless

  // Target bbox for the admissible A* heuristic (min edge cost = metal).
  geom::Rect tbox;
  bool first = true;
  for (int t : targets) {
    scratch.targetStamp[static_cast<std::size_t>(t)] = epoch;
    const Node n = grid_.node(t);
    if (first) {
      tbox = geom::Rect::point({n.x, n.y});
      first = false;
    } else {
      tbox.expand(geom::Point{n.x, n.y});
    }
  }
  auto heuristic = [&](const Node& n) {
    const Coord dx = n.x < tbox.x.lo ? tbox.x.lo - n.x
                     : n.x > tbox.x.hi ? n.x - tbox.x.hi
                                       : 0;
    const Coord dy = n.y < tbox.y.lo ? tbox.y.lo - n.y
                     : n.y > tbox.y.hi ? n.y - tbox.y.hi
                                       : 0;
    return costs.metal * static_cast<float>(dx + dy);
  };

  // Worst-case open-list size, so the hot loop never grows the heap: the
  // heuristic is consistent (L1 distance to the target bbox scaled by the
  // minimum edge cost), so each node is expanded at most once after its
  // first fresh pop, each expansion pushes at most 3 entries (two lateral
  // moves plus one via), and the seed pass pushes one entry per source.
  // Warm scratches satisfy this reserve without touching the allocator.
  scratch.heap.clear();
  scratch.heap.reserve(static_cast<std::size_t>(grid_.numNodes()) * 3 +
                       sources.size());

  auto relax = [&](int id, float g, int from) {
    std::size_t i = static_cast<std::size_t>(id);
    if (scratch.stamp[i] == epoch && scratch.dist[i] <= g) return;
    scratch.stamp[i] = epoch;
    scratch.dist[i] = g;
    scratch.parent[i] = from;
    scratch.heap.push_back({g + heuristic(grid_.node(id)), id});
    std::push_heap(scratch.heap.begin(), scratch.heap.end(), std::greater<>{});
  };

  int goal = -1;
  {
    const support::alloc::HotRegion hotRegion;  // runtime zero-alloc pin
    for (int s : sources) relax(s, 0.0F, -1);

    while (!scratch.heap.empty()) {
      const auto [f, u] = scratch.heap.front();
      std::pop_heap(scratch.heap.begin(), scratch.heap.end(),
                    std::greater<>{});
      scratch.heap.pop_back();
      ++pops;
      const std::size_t ui = static_cast<std::size_t>(u);
      if (scratch.stamp[ui] != epoch ||
          f > scratch.dist[ui] + heuristic(grid_.node(u)) + 1e-5F)
        continue;  // stale entry
      if (scratch.targetStamp[ui] == epoch) {
        goal = u;
        break;
      }
      const Node n = grid_.node(u);
      const float g = scratch.dist[ui];

      auto tryMove = [&](Coord x, Coord y, RLayer layer, bool viaMove) {
        if (!grid_.inside(x, y) || !window.contains(geom::Point{x, y})) return;
        const int vid = grid_.id(Node{layer, x, y});
        float step = nodeCost(vid, net, costs);
        if (step == kInf) return;
        if (viaMove) {
          step += costs.via;
          if (grid_.viaForbidden(x, y, net)) step += costs.forbiddenVia;
        }
        relax(vid, g + step, u);
      };

      if (n.layer == RLayer::M2) {
        tryMove(n.x - 1, n.y, RLayer::M2, false);
        tryMove(n.x + 1, n.y, RLayer::M2, false);
        tryMove(n.x, n.y, RLayer::M3, true);  // V2 up
      } else {
        tryMove(n.x, n.y - 1, RLayer::M3, false);
        tryMove(n.x, n.y + 1, RLayer::M3, false);
        tryMove(n.x, n.y, RLayer::M2, true);  // V2 down
      }
    }
  }
  scratch.pops += pops;
  if (goal == -1) return std::nullopt;

  // Result assembly happens outside the hot region: the path vector is the
  // caller's to keep, so it cannot live in scratch.
  std::size_t len = 0;
  for (int v = goal; v != -1; v = scratch.parent[static_cast<std::size_t>(v)])
    ++len;
  std::vector<int> path;
  path.reserve(len);
  for (int v = goal; v != -1; v = scratch.parent[static_cast<std::size_t>(v)])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<std::vector<int>> MazeRouter::findPath(
    const std::vector<int>& sources, const std::vector<int>& targets,
    const geom::Rect& window, Index net, const MazeCosts& costs) {
  auto path = findPath(sources, targets, window, net, costs, own_);
  obs::add(obs_, obs::names::kRouteSearches, own_.searches);
  obs::add(obs_, obs::names::kRoutePops, own_.pops);
  own_.searches = 0;
  own_.pops = 0;
  return path;
}

}  // namespace cpr::route
