/// \file engine.h
/// Net-level routing engine shared by the negotiation (CPR / no-PAO) and
/// sequential drivers.
///
/// The engine owns the grid and the maze searcher, precomputes per-net pin
/// access (either the optimized pin access intervals — treated as partial
/// routes, Section 4 — or the raw M2 projection of each pin), and routes
/// nets in two phases:
///
///   * **search** (`searchNet`, const): negotiated A* connects the net's
///     pins into a tree over an immutable view of the grid; every mutable
///     byte lives in the caller's `MazeScratch` arena, so many searches may
///     run concurrently against one grid.
///   * **commit** (`commitPlan`): the found paths, V1/V2 vias, trimmed
///     interval metal, and line-end extensions are written into the grid's
///     occupancy / via maps and the net's state. Commits mutate shared
///     state and must be serialized by the caller.
///
/// `routeNet` is the sequential convenience that rips, searches through the
/// engine's own scratch, and commits in one call.
#pragma once

#include <optional>
#include <vector>

#include "core/optimizer.h"
#include "db/design.h"
#include "route/drc.h"
#include "route/grid.h"
#include "route/maze.h"
#include "route/result.h"
#include "support/hot_annotations.h"

namespace cpr::route {

/// Outcome of one net search: everything `commitPlan` needs, and nothing
/// that aliases engine or grid state — a plan is immutable data produced by
/// a const search, possibly on another thread.
struct NetPlan {
  bool found = false;
  std::vector<std::vector<int>> paths;  ///< node-id paths, one per connection
  std::vector<ViaSite> vias;            ///< V1 + V2 vias in discovery order
  /// Used x-extent per interval record (parallel to the net's records;
  /// default-empty when the record was never touched). Commit trims each
  /// interval to hull(needed, used) — identical to hulling the individual
  /// connection points, since only the extent ever mattered, and it keeps
  /// the search phase allocation-free.
  std::vector<geom::Interval> recUsedXs;
};

class RouteEngine {
 public:
  struct NetState {
    bool routed = false;
    std::vector<int> nodes;      ///< committed grid nodes (sorted, unique)
    std::vector<ViaSite> vias;   ///< V1 + V2 vias
    long wirelength = 0;         ///< same-layer adjacent node pairs
  };

  /// A non-null `obs` receives the engine-level `route.*` counters (rip-ups,
  /// A* searches and pops); drivers layer their own stage counters on top.
  RouteEngine(const db::Design& design, const core::PinAccessPlan* plan,
              Coord windowMargin, Coord lineEndExtension = 1,
              obs::Collector* obs = nullptr);

  [[nodiscard]] RoutingGrid& grid() { return grid_; }
  [[nodiscard]] const db::Design& design() const { return design_; }
  [[nodiscard]] const NetState& state(Index net) const {
    return states_[static_cast<std::size_t>(net)];
  }
  [[nodiscard]] std::size_t numNets() const { return states_.size(); }

  /// Hull of the net's pin shapes and assigned intervals — the box the
  /// search window is grown from. Batch schedulers expand it by
  /// `windowMargin()` (+ line-end / via slack) to test wave disjointness.
  [[nodiscard]] const geom::Rect& windowOf(Index net) const {
    return infos_[static_cast<std::size_t>(net)].window;
  }
  [[nodiscard]] Coord windowMargin() const { return margin_; }
  [[nodiscard]] Coord lineEndExtension() const { return lineEndExtension_; }

  /// Const search phase: finds paths for `net` under the given cost model
  /// without touching the grid or the net's state. The caller must have
  /// ripped any previous route of the net first (a committed self-route
  /// would otherwise be priced as foreign sharing). `extraMargin` widens
  /// the search window (used by retries). All search state and the
  /// `route.astar.*` tallies land in `scratch`; flush them to the observer
  /// with `flushSearchStats` outside any parallel region.
  [[nodiscard]] NetPlan searchNet(Index net, const MazeCosts& costs,
                                  Coord extraMargin,
                                  MazeScratch& scratch) const CPR_HOT;

  /// Commit phase: writes a found plan's metal, vias, interval trims, and
  /// line-end extensions into the grid and the net's state. Must be called
  /// serially, and only with a plan produced against the current grid epoch
  /// for an unrouted net.
  void commitPlan(Index net, const NetPlan& plan);

  /// Adds `scratch`'s pending searches/pops tallies to the engine observer
  /// and zeroes them. Call from one thread only.
  void flushSearchStats(MazeScratch& scratch);

  /// Routes `net` under the given cost model: rip + search + commit in one
  /// sequential call. Returns success; on failure the net is left unrouted.
  bool routeNet(Index net, const MazeCosts& costs, Coord extraMargin = 0);

  /// Removes the net's committed metal, occupancy and vias.
  void ripNet(Index net);

  /// Min-cost path for `net` ignoring hard occupancy (sharing allowed at
  /// cost `present`); used by the sequential driver to find blocker nets.
  [[nodiscard]] std::optional<std::vector<int>> probePath(Index net,
                                                          float present);

  /// Node-id views for DRC input.
  [[nodiscard]] std::vector<std::vector<int>> allNodes() const;
  [[nodiscard]] std::vector<std::vector<ViaSite>> allVias() const;

  /// Committed geometry of one net as maximal straight segments plus vias
  /// (empty geometry when the net is unrouted).
  [[nodiscard]] NetGeometry geometryOf(Index net) const;

 private:
  /// One optimized access interval used by this net (deduplicated across
  /// pins sharing it).
  struct IntervalRec {
    Coord track = 0;
    geom::Interval span;    ///< full assigned interval
    geom::Interval needed;  ///< hull of covered pin x-ranges (never trimmed away)
  };
  /// Per-pin access description.
  struct PinAccess {
    std::vector<int> targets;  ///< M2 node ids reaching the pin
    int rec = -1;              ///< interval record index (-1: raw projection)
    ViaSite via;               ///< V1 site (projection pins: filled at landing)
  };
  struct NetInfo {
    std::vector<PinAccess> access;
    std::vector<IntervalRec> recs;
    geom::Rect window;
  };

  void buildNetInfo(Index net, const core::PinAccessPlan* plan);
  /// Index of the interval record a path endpoint landed on (-1 if none).
  [[nodiscard]] int recOf(const NetInfo& info, int nodeId) const;

  const db::Design& design_;
  RoutingGrid grid_;
  obs::Collector* obs_ = nullptr;
  MazeRouter maze_;
  Coord margin_;
  Coord lineEndExtension_;
  std::vector<NetInfo> infos_;
  std::vector<NetState> states_;
  MazeScratch scratch_;  ///< scratch behind the sequential routeNet path
};

}  // namespace cpr::route
