/// \file engine.h
/// Net-level routing engine shared by the negotiation (CPR / no-PAO) and
/// sequential drivers.
///
/// The engine owns the grid and the maze searcher, precomputes per-net pin
/// access (either the optimized pin access intervals — treated as partial
/// routes, Section 4 — or the raw M2 projection of each pin), and routes one
/// net at a time: pins are connected to the growing tree by negotiated A*
/// searches, V1/V2 vias are recorded, and on completion the interval metal
/// is trimmed to its used extent before being committed to the grid.
#pragma once

#include <optional>
#include <vector>

#include "core/optimizer.h"
#include "db/design.h"
#include "route/drc.h"
#include "route/grid.h"
#include "route/maze.h"
#include "route/result.h"

namespace cpr::route {

class RouteEngine {
 public:
  struct NetState {
    bool routed = false;
    std::vector<int> nodes;      ///< committed grid nodes (sorted, unique)
    std::vector<ViaSite> vias;   ///< V1 + V2 vias
    long wirelength = 0;         ///< same-layer adjacent node pairs
  };

  /// A non-null `obs` receives the engine-level `route.*` counters (rip-ups,
  /// A* searches and pops); drivers layer their own stage counters on top.
  RouteEngine(const db::Design& design, const core::PinAccessPlan* plan,
              Coord windowMargin, Coord lineEndExtension = 1,
              obs::Collector* obs = nullptr);

  [[nodiscard]] RoutingGrid& grid() { return grid_; }
  [[nodiscard]] const db::Design& design() const { return design_; }
  [[nodiscard]] const NetState& state(Index net) const {
    return states_[static_cast<std::size_t>(net)];
  }
  [[nodiscard]] std::size_t numNets() const { return states_.size(); }

  /// Routes `net` under the given cost model. Any previous route of the net
  /// is ripped first. `extraMargin` widens the search window (used by
  /// retries). Returns success; on failure the net is left unrouted.
  bool routeNet(Index net, const MazeCosts& costs, Coord extraMargin = 0);

  /// Removes the net's committed metal, occupancy and vias.
  void ripNet(Index net);

  /// Min-cost path for `net` ignoring hard occupancy (sharing allowed at
  /// cost `present`); used by the sequential driver to find blocker nets.
  [[nodiscard]] std::optional<std::vector<int>> probePath(Index net,
                                                          float present);

  /// Node-id views for DRC input.
  [[nodiscard]] std::vector<std::vector<int>> allNodes() const;
  [[nodiscard]] std::vector<std::vector<ViaSite>> allVias() const;

  /// Committed geometry of one net as maximal straight segments plus vias
  /// (empty geometry when the net is unrouted).
  [[nodiscard]] NetGeometry geometryOf(Index net) const;

 private:
  /// One optimized access interval used by this net (deduplicated across
  /// pins sharing it).
  struct IntervalRec {
    Coord track = 0;
    geom::Interval span;    ///< full assigned interval
    geom::Interval needed;  ///< hull of covered pin x-ranges (never trimmed away)
    std::vector<Coord> usedXs;  ///< connection points discovered while routing
  };
  /// Per-pin access description.
  struct PinAccess {
    std::vector<int> targets;  ///< M2 node ids reaching the pin
    int rec = -1;              ///< interval record index (-1: raw projection)
    ViaSite via;               ///< V1 site (projection pins: filled at landing)
  };
  struct NetInfo {
    std::vector<PinAccess> access;
    std::vector<IntervalRec> recs;
    geom::Rect window;
  };

  void buildNetInfo(Index net, const core::PinAccessPlan* plan);
  /// Records a path endpoint landing on one of the net's intervals.
  void noteIntervalUse(NetInfo& info, int nodeId);

  const db::Design& design_;
  RoutingGrid grid_;
  obs::Collector* obs_ = nullptr;
  MazeRouter maze_;
  Coord margin_;
  Coord lineEndExtension_;
  std::vector<NetInfo> infos_;
  std::vector<NetState> states_;
  // Scratch for tree membership during one routeNet call.
  std::vector<long> treeStamp_;
  long epoch_ = 0;
};

}  // namespace cpr::route
