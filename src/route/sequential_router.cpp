#include "route/sequential_router.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <numeric>

#include "obs/names.h"
#include "route/engine.h"

namespace cpr::route {

namespace {
using Clock = std::chrono::steady_clock;
}

RoutingResult routeSequential(const db::Design& design,
                              const SequentialOptions& opts) {
  const auto t0 = Clock::now();
  RoutingResult result;
  obs::Collector* obs = &result.stats;
  RouteEngine engine(design, /*plan=*/nullptr, opts.windowMargin,
                     opts.drc.lineEndExtension, obs);
  DrcRules signoff = opts.drc;
  signoff.lineEndExtension = 0;
  RoutingGrid& grid = engine.grid();
  const auto numNets = static_cast<Index>(design.nets().size());

  MazeCosts costs = opts.costs;
  costs.hardBlockOccupied = true;
  costs.present = 0.0F;
  if (costs.adjacency == 0.0F) costs.adjacency = 25.0F;  // line-end awareness
  const Coord retryMargin =
      opts.globalRetry ? std::max(grid.width(), grid.height()) : 16;

  // Node owner map (occupancy never exceeds 1 in hard mode).
  std::vector<Index> owner(static_cast<std::size_t>(grid.numNodes()),
                           geom::kInvalidIndex);
  auto claim = [&](Index net) {
    for (int id : engine.state(net).nodes)
      owner[static_cast<std::size_t>(id)] = net;
  };
  auto rip = [&](Index net) {
    for (int id : engine.state(net).nodes)
      owner[static_cast<std::size_t>(id)] = geom::kInvalidIndex;
    engine.ripNet(net);
  };

  // Short nets first (lower metal layers are reserved for short nets).
  std::vector<Index> order(static_cast<std::size_t>(numNets));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    const Coord ha = design.netBox(a).halfPerimeter();
    const Coord hb = design.netBox(b).halfPerimeter();
    return ha != hb ? ha < hb : a < b;
  });

  std::deque<Index> queue(order.begin(), order.end());
  std::vector<int> attempts(static_cast<std::size_t>(numNets), 0);
  std::vector<int> ripped(static_cast<std::size_t>(numNets), 0);
  std::vector<char> failed(static_cast<std::size_t>(numNets), 0);
  int passes = 0;

  while (!queue.empty()) {
    if (opts.deadline.expired()) {
      // Budget fired: stop routing, mark everything still queued as failed
      // (routed nets keep their geometry — nets are never half-routed).
      obs::add(obs, obs::names::kRouteTimeout);
      for (const Index n : queue) failed[static_cast<std::size_t>(n)] = 1;
      queue.clear();
      break;
    }
    const Index net = queue.front();
    queue.pop_front();
    ++attempts[static_cast<std::size_t>(net)];
    passes = std::max(passes, attempts[static_cast<std::size_t>(net)]);

    if (engine.routeNet(net, costs) ||
        engine.routeNet(net, costs, retryMargin)) {
      claim(net);
      continue;
    }
    if (attempts[static_cast<std::size_t>(net)] >= opts.maxPasses) {
      failed[static_cast<std::size_t>(net)] = 1;
      continue;
    }
    if (attempts[static_cast<std::size_t>(net)] >= 2) {
      // Rip-up pass: evict the nets sitting on the cheapest probe path.
      if (auto probe = engine.probePath(net, /*present=*/50.0F)) {
        std::vector<Index> blockers;
        for (int id : *probe) {
          const Index o = owner[static_cast<std::size_t>(id)];
          if (o != geom::kInvalidIndex && o != net &&
              std::find(blockers.begin(), blockers.end(), o) == blockers.end())
            blockers.push_back(o);
        }
        bool rippedAny = false;
        for (Index b : blockers) {
          if (ripped[static_cast<std::size_t>(b)] >= opts.maxRipsPerNet)
            continue;
          ++ripped[static_cast<std::size_t>(b)];
          rip(b);
          queue.push_back(b);
          rippedAny = true;
        }
        if (rippedAny &&
            (engine.routeNet(net, costs) ||
             engine.routeNet(net, costs, retryMargin))) {
          claim(net);
          continue;
        }
      }
    }
    queue.push_back(net);  // defer to a later position (dynamic reordering)
  }

  // ---- legalization: reroute DRC-dirty nets ----
  for (int pass = 0; pass < opts.legalizationPasses; ++pass) {
    if (opts.deadline.expired()) {
      obs::add(obs, obs::names::kRouteTimeout);
      break;
    }
    const auto nodes = engine.allNodes();
    const auto vias = engine.allVias();
    const DrcReport report = checkDesignRules(
        DrcInput{nodes, vias, grid.width(), grid.height()}, signoff);
    bool any = false;
    for (Index n = 0; n < numNets; ++n) {
      if (!report.dirty[static_cast<std::size_t>(n)]) continue;
      any = true;
      rip(n);
      if (engine.routeNet(n, costs) ||
          engine.routeNet(n, costs, retryMargin)) {
        claim(n);
      } else {
        failed[static_cast<std::size_t>(n)] = 1;
      }
    }
    if (!any) break;
  }

  // ---- signoff ----
  result.nets.resize(static_cast<std::size_t>(numNets));
  obs->add(obs::names::kRouteRrrIterations, passes);
  const auto nodes = engine.allNodes();
  const auto vias = engine.allVias();
  const DrcReport report = checkDesignRules(
      DrcInput{nodes, vias, grid.width(), grid.height()}, signoff, obs);
  for (Index n = 0; n < numNets; ++n) {
    NetResult& nr = result.nets[static_cast<std::size_t>(n)];
    const RouteEngine::NetState& st = engine.state(n);
    nr.routed = st.routed;
    nr.clean = st.routed && !report.dirty[static_cast<std::size_t>(n)];
    nr.wirelength = st.wirelength;
    nr.vias = static_cast<int>(st.vias.size());
  }
  if (opts.keepGeometry) {
    result.geometry.resize(static_cast<std::size_t>(numNets));
    for (Index n = 0; n < numNets; ++n)
      result.geometry[static_cast<std::size_t>(n)] = engine.geometryOf(n);
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

}  // namespace cpr::route
