/// \file drc.h
/// Unidirectional / SADP manufacturing rule checking (paper Section 4).
///
/// The paper performs line-end extensions and treats rule-violating nets as
/// unrouted at evaluation time. The rule set here is the parameterized
/// equivalent of the constraints "listed in [12]": every routed segment is
/// extended by `lineEndExtension` grids at both ends (cut-mask friendliness),
/// after which (a) extended segments of different nets on the same track
/// must not overlap and must keep `minLineEndSpacing` grids between line
/// ends, and (b) vias of different nets must be more than `minViaSpacing`
/// grids apart (Chebyshev). Violations mark both offending nets dirty.
#pragma once

#include <utility>
#include <vector>

#include "db/design.h"
#include "geom/types.h"
#include "obs/collector.h"

namespace cpr::route {

using geom::Coord;
using geom::Index;

/// Rules live per track/column: unidirectional SADP cut conflicts happen
/// between features on the same routing line (each line's cuts share a
/// mask), so both checks below are same-lane checks.
struct DrcRules {
  Coord lineEndExtension = 1;   ///< applied to both ends of every segment
  Coord minLineEndSpacing = 0;  ///< required gap between *extended* segments
  Coord minViaSpacing = 1;      ///< same-lane same-level diff-net vias need |dx| > this
};

/// One via of a routed net. Level 1 = V1 (M1 pin hookup), level 2 = V2
/// (M2-M3). The spacing rule applies between same-level vias of different
/// nets (different cut masks are independent).
struct ViaSite {
  Coord x = 0;
  Coord y = 0;
  std::uint8_t level = 2;
};

struct DrcInput {
  /// Committed node ids per net (packed as in RoutingGrid), only for nets
  /// that routed successfully; empty vectors otherwise.
  const std::vector<std::vector<int>>& netNodes;
  /// Via sites per net.
  const std::vector<std::vector<ViaSite>>& netVias;
  Coord width = 0;
  Coord height = 0;
};

struct DrcReport {
  long violations = 0;
  std::vector<char> dirty;  ///< per net: 1 when any rule is violated
};

/// Checks the rule set against committed routes. A non-null `obs` receives
/// the categorized `drc.*` counters (total, line-end, via-spacing, dirty
/// nets); drivers pass it only on the signoff call so intermediate repair
/// sweeps do not inflate the run report.
[[nodiscard]] DrcReport checkDesignRules(const DrcInput& in,
                                         const DrcRules& rules,
                                         obs::Collector* obs = nullptr);

}  // namespace cpr::route
