#include "route/drc.h"

#include <algorithm>
#include <map>

#include "obs/names.h"

namespace cpr::route {

namespace {

struct Segment {
  Index net;
  Coord lo;
  Coord hi;  ///< extended range along the track/column
};

/// Extracts maximal same-net runs along each M2 track (layerOffset 0) or M3
/// column and appends the extended segments into `lanes` keyed by track or
/// column index.
void collectSegments(const DrcInput& in, bool m3, Coord ext,
                     std::map<Coord, std::vector<Segment>>& lanes) {
  const int plane = static_cast<int>(in.width) * in.height;
  for (std::size_t net = 0; net < in.netNodes.size(); ++net) {
    // Per-lane sorted positions for this net.
    std::map<Coord, std::vector<Coord>> pos;
    for (int id : in.netNodes[net]) {
      const bool isM3 = id >= plane;
      if (isM3 != m3) continue;
      const int rem = id % plane;
      const Coord x = rem % in.width;
      const Coord y = rem / in.width;
      if (m3) {
        pos[x].push_back(y);
      } else {
        pos[y].push_back(x);
      }
    }
    const Coord limit = m3 ? in.height - 1 : in.width - 1;
    for (auto& [lane, v] : pos) {
      std::sort(v.begin(), v.end());
      std::size_t k = 0;
      while (k < v.size()) {
        std::size_t e = k;
        while (e + 1 < v.size() && v[e + 1] == v[e] + 1) ++e;
        lanes[lane].push_back(Segment{static_cast<Index>(net),
                                      std::max<Coord>(0, v[k] - ext),
                                      std::min<Coord>(limit, v[e] + ext)});
        k = e + 1;
      }
    }
  }
}

}  // namespace

DrcReport checkDesignRules(const DrcInput& in, const DrcRules& rules,
                           obs::Collector* obs) {
  DrcReport report;
  report.dirty.assign(in.netNodes.size(), 0);
  long lineEndViolations = 0;

  auto flag = [&](Index a, Index b) {
    ++report.violations;
    report.dirty[static_cast<std::size_t>(a)] = 1;
    report.dirty[static_cast<std::size_t>(b)] = 1;
  };

  // Line-end rules on M2 tracks and M3 columns.
  for (const bool m3 : {false, true}) {
    std::map<Coord, std::vector<Segment>> lanes;
    collectSegments(in, m3, rules.lineEndExtension, lanes);
    for (auto& [lane, segs] : lanes) {
      std::sort(segs.begin(), segs.end(), [](const Segment& a, const Segment& b) {
        return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
      });
      // Sweep: compare each segment with the previous ones still in range.
      for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
        for (std::size_t j = i + 1; j < segs.size(); ++j) {
          if (segs[j].lo > segs[i].hi + rules.minLineEndSpacing) break;
          if (segs[i].net != segs[j].net) {
            flag(segs[i].net, segs[j].net);
            ++lineEndViolations;
          }
        }
      }
    }
  }

  // Via spacing: same-track same-level diff-net vias with |dx| <=
  // minViaSpacing violate (two cuts too close on one line's cut mask).
  for (const std::uint8_t level : {std::uint8_t{1}, std::uint8_t{2}}) {
    std::map<std::pair<Coord, Coord>, std::vector<Index>> viaAt;  // (y, x)
    for (std::size_t net = 0; net < in.netVias.size(); ++net) {
      for (const ViaSite& v : in.netVias[net]) {
        if (v.level == level) viaAt[{v.y, v.x}].push_back(static_cast<Index>(net));
      }
    }
    for (const auto& [site, nets] : viaAt) {
      for (Coord dx = 0; dx <= rules.minViaSpacing; ++dx) {
        auto other = viaAt.find({site.first, site.second + dx});
        if (other == viaAt.end()) continue;
        for (Index a : nets) {
          for (Index b : other->second) {
            if (dx == 0 && a >= b) continue;  // dedupe within one site
            if (a != b) flag(a, b);
          }
        }
      }
    }
  }
  if (obs) {
    obs->add(obs::names::kDrcViolations, report.violations);
    obs->add(obs::names::kDrcLineEnd, lineEndViolations);
    obs->add(obs::names::kDrcViaSpacing,
             report.violations - lineEndViolations);
    long dirtyNets = 0;
    for (const char d : report.dirty) dirtyNets += d ? 1 : 0;
    obs->add(obs::names::kDrcDirtyNets, dirtyNets);
  }
  return report;
}

}  // namespace cpr::route
