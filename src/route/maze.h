/// \file maze.h
/// Negotiated-cost A* maze search on the unidirectional routing grid.
///
/// One search connects the net's partially built tree (multi-source) to the
/// next pin's access nodes (multi-target). Moves follow the unidirectional
/// rule: M2 nodes expand horizontally, M3 nodes vertically, and a via move
/// toggles the layer in place. Node entry cost = metal base + present-
/// sharing penalty * occupancy + history (PathFinder negotiation [21,22]);
/// via moves add the via base cost and the paper's forbidden grid cost (10)
/// when a different net owns a via within one grid of the site.
#pragma once

#include <optional>
#include <vector>

#include "geom/rect.h"
#include "obs/collector.h"
#include "route/grid.h"

namespace cpr::route {

struct MazeCosts {
  float metal = 1.0F;          ///< paper: base cost 1 for metal grids
  float via = 1.0F;            ///< paper: base cost 1 for via grids
  float forbiddenVia = 10.0F;  ///< paper: forbidden cost 10 for via grids
  float present = 0.0F;        ///< sharing penalty multiplier (0 = independent stage)
  /// Same-lane adjacency penalty: entering a node whose same-direction
  /// neighbor is occupied by another net prices the line-end extension that
  /// would collide there (extensions are committed as metal at the end of
  /// every run, so a stop next to foreign metal shares the extension cell).
  float adjacency = 0.0F;
  bool hardBlockOccupied = false;  ///< sequential mode: occupied nodes are walls
};

class MazeRouter {
 public:
  explicit MazeRouter(RoutingGrid& grid, obs::Collector* obs = nullptr);

  /// Switches the instrumentation sink (the engine owns the router but the
  /// driver owns the collector).
  void setObserver(obs::Collector* obs) { obs_ = obs; }

  /// Finds a min-cost path from any source to any target inside `window`
  /// (both layers). Returns the node-id path source→target inclusive, or
  /// nullopt when disconnected. Sources already in the target set return a
  /// single-node path. Each call reports one `route.astar.searches` count
  /// and its popped-node total (`route.astar.pops`) to the observer.
  [[nodiscard]] std::optional<std::vector<int>> findPath(
      const std::vector<int>& sources, const std::vector<int>& targets,
      const geom::Rect& window, Index net, const MazeCosts& costs);

 private:
  [[nodiscard]] float nodeCost(int id, Index net, const MazeCosts& c) const;

  RoutingGrid& grid_;
  obs::Collector* obs_ = nullptr;
  std::vector<float> dist_;
  std::vector<int> parent_;
  std::vector<long> stamp_;        ///< epoch per node for dist/parent
  std::vector<long> targetStamp_;  ///< epoch per node marking targets
  long epoch_ = 0;
};

}  // namespace cpr::route
