/// \file maze.h
/// Negotiated-cost A* maze search on the unidirectional routing grid.
///
/// One search connects the net's partially built tree (multi-source) to the
/// next pin's access nodes (multi-target). Moves follow the unidirectional
/// rule: M2 nodes expand horizontally, M3 nodes vertically, and a via move
/// toggles the layer in place. Node entry cost = metal base + present-
/// sharing penalty * occupancy + history (PathFinder negotiation [21,22]);
/// via moves add the via base cost and the paper's forbidden grid cost (10)
/// when a different net owns a via within one grid of the site.
///
/// Searches are const over the grid: all per-search mutable state (the A*
/// wavefront arrays plus the engine's tree-membership stamps) lives in a
/// `MazeScratch` arena, one per worker, mirroring `core::PanelScratch`.
/// That is what lets the negotiation router search many nets concurrently
/// against one shared grid and serialize only the commits.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "geom/rect.h"
#include "obs/collector.h"
#include "route/grid.h"
#include "support/hot_annotations.h"

namespace cpr::route {

struct MazeCosts {
  float metal = 1.0F;          ///< paper: base cost 1 for metal grids
  float via = 1.0F;            ///< paper: base cost 1 for via grids
  float forbiddenVia = 10.0F;  ///< paper: forbidden cost 10 for via grids
  float present = 0.0F;        ///< sharing penalty multiplier (0 = independent stage)
  /// Same-lane adjacency penalty: entering a node whose same-direction
  /// neighbor is occupied by another net prices the line-end extension that
  /// would collide there (extensions are committed as metal at the end of
  /// every run, so a stop next to foreign metal shares the extension cell).
  float adjacency = 0.0F;
  bool hardBlockOccupied = false;  ///< sequential mode: occupied nodes are walls
};

/// Per-worker arena for everything one net search mutates: the A* distance/
/// parent/stamp arrays, the engine's Steiner-tree membership stamps, and the
/// `route.astar.*` tallies (flushed to the observer by whoever owns the
/// collector, after the parallel region — the collector itself is not
/// thread-safe). Reused across searches; epochs avoid per-search clears.
struct MazeScratch {
  std::vector<float> dist;
  std::vector<int> parent;
  std::vector<long> stamp;        ///< epoch per node for dist/parent
  std::vector<long> targetStamp;  ///< epoch per node marking targets
  long epoch = 0;
  std::vector<long> treeStamp;    ///< epoch per node for tree membership
  long treeEpoch = 0;
  /// Scratch-resident Steiner-tree node list for the engine's searchNet:
  /// the multi-source seed set grows with every landed path, and keeping
  /// it here means warm searches reuse the capacity of the largest net
  /// seen instead of paying a fresh allocation per net (large seed sets
  /// cross glibc's mmap threshold, which made the per-call buffer a
  /// measurable per-net cost, not just churn).
  std::vector<int> tree;
  long searches = 0;  ///< route.astar.searches since the last flush
  long pops = 0;      ///< route.astar.pops since the last flush
  /// Binary-heap storage for the A* open list ((f, node) min-heap via
  /// std::push_heap/pop_heap with std::greater<>, which is exactly the
  /// std::priority_queue protocol — pop order, and therefore route
  /// digests, are bit-identical to a fresh priority_queue). Scratch-
  /// resident so warm searches never touch the heap allocator; findPath
  /// reserves the worst-case entry count before entering the hot loop.
  std::vector<std::pair<float, int>> heap;

  /// Sizes the arrays for a grid of `numNodes` nodes (no-op when already
  /// bound to the same size). Sanctioned warmup allocation: everything the
  /// hot search loop touches is (re)allocated here or not at all.
  void bind(int numNodes) CPR_COLD_OK;
  [[nodiscard]] std::size_t footprintBytes() const CPR_NOALLOC;
};

class MazeRouter {
 public:
  explicit MazeRouter(const RoutingGrid& grid, obs::Collector* obs = nullptr);

  /// Switches the instrumentation sink (the engine owns the router but the
  /// driver owns the collector).
  void setObserver(obs::Collector* obs) { obs_ = obs; }

  /// Finds a min-cost path from any source to any target inside `window`
  /// (both layers). Returns the node-id path source→target inclusive, or
  /// nullopt when disconnected. Sources already in the target set return a
  /// single-node path. Const over the grid; all mutable search state and the
  /// searches/pops tallies land in `scratch`.
  [[nodiscard]] std::optional<std::vector<int>> findPath(
      const std::vector<int>& sources, const std::vector<int>& targets,
      const geom::Rect& window, Index net, const MazeCosts& costs,
      MazeScratch& scratch) const CPR_HOT;

  /// Single-threaded convenience: searches through the router's own scratch
  /// and reports `route.astar.searches` / `route.astar.pops` to the observer
  /// immediately.
  [[nodiscard]] std::optional<std::vector<int>> findPath(
      const std::vector<int>& sources, const std::vector<int>& targets,
      const geom::Rect& window, Index net, const MazeCosts& costs);

 private:
  [[nodiscard]] float nodeCost(int id, Index net,
                               const MazeCosts& c) const CPR_HOT;

  const RoutingGrid& grid_;
  obs::Collector* obs_ = nullptr;
  MazeScratch own_;  ///< scratch behind the convenience overload
};

}  // namespace cpr::route
