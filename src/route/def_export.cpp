#include "route/def_export.h"

#include <ostream>

namespace cpr::route {

void writeRoutedDef(const db::Design& design,
                    const std::vector<NetGeometry>& geometry,
                    std::ostream& os) {
  os << "VERSION 5.8 ;\n";
  os << "DESIGN " << design.name() << " ;\n";
  os << "UNITS DISTANCE MICRONS 1000 ;\n";
  os << "DIEAREA ( 0 0 ) ( " << design.width() << ' ' << design.gridHeight()
     << " ) ;\n";
  os << "ROWS " << design.numRows() << ' ' << design.tracksPerRow() << " ;\n";
  os << "NETS " << design.nets().size() << " ;\n";
  for (std::size_t n = 0; n < design.nets().size(); ++n) {
    const db::Net& net = design.nets()[n];
    os << "  - " << net.name << "\n";
    for (db::Index p : net.pins) {
      const db::Pin& pin = design.pin(p);
      os << "    ( PIN " << pin.name << " LAYER M1 RECT ( " << pin.shape.x.lo
         << ' ' << pin.shape.y.lo << " ) ( " << pin.shape.x.hi << ' '
         << pin.shape.y.hi << " ) )\n";
    }
    if (n < geometry.size() && !geometry[n].segments.empty()) {
      os << "    + ROUTED";
      bool first = true;
      for (const RouteSegment& s : geometry[n].segments) {
        os << (first ? " " : "\n      NEW ");
        first = false;
        if (s.m3) {
          os << "M3 ( " << s.lane << ' ' << s.span.lo << " ) ( " << s.lane
             << ' ' << s.span.hi << " )";
        } else {
          os << "M2 ( " << s.span.lo << ' ' << s.lane << " ) ( " << s.span.hi
             << ' ' << s.lane << " )";
        }
      }
      for (const NetGeometry::Via& v : geometry[n].vias) {
        os << "\n      NEW " << (v.level == 1 ? "M1" : "M2") << " ( " << v.x
           << ' ' << v.y << " ) VIA V" << static_cast<int>(v.level);
      }
    }
    os << "\n  ;\n";
  }
  os << "END NETS\n";
  os << "END DESIGN\n";
}

}  // namespace cpr::route
