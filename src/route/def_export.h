/// \file def_export.h
/// Routed-DEF writer: the DEF-subset design serialization of
/// lefdef/def_io.h extended with per-net `+ ROUTED` regular wiring
/// statements carrying the router's kept geometry.
///
/// This lives in `route` (not `lefdef`) because it consumes
/// `route::NetGeometry` — the lefdef layer sits below route in the
/// architecture manifest (tools/lint/layers.txt) and must not know about
/// routing results.
#pragma once

#include <iosfwd>
#include <vector>

#include "db/design.h"
#include "route/result.h"

namespace cpr::route {

/// Emits the design with per-net `+ ROUTED` statements (DEF 5.8 regular
/// wiring syntax: one `LAYER ( x y ) ( x y )` polyline point pair per
/// straight segment, plus `VIA` records). `geometry` is indexed like
/// `Design::nets` (see `route::NegotiationOptions::keepGeometry`).
void writeRoutedDef(const db::Design& design,
                    const std::vector<NetGeometry>& geometry,
                    std::ostream& os);

}  // namespace cpr::route
