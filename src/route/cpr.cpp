#include "route/cpr.h"

#include <chrono>

namespace cpr::route {

CprResult routeCpr(const db::Design& design, const CprOptions& opts) {
  using Clock = std::chrono::steady_clock;
  CprResult out;
  const auto t0 = Clock::now();
  out.plan = core::optimizePinAccess(design, opts.pinAccess);
  out.pinAccessSeconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.routing = routeNegotiated(design, &out.plan, opts.routing);
  return out;
}

}  // namespace cpr::route
