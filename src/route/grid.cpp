#include "route/grid.h"

namespace cpr::route {

RoutingGrid::RoutingGrid(const db::Design& design,
                         const core::PinAccessPlan* plan)
    : w_(design.width()), h_(design.gridHeight()) {
  const std::size_t plane = static_cast<std::size_t>(planeSize());
  blocked_.assign(2 * plane, 0);
  pinNet_.assign(plane, geom::kInvalidIndex);
  occ_.assign(2 * plane, 0);
  hist_.assign(2 * plane, 0.0F);
  viaNet_.assign(plane, geom::kInvalidIndex);
  viaCount_.assign(plane, 0);

  for (const db::Blockage& b : design.blockages()) {
    if (b.layer == db::Layer::M1) continue;
    const std::size_t base =
        b.layer == db::Layer::M2 ? 0 : plane;
    for (Coord y = b.shape.y.lo; y <= b.shape.y.hi; ++y) {
      for (Coord x = b.shape.x.lo; x <= b.shape.x.hi; ++x) {
        blocked_[base + static_cast<std::size_t>(y) * static_cast<std::size_t>(w_) +
                 static_cast<std::size_t>(x)] = 1;
      }
    }
  }

  for (std::size_t pid = 0; pid < design.pins().size(); ++pid) {
    const db::Pin& p = design.pins()[pid];
    for (Coord y = p.shape.y.lo; y <= p.shape.y.hi; ++y) {
      for (Coord x = p.shape.x.lo; x <= p.shape.x.hi; ++x) {
        pinNet_[static_cast<std::size_t>(y) * static_cast<std::size_t>(w_) +
                static_cast<std::size_t>(x)] = p.net;
      }
    }
  }

  if (plan) {
    intervalNet_.assign(plane, geom::kInvalidIndex);
    for (std::size_t pid = 0; pid < plan->routes.size(); ++pid) {
      const core::PinRoute& r = plan->routes[pid];
      if (!r.valid()) continue;
      const Index net = design.pins()[pid].net;
      for (Coord x = r.span.lo; x <= r.span.hi; ++x) {
        intervalNet_[static_cast<std::size_t>(r.track) *
                         static_cast<std::size_t>(w_) +
                     static_cast<std::size_t>(x)] = net;
      }
    }
  }
}

long RoutingGrid::congestedNodeCount() const {
  long count = 0;
  for (const std::uint16_t o : occ_) count += o > 1 ? 1 : 0;
  return count;
}

void RoutingGrid::addVia(Coord x, Coord y, Index net) {
  const std::size_t at = static_cast<std::size_t>(y) *
                             static_cast<std::size_t>(w_) +
                         static_cast<std::size_t>(x);
  ++viaCount_[at];
  viaNet_[at] = net;
}

void RoutingGrid::removeVia(Coord x, Coord y, Index net) {
  const std::size_t at = static_cast<std::size_t>(y) *
                             static_cast<std::size_t>(w_) +
                         static_cast<std::size_t>(x);
  if (viaCount_[at] > 0) --viaCount_[at];
  if (viaCount_[at] == 0) {
    viaNet_[at] = geom::kInvalidIndex;
  } else {
    viaNet_[at] = net;  // best effort; exact owner tracking not needed
  }
}

bool RoutingGrid::viaForbidden(Coord x, Coord y, Index net) const {
  // Same-track check, mirroring the DRC via-spacing rule.
  for (Coord dx = -1; dx <= 1; ++dx) {
    const Coord nx = x + dx;
    if (!inside(nx, y)) continue;
    const std::size_t at = static_cast<std::size_t>(y) *
                               static_cast<std::size_t>(w_) +
                           static_cast<std::size_t>(nx);
    if (viaCount_[at] > 0 && viaNet_[at] != net) return true;
  }
  return false;
}

}  // namespace cpr::route
