/// \file grid.h
/// The unidirectional routing grid: M2 (horizontal) and M3 (vertical) nodes
/// over the die, with blockage, pin-projection, interval-blockage,
/// occupancy, history-cost and via maps.
///
/// Node addressing: a routable node is (layer, x, y) with layer ∈ {M2, M3},
/// x ∈ [0, width), y ∈ [0, height) (y is the global M2 track index; M3 uses
/// the same y granularity so a V2 via joins (M2,x,y)–(M3,x,y)). Nodes pack
/// into a dense int id = layer*W*H + y*W + x for flat-array state.
#pragma once

#include <cstdint>
#include <vector>

#include "core/optimizer.h"
#include "db/design.h"
#include "geom/types.h"

namespace cpr::route {

using geom::Coord;
using geom::Index;

enum class RLayer : std::uint8_t { M2 = 0, M3 = 1 };

struct Node {
  RLayer layer = RLayer::M2;
  Coord x = 0;
  Coord y = 0;

  friend constexpr bool operator==(const Node&, const Node&) = default;
};

class RoutingGrid {
 public:
  /// Builds static state from the design: M2/M3 blockages and the
  /// projection of every pin onto M2 (pin x-range × track-range). When
  /// `plan` is non-null, each assigned pin access interval is also recorded
  /// so routers can treat other nets' intervals as blockages (Section 4).
  RoutingGrid(const db::Design& design, const core::PinAccessPlan* plan);

  [[nodiscard]] Coord width() const { return w_; }
  [[nodiscard]] Coord height() const { return h_; }
  [[nodiscard]] int numNodes() const { return 2 * planeSize(); }
  [[nodiscard]] int planeSize() const { return static_cast<int>(w_) * h_; }

  [[nodiscard]] int id(const Node& n) const {
    return static_cast<int>(n.layer) * planeSize() + n.y * w_ + n.x;
  }
  [[nodiscard]] Node node(int id) const {
    const int plane = planeSize();
    const RLayer layer = id >= plane ? RLayer::M3 : RLayer::M2;
    const int rem = id % plane;
    return Node{layer, rem % w_, rem / w_};
  }
  [[nodiscard]] bool inside(Coord x, Coord y) const {
    return x >= 0 && x < w_ && y >= 0 && y < h_;
  }

  // ---- static obstacles ----
  [[nodiscard]] bool blocked(int id) const { return blocked_[static_cast<std::size_t>(id)]; }
  /// Net whose pin projects onto this M2 node (kInvalidIndex if none).
  [[nodiscard]] Index pinNetAt(int m2id) const { return pinNet_[static_cast<std::size_t>(m2id)]; }
  /// Net whose assigned access interval covers this M2 node.
  [[nodiscard]] Index intervalNetAt(int m2id) const {
    return intervalNet_.empty() ? geom::kInvalidIndex
                                : intervalNet_[static_cast<std::size_t>(m2id)];
  }

  // ---- congestion state ----
  [[nodiscard]] int occupancy(int id) const { return occ_[static_cast<std::size_t>(id)]; }
  void addOcc(int id) { ++occ_[static_cast<std::size_t>(id)]; }
  void removeOcc(int id) { --occ_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] float history(int id) const { return hist_[static_cast<std::size_t>(id)]; }
  void addHistory(int id, float amount) { hist_[static_cast<std::size_t>(id)] += amount; }

  /// Number of nodes currently shared by more than one net.
  [[nodiscard]] long congestedNodeCount() const;

  // ---- via sites (for the forbidden-via-grid cost and via spacing DRC) ----
  /// Registers/unregisters a V1 or V2 via of `net` at column x, track y.
  void addVia(Coord x, Coord y, Index net);
  void removeVia(Coord x, Coord y, Index net);
  /// True when a different net owns a via within Chebyshev distance 1 —
  /// the router charges the paper's forbidden grid cost (10) there.
  [[nodiscard]] bool viaForbidden(Coord x, Coord y, Index net) const;

 private:
  Coord w_ = 0;
  Coord h_ = 0;
  std::vector<std::uint8_t> blocked_;   ///< per node
  std::vector<Index> pinNet_;           ///< per M2 node
  std::vector<Index> intervalNet_;      ///< per M2 node (empty w/o plan)
  std::vector<std::uint16_t> occ_;      ///< per node
  std::vector<float> hist_;             ///< per node
  std::vector<Index> viaNet_;           ///< per (x,y): owning net or invalid
  std::vector<std::uint8_t> viaCount_;  ///< per (x,y)
};

}  // namespace cpr::route
