/// \file sequential_router.h
/// Sequential pin-access-planning baseline (the PARR scheme of [12]).
///
/// Nets are routed one at a time over hard obstacles (no sharing is ever
/// allowed): shorter nets first, each attempt choosing greedy pin access on
/// the fly. A failing net is retried with a wider window, then *deferred*
/// (the paper's net-deferring / dynamic reordering); in later passes a
/// blocked net may rip up the nets occupying its cheapest probe path and
/// requeue them — the expensive sequential rip-up behaviour that Table 2's
/// runtime column quantifies. A final legalization pass reroutes
/// DRC-violating nets; nets still dirty count as unrouted.
#pragma once

#include "db/design.h"
#include "route/drc.h"
#include "route/maze.h"
#include "route/result.h"
#include "support/deadline.h"

namespace cpr::route {

struct SequentialOptions {
  Coord windowMargin = 12;
  int maxPasses = 4;        ///< deferral passes
  int maxRipsPerNet = 2;    ///< times one net may be ripped by a blocked net
  int legalizationPasses = 2;
  /// Failed nets retry with a die-spanning window — PARR "depends on
  /// detours" to finish nets, which is where its runtime goes (Section 5.2).
  bool globalRetry = true;
  MazeCosts costs;          ///< hardBlockOccupied is forced on
  DrcRules drc;
  /// Fill RoutingResult::geometry (see NegotiationOptions::keepGeometry).
  bool keepGeometry = false;
  /// Wall-clock budget (unset = none). Checked between queue pops and
  /// between legalization passes; when it fires, still-queued nets are
  /// marked failed (never half-routed) and `route.timeout` is counted.
  support::Deadline deadline;
};

[[nodiscard]] RoutingResult routeSequential(const db::Design& design,
                                            const SequentialOptions& opts = {});

}  // namespace cpr::route
