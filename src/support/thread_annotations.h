/// \file thread_annotations.h
/// Lock-discipline annotation vocabulary, consumed by two analyzers:
///
///   1. clang's `-Wthread-safety` pass, when the build opts in with
///      -DCPR_CLANG_THREAD_SAFETY (the dedicated CI job does; it builds
///      against libc++ with thread-safety-annotated std::mutex/lock_guard).
///      The macros then expand to the real capability attributes.
///   2. `cpr_lint`'s concurrency pass (tools/lint/concurrency.h), which
///      parses the macro names straight out of the token stream on every
///      build of every compiler. This is what keeps the discipline enforced
///      under g++, where the attributes cannot expand.
///
/// Vocabulary (DESIGN.md §15 "Concurrency discipline"):
///
///   CPR_GUARDED_BY(mu)   field is read/written only while `mu` is held
///   CPR_REQUIRES(mu)     caller must hold `mu` across the call
///   CPR_ACQUIRE(mu)      function takes `mu` and returns holding it
///   CPR_RELEASE(mu)      function releases `mu` before returning
///   CPR_EXCLUDES(mu)     function acquires `mu` itself; the caller must
///                        NOT hold it (non-recursive mutexes self-deadlock)
///
/// Lint-only markers (no clang attribute exists for these semantics):
///
///   CPR_MAY_BLOCK        on a mutex field whose critical sections are
///                        *allowed* to perform blocking calls — the mutex
///                        exists to serialize I/O (e.g. a per-connection
///                        write lock). Blocking under any other held lock
///                        still fires LOCK-BLOCKING-CALL.
///   CPR_THREAD_REAPER    on a std::thread field (or container of them):
///                        the declared parking place whose owner documents
///                        and implements the join discipline. A thread that
///                        is neither joined, detached, nor moved into an
///                        annotated reaper fires THREAD-LIFECYCLE.
///
/// CPR_NO_THREAD_SAFETY_ANALYSIS opts one function out of clang's pass —
/// needed wherever std::unique_lock + condition_variable::wait appear,
/// because libc++ does not annotate unique_lock. cpr_lint tracks
/// unique_lock regions itself, so the *lint* checks still run there.
#pragma once

#if defined(CPR_CLANG_THREAD_SAFETY) && defined(__clang__) && \
    defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CPR_TS_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef CPR_TS_ATTRIBUTE
#define CPR_TS_ATTRIBUTE(x)
#endif

#define CPR_GUARDED_BY(mu) CPR_TS_ATTRIBUTE(guarded_by(mu))
#define CPR_REQUIRES(...) CPR_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define CPR_ACQUIRE(...) CPR_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define CPR_RELEASE(...) CPR_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define CPR_EXCLUDES(...) CPR_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define CPR_NO_THREAD_SAFETY_ANALYSIS \
  CPR_TS_ATTRIBUTE(no_thread_safety_analysis)

// Lint-only markers: cpr_lint reads the spelling from the token stream;
// clang has no corresponding attribute, so they always expand to nothing.
#define CPR_MAY_BLOCK
#define CPR_THREAD_REAPER
