#include "support/contracts.h"

#include <cstdio>
#include <cstdlib>

namespace cpr::support::detail {

[[noreturn]] void contractFail(const char* macro, const char* expr,
                               const char* file, int line) {
  // The message is assembled before any I/O so both exits carry it intact.
  std::string what = std::string(macro) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
#if defined(NDEBUG) && !defined(CPR_CONTRACTS_FATAL)
  throw ContractViolation(what);
#else
  std::fprintf(stderr, "%s\n", what.c_str());
  std::fflush(stderr);
  std::abort();
#endif
}

}  // namespace cpr::support::detail
