/// \file status.h
/// Lightweight error channel for the fault-tolerant pipeline.
///
/// Panel solves and other degradable stages report a `Status` instead of
/// throwing: exceptions are caught at the stage boundary (worker threads
/// must never see one escape — that would call std::terminate) and folded
/// into one of five codes. `Outcome<T>` carries a value *and* a status, so
/// a timed-out solve can still hand back its best legal incumbent while
/// flagging that the budget fired.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace cpr::support {

enum class StatusCode {
  Ok,          ///< completed normally; result is legal and final
  Degraded,    ///< a legal result exists but quality was sacrificed
  TimedOut,    ///< a Deadline fired; result is the best incumbent so far
  Infeasible,  ///< no result exists (e.g. every candidate blocked)
  Failed,      ///< an exception or internal error; result is unusable
  /// The work was never attempted: admission control rejected it, load
  /// shedding dropped it, or shutdown drained it from a queue. Distinct
  /// from TimedOut (which ran and kept its incumbent) — a cancelled job
  /// carries no result at all.
  Cancelled,
};

[[nodiscard]] std::string_view statusCodeName(StatusCode code);

/// Inverse of `statusCodeName`, for wire formats that carry the name (the
/// serve protocol's "status" field). Unknown names map to Failed — the
/// conservative reading of a status this build does not know.
[[nodiscard]] StatusCode statusCodeFromName(std::string_view name);

class [[nodiscard]] Status {
 public:
  Status() = default;  // Ok

  [[nodiscard]] static Status ok() { return Status(); }
  [[nodiscard]] static Status degraded(std::string message = {}) {
    return Status(StatusCode::Degraded, std::move(message));
  }
  [[nodiscard]] static Status timedOut(std::string message = {}) {
    return Status(StatusCode::TimedOut, std::move(message));
  }
  [[nodiscard]] static Status infeasible(std::string message = {}) {
    return Status(StatusCode::Infeasible, std::move(message));
  }
  [[nodiscard]] static Status failed(std::string message = {}) {
    return Status(StatusCode::Failed, std::move(message));
  }
  [[nodiscard]] static Status cancelled(std::string message = {}) {
    return Status(StatusCode::Cancelled, std::move(message));
  }

  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] bool isOk() const { return code_ == StatusCode::Ok; }
  /// True for every code that still comes with a usable (legal) value:
  /// Ok, Degraded, and TimedOut-with-incumbent all qualify; whether a value
  /// is actually attached is the Outcome's business.
  [[nodiscard]] bool isFailure() const {
    return code_ == StatusCode::Failed || code_ == StatusCode::Infeasible ||
           code_ == StatusCode::Cancelled;
  }

  /// "ok", "degraded (message)", ...
  [[nodiscard]] std::string toString() const;

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::Ok;
  std::string message_;
};

/// A value plus the status of the computation that produced it. Unlike
/// `std::expected`, failure outcomes still hold a (default-constructed or
/// partial) value, because degradable stages often have a best-effort
/// result worth inspecting even when the status is not Ok.
template <typename T>
class [[nodiscard]] Outcome {
 public:
  Outcome() = default;
  /* implicit */ Outcome(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Outcome(Status status, T value)
      : status_(std::move(status)), value_(std::move(value)) {}
  /* implicit */ Outcome(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] StatusCode code() const { return status_.code(); }
  [[nodiscard]] bool isOk() const { return status_.isOk(); }

  [[nodiscard]] T& value() { return value_; }
  [[nodiscard]] const T& value() const { return value_; }
  [[nodiscard]] T&& take() { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace cpr::support
