/// \file alloc_guard.cpp
/// Opt-in global operator new/delete replacement that reports every
/// allocation to the hot-region counter (alloc_hook.h). Built as its own
/// static library (`cpr_alloc_guard`) and linked ONLY by the bench harness
/// and the allocation-regression test; production binaries keep the
/// default allocator. Replacement operators are program-global, so linking
/// this TU anywhere instruments the whole binary.
#include <cstddef>
#include <cstdlib>
#include <new>

#include "support/alloc_hook.h"

namespace {

void* countedAlloc(std::size_t size, std::size_t align) {
  cpr::support::alloc::noteAlloc();
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size, 0); }
void* operator new[](std::size_t size) { return countedAlloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return countedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return countedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return countedAlloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return countedAlloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
