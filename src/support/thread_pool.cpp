#include "support/thread_pool.h"

namespace cpr::support {

int ThreadPool::clampThreads(int requested) {
  if (requested > 0) return requested;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(int threads) : size_(clampThreads(threads)) {
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int w = 1; w < size_; ++w)
    workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::runShare(int worker) {
  for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
       i < count_; i = next_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      (*body_)(worker, i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      // Abandon the remaining items: park the cursor past the end so every
      // worker (including the caller) drains out promptly.
      next_.store(count_, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::runTask(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!taskError_) taskError_ = std::current_exception();
  }
}

void ThreadPool::workerLoop(int worker) {
  long seen = 0;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] {
        return stop_ || generation_ != seen || !tasks_.empty();
      });
      // Shutdown wins over queued work: whatever is still in tasks_ is
      // discarded unrun (see ~ThreadPool). A task already dequeued below
      // still completes before its worker observes stop_.
      if (stop_) return;
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++taskBusy_;
      } else {
        seen = generation_;
      }
    }
    if (task) {
      runTask(task);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --taskBusy_;
      }
      done_.notify_all();
      continue;
    }
    runShare(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
    }
    done_.notify_one();
  }
}

void ThreadPool::parallelFor(
    std::size_t count, const std::function<void(int, std::size_t)>& body) {
  if (count == 0) return;
  std::exception_ptr pending;
  if (size_ == 1) {
    // Inline fast path: no signalling; the lock below only claims the
    // exception slot runShare may have filled.
    count_ = count;
    body_ = &body;
    next_.store(0, std::memory_order_relaxed);
    runShare(0);
    std::lock_guard<std::mutex> lock(mu_);
    pending = error_;
    error_ = nullptr;
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      count_ = count;
      body_ = &body;
      next_.store(0, std::memory_order_relaxed);
      error_ = nullptr;
      busy_ = size_ - 1;
      ++generation_;
    }
    wake_.notify_all();
    runShare(0);
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&] { return busy_ == 0; });
    pending = error_;
    error_ = nullptr;
  }
  body_ = nullptr;
  if (pending) std::rethrow_exception(pending);
}

bool ThreadPool::post(std::function<void()> task) {
  if (size_ == 1) {
    runTask(task);
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    tasks_.push_back(std::move(task));
  }
  wake_.notify_one();
  return true;
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [&] { return tasks_.empty() && taskBusy_ == 0; });
  if (taskError_) {
    std::exception_ptr e = taskError_;
    taskError_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace cpr::support
