/// \file hot_annotations.h
/// Hot-path discipline annotation vocabulary, consumed by `cpr_lint`'s
/// call-graph pass (tools/lint/hotpath.h). The markers carry no compiler
/// semantics — they expand to nothing on every compiler — but the linter
/// reads the spellings out of the token stream on every build and enforces
/// the performance contract they declare (DESIGN.md §16 "Hot-path
/// discipline").
///
/// Vocabulary:
///
///   CPR_HOT        function is on a scaling-critical path (per-net maze
///                  search, per-panel kernel solve, wave scheduling). The
///                  linter checks the function body AND everything
///                  transitively reachable from it through intra-project
///                  call edges for heap allocation (HOT-ALLOC), throws
///                  outside a same-function try/catch (HOT-THROW), and
///                  blocking calls from tools/lint/blocking.txt
///                  (HOT-BLOCKING).
///   CPR_NOALLOC    standalone allocation boundary: the body is checked
///                  for HOT-ALLOC even when no CPR_HOT root reaches it,
///                  and the hot-closure walk stops here — the callee has
///                  its own (already checked) contract. Use it on leaf
///                  utilities shared by hot and cold code.
///   CPR_COLD_OK    sanctioned cold escape hatch: the function is excluded
///                  from the hot closure entirely (no checks, no descent).
///                  Reserve it for warmup/bind paths that allocate by
///                  design, instrumentation sinks, and measurement
///                  baselines (e.g. the ILP translation layer). Each use
///                  should say why in a comment.
///
/// Unlike per-line allow directives, these markers are the ONLY
/// escape hatches for the HOT-* rules: a suppression must rename the
/// contract (visible in the signature and in review), not hide a single
/// diagnostic line. The runtime cross-check (src/support/alloc_hook.h)
/// pins the same regions to zero allocations on the bench.
#pragma once

// Lint-only markers: cpr_lint reads the spelling from the token stream;
// no compiler attribute carries these semantics, so they always expand to
// nothing.
#define CPR_HOT
#define CPR_NOALLOC
#define CPR_COLD_OK
