/// \file alloc_hook.h
/// Runtime cross-check for the static hot-path discipline (DESIGN.md §16,
/// hot_annotations.h): a counting hook the bench harness arms to prove the
/// annotated hot regions really are heap-quiet.
///
/// Two halves, deliberately split:
///
///   1. This always-linked half: a thread-local region depth (RAII
///      `HotRegion` spans the allocation-free inner loops; `HotRegionPause`
///      suspends a region around sanctioned instrumentation like obs
///      flushes) plus a process-wide armed flag and counter. When nothing
///      arms the hook, a region open/close is two thread-local integer
///      writes — cheap enough to keep in the production hot loops.
///   2. An opt-in static library (`cpr_alloc_guard`, src/support/
///      alloc_guard.cpp) that replaces global operator new/delete and calls
///      `noteAlloc()` on every allocation. Only benches and the
///      allocation-regression test link it; production binaries keep the
///      default allocator.
///
/// The bench harness arms the hook, routes the digest-pinned `top` design,
/// and emits the counter as `pao.alloc.hot_path_allocs`; CI asserts 0. By
/// construction every sanctioned allocation (scratch bind/reserve warmup,
/// result assembly, instrumentation) happens *outside* an armed region, so
/// the expected count is exactly zero from the first run — there is no
/// cross-run warmup to forgive.
#pragma once

namespace cpr::support::alloc {

/// Arms/disarms process-wide counting. Off by default.
void arm(bool on) noexcept;
[[nodiscard]] bool armed() noexcept;

/// Allocations observed inside armed hot regions since the last reset.
[[nodiscard]] long hotRegionAllocs() noexcept;
void resetHotRegionAllocs() noexcept;

/// Called by the cpr_alloc_guard operator-new replacement on every
/// allocation; counts only when armed and inside a region on this thread.
void noteAlloc() noexcept;

/// True while the calling thread is inside an unpaused HotRegion.
[[nodiscard]] bool inHotRegion() noexcept;

/// RAII span declaring "this thread allocates nothing until scope exit".
/// Nests; the thread is hot while any region is open and no pause is.
class HotRegion {
 public:
  HotRegion() noexcept;
  ~HotRegion();
  HotRegion(const HotRegion&) = delete;
  HotRegion& operator=(const HotRegion&) = delete;
};

/// RAII suspension of the current thread's hot regions, for sanctioned
/// cold islands inside a hot span (obs counter flushes, error reporting).
class HotRegionPause {
 public:
  HotRegionPause() noexcept;
  ~HotRegionPause();
  HotRegionPause(const HotRegionPause&) = delete;
  HotRegionPause& operator=(const HotRegionPause&) = delete;
};

}  // namespace cpr::support::alloc
