/// \file deadline.h
/// Wall-clock budget type shared by every long-running stage.
///
/// A `Deadline` is a point on the steady clock; the default-constructed
/// value is *unset* and never expires. Stages that accept a deadline poll
/// `expired()` at their natural checkpoints (one subgradient iteration, one
/// B&B node batch, one rip-up pass) and wind down gracefully — they return
/// their best legal incumbent instead of throwing or blocking.
///
/// Deadlines compose: `soonerOf(a, b)` picks the tighter of two budgets and
/// `sub(seconds)` carves a per-panel sub-budget out of a run-level deadline
/// (the result never outlives the parent). This replaces the former ad-hoc
/// `timeLimitSeconds = 1e9` sentinel doubles scattered through the solver
/// option structs.
#pragma once

#include <chrono>
#include <limits>

namespace cpr::support {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unset: never expires.
  constexpr Deadline() = default;

  /// Expires `seconds` from now. Non-positive budgets produce a deadline
  /// that is already expired (useful for "no budget left" propagation).
  [[nodiscard]] static Deadline after(double seconds) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }

  /// Expires at the given steady-clock instant.
  [[nodiscard]] static Deadline at(Clock::time_point when) {
    return Deadline(when);
  }

  [[nodiscard]] bool isSet() const { return set_; }

  /// Seconds until expiry: +infinity when unset, <= 0 when expired.
  [[nodiscard]] double remaining() const {
    if (!set_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(when_ - Clock::now()).count();
  }

  [[nodiscard]] bool expired() const {
    return set_ && Clock::now() >= when_;
  }

  /// The tighter of two deadlines; unset values never win.
  [[nodiscard]] static Deadline soonerOf(Deadline a, Deadline b) {
    if (!a.set_) return b;
    if (!b.set_) return a;
    return a.when_ <= b.when_ ? a : b;
  }

  /// A sub-budget of `seconds` carved out of this deadline: expires at
  /// now + seconds, but never after the parent. Used by the optimizer to
  /// hand each panel its own slice of the run budget.
  [[nodiscard]] Deadline sub(double seconds) const {
    return soonerOf(*this, after(seconds));
  }

 private:
  explicit Deadline(Clock::time_point when) : when_(when), set_(true) {}

  Clock::time_point when_{};
  bool set_ = false;
};

}  // namespace cpr::support
