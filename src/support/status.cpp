#include "support/status.h"

namespace cpr::support {

std::string_view statusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::Degraded: return "degraded";
    case StatusCode::TimedOut: return "timed_out";
    case StatusCode::Infeasible: return "infeasible";
    case StatusCode::Failed: return "failed";
  }
  return "unknown";
}

std::string Status::toString() const {
  std::string out(statusCodeName(code_));
  if (!message_.empty()) {
    out += " (";
    out += message_;
    out += ")";
  }
  return out;
}

}  // namespace cpr::support
