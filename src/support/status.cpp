#include "support/status.h"

namespace cpr::support {

std::string_view statusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::Degraded: return "degraded";
    case StatusCode::TimedOut: return "timed_out";
    case StatusCode::Infeasible: return "infeasible";
    case StatusCode::Failed: return "failed";
    case StatusCode::Cancelled: return "cancelled";
  }
  return "unknown";
}

StatusCode statusCodeFromName(std::string_view name) {
  if (name == "ok") return StatusCode::Ok;
  if (name == "degraded") return StatusCode::Degraded;
  if (name == "timed_out") return StatusCode::TimedOut;
  if (name == "infeasible") return StatusCode::Infeasible;
  if (name == "cancelled") return StatusCode::Cancelled;
  return StatusCode::Failed;
}

std::string Status::toString() const {
  std::string out(statusCodeName(code_));
  if (!message_.empty()) {
    out += " (";
    out += message_;
    out += ")";
  }
  return out;
}

}  // namespace cpr::support
