/// \file thread_pool.h
/// Reusable worker pool with a blocking `parallelFor`, shared by the panel
/// optimizer and the negotiation router.
///
/// A pool owns `size() - 1` persistent worker threads; the calling thread
/// participates as worker 0, so `ThreadPool(1)` runs everything inline with
/// no thread machinery at all. `parallelFor(count, body)` hands out item
/// indices through an atomic cursor (dynamic scheduling — cheap items and
/// expensive items mix freely), blocks until every item ran, and rethrows
/// the first exception a body raised (remaining items are abandoned, the
/// pool stays usable). The worker index passed to the body is stable in
/// [0, size()) for the duration of one `parallelFor`, which is what lets
/// callers keep one scratch arena per worker and reuse it across calls.
///
/// Determinism contract: the pool itself never reorders *results* — callers
/// write to per-item slots and merge in item order afterwards, exactly the
/// PanelKernel discipline. Nothing here depends on the thread count except
/// wall-clock time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cpr::support {

class ThreadPool {
 public:
  /// `threads <= 0` asks for one worker per hardware thread; the result is
  /// always clamped to at least 1.
  explicit ThreadPool(int threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Number of workers, including the calling thread. Always >= 1.
  [[nodiscard]] int size() const { return size_; }

  /// Resolves a requested thread count the way the pool constructor does:
  /// <= 0 means hardware concurrency, and the result is at least 1.
  [[nodiscard]] static int clampThreads(int requested);

  /// Runs `body(worker, item)` for every item in [0, count). Blocks until
  /// all items completed (or an exception abandoned the rest). `worker` is
  /// in [0, size()); item order within a worker is unspecified. The first
  /// exception thrown by a body is rethrown here after the pool quiesces.
  /// Not reentrant: a body must not call parallelFor on the same pool.
  void parallelFor(std::size_t count,
                   const std::function<void(int, std::size_t)>& body);

 private:
  void workerLoop(int worker);
  /// Pulls items off the shared cursor until the range is exhausted; stores
  /// the first exception and abandons the remaining items.
  void runShare(int worker);

  int size_ = 1;
  std::vector<std::thread> workers_;  ///< size_ - 1 spawned threads

  std::mutex mu_;
  std::condition_variable wake_;  ///< signals a new job (or shutdown)
  std::condition_variable done_;  ///< signals spawned workers finished a job
  long generation_ = 0;           ///< job sequence number, guarded by mu_
  int busy_ = 0;                  ///< spawned workers still in runShare
  bool stop_ = false;

  // Current job; set under mu_ before the generation bump, read by workers
  // only after they observe the bump.
  std::atomic<std::size_t> next_{0};
  std::size_t count_ = 0;
  const std::function<void(int, std::size_t)>* body_ = nullptr;
  std::exception_ptr error_;  ///< first body exception, guarded by mu_
};

}  // namespace cpr::support
