/// \file thread_pool.h
/// Reusable worker pool with a blocking `parallelFor`, shared by the panel
/// optimizer and the negotiation router.
///
/// A pool owns `size() - 1` persistent worker threads; the calling thread
/// participates as worker 0, so `ThreadPool(1)` runs everything inline with
/// no thread machinery at all. `parallelFor(count, body)` hands out item
/// indices through an atomic cursor (dynamic scheduling — cheap items and
/// expensive items mix freely), blocks until every item ran, and rethrows
/// the first exception a body raised (remaining items are abandoned, the
/// pool stays usable). The worker index passed to the body is stable in
/// [0, size()) for the duration of one `parallelFor`, which is what lets
/// callers keep one scratch arena per worker and reuse it across calls.
///
/// Determinism contract: the pool itself never reorders *results* — callers
/// write to per-item slots and merge in item order afterwards, exactly the
/// PanelKernel discipline. Nothing here depends on the thread count except
/// wall-clock time.
///
/// Besides the blocking `parallelFor`, the pool accepts fire-and-forget
/// tasks through `post` (the serve layer's job-execution seam). The two
/// modes share workers but are meant for different owners: a pool used as a
/// task executor should not also run `parallelFor` waves, because a worker
/// stuck in a long task would stall the wave. Shutdown is deliberately
/// non-draining — see `~ThreadPool`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/thread_annotations.h"

namespace cpr::support {

class ThreadPool {
 public:
  /// `threads <= 0` asks for one worker per hardware thread; the result is
  /// always clamped to at least 1.
  explicit ThreadPool(int threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Shutdown is prompt, not draining: tasks still *queued* via `post` are
  /// destroyed unrun (their owners must tolerate abandonment — the serve
  /// layer cancels queued jobs explicitly before tearing its pool down),
  /// while tasks already *running* complete and are joined. A task that
  /// throws during this final drain is contained exactly like any other
  /// task exception: captured, never allowed to escape into `terminate`,
  /// and simply discarded because no `drain()` call remains to claim it.
  ~ThreadPool();

  /// Number of workers, including the calling thread. Always >= 1.
  [[nodiscard]] int size() const { return size_; }

  /// Resolves a requested thread count the way the pool constructor does:
  /// <= 0 means hardware concurrency, and the result is at least 1.
  [[nodiscard]] static int clampThreads(int requested);

  /// Runs `body(worker, item)` for every item in [0, count). Blocks until
  /// all items completed (or an exception abandoned the rest). `worker` is
  /// in [0, size()); item order within a worker is unspecified. The first
  /// exception thrown by a body is rethrown here after the pool quiesces.
  /// Not reentrant: a body must not call parallelFor on the same pool.
  void parallelFor(std::size_t count,
                   const std::function<void(int, std::size_t)>& body)
      CPR_EXCLUDES(mu_) CPR_NO_THREAD_SAFETY_ANALYSIS;

  /// Enqueues a fire-and-forget task for the spawned workers. Returns false
  /// (dropping the task) once shutdown has begun. On a pool of size 1 there
  /// are no spawned workers, so the task runs inline before `post` returns.
  /// Task exceptions never propagate out of a worker: the first one is
  /// captured and surfaces from the next `drain()`.
  bool post(std::function<void()> task) CPR_EXCLUDES(mu_);

  /// Blocks until every task posted so far finished (queue empty, no worker
  /// mid-task), then rethrows the first captured task exception, clearing
  /// it; the pool stays usable either way. Note this waits for *tasks*, not
  /// for `parallelFor` (which is synchronous already).
  void drain() CPR_EXCLUDES(mu_) CPR_NO_THREAD_SAFETY_ANALYSIS;

 private:
  void workerLoop(int worker) CPR_EXCLUDES(mu_) CPR_NO_THREAD_SAFETY_ANALYSIS;
  /// Pulls items off the shared cursor until the range is exhausted; stores
  /// the first exception and abandons the remaining items.
  void runShare(int worker);
  /// Runs one posted task, capturing the first exception into taskError_.
  void runTask(const std::function<void()>& task);

  int size_ = 1;
  /// size_ - 1 spawned threads; joined by the destructor after stop_.
  std::vector<std::thread> workers_ CPR_THREAD_REAPER;

  std::mutex mu_;
  std::condition_variable wake_;  ///< signals a new job (or shutdown)
  std::condition_variable done_;  ///< signals spawned workers finished a job
  long generation_ CPR_GUARDED_BY(mu_) = 0;  ///< job sequence number
  /// Spawned workers still in runShare.
  int busy_ CPR_GUARDED_BY(mu_) = 0;
  bool stop_ CPR_GUARDED_BY(mu_) = false;

  // Current job; set under mu_ before the generation bump, read by workers
  // only after they observe the bump.
  std::atomic<std::size_t> next_{0};
  std::size_t count_ = 0;
  const std::function<void(int, std::size_t)>* body_ = nullptr;
  std::exception_ptr error_ CPR_GUARDED_BY(mu_);  ///< first body exception

  // Posted-task state, guarded by mu_. Destruction discards tasks_ unrun.
  std::deque<std::function<void()>> tasks_ CPR_GUARDED_BY(mu_);
  /// Workers currently inside a posted task.
  int taskBusy_ CPR_GUARDED_BY(mu_) = 0;
  /// First task exception.
  std::exception_ptr taskError_ CPR_GUARDED_BY(mu_);
};

}  // namespace cpr::support
