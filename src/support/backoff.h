/// \file backoff.h
/// Exponential backoff with deterministic jitter, for retry schedulers.
///
/// A `BackoffPolicy` maps a retry attempt number to a delay: the base delay
/// doubles (by default) per attempt, saturates at a cap, and is then
/// perturbed by +/- `jitterFraction` so that a burst of jobs failing at the
/// same instant does not retry in lockstep and re-create the very overload
/// that failed them. The jitter is a pure function of `(seed, attempt)` —
/// splitmix64, the same finalizer the chaos tests use — so a given job's
/// retry schedule is reproducible, which keeps the serve chaos harness
/// deterministic enough to assert on.
#pragma once

#include <algorithm>
#include <cstdint>

namespace cpr::support {

struct BackoffPolicy {
  double baseSeconds = 0.05;   ///< delay before the first retry
  double multiplier = 2.0;     ///< growth per further attempt
  double maxSeconds = 2.0;     ///< saturation cap (pre-jitter)
  double jitterFraction = 0.2; ///< delay is scaled by 1 +/- this

  /// Delay before retry `attempt` (1 = first retry). `noise` seeds the
  /// jitter; pass something job-specific (an id hash) so concurrent
  /// retries spread out. Non-positive attempts are treated as 1.
  [[nodiscard]] double delaySeconds(int attempt, std::uint64_t noise) const {
    double d = baseSeconds;
    for (int a = 1; a < attempt && d < maxSeconds; ++a) d *= multiplier;
    d = std::min(d, maxSeconds);
    if (jitterFraction <= 0.0) return d;
    // splitmix64 finalizer over (noise, attempt): deterministic jitter.
    std::uint64_t x = noise + 0x9e3779b97f4a7c15ULL *
                                  static_cast<std::uint64_t>(std::max(attempt, 1));
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    // Map to [-1, 1] then scale into the jitter band.
    const double unit =
        (static_cast<double>(x >> 11) / 9007199254740992.0) * 2.0 - 1.0;
    return d * (1.0 + jitterFraction * unit);
  }
};

}  // namespace cpr::support
