#include "support/alloc_hook.h"

#include <atomic>

namespace cpr::support::alloc {
namespace {

// Process-wide switch and tally. Relaxed ordering is enough: the harness
// arms the hook, runs the workload, joins its workers, then reads the
// counter — the thread join supplies the ordering.
std::atomic<bool> gArmed{false};
std::atomic<long> gHotAllocs{0};

// Per-thread region bookkeeping. `tDepth` counts open HotRegions, `tPaused`
// counts open HotRegionPauses; the thread is hot iff at least one region is
// open and no pause is.
thread_local int tDepth = 0;
thread_local int tPaused = 0;

}  // namespace

void arm(bool on) noexcept { gArmed.store(on, std::memory_order_relaxed); }

bool armed() noexcept { return gArmed.load(std::memory_order_relaxed); }

long hotRegionAllocs() noexcept {
  return gHotAllocs.load(std::memory_order_relaxed);
}

void resetHotRegionAllocs() noexcept {
  gHotAllocs.store(0, std::memory_order_relaxed);
}

bool inHotRegion() noexcept { return tDepth > 0 && tPaused == 0; }

void noteAlloc() noexcept {
  if (inHotRegion() && gArmed.load(std::memory_order_relaxed)) {
    gHotAllocs.fetch_add(1, std::memory_order_relaxed);
  }
}

HotRegion::HotRegion() noexcept { ++tDepth; }
HotRegion::~HotRegion() { --tDepth; }

HotRegionPause::HotRegionPause() noexcept { ++tPaused; }
HotRegionPause::~HotRegionPause() { --tPaused; }

}  // namespace cpr::support::alloc
