/// \file contracts.h
/// Project contract macros guarding index math on the hot paths.
///
/// Three macros, one failure funnel:
///
///   CPR_CHECK(cond)    always compiled in. The guard of record for cheap,
///                      cold-path structural invariants (once per panel
///                      compile, once per decode).
///   CPR_DCHECK(cond)   compiled in when NDEBUG is not defined (Debug and
///                      sanitizer builds); stripped to a type-checked no-op
///                      in Release/RelWithDebInfo so the CSR hot loops keep
///                      their measured throughput. The guard for per-element
///                      bounds in kernel/scratch/ILP index math.
///   CPR_UNREACHABLE()  marks a branch the surrounding invariants exclude.
///                      Debug builds fail loudly; NDEBUG builds lower to
///                      __builtin_unreachable().
///
/// Failure semantics (see DESIGN.md "Static analysis & contracts"): in
/// builds without NDEBUG a violated contract prints the expression plus
/// file:line to stderr and aborts — crisp for death tests and debuggers. In
/// NDEBUG builds a violated CPR_CHECK throws `ContractViolation`
/// (a std::logic_error), which the non-throwing `Solver::trySolve` panel
/// boundary converts to StatusCode::Failed so the degradation ladder rescues
/// the panel instead of the process dying — the contract becomes
/// Status-returning exactly at the boundary that is specified never to
/// throw.
#pragma once

#include <stdexcept>
#include <string>

namespace cpr::support {

/// Thrown by a violated always-on contract in NDEBUG builds. Inherits
/// std::logic_error so the trySolve boundary (and any std::exception net)
/// classifies it as a solver fault.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {

/// Shared failure funnel for all three macros. Never returns: aborts in
/// builds without NDEBUG, throws ContractViolation otherwise.
[[noreturn]] void contractFail(const char* macro, const char* expr,
                               const char* file, int line);

}  // namespace detail
}  // namespace cpr::support

#define CPR_CHECK(cond)                                                 \
  (static_cast<bool>(cond)                                              \
       ? static_cast<void>(0)                                           \
       : ::cpr::support::detail::contractFail("CPR_CHECK", #cond,       \
                                              __FILE__, __LINE__))

#if defined(NDEBUG) && !defined(CPR_ENABLE_DCHECKS)
// Type-checked but never evaluated: sizeof keeps `cond` a real expression
// (so stripped contracts cannot rot) without generating any code.
#define CPR_DCHECK(cond) static_cast<void>(sizeof((cond) ? 1 : 1))
#define CPR_UNREACHABLE() __builtin_unreachable()
#else
#define CPR_DCHECK(cond)                                                \
  (static_cast<bool>(cond)                                              \
       ? static_cast<void>(0)                                           \
       : ::cpr::support::detail::contractFail("CPR_DCHECK", #cond,      \
                                              __FILE__, __LINE__))
#define CPR_UNREACHABLE()                                               \
  ::cpr::support::detail::contractFail("CPR_UNREACHABLE",               \
                                       "control reached", __FILE__,     \
                                       __LINE__)
#endif
