#include "ilp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "ilp/tolerances.h"

namespace cpr::ilp {

namespace {

/// Dense simplex tableau. Columns are [structural | slack/surplus |
/// artificial | rhs]; rows are constraints. The objective row is kept in
/// canonical form (reduced costs; rhs cell holds -z).
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), t_((rows + 1) * (cols + 1), 0.0),
        basis_(rows, -1), banned_(cols, false) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  double& at(std::size_t r, std::size_t c) { return t_[r * (cols_ + 1) + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return t_[r * (cols_ + 1) + c];
  }
  double& rhs(std::size_t r) { return at(r, cols_); }
  double& obj(std::size_t c) { return at(rows_, c); }
  [[nodiscard]] double obj(std::size_t c) const { return at(rows_, c); }
  double& objRhs() { return at(rows_, cols_); }

  std::vector<int>& basis() { return basis_; }
  std::vector<char>& banned() { return banned_; }

  /// Canonicalizes the objective row for costs `c` given the current basis:
  /// obj[j] = c[j] - sum_i c[basis[i]] * T[i][j], objRhs = -z.
  void priceObjective(const std::vector<double>& c) {
    for (std::size_t j = 0; j <= cols_; ++j) obj(j) = j < c.size() ? c[j] : 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      const int b = basis_[i];
      const double cb = b >= 0 && static_cast<std::size_t>(b) < c.size()
                            ? c[static_cast<std::size_t>(b)]
                            : 0.0;
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j <= cols_; ++j) at(rows_, j) -= cb * at(i, j);
    }
  }

  void pivot(std::size_t r, std::size_t c) {
    const double piv = at(r, c);
    assert(std::abs(piv) > 0.0);
    const double inv = 1.0 / piv;
    for (std::size_t j = 0; j <= cols_; ++j) at(r, j) *= inv;
    at(r, c) = 1.0;
    for (std::size_t i = 0; i <= rows_; ++i) {
      if (i == r) continue;
      const double f = at(i, c);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j <= cols_; ++j) at(i, j) -= f * at(r, j);
      at(i, c) = 0.0;
    }
    basis_[r] = static_cast<int>(c);
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> t_;
  std::vector<int> basis_;
  std::vector<char> banned_;
};

enum class PivotOutcome { Optimal, Unbounded, IterationLimit, TimeLimit };

/// Runs primal simplex iterations on a canonicalized tableau; every pivot
/// performed is accumulated into `pivots`.
PivotOutcome iterate(Tableau& t, long maxIters, double eps, long& pivots,
                     support::Deadline deadline) {
  long degenerateRun = 0;
  for (long it = 0; it < maxIters; ++it) {
    if (it % tol::kDeadlineCheckStride == 0 && deadline.expired())
      return PivotOutcome::TimeLimit;
    const bool bland = degenerateRun > tol::kDegenerateRunLimit;
    // Entering column: positive reduced cost (maximization).
    std::size_t enter = t.cols();
    double best = eps;
    for (std::size_t j = 0; j < t.cols(); ++j) {
      if (t.banned()[j]) continue;
      const double rj = t.obj(j);
      if (rj > (bland ? eps : best)) {
        enter = j;
        best = rj;
        if (bland) break;
      }
    }
    if (enter == t.cols()) return PivotOutcome::Optimal;

    // Ratio test.
    std::size_t leave = t.rows();
    double bestRatio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.rows(); ++i) {
      const double a = t.at(i, enter);
      if (a <= eps) continue;
      const double ratio = t.rhs(i) / a;
      if (ratio < bestRatio - eps ||
          (ratio < bestRatio + eps &&
           (leave == t.rows() || t.basis()[i] < t.basis()[leave]))) {
        bestRatio = ratio;
        leave = i;
      }
    }
    if (leave == t.rows()) return PivotOutcome::Unbounded;
    degenerateRun = bestRatio < eps ? degenerateRun + 1 : 0;
    t.pivot(leave, enter);
    ++pivots;
  }
  return PivotOutcome::IterationLimit;
}

}  // namespace

LpResult solveLp(const Model& m, const LpOptions& opts, const Fixing* fix,
                 support::Deadline deadline) {
  const std::size_t n = static_cast<std::size_t>(m.numVars());
  LpResult res;
  res.x.assign(n, 0.0);

  // Map free structural variables to tableau columns.
  std::vector<int> colOf(n, -1);
  std::size_t nFree = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (fix && (*fix)[v] >= 0) continue;
    colOf[v] = static_cast<int>(nFree++);
  }

  // Materialize rows: substitute fixings, normalize to rhs >= 0.
  struct Row {
    std::vector<std::pair<int, double>> a;  // (column, coef)
    Sense sense;
    double rhs;
  };
  std::vector<Row> rowsIn;
  rowsIn.reserve(static_cast<std::size_t>(m.numConstraints()) +
                 (opts.implicitUnitBounds ? 0 : nFree));
  for (const Constraint& c : m.constraints()) {
    Row r{{}, c.sense, c.rhs};
    for (const Term& term : c.terms) {
      const std::size_t v = static_cast<std::size_t>(term.var);
      if (fix && (*fix)[v] >= 0) {
        r.rhs -= term.coef * static_cast<double>((*fix)[v]);
      } else {
        r.a.emplace_back(colOf[v], term.coef);
      }
    }
    if (r.a.empty()) {
      // Fully substituted row: check consistency directly.
      const bool ok = (r.sense == Sense::LessEqual && 0.0 <= r.rhs + opts.eps) ||
                      (r.sense == Sense::GreaterEqual && 0.0 >= r.rhs - opts.eps) ||
                      (r.sense == Sense::Equal && std::abs(r.rhs) <= opts.eps);
      if (!ok) {
        res.status = LpStatus::Infeasible;
        return res;
      }
      continue;
    }
    rowsIn.push_back(std::move(r));
  }
  if (!opts.implicitUnitBounds) {
    for (std::size_t v = 0; v < n; ++v) {
      if (colOf[v] < 0) continue;
      rowsIn.push_back(Row{{{colOf[v], 1.0}}, Sense::LessEqual, 1.0});
    }
  }

  // Normalize rhs signs and count auxiliary columns.
  std::size_t nSlack = 0;
  std::size_t nArtif = 0;
  for (Row& r : rowsIn) {
    if (r.rhs < 0.0) {
      for (auto& [col, coef] : r.a) coef = -coef;
      r.rhs = -r.rhs;
      if (r.sense == Sense::LessEqual) r.sense = Sense::GreaterEqual;
      else if (r.sense == Sense::GreaterEqual) r.sense = Sense::LessEqual;
    }
    switch (r.sense) {
      case Sense::LessEqual: ++nSlack; break;
      case Sense::GreaterEqual: ++nSlack; ++nArtif; break;
      case Sense::Equal: ++nArtif; break;
    }
  }

  const std::size_t mRows = rowsIn.size();
  const std::size_t nCols = nFree + nSlack + nArtif;
  if (mRows == 0 || nFree == 0) {
    // Nothing to optimize; report the fixed/zero solution.
    res.status = LpStatus::Optimal;
    for (std::size_t v = 0; v < n; ++v)
      res.x[v] = (fix && (*fix)[v] >= 0) ? static_cast<double>((*fix)[v]) : 0.0;
    res.objective = m.evaluate(res.x);
    return res;
  }

  Tableau t(mRows, nCols);
  std::size_t slackAt = nFree;
  std::size_t artifAt = nFree + nSlack;
  const std::size_t artifBegin = artifAt;
  for (std::size_t i = 0; i < mRows; ++i) {
    const Row& r = rowsIn[i];
    for (const auto& [col, coef] : r.a)
      t.at(i, static_cast<std::size_t>(col)) += coef;
    t.rhs(i) = r.rhs;
    switch (r.sense) {
      case Sense::LessEqual:
        t.at(i, slackAt) = 1.0;
        t.basis()[i] = static_cast<int>(slackAt++);
        break;
      case Sense::GreaterEqual:
        t.at(i, slackAt++) = -1.0;
        t.at(i, artifAt) = 1.0;
        t.basis()[i] = static_cast<int>(artifAt++);
        break;
      case Sense::Equal:
        t.at(i, artifAt) = 1.0;
        t.basis()[i] = static_cast<int>(artifAt++);
        break;
    }
  }

  // Phase 1: maximize -(sum of artificials).
  if (nArtif > 0) {
    std::vector<double> phase1(nCols, 0.0);
    for (std::size_t j = artifBegin; j < nCols; ++j) phase1[j] = -1.0;
    t.priceObjective(phase1);
    const PivotOutcome out =
        iterate(t, opts.maxIterations, opts.eps, res.pivots, deadline);
    if (out == PivotOutcome::IterationLimit ||
        out == PivotOutcome::TimeLimit) {
      res.status = out == PivotOutcome::TimeLimit ? LpStatus::TimeLimit
                                                  : LpStatus::IterationLimit;
      return res;
    }
    const double z1 = -t.objRhs();
    if (z1 < -tol::kPhase1Eps) {
      res.status = LpStatus::Infeasible;
      return res;
    }
    // Ban artificial columns from re-entering; drive basic ones out.
    for (std::size_t j = artifBegin; j < nCols; ++j) t.banned()[j] = true;
    for (std::size_t i = 0; i < mRows; ++i) {
      if (static_cast<std::size_t>(t.basis()[i]) < artifBegin) continue;
      std::size_t j = 0;
      for (; j < artifBegin; ++j) {
        if (!t.banned()[j] && std::abs(t.at(i, j)) > opts.eps) break;
      }
      if (j < artifBegin) {
        t.pivot(i, j);
        ++res.pivots;
      }
      // else: redundant row; the artificial stays basic at value 0.
    }
  }

  // Phase 2: original objective.
  std::vector<double> phase2(nCols, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    if (colOf[v] >= 0) phase2[static_cast<std::size_t>(colOf[v])] = m.objective()[v];
  }
  t.priceObjective(phase2);
  switch (iterate(t, opts.maxIterations, opts.eps, res.pivots, deadline)) {
    case PivotOutcome::Optimal: res.status = LpStatus::Optimal; break;
    case PivotOutcome::Unbounded: res.status = LpStatus::Unbounded; return res;
    case PivotOutcome::IterationLimit:
      res.status = LpStatus::IterationLimit;
      return res;
    case PivotOutcome::TimeLimit:
      res.status = LpStatus::TimeLimit;
      return res;
  }

  // Extract structural solution.
  std::vector<double> colVal(nCols, 0.0);
  for (std::size_t i = 0; i < mRows; ++i) {
    const int b = t.basis()[i];
    if (b >= 0 && static_cast<std::size_t>(b) < nCols)
      colVal[static_cast<std::size_t>(b)] = t.rhs(i);
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (fix && (*fix)[v] >= 0) {
      res.x[v] = static_cast<double>((*fix)[v]);
    } else {
      res.x[v] = std::clamp(colVal[static_cast<std::size_t>(colOf[v])], 0.0, 1.0);
    }
  }
  res.objective = m.evaluate(res.x);
  return res;
}

LpResult DenseSimplexBackend::solve(const Fixing* fix,
                                    const LpBasis* /*warm*/,
                                    LpBasis* basisOut,
                                    support::Deadline deadline) {
  assert(model_ != nullptr && "bind() must precede solve()");
  if (basisOut) *basisOut = LpBasis{};  // dense cannot hand out a basis
  return solveLp(*model_, opts_, fix, deadline);
}

}  // namespace cpr::ilp
