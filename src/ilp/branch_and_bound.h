/// \file branch_and_bound.h
/// Exact binary ILP solver: LP-relaxation branch & bound.
///
/// Depth-first branch & bound over `ilp::Model` binaries. Node bounds come
/// from whichever LP engine `IlpOptions::lp.backend` names (lp_backend.h) —
/// the engine is bound to the model once and re-solved per node with a
/// tightened fixing, and engines that support it warm-start every child from
/// its parent's optimal basis (a dual-simplex re-solve, typically a handful
/// of pivots). Branches on the most fractional variable, exploring the x=1
/// child first (effective for the paper's set-partitioning structure, where
/// fixing an interval to 1 rapidly propagates through the pin-equality
/// rows — and the child relaxation continues directly from the basis still
/// loaded in the engine).
#pragma once

#include <string>
#include <vector>

#include "ilp/lp_backend.h"
#include "ilp/model.h"
#include "support/deadline.h"

namespace cpr::ilp {

enum class IlpStatus {
  Optimal,      ///< proven optimal incumbent
  Infeasible,   ///< no binary assignment satisfies the constraints
  NodeLimit,    ///< search truncated; `x` holds the best incumbent (if any)
  TimeLimit,    ///< wall-clock budget exhausted; best incumbent returned
};

struct IlpResult {
  IlpStatus status = IlpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> x;  ///< 0/1 values; empty when no incumbent found
  long nodesExplored = 0;
  long lpPivots = 0;  ///< total simplex pivots across all node relaxations
  long lpWarmSolves = 0;  ///< node relaxations resumed from a parent basis
  long lpColdSolves = 0;  ///< node relaxations solved from scratch
  std::string backend;    ///< LP engine that produced the bounds
};

struct IlpOptions {
  long maxNodes = 10'000'000;
  /// Wall-clock budget for the whole search, threaded into every LP solve.
  /// The single deadline field on the options path: callers with their own
  /// budget compose it in via `support::Deadline::soonerOf` before the call.
  /// Default-constructed = unset = never expires.
  support::Deadline deadline;
  double integralityEps = tol::kIntegralityEps;
  LpOptions lp;
};

/// Solves the 0/1 model exactly. When `opts.deadline` fires the best
/// incumbent found so far is returned with IlpStatus::TimeLimit.
/// Throws std::invalid_argument if `opts.lp.backend` names no registered
/// engine (see `lpBackendNames()`).
[[nodiscard]] IlpResult solveBinaryIlp(const Model& m,
                                       const IlpOptions& opts = {});

}  // namespace cpr::ilp
