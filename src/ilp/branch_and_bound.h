/// \file branch_and_bound.h
/// Exact binary ILP solver: LP-relaxation branch & bound.
///
/// Depth-first branch & bound over `ilp::Model` binaries using the two-phase
/// simplex (`simplex.h`) for node bounds. Branches on the most fractional
/// variable, exploring the x=1 child first (effective for the paper's
/// set-partitioning structure, where fixing an interval to 1 rapidly
/// propagates through the pin-equality rows).
#pragma once

#include <vector>

#include "ilp/model.h"
#include "ilp/simplex.h"
#include "support/deadline.h"

namespace cpr::ilp {

enum class IlpStatus {
  Optimal,      ///< proven optimal incumbent
  Infeasible,   ///< no binary assignment satisfies the constraints
  NodeLimit,    ///< search truncated; `x` holds the best incumbent (if any)
  TimeLimit,    ///< wall-clock budget exhausted; best incumbent returned
};

struct IlpResult {
  IlpStatus status = IlpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> x;  ///< 0/1 values; empty when no incumbent found
  long nodesExplored = 0;
  long lpPivots = 0;  ///< total simplex pivots across all node relaxations
};

struct IlpOptions {
  long maxNodes = 10'000'000;
  /// Wall-clock budget; the default-constructed Deadline is unset and never
  /// expires (no more 1e9-seconds sentinel).
  support::Deadline deadline;
  double integralityEps = 1e-6;
  LpOptions lp;
};

/// Solves the 0/1 model. `deadline` composes with `opts.deadline` (the
/// sooner of the two wins); when either fires the best incumbent found so
/// far is returned with IlpStatus::TimeLimit.
[[nodiscard]] IlpResult solveBinaryIlp(const Model& m,
                                       const IlpOptions& opts = {},
                                       support::Deadline deadline = {});

}  // namespace cpr::ilp
