/// \file model.h
/// A small linear-programming / binary-ILP model container.
///
/// This module is the repository's stand-in for the commercial ILP solver the
/// paper uses for Formula (1): variables are declared, linear constraints
/// added, and the model handed to `solveLp` (LP relaxation) or
/// `solveBinaryIlp` (exact branch & bound). Only what the paper's formulation
/// needs is supported: maximization, binary decision variables, and sparse
/// linear constraints with <=, =, >= senses.
#pragma once

#include <string>
#include <vector>

#include "geom/types.h"

namespace cpr::ilp {

using geom::Index;

enum class Sense { LessEqual, Equal, GreaterEqual };

/// One nonzero of a constraint row.
struct Term {
  Index var = 0;
  double coef = 0.0;
};

struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::LessEqual;
  double rhs = 0.0;
};

/// Sparse maximization model over binary variables.
class Model {
 public:
  /// Adds a binary variable with the given objective coefficient; returns its
  /// index.
  Index addBinary(double objCoef, std::string name = {});

  /// Adds `sum(terms) sense rhs`.
  void addConstraint(std::vector<Term> terms, Sense sense, double rhs);

  [[nodiscard]] Index numVars() const { return static_cast<Index>(obj_.size()); }
  [[nodiscard]] Index numConstraints() const {
    return static_cast<Index>(rows_.size());
  }
  [[nodiscard]] const std::vector<double>& objective() const { return obj_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const { return rows_; }
  [[nodiscard]] const std::string& varName(Index v) const {
    return names_[static_cast<std::size_t>(v)];
  }

  /// Objective value of an assignment.
  [[nodiscard]] double evaluate(const std::vector<double>& x) const;

  /// True when `x` (interpreted with tolerance `eps`) satisfies every
  /// constraint.
  [[nodiscard]] bool feasible(const std::vector<double>& x,
                              double eps = 1e-6) const;

 private:
  std::vector<double> obj_;
  std::vector<std::string> names_;
  std::vector<Constraint> rows_;
};

}  // namespace cpr::ilp
