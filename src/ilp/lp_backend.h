/// \file lp_backend.h
/// The LP engine seam: every LP relaxation solve in the repository goes
/// through the `LpBackend` virtual interface, so solver engines evolve
/// without touching callers (`branch_and_bound`, `core::IlpSolver`, benches).
///
/// Two engines register with `makeLpBackend`:
///   "dense"    the original two-phase dense-tableau primal simplex
///              (simplex.h) — the reference oracle; ignores warm starts;
///   "revised"  revised simplex on sparse columns with native variable
///              bounds, Bland's-rule anti-cycling, bounded refactorization,
///              and dual-simplex re-solves from a caller-supplied basis
///              (revised_simplex.h) — the default engine.
///
/// Engine selection is by name through `LpOptions::backend` — callers never
/// name a concrete type. A backend instance is *stateful*: `bind` compiles
/// one model into the engine's internal form, after which `solve` may be
/// called many times with different fixings (the branch & bound node loop),
/// each optionally warm-started from the basis a previous solve returned.
/// Instances are cheap, single-threaded, and owned by one search; concurrent
/// panel solves each create their own.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ilp/model.h"
#include "ilp/tolerances.h"
#include "support/deadline.h"

namespace cpr::ilp {

enum class LpStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  TimeLimit,  ///< the per-solve Deadline fired mid-iteration
};

struct LpResult {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< structural variable values (size = model vars)
  long pivots = 0;        ///< simplex pivots performed (all phases)
  bool warmStarted = false;  ///< solve resumed from a caller-supplied basis
};

struct LpOptions {
  /// Engine name for `makeLpBackend`; see `lpBackendNames()`.
  std::string backend = "revised";
  long maxIterations = tol::kDefaultLpIterationLimit;
  double eps = tol::kPivotEps;
  /// Dense engine only: skip the automatic `x_i <= 1` rows (valid when every
  /// variable is covered by an equality row with unit coefficients, as in
  /// the pin access set-partitioning model). The revised engine enforces
  /// bounds natively and ignores this.
  bool implicitUnitBounds = false;
  /// Allow warm-started re-solves from a parent basis (branch & bound).
  /// Disabled only by the cold-vs-warm benches and equivalence tests.
  bool warmStart = true;
};

/// Variable fixing for branch & bound: -1 free, 0/1 fixed.
using Fixing = std::vector<std::int8_t>;

/// Snapshot of a simplex basis, the warm-start currency between solves.
/// `basicOf[i]` is the column basic in row i of the engine's equality form
/// (structural columns first, then one logical/slack column per row);
/// `atUpper[j]` marks nonbasic columns sitting at their upper bound. Only
/// meaningful for the engine (and bound model) that produced it; engines
/// that cannot warm-start leave it empty.
struct LpBasis {
  std::vector<std::int32_t> basicOf;
  std::vector<std::uint8_t> atUpper;

  [[nodiscard]] bool empty() const { return basicOf.empty(); }
};

class LpBackend {
 public:
  virtual ~LpBackend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Compiles `m` into the engine's internal form. Must be called before
  /// `solve`; the model must outlive the binding. Re-binding replaces the
  /// previous model and invalidates any basis snapshots taken from it.
  virtual void bind(const Model& m, const LpOptions& opts) = 0;

  /// Solves the bound model's LP relaxation.
  ///   fix       per-variable fixing (nullptr = all free);
  ///   warm      basis from a previous solve of the same bound model
  ///             (typically the branch & bound parent node); engines unable
  ///             to warm-start ignore it;
  ///   basisOut  when non-null, receives the final basis of an Optimal
  ///             solve so children can warm-start from it;
  ///   deadline  per-solve wall-clock budget (unset = none) — the one
  ///             Deadline threaded down from the optimizer, composed once
  ///             by the caller, never re-derived here.
  [[nodiscard]] virtual LpResult solve(const Fixing* fix = nullptr,
                                       const LpBasis* warm = nullptr,
                                       LpBasis* basisOut = nullptr,
                                       support::Deadline deadline = {}) = 0;
};

/// Factory: engine instance by registered name ("dense", "revised").
/// Throws std::invalid_argument for an unknown name.
[[nodiscard]] std::unique_ptr<LpBackend> makeLpBackend(std::string_view name);

/// Registered engine names, in preference order (first = default).
[[nodiscard]] const std::vector<std::string_view>& lpBackendNames();

}  // namespace cpr::ilp
