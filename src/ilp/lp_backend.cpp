#include "ilp/lp_backend.h"

#include <stdexcept>

#include "ilp/revised_simplex.h"
#include "ilp/simplex.h"

namespace cpr::ilp {

std::unique_ptr<LpBackend> makeLpBackend(std::string_view name) {
  if (name == "revised") return std::make_unique<RevisedSimplexBackend>();
  if (name == "dense") return std::make_unique<DenseSimplexBackend>();
  throw std::invalid_argument("unknown LP backend '" + std::string(name) +
                              "' (registered: revised, dense)");
}

const std::vector<std::string_view>& lpBackendNames() {
  static const std::vector<std::string_view> kNames = {"revised", "dense"};
  return kNames;
}

}  // namespace cpr::ilp
