#include "ilp/branch_and_bound.h"

#include <cmath>
#include <limits>

namespace cpr::ilp {

namespace {

struct Search {
  Search(const Model& m, const IlpOptions& o, support::Deadline d)
      : model(m), opts(o), deadline(d) {}

  const Model& model;
  const IlpOptions& opts;
  support::Deadline deadline;
  IlpResult result;
  bool haveIncumbent = false;
  bool truncated = false;
  bool timedOut = false;

  [[nodiscard]] bool outOfBudget() {
    if (result.nodesExplored >= opts.maxNodes) {
      truncated = true;
      return true;
    }
    if (deadline.expired()) {
      timedOut = true;
      return true;
    }
    return false;
  }

  void explore(Fixing& fix) {
    if (outOfBudget()) return;
    ++result.nodesExplored;

    const LpResult lp = solveLp(model, opts.lp, &fix);
    result.lpPivots += lp.pivots;
    if (lp.status == LpStatus::Infeasible) return;
    if (lp.status != LpStatus::Optimal) {
      // Iteration-limited or unbounded relaxation: cannot certify this
      // subtree; treat the search as truncated rather than mispruning.
      truncated = true;
      return;
    }
    if (haveIncumbent && lp.objective <= result.objective + 1e-9) return;

    // Find the most fractional variable.
    Index branchVar = -1;
    double bestFrac = opts.integralityEps;
    for (Index v = 0; v < model.numVars(); ++v) {
      if (fix[static_cast<std::size_t>(v)] >= 0) continue;
      const double xv = lp.x[static_cast<std::size_t>(v)];
      const double frac = std::min(xv, 1.0 - xv);
      if (frac > bestFrac) {
        bestFrac = frac;
        branchVar = v;
      }
    }
    if (branchVar < 0) {
      // Integral solution: round and accept as incumbent.
      std::vector<double> x(lp.x.size());
      for (std::size_t v = 0; v < x.size(); ++v) x[v] = std::round(lp.x[v]);
      if (!model.feasible(x)) return;  // defensive: rounding artifact
      const double obj = model.evaluate(x);
      if (!haveIncumbent || obj > result.objective) {
        result.objective = obj;
        result.x = std::move(x);
        haveIncumbent = true;
      }
      return;
    }

    fix[static_cast<std::size_t>(branchVar)] = 1;
    explore(fix);
    fix[static_cast<std::size_t>(branchVar)] = 0;
    explore(fix);
    fix[static_cast<std::size_t>(branchVar)] = -1;
  }
};

}  // namespace

IlpResult solveBinaryIlp(const Model& m, const IlpOptions& opts,
                         support::Deadline deadline) {
  Search search(m, opts, support::Deadline::soonerOf(opts.deadline, deadline));
  Fixing fix(static_cast<std::size_t>(m.numVars()), -1);
  search.explore(fix);

  IlpResult res = std::move(search.result);
  if (search.timedOut) {
    res.status = IlpStatus::TimeLimit;
  } else if (search.truncated) {
    res.status = IlpStatus::NodeLimit;
  } else if (!search.haveIncumbent) {
    res.status = IlpStatus::Infeasible;
  } else {
    res.status = IlpStatus::Optimal;
  }
  return res;
}

}  // namespace cpr::ilp
