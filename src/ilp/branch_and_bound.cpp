#include "ilp/branch_and_bound.h"

#include <cmath>
#include <limits>

namespace cpr::ilp {

namespace {

struct Search {
  Search(const Model& m, const IlpOptions& o)
      : model(m), opts(o), backend(makeLpBackend(o.lp.backend)) {
    backend->bind(model, opts.lp);
    result.backend = std::string(backend->name());
  }

  const Model& model;
  const IlpOptions& opts;
  std::unique_ptr<LpBackend> backend;
  IlpResult result;
  bool haveIncumbent = false;
  bool truncated = false;
  bool timedOut = false;

  [[nodiscard]] bool outOfBudget() {
    if (result.nodesExplored >= opts.maxNodes) {
      truncated = true;
      return true;
    }
    if (opts.deadline.expired()) {
      timedOut = true;
      return true;
    }
    return false;
  }

  /// `parent` is the optimal basis of the parent node's relaxation (empty at
  /// the root and under engines that cannot warm-start): the child re-solve
  /// starts dual-feasible from it after the branching bound change.
  void explore(Fixing& fix, const LpBasis& parent) {
    if (outOfBudget()) return;
    ++result.nodesExplored;

    LpBasis basis;
    const LpResult lp =
        backend->solve(&fix, &parent, &basis, opts.deadline);
    result.lpPivots += lp.pivots;
    if (lp.warmStarted) ++result.lpWarmSolves;
    else ++result.lpColdSolves;
    if (lp.status == LpStatus::Infeasible) return;
    if (lp.status == LpStatus::TimeLimit) {
      timedOut = true;
      return;
    }
    if (lp.status != LpStatus::Optimal) {
      // Iteration-limited or unbounded relaxation: cannot certify this
      // subtree; treat the search as truncated rather than mispruning.
      truncated = true;
      return;
    }
    if (haveIncumbent &&
        lp.objective <= result.objective + tol::kBoundImprovementEps)
      return;

    // Find the most fractional variable.
    Index branchVar = -1;
    double bestFrac = opts.integralityEps;
    for (Index v = 0; v < model.numVars(); ++v) {
      if (fix[static_cast<std::size_t>(v)] >= 0) continue;
      const double xv = lp.x[static_cast<std::size_t>(v)];
      const double frac = std::min(xv, 1.0 - xv);
      if (frac > bestFrac) {
        bestFrac = frac;
        branchVar = v;
      }
    }
    if (branchVar < 0) {
      // Integral solution: round and accept as incumbent.
      std::vector<double> x(lp.x.size());
      for (std::size_t v = 0; v < x.size(); ++v) x[v] = std::round(lp.x[v]);
      if (!model.feasible(x)) return;  // defensive: rounding artifact
      const double obj = model.evaluate(x);
      if (!haveIncumbent || obj > result.objective) {
        result.objective = obj;
        result.x = std::move(x);
        haveIncumbent = true;
      }
      return;
    }

    fix[static_cast<std::size_t>(branchVar)] = 1;
    explore(fix, basis);
    fix[static_cast<std::size_t>(branchVar)] = 0;
    explore(fix, basis);
    fix[static_cast<std::size_t>(branchVar)] = -1;
  }
};

}  // namespace

IlpResult solveBinaryIlp(const Model& m, const IlpOptions& opts) {
  Search search(m, opts);
  Fixing fix(static_cast<std::size_t>(m.numVars()), -1);
  const LpBasis root;  // empty: the root relaxation always cold-starts
  search.explore(fix, root);

  IlpResult res = std::move(search.result);
  if (search.timedOut) {
    res.status = IlpStatus::TimeLimit;
  } else if (search.truncated) {
    res.status = IlpStatus::NodeLimit;
  } else if (!search.haveIncumbent) {
    res.status = IlpStatus::Infeasible;
  } else {
    res.status = IlpStatus::Optimal;
  }
  return res;
}

}  // namespace cpr::ilp
