#include "ilp/revised_simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace cpr::ilp {
namespace {

constexpr std::size_t kNoRow = std::numeric_limits<std::size_t>::max();

/// A bound is "infinite" when it carries the kInfiniteBound sentinel; the
/// halved threshold keeps the test robust under arithmetic on the sentinel.
bool finiteLower(double lo) { return lo > -tol::kInfiniteBound / 2; }
bool finiteUpper(double hi) { return hi < tol::kInfiniteBound / 2; }

}  // namespace

void RevisedSimplexBackend::bind(const Model& m, const LpOptions& opts) {
  model_ = &m;
  opts_ = opts;
  n_ = static_cast<std::size_t>(m.numVars());
  m_ = static_cast<std::size_t>(m.numConstraints());
  const std::size_t total = n_ + m_;

  // CSC over the structural columns, built in two passes from the row-wise
  // constraint storage.
  colPtr_.assign(n_ + 1, 0);
  for (const Constraint& row : m.constraints())
    for (const Term& t : row.terms)
      ++colPtr_[static_cast<std::size_t>(t.var) + 1];
  for (std::size_t j = 0; j < n_; ++j) colPtr_[j + 1] += colPtr_[j];
  rowIdx_.assign(colPtr_[n_], 0);
  colVal_.assign(colPtr_[n_], 0.0);
  std::vector<std::size_t> fill(colPtr_.begin(), colPtr_.end() - 1);
  rhs_.assign(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const Constraint& row = m.constraints()[i];
    rhs_[i] = row.rhs;
    for (const Term& t : row.terms) {
      const std::size_t j = static_cast<std::size_t>(t.var);
      rowIdx_[fill[j]] = static_cast<std::int32_t>(i);
      colVal_[fill[j]] = t.coef;
      ++fill[j];
    }
  }

  // Equality form A x + I s = b. Structurals are the model's binaries in
  // [0,1]; the slack of row i absorbs the sense.
  cost_.assign(total, 0.0);
  loBase_.assign(total, 0.0);
  hiBase_.assign(total, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    cost_[j] = m.objective()[j];
    loBase_[j] = 0.0;
    hiBase_[j] = 1.0;
  }
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t s = n_ + i;
    switch (m.constraints()[i].sense) {
      case Sense::LessEqual:
        loBase_[s] = 0.0;
        hiBase_[s] = tol::kInfiniteBound;
        break;
      case Sense::GreaterEqual:
        loBase_[s] = -tol::kInfiniteBound;
        hiBase_[s] = 0.0;
        break;
      case Sense::Equal:
        loBase_[s] = 0.0;
        hiBase_[s] = 0.0;
        break;
    }
  }

  basic_.assign(m_, 0);
  state_.assign(total, VarState::AtLower);
  binv_.assign(m_ * m_, 0.0);
  basisValid_ = false;
  refactorizations_ = 0;
}

double RevisedSimplexBackend::columnDot(const std::vector<double>& rowVec,
                                        std::size_t col) const {
  if (col >= n_) return rowVec[col - n_];  // slack column = unit vector
  double acc = 0.0;
  for (std::size_t k = colPtr_[col]; k < colPtr_[col + 1]; ++k)
    acc += rowVec[static_cast<std::size_t>(rowIdx_[k])] * colVal_[k];
  return acc;
}

bool RevisedSimplexBackend::refactorize() {
  // Product-form rebuild: start from the identity (the all-slack basis) and
  // replace one basis position at a time with its actual column via the
  // standard simplex basis-change update. Positions still holding their own
  // slack cost nothing, so the rebuild is O(k·m^2) for k non-slack columns —
  // on the panel models k is the variable count, far below the row count m,
  // where the dense Gauss-Jordan's O(m^3) dominated every solve. Positions
  // whose pivot is momentarily too small are deferred and retried after the
  // others; if no ordering works, fall back to dense elimination.
  binv_.assign(m_ * m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) binv_[i * m_ + i] = 1.0;
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < m_; ++i)
    if (static_cast<std::size_t>(basic_[i]) != n_ + i) pending.push_back(i);

  eta_.resize(m_);
  bool progress = true;
  while (!pending.empty() && progress) {
    progress = false;
    std::vector<std::size_t> defer;
    for (const std::size_t r : pending) {
      const std::size_t q = static_cast<std::size_t>(basic_[r]);
      if (q >= n_) {
        // Foreign slack: its column is a unit vector, eta = Binv column.
        for (std::size_t i = 0; i < m_; ++i) eta_[i] = binv_[i * m_ + (q - n_)];
      } else {
        for (std::size_t i = 0; i < m_; ++i) {
          const double* row = binv_.data() + i * m_;
          double acc = 0.0;
          for (std::size_t k = colPtr_[q]; k < colPtr_[q + 1]; ++k)
            acc += row[static_cast<std::size_t>(rowIdx_[k])] * colVal_[k];
          eta_[i] = acc;
        }
      }
      if (std::abs(eta_[r]) <= tol::kPivotEps) {
        defer.push_back(r);
        continue;
      }
      progress = true;
      double* rowR = binv_.data() + r * m_;
      const double inv = 1.0 / eta_[r];
      for (std::size_t c = 0; c < m_; ++c) rowR[c] *= inv;
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == r) continue;
        const double f = eta_[i];
        if (f == 0.0) continue;
        double* rowI = binv_.data() + i * m_;
        for (std::size_t c = 0; c < m_; ++c) rowI[c] -= f * rowR[c];
      }
    }
    pending = std::move(defer);
  }
  if (!pending.empty()) return refactorizeDense();
  ++refactorizations_;
  basisValid_ = true;
  return true;
}

bool RevisedSimplexBackend::refactorizeDense() {
  // Rebuild the explicit inverse from scratch: Gauss-Jordan with partial
  // pivoting on the basis matrix, mirroring every row operation into binv_.
  std::vector<double> bmat(m_ * m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t col = static_cast<std::size_t>(basic_[i]);
    if (col >= n_) {
      bmat[(col - n_) * m_ + i] = 1.0;
    } else {
      for (std::size_t k = colPtr_[col]; k < colPtr_[col + 1]; ++k)
        bmat[static_cast<std::size_t>(rowIdx_[k]) * m_ + i] = colVal_[k];
    }
  }
  binv_.assign(m_ * m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) binv_[i * m_ + i] = 1.0;
  for (std::size_t k = 0; k < m_; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < m_; ++i)
      if (std::abs(bmat[i * m_ + k]) > std::abs(bmat[piv * m_ + k])) piv = i;
    if (std::abs(bmat[piv * m_ + k]) <= tol::kPivotEps) return false;
    if (piv != k) {
      for (std::size_t c = 0; c < m_; ++c) {
        std::swap(bmat[piv * m_ + c], bmat[k * m_ + c]);
        std::swap(binv_[piv * m_ + c], binv_[k * m_ + c]);
      }
    }
    const double inv = 1.0 / bmat[k * m_ + k];
    for (std::size_t c = 0; c < m_; ++c) {
      bmat[k * m_ + c] *= inv;
      binv_[k * m_ + c] *= inv;
    }
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == k) continue;
      const double f = bmat[i * m_ + k];
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < m_; ++c) {
        bmat[i * m_ + c] -= f * bmat[k * m_ + c];
        binv_[i * m_ + c] -= f * binv_[k * m_ + c];
      }
    }
  }
  ++refactorizations_;
  basisValid_ = true;
  return true;
}

void RevisedSimplexBackend::computeBasicValues() {
  // x_B = Binv (b - N x_N), nonbasics at their state's bound.
  work_.assign(rhs_.begin(), rhs_.end());
  for (std::size_t j = 0; j < n_ + m_; ++j) {
    if (state_[j] == VarState::Basic) continue;
    const double v = (state_[j] == VarState::AtUpper) ? hi_[j] : lo_[j];
    if (v == 0.0) continue;
    if (j < n_) {
      for (std::size_t k = colPtr_[j]; k < colPtr_[j + 1]; ++k)
        work_[static_cast<std::size_t>(rowIdx_[k])] -= colVal_[k] * v;
    } else {
      work_[j - n_] -= v;
    }
  }
  xb_.assign(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const double* row = binv_.data() + i * m_;
    double acc = 0.0;
    for (std::size_t k = 0; k < m_; ++k) acc += row[k] * work_[k];
    xb_[i] = acc;
  }
}

void RevisedSimplexBackend::computeDuals() {
  // Reduced costs for every column from scratch: y = c_B Binv, then
  // d_j = c_j - y A_j. Called after every (re)factorization; between them
  // the main loop maintains d_ incrementally in O(nnz) per pivot instead of
  // paying this O(m^2) each iteration.
  y_.assign(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const double cb = cost_[static_cast<std::size_t>(basic_[i])];
    if (cb == 0.0) continue;
    const double* row = binv_.data() + i * m_;
    for (std::size_t k = 0; k < m_; ++k) y_[k] += cb * row[k];
  }
  const std::size_t total = n_ + m_;
  d_.resize(total);
  for (std::size_t j = 0; j < total; ++j)
    d_[j] = state_[j] == VarState::Basic ? 0.0
                                         : cost_[j] - columnDot(y_, j);
}

void RevisedSimplexBackend::coldStart() {
  // All-slack basis (Binv = I); nonbasic structurals placed by objective
  // sign, which makes the basis dual feasible with y = 0: at lower the
  // reduced cost c_j <= 0, at upper c_j > 0. No phase 1 is ever needed.
  for (std::size_t j = 0; j < n_; ++j)
    state_[j] = cost_[j] > 0.0 ? VarState::AtUpper : VarState::AtLower;
  for (std::size_t i = 0; i < m_; ++i) {
    basic_[i] = static_cast<std::int32_t>(n_ + i);
    state_[n_ + i] = VarState::Basic;
  }
  binv_.assign(m_ * m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) binv_[i * m_ + i] = 1.0;
  basisValid_ = true;
}

bool RevisedSimplexBackend::loadBasis(const LpBasis& warm) {
  const std::size_t total = n_ + m_;
  if (warm.basicOf.size() != m_ || warm.atUpper.size() != total) return false;
  std::vector<std::uint8_t> isBasic(total, 0);
  for (const std::int32_t c : warm.basicOf) {
    if (c < 0 || static_cast<std::size_t>(c) >= total) return false;
    if (isBasic[static_cast<std::size_t>(c)] != 0) return false;
    isBasic[static_cast<std::size_t>(c)] = 1;
  }
  // A nonbasic column may not sit at an infinite bound (one-sided slacks).
  for (std::size_t j = 0; j < total; ++j) {
    if (isBasic[j] != 0) continue;
    if (warm.atUpper[j] != 0 ? !finiteUpper(hiBase_[j])
                             : !finiteLower(loBase_[j]))
      return false;
  }

  // Continuation fast path: the depth-first x=1 child warm-starts from the
  // basis this engine just produced — skip the O(m^3) refactorization.
  bool same = basisValid_;
  for (std::size_t i = 0; same && i < m_; ++i)
    same = basic_[i] == warm.basicOf[i];
  for (std::size_t j = 0; same && j < total; ++j) {
    if (isBasic[j] != 0) continue;
    same = (state_[j] == VarState::AtUpper) == (warm.atUpper[j] != 0);
  }
  if (!same) {
    basic_.assign(warm.basicOf.begin(), warm.basicOf.end());
    for (std::size_t j = 0; j < total; ++j)
      state_[j] = isBasic[j] != 0
                      ? VarState::Basic
                      : (warm.atUpper[j] != 0 ? VarState::AtUpper
                                              : VarState::AtLower);
    if (!refactorize()) {
      basisValid_ = false;
      return false;
    }
  }

  // Dual-feasibility repair. Bound tightening alone cannot break dual
  // feasibility, so for a basis produced by this engine this is a no-op;
  // a foreign basis gets its nonbasics bound-flipped where the reduced-cost
  // sign demands it, or is rejected when the needed bound is infinite.
  y_.assign(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const double cb = cost_[static_cast<std::size_t>(basic_[i])];
    if (cb == 0.0) continue;
    const double* row = binv_.data() + i * m_;
    for (std::size_t k = 0; k < m_; ++k) y_[k] += cb * row[k];
  }
  for (std::size_t j = 0; j < total; ++j) {
    if (state_[j] == VarState::Basic) continue;
    if (hi_[j] - lo_[j] <= tol::kFeasEps) continue;  // fixed: no dual constraint
    const double d = cost_[j] - columnDot(y_, j);
    if (state_[j] == VarState::AtLower && d > tol::kFeasEps) {
      if (!finiteUpper(hi_[j])) return false;
      state_[j] = VarState::AtUpper;
    } else if (state_[j] == VarState::AtUpper && d < -tol::kFeasEps) {
      if (!finiteLower(lo_[j])) return false;
      state_[j] = VarState::AtLower;
    }
  }
  return true;
}

LpResult RevisedSimplexBackend::solve(const Fixing* fix, const LpBasis* warm,
                                      LpBasis* basisOut,
                                      support::Deadline deadline) {
  assert(model_ != nullptr && "bind() must precede solve()");
  const std::size_t total = n_ + m_;

  // Per-solve bounds: branching fixes a binary by collapsing its box.
  lo_.assign(loBase_.begin(), loBase_.end());
  hi_.assign(hiBase_.begin(), hiBase_.end());
  if (fix != nullptr) {
    for (std::size_t j = 0; j < n_ && j < fix->size(); ++j) {
      if ((*fix)[j] == 0) hi_[j] = 0.0;
      else if ((*fix)[j] == 1) lo_[j] = 1.0;
    }
  }

  LpResult res;
  if (basisOut != nullptr) *basisOut = LpBasis{};
  if (opts_.warmStart && warm != nullptr && !warm->empty() &&
      loadBasis(*warm)) {
    res.warmStarted = true;
  } else {
    coldStart();
  }

  const auto extract = [&] {
    res.x.assign(n_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      if (state_[j] == VarState::AtUpper) res.x[j] = hi_[j];
      else if (state_[j] == VarState::AtLower) res.x[j] = lo_[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t col = static_cast<std::size_t>(basic_[i]);
      if (col < n_) res.x[col] = xb_[i];
    }
    res.objective = model_->evaluate(res.x);
  };

  computeBasicValues();
  computeDuals();
  int degenerateRun = 0;
  int sinceRefactor = 0;
  int sincePoll = 0;
  bool justRefactored = true;  // cold/warm start is exact by construction
  while (true) {
    if (++sincePoll >= tol::kDeadlineCheckStride) {
      sincePoll = 0;
      if (deadline.expired()) {
        res.status = LpStatus::TimeLimit;
        extract();
        return res;
      }
    }

    // Leaving-variable selection: most-violated basic bound, or the smallest
    // basic column index once Bland's rule is engaged.
    const bool bland = degenerateRun >= tol::kDegenerateRunLimit;
    std::size_t r = kNoRow;
    double bestViol = tol::kFeasEps;
    std::int32_t blandBest = std::numeric_limits<std::int32_t>::max();
    int sigma = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t col = static_cast<std::size_t>(basic_[i]);
      double viol = 0.0;
      int dir = 0;
      if (xb_[i] < lo_[col] - tol::kFeasEps) {
        viol = lo_[col] - xb_[i];
        dir = +1;
      } else if (xb_[i] > hi_[col] + tol::kFeasEps) {
        viol = xb_[i] - hi_[col];
        dir = -1;
      } else {
        continue;
      }
      if (bland ? basic_[i] < blandBest : viol > bestViol) {
        r = i;
        sigma = dir;
        bestViol = viol;
        blandBest = basic_[i];
      }
    }

    if (r == kNoRow) {
      // Primal feasible and (by invariant) dual feasible: optimal. Verify the
      // basis numerically before trusting it.
      if (!justRefactored) {
        std::vector<double> val(total);
        for (std::size_t j = 0; j < total; ++j)
          val[j] = (state_[j] == VarState::AtUpper) ? hi_[j] : lo_[j];
        for (std::size_t i = 0; i < m_; ++i)
          val[static_cast<std::size_t>(basic_[i])] = xb_[i];
        work_.assign(rhs_.begin(), rhs_.end());
        for (std::size_t j = 0; j < n_; ++j) {
          if (val[j] == 0.0) continue;
          for (std::size_t k = colPtr_[j]; k < colPtr_[j + 1]; ++k)
            work_[static_cast<std::size_t>(rowIdx_[k])] -= colVal_[k] * val[j];
        }
        double resid = 0.0;
        for (std::size_t i = 0; i < m_; ++i)
          resid = std::max(resid, std::abs(work_[i] - val[n_ + i]));
        if (resid > tol::kResidualEps) {
          if (!refactorize()) {
            res.status = LpStatus::IterationLimit;
            extract();
            return res;
          }
          computeBasicValues();
          computeDuals();
          justRefactored = true;
          sinceRefactor = 0;
          continue;
        }
      }
      res.status = LpStatus::Optimal;
      extract();
      if (basisOut != nullptr) {
        basisOut->basicOf.assign(basic_.begin(), basic_.end());
        basisOut->atUpper.assign(total, 0);
        for (std::size_t j = 0; j < total; ++j)
          if (state_[j] == VarState::AtUpper) basisOut->atUpper[j] = 1;
      }
      return res;
    }

    if (res.pivots >= opts_.maxIterations) {
      res.status = LpStatus::IterationLimit;
      extract();
      return res;
    }

    // Pivot row of the inverse; reduced costs come from the incrementally
    // maintained d_ vector rather than an O(m^2) y = c_B Binv each round.
    rho_.assign(binv_.begin() + static_cast<std::ptrdiff_t>(r * m_),
                binv_.begin() + static_cast<std::ptrdiff_t>((r + 1) * m_));
    alpha_.assign(total, 0.0);

    // Dual ratio test. The leaving variable moves toward its violated bound
    // (sigma = +1 below lower, -1 above upper); eligible entering columns
    // are the nonbasics whose step helps, and the minimum reduced-cost
    // ratio keeps every nonbasic on its dual-feasible side after the pivot.
    std::size_t q = kNoRow;
    double bestRatio = std::numeric_limits<double>::infinity();
    double bestAlphaAbs = 0.0;
    for (std::size_t j = 0; j < total; ++j) {
      if (state_[j] == VarState::Basic) continue;
      if (hi_[j] - lo_[j] <= tol::kFeasEps) continue;  // fixed: cannot move
      const double alpha = columnDot(rho_, j);
      alpha_[j] = alpha;
      const double sa = sigma * alpha;
      const bool eligible = state_[j] == VarState::AtLower ? sa < -opts_.eps
                                                           : sa > opts_.eps;
      if (!eligible) continue;
      const double ratio = std::max(d_[j] / sa, 0.0);
      const bool better =
          bland ? ratio < bestRatio
                : (ratio < bestRatio - opts_.eps ||
                   (ratio <= bestRatio + opts_.eps &&
                    std::abs(alpha) > bestAlphaAbs));
      if (better) {
        q = j;
        bestRatio = std::min(ratio, bestRatio);
        bestAlphaAbs = std::abs(alpha);
      }
    }
    if (q == kNoRow) {
      // Dual unbounded: no entering column can repair the violated bound.
      // Refactorize once first so drift in the inverse cannot manufacture a
      // spurious infeasibility verdict.
      if (!justRefactored && refactorize()) {
        computeBasicValues();
        computeDuals();
        justRefactored = true;
        sinceRefactor = 0;
        continue;
      }
      res.status = LpStatus::Infeasible;
      return res;
    }

    // Pivot column through the inverse, then the product-form update.
    eta_.assign(m_, 0.0);
    if (q < n_) {
      for (std::size_t k = colPtr_[q]; k < colPtr_[q + 1]; ++k) {
        const std::size_t rr = static_cast<std::size_t>(rowIdx_[k]);
        const double v = colVal_[k];
        for (std::size_t i = 0; i < m_; ++i) eta_[i] += binv_[i * m_ + rr] * v;
      }
    } else {
      const std::size_t rr = q - n_;
      for (std::size_t i = 0; i < m_; ++i) eta_[i] = binv_[i * m_ + rr];
    }
    const double pivot = eta_[r];
    if (std::abs(pivot) <= tol::kPivotEps) {
      // Numerically hopeless pivot: rebuild the inverse once and retry; if
      // it persists, give up rather than divide by noise.
      if (justRefactored || !refactorize()) {
        res.status = LpStatus::IterationLimit;
        extract();
        return res;
      }
      computeBasicValues();
      computeDuals();
      justRefactored = true;
      sinceRefactor = 0;
      continue;
    }

    // Incremental primal update: the entering column moves off its bound by
    // delta, chosen so the leaving basic lands exactly on its violated
    // bound; the other basics follow x_B -= delta * eta. O(m) instead of a
    // full x_B = Binv (b - N x_N) recompute.
    {
      const std::size_t leavingCol = static_cast<std::size_t>(basic_[r]);
      const double target = sigma > 0 ? lo_[leavingCol] : hi_[leavingCol];
      const double delta = (xb_[r] - target) / pivot;
      const double enterFrom =
          state_[q] == VarState::AtUpper ? hi_[q] : lo_[q];
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == r) continue;
        if (eta_[i] != 0.0) xb_[i] -= delta * eta_[i];
      }
      xb_[r] = enterFrom + delta;
    }
    // Incremental dual update over the alphas saved by the pricing scan:
    // d'_j = d_j - (d_q / alpha_q) * alpha_j, which zeroes the entering
    // column and puts the leaving one (alpha = 1) at -g.
    {
      const double g = d_[q] / alpha_[q];
      for (std::size_t j = 0; j < total; ++j) {
        if (state_[j] == VarState::Basic || alpha_[j] == 0.0) continue;
        d_[j] -= g * alpha_[j];
      }
      d_[static_cast<std::size_t>(basic_[r])] = -g;
      d_[q] = 0.0;
    }

    const double inv = 1.0 / pivot;
    double* prow = binv_.data() + r * m_;
    for (std::size_t k = 0; k < m_; ++k) prow[k] *= inv;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double f = eta_[i];
      if (f == 0.0) continue;
      double* row = binv_.data() + i * m_;
      for (std::size_t k = 0; k < m_; ++k) row[k] -= f * prow[k];
    }

    const std::size_t leaving = static_cast<std::size_t>(basic_[r]);
    state_[leaving] = sigma > 0 ? VarState::AtLower : VarState::AtUpper;
    basic_[r] = static_cast<std::int32_t>(q);
    state_[q] = VarState::Basic;
    ++res.pivots;
    justRefactored = false;
    degenerateRun = bestRatio <= opts_.eps ? degenerateRun + 1 : 0;
    if (++sinceRefactor >= tol::kRefactorInterval) {
      if (!refactorize()) {
        res.status = LpStatus::IterationLimit;
        extract();
        return res;
      }
      computeBasicValues();
      computeDuals();
      justRefactored = true;
      sinceRefactor = 0;
    }
  }
}

}  // namespace cpr::ilp
