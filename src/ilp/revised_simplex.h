/// \file revised_simplex.h
/// Revised simplex on sparse columns — the "revised" engine behind the
/// `LpBackend` seam and the default LP solver.
///
/// Differences from the dense oracle (simplex.h) that make it the scale
/// engine for the ILP path:
///
///   * Variable bounds are native. Binaries live in [0,1] (or [v,v] when
///     fixed) without materialized `x_i <= 1` rows, so the working basis has
///     one row per *constraint*, not per constraint-plus-variable.
///   * Columns stay sparse (CSC built once per `bind`); pricing is a sparse
///     dot against the pivot row of the explicit basis inverse.
///   * Every solve runs the *dual* simplex from a dual-feasible basis: the
///     all-slack basis with nonbasics placed by reduced-cost sign (cold), or
///     a caller-supplied parent basis (warm). Branching tightens bounds and
///     never disturbs dual feasibility, so branch & bound children re-solve
///     in a handful of pivots instead of from scratch.
///   * Bland's rule engages after tol::kDegenerateRunLimit degenerate
///     pivots; the inverse is refactorized every tol::kRefactorInterval
///     pivots (and on any warm start whose basis differs from the engine's
///     current one — the depth-first x=1 child hits the no-refactor
///     continuation fast path).
///
/// Because every variable is boxed, the relaxation is never unbounded: the
/// engine returns Optimal, Infeasible, IterationLimit, or TimeLimit.
#pragma once

#include <vector>

#include "ilp/lp_backend.h"
#include "ilp/model.h"

namespace cpr::ilp {

class RevisedSimplexBackend final : public LpBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "revised"; }
  void bind(const Model& m, const LpOptions& opts) override;
  [[nodiscard]] LpResult solve(const Fixing* fix, const LpBasis* warm,
                               LpBasis* basisOut,
                               support::Deadline deadline) override;

  /// Basis-inverse refactorizations performed since `bind` (periodic +
  /// warm-start rebuilds); exposed for the obs counters and benches.
  [[nodiscard]] long refactorizations() const { return refactorizations_; }

 private:
  // --- bound model, equality form: A x + I s = b, columns [structural|slack]
  std::size_t n_ = 0;  ///< structural columns
  std::size_t m_ = 0;  ///< rows == slack columns == basis size
  std::vector<std::size_t> colPtr_;  ///< CSC over structural columns only
  std::vector<std::int32_t> rowIdx_;
  std::vector<double> colVal_;
  std::vector<double> rhs_;
  std::vector<double> cost_;  ///< structural objective (slacks cost 0)
  std::vector<double> loBase_, hiBase_;  ///< bounds before per-solve fixing
  const Model* model_ = nullptr;
  LpOptions opts_;

  // --- engine state, preserved between solves for the continuation path
  enum class VarState : std::uint8_t { Basic, AtLower, AtUpper };
  std::vector<std::int32_t> basic_;   ///< column basic in each row
  std::vector<VarState> state_;       ///< per column
  std::vector<double> binv_;          ///< dense m x m inverse, row-major
  bool basisValid_ = false;
  long refactorizations_ = 0;

  // --- per-solve workspaces (members to amortize allocation across nodes)
  std::vector<double> lo_, hi_, xb_, y_, d_, alpha_, rho_, eta_, work_;

  [[nodiscard]] bool refactorize();
  [[nodiscard]] bool refactorizeDense();
  void computeBasicValues();
  void computeDuals();
  void coldStart();
  [[nodiscard]] bool loadBasis(const LpBasis& warm);
  [[nodiscard]] double columnDot(const std::vector<double>& rowVec,
                                 std::size_t col) const;
};

}  // namespace cpr::ilp
