/// \file tolerances.h
/// Named numeric tolerances shared by every LP/ILP engine in `src/ilp`.
///
/// One header so the pivot, feasibility, and integrality thresholds that
/// used to live as magic literals inside `simplex.cpp` and
/// `branch_and_bound.cpp` have a single spelling, a documented meaning, and
/// one place to tighten or relax. The two LP engines (dense two-phase and
/// revised simplex) must agree on status + objective across the golden LP
/// suite, which only holds when they classify "zero" the same way.
#pragma once

namespace cpr::ilp::tol {

/// Reduced-cost / pivot-element threshold: anything with absolute value at
/// or below this is treated as zero during pricing and elimination.
inline constexpr double kPivotEps = 1e-9;

/// Primal feasibility slack on variable bounds and row activities; also the
/// tolerance used when classifying a fully-substituted row as consistent.
inline constexpr double kFeasEps = 1e-7;

/// Residual of the phase-1 objective above which the dense engine declares
/// the model infeasible (sum of artificials that refused to reach zero).
inline constexpr double kPhase1Eps = 1e-7;

/// Fractionality threshold for branch & bound: a relaxation value within
/// this of 0 or 1 counts as integral.
inline constexpr double kIntegralityEps = 1e-6;

/// Pruning slack: a node whose LP bound does not beat the incumbent by more
/// than this is fathomed (guards against re-expanding on rounding noise).
inline constexpr double kBoundImprovementEps = 1e-9;

/// Stand-in for an unbounded variable bound in the revised engine (slack
/// columns of inequality rows are one-sided).
inline constexpr double kInfiniteBound = 1e30;

/// Default per-solve simplex iteration budget (both engines).
inline constexpr long kDefaultLpIterationLimit = 200000;

/// Consecutive degenerate pivots tolerated before switching to Bland's
/// rule (anti-cycling fallback, both engines).
inline constexpr int kDegenerateRunLimit = 64;

/// Revised engine: pivots between basis refactorizations. The explicit
/// inverse is updated in O(m^2) per pivot and rebuilt from scratch at this
/// cadence to bound numerical drift.
inline constexpr int kRefactorInterval = 64;

/// Simplex iterations between Deadline polls (steady-clock reads are not
/// free; the budget only needs coarse granularity).
inline constexpr int kDeadlineCheckStride = 256;

/// Infinity-norm residual of `B x_B - (b - N x_N)` above which the revised
/// engine refactorizes and recomputes before trusting an optimal basis.
inline constexpr double kResidualEps = 1e-6;

}  // namespace cpr::ilp::tol
