/// \file simplex.h
/// Dense two-phase primal simplex for the LP relaxation of `ilp::Model` —
/// the "dense" engine behind the `LpBackend` seam and the reference oracle
/// the revised engine is cross-checked against.
///
/// Solves   max c·x   s.t.  Ax {<=,=,>=} b,  0 <= x <= 1
/// where the unit upper bounds come from the binary declarations in the
/// model. A textbook dense implementation (Dantzig pricing with a
/// Bland's-rule anti-cycling fallback), not a sparse production LP code:
/// bounds are materialized as explicit `x_i <= 1` rows, so every pivot
/// touches a (rows + vars) x columns tableau. It cannot warm-start; the
/// backend wrapper solves every node from scratch.
#pragma once

#include "ilp/lp_backend.h"
#include "ilp/model.h"

namespace cpr::ilp {

/// Solves the LP relaxation of `m` with the dense engine. When `fix` is
/// non-null, fixed variables are substituted out before solving and reported
/// back at their fixed values. `deadline` bounds the pivot loop (polled
/// every tol::kDeadlineCheckStride iterations).
[[nodiscard]] LpResult solveLp(const Model& m, const LpOptions& opts = {},
                               const Fixing* fix = nullptr,
                               support::Deadline deadline = {});

/// The dense engine as an `LpBackend`. Stateless beyond the bound model:
/// `solve` ignores `warm` and leaves `basisOut` empty, so branch & bound
/// children of a dense-backed search always cold-start.
class DenseSimplexBackend final : public LpBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "dense"; }
  void bind(const Model& m, const LpOptions& opts) override {
    model_ = &m;
    opts_ = opts;
  }
  [[nodiscard]] LpResult solve(const Fixing* fix, const LpBasis* warm,
                               LpBasis* basisOut,
                               support::Deadline deadline) override;

 private:
  const Model* model_ = nullptr;
  LpOptions opts_;
};

}  // namespace cpr::ilp
