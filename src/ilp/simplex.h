/// \file simplex.h
/// Dense two-phase primal simplex for the LP relaxation of `ilp::Model`.
///
/// Solves   max c·x   s.t.  Ax {<=,=,>=} b,  0 <= x <= 1
/// where the unit upper bounds come from the binary declarations in the
/// model. Intended for the moderate-size relaxations produced by the pin
/// access ILP on a panel and for the branch-and-bound solver's node bounds;
/// it is a textbook dense implementation (Dantzig pricing with a Bland's-rule
/// anti-cycling fallback), not a sparse production LP code.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.h"

namespace cpr::ilp {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpResult {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< structural variable values (size = model vars)
  long pivots = 0;        ///< simplex pivots performed (both phases)
};

struct LpOptions {
  long maxIterations = 200000;
  double eps = 1e-9;
  /// Skip the automatic `x_i <= 1` rows (valid when every variable is
  /// covered by an equality row with unit coefficients, as in the pin access
  /// set-partitioning model).
  bool implicitUnitBounds = false;
};

/// Variable fixing for branch & bound: -1 free, 0/1 fixed.
using Fixing = std::vector<std::int8_t>;

/// Solves the LP relaxation of `m`. When `fix` is non-null, fixed variables
/// are substituted out before solving and reported back at their fixed
/// values.
[[nodiscard]] LpResult solveLp(const Model& m, const LpOptions& opts = {},
                               const Fixing* fix = nullptr);

}  // namespace cpr::ilp
