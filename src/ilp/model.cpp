#include "ilp/model.h"

namespace cpr::ilp {

Index Model::addBinary(double objCoef, std::string name) {
  obj_.push_back(objCoef);
  names_.push_back(std::move(name));
  return static_cast<Index>(obj_.size() - 1);
}

void Model::addConstraint(std::vector<Term> terms, Sense sense, double rhs) {
  rows_.push_back(Constraint{std::move(terms), sense, rhs});
}

double Model::evaluate(const std::vector<double>& x) const {
  double v = 0.0;
  for (std::size_t i = 0; i < obj_.size(); ++i) v += obj_[i] * x[i];
  return v;
}

bool Model::feasible(const std::vector<double>& x, double eps) const {
  for (const Constraint& c : rows_) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coef * x[static_cast<std::size_t>(t.var)];
    switch (c.sense) {
      case Sense::LessEqual:
        if (lhs > c.rhs + eps) return false;
        break;
      case Sense::Equal:
        if (lhs > c.rhs + eps || lhs < c.rhs - eps) return false;
        break;
      case Sense::GreaterEqual:
        if (lhs < c.rhs - eps) return false;
        break;
    }
  }
  return true;
}

}  // namespace cpr::ilp
