/// \file collector.h
/// Observability collector: named counters, gauges, per-iteration solver
/// series, scoped phase timers, and free-form run notes.
///
/// The collector is the single sink every layer reports into — interval
/// generation, conflict detection, the LR / exact / ILP solvers, the routing
/// engine, and DRC. It is deliberately NOT thread-safe: concurrent code gives
/// each worker its own collector (tagged with a deterministic `src` id, e.g.
/// the panel index) and merges them in a fixed order afterwards, so counters
/// and series are bit-identical for any thread count. Only the wall-clock
/// fields of timer spans vary between runs.
///
/// Canonical counter naming: dot-separated `<layer>.<subject>.<aspect>`,
/// lower_snake_case segments — e.g. `lr.iterations`, `exact.nodes`,
/// `route.astar.pops`, `drc.violations.via_spacing`. The full convention is
/// documented in DESIGN.md ("Observability").
#pragma once

#include <chrono>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/hot_annotations.h"

namespace cpr::obs {

using Clock = std::chrono::steady_clock;

/// One timed phase, emitted by ScopedTimer. `depth` is the nesting level
/// inside its collector; `src` is the owning collector's source id, which
/// becomes the Chrome-trace thread lane.
struct Span {
  std::string name;
  int src = 0;
  int depth = 0;
  Clock::time_point start{};
  Clock::duration dur{};
};

/// A named table of per-iteration samples. The first column is always "src"
/// (filled from the appending collector), so merged series stay attributable
/// to the panel / worker that produced each row.
struct Series {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;
};

class Collector {
 public:
  Collector() = default;
  explicit Collector(int src) : src_(src) {}

  [[nodiscard]] int src() const { return src_; }

  // The write-side entry points are CPR_COLD_OK: instrumentation is the
  // sanctioned cold island inside hot code — map/string upkeep allocates by
  // design, call sites are either behind a null check or flushed after the
  // parallel region, and the runtime gate pauses its hot region around them.

  // ---- counters (merged by summation) ----
  void add(std::string_view name, long delta = 1) CPR_COLD_OK;
  /// 0 when the counter was never touched.
  [[nodiscard]] long counter(std::string_view name) const;

  // ---- gauges (last write wins, also across merges) ----
  void gauge(std::string_view name, double value) CPR_COLD_OK;
  [[nodiscard]] double gaugeOr(std::string_view name, double fallback) const;

  // ---- run metadata (string key/value, last write wins) ----
  void note(std::string_view key, std::string_view value) CPR_COLD_OK;

  // ---- series ----
  /// Appends one row to `name`, creating the series (with "src" prepended to
  /// `columns`) on first use. Callers must pass the same columns every time.
  void row(std::string_view name,
           std::initializer_list<std::string_view> columns,
           std::initializer_list<double> values) CPR_COLD_OK;

  /// Folds `other` into this collector: counters sum, gauges and notes
  /// overwrite, series rows and spans append in order. Merging the same
  /// collectors in the same order therefore always yields the same counters,
  /// gauges, notes, and series.
  void merge(const Collector& other);

  // ---- read-side access for report writers and tests ----
  [[nodiscard]] const std::map<std::string, long, std::less<>>& counters()
      const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double, std::less<>>& gauges()
      const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& notes()
      const {
    return notes_;
  }
  [[nodiscard]] const std::map<std::string, Series, std::less<>>& series()
      const {
    return series_;
  }
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }

 private:
  friend class ScopedTimer;

  int src_ = 0;
  int depth_ = 0;  ///< live timer nesting level
  std::map<std::string, long, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::string, std::less<>> notes_;
  std::map<std::string, Series, std::less<>> series_;
  std::vector<Span> spans_;
};

/// RAII phase timer. Records a Span on destruction; null collector makes it
/// a no-op, so call sites never need to branch on whether observability is
/// enabled. Nesting is tracked per collector and recorded in Span::depth.
class ScopedTimer {
 public:
  ScopedTimer(Collector* c, std::string_view name);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  Collector* c_ = nullptr;
  std::size_t slot_ = 0;  ///< index into spans_ (stable under reallocation)
};

// Null-safe forwarding helpers so instrumented code stays one line per event.
inline void add(Collector* c, std::string_view name, long delta = 1) {
  if (c) c->add(name, delta);
}
inline void gauge(Collector* c, std::string_view name, double value) {
  if (c) c->gauge(name, value);
}
inline void note(Collector* c, std::string_view key, std::string_view value) {
  if (c) c->note(key, value);
}
inline void row(Collector* c, std::string_view name,
                std::initializer_list<std::string_view> columns,
                std::initializer_list<double> values) {
  if (c) c->row(name, columns, values);
}

}  // namespace cpr::obs
