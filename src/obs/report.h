/// \file report.h
/// Serialization of a Collector into machine-readable run reports.
///
/// Two formats:
///  - `cpr.report.v1` JSON: notes, counters, gauges, series, and phase spans
///    in one document. Counters / gauges / series are deterministic for a
///    fixed input (maps are emitted in sorted key order and concurrent
///    collectors merge in a fixed order); only the `start_us` / `dur_us`
///    fields of `phases` carry wall-clock noise.
///  - Chrome `trace_event` JSON (the `chrome://tracing` / Perfetto format):
///    every span becomes a complete "X" event; the collector `src` id is the
///    trace thread, so per-panel work shows up as parallel lanes.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/collector.h"

namespace cpr::obs {

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
[[nodiscard]] std::string jsonEscape(std::string_view s);

void writeReportJson(const Collector& c, std::ostream& os);
void writeChromeTrace(const Collector& c, std::ostream& os);

[[nodiscard]] std::string reportJson(const Collector& c);
[[nodiscard]] std::string chromeTrace(const Collector& c);

/// Writes `writer`'s format to `path`; throws std::runtime_error on I/O
/// failure. Convenience for CLI / bench `--report` / `--trace` flags.
void saveReportJson(const Collector& c, const std::string& path);
void saveChromeTrace(const Collector& c, const std::string& path);

}  // namespace cpr::obs
