#include "obs/collector.h"

#include <cassert>

namespace cpr::obs {

void Collector::add(std::string_view name, long delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

long Collector::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Collector::gauge(std::string_view name, double value) {
  gauges_.insert_or_assign(std::string(name), value);
}

double Collector::gaugeOr(std::string_view name, double fallback) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? fallback : it->second;
}

void Collector::note(std::string_view key, std::string_view value) {
  notes_.insert_or_assign(std::string(key), std::string(value));
}

void Collector::row(std::string_view name,
                    std::initializer_list<std::string_view> columns,
                    std::initializer_list<double> values) {
  assert(columns.size() == values.size());
  auto it = series_.find(name);
  if (it == series_.end()) {
    Series s;
    s.columns.reserve(columns.size() + 1);
    s.columns.emplace_back("src");
    for (std::string_view c : columns) s.columns.emplace_back(c);
    it = series_.emplace(std::string(name), std::move(s)).first;
  }
  assert(it->second.columns.size() == columns.size() + 1);
  std::vector<double> r;
  r.reserve(values.size() + 1);
  r.push_back(static_cast<double>(src_));
  r.insert(r.end(), values.begin(), values.end());
  it->second.rows.push_back(std::move(r));
}

void Collector::merge(const Collector& other) {
  for (const auto& [name, v] : other.counters_) add(name, v);
  for (const auto& [name, v] : other.gauges_) gauge(name, v);
  for (const auto& [key, v] : other.notes_) note(key, v);
  for (const auto& [name, s] : other.series_) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      series_.emplace(name, s);
    } else {
      assert(it->second.columns == s.columns);
      it->second.rows.insert(it->second.rows.end(), s.rows.begin(),
                             s.rows.end());
    }
  }
  spans_.insert(spans_.end(), other.spans_.begin(), other.spans_.end());
}

ScopedTimer::ScopedTimer(Collector* c, std::string_view name) : c_(c) {
  if (!c_) return;
  slot_ = c_->spans_.size();
  c_->spans_.push_back(
      Span{std::string(name), c_->src_, c_->depth_, Clock::now(), {}});
  ++c_->depth_;
}

ScopedTimer::~ScopedTimer() {
  if (!c_) return;
  Span& s = c_->spans_[slot_];
  s.dur = Clock::now() - s.start;
  --c_->depth_;
}

}  // namespace cpr::obs
