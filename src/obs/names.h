/// \file names.h
/// Canonical counter names shared between emitters and the backward-compat
/// accessors on result structs. Naming convention:
/// `<layer>.<subject>[.<aspect>]`, dot-separated lower_snake_case segments.
/// Layers: gen, conflict, lr, exact, ilp, pao, route, drc, lint.
///
/// This header is the only place a metric-name literal may be spelled out:
/// the `cpr_lint` rule OBS-LITERAL rejects inline `"pao.*"` / `"route.*"` /
/// `"drc.*"` / `"ilp.*"` strings everywhere else, and every constant below
/// must be mirrored in `kAll` (the duplicate/typo guard in obs_names_test
/// checks uniqueness and the naming grammar over that registry).
#pragma once

#include <array>
#include <string_view>

namespace cpr::obs::names {

// Pin access interval generation (Section 3.1).
inline constexpr std::string_view kGenIntervals = "gen.intervals.emitted";
inline constexpr std::string_view kGenShared = "gen.intervals.shared";
inline constexpr std::string_view kGenBlockedPins = "gen.pins.blocked";
// Conflict detection (Section 3.2).
inline constexpr std::string_view kConflictSets = "conflict.sets";
// LR solver (Section 3.4).
inline constexpr std::string_view kLrIterations = "lr.iterations";
inline constexpr std::string_view kLrRemovalRounds = "lr.removal.rounds";
inline constexpr std::string_view kLrReexpandUpgrades = "lr.reexpand.upgrades";
/// Subgradient loop stopped by a Deadline (the best-so-far solution is still
/// repaired and returned, so the result stays legal).
inline constexpr std::string_view kLrTimeout = "lr.timeout";
// Specialized exact branch & bound (Section 3.3).
inline constexpr std::string_view kExactNodes = "exact.nodes";
inline constexpr std::string_view kExactNotProved = "exact.not_proved";
/// Search truncated by a Deadline (as opposed to the node budget).
inline constexpr std::string_view kExactTimeout = "exact.timeout";
// Generic ILP translation path (Formula 1 via ilp::Model).
inline constexpr std::string_view kIlpNodes = "ilp.nodes";
inline constexpr std::string_view kIlpPivots = "ilp.lp.pivots";
inline constexpr std::string_view kIlpNotProved = "ilp.not_proved";
/// Generic B&B stopped by a Deadline (IlpStatus::TimeLimit).
inline constexpr std::string_view kIlpTimeout = "ilp.timeout";
/// Node relaxations warm-started from the parent's optimal basis (dual
/// simplex re-solve) vs. solved from scratch; warm/cold split measures how
/// often the LpBackend seam's basis hand-off actually engages.
inline constexpr std::string_view kIlpWarmSolves = "ilp.lp.warm_solves";
inline constexpr std::string_view kIlpColdSolves = "ilp.lp.cold_solves";
/// Note: name() of the LP engine behind the generic B&B (lp_backend.h).
inline constexpr std::string_view kIlpBackendNote = "ilp.backend";
// Design-level optimizer (panel fan-out).
inline constexpr std::string_view kPaoPanels = "pao.panels";
inline constexpr std::string_view kPaoIntervals = "pao.intervals.generated";
inline constexpr std::string_view kPaoConflicts = "pao.conflicts.detected";
inline constexpr std::string_view kPaoUnassigned = "pao.pins.unassigned";
inline constexpr std::string_view kPaoFallbacks = "pao.solver.fallbacks";
// Per-panel degradation ladder (see DESIGN.md "Failure model").
/// The primary solver threw (or reported Failed); the panel was rescued by a
/// lower rung of the ladder. The plan is still legal.
inline constexpr std::string_view kPaoPanelFailed = "pao.panel.failed";
/// The primary solver timed out, returned an illegal/empty incumbent, or the
/// panel was solved by a fallback rung. Counted at most once per panel, and
/// mutually exclusive with pao.panel.failed.
inline constexpr std::string_view kPaoPanelDegraded = "pao.panel.degraded";
/// Ladder rung that produced the shipped assignment, summed over panels:
/// primary solves land in pao.panel.rung.primary, rescued panels in
/// rung.lr / rung.greedy / rung.minimal.
inline constexpr std::string_view kPaoRungPrimary = "pao.panel.rung.primary";
inline constexpr std::string_view kPaoRungLr = "pao.panel.rung.lr";
inline constexpr std::string_view kPaoRungGreedy = "pao.panel.rung.greedy";
inline constexpr std::string_view kPaoRungMinimal = "pao.panel.rung.minimal";
/// Bytes of the compiled CSR kernels, summed across panels. Size-based (not
/// capacity-based), so the count is deterministic for a given design.
inline constexpr std::string_view kPaoKernelBytes = "pao.kernel.bytes";
/// Arena high-water mark across workers (a gauge: the value depends on how
/// panels landed on workers, so it may vary with the thread count).
inline constexpr std::string_view kPaoScratchPeakBytes =
    "pao.scratch.peak_bytes";
/// Heap allocations observed inside armed hot regions (alloc_hook.h) by the
/// bench harness's counting allocator. The release bench asserts 0: the
/// scratch-arena warmup has to absorb every allocation before the kernels
/// run (DESIGN.md §16 "Hot-path discipline").
inline constexpr std::string_view kPaoHotPathAllocs =
    "pao.alloc.hot_path_allocs";
// Optimizer phase spans (ScopedTimer names) and run notes.
inline constexpr std::string_view kPaoGenSpan = "pao.gen";
inline constexpr std::string_view kPaoConflictSpan = "pao.conflict";
inline constexpr std::string_view kPaoCompileSpan = "pao.compile";
inline constexpr std::string_view kPaoSolveSpan = "pao.solve";
inline constexpr std::string_view kPaoFallbackSpan = "pao.fallback";
inline constexpr std::string_view kPaoTotalSpan = "pao.total";
/// Note: name() of the primary solver that ran the panels.
inline constexpr std::string_view kPaoSolverNote = "pao.solver";
/// Note: status line of the last non-Ok primary solve (degradation ladder).
inline constexpr std::string_view kPaoPanelStatusNote = "pao.panel.status";
/// Note: what() of an exception caught at the panel boundary.
inline constexpr std::string_view kPaoPanelErrorNote = "pao.panel.error";
// Solver trace series (per-iteration rows).
inline constexpr std::string_view kLrIterSeries = "lr.iter";
inline constexpr std::string_view kExactRootSeries = "exact.root";
inline constexpr std::string_view kExactPanelSeries = "exact.panel";
// Routing.
inline constexpr std::string_view kRouteRrrIterations = "route.rrr.iterations";
inline constexpr std::string_view kRouteCongestedPreRrr =
    "route.congested.pre_rrr";
inline constexpr std::string_view kRouteRipups = "route.ripups";
inline constexpr std::string_view kRouteRetries = "route.retries";
inline constexpr std::string_view kRouteSearches = "route.astar.searches";
inline constexpr std::string_view kRoutePops = "route.astar.pops";
inline constexpr std::string_view kRouteDroppedSharing =
    "route.dropped.sharing";
/// A router loop (RRR, sequential queue, DRC repair) stopped by a Deadline.
inline constexpr std::string_view kRouteTimeout = "route.timeout";
// Wave-parallel batch routing (search/commit split).
/// Waves launched by the batch router (every batched net loop contributes).
inline constexpr std::string_view kRouteBatches = "route.batches";
/// Nets deferred to a later wave because their influence box touched the
/// current wave (scheduler conflicts, not routing failures).
inline constexpr std::string_view kRouteBatchConflicts =
    "route.batch.conflicts";
/// Nets that shared their wave with at least one other net, i.e. were
/// eligible to search concurrently. Thread-count independent by design.
inline constexpr std::string_view kRouteParallelNets = "route.parallel_nets";
/// Bench series: per-thread-count RRR wall-clock rows (bench_table2_routers
/// --thread-sweep).
inline constexpr std::string_view kRouteSweepSeries = "route.sweep";
// Negotiation-router phase spans.
inline constexpr std::string_view kRouteIndependentSpan = "route.independent";
inline constexpr std::string_view kRouteRrrSpan = "route.rrr";
inline constexpr std::string_view kRouteDrcRepairSpan = "route.drc_repair";
inline constexpr std::string_view kRouteSignoffSpan = "route.signoff";
// DRC signoff.
inline constexpr std::string_view kDrcViolations = "drc.violations";
inline constexpr std::string_view kDrcLineEnd = "drc.violations.line_end";
inline constexpr std::string_view kDrcViaSpacing =
    "drc.violations.via_spacing";
inline constexpr std::string_view kDrcDirtyNets = "drc.nets.dirty";
// cpr_lint self-metrics (tools/lint --report; the CI lint job archives the
// cpr.report.v1 JSON so linter cost is trackable like any other phase).
inline constexpr std::string_view kLintFiles = "lint.files";
inline constexpr std::string_view kLintDiagnostics = "lint.diagnostics";
/// Unique intra-project call edges the hot-path pass resolved (hotpath.h);
/// a sudden drop means the resolver lost track of the tree.
inline constexpr std::string_view kLintCallgraphEdges =
    "lint.callgraph.edges";
/// ScopedTimer span around the whole lintTree walk.
inline constexpr std::string_view kLintRunSpan = "lint.run";
// Routing service (src/serve, DESIGN.md "Service failure model"). The
// kServeEv* constants double as the protocol's job-lifecycle event names —
// the wire format and the counters deliberately share one vocabulary.
/// Client connections accepted by the daemon, lifetime total.
inline constexpr std::string_view kServeConnections = "serve.connections";
/// Protocol frames that failed to decode (malformed JSON, missing fields).
/// The connection survives: the daemon replies with an error frame.
inline constexpr std::string_view kServeFramesBad = "serve.frames.bad";
/// accept() retries after a transient failure (aborted handshake, fd or
/// buffer exhaustion). The accept loop backs off and lives on; a sustained
/// nonzero rate means the daemon is at its fd limit.
inline constexpr std::string_view kServeAcceptRetried =
    "serve.accept.retried";
/// Jobs admitted into the bounded queue.
inline constexpr std::string_view kServeJobsAccepted = "serve.jobs.accepted";
/// Jobs refused at admission (queue full): terminal `cancelled` status.
inline constexpr std::string_view kServeJobsRejected = "serve.jobs.rejected";
/// Jobs that reached a terminal completed result (ok/degraded/timed_out).
inline constexpr std::string_view kServeJobsCompleted =
    "serve.jobs.completed";
/// Jobs that reached a terminal failed result (bad input or a contained
/// exception at the job boundary); the daemon itself never dies with them.
inline constexpr std::string_view kServeJobsFailed = "serve.jobs.failed";
/// Retry attempts scheduled after a transient (deadline-expired) outcome.
inline constexpr std::string_view kServeJobsRetried = "serve.jobs.retried";
/// Jobs drained from the queue at shutdown without running (terminal
/// `cancelled`, like an admission rejection).
inline constexpr std::string_view kServeJobsCancelled =
    "serve.jobs.cancelled";
/// Gauge: high-water mark of the queue depth (both lanes).
inline constexpr std::string_view kServeQueuePeakDepth =
    "serve.queue.peak_depth";
/// ScopedTimer span around one job attempt (load + pipeline + digest).
inline constexpr std::string_view kServeJobSpan = "serve.job";
// Protocol job-lifecycle event names (serve/protocol.h frames).
inline constexpr std::string_view kServeEvAccepted = "serve.job.accepted";
inline constexpr std::string_view kServeEvStarted = "serve.job.started";
inline constexpr std::string_view kServeEvRetrying = "serve.job.retrying";
inline constexpr std::string_view kServeEvCompleted = "serve.job.completed";
inline constexpr std::string_view kServeEvFailed = "serve.job.failed";
inline constexpr std::string_view kServeEvRejected = "serve.job.rejected";

/// Registry of every canonical name above, in declaration order. New
/// constants MUST be appended here too; obs_names_test asserts the entries
/// are unique and follow the `^[a-z]+(\.[a-z_]+)+$` grammar, which is what
/// catches a typo'd or duplicated metric name at test time rather than in a
/// dashboard.
inline constexpr std::array<std::string_view, 85> kAll = {
    kGenIntervals,         kGenShared,           kGenBlockedPins,
    kConflictSets,         kLrIterations,        kLrRemovalRounds,
    kLrReexpandUpgrades,   kLrTimeout,           kExactNodes,
    kExactNotProved,       kExactTimeout,        kIlpNodes,
    kIlpPivots,            kIlpNotProved,        kIlpTimeout,
    kIlpWarmSolves,        kIlpColdSolves,       kIlpBackendNote,
    kPaoPanels,            kPaoIntervals,        kPaoConflicts,
    kPaoUnassigned,        kPaoFallbacks,        kPaoPanelFailed,
    kPaoPanelDegraded,     kPaoRungPrimary,      kPaoRungLr,
    kPaoRungGreedy,        kPaoRungMinimal,      kPaoKernelBytes,
    kPaoScratchPeakBytes,  kPaoGenSpan,          kPaoConflictSpan,
    kPaoCompileSpan,       kPaoSolveSpan,        kPaoFallbackSpan,
    kPaoTotalSpan,         kPaoSolverNote,       kPaoPanelStatusNote,
    kPaoPanelErrorNote,    kLrIterSeries,        kExactRootSeries,
    kExactPanelSeries,     kRouteRrrIterations,  kRouteCongestedPreRrr,
    kRouteRipups,          kRouteRetries,        kRouteSearches,
    kRoutePops,            kRouteDroppedSharing, kRouteTimeout,
    kRouteBatches,         kRouteBatchConflicts, kRouteParallelNets,
    kRouteSweepSeries,     kRouteIndependentSpan, kRouteRrrSpan,
    kRouteDrcRepairSpan,   kRouteSignoffSpan,    kDrcViolations,
    kDrcLineEnd,           kDrcViaSpacing,       kDrcDirtyNets,
    kLintFiles,            kLintDiagnostics,     kLintRunSpan,
    kServeConnections,     kServeFramesBad,      kServeAcceptRetried,
    kServeJobsAccepted,    kServeJobsRejected,   kServeJobsCompleted,
    kServeJobsFailed,      kServeJobsRetried,    kServeJobsCancelled,
    kServeQueuePeakDepth,  kServeJobSpan,        kServeEvAccepted,
    kServeEvStarted,       kServeEvRetrying,     kServeEvCompleted,
    kServeEvFailed,        kServeEvRejected,     kPaoHotPathAllocs,
    kLintCallgraphEdges,
};

}  // namespace cpr::obs::names
