/// \file names.h
/// Canonical counter names shared between emitters and the backward-compat
/// accessors on result structs. Naming convention:
/// `<layer>.<subject>[.<aspect>]`, dot-separated lower_snake_case segments.
/// Layers: gen, conflict, lr, exact, ilp, pao, route, drc, cli, bench.
#pragma once

#include <string_view>

namespace cpr::obs::names {

// Pin access interval generation (Section 3.1).
inline constexpr std::string_view kGenIntervals = "gen.intervals.emitted";
inline constexpr std::string_view kGenShared = "gen.intervals.shared";
inline constexpr std::string_view kGenBlockedPins = "gen.pins.blocked";
// Conflict detection (Section 3.2).
inline constexpr std::string_view kConflictSets = "conflict.sets";
// LR solver (Section 3.4).
inline constexpr std::string_view kLrIterations = "lr.iterations";
inline constexpr std::string_view kLrRemovalRounds = "lr.removal.rounds";
inline constexpr std::string_view kLrReexpandUpgrades = "lr.reexpand.upgrades";
/// Subgradient loop stopped by a Deadline (the best-so-far solution is still
/// repaired and returned, so the result stays legal).
inline constexpr std::string_view kLrTimeout = "lr.timeout";
// Specialized exact branch & bound (Section 3.3).
inline constexpr std::string_view kExactNodes = "exact.nodes";
inline constexpr std::string_view kExactNotProved = "exact.not_proved";
/// Search truncated by a Deadline (as opposed to the node budget).
inline constexpr std::string_view kExactTimeout = "exact.timeout";
// Generic ILP translation path (Formula 1 via ilp::Model).
inline constexpr std::string_view kIlpNodes = "ilp.nodes";
inline constexpr std::string_view kIlpPivots = "ilp.lp.pivots";
inline constexpr std::string_view kIlpNotProved = "ilp.not_proved";
/// Generic B&B stopped by a Deadline (IlpStatus::TimeLimit).
inline constexpr std::string_view kIlpTimeout = "ilp.timeout";
// Design-level optimizer (panel fan-out).
inline constexpr std::string_view kPaoPanels = "pao.panels";
inline constexpr std::string_view kPaoIntervals = "pao.intervals.generated";
inline constexpr std::string_view kPaoConflicts = "pao.conflicts.detected";
inline constexpr std::string_view kPaoUnassigned = "pao.pins.unassigned";
inline constexpr std::string_view kPaoFallbacks = "pao.solver.fallbacks";
// Per-panel degradation ladder (see DESIGN.md "Failure model").
/// The primary solver threw (or reported Failed); the panel was rescued by a
/// lower rung of the ladder. The plan is still legal.
inline constexpr std::string_view kPaoPanelFailed = "pao.panel.failed";
/// The primary solver timed out, returned an illegal/empty incumbent, or the
/// panel was solved by a fallback rung. Counted at most once per panel, and
/// mutually exclusive with pao.panel.failed.
inline constexpr std::string_view kPaoPanelDegraded = "pao.panel.degraded";
/// Ladder rung that produced the shipped assignment, summed over panels:
/// primary solves land in pao.panel.rung.primary, rescued panels in
/// rung.lr / rung.greedy / rung.minimal.
inline constexpr std::string_view kPaoRungPrimary = "pao.panel.rung.primary";
inline constexpr std::string_view kPaoRungLr = "pao.panel.rung.lr";
inline constexpr std::string_view kPaoRungGreedy = "pao.panel.rung.greedy";
inline constexpr std::string_view kPaoRungMinimal = "pao.panel.rung.minimal";
/// Bytes of the compiled CSR kernels, summed across panels. Size-based (not
/// capacity-based), so the count is deterministic for a given design.
inline constexpr std::string_view kPaoKernelBytes = "pao.kernel.bytes";
// Routing.
inline constexpr std::string_view kRouteRrrIterations = "route.rrr.iterations";
inline constexpr std::string_view kRouteCongestedPreRrr =
    "route.congested.pre_rrr";
inline constexpr std::string_view kRouteRipups = "route.ripups";
inline constexpr std::string_view kRouteRetries = "route.retries";
inline constexpr std::string_view kRouteSearches = "route.astar.searches";
inline constexpr std::string_view kRoutePops = "route.astar.pops";
inline constexpr std::string_view kRouteDroppedSharing =
    "route.dropped.sharing";
/// A router loop (RRR, sequential queue, DRC repair) stopped by a Deadline.
inline constexpr std::string_view kRouteTimeout = "route.timeout";
// DRC signoff.
inline constexpr std::string_view kDrcViolations = "drc.violations";
inline constexpr std::string_view kDrcLineEnd = "drc.violations.line_end";
inline constexpr std::string_view kDrcViaSpacing =
    "drc.violations.via_spacing";
inline constexpr std::string_view kDrcDirtyNets = "drc.nets.dirty";

}  // namespace cpr::obs::names
