/// \file names.h
/// Canonical counter names shared between emitters and the backward-compat
/// accessors on result structs. Naming convention:
/// `<layer>.<subject>[.<aspect>]`, dot-separated lower_snake_case segments.
/// Layers: gen, conflict, lr, exact, ilp, pao, route, drc, cli, bench.
#pragma once

#include <string_view>

namespace cpr::obs::names {

// Pin access interval generation (Section 3.1).
inline constexpr std::string_view kGenIntervals = "gen.intervals.emitted";
inline constexpr std::string_view kGenShared = "gen.intervals.shared";
inline constexpr std::string_view kGenBlockedPins = "gen.pins.blocked";
// Conflict detection (Section 3.2).
inline constexpr std::string_view kConflictSets = "conflict.sets";
// LR solver (Section 3.4).
inline constexpr std::string_view kLrIterations = "lr.iterations";
inline constexpr std::string_view kLrRemovalRounds = "lr.removal.rounds";
inline constexpr std::string_view kLrReexpandUpgrades = "lr.reexpand.upgrades";
// Specialized exact branch & bound (Section 3.3).
inline constexpr std::string_view kExactNodes = "exact.nodes";
inline constexpr std::string_view kExactNotProved = "exact.not_proved";
// Generic ILP translation path (Formula 1 via ilp::Model).
inline constexpr std::string_view kIlpNodes = "ilp.nodes";
inline constexpr std::string_view kIlpPivots = "ilp.lp.pivots";
inline constexpr std::string_view kIlpNotProved = "ilp.not_proved";
// Design-level optimizer (panel fan-out).
inline constexpr std::string_view kPaoPanels = "pao.panels";
inline constexpr std::string_view kPaoIntervals = "pao.intervals.generated";
inline constexpr std::string_view kPaoConflicts = "pao.conflicts.detected";
inline constexpr std::string_view kPaoUnassigned = "pao.pins.unassigned";
inline constexpr std::string_view kPaoFallbacks = "pao.solver.fallbacks";
/// Bytes of the compiled CSR kernels, summed across panels. Size-based (not
/// capacity-based), so the count is deterministic for a given design.
inline constexpr std::string_view kPaoKernelBytes = "pao.kernel.bytes";
// Routing.
inline constexpr std::string_view kRouteRrrIterations = "route.rrr.iterations";
inline constexpr std::string_view kRouteCongestedPreRrr =
    "route.congested.pre_rrr";
inline constexpr std::string_view kRouteRipups = "route.ripups";
inline constexpr std::string_view kRouteRetries = "route.retries";
inline constexpr std::string_view kRouteSearches = "route.astar.searches";
inline constexpr std::string_view kRoutePops = "route.astar.pops";
inline constexpr std::string_view kRouteDroppedSharing =
    "route.dropped.sharing";
// DRC signoff.
inline constexpr std::string_view kDrcViolations = "drc.violations";
inline constexpr std::string_view kDrcLineEnd = "drc.violations.line_end";
inline constexpr std::string_view kDrcViaSpacing =
    "drc.violations.via_spacing";
inline constexpr std::string_view kDrcDirtyNets = "drc.nets.dirty";

}  // namespace cpr::obs::names
