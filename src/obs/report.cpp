#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cpr::obs {

namespace {

/// Earliest span start, the t=0 of both output formats (keeps timestamps
/// small and diff-friendly).
Clock::time_point timeOrigin(const Collector& c) {
  Clock::time_point origin = Clock::time_point::max();
  for (const Span& s : c.spans()) origin = std::min(origin, s.start);
  return origin == Clock::time_point::max() ? Clock::time_point{} : origin;
}

double toMicros(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// Doubles print shortest-round-trip-ish: integers without a trailing ".0"
/// noise is fine for JSON; use %.17g only when needed.
void writeDouble(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << (v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0"));
    return;
  }
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  }
  os << buf;
}

}  // namespace

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void writeReportJson(const Collector& c, std::ostream& os) {
  os << "{\n  \"schema\": \"cpr.report.v1\"";

  os << ",\n  \"notes\": {";
  bool first = true;
  for (const auto& [k, v] : c.notes()) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(k) << "\": \""
       << jsonEscape(v) << "\"";
    first = false;
  }
  os << (first ? "}" : "\n  }");

  os << ",\n  \"counters\": {";
  first = true;
  for (const auto& [k, v] : c.counters()) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(k) << "\": " << v;
    first = false;
  }
  os << (first ? "}" : "\n  }");

  os << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [k, v] : c.gauges()) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(k) << "\": ";
    writeDouble(os, v);
    first = false;
  }
  os << (first ? "}" : "\n  }");

  os << ",\n  \"series\": {";
  first = true;
  for (const auto& [name, s] : c.series()) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
       << "\": {\"columns\": [";
    for (std::size_t i = 0; i < s.columns.size(); ++i)
      os << (i ? ", " : "") << "\"" << jsonEscape(s.columns[i]) << "\"";
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < s.rows.size(); ++r) {
      os << (r ? ", " : "") << "[";
      for (std::size_t i = 0; i < s.rows[r].size(); ++i) {
        os << (i ? ", " : "");
        writeDouble(os, s.rows[r][i]);
      }
      os << "]";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "}" : "\n  }");

  os << ",\n  \"phases\": [";
  const Clock::time_point origin = timeOrigin(c);
  first = true;
  for (const Span& s : c.spans()) {
    os << (first ? "" : ",") << "\n    {\"name\": \"" << jsonEscape(s.name)
       << "\", \"src\": " << s.src << ", \"depth\": " << s.depth
       << ", \"start_us\": ";
    writeDouble(os, toMicros(s.start - origin));
    os << ", \"dur_us\": ";
    writeDouble(os, toMicros(s.dur));
    os << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
}

void writeChromeTrace(const Collector& c, std::ostream& os) {
  // The plain-array form; chrome://tracing and Perfetto both accept it.
  os << "[";
  const Clock::time_point origin = timeOrigin(c);
  bool first = true;
  for (const Span& s : c.spans()) {
    os << (first ? "" : ",") << "\n{\"name\": \"" << jsonEscape(s.name)
       << "\", \"cat\": \"cpr\", \"ph\": \"X\", \"ts\": ";
    writeDouble(os, toMicros(s.start - origin));
    os << ", \"dur\": ";
    writeDouble(os, toMicros(s.dur));
    os << ", \"pid\": 1, \"tid\": " << s.src << "}";
    first = false;
  }
  // Counters ride along as one instant event so a trace file alone still
  // carries the run's headline numbers.
  if (!c.counters().empty()) {
    os << (first ? "" : ",")
       << "\n{\"name\": \"counters\", \"cat\": \"cpr\", \"ph\": \"i\", "
          "\"ts\": 0, \"s\": \"g\", \"pid\": 1, \"tid\": 0, \"args\": {";
    bool f2 = true;
    for (const auto& [k, v] : c.counters()) {
      os << (f2 ? "" : ", ") << "\"" << jsonEscape(k) << "\": " << v;
      f2 = false;
    }
    os << "}}";
  }
  os << "\n]\n";
}

std::string reportJson(const Collector& c) {
  std::ostringstream os;
  writeReportJson(c, os);
  return os.str();
}

std::string chromeTrace(const Collector& c) {
  std::ostringstream os;
  writeChromeTrace(c, os);
  return os.str();
}

namespace {
void saveTo(const std::string& path, const std::string& body) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  os << body;
  if (!os) throw std::runtime_error("failed writing " + path);
}
}  // namespace

void saveReportJson(const Collector& c, const std::string& path) {
  saveTo(path, reportJson(c));
}

void saveChromeTrace(const Collector& c, const std::string& path) {
  saveTo(path, chromeTrace(c));
}

}  // namespace cpr::obs
