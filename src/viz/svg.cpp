#include "viz/svg.h"

#include <array>
#include <fstream>
#include <ostream>

namespace cpr::viz {

namespace {

using geom::Coord;

/// Deterministic per-net color from a small qualitative palette.
std::string netColor(db::Index net) {
  static constexpr std::array<const char*, 10> kPalette{
      "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
      "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf"};
  return kPalette[static_cast<std::size_t>(net) % kPalette.size()];
}

class Canvas {
 public:
  Canvas(std::ostream& os, const SvgOptions& opts, const geom::Rect& window,
         Coord gridHeight)
      : os_(os), opts_(opts), window_(window), gridHeight_(gridHeight) {}

  /// Grid coordinates -> pixel coordinates; y flips so track 0 is at the
  /// bottom, like a layout viewer.
  [[nodiscard]] double px(Coord x) const {
    return (x - window_.x.lo) * opts_.cellPx;
  }
  [[nodiscard]] double py(Coord y) const {
    return (window_.y.hi - y) * opts_.cellPx;
  }

  void rect(const geom::Rect& r, const std::string& fill, double opacity,
            const std::string& stroke = "none") {
    const geom::Rect c = geom::intersect(r, window_);
    if (c.empty()) return;
    os_ << "<rect x=\"" << px(c.x.lo) << "\" y=\"" << py(c.y.hi) << "\" width=\""
        << c.width() * opts_.cellPx << "\" height=\""
        << c.height() * opts_.cellPx << "\" fill=\"" << fill
        << "\" fill-opacity=\"" << opacity << "\" stroke=\"" << stroke
        << "\"/>\n";
  }

  void text(Coord x, Coord y, const std::string& s) {
    if (!window_.contains(geom::Point{x, y})) return;
    os_ << "<text x=\"" << px(x) << "\" y=\"" << py(y) - 2 << "\" font-size=\""
        << opts_.cellPx * 0.9 << "\" font-family=\"monospace\">" << s
        << "</text>\n";
  }

  void circle(Coord x, Coord y, double r, const std::string& fill) {
    if (!window_.contains(geom::Point{x, y})) return;
    os_ << "<circle cx=\"" << px(x) + opts_.cellPx / 2 << "\" cy=\""
        << py(y) + opts_.cellPx / 2 << "\" r=\"" << r << "\" fill=\"" << fill
        << "\"/>\n";
  }

 private:
  std::ostream& os_;
  const SvgOptions& opts_;
  geom::Rect window_;
  Coord gridHeight_;
};

}  // namespace

void renderSvg(const db::Design& design, const core::PinAccessPlan* plan,
               const std::vector<route::NetGeometry>* geometry,
               std::ostream& os, const SvgOptions& opts) {
  const geom::Rect die{0, 0, design.width() - 1, design.gridHeight() - 1};
  const geom::Rect window = opts.window.empty() ? die : opts.window;
  const double w = window.width() * opts.cellPx;
  const double h = window.height() * opts.cellPx;

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
     << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << ' ' << h
     << "\">\n";
  os << "<!-- design " << design.name() << ": " << design.nets().size()
     << " nets, " << design.pins().size() << " pins -->\n";
  Canvas canvas(os, opts, window, design.gridHeight());

  // Die background and row shading.
  canvas.rect(die, "#fafafa", 1.0, "#404040");
  for (Coord r = 0; r < design.numRows(); r += 2) {
    canvas.rect(geom::Rect{geom::Interval{0, design.width() - 1},
                           design.rowTracks(r)},
                "#eef2f7", 1.0);
  }
  if (opts.drawGridLines) {
    for (Coord y = window.y.lo; y <= window.y.hi; ++y) {
      canvas.rect(geom::Rect{window.x, geom::Interval::point(y)}, "#dddddd",
                  0.4);
    }
  }

  // Blockages: M2 dark grey, M3 hatched-ish light grey.
  for (const db::Blockage& b : design.blockages()) {
    canvas.rect(b.shape, b.layer == db::Layer::M2 ? "#666666" : "#bbbbbb",
                b.layer == db::Layer::M2 ? 0.8 : 0.35);
  }

  // Routed geometry under the pins/intervals so hookups stay visible.
  if (geometry) {
    for (std::size_t n = 0; n < geometry->size(); ++n) {
      const std::string color = netColor(static_cast<db::Index>(n));
      for (const route::RouteSegment& s : (*geometry)[n].segments) {
        const geom::Rect r =
            s.m3 ? geom::Rect{geom::Interval::point(s.lane), s.span}
                 : geom::Rect{s.span, geom::Interval::point(s.lane)};
        canvas.rect(r, color, s.m3 ? 0.45 : 0.8);
      }
      for (const route::NetGeometry::Via& v : (*geometry)[n].vias) {
        canvas.circle(v.x, v.y, opts.cellPx * (v.level == 1 ? 0.22 : 0.3),
                      v.level == 1 ? "#000000" : color);
      }
    }
  }

  // Assigned pin access intervals (outlined strips).
  if (plan) {
    for (std::size_t p = 0; p < plan->routes.size(); ++p) {
      const core::PinRoute& r = plan->routes[p];
      if (!r.valid()) continue;
      const db::Index net = design.pins()[p].net;
      canvas.rect(geom::Rect{r.span, geom::Interval::point(r.track)},
                  netColor(net), 0.35, netColor(net));
    }
  }

  // M1 pins.
  for (const db::Pin& pin : design.pins()) {
    canvas.rect(pin.shape, netColor(pin.net), 0.95, "#000000");
    if (opts.labelPins) canvas.text(pin.shape.x.lo, pin.shape.y.hi, pin.name);
  }

  os << "</svg>\n";
}

void saveSvg(const db::Design& design, const core::PinAccessPlan* plan,
             const std::vector<route::NetGeometry>* geometry,
             const std::string& path, const SvgOptions& opts) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  renderSvg(design, plan, geometry, os, opts);
  if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace cpr::viz
