/// \file svg.h
/// SVG rendering of designs, pin access plans, and routed geometry.
///
/// Produces a self-contained SVG: die outline, per-row panel shading, M2/M3
/// blockages, M1 pins (labelled), assigned pin access intervals, routed
/// segments and vias. Intended for debugging pin access interference and
/// for documentation figures (the paper's Figs. 1-5 are exactly this kind
/// of picture).
#pragma once

#include <iosfwd>
#include <string>

#include "core/optimizer.h"
#include "db/design.h"
#include "route/result.h"

namespace cpr::viz {

struct SvgOptions {
  double cellPx = 8.0;    ///< pixels per grid unit
  bool labelPins = true;  ///< draw pin names (disable for large designs)
  bool drawGridLines = false;
  /// Clip to a window of the die (full die when empty).
  geom::Rect window;
};

/// Renders the design (pins, blockages, rows). `plan` adds the assigned pin
/// access intervals; `geometry` (indexed like Design::nets) adds routed
/// segments and vias. Either may be null.
void renderSvg(const db::Design& design, const core::PinAccessPlan* plan,
               const std::vector<route::NetGeometry>* geometry,
               std::ostream& os, const SvgOptions& opts = {});

/// Convenience wrapper writing to a file (throws std::runtime_error on I/O
/// failure).
void saveSvg(const db::Design& design, const core::PinAccessPlan* plan,
             const std::vector<route::NetGeometry>* geometry,
             const std::string& path, const SvgOptions& opts = {});

}  // namespace cpr::viz
