#include "viz/ascii.h"

#include <sstream>
#include <vector>

namespace cpr::viz {

namespace {
using geom::Coord;

char netChar(db::Index net) {
  return static_cast<char>('a' + net % 26);
}
}  // namespace

std::string renderPanelAscii(const db::Design& design, Coord row,
                             const core::PinAccessPlan* plan) {
  const geom::Interval tracks = design.rowTracks(row);
  const Coord w = design.width();
  std::vector<std::string> canvas(static_cast<std::size_t>(tracks.span()),
                                  std::string(static_cast<std::size_t>(w), '.'));
  auto at = [&](Coord x, Coord t) -> char& {
    return canvas[static_cast<std::size_t>(t - tracks.lo)]
                 [static_cast<std::size_t>(x)];
  };

  for (const db::Blockage& b : design.blockages()) {
    if (b.layer != db::Layer::M2) continue;
    const geom::Interval hit = geom::intersect(b.shape.y, tracks);
    for (Coord t = hit.lo; t <= hit.hi; ++t) {
      for (Coord x = std::max<Coord>(0, b.shape.x.lo);
           x <= std::min(w - 1, b.shape.x.hi); ++x) {
        at(x, t) = '#';
      }
    }
  }

  if (plan) {
    for (std::size_t p = 0; p < plan->routes.size(); ++p) {
      const core::PinRoute& r = plan->routes[p];
      if (!r.valid() || !tracks.contains(r.track)) continue;
      for (Coord x = r.span.lo; x <= r.span.hi; ++x) {
        if (at(x, r.track) == '.') at(x, r.track) = '=';
      }
    }
  }

  for (const db::Pin& pin : design.pins()) {
    if (pin.row != row) continue;
    for (Coord t = pin.shape.y.lo; t <= pin.shape.y.hi; ++t) {
      for (Coord x = pin.shape.x.lo; x <= pin.shape.x.hi; ++x) {
        at(x, t) = netChar(pin.net);
      }
    }
  }

  std::ostringstream os;
  for (Coord t = tracks.hi; t >= tracks.lo; --t) {
    os << 't';
    os.width(2);
    os.fill('0');
    os << (t - tracks.lo);
    os.width(0);
    os << ' ' << canvas[static_cast<std::size_t>(t - tracks.lo)] << '\n';
  }
  return os.str();
}

}  // namespace cpr::viz
