/// \file ascii.h
/// Terminal rendering of one routing panel: tracks as rows, columns as
/// characters. Pins print as their net's letter, assigned intervals as '=',
/// blockages as '#'. Handy for debugging pin access interference in tests
/// and examples without leaving the terminal.
#pragma once

#include <string>

#include "core/optimizer.h"
#include "db/design.h"

namespace cpr::viz {

/// Renders row `row` of the design (tracks top-to-bottom = high-to-low).
/// When `plan` is non-null, assigned intervals overlay their tracks.
[[nodiscard]] std::string renderPanelAscii(const db::Design& design,
                                           geom::Coord row,
                                           const core::PinAccessPlan* plan);

}  // namespace cpr::viz
