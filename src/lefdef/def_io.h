/// \file def_io.h
/// DEF-subset reader/writer for pin access designs.
///
/// The repository's design model (placed I/O pin shapes, nets, routing
/// blockages on a uniform track grid) maps onto a compact subset of the
/// DEF 5.8 syntax. The subset is:
///
///   VERSION 5.8 ;
///   DESIGN <name> ;
///   UNITS DISTANCE MICRONS <dbu> ;
///   DIEAREA ( 0 0 ) ( <width> <gridHeight> ) ;
///   ROWS <numRows> <tracksPerRow> ;                  # extension record
///   BLOCKAGES <n> ;
///     - LAYER <M2|M3> RECT ( x0 y0 ) ( x1 y1 ) ;
///   END BLOCKAGES
///   NETS <n> ;
///     - <netName>
///       ( PIN <pinName> LAYER M1 RECT ( x0 t0 ) ( x1 t1 ) )
///       ... ;
///   END NETS
///   END DESIGN
///
/// Coordinates are grid units (column, global track). `ROWS` is a
/// non-standard record carrying the panel structure, flagged as such. The
/// reader is strict: malformed input raises `DefParseError` with a line
/// number.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "db/design.h"

namespace cpr::lefdef {

class DefParseError : public std::runtime_error {
 public:
  DefParseError(int line, const std::string& what)
      : std::runtime_error("DEF parse error at line " + std::to_string(line) +
                           ": " + what),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Serializes `design` in the subset syntax above.
void writeDef(const db::Design& design, std::ostream& os);

/// Parses a design; throws DefParseError on malformed input. The returned
/// design passes `Design::validate()` whenever the input describes a
/// well-formed design.
[[nodiscard]] db::Design readDef(std::istream& is);

/// Convenience file-path wrappers (throw std::runtime_error on I/O failure).
void saveDef(const db::Design& design, const std::string& path);
[[nodiscard]] db::Design loadDef(const std::string& path);

// The routed-DEF writer (`+ ROUTED` wiring statements) lives in
// route/def_export.h: it consumes router geometry, and the lefdef layer
// sits below route in the architecture manifest (tools/lint/layers.txt).

}  // namespace cpr::lefdef
