#include "lefdef/def_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

namespace cpr::lefdef {

namespace {

using geom::Coord;

/// Whitespace tokenizer that tracks line numbers and treats the DEF
/// punctuation characters '(' ')' ';' '-' as standalone tokens.
class Tokenizer {
 public:
  explicit Tokenizer(std::istream& is) : is_(is) {}

  [[nodiscard]] int line() const { return line_; }

  /// Next token, or nullopt at EOF.
  std::optional<std::string> next() {
    if (pending_) {
      auto t = std::move(*pending_);
      pending_.reset();
      return t;
    }
    std::string tok;
    char c = 0;
    while (is_.get(c)) {
      if (c == '\n') ++line_;
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!tok.empty()) return tok;
        continue;
      }
      if (c == '(' || c == ')' || c == ';') {
        if (!tok.empty()) {
          pending_ = std::string(1, c);
          return tok;
        }
        return std::string(1, c);
      }
      tok.push_back(c);
    }
    if (!tok.empty()) return tok;
    return std::nullopt;
  }

  std::string expectAny() {
    auto t = next();
    if (!t) throw DefParseError(line_, "unexpected end of file");
    return *t;
  }

  void expect(const std::string& want) {
    const std::string got = expectAny();
    if (got != want)
      throw DefParseError(line_, "expected '" + want + "', got '" + got + "'");
  }

  Coord expectInt() {
    const std::string t = expectAny();
    long long v = 0;
    try {
      std::size_t used = 0;
      v = std::stoll(t, &used);
      if (used != t.size()) throw std::invalid_argument(t);
    } catch (const std::out_of_range&) {
      throw DefParseError(line_, "integer out of range: '" + t + "'");
    } catch (const std::exception&) {
      throw DefParseError(line_, "expected integer, got '" + t + "'");
    }
    // Coord is 32-bit: a syntactically valid token that does not fit must be
    // rejected here, not silently truncated into a bogus coordinate.
    if (v < std::numeric_limits<Coord>::min() ||
        v > std::numeric_limits<Coord>::max())
      throw DefParseError(line_, "integer out of range: '" + t + "'");
    return static_cast<Coord>(v);
  }

  /// Reads "( x y )".
  geom::Point expectPoint() {
    expect("(");
    const Coord x = expectInt();
    const Coord y = expectInt();
    expect(")");
    return {x, y};
  }

 private:
  std::istream& is_;
  int line_ = 1;
  std::optional<std::string> pending_;
};

db::Layer layerFromName(const std::string& name, int line) {
  if (name == "M1") return db::Layer::M1;
  if (name == "M2") return db::Layer::M2;
  if (name == "M3") return db::Layer::M3;
  throw DefParseError(line, "unknown layer '" + name + "'");
}

}  // namespace

void writeDef(const db::Design& design, std::ostream& os) {
  os << "VERSION 5.8 ;\n";
  os << "DESIGN " << design.name() << " ;\n";
  os << "UNITS DISTANCE MICRONS 1000 ;\n";
  os << "DIEAREA ( 0 0 ) ( " << design.width() << ' ' << design.gridHeight()
     << " ) ;\n";
  os << "ROWS " << design.numRows() << ' ' << design.tracksPerRow() << " ;\n";

  os << "BLOCKAGES " << design.blockages().size() << " ;\n";
  for (const db::Blockage& b : design.blockages()) {
    os << "  - LAYER " << db::name(b.layer) << " RECT ( " << b.shape.x.lo
       << ' ' << b.shape.y.lo << " ) ( " << b.shape.x.hi << ' ' << b.shape.y.hi
       << " ) ;\n";
  }
  os << "END BLOCKAGES\n";

  os << "NETS " << design.nets().size() << " ;\n";
  for (const db::Net& net : design.nets()) {
    os << "  - " << net.name << "\n";
    for (db::Index p : net.pins) {
      const db::Pin& pin = design.pin(p);
      os << "    ( PIN " << pin.name << " LAYER M1 RECT ( " << pin.shape.x.lo
         << ' ' << pin.shape.y.lo << " ) ( " << pin.shape.x.hi << ' '
         << pin.shape.y.hi << " ) )\n";
    }
    os << "  ;\n";
  }
  os << "END NETS\n";
  os << "END DESIGN\n";
}

db::Design readDef(std::istream& is) {
  Tokenizer tok(is);
  tok.expect("VERSION");
  tok.expectAny();  // version literal
  tok.expect(";");
  tok.expect("DESIGN");
  const std::string name = tok.expectAny();
  tok.expect(";");
  tok.expect("UNITS");
  tok.expect("DISTANCE");
  tok.expect("MICRONS");
  tok.expectInt();
  tok.expect(";");
  tok.expect("DIEAREA");
  const geom::Point origin = tok.expectPoint();
  const geom::Point extent = tok.expectPoint();
  if (origin.x != 0 || origin.y != 0)
    throw DefParseError(tok.line(), "DIEAREA must start at the origin");
  tok.expect(";");
  tok.expect("ROWS");
  const Coord numRows = tok.expectInt();
  const Coord tracksPerRow = tok.expectInt();
  tok.expect(";");
  if (numRows <= 0 || tracksPerRow <= 0)
    throw DefParseError(tok.line(), "non-positive row geometry");
  if (extent.x <= 0)
    throw DefParseError(tok.line(), "non-positive die width");
  // The product can overflow Coord (int32); compare in 64 bits.
  if (static_cast<long long>(numRows) * tracksPerRow !=
      static_cast<long long>(extent.y))
    throw DefParseError(tok.line(), "DIEAREA height disagrees with ROWS");

  db::Design design(name, extent.x, numRows, tracksPerRow);

  tok.expect("BLOCKAGES");
  const Coord nBlockages = tok.expectInt();
  if (nBlockages < 0)
    throw DefParseError(tok.line(), "negative BLOCKAGES count");
  tok.expect(";");
  for (Coord k = 0; k < nBlockages; ++k) {
    tok.expect("-");
    tok.expect("LAYER");
    const db::Layer layer = layerFromName(tok.expectAny(), tok.line());
    tok.expect("RECT");
    const geom::Point lo = tok.expectPoint();
    const geom::Point hi = tok.expectPoint();
    tok.expect(";");
    design.addBlockage(layer, geom::Rect{lo.x, lo.y, hi.x, hi.y});
  }
  tok.expect("END");
  tok.expect("BLOCKAGES");

  tok.expect("NETS");
  const Coord nNets = tok.expectInt();
  if (nNets < 0) throw DefParseError(tok.line(), "negative NETS count");
  tok.expect(";");
  for (Coord k = 0; k < nNets; ++k) {
    tok.expect("-");
    const std::string netName = tok.expectAny();
    const db::Index net = design.addNet(netName);
    for (std::string t = tok.expectAny(); t != ";"; t = tok.expectAny()) {
      if (t != "(")
        throw DefParseError(tok.line(), "expected '(' or ';' in net " + netName);
      tok.expect("PIN");
      const std::string pinName = tok.expectAny();
      tok.expect("LAYER");
      const db::Layer layer = layerFromName(tok.expectAny(), tok.line());
      if (layer != db::Layer::M1)
        throw DefParseError(tok.line(), "pins must be on M1");
      tok.expect("RECT");
      const geom::Point lo = tok.expectPoint();
      const geom::Point hi = tok.expectPoint();
      tok.expect(")");
      design.addPin(pinName, net, geom::Rect{lo.x, lo.y, hi.x, hi.y});
    }
  }
  tok.expect("END");
  tok.expect("NETS");
  tok.expect("END");
  tok.expect("DESIGN");
  return design;
}

namespace {

/// "<verb>: <path>: <strerror>", with errno captured before it can be
/// clobbered by further stream calls.
std::string ioError(const std::string& verb, const std::string& path) {
  const int err = errno;
  std::string msg = verb + ": " + path;
  if (err != 0) msg += std::string(": ") + std::strerror(err);
  return msg;
}

}  // namespace

void saveDef(const db::Design& design, const std::string& path) {
  errno = 0;
  std::ofstream os(path);
  if (!os) throw std::runtime_error(ioError("cannot open for writing", path));
  writeDef(design, os);
  os.flush();
  if (!os) throw std::runtime_error(ioError("write failed", path));
}

db::Design loadDef(const std::string& path) {
  errno = 0;
  std::ifstream is(path);
  if (!is) throw std::runtime_error(ioError("cannot open for reading", path));
  return readDef(is);
}

}  // namespace cpr::lefdef
