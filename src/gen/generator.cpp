#include "gen/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace cpr::gen {

namespace {

struct RawPin {
  Coord row = 0;
  Coord col = 0;
  geom::Interval tracks;  ///< global track range
  bool used = false;
};

/// Places candidate pins: same-row pins keep `pinSeparation` columns between
/// them (standard cells never abut I/O pins; it also backs the optimizer's
/// line-end spacing guard). Placement is a jittered stride so that quotas
/// close to the separation-limited capacity still fill.
std::vector<RawPin> placePins(const GenOptions& o, std::size_t wanted,
                              std::mt19937_64& rng) {
  std::vector<RawPin> pins;
  pins.reserve(wanted);
  const auto perRowQuota = static_cast<std::size_t>(
      (wanted + static_cast<std::size_t>(o.numRows) - 1) /
      static_cast<std::size_t>(o.numRows));

  for (Coord r = 0; r < o.numRows && pins.size() < wanted; ++r) {
    const std::size_t capacity = static_cast<std::size_t>(
        (o.width + o.pinSeparation - 1) / o.pinSeparation);
    const std::size_t n =
        std::min({perRowQuota, capacity, wanted - pins.size()});
    if (n == 0) continue;
    const double stride = static_cast<double>(o.width) / static_cast<double>(n);
    const Coord jitterMax =
        std::max<Coord>(0, static_cast<Coord>(stride) - o.pinSeparation);
    for (std::size_t k = 0; k < n; ++k) {
      std::uniform_int_distribution<Coord> jitter(0, jitterMax);
      const Coord c = std::min<Coord>(
          o.width - 1,
          static_cast<Coord>(stride * static_cast<double>(k)) + jitter(rng));
      RawPin p;
      p.row = r;
      p.col = c;
      // Track span inside the row, avoiding the two boundary (power rail)
      // tracks.
      const Coord rowLo = r * o.tracksPerRow;
      const Coord usableLo = rowLo + 1;
      const Coord usableHi = rowLo + o.tracksPerRow - 2;
      const Coord maxLen =
          std::min<Coord>(o.maxPinTracks, usableHi - usableLo + 1);
      std::uniform_int_distribution<Coord> lenDist(
          std::min<Coord>(o.minPinTracks, maxLen), maxLen);
      const Coord len = lenDist(rng);
      std::uniform_int_distribution<Coord> startDist(usableLo,
                                                     usableHi - len + 1);
      const Coord lo = startDist(rng);
      p.tracks = {lo, lo + len - 1};
      pins.push_back(p);
    }
  }
  return pins;
}

/// Greedy local net grouping; returns nets as lists of raw-pin indices.
std::vector<std::vector<std::size_t>> groupNets(const GenOptions& o,
                                                std::vector<RawPin>& pins,
                                                std::size_t targetNets,
                                                std::mt19937_64& rng) {
  // Row buckets sorted by column for locality window queries.
  std::vector<std::vector<std::size_t>> byRow(
      static_cast<std::size_t>(o.numRows));
  for (std::size_t i = 0; i < pins.size(); ++i)
    byRow[static_cast<std::size_t>(pins[i].row)].push_back(i);
  for (auto& bucket : byRow) {
    std::sort(bucket.begin(), bucket.end(), [&](std::size_t a, std::size_t b) {
      return pins[a].col < pins[b].col;
    });
  }
  auto candidates = [&](const RawPin& seed, std::vector<std::size_t>& out) {
    out.clear();
    const Coord r0 = std::max<Coord>(0, seed.row - o.maxNetRowSpread);
    const Coord r1 =
        std::min<Coord>(o.numRows - 1, seed.row + o.maxNetRowSpread);
    for (Coord r = r0; r <= r1; ++r) {
      const auto& bucket = byRow[static_cast<std::size_t>(r)];
      auto lo = std::lower_bound(bucket.begin(), bucket.end(),
                                 seed.col - o.maxNetSpan,
                                 [&](std::size_t idx, Coord v) {
                                   return pins[idx].col < v;
                                 });
      for (auto it = lo; it != bucket.end() &&
                         pins[*it].col <= seed.col + o.maxNetSpan;
           ++it) {
        if (!pins[*it].used) out.push_back(*it);
      }
    }
  };

  std::vector<std::size_t> order(pins.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<std::vector<std::size_t>> nets;
  std::vector<std::size_t> cand;
  std::uniform_int_distribution<int> sizeDist(o.minPinsPerNet,
                                              o.maxPinsPerNet);
  for (std::size_t seedIdx : order) {
    if (nets.size() >= targetNets) break;
    if (pins[seedIdx].used) continue;
    candidates(pins[seedIdx], cand);
    // `cand` includes the seed itself; a net needs >= 2 pins total.
    if (cand.size() < 2) continue;
    const auto want = static_cast<std::size_t>(sizeDist(rng));
    std::shuffle(cand.begin(), cand.end(), rng);
    std::vector<std::size_t> net{seedIdx};
    pins[seedIdx].used = true;
    for (std::size_t c : cand) {
      if (net.size() >= want) break;
      if (c == seedIdx || pins[c].used) continue;
      pins[c].used = true;
      net.push_back(c);
    }
    if (net.size() < 2) {
      // Shuffle raced us out of partners; undo.
      for (std::size_t c : net) pins[c].used = false;
      continue;
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

void addRailAndM3Blockages(const GenOptions& o, db::Design& d) {
  if (o.powerRails) {
    for (Coord r = 0; r < o.numRows; ++r) {
      for (const Coord t :
           {r * o.tracksPerRow, (r + 1) * o.tracksPerRow - 1}) {
        d.addBlockage(db::Layer::M2,
                      geom::Rect{geom::Interval{0, o.width - 1},
                                 geom::Interval{t, t}});
      }
    }
  }
  if (o.m3Pitch > 1) {
    const Coord height = o.numRows * o.tracksPerRow;
    for (Coord x = 0; x < o.width; ++x) {
      if (x % o.m3Pitch == 0) continue;  // on-pitch columns stay routable
      d.addBlockage(db::Layer::M3,
                    geom::Rect{geom::Interval{x, x},
                               geom::Interval{0, height - 1}});
    }
  }
}

void addBlockages(const GenOptions& o, db::Design& d, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::uniform_int_distribution<Coord> lenDist(2, std::max<Coord>(2, o.maxBlockageLen));
  for (Coord r = 0; r < o.numRows; ++r) {
    double expected = o.blockagesPerRow;
    while (expected > 0.0) {
      if (expected < 1.0 && uni(rng) > expected) break;
      expected -= 1.0;
      const Coord len = lenDist(rng);
      if (len >= o.width) continue;
      std::uniform_int_distribution<Coord> colDist(0, o.width - len);
      std::uniform_int_distribution<Coord> trackDist(
          r * o.tracksPerRow + 1, (r + 1) * o.tracksPerRow - 2);
      const Coord c0 = colDist(rng);
      const Coord t = trackDist(rng);
      const geom::Rect shape{geom::Interval{c0, c0 + len - 1},
                             geom::Interval{t, t}};
      // Keep every pin fully accessible: never overlap a pin shape.
      bool hitsPin = false;
      for (const db::Pin& p : d.pins()) {
        if (p.row == r && p.shape.overlaps(shape)) {
          hitsPin = true;
          break;
        }
      }
      if (!hitsPin) d.addBlockage(db::Layer::M2, shape);
    }
  }
}

db::Design generateImpl(const GenOptions& o, std::size_t targetNets) {
  if (o.width <= 0 || o.numRows <= 0 || o.tracksPerRow < 5)
    throw std::invalid_argument("generator: degenerate die parameters");
  std::mt19937_64 rng(o.seed);

  const double avgPins = (o.minPinsPerNet + o.maxPinsPerNet) / 2.0;
  const std::size_t wantedPins =
      targetNets == 0
          ? static_cast<std::size_t>(static_cast<double>(o.width) *
                                     static_cast<double>(o.numRows) *
                                     o.pinDensity)
          : static_cast<std::size_t>(std::ceil(
                static_cast<double>(targetNets) * avgPins * 1.25));

  std::vector<RawPin> raw = placePins(o, wantedPins, rng);
  const std::size_t goal =
      targetNets == 0 ? raw.size() : targetNets;  // grouping stops at goal
  std::vector<std::vector<std::size_t>> nets = groupNets(o, raw, goal, rng);
  if (targetNets != 0 && nets.size() < targetNets)
    throw std::runtime_error("generator: could not reach target net count for " +
                             o.name);

  db::Design d(o.name, o.width, o.numRows, o.tracksPerRow);
  for (std::size_t n = 0; n < nets.size(); ++n) {
    const db::Index netId = d.addNet("n" + std::to_string(n));
    for (std::size_t k = 0; k < nets[n].size(); ++k) {
      const RawPin& rp = raw[nets[n][k]];
      d.addPin("n" + std::to_string(n) + "_p" + std::to_string(k), netId,
               geom::Rect{geom::Interval::point(rp.col), rp.tracks});
    }
  }
  addBlockages(o, d, rng);
  addRailAndM3Blockages(o, d);
  assert(d.validate().empty());
  return d;
}

}  // namespace

db::Design generate(const GenOptions& opts) { return generateImpl(opts, 0); }

const std::vector<SuiteSpec>& paperSuite() {
  static const std::vector<SuiteSpec> kSuite{
      {"ecc", 1671, 21.0, 21.0}, {"efc", 2219, 20.0, 19.0},
      {"ctl", 2706, 24.0, 24.0}, {"alu", 3108, 20.0, 19.0},
      {"div", 5813, 31.0, 31.0}, {"top", 22201, 57.0, 56.0},
  };
  return kSuite;
}

const SuiteSpec& suiteSpec(const std::string& name) {
  for (const SuiteSpec& s : paperSuite()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown suite design: " + name);
}

db::Design makeSuiteDesign(const SuiteSpec& spec, const GenOptions& base) {
  constexpr double kPitchUm = 0.040;  // 40 nm M2 pitch (10 nm node class)
  // The paper's designs differ in net density per um^2 (their cell libraries
  // and utilizations are unpublished); to give every synthetic stand-in the
  // same pin-access competition level we keep the published aspect ratio but
  // scale the die so that pins fill a fixed fraction of the
  // separation-limited pin capacity. See DESIGN.md §4.
  constexpr double kTargetUtilization = 0.62;
  GenOptions o = base;
  o.name = spec.name;
  o.tracksPerRow = 10;
  const double w0 = spec.widthUm / kPitchUm;
  const double rows0 = spec.heightUm / (kPitchUm * o.tracksPerRow);
  const double avgPins = (o.minPinsPerNet + o.maxPinsPerNet) / 2.0;
  const double wantedPins = static_cast<double>(spec.nets) * avgPins * 1.25;
  const double cap0 = w0 / static_cast<double>(o.pinSeparation) * rows0;
  const double s = std::sqrt(wantedPins / (kTargetUtilization * cap0));
  o.width = static_cast<Coord>(std::lround(w0 * s));
  o.numRows = static_cast<Coord>(std::lround(rows0 * s));
  return generateImpl(o, static_cast<std::size_t>(spec.nets));
}

db::Design makeSuiteDesign(const SuiteSpec& spec, std::uint64_t seed) {
  // Calibrated competition level: routability for all three routing schemes
  // lands in the paper's 92-98% band and the qualitative Table 2 / Fig. 7
  // orderings hold (see EXPERIMENTS.md).
  GenOptions o;
  o.seed = seed;
  o.minPinsPerNet = 2;
  o.maxPinsPerNet = 4;  // short local nets dominate the lower layers
  o.minPinTracks = 2;   // few accessing points -> sharp pin access interference
  o.maxPinTracks = 4;
  o.maxNetSpan = 60;
  o.maxNetRowSpread = 1;
  o.blockagesPerRow = 6.0;
  o.maxBlockageLen = 20;
  o.m3Pitch = 3;
  return makeSuiteDesign(spec, o);
}

}  // namespace cpr::gen
