/// \file generator.h
/// Synthetic standard-cell design generation.
///
/// The paper evaluates on the PARR [12] benchmark suite (ecc, efc, ctl, alu,
/// div, top), which is not publicly available. This generator synthesizes
/// placed designs matched on the published knobs — net count, die size, 10
/// M2 tracks per row, short local nets — so that the pin access competition
/// structure (pins per panel, diff-net pins sharing tracks, net bounding box
/// overlap) exercises the same code paths the paper measures. See DESIGN.md
/// §4 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/design.h"

namespace cpr::gen {

using db::Coord;

struct GenOptions {
  std::string name = "synth";
  std::uint64_t seed = 1;
  Coord width = 200;        ///< grid columns
  Coord numRows = 10;
  Coord tracksPerRow = 10;  ///< the paper's panel height
  /// Fraction of columns per row carrying a pin (routing competition knob).
  double pinDensity = 0.25;
  /// Minimum column distance between same-row pins. Must exceed twice the
  /// optimizer's line-end spacing guard (see core::GenOptions::spacingGuard)
  /// for Theorem 1's feasibility argument to hold.
  Coord pinSeparation = 3;
  /// M2 tracks an M1 pin strip crosses (its candidate access tracks). Fewer
  /// tracks = fewer accessing points = sharper pin access interference
  /// (paper Section 1: "smaller number of accessing points").
  Coord minPinTracks = 3;
  Coord maxPinTracks = 6;
  int minPinsPerNet = 2;
  int maxPinsPerNet = 4;
  /// Maximum column distance between pins of one net (net locality; lower
  /// metal layers are "primarily reserved for short nets", Section 1).
  Coord maxNetSpan = 40;
  /// Rows a net may straddle above/below its seed pin.
  Coord maxNetRowSpread = 1;
  /// Expected number of M2 blockage strips per row (cell-internal metal).
  double blockagesPerRow = 1.0;
  Coord maxBlockageLen = 12;
  /// Block the first and last track of every row with a full-width M2 strip:
  /// the synthesized power/ground rails that separate the die into panels
  /// (paper Section 3).
  bool powerRails = true;
  /// M3 track pitch in columns: vertical routing is only available every
  /// `m3Pitch`-th column (upper layers are coarser than M2 in real stacks).
  Coord m3Pitch = 2;
};

/// Generates a deterministic random design. Guarantees: pins have disjoint
/// shapes (distinct columns per row), every pin keeps at least one
/// unblocked track, every net has >= 2 pins, and the design validates.
[[nodiscard]] db::Design generate(const GenOptions& opts);

/// Published parameters of one paper benchmark (Table 2 columns 1-3).
struct SuiteSpec {
  std::string name;
  int nets;          ///< paper's Net#
  double widthUm;    ///< die width, micrometres
  double heightUm;   ///< die height, micrometres
};

/// The six designs of Table 2: ecc, efc, ctl, alu, div, top.
[[nodiscard]] const std::vector<SuiteSpec>& paperSuite();

/// Builds the synthetic stand-in for one paper benchmark: die dimensions are
/// converted to grid units at a 48 nm track pitch and nets are generated
/// until the published net count is met.
[[nodiscard]] db::Design makeSuiteDesign(const SuiteSpec& spec,
                                         std::uint64_t seed = 7);

/// Expert variant: derives die dimensions and net count from `spec` but
/// takes every other knob (seed, net sizes, blockages, M3 pitch, ...) from
/// `base`. Used by calibration and ablation benches.
[[nodiscard]] db::Design makeSuiteDesign(const SuiteSpec& spec,
                                         const GenOptions& base);

/// Convenience: spec lookup by name ("ecc", ..., "top"); throws
/// std::invalid_argument for unknown names.
[[nodiscard]] const SuiteSpec& suiteSpec(const std::string& name);

}  // namespace cpr::gen
