/// \file client.h
/// Client side of the routing service protocol: a buffered line-framed
/// connection plus a synchronous run-one-job helper.
///
/// `Client` is deliberately thin — connect, send a line, read a line. The
/// chaos harness drives it directly to pipeline many jobs down one
/// connection and demultiplex replies by id; `runJob` is the one-at-a-time
/// convenience used by the `cpr_client` tool.
#pragma once

#include <string>
#include <vector>

#include "serve/protocol.h"
#include "support/status.h"

namespace cpr::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] support::Status connect(const std::string& socketPath);
  /// Appends '\n' and writes the whole frame; false when the peer is gone.
  bool sendLine(const std::string& frame);
  /// Next '\n'-terminated line (without the newline); false on EOF/error.
  bool readLine(std::string& out);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string pending_;
};

/// Sends one route request and reads frames until this job's terminal
/// frame. Progress frames (and any frames for other ids) are appended to
/// `events` when given. The outer Status reports transport problems
/// (connection lost mid-job); the job's own outcome is in the JobResult.
[[nodiscard]] support::Outcome<JobResult> runJob(
    Client& client, const RouteRequest& request,
    std::vector<Reply>* events = nullptr);

}  // namespace cpr::serve
