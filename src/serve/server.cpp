#include "serve/server.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "eval/metrics.h"
#include "gen/generator.h"
#include "lefdef/def_io.h"
#include "obs/names.h"
#include "route/cpr.h"
#include "route/result.h"
#include "route/sequential_router.h"
#include "support/deadline.h"

namespace cpr::serve {

namespace {

/// A reader that accumulates this much without a newline is not speaking
/// the protocol (or is trying to exhaust memory); the connection is dropped.
constexpr std::size_t kMaxFrameBytes = 16U << 20U;

[[nodiscard]] std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xFU];
    v >>= 4;
  }
  return out;
}

}  // namespace

/// One client connection. The fd is owned here and closed exactly once, by
/// the destructor — queued jobs hold the shared_ptr, so the reply channel
/// outlives both the reader thread and the reader-side EOF.
struct Server::Connection {
  explicit Connection(int f) : fd(f) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd = -1;
  /// Frames are lines; interleaved writes would tear. CPR_MAY_BLOCK: this
  /// mutex exists to serialize socket writes, so the blocking ::send under
  /// it is the point, not a bug — a stalled peer wedges only its own
  /// connection (and only until SO_SNDTIMEO fires).
  std::mutex writeMu CPR_MAY_BLOCK;
  /// Set (under writeMu) when a send fails or times out: the peer is gone
  /// or not reading. Later frames for this connection return immediately
  /// instead of re-blocking a worker on a dead socket.
  bool broken CPR_GUARDED_BY(writeMu) = false;
};

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), queue_(opts_.laneCapacity) {}

Server::~Server() { stop(); }

support::Status Server::start() {
  sockaddr_un addr{};
  if (opts_.socketPath.empty() ||
      opts_.socketPath.size() >= sizeof addr.sun_path) {
    return support::Status::failed("socket path empty or too long");
  }
  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0) return support::Status::failed("socket() failed");
  ::unlink(opts_.socketPath.c_str());
  addr.sun_family = AF_UNIX;
  opts_.socketPath.copy(addr.sun_path, sizeof addr.sun_path - 1);
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listenFd_, 64) != 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    return support::Status::failed("cannot bind/listen on " +
                                   opts_.socketPath);
  }
  {
    std::lock_guard<std::mutex> lock(lifecycleMu_);
    phase_ = Phase::kRunning;
  }
  acceptThread_ = std::thread([this] { acceptLoop(); });
  // Workers are long-lived tasks on the shared pool seam. Pool size is
  // workers + 1 because the constructing thread counts as worker 0 and
  // posted tasks only run on the spawned workers.
  const int workers = std::max(1, opts_.workers);
  workerPool_ = std::make_unique<support::ThreadPool>(workers + 1);
  for (int i = 0; i < workers; ++i)
    workerPool_->post([this] { workerLoop(); });
  return support::Status::ok();
}

void Server::stop() {
  {
    std::unique_lock<std::mutex> lock(lifecycleMu_);
    if (phase_ != Phase::kRunning) {
      // Never started (nothing to do), or another thread is already tearing
      // down. In the latter case, WAIT for it: returning early would let
      // our caller destroy the server while that thread still uses the
      // queue, the pool, and the connection registry.
      shutdownCv_.wait(lock, [this] { return phase_ != Phase::kStopping; });
      return;
    }
    phase_ = Phase::kStopping;
    shutdownCv_.notify_all();  // wake waitForShutdownRequest()
  }
  // Stop admitting: wake the accept loop, then close the queue so workers
  // exit after their in-flight job. Leftover queue entries become Cancelled
  // terminals — every admitted job reaches a terminal frame, even now.
  ::shutdown(listenFd_, SHUT_RDWR);
  queue_.close();
  if (workerPool_) {
    workerPool_->drain();  // closed queue -> every workerLoop task returns
    workerPool_.reset();
  }
  for (Job& job : queue_.drainRemaining()) {
    JobResult r;
    r.id = job.request.id;
    r.event = obs::names::kServeEvRejected;
    r.status = support::statusCodeName(support::StatusCode::Cancelled);
    r.detail = "server shutting down before the job could run";
    r.attempts = job.attempt;
    bump(obs::names::kServeJobsCancelled);
    if (auto conn = std::static_pointer_cast<Connection>(job.session))
      sendToConn(*conn, encodeResult(r));
  }
  // Workers are gone, terminals are sent: now unblock and join readers.
  // The accept thread is joined FIRST — a connection landing between the
  // listen-socket shutdown and the accept loop noticing would otherwise be
  // added after this pass and leave its reader blocked forever.
  if (acceptThread_.joinable()) acceptThread_.join();
  {
    std::lock_guard<std::mutex> lock(connMu_);
    for (const std::shared_ptr<Connection>& c : conns_)
      ::shutdown(c->fd, SHUT_RDWR);
  }
  // Join live readers one at a time, moving each handle out under the lock
  // and joining outside it — a reader's exit path takes connMu_ itself, so
  // joining under the lock would deadlock.
  while (true) {
    std::thread reader;
    {
      std::lock_guard<std::mutex> lock(connMu_);
      if (readers_.empty()) break;
      auto it = readers_.begin();
      reader = std::move(it->second);
      readers_.erase(it);
    }
    if (reader.joinable()) reader.join();
  }
  reapFinishedReaders();  // readers that exited on their own since the scan
  {
    std::lock_guard<std::mutex> lock(connMu_);
    conns_.clear();  // destructors close the fds
  }
  ::close(listenFd_);
  listenFd_ = -1;
  ::unlink(opts_.socketPath.c_str());
  {
    std::lock_guard<std::mutex> lock(lifecycleMu_);
    phase_ = Phase::kStopped;
    shutdownCv_.notify_all();  // release any concurrent stop() callers
  }
}

void Server::requestShutdown() {
  std::lock_guard<std::mutex> lock(lifecycleMu_);
  shutdownRequested_ = true;
  shutdownCv_.notify_all();
}

void Server::waitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(lifecycleMu_);
  shutdownCv_.wait(
      lock, [this] { return shutdownRequested_ || phase_ != Phase::kRunning; });
}

obs::Collector Server::statsSnapshot() const {
  // Read the queue's mark before taking statsMu_: the admission callback
  // runs under the queue lock and bumps counters (queue -> stats order), so
  // taking the locks here in the opposite order would be an ABBA deadlock.
  const auto peak = static_cast<double>(queue_.peakDepth());
  std::lock_guard<std::mutex> lock(statsMu_);
  obs::Collector copy = stats_;
  copy.gauge(obs::names::kServeQueuePeakDepth, peak);
  return copy;
}

void Server::bump(std::string_view counter, long delta) {
  std::lock_guard<std::mutex> lock(statsMu_);
  stats_.add(counter, delta);
}

void Server::acceptLoop() {
  while (true) {
    reapFinishedReaders();
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      {
        std::lock_guard<std::mutex> lock(lifecycleMu_);
        if (phase_ != Phase::kRunning) return;  // stop() shut the socket down
      }
      // A long-lived daemon's front door must survive transient accept
      // failures: a handshake the peer already aborted, or a momentary
      // fd / buffer shortage (which WILL happen under flood). Only a
      // genuinely broken listen socket ends the loop.
      if (err == ECONNABORTED || err == EPROTO) continue;
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        bump(obs::names::kServeAcceptRetried);
        // Back off so the retry is not a busy spin while every fd is in
        // use; reaping above frees fds as readers finish.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      return;  // EBADF/EINVAL etc.: the listen socket itself is gone
    }
    if (opts_.sendTimeoutSeconds > 0.0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(opts_.sendTimeoutSeconds);
      tv.tv_usec = static_cast<suseconds_t>(
          (opts_.sendTimeoutSeconds - static_cast<double>(tv.tv_sec)) * 1e6);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }
    bump(obs::names::kServeConnections);
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(connMu_);
    conns_.push_back(conn);
    // Registered under connMu_ BEFORE the thread can deregister itself:
    // readerMain's exit path takes the same lock.
    readers_.emplace(conn.get(),
                     std::thread([this, conn] { readerMain(conn); }));
  }
}

void Server::readerMain(std::shared_ptr<Connection> conn) {
  readerLoop(conn);
  // Deregister: drop the registry's ref (queued jobs keep theirs, so the
  // fd closes once the last terminal frame is sent) and park the thread
  // handle where the accept loop or stop() will join it.
  std::lock_guard<std::mutex> lock(connMu_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn), conns_.end());
  const auto it = readers_.find(conn.get());
  if (it != readers_.end()) {
    doneReaders_.push_back(std::move(it->second));
    readers_.erase(it);
  }
}

void Server::reapFinishedReaders() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(connMu_);
    done.swap(doneReaders_);
  }
  // These threads have exited (or are in readerMain's last lines); the
  // joins are immediate. Never under connMu_ — see readerMain.
  for (std::thread& t : done)
    if (t.joinable()) t.join();
}

void Server::readerLoop(const std::shared_ptr<Connection>& conn) {
  std::string pending;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // EOF or error; queued jobs still hold the reply channel
    }
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = pending.find('\n', start);
         nl != std::string::npos; nl = pending.find('\n', start)) {
      const std::string_view line(pending.data() + start, nl - start);
      if (!line.empty()) handleRequest(conn, decodeRequest(line));
      start = nl + 1;
    }
    pending.erase(0, start);
    if (pending.size() > kMaxFrameBytes) {
      bump(obs::names::kServeFramesBad);
      sendToConn(*conn, encodeError("frame exceeds the 16 MiB line limit"));
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
  }
}

void Server::handleRequest(const std::shared_ptr<Connection>& conn,
                           const Request& req) {
  switch (req.kind) {
    case Request::Kind::Invalid:
      bump(obs::names::kServeFramesBad);
      sendToConn(*conn, encodeError("bad frame: " + req.error));
      return;
    case Request::Kind::Ping:
      sendToConn(*conn, encodePong());
      return;
    case Request::Kind::Stats:
      sendToConn(*conn, encodeStatsReply(statsSnapshot().counters()));
      return;
    case Request::Kind::Shutdown: {
      if (!opts_.allowRemoteShutdown) {
        sendToConn(*conn, encodeError("shutdown is not enabled"));
        return;
      }
      requestShutdown();
      return;
    }
    case Request::Kind::Route:
      break;
  }

  Job job;
  job.request = req.route;
  job.session = conn;
  // Admission composes the budget: the client's ask, capped by the
  // server-wide watchdog. Queue wait spends this budget — a job that
  // starves in the queue times out and retries with a fresh slice rather
  // than occupying a worker with nothing left to spend.
  const double budget = job.request.budgetSeconds > 0.0
                            ? job.request.budgetSeconds
                            : opts_.defaultBudgetSeconds;
  job.deadline =
      support::Deadline::soonerOf(support::Deadline::after(budget),
                                  support::Deadline::after(opts_.maxJobSeconds));
  {
    std::lock_guard<std::mutex> lock(serialMu_);
    job.serial = nextSerial_++;
  }
  const std::string id = job.request.id;
  bool admitted = false;
  {
    // Hold the connection's WRITE lock (not the queue lock) across
    // admission: the worker that pops this job must take the same lock to
    // emit "started", so the "accepted" frame below is on the wire first.
    // The blocking send happens outside the queue mutex — a client that
    // stops reading can wedge only its own connection, never admissions
    // from other connections, the workers' pop(), or stop().
    std::lock_guard<std::mutex> wlock(conn->writeMu);
    std::size_t depthAfter = 0;
    admitted = queue_.tryPush(std::move(job), [&](std::size_t depth) {
      // Under the queue lock: cheap bookkeeping only (stats after queue is
      // the lock order statsSnapshot() relies on).
      bump(obs::names::kServeJobsAccepted);
      depthAfter = depth;
    });
    if (admitted)
      sendLocked(*conn, encodeEvent(id, obs::names::kServeEvAccepted, 0,
                                    static_cast<double>(depthAfter)));
  }
  if (!admitted) {
    bump(obs::names::kServeJobsRejected);
    JobResult r;
    r.id = id;
    r.event = obs::names::kServeEvRejected;
    r.status = support::statusCodeName(support::StatusCode::Cancelled);
    r.detail = std::string("queue full: ") +
               std::string(priorityName(req.route.priority)) +
               " lane at capacity";
    sendToConn(*conn, encodeResult(r));
  }
}

void Server::workerLoop() {
  while (true) {
    std::optional<Job> job = queue_.pop();
    if (!job) return;
    runJob(std::move(*job));
  }
}

void Server::runJob(Job job) {
  auto conn = std::static_pointer_cast<Connection>(job.session);
  sendToConn(*conn, encodeEvent(job.request.id, obs::names::kServeEvStarted,
                                job.attempt, 0.0));
  obs::Collector jobStats;
  JobResult result;
  bool failed = false;
  {
    obs::ScopedTimer timer(&jobStats, obs::names::kServeJobSpan);
    try {
      result = executeAttempt(job);
    } catch (const lefdef::DefParseError& e) {
      failed = true;
      result.status =
          support::statusCodeName(support::StatusCode::Infeasible);
      result.detail = e.what();
    } catch (const std::invalid_argument& e) {
      failed = true;
      result.status =
          support::statusCodeName(support::StatusCode::Infeasible);
      result.detail = e.what();
    } catch (const std::exception& e) {
      failed = true;
      result.status = support::statusCodeName(support::StatusCode::Failed);
      result.detail = e.what();
    } catch (...) {
      failed = true;
      result.status = support::statusCodeName(support::StatusCode::Failed);
      result.detail = "unknown exception in the routing pipeline";
    }
  }
  result.id = job.request.id;
  result.attempts = job.attempt;
  if (failed) {
    result.event = obs::names::kServeEvFailed;
    bump(obs::names::kServeJobsFailed);
  } else if (result.status ==
                 support::statusCodeName(support::StatusCode::TimedOut) &&
             job.attempt <= opts_.maxRetries) {
    // One more try, cheaper and with a fresh budget slice: the common cause
    // of a first-attempt timeout is queue wait or an expensive pin access
    // method, and both are fixable without bothering the client.
    const double delay = opts_.backoff.delaySeconds(
        job.attempt, opts_.seed ^ job.serial);
    sendToConn(*conn,
               encodeEvent(job.request.id, obs::names::kServeEvRetrying,
                           job.attempt + 1, 0.0,
                           "budget expired; retrying at lower fidelity"));
    bump(obs::names::kServeJobsRetried);
    Job retry = std::move(job);
    retry.attempt += 1;
    retry.request.pinAccess = "lr";  // drop to the cheap method
    const double fresh =
        std::max(opts_.minRetryBudgetSeconds,
                 retry.request.budgetSeconds > 0.0
                     ? retry.request.budgetSeconds
                     : opts_.defaultBudgetSeconds);
    retry.deadline = support::Deadline::soonerOf(
        support::Deadline::after(fresh),
        support::Deadline::after(opts_.maxJobSeconds));
    retry.readyAt = support::Deadline::after(delay);
    {
      std::lock_guard<std::mutex> lock(statsMu_);
      stats_.merge(jobStats);
    }
    if (queue_.pushRetry(std::move(retry))) return;
    // Queue closed under us: fall through to a terminal frame so the
    // client is not left waiting across shutdown.
    result.event = obs::names::kServeEvCompleted;
    bump(obs::names::kServeJobsCompleted);
    sendToConn(*conn, encodeResult(result));
    return;
  } else {
    result.event = obs::names::kServeEvCompleted;
    bump(obs::names::kServeJobsCompleted);
  }
  sendToConn(*conn, encodeResult(result));
  const auto peak = static_cast<double>(queue_.peakDepth());
  {
    std::lock_guard<std::mutex> lock(statsMu_);
    stats_.merge(jobStats);
    stats_.gauge(obs::names::kServeQueuePeakDepth, peak);
  }
}

JobResult Server::executeAttempt(const Job& job) {
  const RouteRequest& req = job.request;
  if (opts_.preRouteHook) opts_.preRouteHook(req, job.attempt);

  db::Design design = [&] {
    if (!req.defText.empty()) {
      std::istringstream is(req.defText);
      return lefdef::readDef(is);
    }
    // Throws std::invalid_argument for an unknown name -> Infeasible.
    return gen::makeSuiteDesign(gen::suiteSpec(req.design), req.seed);
  }();
  if (const std::string report = design.validate(); !report.empty())
    throw std::invalid_argument("design fails validation: " + report);

  route::RoutingResult routed;
  double extraSeconds = 0.0;
  long degradedPanels = 0;
  if (req.scheme == "seq") {
    route::SequentialOptions o;
    o.deadline = job.deadline;
    routed = route::routeSequential(design, o);
  } else if (req.scheme == "nopao") {
    route::NegotiationOptions o;
    o.deadline = job.deadline;
    o.threads = opts_.jobThreads;
    routed = route::routeNegotiated(design, nullptr, o);
  } else {
    route::CprOptions o;
    o.routing.deadline = job.deadline;
    o.routing.threads = opts_.jobThreads;
    o.pinAccess.threads = opts_.jobThreads;
    o.pinAccess.deadline = job.deadline;
    o.pinAccess.solver = opts_.solverHook;
    if (req.pinAccess == "ilp") {
      o.pinAccess.solve.method = core::Method::Exact;
      o.pinAccess.panelBudgetSeconds = 1.0;
    } else if (req.pinAccess == "generic") {
      o.pinAccess.solve.method = core::Method::Ilp;
    }
    if (job.attempt > 1) {
      // Lower-fidelity retry: fewer negotiation rounds, faster convergence
      // to *a* result inside the fresh (smaller) budget.
      o.routing.maxRrrIterations =
          std::min(o.routing.maxRrrIterations, 6);
    }
    route::CprResult c = route::routeCpr(design, o);
    degradedPanels =
        c.plan.stats.counter(obs::names::kPaoPanelFailed) +
        c.plan.stats.counter(obs::names::kPaoPanelDegraded) +
        c.plan.stats.counter(obs::names::kPaoFallbacks);
    routed = std::move(c.routing);
    extraSeconds = c.pinAccessSeconds;
  }

  const eval::Metrics m = eval::summarize(design, routed, extraSeconds);
  JobResult out;
  out.event = obs::names::kServeEvCompleted;
  out.routability = m.routability;
  out.vias = m.vias;
  out.wirelength = m.wirelength;
  out.seconds = m.seconds;
  out.digest = hex16(route::resultDigest(routed));
  // The deadline is checked between pipeline stages, never mid-net, so an
  // expired budget still produced a complete (if modest) result — report it
  // as the incumbent with TimedOut rather than discarding work.
  const support::StatusCode code =
      job.deadline.expired() ? support::StatusCode::TimedOut
      : degradedPanels > 0  ? support::StatusCode::Degraded
                            : support::StatusCode::Ok;
  out.status = support::statusCodeName(code);
  if (code == support::StatusCode::Degraded)
    out.detail = std::to_string(degradedPanels) +
                 " pin access panel(s) fell below the primary solver";
  return out;
}

void Server::sendToConn(Connection& conn, const std::string& frame) {
  std::lock_guard<std::mutex> lock(conn.writeMu);
  sendLocked(conn, frame);
}

void Server::sendLocked(Connection& conn, const std::string& frame) {
  if (conn.fd < 0 || conn.broken) return;
  std::string line = frame;
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::send(conn.fd, line.data() + off, line.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Peer gone (EPIPE/ECONNRESET) or not reading (SO_SNDTIMEO fired:
      // EAGAIN on a full buffer). Either way this connection is dead to
      // us: mark it so later frames return immediately instead of
      // re-blocking a worker, and shut it down so its reader unblocks.
      // The job's outcome still lands in the stats.
      conn.broken = true;
      ::shutdown(conn.fd, SHUT_RDWR);
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace cpr::serve
