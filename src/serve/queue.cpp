#include "serve/queue.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace cpr::serve {

bool BoundedJobQueue::tryPush(Job job,
                              const std::function<void(std::size_t)>& onAdmit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return false;
  std::deque<Job>& lane = lanes_[laneOf(job)];
  if (lane.size() >= laneCapacity_) return false;
  lane.push_back(std::move(job));
  const std::size_t total = lanes_[0].size() + lanes_[1].size();
  peak_ = std::max(peak_, total);
  if (onAdmit) onAdmit(total);  // cheap bookkeeping only — see queue.h
  ready_.notify_one();
  return true;
}

bool BoundedJobQueue::pushRetry(Job job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return false;
  lanes_[laneOf(job)].push_back(std::move(job));
  const std::size_t total = lanes_[0].size() + lanes_[1].size();
  peak_ = std::max(peak_, total);
  // notify_all, not notify_one: the job may not be eligible yet (backoff
  // readyAt), and the one woken worker could go back to sleep on a wait
  // computed before this push existed.
  ready_.notify_all();
  return true;
}

std::optional<Job> BoundedJobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (closed_) return std::nullopt;
    // Earliest eligible job, interactive lane first. The scan is O(depth),
    // and depth is bounded by admission control — this is a service queue,
    // not a data structure contest.
    double soonestWait = std::numeric_limits<double>::infinity();
    for (std::deque<Job>& lane : lanes_) {
      for (auto it = lane.begin(); it != lane.end(); ++it) {
        if (!it->readyAt.isSet() || it->readyAt.expired()) {
          Job job = std::move(*it);
          lane.erase(it);
          return job;
        }
        soonestWait = std::min(soonestWait, it->readyAt.remaining());
      }
    }
    if (soonestWait == std::numeric_limits<double>::infinity()) {
      ready_.wait(lock);
    } else {
      // Only backoff-gated jobs remain: sleep until the soonest becomes
      // eligible (or a push/close wakes us earlier).
      ready_.wait_for(lock, std::chrono::duration<double>(
                                std::max(soonestWait, 1e-4)));
    }
  }
}

void BoundedJobQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  ready_.notify_all();
}

std::vector<Job> BoundedJobQueue::drainRemaining() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Job> out;
  for (std::deque<Job>& lane : lanes_) {
    for (Job& job : lane) out.push_back(std::move(job));
    lane.clear();
  }
  // Restore admission order across lanes for deterministic shutdown
  // reporting: serial is the global admission counter.
  std::sort(out.begin(), out.end(),
            [](const Job& a, const Job& b) { return a.serial < b.serial; });
  return out;
}

std::size_t BoundedJobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_[0].size() + lanes_[1].size();
}

std::size_t BoundedJobQueue::peakDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

}  // namespace cpr::serve
