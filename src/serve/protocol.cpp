#include "serve/protocol.h"

#include <cstdio>
#include <cstdlib>

#include "obs/names.h"
#include "obs/report.h"

namespace cpr::serve {

namespace {

/// One parsed flat JSON object: scalar members by key, nested objects and
/// arrays captured as raw balanced text. Flat storage (no tree, no
/// recursion) keeps the fuzz surface small: a frame of any nesting depth
/// costs one pass and at most one string per member.
struct FlatObject {
  std::map<std::string, std::string, std::less<>> strings;
  std::map<std::string, double, std::less<>> numbers;
  std::map<std::string, std::string, std::less<>> raw;  ///< objects/arrays

  [[nodiscard]] const std::string* str(std::string_view key) const {
    const auto it = strings.find(key);
    return it == strings.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::string strOr(std::string_view key,
                                  std::string_view fallback) const {
    const std::string* s = str(key);
    return s ? *s : std::string(fallback);
  }
  [[nodiscard]] double numOr(std::string_view key, double fallback) const {
    const auto it = numbers.find(key);
    return it == numbers.end() ? fallback : it->second;
  }
};

struct Cursor {
  const char* p;
  const char* end;

  [[nodiscard]] bool done() const { return p >= end; }
  [[nodiscard]] char peek() const { return *p; }
  void skipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n'))
      ++p;
  }
  bool eat(char c) {
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
};

[[nodiscard]] int hexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Parses a JSON string literal (cursor on the opening quote). Unicode
/// escapes decode as UTF-8; lone surrogates become U+FFFD-style '?' rather
/// than an error — the codec's job is framing, not text validation.
bool parseString(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (!c.done()) {
    const char ch = *c.p++;
    if (ch == '"') return true;
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    if (c.done()) return false;
    const char esc = *c.p++;
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (c.end - c.p < 4) return false;
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
          const int d = hexDigit(*c.p++);
          if (d < 0) return false;
          cp = cp * 16 + static_cast<unsigned>(d);
        }
        if (cp < 0x80) {
          out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
          out.push_back(static_cast<char>(0xC0U | (cp >> 6)));
          out.push_back(static_cast<char>(0x80U | (cp & 0x3FU)));
        } else {
          out.push_back(static_cast<char>(0xE0U | (cp >> 12)));
          out.push_back(static_cast<char>(0x80U | ((cp >> 6) & 0x3FU)));
          out.push_back(static_cast<char>(0x80U | (cp & 0x3FU)));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // ran off the end inside the literal
}

/// Captures a balanced object/array as raw text (cursor on '{' or '[').
/// Iterative bracket counting — depth is a counter, not a call stack, so a
/// ten-thousand-bracket fuzz input costs a loop, not a stack overflow.
bool captureBalanced(Cursor& c, std::string& out) {
  const char* start = c.p;
  int depth = 0;
  bool inString = false;
  while (!c.done()) {
    const char ch = *c.p++;
    if (inString) {
      if (ch == '\\') {
        if (!c.done()) ++c.p;
      } else if (ch == '"') {
        inString = false;
      }
      continue;
    }
    switch (ch) {
      case '"': inString = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth == 0) {
          out.assign(start, static_cast<std::size_t>(c.p - start));
          return true;
        }
        if (depth < 0) return false;
        break;
      default: break;
    }
  }
  return false;
}

bool parseNumber(Cursor& c, double& out) {
  // strtod needs a NUL-terminated buffer; numbers are short, so copy the
  // longest plausible token instead of scanning to end-of-line.
  char buf[64];
  std::size_t n = 0;
  const char* p = c.p;
  while (p < c.end && n + 1 < sizeof buf &&
         (*p == '-' || *p == '+' || *p == '.' || *p == 'e' || *p == 'E' ||
          (*p >= '0' && *p <= '9'))) {
    buf[n++] = *p++;
  }
  buf[n] = '\0';
  char* parsedEnd = nullptr;
  out = std::strtod(buf, &parsedEnd);
  if (parsedEnd == buf) return false;
  c.p += parsedEnd - buf;
  return true;
}

/// Parses one flat JSON object from `line`. Unknown keys are kept (the
/// request decoder ignores them — forward compatibility); duplicate keys
/// keep the last value. Returns false with `error` set on malformed input.
bool parseFlatObject(std::string_view line, FlatObject& out,
                     std::string& error) {
  Cursor c{line.data(), line.data() + line.size()};
  c.skipWs();
  if (!c.eat('{')) {
    error = "frame is not a JSON object";
    return false;
  }
  c.skipWs();
  if (c.eat('}')) {
    c.skipWs();
    if (!c.done()) {
      error = "trailing bytes after object";
      return false;
    }
    return true;
  }
  std::string key;
  std::string sval;
  // The three typed maps are one logical namespace: storing a key evicts
  // it from the other two, so a duplicate key keeps the LAST value even
  // when the occurrences differ in type ({"id":"a","id":1} -> number).
  const auto putString = [&out](const std::string& k, const std::string& v) {
    out.numbers.erase(k);
    out.raw.erase(k);
    out.strings[k] = v;
  };
  const auto putNumber = [&out](const std::string& k, double v) {
    out.strings.erase(k);
    out.raw.erase(k);
    out.numbers[k] = v;
  };
  const auto putRaw = [&out](const std::string& k, const std::string& v) {
    out.strings.erase(k);
    out.numbers.erase(k);
    out.raw[k] = v;
  };
  while (true) {
    c.skipWs();
    if (!parseString(c, key)) {
      error = "expected a string key";
      return false;
    }
    c.skipWs();
    if (!c.eat(':')) {
      error = "expected ':' after key \"" + key + "\"";
      return false;
    }
    c.skipWs();
    if (c.done()) {
      error = "missing value for key \"" + key + "\"";
      return false;
    }
    const char first = c.peek();
    if (first == '"') {
      if (!parseString(c, sval)) {
        error = "bad string value for key \"" + key + "\"";
        return false;
      }
      putString(key, sval);
    } else if (first == '{' || first == '[') {
      if (!captureBalanced(c, sval)) {
        error = "unbalanced value for key \"" + key + "\"";
        return false;
      }
      putRaw(key, sval);
    } else if (line.compare(static_cast<std::size_t>(c.p - line.data()), 4,
                            "true") == 0) {
      c.p += 4;
      putNumber(key, 1.0);
    } else if (line.compare(static_cast<std::size_t>(c.p - line.data()), 5,
                            "false") == 0) {
      c.p += 5;
      putNumber(key, 0.0);
    } else if (line.compare(static_cast<std::size_t>(c.p - line.data()), 4,
                            "null") == 0) {
      c.p += 4;
      putString(key, "");
    } else {
      double num = 0.0;
      if (!parseNumber(c, num)) {
        error = "bad value for key \"" + key + "\"";
        return false;
      }
      putNumber(key, num);
    }
    c.skipWs();
    if (c.eat(',')) continue;
    if (c.eat('}')) break;
    error = "expected ',' or '}' after value of \"" + key + "\"";
    return false;
  }
  c.skipWs();
  if (!c.done()) {
    error = "trailing bytes after object";
    return false;
  }
  return true;
}

[[nodiscard]] std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  out += obs::jsonEscape(s);
  out.push_back('"');
  return out;
}

void appendField(std::string& out, std::string_view key,
                 std::string_view value) {
  out += ",";
  out += quoted(key);
  out += ":";
  out += quoted(value);
}

void appendNumber(std::string& out, std::string_view key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += ",";
  out += quoted(key);
  out += ":";
  out += buf;
}

void appendInteger(std::string& out, std::string_view key, long long value) {
  out += ",";
  out += quoted(key);
  out += ":";
  out += std::to_string(value);
}

[[nodiscard]] std::string frameHead() {
  return "{\"v\":" + quoted(kProtocolVersion);
}

}  // namespace

std::string_view priorityName(Priority p) {
  return p == Priority::Interactive ? "interactive" : "batch";
}

bool isTerminalEvent(std::string_view event) {
  return event == obs::names::kServeEvCompleted ||
         event == obs::names::kServeEvFailed ||
         event == obs::names::kServeEvRejected;
}

Request decodeRequest(std::string_view line) {
  Request req;
  FlatObject obj;
  if (std::string error; !parseFlatObject(line, obj, error)) {
    req.error = error;
    return req;
  }
  if (obj.strOr("v", "") != kProtocolVersion) {
    req.error = "missing or unsupported protocol version (want \"" +
                std::string(kProtocolVersion) + "\")";
    return req;
  }
  const std::string op = obj.strOr("op", "");
  if (op == "ping") {
    req.kind = Request::Kind::Ping;
    return req;
  }
  if (op == "stats") {
    req.kind = Request::Kind::Stats;
    return req;
  }
  if (op == "shutdown") {
    req.kind = Request::Kind::Shutdown;
    return req;
  }
  if (op != "route") {
    req.error = op.empty() ? "missing \"op\"" : "unknown op \"" + op + "\"";
    return req;
  }

  RouteRequest& r = req.route;
  r.id = obj.strOr("id", "");
  if (r.id.empty()) {
    req.error = "route request needs a non-empty \"id\"";
    return req;
  }
  r.design = obj.strOr("design", "");
  r.defText = obj.strOr("def", "");
  if (r.design.empty() == r.defText.empty()) {
    req.error = "route request needs exactly one of \"design\" or \"def\"";
    return req;
  }
  r.scheme = obj.strOr("scheme", "cpr");
  if (r.scheme != "cpr" && r.scheme != "nopao" && r.scheme != "seq") {
    req.error = "unknown scheme \"" + r.scheme + "\"";
    return req;
  }
  r.pinAccess = obj.strOr("pin_access", "lr");
  if (r.pinAccess != "lr" && r.pinAccess != "ilp" && r.pinAccess != "generic") {
    req.error = "unknown pin_access \"" + r.pinAccess + "\"";
    return req;
  }
  const std::string prio = obj.strOr("priority", "batch");
  if (prio == "interactive") {
    r.priority = Priority::Interactive;
  } else if (prio == "batch") {
    r.priority = Priority::Batch;
  } else {
    req.error = "unknown priority \"" + prio + "\"";
    return req;
  }
  r.budgetSeconds = obj.numOr("budget_seconds", 0.0);
  if (!(r.budgetSeconds >= 0.0) || r.budgetSeconds > 1e9) {  // rejects NaN
    req.error = "budget_seconds out of range";
    return req;
  }
  const double seed = obj.numOr("seed", 7.0);
  if (!(seed >= 0.0) || seed > 1e18) {
    req.error = "seed out of range";
    return req;
  }
  r.seed = static_cast<std::uint64_t>(seed);
  req.kind = Request::Kind::Route;
  return req;
}

Reply decodeReply(std::string_view line) {
  Reply rep;
  FlatObject obj;
  if (std::string error; !parseFlatObject(line, obj, error)) {
    rep.detail = error;
    return rep;
  }
  if (obj.strOr("v", "") != kProtocolVersion) {
    rep.detail = "missing or unsupported protocol version";
    return rep;
  }
  rep.id = obj.strOr("id", "");
  rep.event = obj.strOr("event", "");
  rep.detail = obj.strOr("detail", "");
  rep.attempt = static_cast<int>(obj.numOr("attempt", 0.0));
  rep.queueDepth = obj.numOr("queue_depth", 0.0);
  if (rep.event == "pong") {
    rep.kind = Reply::Kind::Pong;
  } else if (rep.event == "stats") {
    rep.kind = Reply::Kind::Stats;
    const auto it = obj.raw.find("counters");
    if (it != obj.raw.end()) rep.countersRaw = it->second;
  } else if (rep.event == "error") {
    rep.kind = Reply::Kind::Error;
  } else if (isTerminalEvent(rep.event)) {
    rep.kind = Reply::Kind::Result;
    rep.result.id = rep.id;
    rep.result.event = rep.event;
    rep.result.status = obj.strOr("status", "");
    rep.result.detail = rep.detail;
    rep.result.routability = obj.numOr("routability", 0.0);
    rep.result.vias = static_cast<long>(obj.numOr("vias", 0.0));
    rep.result.wirelength = static_cast<long>(obj.numOr("wirelength", 0.0));
    rep.result.seconds = obj.numOr("seconds", 0.0);
    rep.result.attempts = static_cast<int>(obj.numOr("attempts", 1.0));
    rep.result.digest = obj.strOr("digest", "");
  } else if (!rep.event.empty() && !rep.id.empty()) {
    rep.kind = Reply::Kind::Event;
  } else {
    rep.detail = "frame has neither a job event nor a control event";
  }
  return rep;
}

std::string encodeRouteRequest(const RouteRequest& r) {
  std::string out = frameHead();
  appendField(out, "op", "route");
  appendField(out, "id", r.id);
  if (!r.design.empty()) appendField(out, "design", r.design);
  if (!r.defText.empty()) appendField(out, "def", r.defText);
  appendField(out, "scheme", r.scheme);
  appendField(out, "pin_access", r.pinAccess);
  appendField(out, "priority", priorityName(r.priority));
  if (r.budgetSeconds > 0.0)
    appendNumber(out, "budget_seconds", r.budgetSeconds);
  appendInteger(out, "seed", static_cast<long long>(r.seed));
  out += "}";
  return out;
}

std::string encodeStatsRequest() {
  std::string out = frameHead();
  appendField(out, "op", "stats");
  out += "}";
  return out;
}

std::string encodePing() {
  std::string out = frameHead();
  appendField(out, "op", "ping");
  out += "}";
  return out;
}

std::string encodeShutdownRequest() {
  std::string out = frameHead();
  appendField(out, "op", "shutdown");
  out += "}";
  return out;
}

std::string encodeEvent(std::string_view id, std::string_view event,
                        int attempt, double queueDepth,
                        std::string_view detail) {
  std::string out = frameHead();
  appendField(out, "id", id);
  appendField(out, "event", event);
  if (attempt > 0) appendInteger(out, "attempt", attempt);
  if (queueDepth > 0.0) appendNumber(out, "queue_depth", queueDepth);
  if (!detail.empty()) appendField(out, "detail", detail);
  out += "}";
  return out;
}

std::string encodeResult(const JobResult& r) {
  std::string out = frameHead();
  appendField(out, "id", r.id);
  appendField(out, "event", r.event);
  appendField(out, "status", r.status);
  if (!r.detail.empty()) appendField(out, "detail", r.detail);
  appendNumber(out, "routability", r.routability);
  appendInteger(out, "vias", r.vias);
  appendInteger(out, "wirelength", r.wirelength);
  appendNumber(out, "seconds", r.seconds);
  appendInteger(out, "attempts", r.attempts);
  if (!r.digest.empty()) appendField(out, "digest", r.digest);
  out += "}";
  return out;
}

std::string encodePong() {
  std::string out = frameHead();
  out += ",\"event\":\"pong\"}";
  return out;
}

std::string encodeError(std::string_view detail) {
  std::string out = frameHead();
  out += ",\"event\":\"error\"";
  appendField(out, "detail", detail);
  out += "}";
  return out;
}

std::string encodeStatsReply(
    const std::map<std::string, long, std::less<>>& counters) {
  std::string out = frameHead();
  out += ",\"event\":\"stats\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += quoted(name);
    out += ":";
    out += std::to_string(value);
  }
  out += "}}";
  return out;
}

}  // namespace cpr::serve
