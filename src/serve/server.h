/// \file server.h
/// The routing service: a long-lived daemon around the compile→solve→route
/// pipeline. DESIGN.md §14 ("Service failure model") is the contract this
/// header implements.
///
/// Topology: one accept thread, one reader thread per connection, and a
/// fixed set of job workers — long-running `support::ThreadPool` tasks
/// (the repo's single worker-pool seam) — pulling from a
/// `BoundedJobQueue`. Readers do
/// only cheap work (frame decode, admission); every expensive or fallible
/// stage — DEF parse, validation, pin access, routing — runs on a worker,
/// inside a catch-all boundary. The failure containment ladder:
///
///   - malformed frame        -> error frame, connection stays up
///   - queue lane full        -> serve.job.rejected (Cancelled), accept
///                               loop never blocks
///   - bad DEF / invalid design -> serve.job.failed (Infeasible)
///   - job deadline fired     -> one retry at lower fidelity with
///                               exponential-backoff + jitter delay, then
///                               serve.job.completed (TimedOut) with the
///                               incumbent result
///   - anything thrown        -> serve.job.failed (Failed); the daemon and
///                               the connection survive — a poisoned job is
///                               one terminal frame, never a crash
///   - shutdown               -> queue drains to Cancelled terminals, every
///                               in-flight job finishes, then sockets close
///
/// Every job's budget is composed at admission via `Deadline::soonerOf`
/// from the client's requested budget and the server-wide watchdog cap, so
/// no request can hold a worker longer than `maxJobSeconds`.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.h"
#include "obs/collector.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "support/backoff.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace cpr::serve {

struct ServerOptions {
  std::string socketPath;  ///< AF_UNIX path; unlinked on bind and on stop
  int workers = 2;         ///< job worker threads
  std::size_t laneCapacity = 8;  ///< admission bound per priority lane
  /// Budget for jobs that do not request one.
  double defaultBudgetSeconds = 10.0;
  /// Server-wide watchdog: no job runs longer than this, whatever it asked
  /// for. Composed with the per-job budget via Deadline::soonerOf.
  double maxJobSeconds = 60.0;
  /// A retry whose leftover budget is below this gets topped up to it —
  /// re-running with an already-expired deadline would fail tautologically.
  double minRetryBudgetSeconds = 0.5;
  int maxRetries = 1;  ///< extra attempts after a TimedOut first run
  support::BackoffPolicy backoff;
  std::uint64_t seed = 0x5eedU;  ///< jitter noise base
  /// Threads each job's pipeline may use (route digests are thread-count
  /// invariant, so this is purely a throughput/fairness knob).
  int jobThreads = 1;
  /// Whether a client `shutdown` op is honoured (the daemon enables this;
  /// embedded test servers usually keep it off).
  bool allowRemoteShutdown = false;

  // ---- fault-injection seams (chaos harness; unset in production) ----
  /// Overrides the pin access solver for every job, exactly like
  /// core::OptimizerOptions::solver. Lets the chaos tests inject throwing /
  /// lying solvers through the public seam instead of a test backdoor.
  std::shared_ptr<const core::Solver> solverHook;
  /// Runs on the worker thread before each attempt's pipeline; may throw.
  std::function<void(const RouteRequest&, int attempt)> preRouteHook;
};

/// See file comment. Lifecycle: construct -> start() -> (serve) -> stop();
/// the destructor calls stop() if the caller did not.
class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the accept loop and workers. Fails (with
  /// Status::failed) if the socket cannot be bound; the server is then
  /// inert and stop() is a no-op.
  [[nodiscard]] support::Status start();

  /// Graceful shutdown, idempotent: stop admitting, drain the queue to
  /// Cancelled terminals, finish in-flight jobs, close every connection,
  /// join every thread, unlink the socket.
  void stop();

  /// Blocks until a client sends `shutdown` (when allowRemoteShutdown) or
  /// stop() is called from another thread.
  void waitForShutdownRequest();

  /// Point-in-time copy of the server's counters/gauges (thread-safe).
  [[nodiscard]] obs::Collector statsSnapshot() const;

  [[nodiscard]] const std::string& socketPath() const {
    return opts_.socketPath;
  }

 private:
  struct Connection;

  void acceptLoop();
  void readerLoop(const std::shared_ptr<Connection>& conn);
  void workerLoop();

  /// Handles one decoded frame from `conn` (reader thread).
  void handleRequest(const std::shared_ptr<Connection>& conn,
                     const Request& req);
  /// Runs one attempt of `job` on this worker thread and emits either a
  /// retry re-queue or the terminal frame. Never throws.
  void runJob(Job job);
  /// The fallible pipeline body: parse/synthesize, validate, route.
  /// Everything it throws is folded into the JobResult by runJob.
  [[nodiscard]] JobResult executeAttempt(const Job& job);

  void sendToConn(Connection& conn, const std::string& frame);
  void bump(std::string_view counter, long delta = 1);

  ServerOptions opts_;
  int listenFd_ = -1;
  BoundedJobQueue queue_;
  std::uint64_t nextSerial_ = 0;  ///< guarded by serialMu_
  std::mutex serialMu_;

  mutable std::mutex statsMu_;
  obs::Collector stats_;

  std::mutex lifecycleMu_;
  std::condition_variable shutdownCv_;
  bool shutdownRequested_ = false;
  bool running_ = false;

  std::thread acceptThread_;
  /// Job workers run as long-lived posted tasks on the shared pool seam;
  /// stop() closes the queue (tasks return) and then drains the pool.
  std::unique_ptr<support::ThreadPool> workerPool_;
  std::mutex connMu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;
};

}  // namespace cpr::serve
