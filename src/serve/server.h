/// \file server.h
/// The routing service: a long-lived daemon around the compile→solve→route
/// pipeline. DESIGN.md §14 ("Service failure model") is the contract this
/// header implements.
///
/// Topology: one accept thread, one reader thread per connection, and a
/// fixed set of job workers — long-running `support::ThreadPool` tasks
/// (the repo's single worker-pool seam) — pulling from a
/// `BoundedJobQueue`. Readers do
/// only cheap work (frame decode, admission); every expensive or fallible
/// stage — DEF parse, validation, pin access, routing — runs on a worker,
/// inside a catch-all boundary. The failure containment ladder:
///
///   - malformed frame        -> error frame, connection stays up
///   - queue lane full        -> serve.job.rejected (Cancelled), accept
///                               loop never blocks
///   - bad DEF / invalid design -> serve.job.failed (Infeasible)
///   - job deadline fired     -> one retry at lower fidelity with
///                               exponential-backoff + jitter delay, then
///                               serve.job.completed (TimedOut) with the
///                               incumbent result
///   - anything thrown        -> serve.job.failed (Failed); the daemon and
///                               the connection survive — a poisoned job is
///                               one terminal frame, never a crash
///   - shutdown               -> queue drains to Cancelled terminals, every
///                               in-flight job finishes, then sockets close
///
/// Every job's budget is composed at admission via `Deadline::soonerOf`
/// from the client's requested budget and the server-wide watchdog cap, so
/// no request can hold a worker longer than `maxJobSeconds`.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/solver.h"
#include "obs/collector.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "support/backoff.h"
#include "support/status.h"
#include "support/thread_annotations.h"
#include "support/thread_pool.h"

namespace cpr::serve {

struct ServerOptions {
  std::string socketPath;  ///< AF_UNIX path; unlinked on bind and on stop
  int workers = 2;         ///< job worker threads
  std::size_t laneCapacity = 8;  ///< admission bound per priority lane
  /// Budget for jobs that do not request one.
  double defaultBudgetSeconds = 10.0;
  /// Server-wide watchdog: no job runs longer than this, whatever it asked
  /// for. Composed with the per-job budget via Deadline::soonerOf.
  double maxJobSeconds = 60.0;
  /// A retry whose leftover budget is below this gets topped up to it —
  /// re-running with an already-expired deadline would fail tautologically.
  double minRetryBudgetSeconds = 0.5;
  int maxRetries = 1;  ///< extra attempts after a TimedOut first run
  /// SO_SNDTIMEO on every accepted connection: a client that stops reading
  /// while its socket buffer is full stalls a write for at most this long,
  /// then the connection is dropped — a worker is never wedged forever on
  /// a dead peer. 0 disables the timeout.
  double sendTimeoutSeconds = 30.0;
  support::BackoffPolicy backoff;
  std::uint64_t seed = 0x5eedU;  ///< jitter noise base
  /// Threads each job's pipeline may use (route digests are thread-count
  /// invariant, so this is purely a throughput/fairness knob).
  int jobThreads = 1;
  /// Whether a client `shutdown` op is honoured (the daemon enables this;
  /// embedded test servers usually keep it off).
  bool allowRemoteShutdown = false;

  // ---- fault-injection seams (chaos harness; unset in production) ----
  /// Overrides the pin access solver for every job, exactly like
  /// core::OptimizerOptions::solver. Lets the chaos tests inject throwing /
  /// lying solvers through the public seam instead of a test backdoor.
  std::shared_ptr<const core::Solver> solverHook;
  /// Runs on the worker thread before each attempt's pipeline; may throw.
  std::function<void(const RouteRequest&, int attempt)> preRouteHook;
};

/// See file comment. Lifecycle: construct -> start() -> (serve) -> stop();
/// the destructor calls stop() if the caller did not.
class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the accept loop and workers. Fails (with
  /// Status::failed) if the socket cannot be bound; the server is then
  /// inert and stop() is a no-op.
  [[nodiscard]] support::Status start();

  /// Graceful shutdown, idempotent AND safe for concurrent callers: stop
  /// admitting, drain the queue to Cancelled terminals, finish in-flight
  /// jobs, close every connection, join every thread, unlink the socket.
  /// A second caller that arrives while teardown is in progress blocks
  /// until the teardown completes — when any stop() returns, no server
  /// thread touches the object again, so the caller may destroy it.
  void stop() CPR_NO_THREAD_SAFETY_ANALYSIS;

  /// Asks the serving loop to shut down without doing any teardown here:
  /// wakes waitForShutdownRequest(). Safe from any thread (e.g. a signal
  /// thread); the thread that owns the server then calls stop().
  void requestShutdown();

  /// Blocks until a client sends `shutdown` (when allowRemoteShutdown),
  /// requestShutdown() is called, or stop() begins on another thread.
  void waitForShutdownRequest() CPR_NO_THREAD_SAFETY_ANALYSIS;

  /// Point-in-time copy of the server's counters/gauges (thread-safe).
  [[nodiscard]] obs::Collector statsSnapshot() const;

  [[nodiscard]] const std::string& socketPath() const {
    return opts_.socketPath;
  }

 private:
  struct Connection;

  void acceptLoop();
  /// Reader thread body: runs readerLoop, then deregisters the connection
  /// and parks its own thread handle on doneReaders_ for reaping.
  void readerMain(std::shared_ptr<Connection> conn);
  void readerLoop(const std::shared_ptr<Connection>& conn);
  void workerLoop();

  /// Handles one decoded frame from `conn` (reader thread).
  void handleRequest(const std::shared_ptr<Connection>& conn,
                     const Request& req);
  /// Runs one attempt of `job` on this worker thread and emits either a
  /// retry re-queue or the terminal frame. Never throws.
  void runJob(Job job);
  /// The fallible pipeline body: parse/synthesize, validate, route.
  /// Everything it throws is folded into the JobResult by runJob.
  [[nodiscard]] JobResult executeAttempt(const Job& job);

  void sendToConn(Connection& conn, const std::string& frame)
      CPR_EXCLUDES(conn.writeMu);
  /// Body of sendToConn; the caller already holds conn.writeMu.
  void sendLocked(Connection& conn, const std::string& frame)
      CPR_REQUIRES(conn.writeMu);
  /// Joins reader threads whose loops have exited (they parked themselves
  /// on doneReaders_). Called from the accept loop and from stop(); must
  /// NOT be called while holding connMu_.
  void reapFinishedReaders() CPR_EXCLUDES(connMu_);
  void bump(std::string_view counter, long delta = 1) CPR_EXCLUDES(statsMu_);

  ServerOptions opts_;
  int listenFd_ = -1;
  BoundedJobQueue queue_;
  std::mutex serialMu_;
  std::uint64_t nextSerial_ CPR_GUARDED_BY(serialMu_) = 0;

  mutable std::mutex statsMu_;
  obs::Collector stats_ CPR_GUARDED_BY(statsMu_);

  /// Lifecycle: Idle until start(), Running while serving, Stopping while
  /// one thread runs stop()'s teardown, Stopped after. The phase makes
  /// stop() safe for concurrent callers: the first caller claims the
  /// Running→Stopping edge and tears down; later callers wait on
  /// shutdownCv_ for Stopped instead of returning into a destructor while
  /// the teardown still uses the members.
  enum class Phase { kIdle, kRunning, kStopping, kStopped };
  std::mutex lifecycleMu_;
  std::condition_variable shutdownCv_;
  bool shutdownRequested_ CPR_GUARDED_BY(lifecycleMu_) = false;
  Phase phase_ CPR_GUARDED_BY(lifecycleMu_) = Phase::kIdle;

  /// Joined by stop() (the only teardown path).
  std::thread acceptThread_ CPR_THREAD_REAPER;
  /// Job workers run as long-lived posted tasks on the shared pool seam;
  /// stop() closes the queue (tasks return) and then drains the pool.
  std::unique_ptr<support::ThreadPool> workerPool_;
  /// Connection registry, guarded by connMu_. `conns_` holds connections
  /// whose reader is still running (queued jobs keep their own refs);
  /// `readers_` maps each live connection to its reader thread. A reader
  /// that exits erases its connection, moves its own std::thread handle to
  /// `doneReaders_`, and the accept loop (or stop()) joins it from there —
  /// a long-lived daemon does not accumulate one fd and one thread per
  /// closed connection.
  std::mutex connMu_;
  std::vector<std::shared_ptr<Connection>> conns_ CPR_GUARDED_BY(connMu_);
  std::unordered_map<const Connection*, std::thread> readers_
      CPR_GUARDED_BY(connMu_) CPR_THREAD_REAPER;
  std::vector<std::thread> doneReaders_ CPR_GUARDED_BY(connMu_)
      CPR_THREAD_REAPER;
};

}  // namespace cpr::serve
