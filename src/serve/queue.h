/// \file queue.h
/// Bounded two-lane job queue: the admission-control core of the service.
///
/// Admission is `tryPush` — it never blocks and never grows past the lane
/// capacity. A full lane means the caller gets `false` back immediately and
/// reports the job rejected (`StatusCode::Cancelled`); the accept loop is
/// never the place where backpressure queues up, because a blocked accept
/// loop is indistinguishable from a dead daemon to every other client.
///
/// Two lanes (`Priority::Interactive` ahead of `Priority::Batch`) with
/// independent capacities: a flood of bulk work fills the batch lane and
/// starts bouncing, while interactive jobs still admit and still pop first.
///
/// Retries re-enter through `pushRetry`, which is exempt from the capacity
/// check — a retry slot was already paid for at original admission, and
/// bouncing a retry for lack of space would convert a transient timeout
/// into a spurious cancellation. Retries are bounded by the server's
/// max-retries policy, so the overshoot is at most one job per worker.
/// A retry's `readyAt` deadline holds it invisible to `pop` until its
/// backoff delay has elapsed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include <condition_variable>

#include "serve/protocol.h"
#include "support/deadline.h"
#include "support/thread_annotations.h"

namespace cpr::serve {

/// One queued route job. `session` is an opaque handle to the connection
/// that submitted it (the queue sits below the server and never looks
/// inside); holding it keeps the reply channel alive until the terminal
/// frame is sent, even if the reader side already saw EOF.
struct Job {
  RouteRequest request;
  std::shared_ptr<void> session;
  int attempt = 1;
  /// Job wall-clock budget, composed at admission from the request budget
  /// and the server watchdog (`Deadline::soonerOf`). Queue wait spends it.
  support::Deadline deadline;
  /// Backoff gate for retries: unset for fresh jobs; a retry is not
  /// eligible to pop until this deadline has expired.
  support::Deadline readyAt;
  std::uint64_t serial = 0;  ///< admission order, for deterministic noise
};

class BoundedJobQueue {
 public:
  /// `laneCapacity` bounds each lane independently (so worst-case memory is
  /// 2 * laneCapacity jobs plus in-flight retries).
  explicit BoundedJobQueue(std::size_t laneCapacity)
      : laneCapacity_(laneCapacity) {}

  /// Admission control: false when the job's lane is full or the queue is
  /// closed — the caller must report the rejection, nothing was queued.
  /// On admission, `onAdmit(depth)` (if given) runs under the queue lock
  /// with the post-push total depth. It must therefore be cheap and
  /// non-blocking — bookkeeping only, never I/O: anything that can stall
  /// here stalls every push, every pop, and close(). (The server orders
  /// its "accepted" frame before "started" with the per-connection write
  /// lock, not with this one.)
  bool tryPush(Job job, const std::function<void(std::size_t)>& onAdmit = {})
      CPR_EXCLUDES(mu_);

  /// Re-queues a retry, bypassing the capacity check (see file comment).
  /// Returns false only when the queue is already closed.
  bool pushRetry(Job job) CPR_EXCLUDES(mu_);

  /// Blocks until a job is eligible (interactive lane first; within a lane,
  /// admission order among jobs whose `readyAt` has passed). Returns
  /// nullopt once the queue is closed — immediately, even if jobs remain;
  /// shutdown hands leftovers to `drainRemaining`, not to workers.
  std::optional<Job> pop() CPR_EXCLUDES(mu_) CPR_NO_THREAD_SAFETY_ANALYSIS;

  /// Closes the queue: pending and future pops return nullopt, pushes fail.
  void close() CPR_EXCLUDES(mu_);

  /// Removes and returns everything still queued (both lanes, admission
  /// order). Call after `close()`; the server reports each drained job as
  /// Cancelled.
  [[nodiscard]] std::vector<Job> drainRemaining() CPR_EXCLUDES(mu_);

  [[nodiscard]] std::size_t depth() const CPR_EXCLUDES(mu_);
  /// High-water mark of total depth, for the serve.queue.peak_depth gauge.
  [[nodiscard]] std::size_t peakDepth() const CPR_EXCLUDES(mu_);

 private:
  /// Index into `lanes_` for a job's priority.
  [[nodiscard]] static std::size_t laneOf(const Job& job) {
    return job.request.priority == Priority::Interactive ? 0 : 1;
  }

  const std::size_t laneCapacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<Job> lanes_[2] CPR_GUARDED_BY(mu_);  ///< [0] interactive, [1] batch
  std::size_t peak_ CPR_GUARDED_BY(mu_) = 0;
  bool closed_ CPR_GUARDED_BY(mu_) = false;
};

}  // namespace cpr::serve
