#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>

namespace cpr::serve {

Client::~Client() { close(); }

support::Status Client::connect(const std::string& socketPath) {
  sockaddr_un addr{};
  if (socketPath.empty() || socketPath.size() >= sizeof addr.sun_path)
    return support::Status::failed("socket path empty or too long");
  close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return support::Status::failed("socket() failed");
  addr.sun_family = AF_UNIX;
  socketPath.copy(addr.sun_path, sizeof addr.sun_path - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd_);
    fd_ = -1;
    return support::Status::failed("cannot connect to " + socketPath +
                                   " — is cpr_served running?");
  }
  return support::Status::ok();
}

bool Client::sendLine(const std::string& frame) {
  if (fd_ < 0) return false;
  std::string line = frame;
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::readLine(std::string& out) {
  while (true) {
    const std::size_t nl = pending_.find('\n');
    if (nl != std::string::npos) {
      out.assign(pending_, 0, nl);
      pending_.erase(0, nl + 1);
      return true;
    }
    if (fd_ < 0) return false;
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    pending_.append(buf, static_cast<std::size_t>(n));
  }
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  pending_.clear();
}

support::Outcome<JobResult> runJob(Client& client, const RouteRequest& request,
                                   std::vector<Reply>* events) {
  if (!client.sendLine(encodeRouteRequest(request)))
    return support::Status::failed("connection lost while sending the job");
  std::string line;
  while (client.readLine(line)) {
    Reply rep = decodeReply(line);
    if (rep.kind == Reply::Kind::Result && rep.id == request.id)
      return rep.result;
    if (events) events->push_back(std::move(rep));
  }
  return support::Status::failed(
      "connection closed before the job's terminal frame");
}

}  // namespace cpr::serve
