/// \file protocol.h
/// Wire protocol of the routing service: one JSON object per line.
///
/// `cpr_served` speaks a line-delimited JSON protocol over a local stream
/// socket. Every frame — request or reply — is a single flat JSON object
/// terminated by '\n', versioned with `"v":"cpr.serve.v1"`. Requests carry
/// an `op` (`route`, `stats`, `ping`, `shutdown`); route replies carry the
/// job's `id` plus an `event` drawn from the `serve.job.*` vocabulary in
/// obs/names.h, so a client can demultiplex pipelined jobs on one
/// connection by id and recognise terminal frames by event name.
///
/// The codec is the trust boundary of the daemon: `decodeRequest` must turn
/// arbitrary bytes into either a well-formed request or a reported parse
/// error, never into undefined behaviour. It is fuzzed directly
/// (fuzz/serve_frame_fuzzer.cpp); keep it allocation-bounded and free of
/// recursion on attacker-controlled depth — nested values are captured as
/// raw balanced slices, not parsed structures.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace cpr::serve {

inline constexpr std::string_view kProtocolVersion = "cpr.serve.v1";

/// Admission lanes. Interactive jobs are popped before batch jobs so a
/// flood of bulk work cannot starve a designer's quick iteration; each lane
/// has its own capacity, so neither can evict the other's admissions.
enum class Priority { Interactive, Batch };

[[nodiscard]] std::string_view priorityName(Priority p);

/// One `op:"route"` request. `design` names a synthesized suite benchmark;
/// `defText` carries an inline DEF-subset payload instead (exactly one of
/// the two must be set — the daemon never touches the client filesystem).
struct RouteRequest {
  std::string id;               ///< client-chosen job id, echoed in replies
  std::string design;           ///< suite benchmark name (ecc|efc|...)
  std::string defText;          ///< inline DEF payload (alternative)
  std::string scheme = "cpr";   ///< cpr | nopao | seq
  std::string pinAccess = "lr"; ///< lr | ilp | generic (cpr scheme only)
  Priority priority = Priority::Batch;
  double budgetSeconds = 0.0;   ///< job wall-clock budget; 0 = server default
  std::uint64_t seed = 7;       ///< generator seed for `design` jobs
};

/// A decoded client frame. `Invalid` frames carry the parse diagnostic in
/// `error`; the server replies with an error frame and keeps the
/// connection — one bad line must not kill a pipelined session.
struct Request {
  enum class Kind { Route, Stats, Ping, Shutdown, Invalid };
  Kind kind = Kind::Invalid;
  std::string error;  ///< set when kind == Invalid
  RouteRequest route; ///< meaningful when kind == Route
};

/// Terminal outcome of one job, as reported in a `serve.job.completed` /
/// `serve.job.failed` / `serve.job.rejected` frame.
struct JobResult {
  std::string id;
  std::string event;   ///< terminal serve.job.* event name
  std::string status;  ///< support::statusCodeName of the final Status
  std::string detail;  ///< human-readable cause (parse error, panel fault…)
  double routability = 0.0;
  long vias = 0;
  long wirelength = 0;
  double seconds = 0.0;   ///< pipeline wall-clock (pin access + routing)
  int attempts = 1;
  std::string digest;  ///< 16-hex-digit route::resultDigest of the result
};

/// A decoded server frame (client side). Progress frames are `Event`;
/// completed/failed/rejected are `Result` (their payload in `result`).
struct Reply {
  enum class Kind { Event, Result, Pong, Stats, Error, Invalid };
  Kind kind = Kind::Invalid;
  std::string id;
  std::string event;
  std::string detail;
  int attempt = 0;
  double queueDepth = 0.0;
  JobResult result;            ///< meaningful when kind == Result
  std::string countersRaw;     ///< raw JSON object when kind == Stats
};

/// True when `event` names a terminal job frame (completed/failed/rejected).
[[nodiscard]] bool isTerminalEvent(std::string_view event);

// ---- decoding (arbitrary bytes in, structured frame or diagnostic out) ----

[[nodiscard]] Request decodeRequest(std::string_view line);
[[nodiscard]] Reply decodeReply(std::string_view line);

// ---- encoding (frames are returned WITHOUT the trailing newline) ----

[[nodiscard]] std::string encodeRouteRequest(const RouteRequest& r);
[[nodiscard]] std::string encodeStatsRequest();
[[nodiscard]] std::string encodePing();
[[nodiscard]] std::string encodeShutdownRequest();

/// Progress frame: serve.job.accepted / started / retrying.
[[nodiscard]] std::string encodeEvent(std::string_view id,
                                      std::string_view event, int attempt,
                                      double queueDepth,
                                      std::string_view detail = {});
[[nodiscard]] std::string encodeResult(const JobResult& r);
[[nodiscard]] std::string encodePong();
[[nodiscard]] std::string encodeError(std::string_view detail);
/// `counters` is emitted as a nested JSON object, keys in map order.
[[nodiscard]] std::string encodeStatsReply(
    const std::map<std::string, long, std::less<>>& counters);

}  // namespace cpr::serve
