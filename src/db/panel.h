/// \file panel.h
/// Routing panels: one standard-cell row of M2 tracks.
///
/// "A design with synthesized power/ground rails is inherently separated into
/// panels, i.e. rows or columns on a horizontal or vertical routing layer"
/// (paper Section 3). Concurrent pin access optimization runs panel-by-panel;
/// this module extracts, for each row, the pins it owns and the free space on
/// each of its M2 tracks (die width minus M2 blockages).
#pragma once

#include <vector>

#include "db/design.h"
#include "geom/interval_set.h"

namespace cpr::db {

/// One routing panel: a cell row with `tracksPerRow` M2 tracks.
struct Panel {
  Coord row = 0;
  geom::Interval tracks;             ///< global track range owned by the row
  std::vector<Index> pins;           ///< pins whose shapes live in this row
  /// Free space per track, indexed by local track (t - tracks.lo). A grid
  /// point is free when it is on the die and not covered by an M2 blockage.
  std::vector<geom::IntervalSet> freeSpace;

  /// Free space on global track `t`.
  [[nodiscard]] const geom::IntervalSet& freeOn(Coord t) const {
    return freeSpace[static_cast<std::size_t>(t - tracks.lo)];
  }
};

/// Extracts all panels of `design`. Panels come back in row order; every pin
/// of the design appears in exactly one panel.
[[nodiscard]] std::vector<Panel> extractPanels(const Design& design);

/// Extracts a single row's panel.
[[nodiscard]] Panel extractPanel(const Design& design, Coord row);

}  // namespace cpr::db
