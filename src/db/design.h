/// \file design.h
/// Grid-based design database: pins, nets, blockages, rows and tracks.
///
/// Coordinate system
/// -----------------
/// The die is a uniform routing grid. `x` in [0, width) indexes vertical grid
/// columns (M3 tracks and via sites). Standard cell rows stack vertically;
/// each row owns `tracksPerRow` horizontal M2 tracks, so the global track
/// (y) coordinate runs in [0, numRows * tracksPerRow). One grid unit is one
/// track pitch in both directions.
///
/// A standard-cell I/O pin is an M1 shape: a small rectangle spanning one or
/// two columns and a few consecutive M2 tracks within its row (an M1 vertical
/// strip crosses several M2 tracks — this is what creates multiple candidate
/// access tracks per pin, paper Fig. 3).
#pragma once

#include <string>
#include <vector>

#include "db/layer.h"
#include "geom/rect.h"
#include "geom/types.h"

namespace cpr::db {

using geom::Coord;
using geom::Index;

/// A standard-cell I/O pin (M1 shape).
struct Pin {
  std::string name;    ///< e.g. "a1"
  Index net = geom::kInvalidIndex;
  Index row = geom::kInvalidIndex;  ///< cell row (== panel) owning the pin
  geom::Rect shape;    ///< x: column range; y: global M2 track range
};

/// A routed net: set of pins that must be connected.
struct Net {
  std::string name;
  std::vector<Index> pins;  ///< indices into Design::pins
};

/// A routing blockage on one layer (pre-routes, macros, power hookups).
struct Blockage {
  Layer layer = Layer::M2;
  geom::Rect shape;  ///< x: column range; y: global track range
};

/// Immutable-after-build description of a placed design.
class Design {
 public:
  Design() = default;
  Design(std::string name, Coord width, Coord numRows, Coord tracksPerRow)
      : name_(std::move(name)),
        width_(width),
        numRows_(numRows),
        tracksPerRow_(tracksPerRow) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Coord width() const { return width_; }
  [[nodiscard]] Coord numRows() const { return numRows_; }
  [[nodiscard]] Coord tracksPerRow() const { return tracksPerRow_; }
  /// Total number of horizontal (M2) tracks on the die.
  [[nodiscard]] Coord gridHeight() const { return numRows_ * tracksPerRow_; }

  [[nodiscard]] const std::vector<Pin>& pins() const { return pins_; }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
  [[nodiscard]] const std::vector<Blockage>& blockages() const { return blockages_; }

  [[nodiscard]] const Pin& pin(Index i) const { return pins_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Net& net(Index i) const { return nets_[static_cast<std::size_t>(i)]; }

  /// Global track range owned by `row`.
  [[nodiscard]] geom::Interval rowTracks(Coord row) const {
    return {row * tracksPerRow_, (row + 1) * tracksPerRow_ - 1};
  }
  /// Row owning global track `t`.
  [[nodiscard]] Coord rowOfTrack(Coord t) const { return t / tracksPerRow_; }

  /// Bounding box over all pin shapes of net `n` (paper Section 3.1: pin
  /// access intervals are generated within the net bounding box).
  [[nodiscard]] geom::Rect netBox(Index n) const;

  // ---- construction ----
  Index addNet(std::string name);
  /// Adds a pin to `net`; the pin's row is derived from its track range,
  /// which must lie within a single row.
  Index addPin(std::string name, Index net, geom::Rect shape);
  void addBlockage(Layer layer, geom::Rect shape);

  /// Validates structural invariants; returns a human-readable report of all
  /// violations (empty string when the design is well-formed).
  [[nodiscard]] std::string validate() const;

 private:
  std::string name_;
  Coord width_ = 0;
  Coord numRows_ = 0;
  Coord tracksPerRow_ = 10;  ///< the paper's 10-track M2 panel
  std::vector<Pin> pins_;
  std::vector<Net> nets_;
  std::vector<Blockage> blockages_;
};

}  // namespace cpr::db
