#include "db/panel.h"

namespace cpr::db {

namespace {

void fillFreeSpace(const Design& design, Panel& panel) {
  const geom::Interval dieX{0, design.width() - 1};
  panel.freeSpace.assign(static_cast<std::size_t>(panel.tracks.span()),
                         geom::IntervalSet{dieX});
  for (const Blockage& b : design.blockages()) {
    if (b.layer != Layer::M2) continue;
    const geom::Interval trackHit = geom::intersect(b.shape.y, panel.tracks);
    for (Coord t = trackHit.lo; t <= trackHit.hi; ++t) {
      panel.freeSpace[static_cast<std::size_t>(t - panel.tracks.lo)].subtract(
          b.shape.x);
    }
  }
}

}  // namespace

std::vector<Panel> extractPanels(const Design& design) {
  std::vector<Panel> panels(static_cast<std::size_t>(design.numRows()));
  for (Coord r = 0; r < design.numRows(); ++r) {
    panels[static_cast<std::size_t>(r)].row = r;
    panels[static_cast<std::size_t>(r)].tracks = design.rowTracks(r);
  }
  for (std::size_t p = 0; p < design.pins().size(); ++p) {
    const Pin& pin = design.pins()[p];
    panels[static_cast<std::size_t>(pin.row)].pins.push_back(
        static_cast<Index>(p));
  }
  for (Panel& panel : panels) fillFreeSpace(design, panel);
  return panels;
}

Panel extractPanel(const Design& design, Coord row) {
  Panel panel;
  panel.row = row;
  panel.tracks = design.rowTracks(row);
  for (std::size_t p = 0; p < design.pins().size(); ++p) {
    if (design.pins()[p].row == row) panel.pins.push_back(static_cast<Index>(p));
  }
  fillFreeSpace(design, panel);
  return panel;
}

}  // namespace cpr::db
