#include "db/design.h"

#include <sstream>

namespace cpr::db {

geom::Rect Design::netBox(Index n) const {
  geom::Rect box;
  bool first = true;
  for (Index p : net(n).pins) {
    const geom::Rect& s = pin(p).shape;
    if (first) {
      box = s;
      first = false;
    } else {
      box.expand(s);
    }
  }
  return box;
}

Index Design::addNet(std::string name) {
  nets_.push_back(Net{std::move(name), {}});
  return static_cast<Index>(nets_.size() - 1);
}

Index Design::addPin(std::string name, Index net, geom::Rect shape) {
  Pin p;
  p.name = std::move(name);
  p.net = net;
  p.shape = shape;
  p.row = shape.y.empty() ? geom::kInvalidIndex : rowOfTrack(shape.y.lo);
  const Index id = static_cast<Index>(pins_.size());
  pins_.push_back(std::move(p));
  nets_[static_cast<std::size_t>(net)].pins.push_back(id);
  return id;
}

void Design::addBlockage(Layer layer, geom::Rect shape) {
  blockages_.push_back(Blockage{layer, shape});
}

std::string Design::validate() const {
  std::ostringstream out;
  if (width_ <= 0) out << "non-positive die width\n";
  if (numRows_ <= 0) out << "non-positive row count\n";
  if (tracksPerRow_ <= 0) out << "non-positive tracks per row\n";

  const geom::Rect die{0, 0, width_ - 1, gridHeight() - 1};
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    const Pin& p = pins_[i];
    if (p.shape.empty()) out << "pin " << p.name << ": empty shape\n";
    if (!die.contains(p.shape))
      out << "pin " << p.name << ": shape " << p.shape << " outside die\n";
    if (p.net < 0 || p.net >= static_cast<Index>(nets_.size()))
      out << "pin " << p.name << ": dangling net index " << p.net << "\n";
    if (!p.shape.y.empty() &&
        rowOfTrack(p.shape.y.lo) != rowOfTrack(p.shape.y.hi))
      out << "pin " << p.name << ": spans multiple rows\n";
  }
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    if (net.pins.empty()) out << "net " << net.name << ": no pins\n";
    for (Index p : net.pins) {
      if (p < 0 || p >= static_cast<Index>(pins_.size())) {
        out << "net " << net.name << ": dangling pin index " << p << "\n";
      } else if (pins_[static_cast<std::size_t>(p)].net !=
                 static_cast<Index>(n)) {
        out << "net " << net.name << ": pin " << p << " back-reference mismatch\n";
      }
    }
  }
  for (const Blockage& b : blockages_) {
    if (b.shape.empty()) out << "blockage with empty shape\n";
    if (!die.contains(b.shape))
      out << "blockage " << b.shape << " outside die\n";
  }
  return out.str();
}

}  // namespace cpr::db
