/// \file layer.h
/// Routing layer model for unidirectional lower-metal routing.
///
/// The paper routes nets on a three-layer stack (Fig. 1): M1 carries standard
/// cell I/O pins only, M2 is a horizontal unidirectional routing layer, M3 is
/// vertical. V1 connects M1-M2 and V2 connects M2-M3.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace cpr::db {

enum class Layer : std::uint8_t {
  M1 = 0,  ///< pin layer; no routing
  M2 = 1,  ///< horizontal unidirectional routing
  M3 = 2,  ///< vertical unidirectional routing
};

inline constexpr int kNumLayers = 3;

enum class Dir : std::uint8_t { Horizontal, Vertical, None };

/// Preferred (and, for unidirectional routing, the only legal) direction.
constexpr Dir direction(Layer l) {
  switch (l) {
    case Layer::M1: return Dir::None;
    case Layer::M2: return Dir::Horizontal;
    case Layer::M3: return Dir::Vertical;
  }
  return Dir::None;
}

constexpr std::string_view name(Layer l) {
  constexpr std::array<std::string_view, kNumLayers> kNames{"M1", "M2", "M3"};
  return kNames[static_cast<std::size_t>(l)];
}

constexpr int index(Layer l) { return static_cast<int>(l); }

}  // namespace cpr::db
