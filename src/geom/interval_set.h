/// \file interval_set.h
/// A set of disjoint closed intervals with union/subtract/query operations.
///
/// Used to model free space on a routing track: blockages subtract from the
/// track, interval generation queries the maximal free segment around a pin.
#pragma once

#include <vector>

#include "geom/interval.h"

namespace cpr::geom {

/// Maintains a normalized (sorted, disjoint, non-abutting) list of closed
/// integer intervals. All operations keep the normal form.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Set covering a single interval (no-op when empty).
  explicit IntervalSet(const Interval& iv) {
    if (!iv.empty()) ivs_.push_back(iv);
  }

  [[nodiscard]] bool empty() const { return ivs_.empty(); }
  [[nodiscard]] const std::vector<Interval>& intervals() const { return ivs_; }

  /// Total number of grid points covered.
  [[nodiscard]] Coord totalSpan() const;

  /// Add an interval (merging with any overlapping or abutting members).
  void add(const Interval& iv);

  /// Remove all points of `iv` from the set (may split members).
  void subtract(const Interval& iv);

  /// True if any member contains `p`.
  [[nodiscard]] bool contains(Coord p) const;

  /// True if a single member contains the whole of `iv`.
  [[nodiscard]] bool containsAll(const Interval& iv) const;

  /// True if any member overlaps `iv`.
  [[nodiscard]] bool overlaps(const Interval& iv) const;

  /// The member containing `p`, or an empty interval if none does.
  [[nodiscard]] Interval segmentContaining(Coord p) const;

 private:
  /// Index of first member with hi >= p (lower bound by right edge).
  [[nodiscard]] std::size_t firstReaching(Coord p) const;

  std::vector<Interval> ivs_;
};

}  // namespace cpr::geom
