/// \file types.h
/// Fundamental scalar types for the routing geometry.
///
/// All geometry in this library is expressed on a uniform routing grid:
/// one unit equals one routing-track pitch (the paper routes on a gridded
/// M1/M2/M3 plane, Section 4). Coordinates are signed so that callers may
/// use sentinel or offset coordinate systems freely.
#pragma once

#include <cstdint>

namespace cpr::geom {

/// Grid coordinate, in units of routing pitch.
using Coord = std::int32_t;

/// Generic dense index (pins, intervals, nets, tracks, ...).
using Index = std::int32_t;

/// Sentinel for "no index".
inline constexpr Index kInvalidIndex = -1;

}  // namespace cpr::geom
