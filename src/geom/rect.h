/// \file rect.h
/// Axis-aligned grid rectangles (net bounding boxes, blockages, pin shapes).
#pragma once

#include <ostream>

#include "geom/interval.h"
#include "geom/point.h"

namespace cpr::geom {

/// Closed axis-aligned rectangle: the product of two closed intervals.
/// Empty iff either side is empty.
struct Rect {
  Interval x;  ///< column range
  Interval y;  ///< row / track range

  constexpr Rect() = default;
  constexpr Rect(Interval x_, Interval y_) : x(x_), y(y_) {}
  constexpr Rect(Coord xlo, Coord ylo, Coord xhi, Coord yhi)
      : x(xlo, xhi), y(ylo, yhi) {}

  static constexpr Rect point(const Point& p) {
    return {Interval::point(p.x), Interval::point(p.y)};
  }

  [[nodiscard]] constexpr bool empty() const { return x.empty() || y.empty(); }
  [[nodiscard]] constexpr Coord width() const { return x.span(); }
  [[nodiscard]] constexpr Coord height() const { return y.span(); }

  [[nodiscard]] constexpr bool contains(const Point& p) const {
    return x.contains(p.x) && y.contains(p.y);
  }
  [[nodiscard]] constexpr bool contains(const Rect& o) const {
    return x.contains(o.x) && y.contains(o.y);
  }
  [[nodiscard]] constexpr bool overlaps(const Rect& o) const {
    return x.overlaps(o.x) && y.overlaps(o.y);
  }

  /// Half-perimeter in pitch units — the paper's wirelength estimate for
  /// unrouted nets ("summation of half perimeter wirelength of unrouted
  /// nets", Section 5).
  [[nodiscard]] constexpr Coord halfPerimeter() const {
    return empty() ? 0 : x.length() + y.length();
  }

  /// Grow to include a point.
  constexpr void expand(const Point& p) {
    x = hull(x, Interval::point(p.x));
    y = hull(y, Interval::point(p.y));
  }
  /// Grow to include a rectangle.
  constexpr void expand(const Rect& o) {
    x = hull(x, o.x);
    y = hull(y, o.y);
  }

  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;
};

constexpr Rect intersect(const Rect& a, const Rect& b) {
  return {intersect(a.x, b.x), intersect(a.y, b.y)};
}

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '{' << r.x << 'x' << r.y << '}';
}

}  // namespace cpr::geom
