/// \file interval.h
/// Closed integer intervals on a routing track.
///
/// A pin access interval (paper Section 3.1) is a horizontal metal strip on
/// one routing track; geometrically it is a closed range [lo, hi] of grid
/// columns. Two intervals *conflict* when their ranges intersect (they would
/// share at least one grid point on the same track).
#pragma once

#include <algorithm>
#include <cassert>
#include <compare>
#include <optional>
#include <ostream>

#include "geom/types.h"

namespace cpr::geom {

/// Closed integer interval [lo, hi]; valid iff lo <= hi.
/// A single grid point is the interval [p, p] with span() == 1.
struct Interval {
  Coord lo = 0;
  Coord hi = -1;  ///< default-constructed interval is empty

  constexpr Interval() = default;
  constexpr Interval(Coord lo_, Coord hi_) : lo(lo_), hi(hi_) {}

  /// Interval covering a single grid point.
  static constexpr Interval point(Coord p) { return {p, p}; }

  [[nodiscard]] constexpr bool empty() const { return lo > hi; }

  /// Number of grid points covered; 0 when empty.
  [[nodiscard]] constexpr Coord span() const { return empty() ? 0 : hi - lo + 1; }

  /// Geometric length in pitch units (span - 1); 0 for a point.
  [[nodiscard]] constexpr Coord length() const { return empty() ? 0 : hi - lo; }

  [[nodiscard]] constexpr bool contains(Coord p) const { return lo <= p && p <= hi; }

  [[nodiscard]] constexpr bool contains(const Interval& o) const {
    return o.empty() || (lo <= o.lo && o.hi <= hi);
  }

  /// Closed intervals overlap iff neither ends before the other starts.
  [[nodiscard]] constexpr bool overlaps(const Interval& o) const {
    return !empty() && !o.empty() && lo <= o.hi && o.lo <= hi;
  }

  /// True when `o` starts exactly after this ends or vice versa.
  [[nodiscard]] constexpr bool abuts(const Interval& o) const {
    if (empty() || o.empty()) return false;
    return hi + 1 == o.lo || o.hi + 1 == lo;
  }

  friend constexpr auto operator<=>(const Interval&, const Interval&) = default;
};

/// Intersection of two closed intervals (empty interval when disjoint).
constexpr Interval intersect(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

/// Smallest interval containing both inputs (ignores empties).
constexpr Interval hull(const Interval& a, const Interval& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

/// Clamp `v` into [iv.lo, iv.hi]; requires non-empty `iv`.
constexpr Coord clamp(Coord v, const Interval& iv) {
  assert(!iv.empty());
  return std::clamp(v, iv.lo, iv.hi);
}

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << '[' << iv.lo << ',' << iv.hi << ']';
}

}  // namespace cpr::geom
