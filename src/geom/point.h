/// \file point.h
/// 2-D grid point.
#pragma once

#include <compare>
#include <cstdlib>
#include <ostream>

#include "geom/types.h"

namespace cpr::geom {

/// A point on the routing grid. `x` indexes vertical grid lines (columns),
/// `y` indexes horizontal grid lines (rows / tracks).
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend constexpr auto operator<=>(const Point&, const Point&) = default;
};

/// Manhattan distance between two grid points.
constexpr Coord manhattan(const Point& a, const Point& b) {
  const Coord dx = a.x >= b.x ? a.x - b.x : b.x - a.x;
  const Coord dy = a.y >= b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

}  // namespace cpr::geom
