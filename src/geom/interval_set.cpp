#include "geom/interval_set.h"

#include <algorithm>
#include <cassert>

namespace cpr::geom {

Coord IntervalSet::totalSpan() const {
  Coord total = 0;
  for (const Interval& iv : ivs_) total += iv.span();
  return total;
}

std::size_t IntervalSet::firstReaching(Coord p) const {
  return static_cast<std::size_t>(
      std::lower_bound(ivs_.begin(), ivs_.end(), p,
                       [](const Interval& iv, Coord v) { return iv.hi < v; }) -
      ivs_.begin());
}

void IntervalSet::add(const Interval& iv) {
  if (iv.empty()) return;
  // Find the run of members that overlap or abut [iv.lo-1, iv.hi+1].
  std::size_t first = firstReaching(iv.lo == INT32_MIN ? iv.lo : iv.lo - 1);
  std::size_t last = first;
  Interval merged = iv;
  while (last < ivs_.size() && ivs_[last].lo <= (iv.hi == INT32_MAX ? iv.hi : iv.hi + 1)) {
    merged = hull(merged, ivs_[last]);
    ++last;
  }
  ivs_.erase(ivs_.begin() + static_cast<std::ptrdiff_t>(first),
             ivs_.begin() + static_cast<std::ptrdiff_t>(last));
  ivs_.insert(ivs_.begin() + static_cast<std::ptrdiff_t>(first), merged);
}

void IntervalSet::subtract(const Interval& iv) {
  if (iv.empty() || ivs_.empty()) return;
  std::vector<Interval> out;
  out.reserve(ivs_.size() + 1);
  for (const Interval& m : ivs_) {
    if (!m.overlaps(iv)) {
      out.push_back(m);
      continue;
    }
    if (m.lo < iv.lo) out.push_back({m.lo, iv.lo - 1});
    if (m.hi > iv.hi) out.push_back({iv.hi + 1, m.hi});
  }
  ivs_ = std::move(out);
}

bool IntervalSet::contains(Coord p) const {
  const std::size_t i = firstReaching(p);
  return i < ivs_.size() && ivs_[i].contains(p);
}

bool IntervalSet::containsAll(const Interval& iv) const {
  if (iv.empty()) return true;
  const std::size_t i = firstReaching(iv.lo);
  return i < ivs_.size() && ivs_[i].contains(iv);
}

bool IntervalSet::overlaps(const Interval& iv) const {
  if (iv.empty()) return false;
  const std::size_t i = firstReaching(iv.lo);
  return i < ivs_.size() && ivs_[i].overlaps(iv);
}

Interval IntervalSet::segmentContaining(Coord p) const {
  const std::size_t i = firstReaching(p);
  if (i < ivs_.size() && ivs_[i].contains(p)) return ivs_[i];
  return {};
}

}  // namespace cpr::geom
