/// \file metrics.h
/// The paper's evaluation metrics (Section 5): routability, via count and
/// wirelength, computed exactly as described — nets with design rule
/// violations count as unrouted; "WL" sums actual grid wirelength of routed
/// nets and half-perimeter wirelength of unrouted nets; "Via#" totals vias
/// of routed nets.
#pragma once

#include <string>
#include <vector>

#include "db/design.h"
#include "route/result.h"

namespace cpr::eval {

struct Metrics {
  int totalNets = 0;
  int routedClean = 0;
  double routability = 0.0;  ///< percent, the paper's "Rout.(%)"
  long vias = 0;             ///< "Via#"
  long wirelength = 0;       ///< "WL"
  double seconds = 0.0;      ///< "cpu(s)"
  long congestedGridsBeforeRrr = 0;
  long drcViolations = 0;
};

[[nodiscard]] Metrics summarize(const db::Design& design,
                                const route::RoutingResult& result,
                                double extraSeconds = 0.0);

/// One formatted row of a Table-2-like report.
[[nodiscard]] std::string tableRow(const std::string& design,
                                   const Metrics& m);
[[nodiscard]] std::string tableHeader();

}  // namespace cpr::eval
