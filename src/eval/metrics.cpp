#include "eval/metrics.h"

#include <cstdio>

namespace cpr::eval {

Metrics summarize(const db::Design& design,
                  const route::RoutingResult& result, double extraSeconds) {
  Metrics m;
  m.totalNets = static_cast<int>(design.nets().size());
  for (std::size_t n = 0; n < result.nets.size(); ++n) {
    const route::NetResult& nr = result.nets[n];
    if (nr.clean) {
      ++m.routedClean;
      m.vias += nr.vias;
      m.wirelength += nr.wirelength;
    } else {
      m.wirelength += design.netBox(static_cast<db::Index>(n)).halfPerimeter();
    }
  }
  m.routability =
      m.totalNets == 0 ? 0.0 : 100.0 * m.routedClean / m.totalNets;
  m.seconds = result.seconds + extraSeconds;
  m.congestedGridsBeforeRrr = result.congestedGridsBeforeRrr();
  m.drcViolations = result.drcViolations();
  return m;
}

std::string tableHeader() {
  return "design      Rout.(%)     Via#        WL    cpu(s)";
}

std::string tableRow(const std::string& design, const Metrics& m) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-10s %8.2f %8ld %9ld %9.2f",
                design.c_str(), m.routability, m.vias, m.wirelength,
                m.seconds);
  return buf;
}

}  // namespace cpr::eval
