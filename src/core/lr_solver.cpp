#include "core/lr_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/names.h"
#include "support/contracts.h"

namespace cpr::core {

namespace {

bool keyLess(const LrSortKey& a, const LrSortKey& b) {
  if (a.gain != b.gain) return a.gain > b.gain;
  if (a.degree != b.degree) return a.degree > b.degree;
  return a.idx < b.idx;
}

/// Algorithm 1, maxGains selection over a pre-sorted key order: select an
/// interval when every covered pin is still free; leftover pins fall back to
/// their minimum interval (always selectable — Theorem 1). Writes the
/// selected interval ids into `sel` and the per-pin assignment into
/// `assign` (both fully reinitialized).
void runMaxGainsOrdered(const PanelKernel& k,
                        const std::vector<LrSortKey>& keys,
                        std::vector<CandIdx>& sel,
                        std::vector<CandIdx>& assign) {
  sel.clear();
  // Every greedy selection assigns at least one previously free pin and the
  // fallback pushes once per still-free pin, so |sel| <= numPins; warm
  // scratches make this reserve a no-op.
  sel.reserve(k.numPins());
  assign.assign(k.numPins(), CandIdx::invalid());
  std::size_t unassigned = k.numPins();
  // Named to dodge POSIX select(): the blocking-call manifest matches on
  // spelling alone, and this lambda is anything but a socket wait.
  auto takeInterval = [&](CandIdx i) {
    sel.push_back(i);
    for (const PinIdx q : k.pinsOf(i)) {
      CPR_DCHECK(q.idx() < assign.size());
      if (!assign[q.idx()].valid()) {
        assign[q.idx()] = i;
        --unassigned;
      }
    }
  };
  for (const LrSortKey& key : keys) {
    if (unassigned == 0) break;  // every pin holds an interval already
    const std::span<const PinIdx> pins = k.pinsOf(key.idx);
    const bool allFree = std::all_of(pins.begin(), pins.end(), [&](PinIdx q) {
      return !assign[q.idx()].valid();
    });
    if (allFree && !pins.empty()) takeInterval(key.idx);
  }
  // Equality constraints (1b): every pin must hold exactly one interval.
  for (std::size_t j = 0; j < k.numPins(); ++j) {
    if (assign[j].valid()) continue;
    const CandIdx mi = k.minimalIntervalOf(PinIdx{j});
    if (!mi.valid()) continue;  // inaccessible pin
    sel.push_back(mi);
    assign[j] = mi;
  }
}

int selectedCount(const PanelKernel& k, ConflictIdx m,
                  const std::vector<char>& selFlag) {
  int count = 0;
  for (const CandIdx i : k.membersOf(m)) count += selFlag[i.idx()] ? 1 : 0;
  return count;
}

}  // namespace

std::size_t LrScratch::footprintBytes() const {
  auto bytes = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  return bytes(penalties) + bytes(lambda) + bytes(csCount) + bytes(touched) +
         bytes(keys) + bytes(dirtyKeys) + bytes(mergeBuf) + bytes(dirtyFlag) +
         bytes(dirtyList) + bytes(curSel) + bytes(curAssign) + bytes(bestSel) +
         bytes(bestAssign) + bytes(selFlag) + bytes(usage) +
         bytes(freedWithin) + bytes(members);
}

std::vector<Index> maxGains(const Problem& p,
                            const std::vector<double>& gains) {
  const PanelKernel k = PanelKernel::compile(Problem(p));
  std::vector<LrSortKey> keys(k.numIntervals());
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = LrSortKey{gains[i], k.degreeOf(CandIdx{i}), CandIdx{i}};
  std::sort(keys.begin(), keys.end(), keyLess);
  std::vector<CandIdx> sel, assign;
  runMaxGainsOrdered(k, keys, sel, assign);
  std::vector<Index> out;
  out.reserve(sel.size());
  for (const CandIdx i : sel) out.push_back(i.value());
  return out;
}

Assignment solveLr(const Problem& p, const LrOptions& opts, LrStats* stats,
                   obs::Collector* obs) {
  return solveLr(PanelKernel::compile(Problem(p)), opts, stats, obs, nullptr);
}

Assignment solveLr(const PanelKernel& k, const LrOptions& opts, LrStats* stats,
                   obs::Collector* obs, LrScratch* scratch,
                   support::Deadline deadline) {
  LrScratch local;
  LrScratch& s = scratch ? *scratch : local;
  const support::Deadline budget =
      support::Deadline::soonerOf(opts.deadline, deadline);
  const std::size_t n = k.numIntervals();
  const std::size_t nPins = k.numPins();
  const std::size_t nCs = k.numConflicts();

  s.penalties.assign(n, 0.0);
  s.lambda.assign(nCs, 0.0);
  double lambdaL1 = 0.0;  ///< Σ λ_m, maintained incrementally for the trace

  int bestVio = std::numeric_limits<int>::max();
  bool haveBest = false;
  int stall = 0;
  int iterations = 0;

  s.csCount.assign(nCs, 0);
  s.touched.clear();
  s.touched.reserve(nCs);

  // Sorted key order, maintained incrementally: only intervals whose
  // penalties changed are re-keyed and merged back (the full per-iteration
  // sort dominates LR runtime on large panels otherwise).
  s.keys.reserve(n);
  s.keys.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    s.keys[i] = LrSortKey{k.weightOf(CandIdx{i}), k.degreeOf(CandIdx{i}),
                          CandIdx{i}};
  std::sort(s.keys.begin(), s.keys.end(), keyLess);
  s.dirtyFlag.assign(n, 0);
  s.dirtyList.clear();
  s.dirtyList.reserve(n);
  s.dirtyKeys.reserve(n);

  auto markDirty = [&](CandIdx i) {
    CPR_DCHECK(i.idx() < s.dirtyFlag.size());
    if (!s.dirtyFlag[i.idx()]) {
      s.dirtyFlag[i.idx()] = 1;
      s.dirtyList.push_back(i);
    }
  };

  auto refreshKeys = [&] {
    if (s.dirtyList.empty()) return;
    if (s.dirtyList.size() > n / 3) {
      for (std::size_t i = 0; i < n; ++i)
        s.keys[i] = LrSortKey{k.weightOf(CandIdx{i}) - s.penalties[i],
                              k.degreeOf(CandIdx{i}), CandIdx{i}};
      std::sort(s.keys.begin(), s.keys.end(), keyLess);
    } else {
      s.dirtyKeys.clear();
      for (const CandIdx i : s.dirtyList) {
        s.dirtyKeys.push_back(LrSortKey{k.weightOf(i) - s.penalties[i.idx()],
                                        k.degreeOf(i), i});
      }
      std::sort(s.dirtyKeys.begin(), s.dirtyKeys.end(), keyLess);
      s.mergeBuf.clear();
      s.mergeBuf.reserve(n);
      // Drop stale entries, then merge the re-keyed ones back in.
      auto clean = [&](const LrSortKey& key) {
        return !s.dirtyFlag[key.idx.idx()];
      };
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < s.keys.size() || b < s.dirtyKeys.size()) {
        while (a < s.keys.size() && !clean(s.keys[a])) ++a;
        if (a == s.keys.size()) {
          while (b < s.dirtyKeys.size()) s.mergeBuf.push_back(s.dirtyKeys[b++]);
          break;
        }
        if (b == s.dirtyKeys.size() || keyLess(s.keys[a], s.dirtyKeys[b])) {
          s.mergeBuf.push_back(s.keys[a++]);
        } else {
          s.mergeBuf.push_back(s.dirtyKeys[b++]);
        }
      }
      // The merge must be a permutation: same key count in as out, or the
      // incremental order has dropped/duplicated an interval.
      CPR_DCHECK(s.mergeBuf.size() == s.keys.size());
      s.keys.swap(s.mergeBuf);
    }
    for (const CandIdx i : s.dirtyList) s.dirtyFlag[i.idx()] = 0;
    s.dirtyList.clear();
  };

  for (int it = 1; it <= opts.maxIterations; ++it) {
    iterations = it;
    refreshKeys();
    runMaxGainsOrdered(k, s.keys, s.curSel, s.curAssign);

    // Per-set selected counts, touching only sets of selected intervals.
    s.touched.clear();
    for (const CandIdx i : s.curSel) {
      for (const ConflictIdx m : k.conflictsOf(i)) {
        if (s.csCount[m.idx()]++ == 0) s.touched.push_back(m);
      }
    }

    // Algorithm 1, penalize: subgradient multiplier update (Eq. 3) with
    // step t_k = L_m / k^alpha.
    int vio = 0;
    const double step = 1.0 / std::pow(static_cast<double>(it), opts.alpha);
    auto applyDelta = [&](ConflictIdx m, double delta) {
      CPR_DCHECK(m.idx() < s.lambda.size());
      s.lambda[m.idx()] += delta;
      lambdaL1 += delta;  // multipliers stay >= 0, so Σλ is the L1 norm
      for (const CandIdx i : k.membersOf(m)) {
        s.penalties[i.idx()] += delta;
        markDirty(i);
      }
    };
    for (const ConflictIdx m : s.touched) {
      const int count = s.csCount[m.idx()];
      if (count <= 1) continue;
      ++vio;
      const double tk = step * static_cast<double>(k.conflictSpanOf(m));
      applyDelta(m, tk * static_cast<double>(count - 1));
    }
    if (opts.bidirectionalMultipliers) {
      // Full subgradient: multipliers of unselected sets decay toward 0.
      for (std::size_t m = 0; m < nCs; ++m) {
        if (s.csCount[m] != 0 || s.lambda[m] == 0.0) continue;
        const double tk =
            step * static_cast<double>(k.conflictSpanOf(ConflictIdx{m}));
        applyDelta(ConflictIdx{m},
                   std::max(0.0, s.lambda[m] - tk) - s.lambda[m]);
      }
    }
    for (const ConflictIdx m : s.touched) s.csCount[m.idx()] = 0;

    const int newBest = std::min(bestVio, vio);
    if (obs) {
      // The extra O(pins) objective sum only runs when tracing is on.
      double curObjective = 0.0;
      for (std::size_t j = 0; j < nPins; ++j) {
        const CandIdx i = s.curAssign[j];
        if (i.valid()) curObjective += k.profitOf(i);
      }
      obs->row(obs::names::kLrIterSeries,
               {"iter", "violations", "best_violations", "lambda_norm",
                "objective"},
               {static_cast<double>(it), static_cast<double>(vio),
                static_cast<double>(newBest), lambdaL1, curObjective});
    }

    if (vio < bestVio) {
      bestVio = vio;
      s.bestSel.swap(s.curSel);
      s.bestAssign.swap(s.curAssign);
      haveBest = true;
      stall = 0;
    } else if (opts.stallLimit > 0 && ++stall >= opts.stallLimit) {
      break;
    }
    if (bestVio == 0) break;
    // Deadline check last, so every solve completes at least one iteration
    // and the repair below always has a best-so-far selection to work on.
    if (budget.expired()) {
      obs::add(obs, obs::names::kLrTimeout);
      break;
    }
  }
  obs::add(obs, obs::names::kLrIterations, iterations);

  if (stats) {
    stats->iterations = iterations;
    stats->bestViolations =
        bestVio == std::numeric_limits<int>::max() ? 0 : bestVio;
    stats->removalRounds = 0;
  }
  if (!haveBest) {
    s.bestSel.clear();
    s.bestAssign.assign(nPins, CandIdx::invalid());
  }

  // Greedy conflict removal (Algorithm 2, line 11): shrink conflicting
  // selections to minimum intervals until no conflict set holds more than
  // one selected interval.
  s.selFlag.assign(n, 0);
  for (const CandIdx i : s.bestSel) s.selFlag[i.idx()] = 1;
  if (!opts.skipConflictRemoval && bestVio > 0) {
    // An interval is shrinkable when some pin assigned to it has a smaller
    // minimum interval to retreat to. Two unshrinkable members can never
    // share a conflict set when pins respect the spacing-guard separation,
    // so shrinking all shrinkable members — sparing the most valuable one
    // only when every member is shrinkable — terminates with at most one
    // selected interval per conflict set.
    auto shrinkable = [&](CandIdx i) {
      for (std::size_t q = 0; q < nPins; ++q) {
        if (s.bestAssign[q] == i && k.minimalIntervalOf(PinIdx{q}) != i)
          return true;
      }
      return false;
    };
    auto shrink = [&](CandIdx i) {
      s.selFlag[i.idx()] = 0;
      for (std::size_t q = 0; q < nPins; ++q) {
        if (s.bestAssign[q] != i) continue;
        const CandIdx mi = k.minimalIntervalOf(PinIdx{q});
        CPR_DCHECK(mi.valid());
        s.bestAssign[q] = mi;
        s.selFlag[mi.idx()] = 1;
      }
    };
    s.members.reserve(n);  // one conflict set's selected members at a time
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t m = 0; m < nCs; ++m) {
        if (selectedCount(k, ConflictIdx{m}, s.selFlag) <= 1) continue;
        s.members.clear();
        bool anyUnshrinkable = false;
        for (const CandIdx i : k.membersOf(ConflictIdx{m})) {
          if (!s.selFlag[i.idx()]) continue;
          s.members.push_back(i);
          anyUnshrinkable |= !shrinkable(i);
        }
        CandIdx keep = CandIdx::invalid();
        if (!anyUnshrinkable) {
          for (const CandIdx i : s.members) {
            if (!keep.valid() || k.weightOf(i) > k.weightOf(keep)) keep = i;
          }
        }
        for (const CandIdx i : s.members) {
          if (i == keep || !shrinkable(i)) continue;
          shrink(i);
          changed = true;
        }
        // Ghost members (selected but assigned to no pin) just deselect.
        for (const CandIdx i : s.members) {
          if (i != keep && !shrinkable(i)) {
            bool assigned = false;
            for (std::size_t q = 0; q < nPins && !assigned; ++q)
              assigned = s.bestAssign[q] == i;
            if (!assigned && s.selFlag[i.idx()]) {
              s.selFlag[i.idx()] = 0;
              changed = true;
            }
          }
        }
      }
      if (changed) {
        if (stats) ++stats->removalRounds;
        obs::add(obs, obs::names::kLrRemovalRounds);
      }
    }
  }

  // Greedy re-expansion: conflict removal trades interval length for
  // legality; this recovers length by upgrading each pin to its most
  // profitable candidate that keeps every conflict set at <= 1 selected
  // interval. Selecting interval i re-points all pins i covers, so shared
  // (intra-panel) intervals can be joined or formed during refinement.
  if (opts.reexpandRounds > 0 && nPins > 0) {
    s.usage.assign(n, 0);
    for (std::size_t j = 0; j < nPins; ++j) {
      const CandIdx cur = s.bestAssign[j];
      if (cur.valid()) ++s.usage[cur.idx()];
    }
    s.freedWithin.assign(n, 0);
    for (int round = 0; round < opts.reexpandRounds; ++round) {
      bool improved = false;
      for (std::size_t j = 0; j < nPins; ++j) {
        const CandIdx cur = s.bestAssign[j];
        if (!cur.valid()) continue;
        for (const CandIdx i : k.sortedCandidatesOf(PinIdx{j})) {
          if (k.profitOf(i) <= k.profitOf(cur)) break;
          if (i == cur) continue;
          const std::span<const PinIdx> covered = k.pinsOf(i);
          // Total objective delta over every pin the candidate re-points.
          double gain = 0.0;
          bool feasiblePins = true;
          for (const PinIdx q : covered) {
            const CandIdx old = s.bestAssign[q.idx()];
            if (!old.valid()) {
              feasiblePins = false;  // inaccessible pin cannot be re-pointed
              break;
            }
            gain += k.profitOf(i) - k.profitOf(old);
            ++s.freedWithin[old.idx()];
          }
          bool ok = feasiblePins && gain > 1e-12;
          if (ok) {
            // Equality rows (1b): an interval that stays selected must not
            // cover a re-pointed pin, so every displaced interval has to be
            // fully freed by this move.
            for (const PinIdx q : covered) {
              const CandIdx old = s.bestAssign[q.idx()];
              if (old != i && s.freedWithin[old.idx()] < s.usage[old.idx()]) {
                ok = false;
                break;
              }
            }
          }
          if (ok) {
            // Conflict sets of the candidate must hold no interval that
            // stays selected after the move.
            for (const ConflictIdx m : k.conflictsOf(i)) {
              for (const CandIdx sel : k.membersOf(m)) {
                if (sel == i || s.usage[sel.idx()] == 0) continue;
                if (s.freedWithin[sel.idx()] < s.usage[sel.idx()]) {
                  ok = false;
                  break;
                }
              }
              if (!ok) break;
            }
          }
          for (const PinIdx q : covered) {
            const CandIdx old = s.bestAssign[q.idx()];
            if (old.valid()) s.freedWithin[old.idx()] = 0;
          }
          if (!ok) continue;
          for (const PinIdx q : covered) {
            CPR_DCHECK(s.bestAssign[q.idx()].valid());
            --s.usage[s.bestAssign[q.idx()].idx()];
            s.bestAssign[q.idx()] = i;
            ++s.usage[i.idx()];
          }
          improved = true;
          obs::add(obs, obs::names::kLrReexpandUpgrades);
          break;  // next pin
        }
      }
      if (!improved) break;
    }
  }

  Assignment out;
  out.intervalOfPin.assign(nPins, geom::kInvalidIndex);
  for (std::size_t j = 0; j < nPins && j < s.bestAssign.size(); ++j)
    out.intervalOfPin[j] = s.bestAssign[j].value();
  for (std::size_t j = 0; j < nPins; ++j) {
    const Index i = out.intervalOfPin[j];
    if (i != geom::kInvalidIndex) out.objective += k.profitOf(CandIdx{i});
  }
  // Final violation count over the (possibly repaired) selection.
  s.selFlag.assign(n, 0);
  for (const Index i : out.intervalOfPin)
    if (i != geom::kInvalidIndex) s.selFlag[CandIdx{i}.idx()] = 1;
  for (std::size_t m = 0; m < nCs; ++m) {
    if (selectedCount(k, ConflictIdx{m}, s.selFlag) > 1) ++out.violations;
  }
  return out;
}

}  // namespace cpr::core
