#include "core/lr_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/names.h"

namespace cpr::core {

namespace {

struct Selection {
  std::vector<Index> sel;            ///< distinct selected interval ids
  std::vector<Index> intervalOfPin;  ///< per-pin assignment
};

/// Sort key for maxGains: non-increasing gain, ties toward intervals
/// covering more same-net pins (intra-panel connections are preferred,
/// Section 3.1), then by index for determinism.
struct Key {
  double gain;
  Index degree;
  Index idx;
};

bool keyLess(const Key& a, const Key& b) {
  if (a.gain != b.gain) return a.gain > b.gain;
  if (a.degree != b.degree) return a.degree > b.degree;
  return a.idx < b.idx;
}

/// Algorithm 1, maxGains selection over a pre-sorted key order: select an
/// interval when every covered pin is still free; leftover pins fall back to
/// their minimum interval (always selectable — Theorem 1).
Selection runMaxGainsOrdered(const Problem& p, const std::vector<Key>& keys) {
  Selection out;
  out.intervalOfPin.assign(p.pins.size(), geom::kInvalidIndex);
  std::size_t unassigned = p.pins.size();
  auto select = [&](Index i) {
    out.sel.push_back(i);
    for (Index q : p.intervals[static_cast<std::size_t>(i)].pins) {
      if (out.intervalOfPin[static_cast<std::size_t>(q)] ==
          geom::kInvalidIndex) {
        out.intervalOfPin[static_cast<std::size_t>(q)] = i;
        --unassigned;
      }
    }
  };
  for (const Key& k : keys) {
    if (unassigned == 0) break;  // every pin holds an interval already
    const auto& pins = p.intervals[static_cast<std::size_t>(k.idx)].pins;
    const bool allFree = std::all_of(pins.begin(), pins.end(), [&](Index q) {
      return out.intervalOfPin[static_cast<std::size_t>(q)] ==
             geom::kInvalidIndex;
    });
    if (allFree && !pins.empty()) select(k.idx);
  }
  // Equality constraints (1b): every pin must hold exactly one interval.
  for (std::size_t j = 0; j < p.pins.size(); ++j) {
    if (out.intervalOfPin[j] != geom::kInvalidIndex) continue;
    const Index mi = p.pins[j].minimalInterval;
    if (mi == geom::kInvalidIndex) continue;  // inaccessible pin
    out.sel.push_back(mi);
    out.intervalOfPin[j] = mi;
  }
  return out;
}

int selectedCount(const ConflictSet& cs, const std::vector<char>& selFlag) {
  int count = 0;
  for (Index i : cs.intervals)
    count += selFlag[static_cast<std::size_t>(i)] ? 1 : 0;
  return count;
}

std::vector<char> flags(std::size_t n, const std::vector<Index>& sel) {
  std::vector<char> f(n, 0);
  for (Index i : sel) f[static_cast<std::size_t>(i)] = 1;
  return f;
}

}  // namespace

std::vector<Index> maxGains(const Problem& p, const std::vector<double>& gains) {
  std::vector<Key> keys(p.intervals.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = Key{gains[i], static_cast<Index>(p.intervals[i].pins.size()),
                  static_cast<Index>(i)};
  std::sort(keys.begin(), keys.end(), keyLess);
  return runMaxGainsOrdered(p, keys).sel;
}

Assignment solveLr(const Problem& p, const LrOptions& opts, LrStats* stats,
                   obs::Collector* obs) {
  const std::size_t n = p.intervals.size();
  std::vector<double> profits(n);
  std::vector<Index> degree(n);
  for (std::size_t i = 0; i < n; ++i) {
    profits[i] = p.weight(static_cast<Index>(i));
    degree[i] = static_cast<Index>(p.intervals[i].pins.size());
  }

  std::vector<double> penalties(n, 0.0);
  std::vector<double> lambda(p.conflicts.size(), 0.0);
  double lambdaL1 = 0.0;  ///< Σ λ_m, maintained incrementally for the trace

  Selection best;
  int bestVio = std::numeric_limits<int>::max();
  int stall = 0;
  int iterations = 0;

  // Interval -> conflict sets containing it, for incremental violation
  // counting.
  std::vector<std::vector<Index>> csOf(n);
  for (std::size_t m = 0; m < p.conflicts.size(); ++m) {
    for (Index i : p.conflicts[m].intervals)
      csOf[static_cast<std::size_t>(i)].push_back(static_cast<Index>(m));
  }
  std::vector<int> csCount(p.conflicts.size(), 0);
  std::vector<Index> touched;

  // Sorted key order, maintained incrementally: only intervals whose
  // penalties changed are re-keyed and merged back (the full per-iteration
  // sort dominates LR runtime on large panels otherwise).
  std::vector<Key> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = Key{profits[i], degree[i], static_cast<Index>(i)};
  std::sort(keys.begin(), keys.end(), keyLess);
  std::vector<char> dirtyFlag(n, 0);
  std::vector<Index> dirtyList;
  std::vector<Key> dirtyKeys;
  std::vector<Key> mergeBuf;

  auto markDirty = [&](Index i) {
    if (!dirtyFlag[static_cast<std::size_t>(i)]) {
      dirtyFlag[static_cast<std::size_t>(i)] = 1;
      dirtyList.push_back(i);
    }
  };

  auto refreshKeys = [&] {
    if (dirtyList.empty()) return;
    if (dirtyList.size() > n / 3) {
      for (std::size_t i = 0; i < n; ++i)
        keys[i] = Key{profits[i] - penalties[i], degree[i],
                      static_cast<Index>(i)};
      std::sort(keys.begin(), keys.end(), keyLess);
    } else {
      dirtyKeys.clear();
      for (Index i : dirtyList) {
        dirtyKeys.push_back(Key{profits[static_cast<std::size_t>(i)] -
                                    penalties[static_cast<std::size_t>(i)],
                                degree[static_cast<std::size_t>(i)], i});
      }
      std::sort(dirtyKeys.begin(), dirtyKeys.end(), keyLess);
      mergeBuf.clear();
      mergeBuf.reserve(n);
      // Drop stale entries, then merge the re-keyed ones back in.
      auto clean = [&](const Key& k) {
        return !dirtyFlag[static_cast<std::size_t>(k.idx)];
      };
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < keys.size() || b < dirtyKeys.size()) {
        while (a < keys.size() && !clean(keys[a])) ++a;
        if (a == keys.size()) {
          while (b < dirtyKeys.size()) mergeBuf.push_back(dirtyKeys[b++]);
          break;
        }
        if (b == dirtyKeys.size() || keyLess(keys[a], dirtyKeys[b])) {
          mergeBuf.push_back(keys[a++]);
        } else {
          mergeBuf.push_back(dirtyKeys[b++]);
        }
      }
      keys.swap(mergeBuf);
    }
    for (Index i : dirtyList) dirtyFlag[static_cast<std::size_t>(i)] = 0;
    dirtyList.clear();
  };

  for (int k = 1; k <= opts.maxIterations; ++k) {
    iterations = k;
    refreshKeys();
    Selection cur = runMaxGainsOrdered(p, keys);

    // Per-set selected counts, touching only sets of selected intervals.
    touched.clear();
    for (Index i : cur.sel) {
      for (Index m : csOf[static_cast<std::size_t>(i)]) {
        if (csCount[static_cast<std::size_t>(m)]++ == 0) touched.push_back(m);
      }
    }

    // Algorithm 1, penalize: subgradient multiplier update (Eq. 3) with
    // step t_k = L_m / k^alpha.
    int vio = 0;
    const double step = 1.0 / std::pow(static_cast<double>(k), opts.alpha);
    auto applyDelta = [&](Index m, double delta) {
      lambda[static_cast<std::size_t>(m)] += delta;
      lambdaL1 += delta;  // multipliers stay >= 0, so Σλ is the L1 norm
      for (Index i : p.conflicts[static_cast<std::size_t>(m)].intervals) {
        penalties[static_cast<std::size_t>(i)] += delta;
        markDirty(i);
      }
    };
    for (Index m : touched) {
      const int count = csCount[static_cast<std::size_t>(m)];
      if (count <= 1) continue;
      ++vio;
      const double tk =
          step * static_cast<double>(
                     p.conflicts[static_cast<std::size_t>(m)].common.span());
      applyDelta(m, tk * static_cast<double>(count - 1));
    }
    if (opts.bidirectionalMultipliers) {
      // Full subgradient: multipliers of unselected sets decay toward 0.
      for (std::size_t m = 0; m < p.conflicts.size(); ++m) {
        if (csCount[m] != 0 || lambda[m] == 0.0) continue;
        const double tk =
            step * static_cast<double>(p.conflicts[m].common.span());
        applyDelta(static_cast<Index>(m),
                   std::max(0.0, lambda[m] - tk) - lambda[m]);
      }
    }
    for (Index m : touched) csCount[static_cast<std::size_t>(m)] = 0;

    const int newBest = std::min(bestVio, vio);
    if (obs) {
      // The extra O(pins) objective sum only runs when tracing is on.
      double curObjective = 0.0;
      for (std::size_t j = 0; j < p.pins.size(); ++j) {
        const Index i = cur.intervalOfPin[j];
        if (i != geom::kInvalidIndex)
          curObjective += p.profit[static_cast<std::size_t>(i)];
      }
      obs->row("lr.iter",
               {"iter", "violations", "best_violations", "lambda_norm",
                "objective"},
               {static_cast<double>(k), static_cast<double>(vio),
                static_cast<double>(newBest), lambdaL1, curObjective});
    }

    if (vio < bestVio) {
      bestVio = vio;
      best = std::move(cur);
      stall = 0;
    } else if (opts.stallLimit > 0 && ++stall >= opts.stallLimit) {
      break;
    }
    if (bestVio == 0) break;
  }
  obs::add(obs, obs::names::kLrIterations, iterations);

  if (stats) {
    stats->iterations = iterations;
    stats->bestViolations =
        bestVio == std::numeric_limits<int>::max() ? 0 : bestVio;
    stats->removalRounds = 0;
  }

  // Greedy conflict removal (Algorithm 2, line 11): shrink conflicting
  // selections to minimum intervals until no conflict set holds more than
  // one selected interval.
  std::vector<char> selFlag = flags(n, best.sel);
  if (!opts.skipConflictRemoval && bestVio > 0) {
    // An interval is shrinkable when some pin assigned to it has a smaller
    // minimum interval to retreat to. Two unshrinkable members can never
    // share a conflict set when pins respect the spacing-guard separation,
    // so shrinking all shrinkable members — sparing the most valuable one
    // only when every member is shrinkable — terminates with at most one
    // selected interval per conflict set.
    auto shrinkable = [&](Index i) {
      for (std::size_t q = 0; q < p.pins.size(); ++q) {
        if (best.intervalOfPin[q] == i && p.pins[q].minimalInterval != i)
          return true;
      }
      return false;
    };
    auto shrink = [&](Index i) {
      selFlag[static_cast<std::size_t>(i)] = 0;
      for (std::size_t q = 0; q < p.pins.size(); ++q) {
        if (best.intervalOfPin[q] != i) continue;
        const Index mi = p.pins[q].minimalInterval;
        assert(mi != geom::kInvalidIndex);
        best.intervalOfPin[q] = mi;
        selFlag[static_cast<std::size_t>(mi)] = 1;
      }
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (const ConflictSet& cs : p.conflicts) {
        if (selectedCount(cs, selFlag) <= 1) continue;
        std::vector<Index> members;
        bool anyUnshrinkable = false;
        for (Index i : cs.intervals) {
          if (!selFlag[static_cast<std::size_t>(i)]) continue;
          members.push_back(i);
          anyUnshrinkable |= !shrinkable(i);
        }
        Index keep = geom::kInvalidIndex;
        if (!anyUnshrinkable) {
          for (Index i : members) {
            if (keep == geom::kInvalidIndex || p.weight(i) > p.weight(keep))
              keep = i;
          }
        }
        for (Index i : members) {
          if (i == keep || !shrinkable(i)) continue;
          shrink(i);
          changed = true;
        }
        // Ghost members (selected but assigned to no pin) just deselect.
        for (Index i : members) {
          if (i != keep && !shrinkable(i)) {
            bool assigned = false;
            for (std::size_t q = 0; q < p.pins.size() && !assigned; ++q)
              assigned = best.intervalOfPin[q] == i;
            if (!assigned && selFlag[static_cast<std::size_t>(i)]) {
              selFlag[static_cast<std::size_t>(i)] = 0;
              changed = true;
            }
          }
        }
      }
      if (changed) {
        if (stats) ++stats->removalRounds;
        obs::add(obs, obs::names::kLrRemovalRounds);
      }
    }
  }

  // Greedy re-expansion: conflict removal trades interval length for
  // legality; this recovers length by upgrading each pin to its most
  // profitable candidate that keeps every conflict set at <= 1 selected
  // interval. Selecting interval i re-points all pins i covers, so shared
  // (intra-panel) intervals can be joined or formed during refinement.
  if (opts.reexpandRounds > 0 && !p.pins.empty()) {
    std::vector<int> usage(n, 0);
    for (std::size_t j = 0; j < p.pins.size(); ++j) {
      const Index cur = best.intervalOfPin[j];
      if (cur != geom::kInvalidIndex) ++usage[static_cast<std::size_t>(cur)];
    }
    // Candidates per pin, most profitable first.
    std::vector<std::vector<Index>> sortedSj(p.pins.size());
    for (std::size_t j = 0; j < p.pins.size(); ++j) {
      sortedSj[j] = p.pins[j].intervals;
      std::sort(sortedSj[j].begin(), sortedSj[j].end(), [&](Index a, Index b) {
        const double pa = p.profit[static_cast<std::size_t>(a)];
        const double pb = p.profit[static_cast<std::size_t>(b)];
        return pa != pb ? pa > pb : a < b;
      });
    }
    std::vector<int> freedWithin(n, 0);
    for (int round = 0; round < opts.reexpandRounds; ++round) {
      bool improved = false;
      for (std::size_t j = 0; j < p.pins.size(); ++j) {
        const Index cur = best.intervalOfPin[j];
        if (cur == geom::kInvalidIndex) continue;
        for (Index i : sortedSj[j]) {
          const std::size_t ii = static_cast<std::size_t>(i);
          if (p.profit[ii] <= p.profit[static_cast<std::size_t>(cur)]) break;
          if (i == cur) continue;
          const auto& covered = p.intervals[ii].pins;
          // Total objective delta over every pin the candidate re-points.
          double gain = 0.0;
          bool feasiblePins = true;
          for (Index q : covered) {
            const Index old = best.intervalOfPin[static_cast<std::size_t>(q)];
            if (old == geom::kInvalidIndex) {
              feasiblePins = false;  // inaccessible pin cannot be re-pointed
              break;
            }
            gain += p.profit[ii] - p.profit[static_cast<std::size_t>(old)];
            ++freedWithin[static_cast<std::size_t>(old)];
          }
          bool ok = feasiblePins && gain > 1e-12;
          if (ok) {
            // Equality rows (1b): an interval that stays selected must not
            // cover a re-pointed pin, so every displaced interval has to be
            // fully freed by this move.
            for (Index q : covered) {
              const std::size_t oo = static_cast<std::size_t>(
                  best.intervalOfPin[static_cast<std::size_t>(q)]);
              if (static_cast<Index>(oo) != i &&
                  freedWithin[oo] < usage[oo]) {
                ok = false;
                break;
              }
            }
          }
          if (ok) {
            // Conflict sets of the candidate must hold no interval that
            // stays selected after the move.
            for (Index m : csOf[ii]) {
              for (Index s : p.conflicts[static_cast<std::size_t>(m)].intervals) {
                const std::size_t ss = static_cast<std::size_t>(s);
                if (s == i || usage[ss] == 0) continue;
                if (freedWithin[ss] < usage[ss]) {
                  ok = false;
                  break;
                }
              }
              if (!ok) break;
            }
          }
          for (Index q : covered) {
            const Index old = best.intervalOfPin[static_cast<std::size_t>(q)];
            if (old != geom::kInvalidIndex)
              freedWithin[static_cast<std::size_t>(old)] = 0;
          }
          if (!ok) continue;
          for (Index q : covered) {
            const std::size_t qq = static_cast<std::size_t>(q);
            --usage[static_cast<std::size_t>(best.intervalOfPin[qq])];
            best.intervalOfPin[qq] = i;
            ++usage[ii];
          }
          improved = true;
          obs::add(obs, obs::names::kLrReexpandUpgrades);
          break;  // next pin
        }
      }
      if (!improved) break;
    }
  }

  Assignment out;
  out.intervalOfPin = std::move(best.intervalOfPin);
  if (out.intervalOfPin.empty())
    out.intervalOfPin.assign(p.pins.size(), geom::kInvalidIndex);
  for (std::size_t j = 0; j < p.pins.size(); ++j) {
    const Index i = out.intervalOfPin[j];
    if (i != geom::kInvalidIndex)
      out.objective += p.profit[static_cast<std::size_t>(i)];
  }
  // Final violation count over the (possibly repaired) selection.
  selFlag.assign(n, 0);
  for (Index i : out.intervalOfPin)
    if (i != geom::kInvalidIndex) selFlag[static_cast<std::size_t>(i)] = 1;
  for (const ConflictSet& cs : p.conflicts) {
    if (selectedCount(cs, selFlag) > 1) ++out.violations;
  }
  return out;
}

}  // namespace cpr::core
