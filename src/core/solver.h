/// \file solver.h
/// Unified solver interface over the weighted interval assignment problem.
///
/// All three solving paths of the reproduction — the scalable Lagrangian
/// relaxation (Section 3.4), the specialized exact branch & bound (playing
/// the paper's commercial ILP solver), and the generic ILP translation
/// through `ilp::Model` — implement the same `Solver` interface, so the
/// design-level optimizer, the benches, and the CLI select a solver by value
/// instead of switching on an enum at every call site. Solvers are stateless
/// after construction and safe to share across panel-solving threads; all
/// mutable per-solve state lives in the caller-owned `PanelScratch` arena.
///
/// The primary entry point consumes a compiled `PanelKernel` (see
/// panel_kernel.h) plus an optional scratch arena; the `Problem` overload is
/// a convenience that compiles a kernel internally.
///
/// Every `solve` accepts an optional `obs::Collector` into which the solver
/// reports its canonical counters and per-iteration trace series (see
/// obs/names.h); pass nullptr to skip all instrumentation.
#pragma once

#include <memory>
#include <string_view>

#include "core/exact_solver.h"
#include "core/lr_solver.h"
#include "core/panel_kernel.h"
#include "core/problem.h"
#include "ilp/branch_and_bound.h"
#include "obs/collector.h"
#include "support/deadline.h"
#include "support/hot_annotations.h"
#include "support/status.h"

namespace cpr::core {

/// Solver selection for option structs and command lines. `Lr` and `Exact`
/// are the paper's two methods; `Ilp` is the generic LP-based branch & bound
/// over the translated Formula (1) model (slow, used for cross-checking).
enum class Method {
  Lr,    ///< Lagrangian relaxation + greedy conflict removal (Algorithm 2)
  Exact, ///< specialized branch & bound to proven optimality (the "ILP")
  Ilp,   ///< generic ILP translation solved by ilp::solveBinaryIlp
};

/// Per-worker arena shared by every solver behind the interface. A worker
/// thread owns one `PanelScratch` and reuses it across all panels it
/// processes; each solve fully reinitializes what it reads, so reuse only
/// saves allocations (see LrScratch / ExactScratch).
struct PanelScratch {
  LrScratch lr;
  ExactScratch exact;

  /// Current capacity across the arenas, for the optimizer's gauge.
  [[nodiscard]] std::size_t footprintBytes() const {
    return lr.footprintBytes() + exact.footprintBytes();
  }
};

class Solver {
 public:
  virtual ~Solver() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Solves the compiled instance `k` (profits and conflicts filled before
  /// compilation). `scratch` may be null (solvers fall back to local
  /// buffers) or a reused per-worker arena. Reports counters and traces
  /// into `obs` when non-null. `deadline` is a per-call wall-clock budget
  /// (unset = none); built-in solvers compose it with any deadline carried
  /// in their options and return their best legal incumbent when it fires.
  [[nodiscard]] virtual Assignment solve(const PanelKernel& k,
                                         PanelScratch* scratch = nullptr,
                                         obs::Collector* obs = nullptr,
                                         support::Deadline deadline = {})
      const = 0;
  /// Convenience: compiles `p` into a temporary kernel and solves.
  [[nodiscard]] Assignment solve(const Problem& p,
                                 obs::Collector* obs = nullptr) const;

  /// Fault-isolating entry point used at the panel boundary: never throws.
  /// Catches every exception out of `solve` (mapped to StatusCode::Failed)
  /// and classifies the result —
  ///   Ok         legal assignment, solver finished on its own terms;
  ///   Degraded   assignment still violates conflict rows (needs repair);
  ///   TimedOut   `deadline` fired; the value is the best incumbent, which
  ///              may be legal (usable) or empty;
  ///   Infeasible nothing assigned although the instance has pins;
  ///   Failed     `solve` threw; the value is unusable.
  /// The caller decides whether a non-Ok value is good enough or whether to
  /// walk further down the degradation ladder.
  [[nodiscard]] support::Outcome<Assignment> trySolve(
      const PanelKernel& k, PanelScratch* scratch = nullptr,
      obs::Collector* obs = nullptr, support::Deadline deadline = {}) const;
};

/// Algorithm 2 behind the interface; thin wrapper over `solveLr`.
class LrSolver final : public Solver {
 public:
  using Solver::solve;
  explicit LrSolver(LrOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string_view name() const override { return "lr"; }
  [[nodiscard]] Assignment solve(const PanelKernel& k,
                                 PanelScratch* scratch = nullptr,
                                 obs::Collector* obs = nullptr,
                                 support::Deadline deadline = {}) const override
      CPR_HOT;
  [[nodiscard]] const LrOptions& options() const { return opts_; }

 private:
  LrOptions opts_;
};

/// The specialized exact branch & bound behind the interface; wraps
/// `solveExact`.
class ExactSolver final : public Solver {
 public:
  using Solver::solve;
  explicit ExactSolver(ExactOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string_view name() const override { return "exact"; }
  [[nodiscard]] Assignment solve(const PanelKernel& k,
                                 PanelScratch* scratch = nullptr,
                                 obs::Collector* obs = nullptr,
                                 support::Deadline deadline = {}) const override
      CPR_HOT;
  [[nodiscard]] const ExactOptions& options() const { return opts_; }

 private:
  ExactOptions opts_;
};

/// The ILP translation path: builds Formula (1) with `buildIlpModel`, solves
/// it with the generic LP-based branch & bound, and decodes the 0/1 solution.
class IlpSolver final : public Solver {
 public:
  using Solver::solve;
  explicit IlpSolver(ilp::IlpOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string_view name() const override { return "ilp"; }
  // CPR_COLD_OK: the generic translation path exists as a cross-checking
  // baseline; building the ilp::Model allocates by design and is never on
  // the scaling-critical path.
  [[nodiscard]] Assignment solve(const PanelKernel& k,
                                 PanelScratch* scratch = nullptr,
                                 obs::Collector* obs = nullptr,
                                 support::Deadline deadline = {}) const override
      CPR_COLD_OK;
  [[nodiscard]] const ilp::IlpOptions& options() const { return opts_; }

 private:
  ilp::IlpOptions opts_;
};

/// Everything `makeSolver` needs, in one bundle: the method plus each
/// engine's options. This is THE options path into the solver layer — the
/// optimizer embeds one, the CLI and benches fill one, and per-engine knobs
/// (including the ILP path's `ilp.lp.backend` LP-engine name) are reached
/// through it instead of loose factory parameters.
struct SolverOptions {
  Method method = Method::Lr;
  LrOptions lr;
  ExactOptions exact;
  ilp::IlpOptions ilp;
};

/// Factory used by the optimizer, benches, and CLI.
[[nodiscard]] std::unique_ptr<Solver> makeSolver(const SolverOptions& opts = {});

}  // namespace cpr::core
