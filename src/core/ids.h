/// \file ids.h
/// Strong index types for the panel-local solver hot path.
///
/// A compiled `PanelKernel` juggles four distinct dense index spaces — pins,
/// candidate intervals, conflict sets, and panel-local tracks — and before
/// this header they were all the same `geom::Index`, so a transposed
/// argument or a pin id used to subscript a per-interval column compiled
/// silently. Each space now gets its own explicit-constructor wrapper; the
/// only sanctioned conversion to a container subscript is `idx()`, and the
/// `INDEX-CAST` lint rule forbids raw `static_cast<std::size_t>` index math
/// in the kernel/solver files so every conversion flows through here.
///
/// The wrappers are a single `geom::Index` wide, trivially copyable, and
/// totally ordered, so `std::vector<CandIdx>` / `std::span<const PinIdx>`
/// have the exact layout and codegen of their raw counterparts (the
/// micro-kernel bench pins this at ±2%). Raw ids cross the boundary only at
/// the `Problem` / `Assignment` interface via `value()` and the explicit
/// constructors.
#pragma once

#include <compare>
#include <cstddef>

#include "geom/types.h"

namespace cpr::core {

/// Tagged dense index. `Tag` only disambiguates the type; it is never
/// instantiated.
template <class Tag>
class StrongIdx {
 public:
  /// Default-constructed ids are the sentinel ("no index").
  constexpr StrongIdx() = default;
  constexpr explicit StrongIdx(geom::Index v) : v_(v) {}
  /// Container-size entry point for `for (std::size_t ...)` loops; the
  /// narrowing mirrors the CSR compile contract that every panel-local
  /// count fits an `Index`.
  constexpr explicit StrongIdx(std::size_t v)
      : v_(static_cast<geom::Index>(v)) {}

  /// The raw id, for the `Problem`/`Assignment` boundary.
  [[nodiscard]] constexpr geom::Index value() const { return v_; }
  /// The one sanctioned index-to-subscript conversion.
  [[nodiscard]] constexpr std::size_t idx() const {
    return static_cast<std::size_t>(v_);
  }
  [[nodiscard]] constexpr bool valid() const {
    return v_ != geom::kInvalidIndex;
  }
  [[nodiscard]] static constexpr StrongIdx invalid() { return StrongIdx{}; }

  friend constexpr auto operator<=>(StrongIdx, StrongIdx) = default;

 private:
  geom::Index v_ = geom::kInvalidIndex;
};

/// Problem-local pin `pj` (row of the pin→candidate CSR).
using PinIdx = StrongIdx<struct PinIdxTag>;
/// Candidate access interval `Ii` (row of the interval columns; "Cand"
/// because every interval is some pin's candidate).
using CandIdx = StrongIdx<struct CandIdxTag>;
/// Conflict set `Cm` (row of the conflict→member CSR).
using ConflictIdx = StrongIdx<struct ConflictIdxTag>;
/// Panel-local track (t - panel.tracks.lo), used by interval generation's
/// per-track pin buckets.
using TrackIdx = StrongIdx<struct TrackIdxTag>;

}  // namespace cpr::core
