#include "core/exact_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/names.h"
#include "support/contracts.h"

namespace cpr::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

enum : std::uint8_t { kFree = 0, kOne = 1, kZero = 2 };

struct Search {
  const PanelKernel& k;
  const ExactOptions& opts;
  ExactScratch& s;
  obs::Collector* obs = nullptr;
  support::Deadline deadline;

  double lambdaSum = 0.0;

  // Incumbent.
  double bestObj = kNegInf;
  bool haveIncumbent = false;

  long epoch = 0;
  long nodes = 0;
  bool truncated = false;
  bool timedOut = false;

  Search(const PanelKernel& kernel, const ExactOptions& o, ExactScratch& sc)
      : k(kernel), opts(o), s(sc) {
    const std::size_t n = k.numIntervals();
    const std::size_t nPins = k.numPins();
    s.activePins.clear();
    s.activePins.reserve(nPins);
    for (std::size_t j = 0; j < nPins; ++j) {
      if (!k.candidatesOf(PinIdx{j}).empty()) s.activePins.push_back(PinIdx{j});
    }
    s.status.assign(n, kFree);
    s.assignedTo.assign(nPins, CandIdx::invalid());
    // Fixed-capacity undo stack: a status change is trailed at most once per
    // interval and an assignment at most once per pin along any search path.
    s.trail.resize(std::max(s.trail.size(), n + nPins));
    s.trailLen = 0;
    s.chosenStamp.assign(n, -1);
    s.csStamp.assign(k.numConflicts(), -1);
    s.csCount.assign(k.numConflicts(), 0);
    s.term.assign(n, 0.0);
    s.bestAssign.clear();
  }

  /// Subgradient tuning of the root multipliers: minimizes the split-penalty
  /// dual bound and freezes the best snapshot into `term` / `lambdaSum`.
  /// With a known feasible value (the LR seed) the step follows Polyak's
  /// rule t_k = θ (D(λ) - LB) / ||g||², which closes the root gap far faster
  /// than the diminishing schedule alone.
  void tuneRootDual(double incumbentValue) {
    const std::size_t n = k.numIntervals();
    const std::size_t nCs = k.numConflicts();
    s.lambda.assign(nCs, 0.0);
    s.penalty.assign(n, 0.0);  // P_i = sum of lambda over conflictsOf(i)
    s.bestPenalty.assign(n, 0.0);
    double bestBound = std::numeric_limits<double>::infinity();
    double bestLambdaSum = 0.0;
    s.rootChoice.assign(k.numPins(), CandIdx::invalid());
    const bool polyak = incumbentValue > kNegInf;
    double theta = 1.0;  // Polyak relaxation factor, halved on stalls
    int sinceImprove = 0;

    for (int it = 1; it <= std::max(1, opts.rootDualIterations); ++it) {
      if (deadline.expired()) {
        timedOut = true;
        break;  // the best snapshot so far still yields a valid bound
      }
      // Per-pin argmax under current multipliers.
      double bound = 0.0;
      for (const PinIdx j : s.activePins) {
        double best = kNegInf;
        CandIdx arg = CandIdx::invalid();
        for (const CandIdx i : k.candidatesOf(j)) {
          const double t =
              k.profitOf(i) -
              s.penalty[i.idx()] / static_cast<double>(k.degreeOf(i));
          if (t > best) {
            best = t;
            arg = i;
          }
        }
        bound += best;
        s.rootChoice[j.idx()] = arg;
      }
      double lsum = 0.0;
      for (const double l : s.lambda) lsum += l;
      bound += lsum;
      obs::row(obs, obs::names::kExactRootSeries, {"iter", "bound"},
               {static_cast<double>(it), bound});
      if (bound < bestBound - 1e-12) {
        bestBound = bound;
        s.bestPenalty = s.penalty;
        bestLambdaSum = lsum;
        sinceImprove = 0;
      } else if (polyak && ++sinceImprove >= 20) {
        theta = std::max(0.05, theta * 0.5);
        sinceImprove = 0;
      }
      if (polyak && bestBound <= incumbentValue + 1e-9) break;  // gap closed

      // Subgradient step on every conflict set.
      ++epoch;
      for (const PinIdx j : s.activePins) {
        const CandIdx i = s.rootChoice[j.idx()];
        s.chosenStamp[i.idx()] = epoch;
      }
      double gradNormSq = 0.0;
      if (polyak) {
        for (std::size_t m = 0; m < nCs; ++m) {
          int count = 0;
          for (const CandIdx i : k.membersOf(ConflictIdx{m}))
            count += s.chosenStamp[i.idx()] == epoch ? 1 : 0;
          const double grad = static_cast<double>(count - 1);
          if (grad > 0.0 || (grad < 0.0 && s.lambda[m] > 0.0))
            gradNormSq += grad * grad;
        }
        if (gradNormSq == 0.0) break;  // stationary: dual optimum reached
      }
      const double schedule =
          1.0 / std::pow(static_cast<double>(it), opts.alpha);
      const double polyakStep =
          polyak ? theta * std::max(0.0, bound - incumbentValue) / gradNormSq
                 : 0.0;
      for (std::size_t m = 0; m < nCs; ++m) {
        int count = 0;
        for (const CandIdx i : k.membersOf(ConflictIdx{m}))
          count += s.chosenStamp[i.idx()] == epoch ? 1 : 0;
        const double grad = static_cast<double>(count - 1);
        if (grad == 0.0) continue;
        const double tk =
            polyak
                ? polyakStep
                : schedule * static_cast<double>(k.conflictSpanOf(
                                 ConflictIdx{m}));
        const double next = std::max(0.0, s.lambda[m] + tk * grad);
        const double delta = next - s.lambda[m];
        if (delta == 0.0) continue;
        s.lambda[m] = next;
        for (const CandIdx i : k.membersOf(ConflictIdx{m}))
          s.penalty[i.idx()] += delta;
      }
    }

    for (std::size_t i = 0; i < n; ++i)
      s.term[i] =
          k.profitOf(CandIdx{i}) -
          s.bestPenalty[i] / static_cast<double>(k.degreeOf(CandIdx{i}));
    lambdaSum = bestLambdaSum;
  }

  [[nodiscard]] bool outOfBudget() {
    if (nodes >= opts.maxNodes) return true;
    if ((nodes & 0x3ff) == 0 && deadline.expired()) {
      timedOut = true;
      return true;
    }
    return false;
  }

  std::size_t mark() const { return s.trailLen; }

  void undoTo(std::size_t m) {
    while (s.trailLen > m) {
      const ExactTrailOp op = s.trail[--s.trailLen];
      if (op.isStatus) {
        CPR_DCHECK(op.cand.idx() < s.status.size());
        s.status[op.cand.idx()] = kFree;
      } else {
        CPR_DCHECK(op.pin.idx() < s.assignedTo.size());
        s.assignedTo[op.pin.idx()] = CandIdx::invalid();
      }
    }
  }

  bool setZero(CandIdx i) {
    CPR_DCHECK(i.idx() < s.status.size());
    std::uint8_t& st = s.status[i.idx()];
    if (st == kOne) return false;
    if (st == kFree) {
      st = kZero;
      CPR_DCHECK(s.trailLen < s.trail.size());
      s.trail[s.trailLen++] = {true, i, PinIdx::invalid()};
    }
    return true;
  }

  /// Forces x_i = 1 and propagates the equality (1b) and conflict (1c) rows.
  bool forceOne(CandIdx i) {
    CPR_DCHECK(i.idx() < s.status.size());
    std::uint8_t& st = s.status[i.idx()];
    if (st == kZero) return false;
    if (st == kFree) {
      st = kOne;
      CPR_DCHECK(s.trailLen < s.trail.size());
      s.trail[s.trailLen++] = {true, i, PinIdx::invalid()};
    }
    for (const PinIdx q : k.pinsOf(i)) {
      if (s.assignedTo[q.idx()].valid()) {
        if (s.assignedTo[q.idx()] != i) return false;
      } else {
        s.assignedTo[q.idx()] = i;
        CPR_DCHECK(s.trailLen < s.trail.size());
        s.trail[s.trailLen++] = {false, CandIdx::invalid(), q};
      }
      for (const CandIdx c : k.candidatesOf(q)) {
        if (c != i && !setZero(c)) return false;
      }
    }
    for (const ConflictIdx m : k.conflictsOf(i)) {
      for (const CandIdx c : k.membersOf(m)) {
        if (c != i && !setZero(c)) return false;
      }
    }
    return true;
  }

  void dfs() {
    if (outOfBudget()) {
      truncated = true;
      return;
    }
    ++nodes;

    // Bound and per-pin choice under the current fixing. `nodeChoice` and
    // `nodeChosen` are shared across the recursion: a node never reads them
    // after recursing into a child, so one pool per worker suffices.
    s.nodeChoice.assign(k.numPins(), CandIdx::invalid());
    double bound = lambdaSum;
    for (const PinIdx j : s.activePins) {
      if (s.assignedTo[j.idx()].valid()) {
        s.nodeChoice[j.idx()] = s.assignedTo[j.idx()];
        bound += s.term[s.assignedTo[j.idx()].idx()];
        continue;
      }
      double best = kNegInf;
      CandIdx arg = CandIdx::invalid();
      for (const CandIdx i : k.candidatesOf(j)) {
        if (s.status[i.idx()] == kZero) continue;
        const double t = s.term[i.idx()];
        if (t > best) {
          best = t;
          arg = i;
        }
      }
      if (!arg.valid()) return;  // pin starved: infeasible node
      s.nodeChoice[j.idx()] = arg;
      bound += best;
    }
    if (haveIncumbent && bound <= bestObj + kEps) return;

    // Identify a violated conflict set or an inconsistently chosen shared
    // interval; both yield a free interval to branch on.
    ++epoch;
    s.nodeChosen.clear();
    s.nodeChosen.reserve(k.numPins());  // no-op warm; one entry per pin max
    for (const PinIdx j : s.activePins) {
      const CandIdx i = s.nodeChoice[j.idx()];
      long& st = s.chosenStamp[i.idx()];
      if (st != epoch) {
        st = epoch;
        s.nodeChosen.push_back(i);
      }
    }
    CandIdx branchI = CandIdx::invalid();
    double branchScore = kNegInf;
    for (const CandIdx i : s.nodeChosen) {
      for (const ConflictIdx m : k.conflictsOf(i)) {
        if (s.csStamp[m.idx()] != epoch) {
          s.csStamp[m.idx()] = epoch;
          s.csCount[m.idx()] = 0;
        }
        if (++s.csCount[m.idx()] >= 2) {
          // Conflict violated: branch on its free chosen member of max term.
          for (const CandIdx c : k.membersOf(m)) {
            if (s.chosenStamp[c.idx()] == epoch && s.status[c.idx()] == kFree &&
                s.term[c.idx()] > branchScore) {
              branchScore = s.term[c.idx()];
              branchI = c;
            }
          }
        }
      }
    }
    if (!branchI.valid()) {
      for (const CandIdx i : s.nodeChosen) {
        for (const PinIdx q : k.pinsOf(i)) {
          if (s.nodeChoice[q.idx()] != i) {
            branchI = i;  // shared interval chosen by only some covered pins
            break;
          }
        }
        if (branchI.valid()) break;
      }
    }

    if (!branchI.valid()) {
      // Consistent and conflict-free: a feasible ILP point.
      double value = 0.0;
      for (const PinIdx j : s.activePins)
        value += k.profitOf(s.nodeChoice[j.idx()]);
      if (!haveIncumbent || value > bestObj) {
        bestObj = value;
        s.bestAssign = s.nodeChoice;
        haveIncumbent = true;
      }
      if (bound <= value + kEps) return;  // bound met: subtree closed
      // Gap comes only from the penalty split; branch on the pin with the
      // widest top-two margin to shrink it.
      PinIdx pinToSplit = PinIdx::invalid();
      double bestMargin = kNegInf;
      for (const PinIdx j : s.activePins) {
        if (s.assignedTo[j.idx()].valid()) continue;
        int allowed = 0;
        double top1 = kNegInf;
        double top2 = kNegInf;
        for (const CandIdx i : k.candidatesOf(j)) {
          if (s.status[i.idx()] == kZero) continue;
          ++allowed;
          const double t = s.term[i.idx()];
          if (t > top1) {
            top2 = top1;
            top1 = t;
          } else if (t > top2) {
            top2 = t;
          }
        }
        if (allowed >= 2 && top1 - top2 > bestMargin) {
          bestMargin = top1 - top2;
          pinToSplit = j;
        }
      }
      if (!pinToSplit.valid()) return;  // fixing is fully forced
      branchI = s.nodeChoice[pinToSplit.idx()];
      if (s.status[branchI.idx()] != kFree) return;
    }

    // Children: x = 1 first (finds strong incumbents early), then x = 0.
    const std::size_t m0 = mark();
    if (forceOne(branchI)) dfs();
    undoTo(m0);
    if (setZero(branchI)) dfs();
    undoTo(m0);
  }
};

}  // namespace

std::size_t ExactScratch::footprintBytes() const {
  auto bytes = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  return bytes(term) + bytes(lambda) + bytes(penalty) + bytes(bestPenalty) +
         bytes(rootChoice) + bytes(status) + bytes(assignedTo) +
         bytes(trail) + bytes(chosenStamp) + bytes(csStamp) + bytes(csCount) +
         bytes(nodeChoice) + bytes(nodeChosen) + bytes(activePins) +
         bytes(bestAssign) + bytes(selFlag) + lr.footprintBytes();
}

Assignment solveExact(const Problem& p, const ExactOptions& opts,
                      ExactStats* stats, obs::Collector* obs) {
  return solveExact(PanelKernel::compile(Problem(p)), opts, stats, obs,
                    nullptr);
}

Assignment solveExact(const PanelKernel& k, const ExactOptions& opts,
                      ExactStats* stats, obs::Collector* obs,
                      ExactScratch* scratch, support::Deadline deadline) {
  ExactScratch local;
  ExactScratch& sc = scratch ? *scratch : local;
  Search search(k, opts, sc);
  search.obs = obs;
  search.deadline = support::Deadline::soonerOf(opts.deadline, deadline);

  // Root incumbent from the LR heuristic (always conflict-free); it also
  // anchors the Polyak steps of the root dual tuning.
  {
    LrOptions lrOpts;
    Assignment seed = solveLr(k, lrOpts, nullptr, nullptr, &sc.lr);
    if (seed.violations == 0) {
      const AssignmentAudit a = audit(k, seed);
      if (a.overlapsBetweenNets == 0) {
        sc.bestAssign.assign(seed.intervalOfPin.size(), CandIdx::invalid());
        for (std::size_t j = 0; j < seed.intervalOfPin.size(); ++j)
          sc.bestAssign[j] = CandIdx{seed.intervalOfPin[j]};
        search.bestObj = seed.objective;
        search.haveIncumbent = true;
      }
    }
  }
  search.tuneRootDual(search.haveIncumbent ? search.bestObj : kNegInf);

  double rootBound = search.lambdaSum;
  for (const PinIdx j : sc.activePins) {
    double best = kNegInf;
    for (const CandIdx i : k.candidatesOf(j))
      best = std::max(best, sc.term[i.idx()]);
    rootBound += best;
  }
  if (stats) stats->rootUpperBound = rootBound;

  search.dfs();

  const std::size_t nPins = k.numPins();
  Assignment out;
  out.intervalOfPin.assign(nPins, geom::kInvalidIndex);
  if (search.haveIncumbent) {
    CPR_DCHECK(sc.bestAssign.size() == nPins);
    for (std::size_t j = 0; j < nPins; ++j)
      out.intervalOfPin[j] = sc.bestAssign[j].value();
  }
  for (std::size_t j = 0; j < nPins; ++j) {
    const Index i = out.intervalOfPin[j];
    if (i != geom::kInvalidIndex) out.objective += k.profitOf(CandIdx{i});
  }
  out.provedOptimal = search.haveIncumbent && !search.truncated;
  // Violations of the final selection (0 expected).
  sc.selFlag.assign(k.numIntervals(), 0);
  for (const Index i : out.intervalOfPin)
    if (i != geom::kInvalidIndex) sc.selFlag[CandIdx{i}.idx()] = 1;
  for (std::size_t m = 0; m < k.numConflicts(); ++m) {
    int count = 0;
    for (const CandIdx i : k.membersOf(ConflictIdx{m}))
      count += sc.selFlag[i.idx()];
    if (count > 1) ++out.violations;
  }
  if (stats) {
    stats->nodes = search.nodes;
    stats->bestObjective = out.objective;
    stats->optimal = out.provedOptimal;
  }
  obs::add(obs, obs::names::kExactNodes, search.nodes);
  if (!out.provedOptimal) obs::add(obs, obs::names::kExactNotProved);
  if (search.timedOut) obs::add(obs, obs::names::kExactTimeout);
  obs::row(obs, obs::names::kExactPanelSeries,
           {"nodes", "root_bound", "best_objective", "gap", "proved"},
           {static_cast<double>(search.nodes), rootBound, out.objective,
            rootBound - out.objective, out.provedOptimal ? 1.0 : 0.0});
  return out;
}

}  // namespace cpr::core
