#include "core/exact_solver.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/lr_solver.h"
#include "obs/names.h"

namespace cpr::core {

namespace {

using Clock = std::chrono::steady_clock;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

enum : std::uint8_t { kFree = 0, kOne = 1, kZero = 2 };

struct Search {
  const Problem& p;
  const ExactOptions& opts;
  obs::Collector* obs = nullptr;

  // Static structures.
  std::vector<std::vector<Index>> csOf;  ///< interval -> conflict set ids
  std::vector<double> term;              ///< f_i - P_i / d_i at tuned multipliers
  double lambdaSum = 0.0;
  std::vector<Index> activePins;

  // Dynamic state with trail-based undo.
  std::vector<std::uint8_t> status;
  std::vector<Index> assignedTo;  ///< per pin, interval forced to cover it
  struct TrailOp {
    bool isStatus;
    Index idx;
  };
  std::vector<TrailOp> trail;

  // Node-local scratch with epoch stamping (no per-node clearing).
  std::vector<long> chosenStamp;
  std::vector<long> csStamp;
  std::vector<int> csCount;
  long epoch = 0;

  // Incumbent.
  std::vector<Index> bestAssign;
  double bestObj = kNegInf;
  bool haveIncumbent = false;

  long nodes = 0;
  bool truncated = false;
  Clock::time_point start = Clock::now();

  explicit Search(const Problem& prob, const ExactOptions& o)
      : p(prob), opts(o) {
    const std::size_t n = p.intervals.size();
    csOf.resize(n);
    for (std::size_t m = 0; m < p.conflicts.size(); ++m) {
      for (Index i : p.conflicts[m].intervals)
        csOf[static_cast<std::size_t>(i)].push_back(static_cast<Index>(m));
    }
    for (std::size_t j = 0; j < p.pins.size(); ++j) {
      if (!p.pins[j].intervals.empty())
        activePins.push_back(static_cast<Index>(j));
    }
    status.assign(n, kFree);
    assignedTo.assign(p.pins.size(), geom::kInvalidIndex);
    chosenStamp.assign(n, -1);
    csStamp.assign(p.conflicts.size(), -1);
    csCount.assign(p.conflicts.size(), 0);
    term.assign(n, 0.0);
  }

  /// Subgradient tuning of the root multipliers: minimizes the split-penalty
  /// dual bound and freezes the best snapshot into `term` / `lambdaSum`.
  /// With a known feasible value (the LR seed) the step follows Polyak's
  /// rule t_k = θ (D(λ) - LB) / ||g||², which closes the root gap far faster
  /// than the diminishing schedule alone.
  void tuneRootDual(double incumbentValue) {
    const std::size_t n = p.intervals.size();
    std::vector<double> lambda(p.conflicts.size(), 0.0);
    std::vector<double> penalty(n, 0.0);  // P_i = sum of lambda over csOf[i]
    std::vector<double> bestPenalty(n, 0.0);
    double bestBound = std::numeric_limits<double>::infinity();
    double bestLambdaSum = 0.0;
    std::vector<Index> choice(p.pins.size(), geom::kInvalidIndex);
    const bool polyak = incumbentValue > kNegInf;
    double theta = 1.0;  // Polyak relaxation factor, halved on stalls
    int sinceImprove = 0;

    for (int k = 1; k <= std::max(1, opts.rootDualIterations); ++k) {
      // Per-pin argmax under current multipliers.
      double bound = 0.0;
      for (Index j : activePins) {
        double best = kNegInf;
        Index arg = geom::kInvalidIndex;
        for (Index i : p.pins[static_cast<std::size_t>(j)].intervals) {
          const std::size_t ii = static_cast<std::size_t>(i);
          const double t = p.profit[ii] - penalty[ii] / p.degree(i);
          if (t > best) {
            best = t;
            arg = i;
          }
        }
        bound += best;
        choice[static_cast<std::size_t>(j)] = arg;
      }
      double lsum = 0.0;
      for (double l : lambda) lsum += l;
      bound += lsum;
      obs::row(obs, "exact.root", {"iter", "bound"},
               {static_cast<double>(k), bound});
      if (bound < bestBound - 1e-12) {
        bestBound = bound;
        bestPenalty = penalty;
        bestLambdaSum = lsum;
        sinceImprove = 0;
      } else if (polyak && ++sinceImprove >= 20) {
        theta = std::max(0.05, theta * 0.5);
        sinceImprove = 0;
      }
      if (polyak && bestBound <= incumbentValue + 1e-9) break;  // gap closed

      // Subgradient step on every conflict set.
      ++epoch;
      for (Index j : activePins) {
        const Index i = choice[static_cast<std::size_t>(j)];
        chosenStamp[static_cast<std::size_t>(i)] = epoch;
      }
      double gradNormSq = 0.0;
      if (polyak) {
        for (std::size_t m = 0; m < p.conflicts.size(); ++m) {
          const ConflictSet& cs = p.conflicts[m];
          int count = 0;
          for (Index i : cs.intervals)
            count += chosenStamp[static_cast<std::size_t>(i)] == epoch ? 1 : 0;
          const double grad = static_cast<double>(count - 1);
          if (grad > 0.0 || (grad < 0.0 && lambda[m] > 0.0))
            gradNormSq += grad * grad;
        }
        if (gradNormSq == 0.0) break;  // stationary: dual optimum reached
      }
      const double schedule =
          1.0 / std::pow(static_cast<double>(k), opts.alpha);
      const double polyakStep =
          polyak ? theta * std::max(0.0, bound - incumbentValue) / gradNormSq
                 : 0.0;
      for (std::size_t m = 0; m < p.conflicts.size(); ++m) {
        const ConflictSet& cs = p.conflicts[m];
        int count = 0;
        for (Index i : cs.intervals)
          count += chosenStamp[static_cast<std::size_t>(i)] == epoch ? 1 : 0;
        const double grad = static_cast<double>(count - 1);
        if (grad == 0.0) continue;
        const double tk =
            polyak ? polyakStep
                   : schedule * static_cast<double>(cs.common.span());
        const double next = std::max(0.0, lambda[m] + tk * grad);
        const double delta = next - lambda[m];
        if (delta == 0.0) continue;
        lambda[m] = next;
        for (Index i : cs.intervals)
          penalty[static_cast<std::size_t>(i)] += delta;
      }
    }

    for (std::size_t i = 0; i < n; ++i)
      term[i] = p.profit[i] - bestPenalty[i] / p.degree(static_cast<Index>(i));
    lambdaSum = bestLambdaSum;
  }

  [[nodiscard]] bool outOfBudget() {
    if (nodes >= opts.maxNodes) return true;
    if ((nodes & 0x3ff) == 0 &&
        std::chrono::duration<double>(Clock::now() - start).count() >
            opts.timeLimitSeconds) {
      return true;
    }
    return false;
  }

  std::size_t mark() const { return trail.size(); }

  void undoTo(std::size_t m) {
    while (trail.size() > m) {
      const TrailOp op = trail.back();
      trail.pop_back();
      if (op.isStatus) {
        status[static_cast<std::size_t>(op.idx)] = kFree;
      } else {
        assignedTo[static_cast<std::size_t>(op.idx)] = geom::kInvalidIndex;
      }
    }
  }

  bool setZero(Index i) {
    std::uint8_t& s = status[static_cast<std::size_t>(i)];
    if (s == kOne) return false;
    if (s == kFree) {
      s = kZero;
      trail.push_back({true, i});
    }
    return true;
  }

  /// Forces x_i = 1 and propagates the equality (1b) and conflict (1c) rows.
  bool forceOne(Index i) {
    std::uint8_t& s = status[static_cast<std::size_t>(i)];
    if (s == kZero) return false;
    if (s == kFree) {
      s = kOne;
      trail.push_back({true, i});
    }
    for (Index q : p.intervals[static_cast<std::size_t>(i)].pins) {
      const std::size_t qq = static_cast<std::size_t>(q);
      if (assignedTo[qq] != geom::kInvalidIndex) {
        if (assignedTo[qq] != i) return false;
      } else {
        assignedTo[qq] = i;
        trail.push_back({false, q});
      }
      for (Index j : p.pins[qq].intervals) {
        if (j != i && !setZero(j)) return false;
      }
    }
    for (Index m : csOf[static_cast<std::size_t>(i)]) {
      for (Index j : p.conflicts[static_cast<std::size_t>(m)].intervals) {
        if (j != i && !setZero(j)) return false;
      }
    }
    return true;
  }

  void dfs() {
    if (outOfBudget()) {
      truncated = true;
      return;
    }
    ++nodes;

    // Bound and per-pin choice under the current fixing.
    std::vector<Index> choice(p.pins.size(), geom::kInvalidIndex);
    double bound = lambdaSum;
    for (Index j : activePins) {
      const std::size_t jj = static_cast<std::size_t>(j);
      if (assignedTo[jj] != geom::kInvalidIndex) {
        choice[jj] = assignedTo[jj];
        bound += term[static_cast<std::size_t>(assignedTo[jj])];
        continue;
      }
      double best = kNegInf;
      Index arg = geom::kInvalidIndex;
      for (Index i : p.pins[jj].intervals) {
        if (status[static_cast<std::size_t>(i)] == kZero) continue;
        const double t = term[static_cast<std::size_t>(i)];
        if (t > best) {
          best = t;
          arg = i;
        }
      }
      if (arg == geom::kInvalidIndex) return;  // pin starved: infeasible node
      choice[jj] = arg;
      bound += best;
    }
    if (haveIncumbent && bound <= bestObj + kEps) return;

    // Identify a violated conflict set or an inconsistently chosen shared
    // interval; both yield a free interval to branch on.
    ++epoch;
    std::vector<Index> chosen;
    for (Index j : activePins) {
      const Index i = choice[static_cast<std::size_t>(j)];
      long& st = chosenStamp[static_cast<std::size_t>(i)];
      if (st != epoch) {
        st = epoch;
        chosen.push_back(i);
      }
    }
    Index branchI = geom::kInvalidIndex;
    double branchScore = kNegInf;
    for (Index i : chosen) {
      for (Index m : csOf[static_cast<std::size_t>(i)]) {
        const std::size_t mm = static_cast<std::size_t>(m);
        if (csStamp[mm] != epoch) {
          csStamp[mm] = epoch;
          csCount[mm] = 0;
        }
        if (++csCount[mm] >= 2) {
          // Conflict violated: branch on its free chosen member of max term.
          for (Index c : p.conflicts[mm].intervals) {
            const std::size_t cc = static_cast<std::size_t>(c);
            if (chosenStamp[cc] == epoch && status[cc] == kFree &&
                term[cc] > branchScore) {
              branchScore = term[cc];
              branchI = c;
            }
          }
        }
      }
    }
    if (branchI == geom::kInvalidIndex) {
      for (Index i : chosen) {
        for (Index q : p.intervals[static_cast<std::size_t>(i)].pins) {
          if (choice[static_cast<std::size_t>(q)] != i) {
            branchI = i;  // shared interval chosen by only some covered pins
            break;
          }
        }
        if (branchI != geom::kInvalidIndex) break;
      }
    }

    if (branchI == geom::kInvalidIndex) {
      // Consistent and conflict-free: a feasible ILP point.
      double value = 0.0;
      for (Index j : activePins)
        value += p.profit[static_cast<std::size_t>(
            choice[static_cast<std::size_t>(j)])];
      if (!haveIncumbent || value > bestObj) {
        bestObj = value;
        bestAssign = choice;
        haveIncumbent = true;
      }
      if (bound <= value + kEps) return;  // bound met: subtree closed
      // Gap comes only from the penalty split; branch on the pin with the
      // widest top-two margin to shrink it.
      Index pinToSplit = geom::kInvalidIndex;
      double bestMargin = kNegInf;
      for (Index j : activePins) {
        const std::size_t jj = static_cast<std::size_t>(j);
        if (assignedTo[jj] != geom::kInvalidIndex) continue;
        int allowed = 0;
        double top1 = kNegInf;
        double top2 = kNegInf;
        for (Index i : p.pins[jj].intervals) {
          if (status[static_cast<std::size_t>(i)] == kZero) continue;
          ++allowed;
          const double t = term[static_cast<std::size_t>(i)];
          if (t > top1) {
            top2 = top1;
            top1 = t;
          } else if (t > top2) {
            top2 = t;
          }
        }
        if (allowed >= 2 && top1 - top2 > bestMargin) {
          bestMargin = top1 - top2;
          pinToSplit = j;
        }
      }
      if (pinToSplit == geom::kInvalidIndex) return;  // fixing is fully forced
      branchI = choice[static_cast<std::size_t>(pinToSplit)];
      if (status[static_cast<std::size_t>(branchI)] != kFree) return;
    }

    // Children: x = 1 first (finds strong incumbents early), then x = 0.
    const std::size_t m0 = mark();
    if (forceOne(branchI)) dfs();
    undoTo(m0);
    if (setZero(branchI)) dfs();
    undoTo(m0);
  }
};

}  // namespace

Assignment solveExact(const Problem& p, const ExactOptions& opts,
                      ExactStats* stats, obs::Collector* obs) {
  Search search(p, opts);
  search.obs = obs;

  // Root incumbent from the LR heuristic (always conflict-free); it also
  // anchors the Polyak steps of the root dual tuning.
  {
    LrOptions lrOpts;
    Assignment seed = solveLr(p, lrOpts);
    if (seed.violations == 0) {
      const AssignmentAudit a = audit(p, seed);
      if (a.overlapsBetweenNets == 0) {
        search.bestAssign = seed.intervalOfPin;
        search.bestObj = seed.objective;
        search.haveIncumbent = true;
      }
    }
  }
  search.tuneRootDual(search.haveIncumbent ? search.bestObj : kNegInf);

  double rootBound = search.lambdaSum;
  for (Index j : search.activePins) {
    double best = kNegInf;
    for (Index i : p.pins[static_cast<std::size_t>(j)].intervals)
      best = std::max(best, search.term[static_cast<std::size_t>(i)]);
    rootBound += best;
  }
  if (stats) stats->rootUpperBound = rootBound;

  search.dfs();

  Assignment out;
  out.intervalOfPin.assign(p.pins.size(), geom::kInvalidIndex);
  if (search.haveIncumbent) out.intervalOfPin = search.bestAssign;
  for (std::size_t j = 0; j < p.pins.size(); ++j) {
    const Index i = out.intervalOfPin[j];
    if (i != geom::kInvalidIndex)
      out.objective += p.profit[static_cast<std::size_t>(i)];
  }
  out.provedOptimal = search.haveIncumbent && !search.truncated;
  // Violations of the final selection (0 expected).
  std::vector<char> sel(p.intervals.size(), 0);
  for (Index i : out.intervalOfPin)
    if (i != geom::kInvalidIndex) sel[static_cast<std::size_t>(i)] = 1;
  for (const ConflictSet& cs : p.conflicts) {
    int count = 0;
    for (Index i : cs.intervals) count += sel[static_cast<std::size_t>(i)];
    if (count > 1) ++out.violations;
  }
  if (stats) {
    stats->nodes = search.nodes;
    stats->bestObjective = out.objective;
    stats->optimal = out.provedOptimal;
  }
  obs::add(obs, obs::names::kExactNodes, search.nodes);
  if (!out.provedOptimal) obs::add(obs, obs::names::kExactNotProved);
  obs::row(obs, "exact.panel",
           {"nodes", "root_bound", "best_objective", "gap", "proved"},
           {static_cast<double>(search.nodes), rootBound, out.objective,
            rootBound - out.objective, out.provedOptimal ? 1.0 : 0.0});
  return out;
}

}  // namespace cpr::core
