#include "core/solver.h"

#include "core/ilp_builder.h"
#include "obs/names.h"

namespace cpr::core {

Assignment Solver::solve(const Problem& p, obs::Collector* obs) const {
  return solve(PanelKernel::compile(Problem(p)), nullptr, obs);
}

Assignment LrSolver::solve(const PanelKernel& k, PanelScratch* scratch,
                           obs::Collector* obs) const {
  return solveLr(k, opts_, nullptr, obs, scratch ? &scratch->lr : nullptr);
}

Assignment ExactSolver::solve(const PanelKernel& k, PanelScratch* scratch,
                              obs::Collector* obs) const {
  return solveExact(k, opts_, nullptr, obs,
                    scratch ? &scratch->exact : nullptr);
}

Assignment IlpSolver::solve(const PanelKernel& k, PanelScratch* /*scratch*/,
                            obs::Collector* obs) const {
  const IlpBuild build = buildIlpModel(k);
  const ilp::IlpResult res = ilp::solveBinaryIlp(build.model, opts_);
  obs::add(obs, obs::names::kIlpNodes, res.nodesExplored);
  obs::add(obs, obs::names::kIlpPivots, res.lpPivots);
  if (res.status != ilp::IlpStatus::Optimal)
    obs::add(obs, obs::names::kIlpNotProved);
  if (res.x.empty()) {
    // No incumbent within budget: report an empty (all-unassigned)
    // assignment rather than inventing one.
    Assignment out;
    out.intervalOfPin.assign(k.numPins(), geom::kInvalidIndex);
    return out;
  }
  Assignment out = decodeIlpSolution(k, build, res.x);
  out.provedOptimal = res.status == ilp::IlpStatus::Optimal;
  return out;
}

std::unique_ptr<Solver> makeSolver(Method method, const LrOptions& lr,
                                   const ExactOptions& exact,
                                   const ilp::IlpOptions& ilp) {
  switch (method) {
    case Method::Lr: return std::make_unique<LrSolver>(lr);
    case Method::Exact: return std::make_unique<ExactSolver>(exact);
    case Method::Ilp: return std::make_unique<IlpSolver>(ilp);
  }
  return std::make_unique<LrSolver>(lr);  // unreachable
}

}  // namespace cpr::core
