#include "core/solver.h"

#include <algorithm>

#include "core/ilp_builder.h"
#include "obs/names.h"
#include "support/contracts.h"

namespace cpr::core {

Assignment Solver::solve(const Problem& p, obs::Collector* obs) const {
  return solve(PanelKernel::compile(Problem(p)), nullptr, obs);
}

support::Outcome<Assignment> Solver::trySolve(const PanelKernel& k,
                                              PanelScratch* scratch,
                                              obs::Collector* obs,
                                              support::Deadline deadline) const {
  Assignment a;
  try {
    a = solve(k, scratch, obs, deadline);
  } catch (const std::exception& e) {
    return support::Status::failed(std::string(name()) + ": " + e.what());
  } catch (...) {
    return support::Status::failed(std::string(name()) +
                                   ": non-standard exception");
  }
  const bool empty = std::all_of(
      a.intervalOfPin.begin(), a.intervalOfPin.end(),
      [](Index i) { return i == geom::kInvalidIndex; });
  if (a.violations > 0)
    return {support::Status::degraded("conflict rows still violated"),
            std::move(a)};
  if (empty && k.numPins() > 0) {
    if (deadline.expired())
      return {support::Status::timedOut("no incumbent within budget"),
              std::move(a)};
    return {support::Status::infeasible("nothing assigned"), std::move(a)};
  }
  if (deadline.expired() && !a.provedOptimal)
    return {support::Status::timedOut("budget fired; best incumbent returned"),
            std::move(a)};
  return {support::Status::ok(), std::move(a)};
}

Assignment LrSolver::solve(const PanelKernel& k, PanelScratch* scratch,
                           obs::Collector* obs,
                           support::Deadline deadline) const {
  return solveLr(k, opts_, nullptr, obs, scratch ? &scratch->lr : nullptr,
                 deadline);
}

Assignment ExactSolver::solve(const PanelKernel& k, PanelScratch* scratch,
                              obs::Collector* obs,
                              support::Deadline deadline) const {
  return solveExact(k, opts_, nullptr, obs,
                    scratch ? &scratch->exact : nullptr, deadline);
}

Assignment IlpSolver::solve(const PanelKernel& k, PanelScratch* /*scratch*/,
                            obs::Collector* obs,
                            support::Deadline deadline) const {
  const IlpBuild build = buildIlpModel(k);
  // The one place the per-call budget meets the options budget: composed
  // here, then carried by IlpOptions::deadline through every LP solve.
  ilp::IlpOptions opts = opts_;
  opts.deadline = support::Deadline::soonerOf(opts_.deadline, deadline);
  const ilp::IlpResult res = ilp::solveBinaryIlp(build.model, opts);
  obs::add(obs, obs::names::kIlpNodes, res.nodesExplored);
  obs::add(obs, obs::names::kIlpPivots, res.lpPivots);
  obs::add(obs, obs::names::kIlpWarmSolves, res.lpWarmSolves);
  obs::add(obs, obs::names::kIlpColdSolves, res.lpColdSolves);
  obs::note(obs, obs::names::kIlpBackendNote, res.backend);
  if (res.status != ilp::IlpStatus::Optimal)
    obs::add(obs, obs::names::kIlpNotProved);
  if (res.status == ilp::IlpStatus::TimeLimit)
    obs::add(obs, obs::names::kIlpTimeout);
  if (res.x.empty()) {
    // No incumbent within budget: report an empty (all-unassigned)
    // assignment rather than inventing one.
    Assignment out;
    out.intervalOfPin.assign(k.numPins(), geom::kInvalidIndex);
    return out;
  }
  Assignment out = decodeIlpSolution(k, build, res.x);
  out.provedOptimal = res.status == ilp::IlpStatus::Optimal;
  return out;
}

std::unique_ptr<Solver> makeSolver(const SolverOptions& opts) {
  switch (opts.method) {
    case Method::Lr: return std::make_unique<LrSolver>(opts.lr);
    case Method::Exact: return std::make_unique<ExactSolver>(opts.exact);
    case Method::Ilp: return std::make_unique<IlpSolver>(opts.ilp);
  }
  CPR_UNREACHABLE();
}

}  // namespace cpr::core
