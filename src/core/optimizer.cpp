#include "core/optimizer.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/conflict.h"
#include "db/panel.h"

namespace cpr::core {

namespace {

/// Per-panel outcome, merged into the plan after the parallel phase.
struct PanelOutcome {
  Problem problem;
  Assignment assignment;
  bool lrFallback = false;
};

PanelOutcome solvePanel(const db::Design& design, const db::Panel& panel,
                        const OptimizerOptions& opts) {
  PanelOutcome out;
  out.problem = buildProblem(design, panel, opts.gen);
  if (opts.profitModel != ProfitModel::SqrtSpan)
    assignProfits(out.problem, opts.profitModel);
  detectConflicts(out.problem);

  out.assignment = opts.method == Method::Lr
                       ? solveLr(out.problem, opts.lr)
                       : solveExact(out.problem, opts.exact);
  if (opts.method == Method::Exact) {
    // Budget exhaustion without an incumbent (or a genuinely infeasible
    // panel): fall back to the LR heuristic rather than dropping pins.
    const bool empty = std::all_of(
        out.assignment.intervalOfPin.begin(),
        out.assignment.intervalOfPin.end(),
        [](Index i) { return i == geom::kInvalidIndex; });
    if (empty && !out.problem.pins.empty()) {
      out.assignment = solveLr(out.problem, opts.lr);
      out.lrFallback = true;
    }
  }
  return out;
}

}  // namespace

PinAccessPlan optimizePinAccess(const db::Design& design,
                                const OptimizerOptions& opts) {
  PinAccessPlan plan;
  plan.routes.assign(design.pins().size(), PinRoute{});

  const std::vector<db::Panel> panels = db::extractPanels(design);
  std::vector<const db::Panel*> work;
  for (const db::Panel& p : panels) {
    if (!p.pins.empty()) work.push_back(&p);
  }
  std::vector<PanelOutcome> outcomes(work.size());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = std::clamp(
      opts.threads > 0 ? opts.threads : (hw > 0 ? hw : 1), 1,
      static_cast<int>(std::max<std::size_t>(1, work.size())));
  if (threads <= 1) {
    for (std::size_t k = 0; k < work.size(); ++k)
      outcomes[k] = solvePanel(design, *work[k], opts);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t k = next.fetch_add(1); k < work.size();
           k = next.fetch_add(1)) {
        outcomes[k] = solvePanel(design, *work[k], opts);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (const PanelOutcome& out : outcomes) {
    const Problem& problem = out.problem;
    const Assignment& a = out.assignment;
    plan.totalIntervals += static_cast<long>(problem.intervals.size());
    plan.totalConflicts += static_cast<long>(problem.conflicts.size());
    plan.objective += a.objective;
    plan.solverIterations += a.iterations;
    if (opts.method == Method::Exact && (out.lrFallback || !a.provedOptimal))
      plan.allProvedOptimal = false;

    for (std::size_t j = 0; j < problem.pins.size(); ++j) {
      const Index designPin = problem.pins[j].designPin;
      const Index i = a.intervalOfPin[j];
      if (i == geom::kInvalidIndex) {
        ++plan.unassignedPins;
        continue;
      }
      const AccessInterval& iv =
          problem.intervals[static_cast<std::size_t>(i)];
      plan.routes[static_cast<std::size_t>(designPin)] =
          PinRoute{iv.track, iv.span};
    }
  }
  return plan;
}

}  // namespace cpr::core
