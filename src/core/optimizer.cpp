#include "core/optimizer.h"

#include <algorithm>
#include <numeric>

#include "core/conflict.h"
#include "db/panel.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace cpr::core {

namespace {

/// Per-panel outcome, merged into the plan after the parallel phase. Holds
/// the compiled kernel (which owns the moved-in `Problem`) so the merge loop
/// can read tracks/spans without keeping a second copy of the instance.
struct PanelOutcome {
  PanelKernel kernel;
  Assignment assignment;
  obs::Collector stats;
};

/// A panel result is shippable when it is legal: no violated conflict rows,
/// no geometric diff-net overlap (the independent audit, not the solver's
/// own claim), and not everything-unassigned on a panel that has pins.
bool usable(const PanelKernel& k, const Assignment& a) {
  if (a.intervalOfPin.size() != k.numPins()) return false;
  if (a.violations > 0) return false;
  if (k.numPins() > 0) {
    const bool empty = std::all_of(
        a.intervalOfPin.begin(), a.intervalOfPin.end(),
        [](Index i) { return i == geom::kInvalidIndex; });
    if (empty) return false;
  }
  return audit(k, a).overlapsBetweenNets == 0;
}

/// Degradation rung 3: one pass over intervals in non-increasing objective
/// weight, selecting an interval iff its covered pins are all unassigned and
/// every conflict row it belongs to is still empty (constraint (1c) holds by
/// construction). Leftover pins then try their minimal interval under the
/// same guard. Deterministic and near-linear; legal by construction.
Assignment greedyProfitOrder(const PanelKernel& k) {
  Assignment a;
  a.intervalOfPin.assign(k.numPins(), geom::kInvalidIndex);
  std::vector<CandIdx> order(k.numIntervals());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = CandIdx{i};
  std::sort(order.begin(), order.end(), [&](CandIdx x, CandIdx y) {
    const double wx = k.weightOf(x), wy = k.weightOf(y);
    if (wx != wy) return wx > wy;
    return x < y;
  });
  std::vector<char> rowUsed(k.numConflicts(), 0);
  auto trySelect = [&](CandIdx i) {
    for (PinIdx j : k.pinsOf(i))
      if (a.intervalOfPin[j.idx()] != geom::kInvalidIndex) return;
    for (ConflictIdx m : k.conflictsOf(i))
      if (rowUsed[m.idx()]) return;
    for (PinIdx j : k.pinsOf(i)) a.intervalOfPin[j.idx()] = i.value();
    for (ConflictIdx m : k.conflictsOf(i)) rowUsed[m.idx()] = 1;
  };
  for (CandIdx i : order) trySelect(i);
  for (std::size_t j = 0; j < k.numPins(); ++j) {
    if (a.intervalOfPin[j] != geom::kInvalidIndex) continue;
    const CandIdx mi = k.minimalIntervalOf(PinIdx{j});
    if (mi.valid()) trySelect(mi);
  }
  a.objective = audit(k, a).objective;
  a.violations = 0;
  return a;
}

/// Degradation rung 4 (terminal): every pin takes its minimal access
/// interval, the assignment Theorem 1 guarantees to be selectable and
/// mutually conflict-free given the spacing guard. The conflict-row guard is
/// kept anyway so the rung stays legal even on instances that break the
/// theorem's premise (a pin whose row is taken is left unassigned instead).
Assignment minimalIntervalAssignment(const PanelKernel& k) {
  Assignment a;
  a.intervalOfPin.assign(k.numPins(), geom::kInvalidIndex);
  std::vector<char> rowUsed(k.numConflicts(), 0);
  for (std::size_t j = 0; j < k.numPins(); ++j) {
    if (a.intervalOfPin[j] != geom::kInvalidIndex) continue;
    const CandIdx mi = k.minimalIntervalOf(PinIdx{j});
    if (!mi.valid()) continue;
    bool clash = false;
    for (ConflictIdx m : k.conflictsOf(mi))
      if (rowUsed[m.idx()]) { clash = true; break; }
    if (clash) continue;
    for (PinIdx p : k.pinsOf(mi))
      if (a.intervalOfPin[p.idx()] == geom::kInvalidIndex)
        a.intervalOfPin[p.idx()] = mi.value();
    for (ConflictIdx m : k.conflictsOf(mi)) rowUsed[m.idx()] = 1;
  }
  a.objective = audit(k, a).objective;
  a.violations = 0;
  return a;
}

/// Which rung of the degradation ladder produced the shipped assignment.
enum class Rung { Primary, Lr, Greedy, Minimal };

PanelOutcome solvePanel(const db::Design& design, const db::Panel& panel,
                        const OptimizerOptions& opts, const Solver& solver,
                        int panelIndex, PanelScratch& scratch) {
  PanelOutcome out;
  out.stats = obs::Collector(panelIndex);
  obs::Collector* obs = &out.stats;
  // Panel boundary: nothing may escape into the worker thread. `trySolve`
  // isolates solver faults below; this outer net catches instance
  // generation / compilation faults and ships an all-unassigned panel.
  try {
    Problem problem;
    {
      obs::ScopedTimer t(obs, obs::names::kPaoGenSpan);
      problem = buildProblem(design, panel, opts.gen, obs);
      if (opts.profitModel != ProfitModel::SqrtSpan)
        assignProfits(problem, opts.profitModel);
    }
    {
      obs::ScopedTimer t(obs, obs::names::kPaoConflictSpan);
      detectConflicts(problem, obs);
    }
    obs->add(obs::names::kPaoIntervals,
             static_cast<long>(problem.intervals.size()));
    obs->add(obs::names::kPaoConflicts,
             static_cast<long>(problem.conflicts.size()));
    {
      obs::ScopedTimer t(obs, obs::names::kPaoCompileSpan);
      out.kernel = PanelKernel::compile(std::move(problem));
    }
    obs->add(obs::names::kPaoKernelBytes,
             static_cast<long>(out.kernel.footprintBytes()));

    // Per-panel budget: a slice of the run deadline, never outliving it.
    const support::Deadline panelDeadline =
        opts.panelBudgetSeconds > 0.0 ? opts.deadline.sub(opts.panelBudgetSeconds)
                                      : opts.deadline;
    // A run deadline that fired before this panel started skips the solver
    // (and the LR rung) entirely — only the fast rungs run, so the tail of a
    // timed-out run finishes in microseconds per panel.
    const bool runExpired = opts.deadline.expired();

    support::Outcome<Assignment> primary{
        support::Status::timedOut("run deadline expired before panel start"),
        Assignment{}};
    if (!runExpired) {
      obs::ScopedTimer t(obs, obs::names::kPaoSolveSpan);
      primary = solver.trySolve(out.kernel, &scratch, obs, panelDeadline);
    }

    Rung rung = Rung::Primary;
    bool chosen = false;
    if (usable(out.kernel, primary.value())) {
      out.assignment = primary.take();
      chosen = true;
    } else {
      // Walk the degradation ladder. Every rung below the primary solver is
      // cheaper and more reliable than the one above; the terminal rung
      // cannot fail.
      obs::ScopedTimer t(obs, obs::names::kPaoFallbackSpan);
      obs->add(obs::names::kPaoFallbacks);
      if (!runExpired && solver.name() != "lr") {
        support::Outcome<Assignment> lr = LrSolver(opts.solve.lr)
            .trySolve(out.kernel, &scratch, obs, panelDeadline);
        if (usable(out.kernel, lr.value())) {
          out.assignment = lr.take();
          rung = Rung::Lr;
          chosen = true;
        }
      }
      if (!chosen) {
        Assignment g = greedyProfitOrder(out.kernel);
        if (usable(out.kernel, g)) {
          out.assignment = std::move(g);
          rung = Rung::Greedy;
          chosen = true;
        }
      }
      if (!chosen) {
        out.assignment = minimalIntervalAssignment(out.kernel);
        rung = Rung::Minimal;
      }
    }

    switch (rung) {
      case Rung::Primary: obs->add(obs::names::kPaoRungPrimary); break;
      case Rung::Lr: obs->add(obs::names::kPaoRungLr); break;
      case Rung::Greedy: obs->add(obs::names::kPaoRungGreedy); break;
      case Rung::Minimal: obs->add(obs::names::kPaoRungMinimal); break;
    }
    // Exactly one of failed/degraded per faulted panel: `failed` when the
    // primary solver threw, `degraded` when it timed out, proved the panel
    // infeasible, or returned an unusable/quality-compromised result.
    if (rung != Rung::Primary || !primary.isOk()) {
      if (primary.code() == support::StatusCode::Failed)
        obs->add(obs::names::kPaoPanelFailed);
      else
        obs->add(obs::names::kPaoPanelDegraded);
      obs->note(obs::names::kPaoPanelStatusNote, primary.status().toString());
    }
  } catch (const std::exception& e) {
    out.stats.add(obs::names::kPaoPanelFailed);
    out.stats.note(obs::names::kPaoPanelErrorNote, e.what());
    out.assignment = Assignment{};
    out.assignment.intervalOfPin.assign(out.kernel.numPins(),
                                        geom::kInvalidIndex);
  } catch (...) {
    out.stats.add(obs::names::kPaoPanelFailed);
    out.stats.note(obs::names::kPaoPanelErrorNote, "non-standard exception");
    out.assignment = Assignment{};
    out.assignment.intervalOfPin.assign(out.kernel.numPins(),
                                        geom::kInvalidIndex);
  }
  return out;
}

}  // namespace

PinAccessPlan optimizePinAccess(const db::Design& design,
                                const OptimizerOptions& opts) {
  PinAccessPlan plan;
  plan.routes.assign(design.pins().size(), PinRoute{});

  std::shared_ptr<const Solver> solver = opts.solver;
  if (!solver) solver = makeSolver(opts.solve);

  const std::vector<db::Panel> panels = db::extractPanels(design);
  std::vector<const db::Panel*> work;
  for (const db::Panel& p : panels) {
    if (!p.pins.empty()) work.push_back(&p);
  }
  std::vector<PanelOutcome> outcomes(work.size());

  const int threads =
      std::clamp(support::ThreadPool::clampThreads(opts.threads), 1,
                 static_cast<int>(std::max<std::size_t>(1, work.size())));
  support::ThreadPool pool(threads);
  // One arena per worker, reused across every panel that worker processes.
  std::vector<PanelScratch> arenas(std::size_t(pool.size()));
  {
    // Scoped so the span is closed before `plan` can be returned (the timer
    // must not outlive its collector's final resting place).
    obs::ScopedTimer total(&plan.stats, obs::names::kPaoTotalSpan);
    // solvePanel catches everything at the panel boundary, so the bodies
    // never throw back through the pool.
    pool.parallelFor(work.size(), [&](int worker, std::size_t k) {
      outcomes[k] = solvePanel(design, *work[k], opts, *solver,
                               static_cast<int>(k),
                               arenas[std::size_t(worker)]);
    });
  }
  // Arena high-water mark. A gauge, not a counter: the value depends on how
  // panels landed on workers, so it may vary with the thread count while
  // counters and series must not.
  std::size_t peak = 0;
  for (const PanelScratch& a : arenas) peak = std::max(peak, a.footprintBytes());
  plan.stats.gauge(obs::names::kPaoScratchPeakBytes, static_cast<double>(peak));

  plan.stats.note(obs::names::kPaoSolverNote, solver->name());
  plan.stats.add(obs::names::kPaoPanels, static_cast<long>(work.size()));
  // Merge in panel order: counters and series come out identical for any
  // thread count (only span wall-times differ run to run).
  for (const PanelOutcome& out : outcomes) {
    const PanelKernel& kernel = out.kernel;
    const Assignment& a = out.assignment;
    plan.stats.merge(out.stats);
    plan.objective += a.objective;

    for (std::size_t j = 0; j < kernel.numPins(); ++j) {
      const Index designPin = kernel.designPinOf(PinIdx{j});
      const Index i = a.intervalOfPin[j];
      if (i == geom::kInvalidIndex) {
        plan.stats.add(obs::names::kPaoUnassigned);
        continue;
      }
      plan.routes[std::size_t(designPin)] =
          PinRoute{kernel.trackOf(CandIdx{i}), kernel.spanOf(CandIdx{i})};
    }
  }
  return plan;
}

}  // namespace cpr::core
