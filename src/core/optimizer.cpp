#include "core/optimizer.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/conflict.h"
#include "db/panel.h"

namespace cpr::core {

namespace {

/// Per-panel outcome, merged into the plan after the parallel phase.
struct PanelOutcome {
  Problem problem;
  Assignment assignment;
  obs::Collector stats;
};

PanelOutcome solvePanel(const db::Design& design, const db::Panel& panel,
                        const OptimizerOptions& opts, const Solver& solver,
                        int panelIndex) {
  PanelOutcome out;
  out.stats = obs::Collector(panelIndex);
  obs::Collector* obs = &out.stats;
  {
    obs::ScopedTimer t(obs, "pao.gen");
    out.problem = buildProblem(design, panel, opts.gen, obs);
    if (opts.profitModel != ProfitModel::SqrtSpan)
      assignProfits(out.problem, opts.profitModel);
  }
  {
    obs::ScopedTimer t(obs, "pao.conflict");
    detectConflicts(out.problem, obs);
  }
  obs->add(obs::names::kPaoIntervals,
           static_cast<long>(out.problem.intervals.size()));
  obs->add(obs::names::kPaoConflicts,
           static_cast<long>(out.problem.conflicts.size()));

  {
    obs::ScopedTimer t(obs, "pao.solve");
    out.assignment = solver.solve(out.problem, obs);
  }
  // Budget exhaustion without an incumbent (or a genuinely infeasible
  // panel): fall back to the LR heuristic rather than dropping pins.
  const bool empty = std::all_of(
      out.assignment.intervalOfPin.begin(), out.assignment.intervalOfPin.end(),
      [](Index i) { return i == geom::kInvalidIndex; });
  if (empty && !out.problem.pins.empty() && solver.name() != "lr") {
    obs::ScopedTimer t(obs, "pao.fallback");
    out.assignment = LrSolver(opts.lr).solve(out.problem, obs);
    obs->add(obs::names::kPaoFallbacks);
  }
  return out;
}

}  // namespace

PinAccessPlan optimizePinAccess(const db::Design& design,
                                const OptimizerOptions& opts) {
  PinAccessPlan plan;
  plan.routes.assign(design.pins().size(), PinRoute{});

  std::shared_ptr<const Solver> solver = opts.solver;
  if (!solver)
    solver = makeSolver(opts.method, opts.lr, opts.exact, opts.ilp);

  const std::vector<db::Panel> panels = db::extractPanels(design);
  std::vector<const db::Panel*> work;
  for (const db::Panel& p : panels) {
    if (!p.pins.empty()) work.push_back(&p);
  }
  std::vector<PanelOutcome> outcomes(work.size());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = std::clamp(
      opts.threads > 0 ? opts.threads : (hw > 0 ? hw : 1), 1,
      static_cast<int>(std::max<std::size_t>(1, work.size())));
  {
    // Scoped so the span is closed before `plan` can be returned (the timer
    // must not outlive its collector's final resting place).
    obs::ScopedTimer total(&plan.stats, "pao.total");
    if (threads <= 1) {
      for (std::size_t k = 0; k < work.size(); ++k)
        outcomes[k] = solvePanel(design, *work[k], opts, *solver,
                                 static_cast<int>(k));
    } else {
      std::atomic<std::size_t> next{0};
      auto worker = [&] {
        for (std::size_t k = next.fetch_add(1); k < work.size();
             k = next.fetch_add(1)) {
          outcomes[k] = solvePanel(design, *work[k], opts, *solver,
                                   static_cast<int>(k));
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
    }
  }

  plan.stats.note("pao.solver", solver->name());
  plan.stats.add(obs::names::kPaoPanels, static_cast<long>(work.size()));
  // Merge in panel order: counters and series come out identical for any
  // thread count (only span wall-times differ run to run).
  for (const PanelOutcome& out : outcomes) {
    const Problem& problem = out.problem;
    const Assignment& a = out.assignment;
    plan.stats.merge(out.stats);
    plan.objective += a.objective;

    for (std::size_t j = 0; j < problem.pins.size(); ++j) {
      const Index designPin = problem.pins[j].designPin;
      const Index i = a.intervalOfPin[j];
      if (i == geom::kInvalidIndex) {
        plan.stats.add(obs::names::kPaoUnassigned);
        continue;
      }
      const AccessInterval& iv =
          problem.intervals[static_cast<std::size_t>(i)];
      plan.routes[static_cast<std::size_t>(designPin)] =
          PinRoute{iv.track, iv.span};
    }
  }
  return plan;
}

}  // namespace cpr::core
