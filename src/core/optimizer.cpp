#include "core/optimizer.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/conflict.h"
#include "db/panel.h"

namespace cpr::core {

namespace {

/// Per-panel outcome, merged into the plan after the parallel phase. Holds
/// the compiled kernel (which owns the moved-in `Problem`) so the merge loop
/// can read tracks/spans without keeping a second copy of the instance.
struct PanelOutcome {
  PanelKernel kernel;
  Assignment assignment;
  obs::Collector stats;
};

PanelOutcome solvePanel(const db::Design& design, const db::Panel& panel,
                        const OptimizerOptions& opts, const Solver& solver,
                        int panelIndex, PanelScratch& scratch) {
  PanelOutcome out;
  out.stats = obs::Collector(panelIndex);
  obs::Collector* obs = &out.stats;
  Problem problem;
  {
    obs::ScopedTimer t(obs, "pao.gen");
    problem = buildProblem(design, panel, opts.gen, obs);
    if (opts.profitModel != ProfitModel::SqrtSpan)
      assignProfits(problem, opts.profitModel);
  }
  {
    obs::ScopedTimer t(obs, "pao.conflict");
    detectConflicts(problem, obs);
  }
  obs->add(obs::names::kPaoIntervals,
           static_cast<long>(problem.intervals.size()));
  obs->add(obs::names::kPaoConflicts,
           static_cast<long>(problem.conflicts.size()));
  {
    obs::ScopedTimer t(obs, "pao.compile");
    out.kernel = PanelKernel::compile(std::move(problem));
  }
  obs->add(obs::names::kPaoKernelBytes,
           static_cast<long>(out.kernel.footprintBytes()));

  {
    obs::ScopedTimer t(obs, "pao.solve");
    out.assignment = solver.solve(out.kernel, &scratch, obs);
  }
  // Budget exhaustion — no incumbent at all, or an incumbent that still
  // violates conflict rows — must not ship an illegal panel: fall back to
  // the LR heuristic (always conflict-free) rather than dropping pins or
  // emitting overlaps.
  const bool empty = std::all_of(
      out.assignment.intervalOfPin.begin(), out.assignment.intervalOfPin.end(),
      [](Index i) { return i == geom::kInvalidIndex; });
  if ((empty || out.assignment.violations > 0) && out.kernel.numPins() > 0 &&
      solver.name() != "lr") {
    obs::ScopedTimer t(obs, "pao.fallback");
    out.assignment = LrSolver(opts.lr).solve(out.kernel, &scratch, obs);
    obs->add(obs::names::kPaoFallbacks);
  }
  return out;
}

}  // namespace

PinAccessPlan optimizePinAccess(const db::Design& design,
                                const OptimizerOptions& opts) {
  PinAccessPlan plan;
  plan.routes.assign(design.pins().size(), PinRoute{});

  std::shared_ptr<const Solver> solver = opts.solver;
  if (!solver)
    solver = makeSolver(opts.method, opts.lr, opts.exact, opts.ilp);

  const std::vector<db::Panel> panels = db::extractPanels(design);
  std::vector<const db::Panel*> work;
  for (const db::Panel& p : panels) {
    if (!p.pins.empty()) work.push_back(&p);
  }
  std::vector<PanelOutcome> outcomes(work.size());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = std::clamp(
      opts.threads > 0 ? opts.threads : (hw > 0 ? hw : 1), 1,
      static_cast<int>(std::max<std::size_t>(1, work.size())));
  // One arena per worker, reused across every panel that worker processes.
  std::vector<PanelScratch> arenas(static_cast<std::size_t>(threads));
  {
    // Scoped so the span is closed before `plan` can be returned (the timer
    // must not outlive its collector's final resting place).
    obs::ScopedTimer total(&plan.stats, "pao.total");
    if (threads <= 1) {
      for (std::size_t k = 0; k < work.size(); ++k)
        outcomes[k] = solvePanel(design, *work[k], opts, *solver,
                                 static_cast<int>(k), arenas[0]);
    } else {
      std::atomic<std::size_t> next{0};
      auto worker = [&](PanelScratch& scratch) {
        for (std::size_t k = next.fetch_add(1); k < work.size();
             k = next.fetch_add(1)) {
          outcomes[k] = solvePanel(design, *work[k], opts, *solver,
                                   static_cast<int>(k), scratch);
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t)
        pool.emplace_back(worker, std::ref(arenas[static_cast<std::size_t>(t)]));
      for (std::thread& t : pool) t.join();
    }
  }
  // Arena high-water mark. A gauge, not a counter: the value depends on how
  // panels landed on workers, so it may vary with the thread count while
  // counters and series must not.
  std::size_t peak = 0;
  for (const PanelScratch& a : arenas) peak = std::max(peak, a.footprintBytes());
  plan.stats.gauge("pao.scratch.peak_bytes", static_cast<double>(peak));

  plan.stats.note("pao.solver", solver->name());
  plan.stats.add(obs::names::kPaoPanels, static_cast<long>(work.size()));
  // Merge in panel order: counters and series come out identical for any
  // thread count (only span wall-times differ run to run).
  for (const PanelOutcome& out : outcomes) {
    const PanelKernel& kernel = out.kernel;
    const Assignment& a = out.assignment;
    plan.stats.merge(out.stats);
    plan.objective += a.objective;

    for (std::size_t j = 0; j < kernel.numPins(); ++j) {
      const Index designPin = kernel.designPinOf(static_cast<Index>(j));
      const Index i = a.intervalOfPin[j];
      if (i == geom::kInvalidIndex) {
        plan.stats.add(obs::names::kPaoUnassigned);
        continue;
      }
      plan.routes[static_cast<std::size_t>(designPin)] =
          PinRoute{kernel.trackOf(i), kernel.spanOf(i)};
    }
  }
  return plan;
}

}  // namespace cpr::core
