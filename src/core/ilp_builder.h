/// \file ilp_builder.h
/// Translation of the weighted interval assignment problem into the generic
/// binary ILP of Formula (1): objective (1a) weights each interval by
/// degree * f(I); one equality row (1b) per pin; one <=1 row (1c) per
/// conflict set (the linear-size alternative to quadratic pairwise rows).
///
/// The primary overloads consume a compiled `PanelKernel` (flat CSR arrays);
/// the `Problem` overloads compile a kernel internally and are kept for the
/// ablation benches and tests that start from a nested instance.
#pragma once

#include "core/panel_kernel.h"
#include "core/problem.h"
#include "ilp/model.h"

namespace cpr::core {

struct IlpBuild {
  ilp::Model model;
  /// model variable id per problem interval (1:1, but kept explicit so
  /// callers don't depend on the ordering).
  std::vector<ilp::Index> varOfInterval;
};

/// Builds Formula (1) from the compiled instance. When `pairwiseConflicts`
/// is true the quadratic pairwise encoding (x_i + x_i' <= 1 per overlapping
/// pair) is emitted instead of the conflict-set rows — only used by the
/// constraint-count ablation bench; the solutions are identical.
[[nodiscard]] IlpBuild buildIlpModel(const PanelKernel& k,
                                     bool pairwiseConflicts = false);

/// Convenience overload: compiles `p` into a temporary kernel and builds.
[[nodiscard]] IlpBuild buildIlpModel(const Problem& p,
                                     bool pairwiseConflicts = false);

/// Decodes a 0/1 model solution back into a per-pin assignment.
[[nodiscard]] Assignment decodeIlpSolution(const PanelKernel& k,
                                           const IlpBuild& build,
                                           const std::vector<double>& x);

/// Convenience overload of the above for nested instances.
[[nodiscard]] Assignment decodeIlpSolution(const Problem& p,
                                           const IlpBuild& build,
                                           const std::vector<double>& x);

}  // namespace cpr::core
