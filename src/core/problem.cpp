#include "core/problem.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace cpr::core {

AssignmentAudit audit(const Problem& p, const Assignment& a) {
  AssignmentAudit out;
  // Distinct selected intervals (a shared interval assigned to several pins
  // counts once for overlap checking, once per pin for the objective).
  std::vector<Index> selected;
  for (std::size_t j = 0; j < p.pins.size(); ++j) {
    const Index i = a.intervalOfPin[j];
    if (i == geom::kInvalidIndex) {
      ++out.unassignedPins;
      continue;
    }
    out.objective += p.profit[static_cast<std::size_t>(i)];
    selected.push_back(i);
    // The assigned interval must be a candidate of this pin.
    const ProblemPin& pin = p.pins[j];
    if (std::find(pin.intervals.begin(), pin.intervals.end(), i) ==
        pin.intervals.end()) {
      out.eachPinCovered = false;
    }
  }
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()), selected.end());

  // Group by track and count pairwise diff-net overlaps.
  std::map<Coord, std::vector<Index>> byTrack;
  for (Index i : selected)
    byTrack[p.intervals[static_cast<std::size_t>(i)].track].push_back(i);
  for (const auto& [track, ids] : byTrack) {
    for (std::size_t u = 0; u < ids.size(); ++u) {
      const AccessInterval& a1 = p.intervals[static_cast<std::size_t>(ids[u])];
      for (std::size_t v = u + 1; v < ids.size(); ++v) {
        const AccessInterval& a2 = p.intervals[static_cast<std::size_t>(ids[v])];
        if (a1.net != a2.net && a1.span.overlaps(a2.span))
          ++out.overlapsBetweenNets;
      }
    }
  }
  return out;
}

std::string summary(const Problem& p) {
  std::ostringstream os;
  os << "pins=" << p.pins.size() << " intervals=" << p.intervals.size()
     << " conflicts=" << p.conflicts.size();
  return os.str();
}

}  // namespace cpr::core
