/// \file interval_gen.h
/// Track-based pin access interval generation (paper Section 3.1).
///
/// For a pin `p` on an M2 track `t`, candidate intervals are all strips
/// [le, re] covering p's columns where `le` is either the net-bounding-box
/// left edge or the cut line (x.hi + 1) of a diff-net pin left of p, and `re`
/// symmetric on the right — O(m·n) intervals for m left / n right diff-net
/// pins — plus the minimum interval (the smallest strip covering the pin).
/// All candidates are clipped to the free space on the track (die minus M2
/// blockages) and to the net bounding box; identical same-net intervals
/// generated from several pins (intra-panel connections, Fig. 3(b)) are
/// deduplicated into one candidate associated with every covered pin.
#pragma once

#include <span>

#include "core/problem.h"
#include "db/design.h"
#include "db/panel.h"
#include "obs/collector.h"

namespace cpr::core {

struct GenOptions {
  /// Footnote 1 of the paper: cap the interval extent around the pin when M2
  /// routing is not favored for long nets. 0 disables the cap; otherwise the
  /// net bounding box is intersected with pin.x expanded by this many
  /// columns on each side.
  geom::Coord maxExtent = 0;
  /// Emit a minimum interval on every accessible track (more candidates)
  /// instead of only the first one.
  bool minimalPerTrack = true;
  /// Line-end spacing guard: every interval is inflated by this many columns
  /// per side when conflicts are detected, so selected diff-net intervals
  /// keep a gap of >= 2*guard — room for the router's line-end extensions
  /// (Section 4). Theorem 1's feasibility argument then requires same-track
  /// diff-net pins to be more than 2*guard columns apart, which real cell
  /// layouts (and our generator) guarantee. 0 disables the guard.
  geom::Coord spacingGuard = 1;
};

/// Builds the interval-assignment instance for one panel. Pins whose every
/// track is blocked get an empty candidate set (`minimalInterval ==
/// kInvalidIndex`); callers can detect them via `Problem::pins`.
/// Conflict sets are NOT filled here — run `detectConflicts` afterwards.
/// A non-null `obs` receives the `gen.*` counters (emitted / shared
/// intervals, blocked pins).
[[nodiscard]] Problem buildProblem(const db::Design& design,
                                   const db::Panel& panel,
                                   const GenOptions& opts = {},
                                   obs::Collector* obs = nullptr);

/// Multi-panel variant: one merged instance over several panels ("handle
/// multiple panels simultaneously", Section 3). Panels never share tracks,
/// so candidates from different panels can only interact through solver-side
/// accounting, which is exactly what the Fig. 6 scalability sweep measures.
[[nodiscard]] Problem buildProblem(const db::Design& design,
                                   std::span<const db::Panel> panels,
                                   const GenOptions& opts = {},
                                   obs::Collector* obs = nullptr);

/// Recomputes f(Ii) for every interval of `p` (default: sqrt of span).
enum class ProfitModel {
  SqrtSpan,   ///< f(I) = sqrt(span)  — the paper's balanced objective
  LinearSpan, ///< f(I) = span        — ablation: unbalanced maximization
};
void assignProfits(Problem& p, ProfitModel model = ProfitModel::SqrtSpan);

}  // namespace cpr::core
