/// \file conflict.h
/// Linear conflict set detection (paper Section 3.2).
///
/// A conflict set is a maximal set of pin access intervals on one track
/// whose common intersection is non-empty (a maximal clique of the track's
/// interval graph). The scanline below emits every maximal clique exactly
/// once; the number of cliques is linear in the number of intervals, which
/// is what keeps the ILP constraint count (1c) linear instead of the
/// quadratic pairwise formulation.
#pragma once

#include "core/problem.h"
#include "obs/collector.h"

namespace cpr::core {

/// Fills `p.conflicts` from `p.intervals`. Cliques with fewer than two
/// members are not conflicts and are skipped. A non-null `obs` receives the
/// `conflict.sets` counter.
void detectConflicts(Problem& p, obs::Collector* obs = nullptr);

/// Reference O(n^2)-per-track implementation used by tests to validate the
/// scanline: returns maximal cliques computed by pairwise overlap closure.
[[nodiscard]] std::vector<ConflictSet> detectConflictsBruteForce(
    const Problem& p);

}  // namespace cpr::core
