#include "core/conflict.h"

#include <algorithm>
#include <map>

#include "obs/names.h"

namespace cpr::core {

namespace {

using geom::Interval;

/// Sorts interval ids of one track by (lo, hi).
std::map<Coord, std::vector<Index>> groupByTrack(const Problem& p) {
  std::map<Coord, std::vector<Index>> byTrack;
  for (std::size_t i = 0; i < p.intervals.size(); ++i)
    byTrack[p.intervals[i].track].push_back(static_cast<Index>(i));
  for (auto& [t, ids] : byTrack) {
    std::sort(ids.begin(), ids.end(), [&](Index a, Index b) {
      const Interval& ia = p.intervals[static_cast<std::size_t>(a)].conflictSpan;
      const Interval& ib = p.intervals[static_cast<std::size_t>(b)].conflictSpan;
      return ia.lo != ib.lo ? ia.lo < ib.lo : ia.hi < ib.hi;
    });
  }
  return byTrack;
}

ConflictSet makeSet(const Problem& p, Coord track, std::vector<Index> members) {
  ConflictSet cs;
  cs.track = track;
  cs.common =
      p.intervals[static_cast<std::size_t>(members.front())].conflictSpan;
  for (Index id : members)
    cs.common = geom::intersect(
        cs.common, p.intervals[static_cast<std::size_t>(id)].conflictSpan);
  cs.intervals = std::move(members);
  return cs;
}

}  // namespace

void detectConflicts(Problem& p, obs::Collector* obs) {
  p.conflicts.clear();
  for (auto& [track, ids] : groupByTrack(p)) {
    // Scanline: `active` holds intervals containing the lo of the last
    // inserted interval. A maximal clique is emitted whenever an insertion
    // is about to expire members, and once at the end.
    std::vector<Index> active;
    bool insertedSinceEmit = false;
    auto expires = [&](Index id, Coord lo) {
      return p.intervals[static_cast<std::size_t>(id)].conflictSpan.hi < lo;
    };
    for (Index id : ids) {
      const Coord lo = p.intervals[static_cast<std::size_t>(id)].conflictSpan.lo;
      const bool anyExpired = std::any_of(
          active.begin(), active.end(),
          [&](Index a) { return expires(a, lo); });
      if (anyExpired) {
        if (insertedSinceEmit && active.size() >= 2)
          p.conflicts.push_back(makeSet(p, track, active));
        std::erase_if(active, [&](Index a) { return expires(a, lo); });
        insertedSinceEmit = false;
      }
      active.push_back(id);
      insertedSinceEmit = true;
    }
    if (insertedSinceEmit && active.size() >= 2)
      p.conflicts.push_back(makeSet(p, track, std::move(active)));
  }
  obs::add(obs, obs::names::kConflictSets,
           static_cast<long>(p.conflicts.size()));
}

std::vector<ConflictSet> detectConflictsBruteForce(const Problem& p) {
  std::vector<ConflictSet> out;
  for (auto& [track, ids] : groupByTrack(p)) {
    // Every maximal clique of an interval graph equals the set of intervals
    // containing some member's right endpoint; enumerate those point sets
    // and keep the inclusion-maximal distinct ones.
    std::vector<std::vector<Index>> candidates;
    for (Index id : ids) {
      const Coord r = p.intervals[static_cast<std::size_t>(id)].conflictSpan.hi;
      std::vector<Index> s;
      for (Index j : ids) {
        if (p.intervals[static_cast<std::size_t>(j)].conflictSpan.contains(r))
          s.push_back(j);
      }
      if (s.size() >= 2) candidates.push_back(std::move(s));
    }
    for (auto& s : candidates) std::sort(s.begin(), s.end());
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (std::size_t a = 0; a < candidates.size(); ++a) {
      bool maximal = true;
      for (std::size_t b = 0; b < candidates.size() && maximal; ++b) {
        if (a == b || candidates[b].size() <= candidates[a].size()) continue;
        maximal = !std::includes(candidates[b].begin(), candidates[b].end(),
                                 candidates[a].begin(), candidates[a].end());
      }
      if (maximal) out.push_back(makeSet(p, track, candidates[a]));
    }
  }
  return out;
}

}  // namespace cpr::core
