/// \file panel_kernel.h
/// PanelKernel: a compiled, CSR-flattened view of a `Problem`.
///
/// The nested `Problem` (pin → candidate vector, interval → pin vector,
/// conflict → member vector) is the natural output of interval generation,
/// but it is a pointer-chasing structure: every solver iteration walks
/// heap-scattered `std::vector`s and the per-panel cost on large designs is
/// dominated by allocation and cache misses rather than by the subgradient
/// math. `compile(Problem&&)` flattens the instance once into contiguous
/// offset + data arrays (compressed sparse rows) plus packed per-interval /
/// per-conflict columns; all three solvers, the ILP translation, and the
/// flat `audit` then iterate spans over those arrays.
///
/// The three CSR index spaces are distinct strong types (`PinIdx`,
/// `CandIdx`, `ConflictIdx` — see core/ids.h): an accessor can only be
/// subscripted with an id from its own space, and the spans hand back typed
/// ids, so pin/interval/conflict mix-ups fail to compile instead of reading
/// a wrong-but-in-bounds column.
///
/// Ownership: the kernel takes the `Problem` by value (move it in) and
/// borrows nothing — every flat array is an owned copy, and the moved-in
/// problem is retained for cold-path consumers (`problem()`), so a compiled
/// kernel is self-contained and safe to hand across threads by const
/// reference.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/ids.h"
#include "core/problem.h"
#include "support/contracts.h"
#include "support/hot_annotations.h"

namespace cpr::core {

class PanelKernel {
 public:
  PanelKernel() = default;

  /// Flattens `p` (profits filled, conflicts detected) into CSR form. All
  /// flat arrays preserve the nested iteration order exactly, so solvers
  /// running on the kernel produce bit-identical results to the nested
  /// paths they replaced.
  /// CPR_COLD_OK: compilation is per-panel setup that allocates the CSR
  /// arrays by design; the hot solve loops only ever read the result.
  [[nodiscard]] static PanelKernel compile(Problem&& p) CPR_COLD_OK;

  /// The moved-in instance, for cold paths (reporting, tests, decode).
  [[nodiscard]] const Problem& problem() const { return problem_; }

  [[nodiscard]] std::size_t numPins() const { return pinCandOff_.empty() ? 0 : pinCandOff_.size() - 1; }
  [[nodiscard]] std::size_t numIntervals() const { return track_.size(); }
  [[nodiscard]] std::size_t numConflicts() const { return confTrack_.size(); }

  // ---- per-pin ----
  /// Sj: candidate interval ids of pin `j`.
  [[nodiscard]] std::span<const CandIdx> candidatesOf(PinIdx j) const {
    return rowSpan(pinCandOff_, pinCand_, j.idx());
  }
  /// Sj sorted by non-increasing profit (ties by id) — the LR re-expansion
  /// order, precomputed at compile time since it only depends on the
  /// instance.
  [[nodiscard]] std::span<const CandIdx> sortedCandidatesOf(PinIdx j) const {
    return rowSpan(pinCandOff_, sortedCand_, j.idx());
  }
  [[nodiscard]] CandIdx minimalIntervalOf(PinIdx j) const {
    return minimalOf_[j.idx()];
  }
  [[nodiscard]] Index designPinOf(PinIdx j) const {
    return designPin_[j.idx()];
  }

  // ---- per-interval ----
  /// Problem-local pins covered by interval `i`.
  [[nodiscard]] std::span<const PinIdx> pinsOf(CandIdx i) const {
    return rowSpan(ivPinOff_, ivPin_, i.idx());
  }
  /// Conflict sets containing interval `i` (the csOf cross-index).
  [[nodiscard]] std::span<const ConflictIdx> conflictsOf(CandIdx i) const {
    return rowSpan(ivConfOff_, ivConf_, i.idx());
  }
  [[nodiscard]] Coord trackOf(CandIdx i) const { return track_[i.idx()]; }
  [[nodiscard]] const geom::Interval& spanOf(CandIdx i) const {
    return span_[i.idx()];
  }
  [[nodiscard]] Index netOf(CandIdx i) const { return net_[i.idx()]; }
  /// Base profit f(Ii).
  [[nodiscard]] double profitOf(CandIdx i) const { return profit_[i.idx()]; }
  /// Objective weight degree(i) * profit(i) — precomputed.
  [[nodiscard]] double weightOf(CandIdx i) const { return weight_[i.idx()]; }
  /// d_i: number of covered pins.
  [[nodiscard]] Index degreeOf(CandIdx i) const { return degree_[i.idx()]; }
  [[nodiscard]] bool isMinimal(CandIdx i) const {
    return minimalBit_[i.idx()] != 0;
  }

  // ---- per-conflict ----
  /// Member interval ids of conflict set `m` (intervalsOfConflict).
  [[nodiscard]] std::span<const CandIdx> membersOf(ConflictIdx m) const {
    return rowSpan(confMemOff_, confMem_, m.idx());
  }
  [[nodiscard]] Coord conflictTrackOf(ConflictIdx m) const {
    return confTrack_[m.idx()];
  }
  /// Lm: span of the common intersection (the subgradient step scale).
  [[nodiscard]] Coord conflictSpanOf(ConflictIdx m) const {
    return confLm_[m.idx()];
  }

  /// Bytes held by the flat arrays (size-based, so the value is
  /// deterministic for a given instance regardless of allocator growth).
  [[nodiscard]] std::size_t footprintBytes() const;

 private:
  template <typename T>
  [[nodiscard]] static std::span<const T> rowSpan(
      const std::vector<Index>& off, const std::vector<T>& data,
      std::size_t k) {
    // Contract: `k` names a row of this CSR adjacency and the row's
    // half-open offset range lies inside `data`. Debug builds fail loudly
    // on an out-of-range row id instead of handing out a wild span.
    CPR_DCHECK(k + 1 < off.size());
    CPR_DCHECK(off[k] <= off[k + 1]);
    CPR_DCHECK(std::size_t(off[k + 1]) <= data.size());
    return {data.begin() + off[k], data.begin() + off[k + 1]};
  }

  Problem problem_;
  // CSR adjacencies (offsets have size n+1; data is the flat concatenation).
  std::vector<Index> pinCandOff_;
  std::vector<CandIdx> pinCand_;   ///< pin -> candidate intervals
  std::vector<CandIdx> sortedCand_;  ///< pinCand_ rows sorted by profit desc
  std::vector<Index> ivPinOff_;
  std::vector<PinIdx> ivPin_;  ///< interval -> covered pins
  std::vector<Index> confMemOff_;
  std::vector<CandIdx> confMem_;  ///< conflict -> member intervals
  std::vector<Index> ivConfOff_;
  std::vector<ConflictIdx> ivConf_;  ///< interval -> conflict sets
  // Packed per-interval columns.
  std::vector<Coord> track_;
  std::vector<geom::Interval> span_;
  std::vector<Index> net_;
  std::vector<double> profit_, weight_;
  std::vector<Index> degree_;
  std::vector<char> minimalBit_;
  // Packed per-pin columns.
  std::vector<CandIdx> minimalOf_;
  std::vector<Index> designPin_;
  // Packed per-conflict columns.
  std::vector<Coord> confTrack_, confLm_;
};

/// Flat-path audit: same semantics as `audit(const Problem&, ...)` but
/// iterating the kernel's CSR arrays. The two must agree exactly (enforced
/// by the panel-kernel property test).
/// CPR_COLD_OK: the audit is a correctness cross-check (seed validation,
/// test ground truth) that groups by track through a std::map by design.
[[nodiscard]] AssignmentAudit audit(const PanelKernel& k,
                                    const Assignment& a) CPR_COLD_OK;

}  // namespace cpr::core
