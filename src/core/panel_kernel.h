/// \file panel_kernel.h
/// PanelKernel: a compiled, CSR-flattened view of a `Problem`.
///
/// The nested `Problem` (pin → candidate vector, interval → pin vector,
/// conflict → member vector) is the natural output of interval generation,
/// but it is a pointer-chasing structure: every solver iteration walks
/// heap-scattered `std::vector`s and the per-panel cost on large designs is
/// dominated by allocation and cache misses rather than by the subgradient
/// math. `compile(Problem&&)` flattens the instance once into contiguous
/// offset + data arrays (compressed sparse rows) plus packed per-interval /
/// per-conflict columns; all three solvers, the ILP translation, and the
/// flat `audit` then iterate spans over those arrays.
///
/// Ownership: the kernel takes the `Problem` by value (move it in) and
/// borrows nothing — every flat array is an owned copy, and the moved-in
/// problem is retained for cold-path consumers (`problem()`), so a compiled
/// kernel is self-contained and safe to hand across threads by const
/// reference.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/problem.h"
#include "support/contracts.h"

namespace cpr::core {

class PanelKernel {
 public:
  PanelKernel() = default;

  /// Flattens `p` (profits filled, conflicts detected) into CSR form. All
  /// flat arrays preserve the nested iteration order exactly, so solvers
  /// running on the kernel produce bit-identical results to the nested
  /// paths they replaced.
  [[nodiscard]] static PanelKernel compile(Problem&& p);

  /// The moved-in instance, for cold paths (reporting, tests, decode).
  [[nodiscard]] const Problem& problem() const { return problem_; }

  [[nodiscard]] std::size_t numPins() const { return pinCandOff_.empty() ? 0 : pinCandOff_.size() - 1; }
  [[nodiscard]] std::size_t numIntervals() const { return track_.size(); }
  [[nodiscard]] std::size_t numConflicts() const { return confTrack_.size(); }

  // ---- per-pin ----
  /// Sj: candidate interval ids of pin `j`.
  [[nodiscard]] std::span<const Index> candidatesOf(Index j) const {
    return csr(pinCandOff_, pinCand_, j);
  }
  /// Sj sorted by non-increasing profit (ties by id) — the LR re-expansion
  /// order, precomputed at compile time since it only depends on the
  /// instance.
  [[nodiscard]] std::span<const Index> sortedCandidatesOf(Index j) const {
    return csr(pinCandOff_, sortedCand_, j);
  }
  [[nodiscard]] Index minimalIntervalOf(Index j) const {
    return minimalOf_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] Index designPinOf(Index j) const {
    return designPin_[static_cast<std::size_t>(j)];
  }

  // ---- per-interval ----
  /// Problem-local pins covered by interval `i`.
  [[nodiscard]] std::span<const Index> pinsOf(Index i) const {
    return csr(ivPinOff_, ivPin_, i);
  }
  /// Conflict sets containing interval `i` (the csOf cross-index).
  [[nodiscard]] std::span<const Index> conflictsOf(Index i) const {
    return csr(ivConfOff_, ivConf_, i);
  }
  [[nodiscard]] Coord trackOf(Index i) const {
    return track_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const geom::Interval& spanOf(Index i) const {
    return span_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Index netOf(Index i) const {
    return net_[static_cast<std::size_t>(i)];
  }
  /// Base profit f(Ii).
  [[nodiscard]] double profitOf(Index i) const {
    return profit_[static_cast<std::size_t>(i)];
  }
  /// Objective weight degree(i) * profit(i) — precomputed.
  [[nodiscard]] double weightOf(Index i) const {
    return weight_[static_cast<std::size_t>(i)];
  }
  /// d_i: number of covered pins.
  [[nodiscard]] Index degreeOf(Index i) const {
    return degree_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] bool isMinimal(Index i) const {
    return minimalBit_[static_cast<std::size_t>(i)] != 0;
  }

  // ---- per-conflict ----
  /// Member interval ids of conflict set `m` (intervalsOfConflict).
  [[nodiscard]] std::span<const Index> membersOf(Index m) const {
    return csr(confMemOff_, confMem_, m);
  }
  [[nodiscard]] Coord conflictTrackOf(Index m) const {
    return confTrack_[static_cast<std::size_t>(m)];
  }
  /// Lm: span of the common intersection (the subgradient step scale).
  [[nodiscard]] Coord conflictSpanOf(Index m) const {
    return confLm_[static_cast<std::size_t>(m)];
  }

  /// Bytes held by the flat arrays (size-based, so the value is
  /// deterministic for a given instance regardless of allocator growth).
  [[nodiscard]] std::size_t footprintBytes() const;

 private:
  [[nodiscard]] static std::span<const Index> csr(
      const std::vector<Index>& off, const std::vector<Index>& data, Index k) {
    const auto kk = static_cast<std::size_t>(k);
    // Contract: `k` names a row of this CSR adjacency and the row's
    // half-open offset range lies inside `data`. Debug builds fail loudly
    // on an out-of-range row id instead of handing out a wild span.
    CPR_DCHECK(kk + 1 < off.size());
    CPR_DCHECK(off[kk] <= off[kk + 1]);
    CPR_DCHECK(static_cast<std::size_t>(off[kk + 1]) <= data.size());
    return {data.data() + off[kk],
            static_cast<std::size_t>(off[kk + 1] - off[kk])};
  }

  Problem problem_;
  // CSR adjacencies (offsets have size n+1; data is the flat concatenation).
  std::vector<Index> pinCandOff_, pinCand_;  ///< pin -> candidate intervals
  std::vector<Index> sortedCand_;  ///< pinCand_ rows sorted by profit desc
  std::vector<Index> ivPinOff_, ivPin_;      ///< interval -> covered pins
  std::vector<Index> confMemOff_, confMem_;  ///< conflict -> member intervals
  std::vector<Index> ivConfOff_, ivConf_;    ///< interval -> conflict sets
  // Packed per-interval columns.
  std::vector<Coord> track_;
  std::vector<geom::Interval> span_;
  std::vector<Index> net_;
  std::vector<double> profit_, weight_;
  std::vector<Index> degree_;
  std::vector<char> minimalBit_;
  // Packed per-pin columns.
  std::vector<Index> minimalOf_, designPin_;
  // Packed per-conflict columns.
  std::vector<Coord> confTrack_, confLm_;
};

/// Flat-path audit: same semantics as `audit(const Problem&, ...)` but
/// iterating the kernel's CSR arrays. The two must agree exactly (enforced
/// by the panel-kernel property test).
[[nodiscard]] AssignmentAudit audit(const PanelKernel& k, const Assignment& a);

}  // namespace cpr::core
