#include "core/panel_kernel.h"

#include <algorithm>
#include <limits>
#include <map>

namespace cpr::core {

namespace {

/// Builds `off`/`data` from `n` rows whose contents `rowOf(r)` yields. The
/// rows carry raw `Index` ids (the `Problem` boundary); `T` is the strong
/// id type of the destination space, wrapped element-by-element.
template <typename T, typename RowOf>
void flatten(std::size_t n, RowOf rowOf, std::vector<Index>& off,
             std::vector<T>& data) {
  off.assign(n + 1, 0);
  std::size_t total = 0;
  for (std::size_t r = 0; r < n; ++r) {
    total += rowOf(r).size();
    // Offsets are stored as Index; a panel whose flat adjacency no longer
    // fits would silently wrap and corrupt every span handed out later.
    CPR_CHECK(total <= std::size_t{std::numeric_limits<Index>::max()});
    off[r + 1] = static_cast<Index>(total);
  }
  data.clear();
  data.reserve(total);
  for (std::size_t r = 0; r < n; ++r) {
    for (const Index v : rowOf(r)) data.push_back(T{v});
  }
}

}  // namespace

PanelKernel PanelKernel::compile(Problem&& p) {
  PanelKernel k;
  k.problem_ = std::move(p);
  const Problem& q = k.problem_;
  const std::size_t nPins = q.pins.size();
  const std::size_t nIv = q.intervals.size();
  const std::size_t nCs = q.conflicts.size();

  flatten(nPins, [&](std::size_t j) -> const std::vector<Index>& {
    return q.pins[j].intervals;
  }, k.pinCandOff_, k.pinCand_);
  flatten(nIv, [&](std::size_t i) -> const std::vector<Index>& {
    return q.intervals[i].pins;
  }, k.ivPinOff_, k.ivPin_);
  flatten(nCs, [&](std::size_t m) -> const std::vector<Index>& {
    return q.conflicts[m].intervals;
  }, k.confMemOff_, k.confMem_);

  // Cross-index interval -> conflict sets by counting sort over the member
  // lists; filling in ascending `m` keeps each interval's conflict list in
  // the same order the nested `csOf` construction produced.
  k.ivConfOff_.assign(nIv + 1, 0);
  for (std::size_t m = 0; m < nCs; ++m) {
    for (const Index i : q.conflicts[m].intervals) {
      // A conflict member outside the interval table would turn the
      // counting sort below into an out-of-bounds histogram write.
      CPR_DCHECK(CandIdx{i}.idx() < nIv);
      ++k.ivConfOff_[CandIdx{i}.idx() + 1];
    }
  }
  for (std::size_t i = 1; i <= nIv; ++i) k.ivConfOff_[i] += k.ivConfOff_[i - 1];
  k.ivConf_.assign(std::size_t(k.ivConfOff_[nIv]), ConflictIdx{});
  {
    std::vector<Index> cursor(k.ivConfOff_.begin(), k.ivConfOff_.end() - 1);
    for (std::size_t m = 0; m < nCs; ++m) {
      for (const Index i : q.conflicts[m].intervals)
        k.ivConf_[std::size_t(cursor[CandIdx{i}.idx()]++)] = ConflictIdx{m};
    }
  }

  // Per-pin candidate order for LR re-expansion: profit desc, id asc.
  k.sortedCand_ = k.pinCand_;
  for (std::size_t j = 0; j < nPins; ++j) {
    std::sort(k.sortedCand_.begin() + k.pinCandOff_[j],
              k.sortedCand_.begin() + k.pinCandOff_[j + 1],
              [&](CandIdx a, CandIdx b) {
                const double pa = q.profit[a.idx()];
                const double pb = q.profit[b.idx()];
                return pa != pb ? pa > pb : a < b;
              });
  }

  k.track_.resize(nIv);
  k.span_.resize(nIv);
  k.net_.resize(nIv);
  k.profit_.resize(nIv);
  k.weight_.resize(nIv);
  k.degree_.resize(nIv);
  k.minimalBit_.resize(nIv);
  for (std::size_t i = 0; i < nIv; ++i) {
    const AccessInterval& iv = q.intervals[i];
    k.track_[i] = iv.track;
    k.span_[i] = iv.span;
    k.net_[i] = iv.net;
    k.profit_[i] = q.profit[i];
    k.weight_[i] = q.weight(static_cast<Index>(i));
    k.degree_[i] = static_cast<Index>(iv.pins.size());
    k.minimalBit_[i] = iv.minimal ? 1 : 0;
  }

  k.minimalOf_.resize(nPins);
  k.designPin_.resize(nPins);
  for (std::size_t j = 0; j < nPins; ++j) {
    k.minimalOf_[j] = CandIdx{q.pins[j].minimalInterval};
    k.designPin_[j] = q.pins[j].designPin;
  }

  k.confTrack_.resize(nCs);
  k.confLm_.resize(nCs);
  for (std::size_t m = 0; m < nCs; ++m) {
    k.confTrack_[m] = q.conflicts[m].track;
    k.confLm_[m] = q.conflicts[m].common.span();
  }
  return k;
}

std::size_t PanelKernel::footprintBytes() const {
  auto bytes = [](const auto& v) { return v.size() * sizeof(v[0]); };
  return bytes(pinCandOff_) + bytes(pinCand_) + bytes(sortedCand_) +
         bytes(ivPinOff_) +
         bytes(ivPin_) + bytes(confMemOff_) + bytes(confMem_) +
         bytes(ivConfOff_) + bytes(ivConf_) + bytes(track_) + bytes(span_) +
         bytes(net_) + bytes(profit_) + bytes(weight_) + bytes(degree_) +
         bytes(minimalBit_) + bytes(minimalOf_) + bytes(designPin_) +
         bytes(confTrack_) + bytes(confLm_);
}

AssignmentAudit audit(const PanelKernel& k, const Assignment& a) {
  AssignmentAudit out;
  std::vector<CandIdx> selected;
  const std::size_t nPins = k.numPins();
  CPR_CHECK(a.intervalOfPin.size() == nPins);
  for (std::size_t j = 0; j < nPins; ++j) {
    const Index raw = a.intervalOfPin[j];
    CPR_DCHECK(raw == geom::kInvalidIndex ||
               CandIdx{raw}.idx() < k.numIntervals());
    if (raw == geom::kInvalidIndex) {
      ++out.unassignedPins;
      continue;
    }
    const CandIdx i{raw};
    out.objective += k.profitOf(i);
    selected.push_back(i);
    const std::span<const CandIdx> cand = k.candidatesOf(PinIdx{j});
    if (std::find(cand.begin(), cand.end(), i) == cand.end())
      out.eachPinCovered = false;
  }
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());

  std::map<Coord, std::vector<CandIdx>> byTrack;
  for (const CandIdx i : selected) byTrack[k.trackOf(i)].push_back(i);
  for (const auto& [track, ids] : byTrack) {
    for (std::size_t u = 0; u < ids.size(); ++u) {
      for (std::size_t v = u + 1; v < ids.size(); ++v) {
        if (k.netOf(ids[u]) != k.netOf(ids[v]) &&
            k.spanOf(ids[u]).overlaps(k.spanOf(ids[v])))
          ++out.overlapsBetweenNets;
      }
    }
  }
  return out;
}

}  // namespace cpr::core
