#include "core/interval_gen.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "core/ids.h"
#include "obs/names.h"

namespace cpr::core {

namespace {

using geom::Interval;

/// Per-track view of a panel's pins, for cut-line and coverage queries.
struct TrackPin {
  Index localPin;
  Interval x;
  Index net;
};

/// Incrementally builds a (possibly multi-panel) Problem.
class Builder {
 public:
  Builder(const db::Design& design, const GenOptions& opts, Problem& out)
      : design_(design), opts_(opts), out_(out) {}

  void addPanel(const db::Panel& panel) {
    const std::size_t firstLocal = out_.pins.size();
    // Local pin records.
    for (Index dp : panel.pins) {
      ProblemPin pp;
      pp.designPin = dp;
      pp.net = design_.pin(dp).net;
      out_.pins.push_back(std::move(pp));
    }
    // Per-track pin buckets.
    const std::size_t nTracks = std::size_t(panel.tracks.span());
    std::vector<std::vector<TrackPin>> byTrack(nTracks);
    for (std::size_t k = 0; k < panel.pins.size(); ++k) {
      const db::Pin& pin = design_.pin(panel.pins[k]);
      for (Coord t = pin.shape.y.lo; t <= pin.shape.y.hi; ++t) {
        byTrack[TrackIdx{t - panel.tracks.lo}.idx()].push_back(
            TrackPin{static_cast<Index>(firstLocal + k), pin.shape.x, pin.net});
      }
    }
    for (auto& bucket : byTrack) {
      std::sort(bucket.begin(), bucket.end(),
                [](const TrackPin& a, const TrackPin& b) { return a.x.lo < b.x.lo; });
    }
    // Generate candidates pin by pin.
    for (std::size_t k = 0; k < panel.pins.size(); ++k) {
      generateForPin(panel, byTrack, static_cast<Index>(firstLocal + k));
    }
  }

 private:
  /// Returns (creating if needed) the interval id for (net, track, span);
  /// associates it with every same-net pin it covers on that track.
  Index internInterval(Coord track, Interval span, Index net,
                       const std::vector<TrackPin>& bucket, bool minimal) {
    const auto key = std::make_tuple(net, track, span.lo, span.hi);
    if (auto it = interned_.find(key); it != interned_.end()) {
      AccessInterval& existing = out_.intervals[CandIdx{it->second}.idx()];
      if (minimal) existing.minimal = true;
      return it->second;
    }
    AccessInterval iv;
    iv.track = track;
    iv.span = span;
    // Uniform inflation: Theorem 1 feasibility then requires same-track
    // diff-net pins to sit more than 2*spacingGuard columns apart, which the
    // design rules (and our generator) guarantee — standard cells never abut
    // I/O pins that closely.
    iv.conflictSpan = Interval{span.lo - opts_.spacingGuard,
                               span.hi + opts_.spacingGuard};
    iv.net = net;
    iv.minimal = minimal;
    for (const TrackPin& tp : bucket) {
      if (tp.net == net && span.contains(tp.x)) iv.pins.push_back(tp.localPin);
    }
    const Index id = static_cast<Index>(out_.intervals.size());
    for (Index covered : iv.pins)
      out_.pins[PinIdx{covered}.idx()].intervals.push_back(id);
    out_.intervals.push_back(std::move(iv));
    interned_.emplace(key, id);
    return id;
  }

  void generateForPin(const db::Panel& panel,
                      const std::vector<std::vector<TrackPin>>& byTrack,
                      Index local) {
    ProblemPin& pp = out_.pins[PinIdx{local}.idx()];
    const db::Pin& pin = design_.pin(pp.designPin);
    Interval box = design_.netBox(pin.net).x;
    if (opts_.maxExtent > 0) {
      box = geom::intersect(
          box, Interval{pin.shape.x.lo - opts_.maxExtent,
                        pin.shape.x.hi + opts_.maxExtent});
    }

    for (Coord t = pin.shape.y.lo; t <= pin.shape.y.hi; ++t) {
      const Interval segment =
          panel.freeOn(t).segmentContaining(pin.shape.x.lo);
      if (!segment.contains(pin.shape.x)) continue;  // blocked track
      const Interval avail = geom::intersect(segment, box);
      if (!avail.contains(pin.shape.x)) continue;

      const auto& bucket = byTrack[TrackIdx{t - panel.tracks.lo}.idx()];
      // Cut lines of diff-net pins on this track inside `avail`
      // (paper Fig. 3(a): candidate edges are the box edges plus the
      // vertical cutting line of each diff-net pin).
      std::vector<Coord> lefts{avail.lo};
      std::vector<Coord> rights{avail.hi};
      for (const TrackPin& q : bucket) {
        if (q.localPin == local || q.net == pin.net) continue;
        if (!q.x.overlaps(avail)) continue;
        if (q.x.hi < pin.shape.x.lo) {
          lefts.push_back(q.x.hi + 1);
        } else if (q.x.lo > pin.shape.x.hi) {
          rights.push_back(q.x.lo - 1);
        }
        // Diff-net pins overlapping the pin's own columns produce no cut
        // line; the conflict sets capture that interference.
      }
      dedupe(lefts);
      dedupe(rights);

      bool emittedMinimal = false;
      for (const Coord le : lefts) {
        if (le > pin.shape.x.lo) continue;
        for (const Coord re : rights) {
          if (re < pin.shape.x.hi) continue;
          const Index id = internInterval(t, Interval{le, re}, pin.net, bucket,
                                          /*minimal=*/false);
          (void)id;
        }
      }
      if (opts_.minimalPerTrack || pp.minimalInterval == geom::kInvalidIndex) {
        const Index id = internInterval(t, pin.shape.x, pin.net, bucket,
                                        /*minimal=*/true);
        emittedMinimal = true;
        if (pp.minimalInterval == geom::kInvalidIndex) pp.minimalInterval = id;
      }
      (void)emittedMinimal;
    }
  }

  static void dedupe(std::vector<Coord>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  const db::Design& design_;
  const GenOptions& opts_;
  Problem& out_;
  std::map<std::tuple<Index, Coord, Coord, Coord>, Index> interned_;
};

}  // namespace

Problem buildProblem(const db::Design& design, const db::Panel& panel,
                     const GenOptions& opts, obs::Collector* obs) {
  return buildProblem(design, std::span<const db::Panel>{&panel, 1}, opts,
                      obs);
}

Problem buildProblem(const db::Design& design,
                     std::span<const db::Panel> panels,
                     const GenOptions& opts, obs::Collector* obs) {
  Problem out;
  Builder builder(design, opts, out);
  for (const db::Panel& panel : panels) builder.addPanel(panel);
  assignProfits(out);
  if (obs) {
    obs->add(obs::names::kGenIntervals,
             static_cast<long>(out.intervals.size()));
    long shared = 0;
    for (const AccessInterval& iv : out.intervals)
      shared += iv.pins.size() > 1 ? 1 : 0;
    obs->add(obs::names::kGenShared, shared);
    long blocked = 0;
    for (const ProblemPin& pin : out.pins)
      blocked += pin.minimalInterval == geom::kInvalidIndex ? 1 : 0;
    obs->add(obs::names::kGenBlockedPins, blocked);
  }
  return out;
}

void assignProfits(Problem& p, ProfitModel model) {
  p.profit.resize(p.intervals.size());
  for (std::size_t i = 0; i < p.intervals.size(); ++i) {
    const double span = static_cast<double>(p.intervals[i].span.span());
    p.profit[i] = model == ProfitModel::SqrtSpan ? std::sqrt(span) : span;
  }
}

}  // namespace cpr::core
