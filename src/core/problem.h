/// \file problem.h
/// The weighted interval assignment problem (paper Section 3.3).
///
/// A `Problem` is the panel-level (or multi-panel) instance produced by pin
/// access interval generation and linear conflict set detection; it is the
/// common input of the three solvers (LR, specialized exact branch & bound,
/// and the generic ILP translation). Notation follows the paper's Table 1:
/// pins `pj` with candidate sets `Sj`, intervals `Ii` with profit `f(Ii)`,
/// conflict sets `Cm`.
#pragma once

#include <string>
#include <vector>

#include "geom/interval.h"
#include "geom/types.h"
#include "support/hot_annotations.h"

namespace cpr::core {

using geom::Coord;
using geom::Index;

/// A candidate pin access interval: a horizontal metal strip on one M2
/// track. Intervals covering several same-net pins are deduplicated into a
/// single entry whose `pins` lists every covered pin (Fig. 3(b)).
struct AccessInterval {
  Coord track = 0;          ///< global M2 track
  geom::Interval span;      ///< column range
  /// Span used for conflict detection: non-minimal intervals are inflated by
  /// the line-end spacing guard so that any two selected diff-net intervals
  /// keep a manufacturable gap (the router's line-end extensions then cannot
  /// collide). Minimum intervals keep their true span so Theorem 1's
  /// feasibility argument survives arbitrarily tight pin placements.
  geom::Interval conflictSpan;
  Index net = geom::kInvalidIndex;
  std::vector<Index> pins;  ///< *problem-local* pin indices covered
  bool minimal = false;     ///< someone's minimum interval (Theorem 1 fallback)
};

/// One pin `pj` of the instance together with its candidate set `Sj`.
struct ProblemPin {
  Index designPin = geom::kInvalidIndex;  ///< index into Design::pins
  Index net = geom::kInvalidIndex;
  std::vector<Index> intervals;  ///< Sj: candidate interval ids
  /// A minimum interval covering only this pin; always selectable, which is
  /// what makes Formula (1) feasible (Theorem 1). kInvalidIndex when the pin
  /// has no access at all (every track blocked).
  Index minimalInterval = geom::kInvalidIndex;
};

/// A maximal set of pairwise-overlapping intervals on one track (`Cm`).
struct ConflictSet {
  std::vector<Index> intervals;
  Coord track = 0;
  geom::Interval common;  ///< non-empty intersection of all members; span = Lm
};

/// Full weighted interval assignment instance.
struct Problem {
  std::vector<ProblemPin> pins;
  std::vector<AccessInterval> intervals;
  std::vector<ConflictSet> conflicts;
  /// Base profit f(Ii) per interval (default sqrt(span), Section 3.3). The
  /// objective weight of x_i is `degree(i) * profit[i]` because Formula (1a)
  /// counts an interval once per covered pin.
  std::vector<double> profit;

  /// Number of pins covered by interval `i` (d_i).
  [[nodiscard]] int degree(Index i) const {
    return static_cast<int>(intervals[static_cast<std::size_t>(i)].pins.size());
  }
  /// Objective weight of selecting interval `i`.
  [[nodiscard]] double weight(Index i) const {
    return degree(i) * profit[static_cast<std::size_t>(i)];
  }
};

/// Result of a solver: one interval per pin.
struct Assignment {
  /// Per problem-local pin: assigned interval id (kInvalidIndex when the pin
  /// had no candidates at all).
  std::vector<Index> intervalOfPin;
  /// Sum over pins of f(assigned interval) — the paper's Formula (1a) value.
  double objective = 0.0;
  /// Conflict sets still violated (0 for legal assignments).
  int violations = 0;
  /// True when the solver proved optimality (exact solver only). Work
  /// counts (LR iterations, branch & bound nodes, simplex pivots) are
  /// reported through the `obs::Collector` passed to the solver instead of
  /// being carried here.
  bool provedOptimal = false;
};

/// Recomputes `objective` and `violations` of `a` against `p`, independent of
/// the precomputed conflict sets: violations are counted by direct geometric
/// overlap between selected intervals of different nets on the same track.
/// Used by tests as ground truth and by solvers as a final audit.
struct AssignmentAudit {
  double objective = 0.0;
  int overlapsBetweenNets = 0;  ///< pairs of selected diff-net intervals overlapping
  int unassignedPins = 0;
  bool eachPinCovered = true;   ///< every assigned interval actually covers its pin
};
/// CPR_COLD_OK: correctness cross-check, allocates by design (see the
/// kernel overload).
[[nodiscard]] AssignmentAudit audit(const Problem& p,
                                    const Assignment& a) CPR_COLD_OK;

/// Human-readable one-line summary ("pins=.. intervals=.. conflicts=..").
[[nodiscard]] std::string summary(const Problem& p);

}  // namespace cpr::core
