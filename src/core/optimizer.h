/// \file optimizer.h
/// PinAccessOptimizer facade: design-level concurrent pin access
/// optimization (paper Problem 1), panel by panel.
///
/// For each standard-cell row the facade generates pin access intervals
/// (Section 3.1), detects conflict sets (3.2), and solves the weighted
/// interval assignment with either the scalable LR algorithm (3.4) or the
/// exact solver (3.3). The result maps every accessible design pin to one
/// conflict-free M2 interval — the "partial routes" handed to the router
/// (Section 4).
#pragma once

#include <vector>

#include "core/exact_solver.h"
#include "core/interval_gen.h"
#include "core/lr_solver.h"
#include "db/design.h"

namespace cpr::core {

enum class Method {
  Lr,    ///< Lagrangian relaxation + greedy conflict removal (Algorithm 2)
  Exact, ///< branch & bound to proven optimality (the paper's "ILP")
};

struct OptimizerOptions {
  Method method = Method::Lr;
  GenOptions gen;
  LrOptions lr;
  ExactOptions exact;
  ProfitModel profitModel = ProfitModel::SqrtSpan;
  /// Worker threads for panel-level parallelism ("concurrent pin access
  /// optimization ... can also handle multiple panels simultaneously with
  /// scalable solutions", Section 3). Panels are independent, so results are
  /// identical for any thread count; 0 = use the hardware concurrency.
  int threads = 0;
};

/// One pin's optimized access interval (a horizontal M2 partial route).
struct PinRoute {
  Coord track = -1;
  geom::Interval span;  ///< empty when the pin could not be assigned

  [[nodiscard]] bool valid() const { return !span.empty(); }
};

struct PinAccessPlan {
  /// Indexed by design pin id.
  std::vector<PinRoute> routes;
  double objective = 0.0;     ///< sum over pins of f(assigned interval)
  long totalIntervals = 0;    ///< candidates generated across panels
  long totalConflicts = 0;    ///< conflict sets detected across panels
  int unassignedPins = 0;     ///< pins with no access at all (blocked)
  long solverIterations = 0;  ///< LR iterations or B&B nodes, summed
  bool allProvedOptimal = true;  ///< exact method only
};

[[nodiscard]] PinAccessPlan optimizePinAccess(const db::Design& design,
                                              const OptimizerOptions& opts = {});

}  // namespace cpr::core
