/// \file optimizer.h
/// PinAccessOptimizer facade: design-level concurrent pin access
/// optimization (paper Problem 1), panel by panel.
///
/// For each standard-cell row the facade generates pin access intervals
/// (Section 3.1), detects conflict sets (3.2), and solves the weighted
/// interval assignment through the unified `Solver` interface (LR, exact
/// branch & bound, or the generic ILP translation — solver.h). The result
/// maps every accessible design pin to one conflict-free M2 interval — the
/// "partial routes" handed to the router (Section 4).
///
/// Every run is instrumented: `PinAccessPlan::stats` carries the merged
/// per-panel counters, trace series, and phase timers. Each panel is
/// processed under its own collector (src = panel index) and the collectors
/// are merged in panel order, so all counters and series are identical for
/// any `threads` value; only span wall-times vary.
#pragma once

#include <memory>
#include <vector>

#include "core/interval_gen.h"
#include "core/solver.h"
#include "db/design.h"
#include "obs/collector.h"
#include "obs/names.h"
#include "support/deadline.h"

namespace cpr::core {

struct OptimizerOptions {
  GenOptions gen;
  /// Solver method + per-engine options, handed to `makeSolver` verbatim.
  /// One nested bundle instead of flat method/lr/exact/ilp fields, so every
  /// layer from the CLI down spells solver configuration the same way.
  SolverOptions solve;
  ProfitModel profitModel = ProfitModel::SqrtSpan;
  /// Run-level wall-clock budget (unset = none). Panels that start after it
  /// fires skip their solver and take the fast degradation rungs, so the
  /// optimizer always terminates promptly with a legal (if modest) plan.
  support::Deadline deadline;
  /// Per-panel solve budget in seconds (0 = none). Each panel gets
  /// `deadline.sub(panelBudgetSeconds)` — its own slice, never outliving the
  /// run deadline. Replaces the former `exact.timeLimitSeconds` per-panel
  /// convention. Timeouts are wall-clock events, so plans under an active
  /// budget are NOT guaranteed identical across thread counts or runs.
  double panelBudgetSeconds = 0.0;
  /// Worker threads for panel-level parallelism ("concurrent pin access
  /// optimization ... can also handle multiple panels simultaneously with
  /// scalable solutions", Section 3). Panels are independent and stats merge
  /// in panel order, so results are identical for any thread count; 0 = use
  /// the hardware concurrency.
  int threads = 0;
  /// Overrides `solve` when set: panels are solved by this solver instance
  /// (it must be safe for concurrent `solve` calls, as the built-in three
  /// are).
  std::shared_ptr<const Solver> solver;
};

/// One pin's optimized access interval (a horizontal M2 partial route).
struct PinRoute {
  Coord track = -1;
  geom::Interval span;  ///< empty when the pin could not be assigned

  [[nodiscard]] bool valid() const { return !span.empty(); }
};

struct PinAccessPlan {
  /// Indexed by design pin id.
  std::vector<PinRoute> routes;
  double objective = 0.0;  ///< sum over pins of f(assigned interval)
  /// Merged per-panel instrumentation (counters, series, phase timers).
  obs::Collector stats;

  // Thin accessors over the canonical counters (kept for call sites that
  // predate the obs subsystem).
  [[nodiscard]] long totalIntervals() const {
    return stats.counter(obs::names::kPaoIntervals);
  }
  [[nodiscard]] long totalConflicts() const {
    return stats.counter(obs::names::kPaoConflicts);
  }
  [[nodiscard]] int unassignedPins() const {
    return static_cast<int>(stats.counter(obs::names::kPaoUnassigned));
  }
  /// Solver work summed across panels: LR iterations, exact B&B nodes, and
  /// generic-ILP nodes all count.
  [[nodiscard]] long solverIterations() const {
    return stats.counter(obs::names::kLrIterations) +
           stats.counter(obs::names::kExactNodes) +
           stats.counter(obs::names::kIlpNodes);
  }
  /// True when no panel's solver gave up on proving optimality and no panel
  /// fell back to the LR heuristic. Trivially true for Method::Lr.
  [[nodiscard]] bool allProvedOptimal() const {
    return stats.counter(obs::names::kExactNotProved) == 0 &&
           stats.counter(obs::names::kIlpNotProved) == 0 &&
           stats.counter(obs::names::kPaoFallbacks) == 0;
  }
};

[[nodiscard]] PinAccessPlan optimizePinAccess(const db::Design& design,
                                              const OptimizerOptions& opts = {});

}  // namespace cpr::core
