/// \file lr_solver.h
/// Lagrangian-relaxation pin access optimization (paper Section 3.4).
///
/// Implements Algorithm 2: the conflict constraints (1c) are relaxed into
/// the objective with multipliers λm updated by subgradient steps
/// (Eq. 3, t_k = L_m / k^α); each LR subproblem is solved by the greedy
/// `maxGains` of Algorithm 1 (gain-sorted selection, ties broken toward
/// intervals covering more same-net pins); the best-so-far solution (fewest
/// violated conflict sets) is kept, and remaining conflicts are removed by
/// shrinking intervals to their pins' minimum intervals.
///
/// The hot path consumes a compiled `PanelKernel` (flat CSR arrays) and an
/// optional `LrScratch` arena of reusable buffers; the `Problem` overload is
/// a convenience that compiles a kernel internally.
#pragma once

#include <vector>

#include "core/panel_kernel.h"
#include "core/problem.h"
#include "obs/collector.h"
#include "support/deadline.h"
#include "support/hot_annotations.h"

namespace cpr::core {

struct LrOptions {
  /// Iteration upper bound (the paper's experiments use UB = 200).
  int maxIterations = 200;
  /// Wall-clock budget; unset (the default) never expires. Composes with the
  /// per-call deadline passed to `solveLr`. The subgradient loop checks it
  /// after each iteration (at least one iteration always runs), and the
  /// conflict-removal repair runs regardless, so a timed-out solve still
  /// returns a legal assignment.
  support::Deadline deadline;
  /// Engineering addition: stop early when the best violation count has not
  /// improved for this many iterations (0 disables; the paper always runs to
  /// UB or zero violations, but stalled panels only waste time — the best
  /// solution is tracked either way).
  int stallLimit = 40;
  /// Subgradient step exponent α in t_k = L_m / k^α (paper: 0.95).
  double alpha = 0.95;
  /// Also decrease multipliers of satisfied conflict sets (full subgradient
  /// of Eq. 3 instead of Algorithm 1's increase-on-violation). Off by
  /// default to match the paper.
  bool bidirectionalMultipliers = false;
  /// Skip the final greedy conflict removal (used when quantifying raw LR
  /// convergence, e.g. the Fig. 6(b) objective comparison).
  bool skipConflictRemoval = false;
  /// Greedy refinement rounds after conflict removal: every pin tries to
  /// upgrade to its most profitable candidate that stays conflict-free.
  /// Complements the shrink-to-minimum step — shrinking repairs conflicts,
  /// re-expansion recovers the interval length the repair gave away. 0
  /// disables.
  int reexpandRounds = 2;
};

struct LrStats {
  int iterations = 0;        ///< subgradient iterations executed
  int bestViolations = 0;    ///< violations of the best pre-removal solution
  int removalRounds = 0;     ///< greedy conflict removal sweeps
};

/// Sort key of the maxGains greedy: non-increasing gain, ties toward
/// intervals covering more same-net pins, then by index for determinism.
struct LrSortKey {
  double gain;
  Index degree;
  CandIdx idx;
};

/// Reusable per-worker buffers for `solveLr`. Every solve fully
/// (re)initializes the entries it reads, so a scratch can serve panels of
/// any size back to back; reuse only saves the allocations. Buffers keep
/// their capacity across solves — `std::vector::assign`/`clear` never
/// shrink — which is the entire point of the arena.
struct LrScratch {
  std::vector<double> penalties;
  std::vector<double> lambda;
  std::vector<int> csCount;
  std::vector<ConflictIdx> touched;
  std::vector<LrSortKey> keys, dirtyKeys, mergeBuf;
  std::vector<char> dirtyFlag;
  std::vector<CandIdx> dirtyList;
  // maxGains selection double-buffer (current iterate and best-so-far).
  std::vector<CandIdx> curSel, curAssign, bestSel, bestAssign;
  std::vector<char> selFlag;
  // conflict-removal / re-expansion buffers
  std::vector<int> usage, freedWithin;
  std::vector<CandIdx> members;  ///< selected members of one conflict set

  /// Current capacity across all buffers, for the optimizer's arena gauge.
  [[nodiscard]] std::size_t footprintBytes() const CPR_NOALLOC;
};

/// Solves the compiled instance `k` with Lagrangian relaxation. Requires
/// profits and conflicts to have been filled before compilation. The
/// returned assignment is conflict-free (violations == 0) unless conflict
/// removal was skipped. `scratch` may be null (a local arena is used) or a
/// reused per-worker arena.
///
/// When `obs` is non-null the solver reports `lr.*` counters plus the
/// per-iteration trace series `lr.iter` (violations, best violations, λ L1
/// norm, and the current selection's objective per subgradient step).
[[nodiscard]] Assignment solveLr(const PanelKernel& k,
                                 const LrOptions& opts = {},
                                 LrStats* stats = nullptr,
                                 obs::Collector* obs = nullptr,
                                 LrScratch* scratch = nullptr,
                                 support::Deadline deadline = {}) CPR_HOT;

/// Convenience overload: compiles `p` into a temporary kernel and solves.
[[nodiscard]] Assignment solveLr(const Problem& p, const LrOptions& opts = {},
                                 LrStats* stats = nullptr,
                                 obs::Collector* obs = nullptr);

/// One invocation of Algorithm 1's maxGains greedy: selects one interval per
/// pin maximizing total gain (profit minus penalty), ignoring conflicts.
/// Exposed for tests and for the exact solver's incumbent heuristic.
[[nodiscard]] std::vector<Index> maxGains(const Problem& p,
                                          const std::vector<double>& gains);

}  // namespace cpr::core
