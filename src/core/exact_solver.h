/// \file exact_solver.h
/// Exact solver for the weighted interval assignment ILP (Formula 1).
///
/// This plays the role of the paper's commercial ILP solver: it returns a
/// provably optimal selection (one interval per pin, at most one interval
/// per conflict set) or the best incumbent when a node/time budget runs out.
///
/// Method: branch & bound over interval variables with a Lagrangian dual
/// bound. For multipliers λ >= 0 and per-interval penalty P_i = Σ_{m: i∈Cm}
/// λ_m, the value  Σ_j max_{i∈Sj} (f(I_i) - P_i / d_i)  +  Σ_m λ_m   is an
/// upper bound on Formula (1): splitting each interval's penalty across its
/// d_i covered pins relaxes the equality-coupled problem into independent
/// per-pin maximizations. Multipliers are tuned once at the root by
/// subgradient descent; branching fixes an interval from a violated conflict
/// set (or an inconsistently-chosen shared interval) to 1 or 0 and
/// propagates through the equality and conflict rows.
///
/// The hot path consumes a compiled `PanelKernel` and an optional
/// `ExactScratch` arena (trail, stamps, node pools, root-dual buffers); the
/// `Problem` overload compiles a kernel internally.
///
/// The generic LP-based branch & bound in `ilp/` solves the same model via
/// `buildIlpModel` (ilp_builder.h); tests cross-check the two and a brute
/// forcer on small instances. This specialized solver is the one that scales
/// far enough to trace the paper's Fig. 6 "ILP" curves.
#pragma once

#include <cstdint>

#include "core/lr_solver.h"
#include "core/panel_kernel.h"
#include "core/problem.h"
#include "obs/collector.h"
#include "support/deadline.h"
#include "support/hot_annotations.h"

namespace cpr::core {

struct ExactOptions {
  long maxNodes = 50'000'000;
  /// Wall-clock budget; unset (the default) never expires. Composes with the
  /// per-call deadline passed to `solveExact` — the sooner of the two wins.
  support::Deadline deadline;
  /// Root subgradient iterations used to tighten the dual bound.
  int rootDualIterations = 300;
  /// Subgradient step exponent (same schedule as the LR solver).
  double alpha = 0.95;
};

struct ExactStats {
  long nodes = 0;
  double rootUpperBound = 0.0;  ///< dual bound after root tuning
  double bestObjective = 0.0;
  bool optimal = false;
};

/// One trail entry of the B&B undo stack: either an interval status change
/// (`cand`) or a pin assignment (`pin`) — the strong types make the two
/// undo targets impossible to transpose.
struct ExactTrailOp {
  bool isStatus;
  CandIdx cand;
  PinIdx pin;
};

/// Reusable per-worker buffers for `solveExact`. Every solve fully
/// reinitializes the entries it reads (epoch stamps and trail included), so
/// one scratch serves panels of any size back to back; reuse only saves the
/// allocations. Embeds an `LrScratch` because the exact solver seeds its
/// incumbent from an internal LR run.
struct ExactScratch {
  // Root dual tuning.
  std::vector<double> term, lambda, penalty, bestPenalty;
  std::vector<CandIdx> rootChoice;
  // Search state with trail-based undo. The trail is a fixed-capacity stack
  // (`trail` sized once per solve, `trailLen` is the live top): an interval
  // status is recorded at most once per search path and a pin assignment at
  // most once, so numIntervals + numPins entries always suffice and the
  // B&B propagation never grows a container.
  std::vector<std::uint8_t> status;
  std::vector<CandIdx> assignedTo;
  std::vector<ExactTrailOp> trail;
  std::size_t trailLen = 0;
  std::vector<long> chosenStamp, csStamp;
  std::vector<int> csCount;
  // Node-local pools (safe to share across the recursion: no node reads
  // them after recursing into a child).
  std::vector<CandIdx> nodeChoice, nodeChosen;
  std::vector<PinIdx> activePins;
  std::vector<CandIdx> bestAssign;
  std::vector<char> selFlag;
  LrScratch lr;  ///< arena for the incumbent-seeding LR run

  /// Current capacity across all buffers, for the optimizer's arena gauge.
  [[nodiscard]] std::size_t footprintBytes() const CPR_NOALLOC;
};

/// Solves the compiled instance `k` exactly (profits and conflicts must have
/// been filled before compilation). The returned assignment has
/// violations == 0; `provedOptimal` reports whether the search completed
/// within its budget. `scratch` may be null (a local arena is used) or a
/// reused per-worker arena.
///
/// When `obs` is non-null the solver reports `exact.*` counters, the root
/// dual convergence series `exact.root` (bound per subgradient iteration),
/// and one `exact.panel` summary row (nodes, root bound, incumbent, gap).
/// `deadline` is an additional per-call budget (e.g. a panel sub-budget);
/// when it fires the best incumbent so far is returned, `provedOptimal` is
/// false, and `exact.timeout` is counted.
[[nodiscard]] Assignment solveExact(const PanelKernel& k,
                                    const ExactOptions& opts = {},
                                    ExactStats* stats = nullptr,
                                    obs::Collector* obs = nullptr,
                                    ExactScratch* scratch = nullptr,
                                    support::Deadline deadline = {}) CPR_HOT;

/// Convenience overload: compiles `p` into a temporary kernel and solves.
[[nodiscard]] Assignment solveExact(const Problem& p,
                                    const ExactOptions& opts = {},
                                    ExactStats* stats = nullptr,
                                    obs::Collector* obs = nullptr);

}  // namespace cpr::core
