#include "core/ilp_builder.h"

#include <cmath>
#include <string>

namespace cpr::core {

IlpBuild buildIlpModel(const Problem& p, bool pairwiseConflicts) {
  IlpBuild out;
  out.varOfInterval.reserve(p.intervals.size());
  for (std::size_t i = 0; i < p.intervals.size(); ++i) {
    out.varOfInterval.push_back(
        out.model.addBinary(p.weight(static_cast<Index>(i)),
                            "x" + std::to_string(i)));
  }
  // (1b): sum_{Ii in Sj} x_i = 1 for every accessible pin.
  for (const ProblemPin& pin : p.pins) {
    if (pin.intervals.empty()) continue;
    std::vector<ilp::Term> terms;
    terms.reserve(pin.intervals.size());
    for (Index i : pin.intervals)
      terms.push_back({out.varOfInterval[static_cast<std::size_t>(i)], 1.0});
    out.model.addConstraint(std::move(terms), ilp::Sense::Equal, 1.0);
  }
  if (!pairwiseConflicts) {
    // (1c): sum_{Ii in Cm} x_i <= 1 per conflict set.
    for (const ConflictSet& cs : p.conflicts) {
      std::vector<ilp::Term> terms;
      terms.reserve(cs.intervals.size());
      for (Index i : cs.intervals)
        terms.push_back({out.varOfInterval[static_cast<std::size_t>(i)], 1.0});
      out.model.addConstraint(std::move(terms), ilp::Sense::LessEqual, 1.0);
    }
  } else {
    // Quadratic pairwise encoding for the ablation bench.
    for (const ConflictSet& cs : p.conflicts) {
      for (std::size_t a = 0; a < cs.intervals.size(); ++a) {
        for (std::size_t b = a + 1; b < cs.intervals.size(); ++b) {
          out.model.addConstraint(
              {{out.varOfInterval[static_cast<std::size_t>(cs.intervals[a])],
                1.0},
               {out.varOfInterval[static_cast<std::size_t>(cs.intervals[b])],
                1.0}},
              ilp::Sense::LessEqual, 1.0);
        }
      }
    }
  }
  return out;
}

Assignment decodeIlpSolution(const Problem& p, const IlpBuild& build,
                             const std::vector<double>& x) {
  Assignment out;
  out.intervalOfPin.assign(p.pins.size(), geom::kInvalidIndex);
  for (std::size_t j = 0; j < p.pins.size(); ++j) {
    for (Index i : p.pins[j].intervals) {
      const auto var = static_cast<std::size_t>(
          build.varOfInterval[static_cast<std::size_t>(i)]);
      if (x[var] > 0.5) {
        out.intervalOfPin[j] = i;
        out.objective += p.profit[static_cast<std::size_t>(i)];
        break;
      }
    }
  }
  return out;
}

}  // namespace cpr::core
