#include "core/ilp_builder.h"

#include <cmath>
#include <string>

#include "support/contracts.h"

namespace cpr::core {

IlpBuild buildIlpModel(const PanelKernel& k, bool pairwiseConflicts) {
  IlpBuild out;
  const std::size_t nIv = k.numIntervals();
  out.varOfInterval.reserve(nIv);
  for (std::size_t i = 0; i < nIv; ++i) {
    out.varOfInterval.push_back(out.model.addBinary(
        k.weightOf(CandIdx{i}), "x" + std::to_string(i)));
  }
  // (1b): sum_{Ii in Sj} x_i = 1 for every accessible pin.
  for (std::size_t j = 0; j < k.numPins(); ++j) {
    const std::span<const CandIdx> cand = k.candidatesOf(PinIdx{j});
    if (cand.empty()) continue;
    std::vector<ilp::Term> terms;
    terms.reserve(cand.size());
    for (const CandIdx i : cand) {
      CPR_DCHECK(i.idx() < out.varOfInterval.size());
      terms.push_back({out.varOfInterval[i.idx()], 1.0});
    }
    out.model.addConstraint(std::move(terms), ilp::Sense::Equal, 1.0);
  }
  if (!pairwiseConflicts) {
    // (1c): sum_{Ii in Cm} x_i <= 1 per conflict set.
    for (std::size_t m = 0; m < k.numConflicts(); ++m) {
      const std::span<const CandIdx> members = k.membersOf(ConflictIdx{m});
      std::vector<ilp::Term> terms;
      terms.reserve(members.size());
      for (const CandIdx i : members) {
        CPR_DCHECK(i.idx() < out.varOfInterval.size());
        terms.push_back({out.varOfInterval[i.idx()], 1.0});
      }
      out.model.addConstraint(std::move(terms), ilp::Sense::LessEqual, 1.0);
    }
  } else {
    // Quadratic pairwise encoding for the ablation bench.
    for (std::size_t m = 0; m < k.numConflicts(); ++m) {
      const std::span<const CandIdx> members = k.membersOf(ConflictIdx{m});
      for (std::size_t a = 0; a < members.size(); ++a) {
        for (std::size_t b = a + 1; b < members.size(); ++b) {
          out.model.addConstraint(
              {{out.varOfInterval[members[a].idx()], 1.0},
               {out.varOfInterval[members[b].idx()], 1.0}},
              ilp::Sense::LessEqual, 1.0);
        }
      }
    }
  }
  return out;
}

IlpBuild buildIlpModel(const Problem& p, bool pairwiseConflicts) {
  return buildIlpModel(PanelKernel::compile(Problem(p)), pairwiseConflicts);
}

Assignment decodeIlpSolution(const PanelKernel& k, const IlpBuild& build,
                             const std::vector<double>& x) {
  Assignment out;
  const std::size_t nPins = k.numPins();
  // The solution vector must cover every variable the build created, and
  // the build must map every interval of this kernel: a mismatched pair
  // (kernel from one panel, build from another) would decode garbage.
  CPR_CHECK(build.varOfInterval.size() == k.numIntervals());
  out.intervalOfPin.assign(nPins, geom::kInvalidIndex);
  for (std::size_t j = 0; j < nPins; ++j) {
    for (const CandIdx i : k.candidatesOf(PinIdx{j})) {
      const auto var = std::size_t(build.varOfInterval[i.idx()]);
      CPR_DCHECK(var < x.size());
      if (x[var] > 0.5) {
        out.intervalOfPin[j] = i.value();
        out.objective += k.profitOf(i);
        break;
      }
    }
  }
  return out;
}

Assignment decodeIlpSolution(const Problem& p, const IlpBuild& build,
                             const std::vector<double>& x) {
  return decodeIlpSolution(PanelKernel::compile(Problem(p)), build, x);
}

}  // namespace cpr::core
