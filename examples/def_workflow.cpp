/// \file def_workflow.cpp
/// Interchange workflow: synthesize a design, persist it in the DEF subset,
/// reload it, verify the round trip, and run pin access optimization on the
/// reloaded copy — the flow a downstream user would follow to bring their
/// own designs into the optimizer.
///
///   $ ./def_workflow [path=/tmp/cpr_demo.def]
#include <cstdio>
#include <string>

#include "core/optimizer.h"
#include "gen/generator.h"
#include "lefdef/def_io.h"

int main(int argc, char** argv) {
  using namespace cpr;
  const std::string path = argc > 1 ? argv[1] : "/tmp/cpr_demo.def";

  gen::GenOptions o;
  o.name = "defdemo";
  o.seed = 5;
  o.width = 160;
  o.numRows = 4;
  o.pinDensity = 0.18;
  const db::Design original = gen::generate(o);
  lefdef::saveDef(original, path);
  std::printf("wrote %zu nets / %zu pins to %s\n", original.nets().size(),
              original.pins().size(), path.c_str());

  const db::Design loaded = lefdef::loadDef(path);
  if (!loaded.validate().empty()) {
    std::fprintf(stderr, "reloaded design failed validation:\n%s",
                 loaded.validate().c_str());
    return 1;
  }
  if (loaded.pins().size() != original.pins().size() ||
      loaded.nets().size() != original.nets().size()) {
    std::fprintf(stderr, "round trip lost design content\n");
    return 1;
  }
  std::printf("reloaded and validated %s (%zu nets, %zu pins)\n",
              loaded.name().c_str(), loaded.nets().size(),
              loaded.pins().size());

  const core::PinAccessPlan plan = core::optimizePinAccess(loaded);
  int assigned = 0;
  for (const core::PinRoute& r : plan.routes) assigned += r.valid() ? 1 : 0;
  std::printf("pin access optimization on the reloaded design: "
              "%d/%zu pins assigned, objective %.2f\n",
              assigned, plan.routes.size(), plan.objective);
  return plan.unassignedPins() == 0 ? 0 : 1;
}
