/// \file full_chip_route.cpp
/// Routes one benchmark design with all three schemes of the paper's Table 2
/// (sequential pin access planning, negotiation without pin access
/// optimization, and CPR) and prints the comparison. Optionally dumps the
/// design to a DEF-subset file for inspection.
///
///   $ ./full_chip_route [design=ecc] [out.def]
#include <cstdio>
#include <string>

#include "eval/metrics.h"
#include "gen/generator.h"
#include "lefdef/def_io.h"
#include "route/cpr.h"
#include "route/sequential_router.h"

int main(int argc, char** argv) {
  using namespace cpr;
  const std::string name = argc > 1 ? argv[1] : "ecc";
  const db::Design d = gen::makeSuiteDesign(gen::suiteSpec(name));
  std::printf("design %s: %zu nets, %zu pins, %d x %d grid "
              "(%d rows of %d M2 tracks)\n\n",
              d.name().c_str(), d.nets().size(), d.pins().size(), d.width(),
              d.gridHeight(), d.numRows(), d.tracksPerRow());
  if (argc > 2) {
    lefdef::saveDef(d, argv[2]);
    std::printf("wrote DEF subset to %s\n\n", argv[2]);
  }

  std::printf("%s\n", eval::tableHeader().c_str());

  const route::RoutingResult seq = route::routeSequential(d);
  std::printf("%s\n",
              eval::tableRow("seq [12]", eval::summarize(d, seq)).c_str());

  const route::RoutingResult nopao = route::routeNegotiated(d, nullptr);
  std::printf("%s\n",
              eval::tableRow("noPAO [21]", eval::summarize(d, nopao)).c_str());

  const route::CprResult cpr_ = route::routeCpr(d);
  std::printf("%s\n",
              eval::tableRow("CPR", eval::summarize(d, cpr_.routing,
                                                    cpr_.pinAccessSeconds))
                  .c_str());

  std::printf("\ncongested grids before rip-up & reroute: %ld (CPR) vs %ld "
              "(w/o pin access optimization) — %.1fx reduction\n",
              cpr_.routing.congestedGridsBeforeRrr(),
              nopao.congestedGridsBeforeRrr(),
              static_cast<double>(nopao.congestedGridsBeforeRrr()) /
                  std::max<long>(1, cpr_.routing.congestedGridsBeforeRrr()));
  return 0;
}
