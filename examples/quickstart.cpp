/// \file quickstart.cpp
/// Quickstart: build a small design by hand (the flavor of the paper's
/// Fig. 1: a few cells' worth of M1 pins and short nets), run concurrent pin
/// access optimization, inspect the chosen intervals, then route with CPR
/// and print the paper's quality metrics.
///
///   $ ./quickstart
#include <cstdio>

#include "eval/metrics.h"
#include "route/cpr.h"

int main() {
  using namespace cpr;

  // One standard-cell row: 48 columns, 10 M2 tracks. Three nets, seven pins
  // (pin shapes are M1 strips: one column wide, a few tracks tall).
  db::Design d("quickstart", /*width=*/48, /*numRows=*/1, /*tracksPerRow=*/10);
  const db::Index a = d.addNet("a");
  const db::Index b = d.addNet("b");
  const db::Index c = d.addNet("c");
  d.addPin("a1", a, {geom::Interval::point(8), geom::Interval{2, 5}});
  d.addPin("a2", a, {geom::Interval::point(2), geom::Interval{1, 4}});
  d.addPin("a3", a, {geom::Interval::point(30), geom::Interval{1, 4}});
  d.addPin("b1", b, {geom::Interval::point(14), geom::Interval{3, 6}});
  d.addPin("b2", b, {geom::Interval::point(26), geom::Interval{3, 6}});
  d.addPin("c1", c, {geom::Interval::point(20), geom::Interval{2, 5}});
  d.addPin("c2", c, {geom::Interval::point(40), geom::Interval{2, 5}});
  // A routing blockage on track 4 (pre-routed cell-internal metal).
  d.addBlockage(db::Layer::M2, {geom::Interval{16, 22}, geom::Interval{4, 4}});

  if (const std::string report = d.validate(); !report.empty()) {
    std::fprintf(stderr, "invalid design:\n%s", report.c_str());
    return 1;
  }

  // --- concurrent pin access optimization (Problem 1) ---
  const core::PinAccessPlan plan = core::optimizePinAccess(d);
  std::printf("pin access optimization: objective %.2f over %zu pins "
              "(%ld candidate intervals, %ld conflict sets)\n\n",
              plan.objective, d.pins().size(), plan.totalIntervals(),
              plan.totalConflicts());
  for (std::size_t p = 0; p < d.pins().size(); ++p) {
    const core::PinRoute& r = plan.routes[p];
    std::printf("  pin %-3s -> track %d, columns [%d, %d] (span %d)\n",
                d.pins()[p].name.c_str(), r.track, r.span.lo, r.span.hi,
                r.span.span());
  }

  // --- concurrent pin access routing (Section 4) ---
  const route::CprResult result = route::routeCpr(d);
  const eval::Metrics m = eval::summarize(d, result.routing,
                                          result.pinAccessSeconds);
  std::printf("\nrouting: %.1f%% routability, %ld vias, WL %ld, "
              "%.3fs total (%.3fs pin access)\n",
              m.routability, m.vias, m.wirelength, m.seconds,
              result.pinAccessSeconds);
  std::printf("congested grids before rip-up & reroute: %ld\n",
              result.routing.congestedGridsBeforeRrr());
  return 0;
}
