/// \file pin_access_anatomy.cpp
/// Anatomy of concurrent pin access optimization on one panel: prints the
/// candidate intervals the generator enumerates for each pin (Section 3.1),
/// the conflict sets the scanline detects (Section 3.2), and the solutions
/// found by the LR algorithm and the exact solver (Sections 3.3-3.4), both
/// invoked through the uniform `core::Solver` interface with an
/// `obs::Collector` gathering the work counters.
///
///   $ ./pin_access_anatomy [seed]
#include <cstdio>
#include <cstdlib>

#include "core/conflict.h"
#include "core/interval_gen.h"
#include "core/solver.h"
#include "db/panel.h"
#include "gen/generator.h"
#include "obs/names.h"

int main(int argc, char** argv) {
  using namespace cpr;
  gen::GenOptions o;
  o.seed = argc > 1 ? static_cast<std::uint64_t>(std::atol(argv[1])) : 42;
  o.width = 48;
  o.numRows = 1;
  o.pinDensity = 0.2;
  o.maxNetSpan = 24;
  o.maxNetRowSpread = 0;
  const db::Design d = gen::generate(o);

  core::Problem p = core::buildProblem(d, db::extractPanel(d, 0));
  core::detectConflicts(p);

  std::printf("panel 0 of '%s': %zu pins, %zu candidate intervals, "
              "%zu conflict sets\n\n",
              d.name().c_str(), p.pins.size(), p.intervals.size(),
              p.conflicts.size());

  std::printf("== candidate intervals per pin (Section 3.1) ==\n");
  for (const core::ProblemPin& pin : p.pins) {
    const db::Pin& dp = d.pin(pin.designPin);
    std::printf("pin %-6s (net %-4s, col %d, tracks [%d,%d]): %zu candidates\n",
                dp.name.c_str(), d.net(pin.net).name.c_str(), dp.shape.x.lo,
                dp.shape.y.lo, dp.shape.y.hi, pin.intervals.size());
    for (core::Index i : pin.intervals) {
      const core::AccessInterval& iv =
          p.intervals[static_cast<std::size_t>(i)];
      std::printf("    I%-3d track %d cols [%2d,%2d]%s%s covers %zu pin(s)\n",
                  i, iv.track, iv.span.lo, iv.span.hi,
                  iv.minimal ? " [minimum]" : "",
                  iv.pins.size() > 1 ? " [shared]" : "", iv.pins.size());
    }
  }

  std::printf("\n== conflict sets (Section 3.2, scanline maximal cliques) ==\n");
  for (std::size_t m = 0; m < p.conflicts.size(); ++m) {
    const core::ConflictSet& cs = p.conflicts[m];
    std::printf("C%-3zu track %d, common [%d,%d] (L=%d), members:", m,
                cs.track, cs.common.lo, cs.common.hi, cs.common.span());
    for (core::Index i : cs.intervals) std::printf(" I%d", i);
    std::printf("\n");
  }

  std::printf("\n== solving the weighted interval assignment ==\n");
  obs::Collector stats;
  const core::LrSolver lrSolver{{}};
  const core::Assignment lr = lrSolver.solve(p, &stats);
  std::printf("%-5s (Algorithm 2): objective %.3f after %ld iterations\n",
              lrSolver.name().data(), lr.objective,
              stats.counter(obs::names::kLrIterations));

  core::ExactOptions eo;
  eo.deadline = support::Deadline::after(10.0);
  const core::ExactSolver exactSolver{eo};
  const core::Assignment exact = exactSolver.solve(p, &stats);
  std::printf("%-5s (ILP B&B)   : objective %.3f, %ld nodes, %s\n",
              exactSolver.name().data(), exact.objective,
              stats.counter(obs::names::kExactNodes),
              exact.provedOptimal ? "proven optimal"
                                  : "budget-capped incumbent");
  std::printf("LR achieves %.2f%% of the ILP objective\n",
              100.0 * lr.objective / exact.objective);

  std::printf("\n== assignments (pin -> interval) ==\n");
  std::printf("%-8s %-22s %-22s\n", "pin", "LR", "ILP");
  for (std::size_t j = 0; j < p.pins.size(); ++j) {
    auto fmt = [&](core::Index i) -> std::string {
      if (i == geom::kInvalidIndex) return "(none)";
      const core::AccessInterval& iv =
          p.intervals[static_cast<std::size_t>(i)];
      char buf[64];
      std::snprintf(buf, sizeof(buf), "t%d [%d,%d]", iv.track, iv.span.lo,
                    iv.span.hi);
      return buf;
    };
    std::printf("%-8s %-22s %-22s\n",
                d.pin(p.pins[j].designPin).name.c_str(),
                fmt(lr.intervalOfPin[j]).c_str(),
                fmt(exact.intervalOfPin[j]).c_str());
  }
  return 0;
}
