#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "gen/generator.h"
#include "route/cpr.h"
#include "route/sequential_router.h"

namespace cpr::route {
namespace {

db::Design mediumDesign(std::uint64_t seed = 3) {
  gen::GenOptions o;
  o.seed = seed;
  o.width = 160;
  o.numRows = 6;
  o.pinDensity = 0.2;
  o.minPinsPerNet = 2;
  o.maxPinsPerNet = 4;
  o.minPinTracks = 2;
  o.maxPinTracks = 4;
  o.maxNetSpan = 40;
  o.m3Pitch = 3;
  o.blockagesPerRow = 4;
  return gen::generate(o);
}

void checkInvariants(const db::Design& d, const RoutingResult& r) {
  ASSERT_EQ(r.nets.size(), d.nets().size());
  for (const NetResult& nr : r.nets) {
    if (nr.clean) {
      EXPECT_TRUE(nr.routed);  // clean implies routed
    }
    if (nr.routed) {
      EXPECT_GE(nr.vias, 2);  // at least one V1 per pin of a 2+-pin net
      EXPECT_GE(nr.wirelength, 0);
    } else {
      EXPECT_EQ(nr.vias, 0);
      EXPECT_EQ(nr.wirelength, 0);
    }
  }
  EXPECT_GE(r.seconds, 0.0);
}

TEST(Integration, CprProducesMostlyCleanRouting) {
  const db::Design d = mediumDesign();
  const CprResult r = routeCpr(d);
  checkInvariants(d, r.routing);
  const eval::Metrics m = eval::summarize(d, r.routing, r.pinAccessSeconds);
  EXPECT_GT(m.routability, 90.0);
  EXPECT_EQ(r.plan.routes.size(), d.pins().size());
  EXPECT_EQ(r.plan.unassignedPins(), 0);
}

TEST(Integration, NoPaoRoutes) {
  const db::Design d = mediumDesign();
  const RoutingResult r = routeNegotiated(d, nullptr);
  checkInvariants(d, r);
  EXPECT_GT(eval::summarize(d, r).routability, 85.0);
}

TEST(Integration, SequentialRoutes) {
  const db::Design d = mediumDesign();
  const RoutingResult r = routeSequential(d);
  checkInvariants(d, r);
  EXPECT_GT(eval::summarize(d, r).routability, 85.0);
}

TEST(Integration, PinAccessOptimizationReducesInitialCongestion) {
  // The paper's Fig. 7(b) claim, at test scale: congested grids before
  // rip-up & reroute drop substantially with pin access optimization.
  const db::Design d = mediumDesign(5);
  const CprResult cpr_ = routeCpr(d);
  const RoutingResult nopao = routeNegotiated(d, nullptr);
  EXPECT_LT(cpr_.routing.congestedGridsBeforeRrr(),
            nopao.congestedGridsBeforeRrr());
}

TEST(Integration, PinAccessOptimizationReducesVias) {
  const db::Design d = mediumDesign(7);
  const CprResult cpr_ = routeCpr(d);
  const RoutingResult nopao = routeNegotiated(d, nullptr);
  const eval::Metrics mc = eval::summarize(d, cpr_.routing);
  const eval::Metrics mn = eval::summarize(d, nopao);
  EXPECT_LT(mc.vias, mn.vias);
}

TEST(Integration, ExactPinAccessAlsoRoutes) {
  // Small design so the exact solver budget stays reasonable.
  gen::GenOptions o;
  o.seed = 9;
  o.width = 60;
  o.numRows = 2;
  o.pinDensity = 0.15;
  o.maxNetSpan = 30;
  const db::Design d = gen::generate(o);
  CprOptions opts;
  opts.pinAccess.solve.method = core::Method::Exact;
  opts.pinAccess.solve.exact.maxNodes = 200000;
  const CprResult r = routeCpr(d, opts);
  checkInvariants(d, r.routing);
  EXPECT_GT(eval::summarize(d, r.routing).routability, 90.0);
}

TEST(Integration, DeterministicAcrossRuns) {
  const db::Design d = mediumDesign(11);
  const CprResult a = routeCpr(d);
  const CprResult b = routeCpr(d);
  const eval::Metrics ma = eval::summarize(d, a.routing);
  const eval::Metrics mb = eval::summarize(d, b.routing);
  EXPECT_EQ(ma.routedClean, mb.routedClean);
  EXPECT_EQ(ma.vias, mb.vias);
  EXPECT_EQ(ma.wirelength, mb.wirelength);
}

TEST(Integration, MetricsCountDirtyNetsAsUnrouted) {
  const db::Design d = mediumDesign(13);
  const RoutingResult r = routeNegotiated(d, nullptr);
  const eval::Metrics m = eval::summarize(d, r);
  int clean = 0;
  for (const NetResult& nr : r.nets) clean += nr.clean ? 1 : 0;
  EXPECT_EQ(m.routedClean, clean);
  EXPECT_DOUBLE_EQ(m.routability, 100.0 * clean / static_cast<int>(r.nets.size()));
  // WL mixes grid length for clean nets and HPWL for the rest: positive.
  EXPECT_GT(m.wirelength, 0);
}

}  // namespace
}  // namespace cpr::route
