#include <gtest/gtest.h>

#include <sstream>

#include "core/optimizer.h"
#include "gen/generator.h"
#include "lefdef/def_io.h"
#include "route/def_export.h"
#include "route/negotiation_router.h"
#include "viz/ascii.h"
#include "viz/svg.h"

namespace cpr::viz {
namespace {

db::Design smallDesign() {
  db::Design d("viz", 30, 1, 10);
  const db::Index a = d.addNet("A");
  const db::Index b = d.addNet("B");
  d.addPin("a1", a, {geom::Interval::point(4), geom::Interval{2, 4}});
  d.addPin("a2", a, {geom::Interval::point(16), geom::Interval{2, 4}});
  d.addPin("b1", b, {geom::Interval::point(9), geom::Interval{5, 7}});
  d.addPin("b2", b, {geom::Interval::point(22), geom::Interval{5, 7}});
  d.addBlockage(db::Layer::M2, {geom::Interval{0, 6}, geom::Interval{8, 8}});
  return d;
}

TEST(Svg, RendersDesignOnly) {
  const db::Design d = smallDesign();
  std::ostringstream os;
  renderSvg(d, nullptr, nullptr, os);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("a1"), std::string::npos);  // pin labels
  EXPECT_NE(svg.find("b2"), std::string::npos);
  // 4 pins + die + rows + blockage: at least 6 rects.
  std::size_t rects = 0;
  for (std::size_t p = svg.find("<rect"); p != std::string::npos;
       p = svg.find("<rect", p + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, 6u);
}

TEST(Svg, PlanAddsIntervalStrips) {
  const db::Design d = smallDesign();
  std::ostringstream without;
  renderSvg(d, nullptr, nullptr, without);
  const core::PinAccessPlan plan = core::optimizePinAccess(d);
  std::ostringstream with;
  renderSvg(d, &plan, nullptr, with);
  EXPECT_GT(with.str().size(), without.str().size());
}

TEST(Svg, GeometryAddsSegmentsAndVias) {
  const db::Design d = smallDesign();
  route::NegotiationOptions opts;
  opts.keepGeometry = true;
  const route::RoutingResult r = route::routeNegotiated(d, nullptr, opts);
  ASSERT_EQ(r.geometry.size(), d.nets().size());
  std::ostringstream os;
  renderSvg(d, nullptr, &r.geometry, os);
  EXPECT_NE(os.str().find("<circle"), std::string::npos);  // vias
}

TEST(Svg, WindowClipsOutput) {
  const db::Design d = smallDesign();
  SvgOptions narrow;
  narrow.window = geom::Rect{0, 0, 8, 9};
  std::ostringstream os;
  renderSvg(d, nullptr, nullptr, os, narrow);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("a1"), std::string::npos);   // inside window
  EXPECT_EQ(svg.find(">a2<"), std::string::npos);  // outside window
}

TEST(Ascii, RendersPinsBlockagesAndIntervals) {
  const db::Design d = smallDesign();
  const core::PinAccessPlan plan = core::optimizePinAccess(d);
  const std::string art = renderPanelAscii(d, 0, &plan);
  EXPECT_NE(art.find('a'), std::string::npos);  // net A pins
  EXPECT_NE(art.find('b'), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);  // blockage
  EXPECT_NE(art.find('='), std::string::npos);  // intervals
  // One line per track, each 4 (prefix) + 30 (width) + newline chars.
  EXPECT_EQ(art.size(), 10u * (4 + 30 + 1));
}

TEST(Ascii, NoPlanMeansNoIntervalGlyphs) {
  const db::Design d = smallDesign();
  const std::string art = renderPanelAscii(d, 0, nullptr);
  EXPECT_EQ(art.find('='), std::string::npos);
}

TEST(RoutedDef, EmitsRoutedStatements) {
  const db::Design d = smallDesign();
  route::NegotiationOptions opts;
  opts.keepGeometry = true;
  const route::RoutingResult r = route::routeNegotiated(d, nullptr, opts);
  std::ostringstream os;
  route::writeRoutedDef(d, r.geometry, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("+ ROUTED"), std::string::npos);
  EXPECT_NE(text.find("VIA V1"), std::string::npos);
  EXPECT_NE(text.find("M2 ("), std::string::npos);
}

TEST(RoutedDef, GeometryMatchesNetResults) {
  const db::Design d = smallDesign();
  route::NegotiationOptions opts;
  opts.keepGeometry = true;
  const route::RoutingResult r = route::routeNegotiated(d, nullptr, opts);
  for (std::size_t n = 0; n < r.nets.size(); ++n) {
    if (!r.nets[n].routed) continue;
    // Segment spans re-add to the wirelength (edges = span-1 per segment...
    // runs never overlap, so summing (span-1) over segments equals the
    // committed adjacency count).
    long wl = 0;
    for (const route::RouteSegment& s : r.geometry[n].segments)
      wl += s.span.span() - 1;
    EXPECT_EQ(wl, r.nets[n].wirelength) << "net " << n;
    EXPECT_EQ(r.geometry[n].vias.size(),
              static_cast<std::size_t>(r.nets[n].vias));
  }
}

}  // namespace
}  // namespace cpr::viz
