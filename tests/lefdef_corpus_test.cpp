/// \file lefdef_corpus_test.cpp
/// Malformed-DEF regression corpus + writer/reader round-trip idempotence.
///
/// The corpus under tests/corpus/def is the checked-in regression seed set
/// of the readdef fuzzer (fuzz/readdef_fuzzer.cpp): every malformed file
/// must raise `DefParseError` at an exact golden line with a golden message
/// fragment — a drifting line number means the parser's error reporting
/// regressed even if it still "throws something". Valid corpus files must
/// parse, validate, and round-trip through the writer to a fixed point
/// (write ∘ read is idempotent), and the same idempotence must hold for
/// every generated suite design.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/generator.h"
#include "lefdef/def_io.h"

namespace cpr::lefdef {
namespace {

std::string corpusPath(const std::string& file) {
  return std::string(CPR_TEST_CORPUS_DIR) + "/" + file;
}

struct MalformedCase {
  const char* file;
  int line;             ///< golden DefParseError::line()
  const char* message;  ///< golden substring of what()
};

// Keep in sync with tests/corpus/def. Every diagnostic the reader can emit
// appears at least once.
const std::vector<MalformedCase>& malformedCorpus() {
  static const std::vector<MalformedCase> kCases = {
      {"empty.def", 1, "unexpected end of file"},
      {"bad_keyword.def", 2, "expected 'DESIGN', got 'DESGIN'"},
      {"truncated_header.def", 4, "unexpected end of file"},
      {"nonzero_origin.def", 4, "DIEAREA must start at the origin"},
      {"bad_point.def", 4, "expected integer, got 'x'"},
      {"overflow_coord.def", 4,
       "integer out of range: '99999999999999999999'"},
      {"overflow_coord32.def", 5, "integer out of range: '4294967296'"},
      {"bad_rows_zero.def", 5, "non-positive row geometry"},
      {"rows_mismatch.def", 5, "DIEAREA height disagrees with ROWS"},
      {"rows_product_overflow.def", 5, "DIEAREA height disagrees with ROWS"},
      {"negative_width.def", 5, "non-positive die width"},
      {"negative_blockage_count.def", 6, "negative BLOCKAGES count"},
      {"unknown_layer.def", 7, "unknown layer 'M9'"},
      {"negative_net_count.def", 8, "negative NETS count"},
      {"pin_not_m1.def", 10, "pins must be on M1"},
      {"bad_net_body.def", 10, "expected '(' or ';' in net A"},
      {"unterminated_net.def", 11, "unexpected end of file"},
  };
  return kCases;
}

const std::vector<const char*>& validCorpus() {
  static const std::vector<const char*> kFiles = {"valid_minimal.def",
                                                  "valid_empty_nets.def"};
  return kFiles;
}

std::string serialize(const db::Design& d) {
  std::ostringstream os;
  writeDef(d, os);
  return os.str();
}

db::Design parse(const std::string& text) {
  std::istringstream is(text);
  return readDef(is);
}

TEST(DefCorpus, MalformedFilesFailAtGoldenLines) {
  ASSERT_GE(malformedCorpus().size(), 12u);
  for (const MalformedCase& c : malformedCorpus()) {
    SCOPED_TRACE(c.file);
    try {
      (void)loadDef(corpusPath(c.file));
      FAIL() << c.file << ": expected DefParseError";
    } catch (const DefParseError& e) {
      EXPECT_EQ(e.line(), c.line) << e.what();
      EXPECT_NE(std::string(e.what()).find(c.message), std::string::npos)
          << "message '" << e.what() << "' lacks '" << c.message << "'";
    }
  }
}

TEST(DefCorpus, ValidFilesParseValidateAndReachFixedPoint) {
  for (const char* file : validCorpus()) {
    SCOPED_TRACE(file);
    const db::Design d = loadDef(corpusPath(file));
    EXPECT_EQ(d.validate(), "");
    // write ∘ read idempotence: one round trip reaches the writer's fixed
    // point, a second must reproduce it byte for byte.
    const std::string once = serialize(d);
    const std::string twice = serialize(parse(once));
    EXPECT_EQ(once, twice);
  }
}

TEST(DefCorpus, SuiteDesignsRoundTripToFixedPoint) {
  // Every synthesizable example design (the --design table of cpr_route)
  // must survive write -> read -> write unchanged.
  for (const char* name : {"ecc", "efc", "ctl", "alu", "div", "top"}) {
    SCOPED_TRACE(name);
    const db::Design d = gen::makeSuiteDesign(gen::suiteSpec(name), 7);
    ASSERT_EQ(d.validate(), "");
    const std::string once = serialize(d);
    const db::Design back = parse(once);
    EXPECT_EQ(back.validate(), "");
    EXPECT_EQ(back.pins().size(), d.pins().size());
    EXPECT_EQ(once, serialize(back));
  }
}

}  // namespace
}  // namespace cpr::lefdef
