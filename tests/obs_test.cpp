#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/collector.h"
#include "obs/names.h"
#include "obs/report.h"

namespace cpr::obs {
namespace {

TEST(Collector, CountersAccumulateAndDefaultToZero) {
  Collector c;
  EXPECT_EQ(c.counter("never.touched"), 0);
  c.add("a.b");
  c.add("a.b", 4);
  EXPECT_EQ(c.counter("a.b"), 5);
}

TEST(Collector, GaugesAndNotesLastWriteWins) {
  Collector c;
  EXPECT_DOUBLE_EQ(c.gaugeOr("g", -1.0), -1.0);
  c.gauge("g", 1.5);
  c.gauge("g", 2.5);
  EXPECT_DOUBLE_EQ(c.gaugeOr("g", -1.0), 2.5);
  c.note("k", "first");
  c.note("k", "second");
  EXPECT_EQ(c.notes().at("k"), "second");
}

TEST(Collector, SeriesPrependSrcColumn) {
  Collector c(7);
  c.row("s", {"iter", "value"}, {1.0, 10.0});
  c.row("s", {"iter", "value"}, {2.0, 20.0});
  const Series& s = c.series().at("s");
  ASSERT_EQ(s.columns.size(), 3U);
  EXPECT_EQ(s.columns[0], "src");
  EXPECT_EQ(s.columns[1], "iter");
  ASSERT_EQ(s.rows.size(), 2U);
  EXPECT_DOUBLE_EQ(s.rows[0][0], 7.0);  // src id
  EXPECT_DOUBLE_EQ(s.rows[1][2], 20.0);
}

TEST(Collector, TimerNestingRecordsDepth) {
  Collector c;
  {
    ScopedTimer outer(&c, "outer");
    {
      ScopedTimer inner(&c, "inner");
      ScopedTimer innermost(&c, "innermost");
    }
    ScopedTimer sibling(&c, "sibling");
  }
  ASSERT_EQ(c.spans().size(), 4U);
  int depthOf[4] = {};
  for (const Span& s : c.spans()) {
    if (s.name == "outer") depthOf[0] = s.depth;
    if (s.name == "inner") depthOf[1] = s.depth;
    if (s.name == "innermost") depthOf[2] = s.depth;
    if (s.name == "sibling") depthOf[3] = s.depth;
  }
  EXPECT_EQ(depthOf[0], 0);
  EXPECT_EQ(depthOf[1], 1);
  EXPECT_EQ(depthOf[2], 2);
  EXPECT_EQ(depthOf[3], 1);
}

TEST(Collector, NullCollectorIsSafe) {
  ScopedTimer t(nullptr, "noop");
  add(nullptr, "x");
  gauge(nullptr, "x", 1.0);
  note(nullptr, "x", "y");
  row(nullptr, "x", {"a"}, {1.0});
}

TEST(Collector, MergeSumsCountersAndAppendsSeries) {
  Collector a(0);
  Collector b(1);
  a.add("n", 2);
  b.add("n", 3);
  a.row("s", {"v"}, {1.0});
  b.row("s", {"v"}, {2.0});
  b.gauge("g", 9.0);
  b.note("k", "v");
  a.merge(b);
  EXPECT_EQ(a.counter("n"), 5);
  const Series& s = a.series().at("s");
  ASSERT_EQ(s.rows.size(), 2U);
  EXPECT_DOUBLE_EQ(s.rows[0][0], 0.0);
  EXPECT_DOUBLE_EQ(s.rows[1][0], 1.0);
  EXPECT_DOUBLE_EQ(a.gaugeOr("g", 0.0), 9.0);
  EXPECT_EQ(a.notes().at("k"), "v");
}

TEST(Collector, ThreadedWorkersMergeDeterministically) {
  // The concurrency pattern used by the optimizer: one collector per worker,
  // merged in fixed order afterwards. The merged counters and series must be
  // independent of interleaving.
  constexpr int kWorkers = 8;
  auto runOnce = [] {
    std::vector<Collector> per;
    for (int w = 0; w < kWorkers; ++w) per.emplace_back(w);
    std::vector<std::thread> pool;
    pool.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      pool.emplace_back([&per, w] {
        for (int i = 0; i < 100 * (w + 1); ++i) per[w].add("work.items");
        per[w].row("work.trace", {"w"}, {static_cast<double>(w)});
      });
    }
    for (std::thread& t : pool) t.join();
    Collector total;
    for (const Collector& c : per) total.merge(c);
    return total;
  };
  const Collector a = runOnce();
  const Collector b = runOnce();
  EXPECT_EQ(a.counter("work.items"), 100 * kWorkers * (kWorkers + 1) / 2);
  EXPECT_EQ(a.counter("work.items"), b.counter("work.items"));
  ASSERT_EQ(a.series().at("work.trace").rows.size(), kWorkers);
  EXPECT_EQ(a.series().at("work.trace").rows,
            b.series().at("work.trace").rows);
  EXPECT_EQ(reportJson(a), reportJson(b));
}

TEST(Report, JsonGolden) {
  // Exact serialized form of a small collector: schema tag, sorted keys,
  // escaped strings. A format change must be a conscious schema bump.
  Collector c(0);
  c.note("tool", "cpr \"quoted\"\n");
  c.add("b.count", 2);
  c.add("a.count", 1);
  c.gauge("z.g", 1.5);
  c.row("it", {"k"}, {3.0});
  const std::string expected =
      "{\n"
      "  \"schema\": \"cpr.report.v1\",\n"
      "  \"notes\": {\n"
      "    \"tool\": \"cpr \\\"quoted\\\"\\n\"\n"
      "  },\n"
      "  \"counters\": {\n"
      "    \"a.count\": 1,\n"
      "    \"b.count\": 2\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"z.g\": 1.5\n"
      "  },\n"
      "  \"series\": {\n"
      "    \"it\": {\"columns\": [\"src\", \"k\"], \"rows\": [[0, 3]]}\n"
      "  },\n"
      "  \"phases\": []\n"
      "}\n";
  EXPECT_EQ(reportJson(c), expected);

  EXPECT_EQ(reportJson(Collector{}),
            "{\n"
            "  \"schema\": \"cpr.report.v1\",\n"
            "  \"notes\": {},\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"series\": {},\n"
            "  \"phases\": []\n"
            "}\n");
}

TEST(Report, ChromeTraceContainsSpansAndCounters) {
  Collector c(3);
  {
    ScopedTimer t(&c, "phase.a");
  }
  c.add("x.count", 4);
  const std::string trace = chromeTrace(c);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"phase.a\""), std::string::npos);
  EXPECT_NE(trace.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(trace.find("\"x.count\": 4"), std::string::npos);
}

TEST(Report, CanonicalNamesFollowConvention) {
  // Every canonical counter is dot-separated lower_snake_case with a known
  // layer prefix (the convention documented in DESIGN.md).
  using namespace names;
  const std::vector<std::string_view> all = {
      kGenIntervals,   kGenShared,         kGenBlockedPins, kConflictSets,
      kLrIterations,   kLrRemovalRounds,   kLrReexpandUpgrades,
      kExactNodes,     kExactNotProved,    kIlpNodes,       kIlpPivots,
      kIlpNotProved,   kPaoPanels,         kPaoIntervals,   kPaoConflicts,
      kPaoUnassigned,  kPaoFallbacks,      kPaoKernelBytes,
      kRouteRrrIterations,
      kRouteCongestedPreRrr, kRouteRipups, kRouteRetries,   kRouteSearches,
      kRoutePops,      kRouteDroppedSharing, kDrcViolations, kDrcLineEnd,
      kDrcViaSpacing,  kDrcDirtyNets};
  for (const std::string_view n : all) {
    ASSERT_FALSE(n.empty());
    EXPECT_NE(n.find('.'), std::string_view::npos) << n;
    for (const char ch : n) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
                  ch == '.' || ch == '_')
          << n;
    }
    const std::string_view layer = n.substr(0, n.find('.'));
    const bool known = layer == "gen" || layer == "conflict" || layer == "lr" ||
                       layer == "exact" || layer == "ilp" || layer == "pao" ||
                       layer == "route" || layer == "drc" || layer == "cli" ||
                       layer == "bench";
    EXPECT_TRUE(known) << n;
  }
}

}  // namespace
}  // namespace cpr::obs
