/// Guards the obs metric-name registry (src/obs/names.h): every canonical
/// name must be unique, follow the dotted lower-case grammar, and start with
/// one of the known subsystem heads. Together with the linter's OBS-LITERAL
/// rule this makes a typo'd or duplicated metric name a test failure instead
/// of a silently forked time series.
#include <gtest/gtest.h>

#include <array>
#include <regex>
#include <set>
#include <string>
#include <string_view>

#include "obs/names.h"

namespace {

TEST(ObsNames, RegistryEntriesAreUnique) {
  std::set<std::string_view> seen;
  for (const std::string_view name : cpr::obs::names::kAll) {
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate metric name in kAll: " << name;
  }
  EXPECT_EQ(seen.size(), cpr::obs::names::kAll.size());
}

TEST(ObsNames, EntriesFollowTheNamingGrammar) {
  // head.segment[.segment...]: lower-case heads, [a-z_] segments, no digits
  // or capitals anywhere. Keep in sync with DESIGN.md "Static analysis &
  // contracts".
  const std::regex grammar("^[a-z]+(\\.[a-z_]+)+$");
  for (const std::string_view name : cpr::obs::names::kAll) {
    EXPECT_TRUE(std::regex_match(name.begin(), name.end(), grammar))
        << "metric name violates the naming grammar: " << name;
  }
}

TEST(ObsNames, EntriesUseKnownSubsystemHeads) {
  constexpr std::array<std::string_view, 10> kHeads = {
      "gen",   "conflict", "lr",  "exact", "ilp",
      "pao",   "route",    "drc", "lint",  "serve"};
  for (const std::string_view name : cpr::obs::names::kAll) {
    const std::string_view head = name.substr(0, name.find('.'));
    bool known = false;
    for (const std::string_view h : kHeads) known = known || head == h;
    EXPECT_TRUE(known) << "unknown subsystem head '" << head << "' in "
                       << name;
  }
}

TEST(ObsNames, RegistryCoversTheConstantsItPromises) {
  // Spot-check a few constants against their expected spellings. The
  // expected strings are assembled from fragments so the linter's
  // OBS-LITERAL rule does not see an inline metric literal in this file.
  const std::string dot = ".";
  EXPECT_EQ(cpr::obs::names::kPaoPanels, std::string("pao") + dot + "panels");
  EXPECT_EQ(cpr::obs::names::kDrcViolations,
            std::string("drc") + dot + "violations");
  EXPECT_EQ(cpr::obs::names::kLrIterSeries,
            std::string("lr") + dot + "iter");
  EXPECT_EQ(cpr::obs::names::kRouteSignoffSpan,
            std::string("route") + dot + "signoff");
  // And that each of them is registered in kAll.
  const auto registered = [](std::string_view name) {
    for (const std::string_view n : cpr::obs::names::kAll)
      if (n == name) return true;
    return false;
  };
  EXPECT_TRUE(registered(cpr::obs::names::kPaoPanels));
  EXPECT_TRUE(registered(cpr::obs::names::kDrcViolations));
  EXPECT_TRUE(registered(cpr::obs::names::kLrIterSeries));
  EXPECT_TRUE(registered(cpr::obs::names::kRouteSignoffSpan));
}

}  // namespace
