/// \file serve_chaos_test.cpp
/// Chaos harness for the routing service (DESIGN.md §14).
///
/// An in-process Server is flooded with hundreds of pipelined jobs over a
/// handful of connections while faults are injected through the public
/// seams: a throwing pin access solver (ServerOptions::solverHook), a
/// pre-route hook that poisons selected jobs, corrupt DEF payloads, unknown
/// design names, and budgets that are already expired on arrival. The
/// daemon must never crash, every submitted id must get exactly one
/// terminal frame, queue-full rejections must surface as Cancelled, and a
/// clean job's digest must be bit-identical to running the same pipeline
/// directly — the service adds fault containment, not nondeterminism.
///
/// The flood size defaults to 200 jobs; CI's chaos job can raise it with
/// CPR_SERVE_CHAOS_JOBS.
#include <dirent.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.h"
#include "gen/generator.h"
#include "lefdef/def_io.h"
#include "obs/names.h"
#include "route/cpr.h"
#include "route/result.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "support/status.h"

namespace cpr::serve {
namespace {

// ---- fault injection ------------------------------------------------------

constexpr std::uint64_t kFaultSeed = 0xc0ffee123456789ULL;

/// splitmix64-style finalizer: faults are a pure function of the panel
/// index, so clean-job digests stay deterministic under any schedule.
std::uint64_t mix(std::uint64_t x) {
  x += kFaultSeed;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Throws on ~a quarter of all panels; healthy panels delegate to the real
/// LR solver. Injected through ServerOptions::solverHook, the same seam
/// production uses — the optimizer's degradation ladder absorbs the faults
/// and the job still completes (Degraded), which is exactly the containment
/// this harness is checking.
class ChaosSolver final : public core::Solver {
 public:
  using Solver::solve;
  [[nodiscard]] std::string_view name() const override { return "chaos"; }
  [[nodiscard]] core::Assignment solve(
      const core::PanelKernel& k, core::PanelScratch* scratch,
      obs::Collector* obs, support::Deadline deadline) const override {
    const int panel = obs ? obs->src() : 0;
    if ((mix(static_cast<std::uint64_t>(panel)) & 3U) == 0)
      throw std::runtime_error("injected panel fault");
    return inner_.solve(k, scratch, obs, deadline);
  }

 private:
  core::LrSolver inner_;
};

// ---- harness helpers ------------------------------------------------------

std::string uniqueSocketPath(const char* tag) {
  static std::atomic<int> n{0};
  return "/tmp/cpr_chaos_" + std::to_string(::getpid()) + "_" + tag +
         std::to_string(n.fetch_add(1)) + ".sock";
}

/// A design small enough that one job is a few milliseconds: the flood has
/// to outrun the workers to exercise admission control.
std::string tinyDefText() {
  gen::GenOptions o;
  o.seed = 11;
  o.width = 48;
  o.numRows = 4;
  o.pinDensity = 0.18;
  o.maxNetSpan = 12;
  std::ostringstream os;
  lefdef::writeDef(gen::generate(o), os);
  return os.str();
}

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xFU];
    v >>= 4;
  }
  return out;
}

/// What the service should produce for a clean job: the same pipeline, run
/// directly, faults and all.
std::string referenceDigest(const std::string& defText,
                            std::shared_ptr<const core::Solver> hook) {
  std::istringstream is(defText);
  const db::Design d = lefdef::readDef(is);
  route::CprOptions o;
  o.routing.threads = 1;
  o.pinAccess.threads = 1;
  o.pinAccess.solver = std::move(hook);
  const route::CprResult c = route::routeCpr(d, o);
  return hex16(route::resultDigest(c.routing));
}

RouteRequest defJob(std::string id, const std::string& defText,
                    Priority priority = Priority::Batch) {
  RouteRequest r;
  r.id = std::move(id);
  r.defText = defText;
  r.priority = priority;
  return r;
}

// ---- the flood ------------------------------------------------------------

TEST(ServeChaos, FloodWithInjectedFaultsLeavesEveryJobTerminal) {
  const std::string def = tinyDefText();
  auto chaos = std::make_shared<ChaosSolver>();
  const std::string wantDigest = referenceDigest(def, chaos);

  ServerOptions so;
  so.socketPath = uniqueSocketPath("flood");
  so.workers = 3;
  so.laneCapacity = 8;
  so.defaultBudgetSeconds = 20.0;
  so.maxJobSeconds = 30.0;
  so.maxRetries = 1;
  so.minRetryBudgetSeconds = 10.0;
  so.jobThreads = 1;
  so.solverHook = chaos;
  so.preRouteHook = [](const RouteRequest& r, int) {
    if (r.id.rfind("poison", 0) == 0)
      throw std::runtime_error("injected pre-route fault");
  };
  Server server(std::move(so));
  ASSERT_TRUE(server.start().isOk());

  int flood = 200;
  if (const char* env = std::getenv("CPR_SERVE_CHAOS_JOBS")) {
    const long asked = std::strtol(env, nullptr, 10);
    flood = std::max(flood, static_cast<int>(std::min(asked, 100000L)));
  }

  constexpr int kConns = 8;
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < kConns; ++c) {
    clients.push_back(std::make_unique<Client>());
    ASSERT_TRUE(clients.back()->connect(server.socketPath()).isOk());
  }

  // Five job flavours, round-robin over the connections. Expired-budget
  // jobs ride the interactive lane so both lanes see admission pressure.
  std::vector<std::vector<std::string>> idsOf(kConns);
  for (int k = 0; k < flood; ++k) {
    const std::string n = std::to_string(k);
    RouteRequest r;
    switch (k % 5) {
      case 0: r = defJob("clean" + n, def); break;
      case 1: r = defJob("corrupt" + n, "DESIGN garbage ((("); break;
      case 2:
        r = defJob("rush" + n, def, Priority::Interactive);
        r.budgetSeconds = 1e-4;  // expired on arrival -> TimedOut -> retry
        break;
      case 3: r = defJob("poison" + n, def); break;
      default:
        r.id = "ghost" + n;
        r.design = "no_such_design";
        break;
    }
    Client& cl = *clients[static_cast<std::size_t>(k % kConns)];
    ASSERT_TRUE(cl.sendLine(encodeRouteRequest(r)));
    idsOf[static_cast<std::size_t>(k % kConns)].push_back(r.id);
  }

  // Demultiplex every connection until each of its jobs is terminal. A
  // hang here IS the failure mode this harness exists to catch — a job the
  // daemon lost — so the test relies on ctest's timeout, not its own.
  std::map<std::string, JobResult> terminal;
  long retryingEvents = 0;
  for (int c = 0; c < kConns; ++c) {
    std::size_t open = idsOf[static_cast<std::size_t>(c)].size();
    std::string line;
    while (open > 0 &&
           clients[static_cast<std::size_t>(c)]->readLine(line)) {
      const Reply reply = decodeReply(line);
      ASSERT_NE(reply.kind, Reply::Kind::Invalid) << line;
      if (reply.kind == Reply::Kind::Event &&
          reply.event == obs::names::kServeEvRetrying) {
        ++retryingEvents;
      }
      if (reply.kind != Reply::Kind::Result) continue;
      ASSERT_EQ(terminal.count(reply.result.id), 0U)
          << "two terminal frames for " << reply.result.id;
      terminal[reply.result.id] = reply.result;
      --open;
    }
    EXPECT_EQ(open, 0U) << "connection " << c << " lost jobs";
  }

  // Every id terminal, each flavour contained as specified.
  long completed = 0;
  long failedJobs = 0;
  long rejected = 0;
  long cleanServed = 0;
  for (int k = 0; k < flood; ++k) {
    const std::string n = std::to_string(k);
    const char* head = (k % 5 == 0)   ? "clean"
                       : (k % 5 == 1) ? "corrupt"
                       : (k % 5 == 2) ? "rush"
                       : (k % 5 == 3) ? "poison"
                                      : "ghost";
    const auto it = terminal.find(head + n);
    ASSERT_NE(it, terminal.end()) << head << n << " never became terminal";
    const JobResult& r = it->second;
    if (r.event == obs::names::kServeEvRejected) {
      ++rejected;
      EXPECT_EQ(r.status, "cancelled") << r.id;
      EXPECT_NE(r.detail.find("queue full"), std::string::npos) << r.id;
      continue;
    }
    if (r.event == obs::names::kServeEvFailed) ++failedJobs;
    if (r.event == obs::names::kServeEvCompleted) ++completed;
    switch (k % 5) {
      case 0:  // clean: served, deterministic digest, first attempt
        ASSERT_EQ(r.event, obs::names::kServeEvCompleted) << r.detail;
        EXPECT_EQ(r.status, "degraded") << r.id;  // chaos solver faults
        EXPECT_EQ(r.digest, wantDigest) << r.id;
        EXPECT_EQ(r.attempts, 1) << r.id;
        EXPECT_GT(r.routability, 0.0) << r.id;
        ++cleanServed;
        break;
      case 1:  // corrupt DEF: parse error folded to Infeasible
        EXPECT_EQ(r.event, obs::names::kServeEvFailed) << r.id;
        EXPECT_EQ(r.status, "infeasible") << r.id;
        break;
      case 2:  // expired budget: retried once, then served
        EXPECT_EQ(r.event, obs::names::kServeEvCompleted) << r.detail;
        EXPECT_EQ(r.attempts, 2) << r.id;
        break;
      case 3:  // poisoned hook: contained as a Failed terminal
        EXPECT_EQ(r.event, obs::names::kServeEvFailed) << r.id;
        EXPECT_EQ(r.status, "failed") << r.id;
        EXPECT_NE(r.detail.find("injected pre-route fault"),
                  std::string::npos)
            << r.id;
        break;
      default:  // unknown suite name: Infeasible, not a crash
        EXPECT_EQ(r.event, obs::names::kServeEvFailed) << r.id;
        EXPECT_EQ(r.status, "infeasible") << r.id;
        break;
    }
  }
  EXPECT_EQ(completed + failedJobs + rejected, flood);
  EXPECT_GT(rejected, 0) << "flood never hit admission control";
  EXPECT_GT(cleanServed, 0) << "admission control served nothing";
  EXPECT_GT(retryingEvents, 0);

  // The daemon is still healthy: a fresh connection gets a pong, and the
  // server's own ledger matches the client-side tally.
  Client probe;
  ASSERT_TRUE(probe.connect(server.socketPath()).isOk());
  ASSERT_TRUE(probe.sendLine(encodePing()));
  std::string line;
  ASSERT_TRUE(probe.readLine(line));
  EXPECT_EQ(decodeReply(line).kind, Reply::Kind::Pong);

  const obs::Collector stats = server.statsSnapshot();
  EXPECT_EQ(stats.counter(obs::names::kServeJobsRejected), rejected);
  EXPECT_EQ(stats.counter(obs::names::kServeJobsCompleted), completed);
  EXPECT_EQ(stats.counter(obs::names::kServeJobsFailed), failedJobs);
  EXPECT_EQ(stats.counter(obs::names::kServeJobsAccepted),
            completed + failedJobs);
  EXPECT_EQ(stats.counter(obs::names::kServeJobsRetried), retryingEvents);

  server.stop();
}

// ---- targeted failure modes ----------------------------------------------

TEST(ServeChaos, MalformedFrameGetsAnErrorAndTheConnectionSurvives) {
  ServerOptions so;
  so.socketPath = uniqueSocketPath("frames");
  so.workers = 1;
  Server server(std::move(so));
  ASSERT_TRUE(server.start().isOk());

  Client c;
  ASSERT_TRUE(c.connect(server.socketPath()).isOk());
  ASSERT_TRUE(c.sendLine("this is not json"));
  std::string line;
  ASSERT_TRUE(c.readLine(line));
  const Reply err = decodeReply(line);
  EXPECT_EQ(err.kind, Reply::Kind::Error);
  EXPECT_NE(err.detail.find("bad frame"), std::string::npos);

  // Same connection, real work: one bad line must not kill the session.
  const auto out = runJob(c, defJob("after-garbage", tinyDefText()));
  ASSERT_TRUE(out.isOk()) << out.status().message();
  EXPECT_EQ(out.value().event, obs::names::kServeEvCompleted);
  EXPECT_EQ(out.value().status, "ok");
  server.stop();
}

TEST(ServeChaos, QueueFullRejectionsAreCancelledAndDeterministic) {
  ServerOptions so;
  so.socketPath = uniqueSocketPath("full");
  so.workers = 1;
  so.laneCapacity = 1;
  // Pin the only worker so the lane genuinely backs up.
  so.preRouteHook = [](const RouteRequest&, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  };
  Server server(std::move(so));
  ASSERT_TRUE(server.start().isOk());

  const std::string def = tinyDefText();
  Client c;
  ASSERT_TRUE(c.connect(server.socketPath()).isOk());
  constexpr int kJobs = 6;
  for (int k = 0; k < kJobs; ++k)
    ASSERT_TRUE(c.sendLine(encodeRouteRequest(defJob("q" + std::to_string(k), def))));

  int rejected = 0;
  int seenTerminal = 0;
  std::string line;
  while (seenTerminal < kJobs && c.readLine(line)) {
    const Reply r = decodeReply(line);
    if (r.kind != Reply::Kind::Result) continue;
    ++seenTerminal;
    if (r.result.event != obs::names::kServeEvRejected) continue;
    ++rejected;
    EXPECT_EQ(r.result.status, "cancelled") << r.result.id;
    EXPECT_NE(r.result.detail.find("queue full: batch lane"),
              std::string::npos)
        << r.result.detail;
  }
  EXPECT_EQ(seenTerminal, kJobs);
  // One job reaches the worker; the lane holds at most one more (whether
  // it does depends on when the worker pops). Everything else bounced.
  EXPECT_GE(rejected, kJobs - 2);
  EXPECT_LE(rejected, kJobs - 1);
  server.stop();
}

TEST(ServeChaos, StopDrainsQueuedJobsToCancelledTerminals) {
  ServerOptions so;
  so.socketPath = uniqueSocketPath("drain");
  so.workers = 1;
  so.laneCapacity = 8;
  so.preRouteHook = [](const RouteRequest&, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  Server server(std::move(so));
  ASSERT_TRUE(server.start().isOk());

  const std::string def = tinyDefText();
  Client c;
  ASSERT_TRUE(c.connect(server.socketPath()).isOk());
  constexpr int kJobs = 5;
  for (int k = 0; k < kJobs; ++k)
    ASSERT_TRUE(c.sendLine(encodeRouteRequest(defJob("d" + std::to_string(k), def))));
  // Let the first job reach the worker, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.stop();

  int completed = 0;
  int cancelled = 0;
  std::string line;
  while (c.readLine(line)) {
    const Reply r = decodeReply(line);
    if (r.kind != Reply::Kind::Result) continue;
    if (r.result.event == obs::names::kServeEvCompleted) {
      ++completed;
      continue;
    }
    EXPECT_EQ(r.result.event, obs::names::kServeEvRejected);
    EXPECT_EQ(r.result.status, "cancelled");
    EXPECT_NE(r.result.detail.find("shutting down"), std::string::npos);
    ++cancelled;
  }  // readLine returns false at EOF: stop() really closed the socket
  EXPECT_EQ(completed + cancelled, kJobs);
  // In-flight work finished; everything still queued was cancelled.
  EXPECT_GE(completed, 1);
  EXPECT_GE(cancelled, 1);
}

/// Open fds of this process, via /proc/self/fd (the tree is Linux-only).
int countOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

TEST(ServeChaos, ClosedConnectionsAreReapedNotLeaked) {
  ServerOptions so;
  so.socketPath = uniqueSocketPath("reap");
  so.workers = 1;
  Server server(std::move(so));
  ASSERT_TRUE(server.start().isOk());

  // Warm up one connect/disconnect cycle so anything allocated lazily on
  // the first connection is part of the baseline.
  {
    Client c;
    ASSERT_TRUE(c.connect(server.socketPath()).isOk());
    ASSERT_TRUE(c.sendLine(encodePing()));
    std::string line;
    ASSERT_TRUE(c.readLine(line));
  }
  const int before = countOpenFds();
  ASSERT_GT(before, 0);

  // A long-lived daemon serves many short-lived connections: each cycle
  // must not leave behind the server-side fd (or its reader thread).
  constexpr int kCycles = 40;
  for (int k = 0; k < kCycles; ++k) {
    Client c;
    ASSERT_TRUE(c.connect(server.socketPath()).isOk());
    ASSERT_TRUE(c.sendLine(encodePing()));
    std::string line;
    ASSERT_TRUE(c.readLine(line));
  }
  // Readers notice EOF asynchronously; poll briefly for the fds to drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int after = countOpenFds();
  while (after > before + 4 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    after = countOpenFds();
  }
  EXPECT_LE(after, before + 4)
      << "closed connections leaked fds (before=" << before << ")";
  server.stop();
}

TEST(ServeChaos, ClientVanishingMidJobDoesNotWedgeTheWorkers) {
  ServerOptions so;
  so.socketPath = uniqueSocketPath("vanish");
  so.workers = 1;
  so.sendTimeoutSeconds = 2.0;
  so.preRouteHook = [](const RouteRequest&, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  Server server(std::move(so));
  ASSERT_TRUE(server.start().isOk());

  const std::string def = tinyDefText();
  {
    Client goner;
    ASSERT_TRUE(goner.connect(server.socketPath()).isOk());
    ASSERT_TRUE(goner.sendLine(encodeRouteRequest(defJob("goner", def))));
  }  // gone before its frames come back: every send hits a dead socket

  // The single worker must shrug that off and serve a live client.
  Client alive;
  ASSERT_TRUE(alive.connect(server.socketPath()).isOk());
  const auto out = runJob(alive, defJob("alive", def));
  ASSERT_TRUE(out.isOk()) << out.status().message();
  EXPECT_EQ(out.value().event, obs::names::kServeEvCompleted);
  server.stop();
}

TEST(ServeChaos, ConcurrentStopDoesNotRaceDestruction) {
  // The daemon's shutdown shape: a signal thread initiates stop() while
  // the owning thread wakes, calls stop() itself, and then DESTROYS the
  // server the moment its call returns. The owner's stop() must therefore
  // block until the signal thread's teardown is completely done — under
  // ASan, a stop() that returns early here is a use-after-free.
  for (int round = 0; round < 3; ++round) {
    ServerOptions so;
    so.socketPath = uniqueSocketPath("cstop");
    so.workers = 2;
    so.preRouteHook = [](const RouteRequest&, int) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    };
    auto server = std::make_unique<Server>(std::move(so));
    ASSERT_TRUE(server->start().isOk());

    Client c;
    ASSERT_TRUE(c.connect(server->socketPath()).isOk());
    const std::string def = tinyDefText();
    for (int k = 0; k < 3; ++k)
      ASSERT_TRUE(c.sendLine(
          encodeRouteRequest(defJob("cs" + std::to_string(k), def))));

    std::thread sig([&server] { server->stop(); });
    server->waitForShutdownRequest();  // wakes once sig's stop() begins
    server->stop();                    // must block until teardown is done
    server.reset();                    // safe exactly because it blocked
    sig.join();
  }
}

TEST(ServeChaos, RequestShutdownWakesTheOwningThread) {
  ServerOptions so;
  so.socketPath = uniqueSocketPath("reqstop");
  so.workers = 1;
  Server server(std::move(so));
  ASSERT_TRUE(server.start().isOk());
  std::thread sig([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.requestShutdown();  // what the daemon's sigwait thread does
  });
  server.waitForShutdownRequest();
  server.stop();
  sig.join();
}

TEST(ServeChaos, TimedOutJobRetriesOnceAtLowerFidelity) {
  std::mutex mu;
  std::vector<std::pair<int, std::string>> attempts;
  ServerOptions so;
  so.socketPath = uniqueSocketPath("retry");
  so.workers = 1;
  so.maxRetries = 1;
  so.minRetryBudgetSeconds = 20.0;  // the retry must not time out again
  so.preRouteHook = [&](const RouteRequest& r, int attempt) {
    const std::unique_lock<std::mutex> lock(mu);
    attempts.emplace_back(attempt, r.pinAccess);
  };
  Server server(std::move(so));
  ASSERT_TRUE(server.start().isOk());

  Client c;
  ASSERT_TRUE(c.connect(server.socketPath()).isOk());
  RouteRequest r = defJob("rushed", tinyDefText());
  r.pinAccess = "ilp";
  r.budgetSeconds = 1e-4;  // expired before the worker even starts

  std::vector<Reply> events;
  const auto out = runJob(c, r, &events);
  ASSERT_TRUE(out.isOk()) << out.status().message();
  EXPECT_EQ(out.value().event, obs::names::kServeEvCompleted);
  EXPECT_EQ(out.value().attempts, 2);
  EXPECT_TRUE(out.value().status == "ok" || out.value().status == "degraded")
      << out.value().status;

  bool sawRetrying = false;
  for (const Reply& e : events)
    sawRetrying |= e.event == obs::names::kServeEvRetrying;
  EXPECT_TRUE(sawRetrying);

  // The second attempt dropped the expensive pin access method.
  const std::unique_lock<std::mutex> lock(mu);
  ASSERT_EQ(attempts.size(), 2U);
  EXPECT_EQ(attempts[0], (std::pair<int, std::string>{1, "ilp"}));
  EXPECT_EQ(attempts[1], (std::pair<int, std::string>{2, "lr"}));
  server.stop();
}

}  // namespace
}  // namespace cpr::serve
