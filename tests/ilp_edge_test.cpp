/// \file ilp_edge_test.cpp
/// Edge cases for the LP/ILP substrate: degeneracy, redundant rows, unit
/// bound handling, and time limits.
#include <gtest/gtest.h>

#include <random>

#include "ilp/branch_and_bound.h"
#include "ilp/simplex.h"

namespace cpr::ilp {
namespace {

TEST(SimplexEdge, HighlyDegenerateTiesDoNotCycle) {
  // Assignment-like LP where many bases share the same objective: the
  // anti-cycling fallback must still terminate at the optimum.
  Model m;
  constexpr int kN = 8;
  std::vector<Index> vars;
  for (int i = 0; i < kN; ++i) vars.push_back(m.addBinary(1.0));
  for (int i = 0; i < kN; ++i) {
    m.addConstraint({{vars[static_cast<std::size_t>(i)], 1.0},
                     {vars[static_cast<std::size_t>((i + 1) % kN)], 1.0}},
                    Sense::LessEqual, 1.0);
  }
  const LpResult r = solveLp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, kN / 2.0, 1e-6);  // fractional 0.5s
}

TEST(SimplexEdge, RedundantEqualityRows) {
  Model m;
  const Index a = m.addBinary(2.0);
  const Index b = m.addBinary(1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::Equal, 1.0);  // duplicate
  m.addConstraint({{a, 2.0}, {b, 2.0}}, Sense::Equal, 2.0);  // scaled dup
  const LpResult r = solveLp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
  EXPECT_NEAR(r.x[a], 1.0, 1e-6);
}

TEST(SimplexEdge, AllNegativeObjectiveStaysAtZero) {
  Model m;
  m.addBinary(-1.0);
  m.addBinary(-2.0);
  m.addConstraint({{0, 1.0}, {1, 1.0}}, Sense::LessEqual, 2.0);
  const LpResult r = solveLp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(SimplexEdge, ImplicitUnitBoundsMatchExplicitOnPartitioning) {
  // When every variable sits in an equality row with unit coefficients,
  // skipping the x<=1 rows must not change the optimum.
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> c(1, 9);
  for (int round = 0; round < 20; ++round) {
    Model m;
    for (int v = 0; v < 6; ++v) m.addBinary(c(rng));
    m.addConstraint({{0, 1.0}, {1, 1.0}, {2, 1.0}}, Sense::Equal, 1.0);
    m.addConstraint({{3, 1.0}, {4, 1.0}, {5, 1.0}}, Sense::Equal, 1.0);
    m.addConstraint({{1, 1.0}, {4, 1.0}}, Sense::LessEqual, 1.0);
    LpOptions with;
    LpOptions without;
    without.implicitUnitBounds = true;
    const LpResult a = solveLp(m, with);
    const LpResult b = solveLp(m, without);
    ASSERT_EQ(a.status, LpStatus::Optimal);
    ASSERT_EQ(b.status, LpStatus::Optimal);
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "round " << round;
  }
}

TEST(SimplexEdge, AllVariablesFixed) {
  Model m;
  const Index a = m.addBinary(3.0);
  const Index b = m.addBinary(2.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::LessEqual, 2.0);
  Fixing fix{1, 1};
  const LpResult r = solveLp(m, {}, &fix);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-9);
}

TEST(BnbEdge, TimeLimitReturnsBestEffort) {
  // A dense packing instance with an immediate incumbent; a zero-ish time
  // budget must stop the search and report TimeLimit.
  Model m;
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> c(1, 9);
  for (int v = 0; v < 26; ++v) m.addBinary(c(rng));
  for (int r = 0; r < 26; ++r) {
    std::vector<Term> terms;
    for (Index v = 0; v < 26; ++v) {
      if ((r + v) % 3 == 0) terms.push_back({v, 1.0});
    }
    m.addConstraint(std::move(terms), Sense::LessEqual, 2.0);
  }
  IlpOptions opts;
  opts.deadline = support::Deadline::after(0.0);
  const IlpResult r = solveBinaryIlp(m, opts);
  EXPECT_EQ(r.status, IlpStatus::TimeLimit);
}

TEST(BnbEdge, EmptyModelIsTriviallyOptimal) {
  Model m;
  const IlpResult r = solveBinaryIlp(m);
  EXPECT_EQ(r.status, IlpStatus::Optimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
}

TEST(BnbEdge, SingleVariableBranches) {
  Model m;
  const Index a = m.addBinary(5.0);
  m.addConstraint({{a, 2.0}}, Sense::LessEqual, 1.0);  // forces a = 0
  const IlpResult r = solveBinaryIlp(m);
  ASSERT_EQ(r.status, IlpStatus::Optimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
  EXPECT_NEAR(r.x[a], 0.0, 1e-9);
}

}  // namespace
}  // namespace cpr::ilp
