/// \file test_util.h
/// Shared helpers for core solver tests: tiny random instances and an
/// exhaustive reference solver for the weighted interval assignment ILP.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "core/conflict.h"
#include "core/interval_gen.h"
#include "db/panel.h"
#include "gen/generator.h"

namespace cpr::core::testutil {

/// Small single-row design; `density` controls pin-access competition.
inline db::Design tinyDesign(std::uint64_t seed, geom::Coord width = 24,
                             double density = 0.3) {
  gen::GenOptions o;
  o.name = "tiny";
  o.seed = seed;
  o.width = width;
  o.numRows = 1;
  o.pinDensity = density;
  o.maxNetSpan = width / 2;
  o.maxNetRowSpread = 0;
  o.blockagesPerRow = 0.5;
  o.maxBlockageLen = 4;
  return gen::generate(o);
}

/// Problem for row 0 with conflicts detected.
inline Problem panelProblem(const db::Design& d, const GenOptions& g = {}) {
  Problem p = buildProblem(d, db::extractPanel(d, 0), g);
  detectConflicts(p);
  return p;
}

/// Exhaustive optimum of Formula (1) by enumerating every per-pin choice
/// tuple (the product of candidate sets Sj). A tuple maps to the ILP point
/// x = indicator of the distinct chosen intervals; it is feasible iff every
/// chosen interval is chosen by *all* pins it covers (equality rows 1b) and
/// no conflict set holds two distinct chosen intervals (1c).
/// Returns nullopt when the search space exceeds `maxTuples`.
inline std::optional<double> bruteForceOptimum(const Problem& p,
                                               std::uint64_t maxTuples = 3'000'000) {
  std::vector<const ProblemPin*> active;
  std::uint64_t tuples = 1;
  for (const ProblemPin& pin : p.pins) {
    if (pin.intervals.empty()) continue;
    active.push_back(&pin);
    if (tuples > maxTuples / std::max<std::size_t>(1, pin.intervals.size()))
      return std::nullopt;
    tuples *= pin.intervals.size();
  }

  double best = -std::numeric_limits<double>::infinity();
  bool feasible = false;
  std::vector<Index> choice(active.size(), geom::kInvalidIndex);

  auto evaluate = [&]() {
    // Map pin -> chosen interval for the consistency check.
    std::vector<char> selected(p.intervals.size(), 0);
    double obj = 0.0;
    for (std::size_t k = 0; k < active.size(); ++k) {
      selected[static_cast<std::size_t>(choice[k])] = 1;
      obj += p.profit[static_cast<std::size_t>(choice[k])];
    }
    // (1b): a chosen interval must be chosen by every pin it covers.
    std::vector<Index> choiceOfPin(p.pins.size(), geom::kInvalidIndex);
    for (std::size_t k = 0; k < active.size(); ++k) {
      const auto pinIdx = static_cast<std::size_t>(active[k] - p.pins.data());
      choiceOfPin[pinIdx] = choice[k];
    }
    for (std::size_t i = 0; i < p.intervals.size(); ++i) {
      if (!selected[i]) continue;
      for (Index q : p.intervals[i].pins) {
        if (choiceOfPin[static_cast<std::size_t>(q)] != static_cast<Index>(i))
          return;
      }
    }
    // (1c)
    for (const ConflictSet& cs : p.conflicts) {
      int count = 0;
      for (Index i : cs.intervals) count += selected[static_cast<std::size_t>(i)];
      if (count > 1) return;
    }
    feasible = true;
    if (obj > best) best = obj;
  };

  auto rec = [&](auto&& self, std::size_t k) -> void {
    if (k == active.size()) {
      evaluate();
      return;
    }
    for (Index i : active[k]->intervals) {
      choice[k] = i;
      self(self, k + 1);
    }
  };
  rec(rec, 0);
  if (!feasible) return std::nullopt;
  return best;
}

/// Sum over pins of the minimum-interval profit — a lower bound every
/// solver must meet (each assigned interval covers its pin).
inline double minimalProfitBound(const Problem& p) {
  double sum = 0.0;
  for (const ProblemPin& pin : p.pins) {
    if (pin.minimalInterval != geom::kInvalidIndex)
      sum += p.profit[static_cast<std::size_t>(pin.minimalInterval)];
  }
  return sum;
}

}  // namespace cpr::core::testutil
