#include <gtest/gtest.h>

#include <random>

#include "ilp/model.h"
#include "ilp/simplex.h"

namespace cpr::ilp {
namespace {

TEST(Simplex, UnconstrainedBinariesSaturate) {
  Model m;
  m.addBinary(3.0);
  m.addBinary(-2.0);
  const LpResult r = solveLp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
  EXPECT_NEAR(r.x[0], 1.0, 1e-7);
  EXPECT_NEAR(r.x[1], 0.0, 1e-7);
}

TEST(Simplex, KnapsackRelaxationIsFractional) {
  // max 3a + 2b st 2a + 2b <= 3, 0<=x<=1 → a=1, b=0.5, obj 4.
  Model m;
  const Index a = m.addBinary(3.0);
  const Index b = m.addBinary(2.0);
  m.addConstraint({{a, 2.0}, {b, 2.0}}, Sense::LessEqual, 3.0);
  const LpResult r = solveLp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
  EXPECT_NEAR(r.x[a], 1.0, 1e-7);
  EXPECT_NEAR(r.x[b], 0.5, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // max a + 4b st a + b = 1 → b=1.
  Model m;
  const Index a = m.addBinary(1.0);
  const Index b = m.addBinary(4.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::Equal, 1.0);
  const LpResult r = solveLp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
  EXPECT_NEAR(r.x[b], 1.0, 1e-7);
}

TEST(Simplex, GreaterEqualConstraint) {
  // max -a - 2b st a + b >= 1 → a=1 (cheaper), obj -1.
  Model m;
  const Index a = m.addBinary(-1.0);
  const Index b = m.addBinary(-2.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::GreaterEqual, 1.0);
  const LpResult r = solveLp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  const Index a = m.addBinary(1.0);
  m.addConstraint({{a, 1.0}}, Sense::GreaterEqual, 2.0);  // a <= 1 < 2
  EXPECT_EQ(solveLp(m).status, LpStatus::Infeasible);
}

TEST(Simplex, ConflictingEqualitiesInfeasible) {
  Model m;
  const Index a = m.addBinary(1.0);
  const Index b = m.addBinary(1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::Equal, 2.0);
  EXPECT_EQ(solveLp(m).status, LpStatus::Infeasible);
}

TEST(Simplex, FixingSubstitutesVariables) {
  Model m;
  const Index a = m.addBinary(3.0);
  const Index b = m.addBinary(2.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::LessEqual, 1.0);
  Fixing fix(2, -1);
  fix[static_cast<std::size_t>(a)] = 0;
  const LpResult r = solveLp(m, {}, &fix);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[a], 0.0, 1e-9);
  EXPECT_NEAR(r.x[b], 1.0, 1e-7);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST(Simplex, FixingCanCreateInfeasibility) {
  Model m;
  const Index a = m.addBinary(1.0);
  const Index b = m.addBinary(1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::LessEqual, 1.0);
  Fixing fix(2, 1);  // both fixed to 1: 2 <= 1 fails
  EXPECT_EQ(solveLp(m, {}, &fix).status, LpStatus::Infeasible);
}

TEST(Simplex, SetPartitioningRelaxationIsTight) {
  // Pins {0,1}; intervals a(covers 0), b(covers 1), c(covers both);
  // conflicts force a,b,c pairwise exclusive → only c works: x_c = 1.
  Model m;
  const Index a = m.addBinary(1.0);
  const Index b = m.addBinary(1.0);
  const Index c = m.addBinary(1.5);
  m.addConstraint({{a, 1.0}, {c, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{b, 1.0}, {c, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::LessEqual, 1.0);
  const LpResult r = solveLp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[c], 1.0, 1e-7);
  EXPECT_NEAR(r.objective, 1.5, 1e-7);
}

/// Property sweep: random small LPs; simplex objective must (a) be
/// achieved by a feasible x, and (b) dominate every feasible binary point
/// (the relaxation upper-bounds the ILP).
class SimplexProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimplexProperty, BoundsRandomBinaryPoints) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> nDist(2, 6);
  std::uniform_int_distribution<int> cDist(-4, 6);
  std::uniform_int_distribution<int> senseDist(0, 2);

  for (int round = 0; round < 40; ++round) {
    Model m;
    const int n = nDist(rng);
    for (int v = 0; v < n; ++v) m.addBinary(cDist(rng));
    const int rows = nDist(rng) - 1;
    for (int r = 0; r < rows; ++r) {
      std::vector<Term> terms;
      for (Index v = 0; v < n; ++v) {
        const int coef = cDist(rng) % 3;
        if (coef != 0) terms.push_back({v, static_cast<double>(coef)});
      }
      if (terms.empty()) continue;
      // Keep rows satisfiable at x=0 to guarantee LP feasibility.
      m.addConstraint(std::move(terms),
                      senseDist(rng) == 0 ? Sense::LessEqual : Sense::LessEqual,
                      static_cast<double>(std::abs(cDist(rng))));
    }
    const LpResult lp = solveLp(m);
    ASSERT_EQ(lp.status, LpStatus::Optimal);
    ASSERT_TRUE(m.feasible(lp.x, 1e-6));
    EXPECT_NEAR(lp.objective, m.evaluate(lp.x), 1e-6);
    // Enumerate all binary points; none may beat the relaxation.
    for (int mask = 0; mask < (1 << n); ++mask) {
      std::vector<double> x(static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v) x[static_cast<std::size_t>(v)] = (mask >> v) & 1;
      if (m.feasible(x)) {
        EXPECT_LE(m.evaluate(x), lp.objective + 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProperty,
                         ::testing::Values(11u, 12u, 13u, 14u));

}  // namespace
}  // namespace cpr::ilp
