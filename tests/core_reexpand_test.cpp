/// \file core_reexpand_test.cpp
/// Unit tests for the LR solver's greedy re-expansion refinement: it must
/// only ever improve the objective, preserve the ILP's equality semantics
/// (no pin covered by two selected intervals), and respect conflict sets.
#include <gtest/gtest.h>

#include "core/conflict.h"
#include "core/lr_solver.h"
#include "test_util.h"

namespace cpr::core {
namespace {

namespace tu = testutil;

/// Hand-built problem where plain shrink-to-minimum demonstrably loses
/// length that re-expansion can win back: two diff-net pins on one track
/// whose long intervals conflict, but a second track offers pin 0 a long
/// conflict-free interval.
Problem twoTrackEscape() {
  Problem p;
  p.pins.resize(2);
  // Pin 0 (net 0): long on track 0 (id 0), minimal (id 1), long on track 1
  // (id 2).
  // Pin 1 (net 1): long on track 0 (id 3), minimal (id 4).
  p.intervals.resize(5);
  auto set = [&](Index i, Coord track, geom::Interval span, Index net,
                 std::vector<Index> pins, bool minimal) {
    AccessInterval& iv = p.intervals[static_cast<std::size_t>(i)];
    iv.track = track;
    iv.span = span;
    iv.conflictSpan = span;
    iv.net = net;
    iv.pins = std::move(pins);
    iv.minimal = minimal;
  };
  set(0, 0, {0, 15}, 0, {0}, false);
  set(1, 0, {4, 4}, 0, {0}, true);
  set(2, 1, {0, 15}, 0, {0}, false);
  set(3, 0, {6, 20}, 1, {1}, false);
  set(4, 0, {12, 12}, 1, {1}, true);
  p.pins[0].net = 0;
  p.pins[0].intervals = {0, 1, 2};
  p.pins[0].minimalInterval = 1;
  p.pins[1].net = 1;
  p.pins[1].intervals = {3, 4};
  p.pins[1].minimalInterval = 4;
  assignProfits(p);
  detectConflicts(p);
  return p;
}

TEST(Reexpand, RecoversLengthOnAlternateTrack) {
  const Problem p = twoTrackEscape();
  LrOptions with;
  with.reexpandRounds = 2;
  LrOptions without;
  without.reexpandRounds = 0;
  const Assignment base = solveLr(p, without);
  const Assignment refined = solveLr(p, with);
  EXPECT_GE(refined.objective, base.objective);
  // The refined solution must give both pins long intervals: pin 0 escapes
  // to track 1 (id 2), pin 1 keeps its long interval (id 3).
  EXPECT_EQ(refined.intervalOfPin[0], 2);
  EXPECT_EQ(refined.intervalOfPin[1], 3);
  EXPECT_EQ(refined.violations, 0);
}

TEST(Reexpand, NeverWorsensAndStaysLegal) {
  for (std::uint64_t seed = 300; seed < 312; ++seed) {
    const db::Design d = tu::tinyDesign(seed, 56, 0.5);
    const Problem p = tu::panelProblem(d);
    LrOptions with;
    with.reexpandRounds = 3;
    LrOptions without;
    without.reexpandRounds = 0;
    const Assignment base = solveLr(p, without);
    const Assignment refined = solveLr(p, with);
    EXPECT_GE(refined.objective, base.objective - 1e-9) << "seed " << seed;
    EXPECT_EQ(refined.violations, 0) << "seed " << seed;
    const AssignmentAudit audit_ = audit(p, refined);
    EXPECT_EQ(audit_.overlapsBetweenNets, 0) << "seed " << seed;
    EXPECT_EQ(audit_.unassignedPins, 0) << "seed " << seed;
    EXPECT_TRUE(audit_.eachPinCovered) << "seed " << seed;
  }
}

TEST(Reexpand, PreservesIlpEqualitySemantics) {
  // After refinement, no pin may be covered by a *different* selected
  // interval than its own — the property whose violation once inflated the
  // objective beyond the true ILP optimum.
  for (std::uint64_t seed = 320; seed < 330; ++seed) {
    const db::Design d = tu::tinyDesign(seed, 48, 0.45);
    const Problem p = tu::panelProblem(d);
    const Assignment a = solveLr(p);
    std::vector<char> selected(p.intervals.size(), 0);
    for (Index i : a.intervalOfPin) {
      if (i != geom::kInvalidIndex) selected[static_cast<std::size_t>(i)] = 1;
    }
    for (std::size_t i = 0; i < p.intervals.size(); ++i) {
      if (!selected[i]) continue;
      for (Index q : p.intervals[i].pins) {
        EXPECT_EQ(a.intervalOfPin[static_cast<std::size_t>(q)],
                  static_cast<Index>(i))
            << "pin " << q << " covered by selected interval " << i
            << " but assigned elsewhere (seed " << seed << ")";
      }
    }
  }
}

TEST(Reexpand, StaysAtOrBelowExactOptimum) {
  for (std::uint64_t seed = 340; seed < 348; ++seed) {
    const db::Design d = tu::tinyDesign(seed, 24, 0.3);
    GenOptions g;
    g.maxExtent = 4;
    const Problem p = tu::panelProblem(d, g);
    const std::optional<double> ref = tu::bruteForceOptimum(p);
    if (!ref) continue;
    const Assignment lr = solveLr(p);
    EXPECT_LE(lr.objective, *ref + 1e-6) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cpr::core
