#include <gtest/gtest.h>

#include "core/lr_solver.h"
#include "test_util.h"

namespace cpr::core {
namespace {

namespace tu = testutil;

TEST(MaxGains, PicksHighestGainPerPin) {
  // Two pins of different nets; pin 0 has intervals {0 (gain 5), 1 (gain 2)},
  // pin 1 has {2 (gain 3)}.
  Problem p;
  p.pins.resize(2);
  p.pins[0].intervals = {0, 1};
  p.pins[0].minimalInterval = 1;
  p.pins[1].intervals = {2};
  p.pins[1].minimalInterval = 2;
  p.intervals.resize(3);
  p.intervals[0].pins = {0};
  p.intervals[1].pins = {0};
  p.intervals[2].pins = {1};
  p.profit = {5.0, 2.0, 3.0};
  const std::vector<Index> sel = maxGains(p, {5.0, 2.0, 3.0});
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_NE(std::find(sel.begin(), sel.end(), 0), sel.end());
  EXPECT_NE(std::find(sel.begin(), sel.end(), 2), sel.end());
}

TEST(MaxGains, SharedIntervalAssignsAllItsPins) {
  // One shared interval (gain counts twice) beats two singles.
  Problem p;
  p.pins.resize(2);
  p.pins[0].intervals = {0, 2};
  p.pins[0].minimalInterval = 0;
  p.pins[1].intervals = {1, 2};
  p.pins[1].minimalInterval = 1;
  p.intervals.resize(3);
  p.intervals[0].pins = {0};
  p.intervals[1].pins = {1};
  p.intervals[2].pins = {0, 1};
  p.profit = {1.0, 1.0, 1.5};
  // gains use weight = degree * profit → shared gain 3.0.
  const std::vector<Index> sel = maxGains(p, {1.0, 1.0, 3.0});
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], 2);
}

TEST(MaxGains, SkipsIntervalWhosePinIsTaken) {
  // Descending gains: 0 (pin A), 1 (pin A again, must skip), 2 (pin B).
  Problem p;
  p.pins.resize(2);
  p.pins[0].intervals = {0, 1};
  p.pins[0].minimalInterval = 1;
  p.pins[1].intervals = {2};
  p.pins[1].minimalInterval = 2;
  p.intervals.resize(3);
  p.intervals[0].pins = {0};
  p.intervals[1].pins = {0};
  p.intervals[2].pins = {1};
  p.profit = {9.0, 8.0, 1.0};
  const std::vector<Index> sel = maxGains(p, {9.0, 8.0, 1.0});
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 0);
  EXPECT_EQ(sel[1], 2);
}

TEST(LrSolver, ConflictFreeOnGeneratedPanels) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const db::Design d = tu::tinyDesign(seed, 40, 0.4);
    const Problem p = tu::panelProblem(d);
    const Assignment a = solveLr(p);
    EXPECT_EQ(a.violations, 0) << "seed " << seed;
    const AssignmentAudit audit_ = audit(p, a);
    EXPECT_EQ(audit_.overlapsBetweenNets, 0) << "seed " << seed;
    EXPECT_EQ(audit_.unassignedPins, 0) << "seed " << seed;
    EXPECT_TRUE(audit_.eachPinCovered) << "seed " << seed;
    EXPECT_NEAR(audit_.objective, a.objective, 1e-9);
    EXPECT_GE(a.objective, tu::minimalProfitBound(p) - 1e-9) << "seed " << seed;
  }
}

TEST(LrSolver, RespectsIterationBound) {
  const db::Design d = tu::tinyDesign(3, 40, 0.5);
  const Problem p = tu::panelProblem(d);
  LrOptions opts;
  opts.maxIterations = 5;
  LrStats stats;
  const Assignment a = solveLr(p, opts, &stats);
  EXPECT_LE(stats.iterations, 5);
  EXPECT_EQ(a.violations, 0);  // conflict removal still cleans up
}

TEST(LrSolver, SkipConflictRemovalMayLeaveViolations) {
  // With a single iteration and no cleanup, dense instances keep conflicts.
  const db::Design d = tu::tinyDesign(5, 40, 0.6);
  const Problem p = tu::panelProblem(d);
  LrOptions opts;
  opts.maxIterations = 1;
  opts.skipConflictRemoval = true;
  const Assignment a = solveLr(p, opts);
  const AssignmentAudit audit_ = audit(p, a);
  EXPECT_EQ(audit_.unassignedPins, 0);  // every pin still assigned
  // violations is the count under the conflict-set definition; the direct
  // geometric audit must agree about whether any conflict exists.
  EXPECT_EQ(a.violations > 0, audit_.overlapsBetweenNets > 0);
}

TEST(LrSolver, BidirectionalMultipliersStayValid) {
  const db::Design d = tu::tinyDesign(7, 48, 0.5);
  const Problem p = tu::panelProblem(d);
  LrOptions opts;
  opts.bidirectionalMultipliers = true;
  const Assignment a = solveLr(p, opts);
  EXPECT_EQ(a.violations, 0);
  EXPECT_EQ(audit(p, a).overlapsBetweenNets, 0);
}

TEST(LrSolver, ObjectiveImprovesOnAllMinimalBaseline) {
  // On a sparse panel LR should beat the trivial all-minimal solution.
  const db::Design d = tu::tinyDesign(11, 60, 0.15);
  const Problem p = tu::panelProblem(d);
  const Assignment a = solveLr(p);
  EXPECT_GT(a.objective, tu::minimalProfitBound(p) + 1e-6);
}

/// Parameterized seed sweep at higher density: LR must always produce a
/// legal (conflict-free, fully assigned) solution.
class LrProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LrProperty, AlwaysLegal) {
  const db::Design d = tu::tinyDesign(GetParam(), 64, 0.55);
  const Problem p = tu::panelProblem(d);
  const Assignment a = solveLr(p);
  EXPECT_EQ(a.violations, 0);
  const AssignmentAudit audit_ = audit(p, a);
  EXPECT_EQ(audit_.overlapsBetweenNets, 0);
  EXPECT_EQ(audit_.unassignedPins, 0);
  EXPECT_TRUE(audit_.eachPinCovered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LrProperty,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace cpr::core
