#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "route/engine.h"

namespace cpr::route {
namespace {

using db::Design;
using geom::Interval;
using geom::Rect;

Design twoNetDesign() {
  Design d("eng", 30, 1, 10);
  const db::Index a = d.addNet("A");
  const db::Index b = d.addNet("B");
  d.addPin("a1", a, Rect{Interval::point(4), Interval{2, 4}});
  d.addPin("a2", a, Rect{Interval::point(20), Interval{2, 4}});
  d.addPin("b1", b, Rect{Interval::point(9), Interval{6, 8}});
  d.addPin("b2", b, Rect{Interval::point(25), Interval{6, 8}});
  return d;
}

TEST(RouteEngine, RoutesSimpleNet) {
  const Design d = twoNetDesign();
  RouteEngine eng(d, nullptr, 8);
  ASSERT_TRUE(eng.routeNet(0, {}));
  const auto& st = eng.state(0);
  EXPECT_TRUE(st.routed);
  EXPECT_FALSE(st.nodes.empty());
  EXPECT_GE(st.wirelength, 16);  // at least the pin-to-pin distance
  // Both pins hooked up: at least 2 V1 vias.
  int v1 = 0;
  for (const ViaSite& v : st.vias) v1 += v.level == 1 ? 1 : 0;
  EXPECT_EQ(v1, 2);
}

TEST(RouteEngine, CommitsOccupancyAndRipsCleanly) {
  const Design d = twoNetDesign();
  RouteEngine eng(d, nullptr, 8);
  RoutingGrid& g = eng.grid();
  ASSERT_TRUE(eng.routeNet(0, {}));
  long occupied = 0;
  for (int id = 0; id < g.numNodes(); ++id) occupied += g.occupancy(id);
  EXPECT_EQ(occupied, static_cast<long>(eng.state(0).nodes.size()));
  eng.ripNet(0);
  occupied = 0;
  for (int id = 0; id < g.numNodes(); ++id) occupied += g.occupancy(id);
  EXPECT_EQ(occupied, 0);
  EXPECT_FALSE(eng.state(0).routed);
}

TEST(RouteEngine, LineEndExtensionsCommitted) {
  const Design d = twoNetDesign();
  RouteEngine eng(d, nullptr, 8, /*lineEndExtension=*/1);
  ASSERT_TRUE(eng.routeNet(0, {}));
  // The M2 runs must be extended: for every maximal M2 run of the committed
  // metal there is no way to tell extension cells apart, but the run through
  // pin a1 (x=4) must reach beyond the leftmost path column by one.
  const RoutingGrid& g = eng.grid();
  geom::Coord minX = 1000;
  for (int id : eng.state(0).nodes) {
    const Node n = g.node(id);
    if (n.layer == RLayer::M2) minX = std::min(minX, n.x);
  }
  EXPECT_LE(minX, 3);  // at least one column left of pin a1's column
}

TEST(RouteEngine, NoExtensionWhenDisabled) {
  const Design d = twoNetDesign();
  RouteEngine ext(d, nullptr, 8, 1);
  RouteEngine noExt(d, nullptr, 8, 0);
  ASSERT_TRUE(ext.routeNet(0, {}));
  ASSERT_TRUE(noExt.routeNet(0, {}));
  EXPECT_GT(ext.state(0).nodes.size(), noExt.state(0).nodes.size());
}

TEST(RouteEngine, PlanIntervalsBecomePartialRoutes) {
  const Design d = twoNetDesign();
  core::PinAccessPlan plan;
  plan.routes.assign(d.pins().size(), core::PinRoute{});
  plan.routes[0] = core::PinRoute{3, Interval{2, 12}};   // a1
  plan.routes[1] = core::PinRoute{3, Interval{14, 22}};  // a2
  RouteEngine eng(d, &plan, 8);
  ASSERT_TRUE(eng.routeNet(0, {}));
  const auto& st = eng.state(0);
  // Metal on track 3 covering the pins' columns must be present.
  const RoutingGrid& g = eng.grid();
  bool onTrack3 = false;
  for (int id : st.nodes) {
    const Node n = g.node(id);
    if (n.layer == RLayer::M2 && n.y == 3 && n.x >= 2 && n.x <= 22)
      onTrack3 = true;
  }
  EXPECT_TRUE(onTrack3);
}

TEST(RouteEngine, IntervalTrimDropsUnusedTail) {
  const Design d = twoNetDesign();
  core::PinAccessPlan plan;
  plan.routes.assign(d.pins().size(), core::PinRoute{});
  // a1's interval stretches far left of anything useful.
  plan.routes[0] = core::PinRoute{3, Interval{0, 12}};
  plan.routes[1] = core::PinRoute{3, Interval{14, 22}};
  RouteEngine eng(d, &plan, 8);
  ASSERT_TRUE(eng.routeNet(0, {}));
  const RoutingGrid& g = eng.grid();
  // Columns 0..2 of track 3 are an unused tail (pin is at 4, connector goes
  // right); after trimming plus at most one extension cell nothing should
  // remain at column 0 or 1.
  int tail = 0;
  for (int id : eng.state(0).nodes) {
    const Node n = g.node(id);
    if (n.layer == RLayer::M2 && n.y == 3 && n.x <= 1) ++tail;
  }
  EXPECT_EQ(tail, 0);
}

TEST(RouteEngine, FailsGracefullyWhenWalledIn) {
  Design d("boxed", 30, 1, 10);
  const db::Index a = d.addNet("A");
  d.addPin("a1", a, Rect{Interval::point(4), Interval{4, 4}});
  d.addPin("a2", a, Rect{Interval::point(20), Interval{4, 4}});
  // Wall every layer between the pins.
  d.addBlockage(db::Layer::M2, Rect{Interval{10, 11}, Interval{0, 9}});
  d.addBlockage(db::Layer::M3, Rect{Interval{10, 11}, Interval{0, 9}});
  RouteEngine eng(d, nullptr, 30);
  EXPECT_FALSE(eng.routeNet(0, {}));
  EXPECT_FALSE(eng.state(0).routed);
  // Nothing committed on failure.
  const RoutingGrid& g = eng.grid();
  for (int id = 0; id < g.numNodes(); ++id) EXPECT_EQ(g.occupancy(id), 0);
}

TEST(RouteEngine, WirelengthCountsAdjacentPairs) {
  Design d("wl", 30, 1, 10);
  const db::Index a = d.addNet("A");
  d.addPin("a1", a, Rect{Interval::point(5), Interval{4, 4}});
  d.addPin("a2", a, Rect{Interval::point(10), Interval{4, 4}});
  RouteEngine eng(d, nullptr, 8, /*lineEndExtension=*/0);
  ASSERT_TRUE(eng.routeNet(0, {}));
  // Straight run 5..10 on track 4: 6 nodes, 5 edges.
  EXPECT_EQ(eng.state(0).wirelength, 5);
}

}  // namespace
}  // namespace cpr::route
