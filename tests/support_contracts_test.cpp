/// Exercises the contract macros of support/contracts.h across both build
/// flavors, and the promise that a violated contract is Status-returning at
/// the non-throwing Solver::trySolve panel boundary.
///
/// Build-flavor matrix (see the contracts.h header comment):
///   - without NDEBUG: CPR_CHECK and CPR_DCHECK abort with the expression
///     and file:line (death tests below);
///   - with NDEBUG: CPR_DCHECK compiles to a type-checked no-op (the
///     side-effect counter test) and CPR_CHECK throws ContractViolation,
///     which trySolve converts to StatusCode::Failed.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <utility>

#include "core/panel_kernel.h"
#include "core/problem.h"
#include "core/solver.h"
#include "obs/collector.h"
#include "support/contracts.h"
#include "support/deadline.h"
#include "support/status.h"

namespace {

using cpr::support::ContractViolation;

TEST(Contracts, PassingChecksAreQuiet) {
  CPR_CHECK(2 + 2 == 4);
  CPR_DCHECK(1 < 2);
  SUCCEED();
}

TEST(ContractsDeathTest, CheckFailureReportsExpressionAndLocation) {
#if defined(NDEBUG)
  try {
    CPR_CHECK(2 + 2 == 5);
    FAIL() << "CPR_CHECK(false) must not fall through";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CPR_CHECK"), std::string::npos) << what;
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("support_contracts_test"), std::string::npos) << what;
  }
#else
  EXPECT_DEATH(CPR_CHECK(2 + 2 == 5), "CPR_CHECK failed: 2 \\+ 2 == 5");
#endif
}

TEST(ContractsDeathTest, DcheckFailureIsFatalInDebugBuilds) {
#if defined(NDEBUG)
  GTEST_SKIP() << "CPR_DCHECK is compiled out under NDEBUG";
#else
  EXPECT_DEATH(CPR_DCHECK(1 == 2), "CPR_DCHECK failed: 1 == 2");
#endif
}

TEST(Contracts, DcheckIsStrippedButStillTypeCheckedUnderNdebug) {
  int evaluations = 0;
  const auto bump = [&evaluations]() {
    ++evaluations;
    return true;
  };
  CPR_DCHECK(bump());
#if defined(NDEBUG)
  // The expression must stay a real, type-checked expression (so stripped
  // contracts cannot rot) yet generate no evaluation.
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

TEST(ContractsDeathTest, KernelCsrIndexOutOfRangeIsCaughtInDebugBuilds) {
#if defined(NDEBUG)
  GTEST_SKIP() << "CPR_DCHECK bounds guards are compiled out under NDEBUG";
#else
  // An empty problem compiles to a kernel with zero pins; any candidate
  // lookup is out of range and must trip the CSR bounds contract.
  cpr::core::Problem p;
  const cpr::core::PanelKernel k =
      cpr::core::PanelKernel::compile(std::move(p));
  ASSERT_EQ(k.numPins(), 0u);
  EXPECT_DEATH(static_cast<void>(k.candidatesOf(cpr::core::PinIdx{0})),
               "CPR_DCHECK failed");
#endif
}

/// A solver whose solve() violates a contract, standing in for index-math
/// corruption detected mid-solve in an NDEBUG build.
class ViolatingSolver final : public cpr::core::Solver {
 public:
  using Solver::solve;
  [[nodiscard]] std::string_view name() const override { return "violating"; }
  [[nodiscard]] cpr::core::Assignment solve(
      const cpr::core::PanelKernel& /*k*/,
      cpr::core::PanelScratch* /*scratch*/ = nullptr,
      cpr::obs::Collector* /*obs*/ = nullptr,
      cpr::support::Deadline /*deadline*/ = {}) const override {
    throw ContractViolation(
        "CPR_CHECK failed: simulated contract violation mid-solve");
  }
};

TEST(Contracts, ViolationIsStatusReturningAtTheTrySolveBoundary) {
  cpr::core::Problem p;
  const cpr::core::PanelKernel k =
      cpr::core::PanelKernel::compile(std::move(p));
  const ViolatingSolver s;
  const cpr::support::Outcome<cpr::core::Assignment> out = s.trySolve(k);
  EXPECT_EQ(out.code(), cpr::support::StatusCode::Failed);
  EXPECT_TRUE(out.status().isFailure());
  EXPECT_NE(out.status().message().find("simulated contract violation"),
            std::string::npos)
      << out.status().toString();
}

}  // namespace
