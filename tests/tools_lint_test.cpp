/// Drives tools/lint (cpr_lint) over the fixture corpus in
/// tests/lint_corpus/. Each fixture is self-describing:
///
///   line 1: `// lint-as: <virtual repo path>` — the path the file is linted
///           as, so path-scoped rules (THROW-BOUNDARY, DEADLINE-RAW,
///           CONTRACT-COVERAGE, HEADER-HYGIENE) can be exercised without
///           placing fixtures inside src/;
///   line 2: `// lint-expect: RULE@LINE ...` or `// lint-expect: none`.
///
/// The test asserts the linter reports exactly the expected rule IDs at the
/// expected lines — no more, no fewer — and separately checks the
/// suppression-directive semantics and the lexer's comment/string immunity.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.h"

namespace {

namespace fs = std::filesystem;
using cpr::lint::Diagnostic;

struct Fixture {
  std::string name;    // file name inside the corpus directory
  std::string lintAs;  // virtual repo-relative path the file is linted as
  std::vector<std::pair<std::string, int>> expected;  // (rule, line)
  std::string source;
  bool parsed = false;
};

Fixture loadFixture(const fs::path& path) {
  Fixture fx;
  fx.name = path.filename().string();
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  fx.source = buf.str();

  std::istringstream lines(fx.source);
  std::string asLine;
  std::string expectLine;
  std::getline(lines, asLine);
  std::getline(lines, expectLine);
  const std::string kAs = "// lint-as: ";
  const std::string kExpect = "// lint-expect: ";
  if (asLine.rfind(kAs, 0) != 0 || expectLine.rfind(kExpect, 0) != 0)
    return fx;  // parsed stays false; reported by the test body
  fx.lintAs = asLine.substr(kAs.size());

  std::istringstream specs(expectLine.substr(kExpect.size()));
  std::string spec;
  while (specs >> spec) {
    if (spec == "none") break;
    const std::size_t at = spec.find('@');
    if (at == std::string::npos) return fx;
    fx.expected.emplace_back(spec.substr(0, at),
                             std::stoi(spec.substr(at + 1)));
  }
  fx.parsed = true;
  return fx;
}

std::vector<Fixture> loadCorpus() {
  std::vector<Fixture> out;
  for (const auto& entry : fs::directory_iterator(CPR_LINT_CORPUS_DIR)) {
    if (!entry.is_regular_file()) continue;
    out.push_back(loadFixture(entry.path()));
  }
  std::sort(out.begin(), out.end(),
            [](const Fixture& a, const Fixture& b) { return a.name < b.name; });
  return out;
}

std::vector<std::pair<std::string, int>> found(const std::string& lintAs,
                                               const std::string& source) {
  std::vector<std::pair<std::string, int>> out;
  for (const Diagnostic& d : cpr::lint::lintSource(lintAs, source))
    out.emplace_back(d.rule, d.line);
  std::sort(out.begin(), out.end());
  return out;
}

std::string describe(const std::vector<std::pair<std::string, int>>& v) {
  std::ostringstream os;
  for (const auto& [rule, line] : v) os << rule << "@" << line << " ";
  return v.empty() ? std::string("<none>") : os.str();
}

TEST(ToolsLint, CorpusFixturesProduceExactlyTheExpectedDiagnostics) {
  const std::vector<Fixture> corpus = loadCorpus();
  ASSERT_FALSE(corpus.empty())
      << "no fixtures under " << CPR_LINT_CORPUS_DIR;
  for (const Fixture& fx : corpus) {
    ASSERT_TRUE(fx.parsed)
        << fx.name << ": missing or malformed lint-as / lint-expect header";
    std::vector<std::pair<std::string, int>> expected = fx.expected;
    std::sort(expected.begin(), expected.end());
    const auto actual = found(fx.lintAs, fx.source);
    EXPECT_EQ(actual, expected)
        << fx.name << " (linted as " << fx.lintAs << ")\n  expected: "
        << describe(expected) << "\n  actual:   " << describe(actual);
  }
}

TEST(ToolsLint, CorpusCoversEveryRuleWithABadAndAGoodFixture) {
  const std::vector<Fixture> corpus = loadCorpus();
  std::set<std::string> expectedRules;
  std::size_t cleanFixtures = 0;
  for (const Fixture& fx : corpus) {
    if (fx.expected.empty()) ++cleanFixtures;
    for (const auto& e : fx.expected) expectedRules.insert(e.first);
  }
  for (const cpr::lint::RuleInfo& info : cpr::lint::ruleTable()) {
    EXPECT_TRUE(expectedRules.count(std::string(info.id)))
        << "no bad fixture exercises rule " << info.id;
  }
  EXPECT_GE(cleanFixtures, cpr::lint::ruleTable().size())
      << "expected at least one clean (good) fixture per rule";
}

TEST(ToolsLint, RuleTableIsSortedAndDocumented) {
  const auto& table = cpr::lint::ruleTable();
  ASSERT_GE(table.size(), 6u);
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_FALSE(table[i].id.empty());
    EXPECT_FALSE(table[i].summary.empty()) << table[i].id;
    if (i > 0) {
      EXPECT_LT(table[i - 1].id, table[i].id);
    }
  }
}

// The banned identifiers below live inside string literals of *this* file,
// so the repo-wide lint run tokenizes them as strings and stays clean; the
// lintSource call under test sees them as real identifiers.
TEST(ToolsLint, AllowDirectiveCoversItsOwnLineAndTheNextOnly) {
  const std::string src =
      "#include <cstdlib>\n"                // 1
      "// cpr-lint: allow(BANNED-FN)\n"     // 2
      "int a = atoi(\"1\");\n"              // 3: suppressed (next line)
      "int b = atoi(\"2\");\n";             // 4: out of the window
  const auto actual = found("src/viz/example.cpp", src);
  const std::vector<std::pair<std::string, int>> expected = {
      {"BANNED-FN", 4}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

TEST(ToolsLint, TrailingAllowDirectiveSuppressesItsOwnLine) {
  const std::string src =
      "#include <cstdlib>\n"
      "int a = atoi(\"1\");  // cpr-lint: allow(BANNED-FN)\n";
  EXPECT_TRUE(found("src/viz/example.cpp", src).empty());
}

TEST(ToolsLint, AllowDirectiveOnlySuppressesTheNamedRules) {
  const std::string src =
      "#include <cstdlib>\n"                 // 1
      "// cpr-lint: allow(HEADER-HYGIENE)\n" // 2
      "int a = atoi(\"1\");\n";              // 3: wrong rule named
  const auto actual = found("src/viz/example.cpp", src);
  // The mismatched directive suppresses nothing, so both the original
  // diagnostic and an ALLOW-UNUSED for the stale directive surface.
  const std::vector<std::pair<std::string, int>> expected = {
      {"ALLOW-UNUSED", 2}, {"BANNED-FN", 3}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

TEST(ToolsLint, CommentsStringsAndRawStringsNeverFire) {
  const std::string src =
      "// endl sprintf atoi in a line comment\n"
      "/* rand srand strtok in a block comment */\n"
      "const char* s = R\"(gets endl sprintf)\";\n"
      "const char* t = \"atoi\";\n";
  EXPECT_TRUE(found("src/viz/example.cpp", src).empty());
}

TEST(ToolsLint, LexerTracksLinesAcrossBlockCommentsAndRawStrings) {
  const std::string src =
      "/* a block comment\n"
      "   spanning three\n"
      "   lines */\n"
      "const char* s = R\"(raw\n"
      "string)\";\n"
      "int a = atoi(s);\n";  // line 6
  const auto actual = found("src/viz/example.cpp", src);
  const std::vector<std::pair<std::string, int>> expected = {
      {"BANNED-FN", 6}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

}  // namespace
