/// Drives tools/lint (cpr_lint) over the fixture corpus in
/// tests/lint_corpus/. Two fixture shapes, both self-describing:
///
/// Single-file fixtures:
///   line 1: `// lint-as: <virtual repo path>` — the path the file is linted
///           as, so path-scoped rules (THROW-BOUNDARY, DEADLINE-RAW,
///           CONTRACT-COVERAGE, HEADER-HYGIENE, INDEX-CAST) can be
///           exercised without placing fixtures inside src/;
///   line 2: `// lint-expect: RULE@LINE ...` or `// lint-expect: none`.
///
/// Multi-file (tree) fixtures, for the architecture-graph rules
/// (LAYER-VIOLATION / LAYER-CYCLE / DEAD-HEADER):
///   line 1: `// lint-tree`
///   line 2: `// lint-expect: ...` with LINE numbers counted on the
///           *physical* fixture file, so expectations stay greppable;
///   then repeated `// lint-file: <virtual path>` markers, each opening a
///   virtual file whose content runs to the next marker. The whole set is
///   linted together with the real repo manifest (CPR_LINT_LAYERS_FILE).
///
/// The test asserts the linter reports exactly the expected rule IDs at the
/// expected lines — no more, no fewer — and separately checks the
/// suppression-directive semantics, the lexer's comment/string immunity,
/// the declaration-level IR, and the layer-manifest parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/arch.h"
#include "lint/concurrency.h"
#include "lint/hotpath.h"
#include "lint/ir.h"
#include "lint/lexer.h"
#include "lint/lint.h"

namespace {

namespace fs = std::filesystem;
using cpr::lint::Diagnostic;

struct Fixture {
  std::string name;    // file name inside the corpus directory
  bool isTree = false;
  std::string lintAs;  // single-file: virtual repo-relative path
  std::vector<std::pair<std::string, int>> expected;  // (rule, line)
  std::string source;  // single-file: whole fixture text
  // Tree fixtures: the virtual files plus each one's first physical line,
  // for mapping diagnostics back onto the fixture file.
  std::vector<cpr::lint::SourceFile> files;
  std::vector<int> fileStartLine;
  bool parsed = false;
};

bool parseExpectations(const std::string& expectLine, Fixture& fx) {
  const std::string kExpect = "// lint-expect: ";
  if (expectLine.rfind(kExpect, 0) != 0) return false;
  std::istringstream specs(expectLine.substr(kExpect.size()));
  std::string spec;
  while (specs >> spec) {
    if (spec == "none") break;
    const std::size_t at = spec.find('@');
    if (at == std::string::npos) return false;
    fx.expected.emplace_back(spec.substr(0, at),
                             std::stoi(spec.substr(at + 1)));
  }
  return true;
}

Fixture loadFixture(const fs::path& path) {
  Fixture fx;
  fx.name = path.filename().string();
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  fx.source = buf.str();

  std::istringstream lines(fx.source);
  std::string firstLine;
  std::string expectLine;
  std::getline(lines, firstLine);
  std::getline(lines, expectLine);

  if (firstLine == "// lint-tree") {
    fx.isTree = true;
    if (!parseExpectations(expectLine, fx)) return fx;
    const std::string kFile = "// lint-file: ";
    std::string line;
    int lineNo = 2;
    while (std::getline(lines, line)) {
      ++lineNo;
      if (line.rfind(kFile, 0) == 0) {
        fx.files.push_back(
            cpr::lint::SourceFile{line.substr(kFile.size()), {}});
        fx.fileStartLine.push_back(lineNo + 1);
      } else if (!fx.files.empty()) {
        fx.files.back().source += line + "\n";
      }
    }
    fx.parsed = !fx.files.empty();
    return fx;
  }

  const std::string kAs = "// lint-as: ";
  if (firstLine.rfind(kAs, 0) != 0) return fx;
  fx.lintAs = firstLine.substr(kAs.size());
  if (!parseExpectations(expectLine, fx)) return fx;
  fx.parsed = true;
  return fx;
}

std::vector<Fixture> loadCorpus() {
  std::vector<Fixture> out;
  for (const auto& entry : fs::directory_iterator(CPR_LINT_CORPUS_DIR)) {
    if (!entry.is_regular_file()) continue;
    out.push_back(loadFixture(entry.path()));
  }
  std::sort(out.begin(), out.end(),
            [](const Fixture& a, const Fixture& b) { return a.name < b.name; });
  return out;
}

const cpr::lint::LayerManifest& repoManifest() {
  static const cpr::lint::LayerManifest m = [] {
    cpr::lint::LayerManifest out;
    std::string error;
    if (!cpr::lint::loadLayerManifest(CPR_LINT_LAYERS_FILE, out, error)) {
      ADD_FAILURE() << "cannot load layer manifest: " << error;
    }
    return out;
  }();
  return m;
}

std::vector<std::pair<std::string, int>> found(const std::string& lintAs,
                                               const std::string& source) {
  std::vector<std::pair<std::string, int>> out;
  for (const Diagnostic& d : cpr::lint::lintSource(lintAs, source))
    out.emplace_back(d.rule, d.line);
  std::sort(out.begin(), out.end());
  return out;
}

/// Tree fixture run: lints the virtual file set with the repo manifest and
/// maps every diagnostic's line back to the physical fixture line.
std::vector<std::pair<std::string, int>> foundTree(const Fixture& fx) {
  std::vector<std::pair<std::string, int>> out;
  for (const Diagnostic& d :
       cpr::lint::lintFiles(fx.files, &repoManifest())) {
    int phys = -1;
    for (std::size_t i = 0; i < fx.files.size(); ++i) {
      if (fx.files[i].relPath == d.file)
        phys = fx.fileStartLine[i] + d.line - 1;
    }
    EXPECT_NE(phys, -1) << fx.name << ": diagnostic names unknown file "
                        << d.file;
    out.emplace_back(d.rule, phys);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string describe(const std::vector<std::pair<std::string, int>>& v) {
  std::ostringstream os;
  for (const auto& [rule, line] : v) os << rule << "@" << line << " ";
  return v.empty() ? std::string("<none>") : os.str();
}

TEST(ToolsLint, CorpusFixturesProduceExactlyTheExpectedDiagnostics) {
  const std::vector<Fixture> corpus = loadCorpus();
  ASSERT_FALSE(corpus.empty())
      << "no fixtures under " << CPR_LINT_CORPUS_DIR;
  for (const Fixture& fx : corpus) {
    ASSERT_TRUE(fx.parsed)
        << fx.name << ": missing or malformed fixture header";
    std::vector<std::pair<std::string, int>> expected = fx.expected;
    std::sort(expected.begin(), expected.end());
    const auto actual =
        fx.isTree ? foundTree(fx) : found(fx.lintAs, fx.source);
    EXPECT_EQ(actual, expected)
        << fx.name << "\n  expected: " << describe(expected)
        << "\n  actual:   " << describe(actual);
  }
}

TEST(ToolsLint, CorpusCoversEveryRuleWithABadAndAGoodFixture) {
  const std::vector<Fixture> corpus = loadCorpus();
  std::set<std::string> expectedRules;
  std::size_t cleanFixtures = 0;
  for (const Fixture& fx : corpus) {
    if (fx.expected.empty()) ++cleanFixtures;
    for (const auto& e : fx.expected) expectedRules.insert(e.first);
  }
  for (const cpr::lint::RuleInfo& info : cpr::lint::ruleTable()) {
    EXPECT_TRUE(expectedRules.count(std::string(info.id)))
        << "no bad fixture exercises rule " << info.id;
  }
  EXPECT_GE(cleanFixtures, cpr::lint::ruleTable().size())
      << "expected at least one clean (good) fixture per rule";
}

TEST(ToolsLint, RuleTableIsSortedAndDocumented) {
  const auto& table = cpr::lint::ruleTable();
  ASSERT_EQ(table.size(), 21u);
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_FALSE(table[i].id.empty());
    EXPECT_FALSE(table[i].summary.empty()) << table[i].id;
    if (i > 0) {
      EXPECT_LT(table[i - 1].id, table[i].id);
    }
  }
}

// The banned identifiers below live inside string literals of *this* file,
// so the repo-wide lint run tokenizes them as strings and stays clean; the
// lintSource call under test sees them as real identifiers.
TEST(ToolsLint, AllowDirectiveCoversItsOwnLineAndTheNextOnly) {
  const std::string src =
      "#include <cstdlib>\n"                // 1
      "// cpr-lint: allow(BANNED-FN)\n"     // 2
      "int a = atoi(\"1\");\n"              // 3: suppressed (next line)
      "int b = atoi(\"2\");\n";             // 4: out of the window
  const auto actual = found("src/viz/example.cpp", src);
  const std::vector<std::pair<std::string, int>> expected = {
      {"BANNED-FN", 4}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

TEST(ToolsLint, TrailingAllowDirectiveSuppressesItsOwnLine) {
  const std::string src =
      "#include <cstdlib>\n"
      "int a = atoi(\"1\");  // cpr-lint: allow(BANNED-FN)\n";
  EXPECT_TRUE(found("src/viz/example.cpp", src).empty());
}

TEST(ToolsLint, AllowDirectiveOnlySuppressesTheNamedRules) {
  const std::string src =
      "#include <cstdlib>\n"                 // 1
      "// cpr-lint: allow(HEADER-HYGIENE)\n" // 2
      "int a = atoi(\"1\");\n";              // 3: wrong rule named
  const auto actual = found("src/viz/example.cpp", src);
  // The mismatched directive suppresses nothing, so both the original
  // diagnostic and an ALLOW-UNUSED for the stale directive surface.
  const std::vector<std::pair<std::string, int>> expected = {
      {"ALLOW-UNUSED", 2}, {"BANNED-FN", 3}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

// `//` and `/* */` directives must behave identically: a block-comment
// directive anchors at the line holding the marker — not the line the
// comment opened on — so a multi-line comment ending in a directive
// covers the code directly below it, like a `//` directive would.
TEST(ToolsLint, BlockCommentDirectiveAnchorsAtTheMarkerLine) {
  const std::string src =
      "#include <cstdlib>\n"                     // 1
      "/* rationale for the odd call,\n"         // 2
      "   spread over lines\n"                   // 3
      "   cpr-lint: allow(BANNED-FN) */\n"       // 4: marker line
      "int a = atoi(\"1\");\n";                  // 5: suppressed
  EXPECT_TRUE(found("src/viz/example.cpp", src).empty())
      << describe(found("src/viz/example.cpp", src));
}

TEST(ToolsLint, InlineBlockCommentDirectiveSuppressesItsOwnLine) {
  const std::string src =
      "#include <cstdlib>\n"
      "int a = atoi(\"1\");  /* cpr-lint: allow(BANNED-FN) */\n";
  EXPECT_TRUE(found("src/viz/example.cpp", src).empty());
}

// Regression: directive text inside a raw string literal is string content,
// not a comment — it must neither suppress the diagnostic on the next line
// nor surface as a stale ALLOW-UNUSED directive.
TEST(ToolsLint, AllowDirectiveInsideARawStringIsInert) {
  const std::string src =
      "#include <cstdlib>\n"                                  // 1
      "const char* s = R\"(cpr-lint: allow(BANNED-FN))\";\n"  // 2
      "int a = atoi(s);\n";                                   // 3
  const auto actual = found("src/viz/example.cpp", src);
  const std::vector<std::pair<std::string, int>> expected = {
      {"BANNED-FN", 3}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

TEST(ToolsLint, CommentsStringsAndRawStringsNeverFire) {
  const std::string src =
      "// endl sprintf atoi in a line comment\n"
      "/* rand srand strtok in a block comment */\n"
      "const char* s = R\"(gets endl sprintf)\";\n"
      "const char* t = \"atoi\";\n";
  EXPECT_TRUE(found("src/viz/example.cpp", src).empty());
}

TEST(ToolsLint, LexerTracksLinesAcrossBlockCommentsAndRawStrings) {
  const std::string src =
      "/* a block comment\n"
      "   spanning three\n"
      "   lines */\n"
      "const char* s = R\"(raw\n"
      "string)\";\n"
      "int a = atoi(s);\n";  // line 6
  const auto actual = found("src/viz/example.cpp", src);
  const std::vector<std::pair<std::string, int>> expected = {
      {"BANNED-FN", 6}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

// ---------------------------------------------------------------- IR ----

TEST(ToolsLintIr, BuildsIncludesNamespacesAndBodyExtents) {
  const std::string src =
      "#include \"core/ids.h\"\n"              // 1
      "#include <vector>\n"                    // 2
      "namespace cpr::core {\n"                // 3
      "class Kernel {\n"                       // 4
      " public:\n"                             // 5
      "  int size() const { return n_; }\n"    // 6
      " private:\n"                            // 7
      "  int n_ = 0;\n"                        // 8
      "};\n"                                   // 9
      "int twice(int x) {\n"                   // 10
      "  return\n"                             // 11
      "      2 * x;\n"                         // 12
      "}\n"                                    // 13
      "}  // namespace cpr::core\n";           // 14
  const cpr::lint::LexResult lx = cpr::lint::lex(src);
  const cpr::lint::FileIr ir = cpr::lint::buildIr(lx.tokens);

  ASSERT_EQ(ir.includes.size(), 2u);
  EXPECT_EQ(ir.includes[0].path, "core/ids.h");
  EXPECT_FALSE(ir.includes[0].angled);
  EXPECT_EQ(ir.includes[0].line, 1);
  EXPECT_EQ(ir.includes[1].path, "vector");
  EXPECT_TRUE(ir.includes[1].angled);
  EXPECT_EQ(ir.includes[1].line, 2);

  ASSERT_EQ(ir.namespaces.size(), 1u);
  EXPECT_EQ(ir.namespaces[0].name, "cpr::core");
  EXPECT_EQ(ir.namespaces[0].bodyBegin, 3);
  EXPECT_EQ(ir.namespaces[0].bodyEnd, 14);

  ASSERT_EQ(ir.decls.size(), 3u);
  EXPECT_EQ(ir.decls[0].kind, cpr::lint::DeclKind::Class);
  EXPECT_EQ(ir.decls[0].name, "Kernel");
  EXPECT_EQ(ir.decls[0].bodyBegin, 4);
  EXPECT_EQ(ir.decls[0].bodyEnd, 9);
  EXPECT_EQ(ir.decls[1].kind, cpr::lint::DeclKind::Function);
  EXPECT_EQ(ir.decls[1].name, "size");
  EXPECT_EQ(ir.decls[1].bodyBegin, 6);
  EXPECT_EQ(ir.decls[1].bodyEnd, 6);
  EXPECT_EQ(ir.decls[2].kind, cpr::lint::DeclKind::Function);
  EXPECT_EQ(ir.decls[2].name, "twice");
  EXPECT_EQ(ir.decls[2].line, 10);
  EXPECT_EQ(ir.decls[2].bodyBegin, 10);
  EXPECT_EQ(ir.decls[2].bodyEnd, 13);
  // Token extents really bracket the body.
  EXPECT_EQ(lx.tokens[ir.decls[2].tokBegin].text, "{");
  EXPECT_EQ(lx.tokens[ir.decls[2].tokEnd].text, "}");
}

TEST(ToolsLintIr, AngledIncludePathsAreRejoined) {
  const cpr::lint::LexResult lx =
      cpr::lint::lex("#include <core/panel_kernel.h>\n");
  const cpr::lint::FileIr ir = cpr::lint::buildIr(lx.tokens);
  ASSERT_EQ(ir.includes.size(), 1u);
  EXPECT_EQ(ir.includes[0].path, "core/panel_kernel.h");
  EXPECT_TRUE(ir.includes[0].angled);
}

TEST(ToolsLintIr, EnumBodiesAreRecordedButNotDescendedInto) {
  const std::string src =
      "enum class Status {\n"      // 1
      "  Ok,\n"                    // 2
      "  Failed,\n"                // 3
      "};\n"                       // 4
      "int after() { return 0; }\n";  // 5
  const cpr::lint::FileIr ir =
      cpr::lint::buildIr(cpr::lint::lex(src).tokens);
  ASSERT_EQ(ir.decls.size(), 2u);
  EXPECT_EQ(ir.decls[0].kind, cpr::lint::DeclKind::Enum);
  EXPECT_EQ(ir.decls[0].name, "Status");
  EXPECT_EQ(ir.decls[0].bodyEnd, 4);
  EXPECT_EQ(ir.decls[1].name, "after");
}

TEST(ToolsLintIr, VariableInitializersAreNotFunctions) {
  const std::string src =
      "int a = twice(2);\n"
      "std::vector<int> v(8);\n"
      "void real() { int inner = 1; (void)inner; }\n";
  const cpr::lint::FileIr ir =
      cpr::lint::buildIr(cpr::lint::lex(src).tokens);
  ASSERT_EQ(ir.decls.size(), 1u);
  EXPECT_EQ(ir.decls[0].name, "real");
}

// ------------------------------------------------------ layer manifest --

TEST(ToolsLintArch, RepoManifestParsesAndOrdersTheLayers) {
  const cpr::lint::LayerManifest& m = repoManifest();
  EXPECT_EQ(m.everywhere.size(), 2u);
  EXPECT_EQ(m.levelOf("support"), cpr::lint::LayerManifest::kEverywhere);
  EXPECT_EQ(m.levelOf("obs"), cpr::lint::LayerManifest::kEverywhere);
  EXPECT_LT(m.levelOf("geom"), m.levelOf("db"));
  EXPECT_LT(m.levelOf("db"), m.levelOf("lefdef"));
  EXPECT_EQ(m.levelOf("gen"), m.levelOf("ilp"));
  EXPECT_LT(m.levelOf("lefdef"), m.levelOf("core"));
  EXPECT_LT(m.levelOf("core"), m.levelOf("route"));
  EXPECT_EQ(m.levelOf("route"), m.levelOf("viz"));
  EXPECT_EQ(m.levelOf("nonesuch"), cpr::lint::LayerManifest::kUnknown);
}

TEST(ToolsLintArch, ManifestParserRejectsDuplicates) {
  cpr::lint::LayerManifest m;
  std::string error;
  EXPECT_FALSE(cpr::lint::parseLayerManifest("geom\ngeom db\n", m, error));
  EXPECT_NE(error.find("geom"), std::string::npos) << error;
  EXPECT_FALSE(cpr::lint::parseLayerManifest("# only comments\n", m, error));
}

TEST(ToolsLintArch, ManifestForbidLinesParseAndValidate) {
  cpr::lint::LayerManifest m;
  std::string error;
  ASSERT_TRUE(cpr::lint::parseLayerManifest(
      "geom\ncore\nforbid: core geom/secret.h\n", m, error))
      << error;
  ASSERT_EQ(m.forbids.size(), 1u);
  EXPECT_EQ(m.forbids[0].module, "core");
  EXPECT_EQ(m.forbids[0].include, "geom/secret.h");
  // Wrong arity and unknown modules are parse errors, not silent no-ops.
  EXPECT_FALSE(
      cpr::lint::parseLayerManifest("geom\nforbid: geom\n", m, error));
  EXPECT_FALSE(cpr::lint::parseLayerManifest(
      "geom\nforbid: nonesuch geom/a.h\n", m, error));
  EXPECT_NE(error.find("nonesuch"), std::string::npos) << error;
}

// The LpBackend seam contract, pinned at the manifest level: src/core selects
// LP engines by name through ilp/lp_backend.h and must never reach a
// concrete engine header, even transitively.
TEST(ToolsLintArch, RepoManifestForbidsConcreteLpEngineHeadersInCore) {
  const cpr::lint::LayerManifest& m = repoManifest();
  bool dense = false;
  bool revised = false;
  for (const cpr::lint::LayerManifest::Forbid& f : m.forbids) {
    if (f.module != "core") continue;
    dense = dense || f.include == "ilp/simplex.h";
    revised = revised || f.include == "ilp/revised_simplex.h";
  }
  EXPECT_TRUE(dense) << "layers.txt lost 'forbid: core ilp/simplex.h'";
  EXPECT_TRUE(revised)
      << "layers.txt lost 'forbid: core ilp/revised_simplex.h'";
}

// Architecture findings must ignore allow directives: a layering exception
// is a layers.txt change, never a per-line pragma. The stale directive
// itself is then reported.
TEST(ToolsLintArch, LayerViolationsAreNotSuppressible) {
  std::vector<cpr::lint::SourceFile> files;
  files.push_back(cpr::lint::SourceFile{
      "src/core/only.h", "#pragma once\nstruct Only {};\n"});
  files.push_back(cpr::lint::SourceFile{
      "src/geom/user.h",
      "#pragma once\n"
      "// cpr-lint: allow(LAYER-VIOLATION)\n"
      "#include \"core/only.h\"\n"
      "struct User { Only o; };\n"});
  files.push_back(cpr::lint::SourceFile{
      "src/geom/user.cpp", "#include \"geom/user.h\"\nint u() { return 1; }\n"});
  std::vector<std::pair<std::string, int>> got;
  for (const Diagnostic& d : cpr::lint::lintFiles(files, &repoManifest()))
    got.emplace_back(d.rule + "@" + d.file, d.line);
  std::sort(got.begin(), got.end());
  const std::vector<std::pair<std::string, int>> expected = {
      {"ALLOW-UNUSED@src/geom/user.h", 2},
      {"LAYER-VIOLATION@src/geom/user.h", 3},
  };
  EXPECT_EQ(got, expected);
}

// -------------------------------------------------------- lock regions --

struct RegionRun {
  cpr::lint::LexResult lx;
  cpr::lint::FileIr ir;
  std::vector<cpr::lint::LockRegion> regions;
};

/// Lexes `src`, builds the IR, and runs findLockRegions over the first
/// function body it finds.
RegionRun regionsOfFirstFunction(const std::string& src) {
  RegionRun run;
  run.lx = cpr::lint::lex(src);
  run.ir = cpr::lint::buildIr(run.lx.tokens);
  for (const cpr::lint::EntityDecl& d : run.ir.decls) {
    if (d.kind != cpr::lint::DeclKind::Function) continue;
    run.regions =
        cpr::lint::findLockRegions(run.lx.tokens, d.tokBegin, d.tokEnd);
    break;
  }
  return run;
}

/// True when any token of line `line` falls inside the region's span.
bool regionCoversLine(const RegionRun& run, const cpr::lint::LockRegion& r,
                      int line) {
  for (std::size_t i = r.tokBegin; i < r.tokEnd && i < run.lx.tokens.size();
       ++i) {
    if (run.lx.tokens[i].line == line) return true;
  }
  return false;
}

TEST(ToolsLintRegions, RaiiGuardRunsToEndOfItsEnclosingScope) {
  const RegionRun run = regionsOfFirstFunction(
      "#include <mutex>\n"                          // 1
      "std::mutex mu;\n"                            // 2
      "int n;\n"                                    // 3
      "void f() {\n"                                // 4
      "  n = 1;\n"                                  // 5
      "  {\n"                                       // 6
      "    std::lock_guard<std::mutex> lock(mu);\n" // 7
      "    n = 2;\n"                                // 8
      "  }\n"                                       // 9
      "  n = 3;\n"                                  // 10
      "}\n");
  ASSERT_EQ(run.regions.size(), 1u);
  const cpr::lint::LockRegion& r = run.regions[0];
  EXPECT_EQ(r.mutexExpr, "mu");
  EXPECT_EQ(r.line, 7);
  EXPECT_TRUE(r.raii);
  EXPECT_FALSE(regionCoversLine(run, r, 5));
  EXPECT_TRUE(regionCoversLine(run, r, 8));
  EXPECT_FALSE(regionCoversLine(run, r, 10));
}

TEST(ToolsLintRegions, DeferLockOpensNothingUntilLockAndSplitsOnUnlock) {
  const RegionRun run = regionsOfFirstFunction(
      "#include <mutex>\n"                                       // 1
      "std::mutex mu;\n"                                         // 2
      "int n;\n"                                                 // 3
      "void f() {\n"                                             // 4
      "  std::unique_lock<std::mutex> lk(mu, std::defer_lock);\n"// 5
      "  n = 1;\n"                                               // 6
      "  lk.lock();\n"                                           // 7
      "  n = 2;\n"                                               // 8
      "  lk.unlock();\n"                                         // 9
      "  n = 3;\n"                                               // 10
      "  lk.lock();\n"                                           // 11
      "  n = 4;\n"                                               // 12
      "}\n");
  ASSERT_EQ(run.regions.size(), 2u);
  EXPECT_EQ(run.regions[0].mutexExpr, "mu");
  EXPECT_EQ(run.regions[1].mutexExpr, "mu");
  EXPECT_FALSE(regionCoversLine(run, run.regions[0], 6));
  EXPECT_TRUE(regionCoversLine(run, run.regions[0], 8));
  EXPECT_FALSE(regionCoversLine(run, run.regions[0], 10));
  EXPECT_FALSE(regionCoversLine(run, run.regions[1], 10));
  EXPECT_TRUE(regionCoversLine(run, run.regions[1], 12));
}

TEST(ToolsLintRegions, ManualLockUnlockPairIsARegionAndNotRaii) {
  const RegionRun run = regionsOfFirstFunction(
      "#include <mutex>\n"   // 1
      "std::mutex mu;\n"     // 2
      "int n;\n"             // 3
      "void f() {\n"         // 4
      "  mu.lock();\n"       // 5
      "  n = 1;\n"           // 6
      "  mu.unlock();\n"     // 7
      "  n = 2;\n"           // 8
      "}\n");
  ASSERT_EQ(run.regions.size(), 1u);
  EXPECT_EQ(run.regions[0].mutexExpr, "mu");
  EXPECT_FALSE(run.regions[0].raii);
  EXPECT_TRUE(regionCoversLine(run, run.regions[0], 6));
  EXPECT_FALSE(regionCoversLine(run, run.regions[0], 8));
}

TEST(ToolsLintRegions, ScopedLockAcquisitionsShareOneGroup) {
  const RegionRun run = regionsOfFirstFunction(
      "#include <mutex>\n"
      "std::mutex a;\n"
      "std::mutex b;\n"
      "void f() {\n"
      "  std::scoped_lock both(a, b);\n"
      "}\n");
  ASSERT_EQ(run.regions.size(), 2u);
  EXPECT_EQ(run.regions[0].mutexExpr, "a");
  EXPECT_EQ(run.regions[1].mutexExpr, "b");
  EXPECT_EQ(run.regions[0].group, run.regions[1].group);
  // Sequential guards, by contrast, get distinct groups.
  const RegionRun seq = regionsOfFirstFunction(
      "#include <mutex>\n"
      "std::mutex a;\n"
      "std::mutex b;\n"
      "void f() {\n"
      "  std::lock_guard<std::mutex> la(a);\n"
      "  std::lock_guard<std::mutex> lb(b);\n"
      "}\n");
  ASSERT_EQ(seq.regions.size(), 2u);
  EXPECT_NE(seq.regions[0].group, seq.regions[1].group);
}

// ------------------------------------------------- concurrency rules --

// Deadlock-shaped findings must ignore allow directives, exactly like the
// architecture rules: the sanctioned escape hatch is an annotation at the
// mutex declaration (CPR_MAY_BLOCK), visible to every caller, never a
// per-line pragma at one call site.
TEST(ToolsLintConc, BlockingCallUnderLockIsNotSuppressible) {
  const std::string src =
      "#include <mutex>\n"                              // 1
      "class Admission {\n"                             // 2
      " public:\n"                                      // 3
      "  void admit() {\n"                              // 4
      "    std::lock_guard<std::mutex> lock(mu_);\n"    // 5
      "    // cpr-lint: allow(LOCK-BLOCKING-CALL)\n"    // 6
      "    send(1, nullptr, 0, 0);\n"                   // 7
      "  }\n"                                           // 8
      " private:\n"                                     // 9
      "  std::mutex mu_;\n"                             // 10
      "};\n";
  const auto actual = found("src/viz/example.cpp", src);
  const std::vector<std::pair<std::string, int>> expected = {
      {"ALLOW-UNUSED", 6}, {"LOCK-BLOCKING-CALL", 7}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

TEST(ToolsLintConc, LockOrderCyclesAreNotSuppressible) {
  const std::string src =
      "#include <mutex>\n"                              // 1
      "class Inversion {\n"                             // 2
      " public:\n"                                      // 3
      "  void forward() {\n"                            // 4
      "    std::lock_guard<std::mutex> la(alpha_);\n"   // 5
      "    // cpr-lint: allow(LOCK-ORDER)\n"            // 6
      "    std::lock_guard<std::mutex> lb(beta_);\n"    // 7
      "  }\n"                                           // 8
      "  void reverse() {\n"                            // 9
      "    std::lock_guard<std::mutex> lb(beta_);\n"    // 10
      "    std::lock_guard<std::mutex> la(alpha_);\n"   // 11
      "  }\n"                                           // 12
      " private:\n"                                     // 13
      "  std::mutex alpha_;\n"                          // 14
      "  std::mutex beta_;\n"                           // 15
      "};\n";
  const auto actual = found("src/viz/example.cpp", src);
  const std::vector<std::pair<std::string, int>> expected = {
      {"ALLOW-UNUSED", 6}, {"LOCK-ORDER", 7}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

// The per-file concurrency rules keep the ordinary suppression contract.
TEST(ToolsLintConc, GuardedByAndThreadLifecycleAcceptAllows) {
  const std::string guarded =
      "#include <mutex>\n"
      "class Counter {\n"
      " public:\n"
      "  void bare() { ++n_; }  // cpr-lint: allow(GUARDED-BY)\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  long n_ CPR_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(found("src/viz/example.cpp", guarded).empty())
      << describe(found("src/viz/example.cpp", guarded));
  const std::string lifecycle =
      "#include <thread>\n"
      "void f() {\n"
      "  // cpr-lint: allow(THREAD-LIFECYCLE)\n"
      "  std::thread t([] {});\n"
      "}\n";
  EXPECT_TRUE(found("src/viz/example.cpp", lifecycle).empty())
      << describe(found("src/viz/example.cpp", lifecycle));
}

// Annotations travel across files: a header's CPR_REQUIRES covers the
// caller in another translation unit, and lock regions in one file combine
// with regions in another into a single whole-tree acquisition graph.
TEST(ToolsLintConc, LockOrderGraphSpansFiles) {
  std::vector<cpr::lint::SourceFile> files;
  files.push_back(cpr::lint::SourceFile{
      "src/viz/a.cpp",
      "#include <mutex>\n"
      "class Pair {\n"
      " public:\n"
      "  void forward();\n"
      "  void reverse();\n"
      " private:\n"
      "  std::mutex alpha_;\n"
      "  std::mutex beta_;\n"
      "};\n"
      "void Pair::forward() {\n"
      "  std::lock_guard<std::mutex> la(alpha_);\n"
      "  std::lock_guard<std::mutex> lb(beta_);\n"  // 12: anchor
      "}\n"});
  files.push_back(cpr::lint::SourceFile{
      "src/viz/b.cpp",
      "#include <mutex>\n"
      "#include \"viz/a.h\"\n"
      "void Pair::reverse() {\n"
      "  std::lock_guard<std::mutex> lb(beta_);\n"
      "  std::lock_guard<std::mutex> la(alpha_);\n"
      "}\n"});
  std::vector<std::pair<std::string, int>> got;
  for (const Diagnostic& d : cpr::lint::lintFiles(files, nullptr)) {
    if (d.rule == "LOCK-ORDER") got.emplace_back(d.file, d.line);
  }
  const std::vector<std::pair<std::string, int>> expected = {
      {"src/viz/a.cpp", 12}};
  EXPECT_EQ(got, expected);
}

TEST(ToolsLintConc, BlockingManifestParsesAndRejectsBadInput) {
  cpr::lint::BlockingManifest m;
  std::string error;
  ASSERT_TRUE(cpr::lint::parseBlockingManifest(
      "# socket calls\nsend recv\njoin\n", m, error))
      << error;
  const std::set<std::string> idents(m.idents.begin(), m.idents.end());
  EXPECT_TRUE(idents.count("send"));
  EXPECT_TRUE(idents.count("recv"));
  EXPECT_TRUE(idents.count("join"));

  EXPECT_FALSE(cpr::lint::parseBlockingManifest("send\nsend\n", m, error));
  EXPECT_NE(error.find("send"), std::string::npos) << error;
  EXPECT_FALSE(cpr::lint::parseBlockingManifest("not-an-ident\n", m, error));
  EXPECT_FALSE(cpr::lint::parseBlockingManifest("# only comments\n", m, error));
}

TEST(ToolsLintConc, RepoBlockingManifestLoadsAndCoversTheProjectSeams) {
  cpr::lint::BlockingManifest m;
  std::string error;
  ASSERT_TRUE(cpr::lint::loadBlockingManifest(CPR_LINT_BLOCKING_FILE, m, error))
      << error;
  const std::set<std::string> idents(m.idents.begin(), m.idents.end());
  for (const char* seam :
       {"send", "recv", "accept", "join", "drain", "parallelFor",
        "sendToConn", "sendLocked", "pop"}) {
    EXPECT_TRUE(idents.count(seam))
        << "tools/lint/blocking.txt lost '" << seam << "'";
  }
}

// ------------------------------------------------------ hot-path pass --

// Like LOCK-ORDER, the HOT-* rules ignore per-line allow directives: the
// sanctioned escape hatches are the annotations themselves (CPR_COLD_OK /
// CPR_NOALLOC), visible in the signature and in review.
TEST(ToolsLintHot, HotRulesAreNotSuppressible) {
  const std::string src =
      "#include <vector>\n"                          // 1
      "void hot(std::vector<int>& v) CPR_HOT {\n"    // 2
      "  // cpr-lint: allow(HOT-ALLOC)\n"            // 3
      "  v.push_back(1);\n"                          // 4
      "}\n";
  const auto actual = found("src/core/example.cpp", src);
  const std::vector<std::pair<std::string, int>> expected = {
      {"ALLOW-UNUSED", 3}, {"HOT-ALLOC", 4}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

TEST(ToolsLintHot, HotAllocDiagnosticCarriesTheFullCallChain) {
  const std::string src =
      "#include <string>\n"                                  // 1
      "int leaf(int v) {\n"                                  // 2
      "  return static_cast<int>(std::to_string(v).size());\n"  // 3
      "}\n"                                                  // 4
      "int mid(int v) { return leaf(v); }\n"                 // 5
      "int hotRoot(int v) CPR_HOT { return mid(v); }\n";     // 6
  std::vector<std::string> messages;
  for (const Diagnostic& d :
       cpr::lint::lintSource("src/core/example.cpp", src)) {
    if (d.rule == "HOT-ALLOC") messages.push_back(d.message);
  }
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_NE(messages[0].find("call chain: hotRoot -> mid -> leaf"),
            std::string::npos)
      << messages[0];
}

// Annotations travel across files like CPR_REQUIRES does: a CPR_HOT on the
// header prototype covers the out-of-line definition in another translation
// unit, and the closure keeps descending through callees defined in a third.
TEST(ToolsLintHot, HeaderAnnotationCoversTheOutOfLineDefinition) {
  std::vector<cpr::lint::SourceFile> files;
  files.push_back(cpr::lint::SourceFile{
      "src/core/kern.h",
      "#pragma once\n"
      "int kern(int v) CPR_HOT;\n"});
  files.push_back(cpr::lint::SourceFile{
      "src/core/kern.cpp",
      "#include \"core/kern.h\"\n"
      "#include \"core/leaf.h\"\n"
      "int kern(int v) { return leaf(v); }\n"});
  files.push_back(cpr::lint::SourceFile{
      "src/core/leaf.cpp",
      "#include <string>\n"
      "#include \"core/leaf.h\"\n"
      "int leaf(int v) {\n"
      "  return static_cast<int>(std::to_string(v).size());\n"  // 4: fires
      "}\n"});
  std::vector<std::pair<std::string, int>> got;
  for (const Diagnostic& d : cpr::lint::lintFiles(files, nullptr)) {
    if (d.rule == "HOT-ALLOC") got.emplace_back(d.file, d.line);
  }
  const std::vector<std::pair<std::string, int>> expected = {
      {"src/core/leaf.cpp", 4}};
  EXPECT_EQ(got, expected);
}

// Free-function overloads share one call-graph node, so a call to the clean
// overload still reaches the allocating one's body — the pass checks the
// union, which over-approximates but never misses.
TEST(ToolsLintHot, OverloadsShareACallGraphNode) {
  const std::string src =
      "#include <string>\n"                                  // 1
      "int helper(int v) { return v; }\n"                    // 2
      "int helper(double v) {\n"                             // 3
      "  return static_cast<int>(std::to_string(v).size());\n"  // 4: fires
      "}\n"                                                  // 5
      "int hotRoot(int v) CPR_HOT { return helper(v); }\n";  // 6
  const auto actual = found("src/core/example.cpp", src);
  const std::vector<std::pair<std::string, int>> expected = {
      {"HOT-ALLOC", 4}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

// A receiver-qualified call binds to the unique class defining the method;
// when two classes define the same name, the edge stays unresolved (the
// documented under-approximation — wrappers get annotated directly instead).
TEST(ToolsLintHot, ReceiverCallsBindOnlyWhenTheDefiningClassIsUnique) {
  const std::string unique =
      "#include <vector>\n"                            // 1
      "class Arena {\n"                                // 2
      " public:\n"                                     // 3
      "  void grow() { v_.push_back(1); }\n"           // 4: fires via chain
      " private:\n"                                    // 5
      "  std::vector<int> v_;\n"                       // 6
      "};\n"                                           // 7
      "void hotRoot(Arena& a) CPR_HOT { a.grow(); }\n";  // 8
  const auto one = found("src/core/example.cpp", unique);
  const std::vector<std::pair<std::string, int>> expectOne = {
      {"HOT-ALLOC", 4}};
  EXPECT_EQ(one, expectOne) << describe(one);

  const std::string ambiguous =
      "#include <vector>\n"
      "class A {\n"
      " public:\n"
      "  void grow() { v_.push_back(1); }\n"
      " private:\n"
      "  std::vector<int> v_;\n"
      "};\n"
      "class B {\n"
      " public:\n"
      "  void grow() {}\n"
      "};\n"
      "void hotRoot(A& a) CPR_HOT { a.grow(); }\n";
  EXPECT_TRUE(found("src/core/example.cpp", ambiguous).empty())
      << describe(found("src/core/example.cpp", ambiguous));
}

// A local lambda is not a resolvable callee: calls through its name stay
// off the graph, and its body is scanned as part of the enclosing function.
TEST(ToolsLintHot, LambdaBodiesAreScannedInlineButTheirNamesStayUnresolved) {
  const std::string src =
      "#include <vector>\n"                            // 1
      "void hotRoot(std::vector<int>& v) CPR_HOT {\n"  // 2
      "  const auto shove = [&v](int x) {\n"           // 3
      "    v.push_back(x);\n"                          // 4: inline scan fires
      "  };\n"                                         // 5
      "  shove(1);\n"                                  // 6
      "}\n";
  const auto actual = found("src/core/example.cpp", src);
  const std::vector<std::pair<std::string, int>> expected = {
      {"HOT-ALLOC", 4}};
  EXPECT_EQ(actual, expected) << describe(actual);
}

TEST(ToolsLintHot, AllocManifestParsesAndRejectsBadInput) {
  cpr::lint::AllocManifest m;
  std::string error;
  ASSERT_TRUE(cpr::lint::parseAllocManifest(
      "# raw heap\nmalloc calloc\ngrow: push_back resize\nto_string\n", m,
      error))
      << error;
  const std::set<std::string> always(m.always.begin(), m.always.end());
  const std::set<std::string> growth(m.growth.begin(), m.growth.end());
  EXPECT_TRUE(always.count("malloc"));
  EXPECT_TRUE(always.count("to_string"));
  EXPECT_TRUE(growth.count("push_back"));
  EXPECT_TRUE(growth.count("resize"));
  EXPECT_FALSE(growth.count("malloc"));

  EXPECT_FALSE(cpr::lint::parseAllocManifest("malloc\nmalloc\n", m, error));
  EXPECT_NE(error.find("malloc"), std::string::npos) << error;
  EXPECT_FALSE(
      cpr::lint::parseAllocManifest("malloc\ngrow: push_back\npush_back\n", m,
                                    error))
      << "a word cannot be both always-alloc and growth";
  EXPECT_FALSE(cpr::lint::parseAllocManifest("not-an-ident\n", m, error));
  EXPECT_FALSE(cpr::lint::parseAllocManifest("# only comments\n", m, error));
}

TEST(ToolsLintHot, RepoAllocManifestLoadsAndCoversTheSeams) {
  cpr::lint::AllocManifest m;
  std::string error;
  ASSERT_TRUE(cpr::lint::loadAllocManifest(CPR_LINT_ALLOCATING_FILE, m, error))
      << error;
  const std::set<std::string> always(m.always.begin(), m.always.end());
  const std::set<std::string> growth(m.growth.begin(), m.growth.end());
  for (const char* seam : {"malloc", "make_unique", "make_shared",
                           "to_string", "aligned_alloc"}) {
    EXPECT_TRUE(always.count(seam))
        << "tools/lint/allocating.txt lost '" << seam << "'";
  }
  for (const char* seam : {"push_back", "emplace_back", "insert", "resize"}) {
    EXPECT_TRUE(growth.count(seam))
        << "tools/lint/allocating.txt lost growth word '" << seam << "'";
  }
  // The sanctioned warm-reset idiom: assign and reserve are deliberately
  // not manifest words (DESIGN.md "Hot-path discipline").
  EXPECT_FALSE(always.count("assign") || growth.count("assign"));
  EXPECT_FALSE(always.count("reserve") || growth.count("reserve"));
}

// ------------------------------------------------- --fix-stale-allows --

TEST(ToolsLintFix, StripRemovesAWholeLineDirective) {
  const auto r = cpr::lint::stripAllowDirectives(
      "int a = 1;\n"
      "// cpr-lint: allow(BANNED-FN)\n"
      "int b = 2;\n",
      {2});
  EXPECT_EQ(r.source, "int a = 1;\nint b = 2;\n");
  EXPECT_EQ(r.removed, 1);
}

TEST(ToolsLintFix, StripKeepsCodeSharingTheDirectiveLine) {
  const auto r = cpr::lint::stripAllowDirectives(
      "int a = atoi(x);  // cpr-lint: allow(BANNED-FN)\n", {1});
  EXPECT_EQ(r.source, "int a = atoi(x);\n");
  EXPECT_EQ(r.removed, 1);
}

TEST(ToolsLintFix, StripRemovesOnlyTheBlockCommentHoldingTheDirective) {
  const auto r = cpr::lint::stripAllowDirectives(
      "int a = 1;  /* cpr-lint: allow(BANNED-FN) */ int b = 2;\n", {1});
  EXPECT_EQ(r.source, "int a = 1;   int b = 2;\n");
  EXPECT_EQ(r.removed, 1);
}

TEST(ToolsLintFix, StripLeavesUnlistedLinesAlone) {
  const std::string src =
      "// cpr-lint: allow(BANNED-FN)\n"
      "int a = atoi(x);\n"
      "// cpr-lint: allow(BANNED-FN)\n"
      "int b = atoi(y);\n";
  const auto r = cpr::lint::stripAllowDirectives(src, {3});
  EXPECT_EQ(r.source,
            "// cpr-lint: allow(BANNED-FN)\n"
            "int a = atoi(x);\n"
            "int b = atoi(y);\n");
  EXPECT_EQ(r.removed, 1);
}

}  // namespace
